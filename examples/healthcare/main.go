// Healthcare: privacy scopes on inter-IoT data flows (the paper's
// Figure 4 narrative). A patient's wearables produce sensitive vitals
// inside a GDPR ward; the ward gateway acts as the edge of a privacy
// scope. Data synchronizes to the hospital's second ward (same
// jurisdiction — allowed), while a research cloud in another
// jurisdiction receives only the non-sensitive streams: the governed
// data plane blocks the vitals at the source, and an observe-only
// auditor proves an ungoverned plane would have leaked them.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/simnet"
	"repro/internal/space"
)

func main() {
	sim := simnet.New(simnet.WithSeed(7), simnet.WithDefaultLatency(2*time.Millisecond))

	// Spatial/administrative model: two GDPR wards, one CCPA cloud.
	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "ward-a", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	world.AddDomain(space.Domain{ID: "ward-b", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	world.AddDomain(space.Domain{ID: "research-cloud", Jurisdiction: space.JurisdictionCCPA, Trusted: true})
	world.Place("gw-a", space.Point{X: 0, Y: 0}, "ward-a")
	world.Place("gw-b", space.Point{X: 80, Y: 0}, "ward-b")
	world.Place("cloud", space.Point{X: 900, Y: 900}, "research-cloud")

	gwA := sim.AddNode("gw-a")
	gwB := sim.AddNode("gw-b")
	cloud := sim.AddNode("cloud")
	sim.SetLinkBidirectional("gw-a", "cloud", 45*time.Millisecond, 0)
	sim.SetLinkBidirectional("gw-b", "cloud", 45*time.Millisecond, 0)

	// Governed stores: the ward gateways enforce the privacy scopes.
	storeA := dataflow.NewStore(gwA, world, dataflow.StoreConfig{
		Peers: []simnet.NodeID{"gw-b", "cloud"}, SyncInterval: time.Second,
	})
	storeB := dataflow.NewStore(gwB, world, dataflow.StoreConfig{SyncInterval: time.Second})
	cloudStore := dataflow.NewStore(cloud, world, dataflow.StoreConfig{SyncInterval: time.Second})
	storeA.Start()
	storeB.Start()
	cloudStore.Start()

	// An observe-only auditor shows what an ungoverned plane would
	// have shipped across the jurisdiction border.
	leakAuditor := dataflow.ObservedEngine()
	wardA, _ := world.Domain("ward-a")
	research, _ := world.Domain("research-cloud")

	// The patient's wearable: heart rate (sensitive) + room climate
	// (public), both every 2 seconds.
	beat := 0
	gwA.Every(2*time.Second, func() {
		beat++
		now := sim.Now()
		hr := dataflow.Item{
			Key: "patient-17/heart-rate", Value: 60 + beat%25,
			Label: dataflow.Label{
				Topic: "vitals", Sensitivity: dataflow.Sensitive,
				Origin: "ward-a", Jurisdiction: space.JurisdictionGDPR,
			},
			ProducedAt: now,
		}
		climate := dataflow.Item{
			Key: "room-301/temperature", Value: 21.5,
			Label: dataflow.Label{
				Topic: "climate", Sensitivity: dataflow.Public,
				Origin: "ward-a", Jurisdiction: space.JurisdictionGDPR,
			},
			ProducedAt: now,
		}
		storeA.Put(hr)
		storeA.Put(climate)
		// What would the ungoverned plane have done with the vitals?
		leakAuditor.Admit(dataflow.FlowContext{Item: hr, From: wardA, To: research}, now)
	})

	sim.RunUntil(time.Minute)

	fmt.Println("After one virtual minute of patient monitoring:")
	fmt.Println()
	show := func(name string, store *dataflow.Store) {
		_, hrOK := store.Get("patient-17/heart-rate")
		_, tempOK := store.Get("room-301/temperature")
		fmt.Printf("  %-22s heart-rate: %-8v climate: %v\n", name, has(hrOK), has(tempOK))
	}
	show("ward-a gateway", storeA)
	show("ward-b gateway (GDPR)", storeB)
	show("research cloud (CCPA)", cloudStore)

	fmt.Println()
	evaluated, denied := storeA.Engine().Stats()
	fmt.Printf("Ward-a out-flow policy: %d flows evaluated, %d denied by\n", evaluated, denied)
	fmt.Printf("  %q\n", "sensitive-stays-in-jurisdiction")
	fmt.Printf("An ungoverned plane would have leaked %d vitals readings to the\n",
		len(leakAuditor.Violations()))
	fmt.Println("research cloud over the same period.")
}

func has(ok bool) string {
	if ok {
		return "present"
	}
	return "BLOCKED"
}
