// Energy grid: decentralized coordination without central control
// (the paper's Figure 3 narrative). Five substation controllers form a
// Raft group that must keep issuing demand-response commands — shed or
// restore load — as grid frequency drifts. The utility's cloud SCADA
// link fails mid-run and two substations crash, yet the group keeps a
// leader and the control stream continues; a cloud-tethered controller
// is run side by side for contrast.
//
//	go run ./examples/energygrid
package main

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/env"
	"repro/internal/simnet"
)

// shedCmd is a demand-response command counted at the feeder.
type shedCmd struct {
	Period int
	Shed   bool
}

const (
	horizon = 10 * time.Minute
	period  = 2 * time.Second
)

func main() {
	decentralSuccess := runGrid(true)
	centralSuccess := runGrid(false)

	fmt.Println("Demand-response control over a bad afternoon (cloud SCADA outage")
	fmt.Println("20%–60% of the run, two substation crashes):")
	fmt.Println()
	fmt.Printf("  cloud-tethered controller:   %5.1f%% of control periods served\n", centralSuccess*100)
	fmt.Printf("  substation Raft group (ML4): %5.1f%% of control periods served\n", decentralSuccess*100)
	fmt.Println()
	fmt.Println("The decentralized group re-elects around crashed substations and")
	fmt.Println("never depends on the SCADA uplink — no central point of failure.")
}

// runGrid executes one control mode and returns the fraction of
// control periods whose command reached the feeder.
func runGrid(decentralized bool) float64 {
	sim := simnet.New(simnet.WithSeed(21), simnet.WithDefaultLatency(3*time.Millisecond))
	world := env.New(22)
	world.Define("grid", env.Power, env.Process{
		Initial: 50.0, Noise: 0.01, ShockProb: 0.01, ShockMag: 0.3, Min: 48, Max: 52,
	})

	feeder := sim.AddNode("feeder")
	cloud := sim.AddNode("scada")
	subIDs := make([]simnet.NodeID, 5)
	subEps := make([]*simnet.Endpoint, 5)
	for i := range subIDs {
		subIDs[i] = simnet.NodeID(fmt.Sprintf("sub-%d", i))
		subEps[i] = sim.AddNode(subIDs[i])
		sim.SetLinkBidirectional(subIDs[i], "scada", 50*time.Millisecond, 0)
	}
	sim.SetLinkBidirectional("feeder", "scada", 50*time.Millisecond, 0)

	served := map[int]bool{}
	feeder.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		if cmd, ok := msg.(shedCmd); ok {
			served[cmd.Period] = true
		}
	})

	decide := func(ep *simnet.Endpoint) {
		f, _ := world.Value("grid", env.Power)
		ep.Send("feeder", shedCmd{Period: int(sim.Now() / period), Shed: f < 49.9})
	}

	if decentralized {
		nodes := make([]*consensus.Node, len(subIDs))
		for i, ep := range subEps {
			nodes[i] = consensus.New(ep, subIDs, consensus.Config{}, nil)
			nodes[i].Start()
		}
		for i, ep := range subEps {
			n, ep := nodes[i], ep
			ep.Every(period, func() {
				if n.Role() == consensus.Leader {
					decide(ep)
				}
			})
		}
	} else {
		cloud.Every(period, func() { decide(cloud) })
	}

	// Physics: grid frequency drifts each second.
	var step func()
	step = func() {
		world.Step(time.Second)
		if sim.Now()+time.Second <= horizon {
			sim.After(time.Second, step)
		}
	}
	sim.After(time.Second, step)

	// Disruptions: the SCADA uplink dies for 40% of the run, and two
	// substations crash at different times.
	sim.At(horizon/5, func() { sim.SetDown("scada", true) })
	sim.At(3*horizon/5, func() { sim.SetDown("scada", false) })
	sim.At(horizon/4, func() { sim.SetDown("sub-1", true) })
	sim.At(horizon/4+time.Minute, func() { sim.SetDown("sub-1", false) })
	sim.At(horizon/2, func() { sim.SetDown("sub-3", true) })

	sim.RunUntil(horizon)

	expected := int(horizon / period)
	hits := 0
	for p := range served {
		if p >= 0 && p < expected {
			hits++
		}
	}
	return float64(hits) / float64(expected)
}
