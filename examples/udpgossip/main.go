// UDP gossip: the exact protocol code that runs deterministically in
// the simulator, running over real UDP sockets on localhost. Five
// nodes converge on full membership, one is killed for real, and the
// survivors detect and disseminate its death — no simulator involved.
//
//	go run ./examples/udpgossip
package main

import (
	"fmt"
	"time"

	"repro/internal/gossip"
	"repro/internal/realnet"
	"repro/internal/simnet"
)

func main() {
	gossip.RegisterWire(realnet.RegisterWireType)

	const n = 5
	cfg := gossip.Config{
		ProbeInterval:       100 * time.Millisecond,
		ProbeTimeout:        40 * time.Millisecond,
		SuspicionTimeout:    500 * time.Millisecond,
		AntiEntropyInterval: 300 * time.Millisecond,
	}

	nodes := make([]*realnet.Node, n)
	protos := make([]*gossip.Protocol, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
		node, err := realnet.NewNode(ids[i], "127.0.0.1:0")
		must(err)
		nodes[i] = node
		protos[i] = gossip.New(node, cfg)
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				must(a.AddPeer(ids[j], b.Addr()))
			}
		}
	}
	fmt.Printf("starting %d gossip nodes on localhost UDP (seed: %s @ %s)\n",
		n, ids[0], nodes[0].Addr())
	for i, node := range nodes {
		node.Run()
		i := i
		node.Do(func() {
			if i == 0 {
				protos[i].Start()
			} else {
				protos[i].Start(ids[0])
			}
		})
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()

	waitFor(func() bool { return allSee(nodes, protos, n) }, 10*time.Second)
	fmt.Printf("converged: every node sees %d alive members\n", n)

	fmt.Printf("\nkilling %s (socket closed, process state gone)...\n", ids[n-1])
	nodes[n-1].Close()

	waitFor(func() bool { return allSee(nodes[:n-1], protos[:n-1], n-1) }, 10*time.Second)
	// Give the suspicion timeout a moment to confirm the death.
	waitFor(func() bool {
		dead := false
		nodes[0].Do(func() {
			for _, m := range protos[0].Members() {
				if m.ID == ids[n-1] && m.Status == gossip.StatusDead {
					dead = true
				}
			}
		})
		return dead
	}, 10*time.Second)
	fmt.Printf("survivors converged on %d alive members:\n", n-1)
	nodes[0].Do(func() {
		for _, m := range protos[0].Members() {
			fmt.Printf("  %-8s %s (incarnation %d)\n", m.ID, m.Status, m.Incarnation)
		}
	})
}

// allSee reports whether every listed node's protocol counts want
// members alive.
func allSee(nodes []*realnet.Node, protos []*gossip.Protocol, want int) bool {
	for i := range nodes {
		got := -1
		nodes[i].Do(func() { got = protos[i].AliveCount() })
		if got != want {
			return false
		}
	}
	return true
}

func waitFor(cond func() bool, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	panic("condition not reached in time")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
