// Deviceless: the paper's "business logic fully managed and abstracted
// from the infrastructure capabilities" (Table 2). Analytics functions
// are declared by capability and resource demand only; the
// orchestrator picks hosts across a heterogeneous pool, places a
// replicated service with anti-affinity, and heals placements as hosts
// fail and recover — no function ever names a device.
//
//	go run ./examples/deviceless
package main

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/orchestrate"
	"repro/internal/space"
)

func main() {
	// A heterogeneous host pool: two gateways, two cloudlets, one
	// beefy cloud VM.
	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "site", Trusted: true})
	if err := world.AddZone(space.Zone{ID: "hall-1", Max: space.Point{X: 50, Y: 50}, DomainID: "site"}); err != nil {
		panic(err)
	}
	world.Place("gw-a", space.Point{X: 10, Y: 10}, "site")
	world.Place("gw-b", space.Point{X: 40, Y: 40}, "site")
	world.Place("cl-0", space.Point{X: 200, Y: 10}, "site")
	world.Place("cl-1", space.Point{X: 200, Y: 40}, "site")
	world.Place("cloud", space.Point{X: 900, Y: 900}, "site")

	down := map[device.ID]bool{}
	orch := orchestrate.New(world, func(id device.ID) bool { return !down[id] })
	for _, h := range []struct {
		id    device.ID
		class device.Class
	}{
		{"gw-a", device.ClassGateway},
		{"gw-b", device.ClassGateway},
		{"cl-0", device.ClassCloudlet},
		{"cl-1", device.ClassCloudlet},
		{"cloud", device.ClassCloudVM},
	} {
		orch.RegisterHost(device.New(h.id, device.Config{Class: h.class}))
	}

	// 1) A latency-sensitive function pinned to the hall's zone.
	hallFn := orchestrate.Function{
		Name: "hall-anomaly-detector", Requires: []device.Capability{device.CapCompute},
		CPUMIPS: 500, MemMB: 256, Zone: "hall-1", PreferEdge: true,
	}
	host, err := orch.Deploy(hallFn)
	must(err)
	fmt.Printf("hall-anomaly-detector  → %-6s (zone-constrained to hall-1)\n", host)

	// 2) A replicated stream aggregator: three replicas, three
	//    distinct hosts (anti-affinity).
	aggFn := orchestrate.Function{
		Name: "stream-aggregator", Requires: []device.Capability{device.CapCompute},
		CPUMIPS: 2000, MemMB: 512, PreferEdge: true,
	}
	hosts, err := orch.DeployReplicated(aggFn, 3)
	must(err)
	fmt.Printf("stream-aggregator ×3   → %v (anti-affinity)\n", hosts)

	// 3) Kill a host; the orchestrator heals every affected placement.
	victim := hosts[0]
	down[victim] = true
	fmt.Printf("\n%s fails —\n", victim)
	healed := orch.Heal()
	fmt.Printf("self-healing migrated %d placements:\n", healed)
	for _, p := range orch.Placements() {
		status := "ok"
		if !orch.Operational(p.Function.Name) {
			status = "DOWN"
		}
		fmt.Printf("  %-24s on %-6s %s\n", p.Function.Name, p.Host, status)
	}

	// 4) The host returns; a rebalance is one Deploy away.
	down[victim] = false
	fmt.Printf("\n%s recovers — placements stay where they are until the\n", victim)
	fmt.Println("next deploy/heal decision (no churn for churn's sake).")
	st := orch.Stats()
	fmt.Printf("\ntotals: %d deployments, %d migrations, %d failed placements\n",
		st.Deployments, st.Migrations, st.FailedDeploys+st.FailedMigrations)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
