// Smart city: the paper's motivating domain. Eight city zones run
// climate control on edge infrastructure while a scripted "bad day"
// unfolds — rush-hour heat shocks, a backbone (WAN) outage, a
// district-wide power cut taking down two gateways, and an
// administrative handover of one district. The example runs the full
// maturity matrix so the architectures can be compared on the same
// day, then zooms into ML4's per-vector numbers.
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

func main() {
	cfg := core.DefaultScenario()
	cfg.Zones = 8
	cfg.Cloudlets = 3
	cfg.Duration = 15 * time.Minute
	cfg.ShockProb = 0.004 // a hot, busy day
	cfg.Faults = badDay(cfg)

	fmt.Println("Smart-city scenario: 8 districts, 15 virtual minutes, a scripted bad day")
	fmt.Println("(backbone outage → district power cut → administrative handover).")
	fmt.Println()

	reports := core.RunMatrix(cfg)
	fmt.Print(core.FormatReports(reports))
	fmt.Println()

	ml4 := reports[len(reports)-1]
	fmt.Printf("ML4 kept the city within its requirements %.1f%% of the day and\n", ml4.GoalPersistence*100)
	fmt.Printf("healed %d outages autonomously.\n", ml4.AutoRecoveries)
	fmt.Println()
	fmt.Println("Note the nonzero privacy violations even for ML1/ML4: after district 5's")
	fmt.Println("administrative handover, its own gateway sits in a foreign jurisdiction,")
	fmt.Println("so the district's occupancy readings land outside their privacy scope the")
	fmt.Println("moment they are collected — domain transfer as a privacy disruption, one")
	fmt.Println("of the paper's open challenges (policy engines govern flows between")
	fmt.Println("components, but a scope change *under* a component needs re-deployment).")
}

// badDay scripts the day's disruptions against the scenario topology.
// Node IDs follow the scenario's naming: gw-<zone>, cl-<i>, cloud,
// z<zone>-s<i>, z<zone>-act, z<zone>-occ.
func badDay(cfg core.ScenarioConfig) *fault.Schedule {
	s := &fault.Schedule{}
	T := cfg.Duration

	// 09:00 — metro backbone outage: the cloud becomes unreachable
	// for 3 minutes. Every link into the cloud dies, including the
	// direct device uplinks the IoT-Cloud archetype depends on.
	at := T / 10
	for z := 0; z < cfg.Zones; z++ {
		s.CutLink(at, 3*time.Minute, simnet.NodeID(fmt.Sprintf("gw-%d", z)), "cloud")
		s.CutLink(at, 3*time.Minute, simnet.NodeID(fmt.Sprintf("z%d-occ", z)), "cloud")
		s.CutLink(at, 3*time.Minute, simnet.NodeID(fmt.Sprintf("z%d-act", z)), "cloud")
		for i := 0; i < cfg.TempSensorsPerZone; i++ {
			s.CutLink(at, 3*time.Minute, simnet.NodeID(fmt.Sprintf("z%d-s%d", z, i)), "cloud")
		}
	}
	for i := 0; i < cfg.Cloudlets; i++ {
		s.CutLink(at, 3*time.Minute, simnet.NodeID(fmt.Sprintf("cl-%d", i)), "cloud")
	}

	// 11:30 — power cut in districts 2 and 3: both gateways down for
	// 2 minutes; district 2's actuator browns out briefly too.
	at = T / 3
	s.Crash(at, "gw-2", 2*time.Minute)
	s.Crash(at, "gw-3", 2*time.Minute)
	s.Crash(at, "z2-act", 30*time.Second)

	// 14:00 — district 5 is handed to a new operator (administrative
	// domain transfer) and its gateway gets a vendor stack upgrade.
	at = 2 * T / 3
	s.TransferDomain(at, "gw-5", "cloudprov")
	s.UpgradeStack(at, "gw-5")

	// 16:00 — one shared cloudlet fails until the end of the day.
	s.Crash(5*T/6, "cl-0", 0)

	return s
}
