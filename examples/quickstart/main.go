// Quickstart: build the resilient-IoT (ML4) system on the default
// smart-city scenario, disrupt it with the standard fault schedule,
// and print the measured resilience report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
)

func main() {
	cfg := core.DefaultScenario()
	cfg.Duration = 10 * time.Minute

	fmt.Println("Running the ML4 (resilient IoT) archetype for 10 virtual minutes")
	fmt.Println("under the standard disruption schedule (cloud WAN outage, gateway")
	fmt.Println("crashes, an edge partition, a cloud restart)...")
	fmt.Println()

	report := core.NewSystem(cfg, core.ML4).Run()
	fmt.Print(report)

	fmt.Println()
	fmt.Printf("Resilience (persistence of goal satisfaction): %.1f%%\n", report.GoalPersistence*100)
	fmt.Printf("Privacy violations under enforced scopes:      %d\n", report.PrivacyViolations)
	fmt.Println()
	fmt.Println("Compare against the vertically coupled silo (ML1):")
	fmt.Println()
	fmt.Print(core.NewSystem(cfg, core.ML1).Run())
}
