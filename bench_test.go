package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// BenchmarkTable1MaturityMatrix regenerates Tables 1 and 2: the full
// smart-city scenario at every maturity level under the standard
// disruption schedule. Reported metrics carry each archetype's
// headline resilience R (time-weighted goal satisfaction).
func BenchmarkTable1MaturityMatrix(b *testing.B) {
	cfg := core.DefaultScenario()
	var reports []core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = experiments.Table12(cfg)
	}
	b.StopTimer()
	for _, r := range reports {
		b.ReportMetric(r.GoalPersistence, "R_"+r.Archetype.String())
	}
	b.Logf("\n%s", experiments.FormatTable12(reports))
}

// BenchmarkCityScaleMatrix runs the maturity matrix at the Figure-1
// city tier: 200 zones behind 200 gateways — 5009 devices — under the
// heavy disruption schedule. This is the scale the timing-wheel
// scheduler and boxing-free message path exist for; -short swaps in
// the reduced smoke tier CI uses.
func BenchmarkCityScaleMatrix(b *testing.B) {
	cfg := core.CityScenario()
	if testing.Short() {
		cfg = core.CityScenarioSmoke()
	}
	var reports []core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = experiments.Table12(cfg)
	}
	b.StopTimer()
	for _, r := range reports {
		b.ReportMetric(r.GoalPersistence, "R_"+r.Archetype.String())
	}
	b.Logf("\n%s", experiments.FormatTable12(reports))
}

// BenchmarkMatrixCampaignParallel measures the experiment engine's
// scaling: the same 8-seed maturity-matrix campaign on 1, 2, and 4
// workers. Journals are byte-identical at every width (the engine's
// determinism guarantee), so the sub-benchmarks differ only in
// wall-clock time.
func BenchmarkMatrixCampaignParallel(b *testing.B) {
	cfg := core.DefaultScenario()
	cfg.Duration = 5 * time.Minute
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "workers-2", 4: "workers-4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runs, err := experiments.MatrixCampaign(cfg, seeds, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(runs) != len(seeds) {
					b.Fatalf("got %d seed runs, want %d", len(runs), len(seeds))
				}
			}
		})
	}
}

// BenchmarkFigure1LandscapeScale regenerates Figure 1's landscape as a
// capacity experiment: an edge-centric deployment swept from ~100 to
// ~5000 heterogeneous devices for one virtual minute.
func BenchmarkFigure1LandscapeScale(b *testing.B) {
	zoneCounts := []int{20, 100, 400, 1000}
	var points []experiments.Fig1Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.Figure1(1, zoneCounts, time.Minute)
	}
	b.StopTimer()
	last := points[len(points)-1]
	b.ReportMetric(float64(last.Devices), "max_devices")
	b.ReportMetric(last.MsgPerWallSec, "msg/wall_s")
	b.Logf("\n%s", experiments.FormatFigure1(points))
}

// BenchmarkFigure2Verification regenerates Figure 2: system facets
// translated to Kripke structures and checked against resilience
// properties at growing state-space sizes, plus quantitative
// (PCTL-style) bounded-recovery analysis.
func BenchmarkFigure2Verification(b *testing.B) {
	hosts := []int{4, 8, 12, 16}
	bounds := []int{1, 2, 5, 10, 20}
	var points []experiments.Fig2Point
	var quants []experiments.Fig2Quant
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.Figure2(hosts, 3)
		quants = experiments.Figure2Quantitative(bounds)
	}
	b.StopTimer()
	b.ReportMetric(float64(points[len(points)-1].States), "max_states")
	b.Logf("\n%s", experiments.FormatFigure2(points, quants))
}

// BenchmarkFigure3DecentralizedControl regenerates Figure 3: control
// action success of cloud-centralized versus edge-consensus control as
// cloud downtime grows.
func BenchmarkFigure3DecentralizedControl(b *testing.B) {
	downtimes := []float64{0, 0.2, 0.4, 0.6, 0.8}
	var points []experiments.Fig3Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.Figure3(1, downtimes)
	}
	b.StopTimer()
	worst := points[len(points)-1]
	b.ReportMetric(worst.CentralizedSuccess, "central@80%down")
	b.ReportMetric(worst.DecentralizedSuccess, "decentral@80%down")
	b.Logf("\n%s", experiments.FormatFigure3(points))
}

// BenchmarkFigure4DataFlows regenerates Figure 4: availability,
// timeliness and privacy of cloud-mediated versus edge-governed data
// flows under WAN partitions.
func BenchmarkFigure4DataFlows(b *testing.B) {
	duties := []float64{0, 0.25, 0.5, 0.75}
	var points []experiments.Fig4Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.Figure4(1, duties)
	}
	b.StopTimer()
	worst := points[len(points)-1]
	b.ReportMetric(worst.CloudAvail, "cloud_avail@75%down")
	b.ReportMetric(worst.EdgeAvail, "edge_avail@75%down")
	b.ReportMetric(float64(worst.CloudViolations), "cloud_violations")
	b.Logf("\n%s", experiments.FormatFigure4(points))
}

// BenchmarkFigure5MAPEPlacement regenerates Figure 5: the same MAPE-K
// loop placed at the edge versus in the cloud, as the environment's
// rate of change grows.
func BenchmarkFigure5MAPEPlacement(b *testing.B) {
	rates := []float64{1, 2, 4, 8}
	var points []experiments.Fig5Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.Figure5(1, rates)
	}
	b.StopTimer()
	last := points[len(points)-1]
	b.ReportMetric(last.EdgeR, "edge_R@8shocks")
	b.ReportMetric(last.CloudR, "cloud_R@8shocks")
	b.Logf("\n%s", experiments.FormatFigure5(points))
}

// BenchmarkAblationBoltOnVsNative regenerates ablation A1: the
// roadmap's claim that bolt-on mechanisms (retries, re-subscription)
// cannot substitute for natively resilient architecture.
func BenchmarkAblationBoltOnVsNative(b *testing.B) {
	cfg := core.DefaultScenario()
	var reports []core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = experiments.AblationA1(cfg)
	}
	b.StopTimer()
	b.ReportMetric(reports[0].GoalPersistence, "R_ML2_plain")
	b.ReportMetric(reports[1].GoalPersistence, "R_ML2_bolton")
	b.ReportMetric(reports[2].GoalPersistence, "R_ML4_native")
	b.Logf("\nplain / bolt-on / native:\n%s", experiments.FormatTable12(reports))
}

// BenchmarkExtensionMobility regenerates extension X1: a mobile device
// crossing zone boundaries, static binding versus nearest-edge
// handover over the replicated data plane (the paper's mobility
// concern, §VII).
func BenchmarkExtensionMobility(b *testing.B) {
	speeds := []float64{1, 2, 4, 8}
	var points []experiments.MobilityPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.ExtensionMobility(1, speeds)
	}
	b.StopTimer()
	last := points[len(points)-1]
	b.ReportMetric(last.StaticFreshness, "static_fresh@8mps")
	b.ReportMetric(last.HandoverFreshness, "handover_fresh@8mps")
	b.Logf("\n%s", experiments.FormatMobility(points))
}

// BenchmarkExtensionCost regenerates extension X2: the ML4 data
// plane's sync interval swept against resilience and traffic — the
// knob that prices the paper's "combined effect".
func BenchmarkExtensionCost(b *testing.B) {
	cfg := core.DefaultScenario()
	intervals := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 15 * time.Second}
	var points []experiments.X2Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.ExtensionCost(cfg, intervals)
	}
	b.StopTimer()
	b.ReportMetric(points[0].GoalR, "R@1s")
	b.ReportMetric(points[len(points)-1].GoalR, "R@15s")
	b.Logf("\n%s", experiments.FormatCost(points))
}

// BenchmarkAblationDecentralization regenerates ablation A2: ML4 with
// one decentralization mechanism removed at a time.
func BenchmarkAblationDecentralization(b *testing.B) {
	cfg := core.DefaultScenario()
	var variants []experiments.A2Variant
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		variants = experiments.AblationA2(cfg)
	}
	b.StopTimer()
	for _, v := range variants {
		b.ReportMetric(v.Report.GoalPersistence, "R_"+v.Name)
	}
	b.Logf("\n%s", experiments.FormatA2(variants))
}

// BenchmarkObsOverhead prices the observability layer: the same
// disrupted ML4 run with the bus idle (no subscribers — the fast
// path every production run takes) versus with a trace collector
// attached. The delta is the full cost of capturing every event.
func BenchmarkObsOverhead(b *testing.B) {
	cfg := core.DefaultScenario()
	cfg.Duration = 5 * time.Minute
	b.Run("zero-subscribers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(cfg, core.ML4)
			sys.Run()
		}
	})
	b.Run("trace-subscriber", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(cfg, core.ML4)
			tc := obs.Collect(sys.Bus())
			sys.Run()
			tc.Close()
			if tc.Len() == 0 {
				b.Fatal("trace collector saw no events")
			}
		}
	})
}
