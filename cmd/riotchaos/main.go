// Command riotchaos searches disruption-schedule space for requirement
// violations, minimizes what it finds, and replays the committed corpus
// as a regression suite.
//
// Usage:
//
//	riotchaos search -arch ML1 -budget 100 -parallel 4 [-min-events 3] [-corpus DIR]
//	riotchaos shrink -in schedule.json -arch ML1 [-out ce.json]
//	riotchaos replay -corpus DIR [-parallel 4]
//	riotchaos verify -corpus DIR [-parallel 4] [-explain] [-flight-dir DIR]
//	riotchaos refresh -corpus DIR
//	riotchaos realnet -corpus DIR [-match SUBSTR] [-limit N] [-profile default|hardened|both|none] [-scale 0.1] [-city] [-city-entry NAME] [-explain]
//
// search judges -budget candidate schedules (deterministically derived
// from -seed) against the oracle and delta-debugs every violation to a
// minimal counterexample; -min-events floors the generated schedules so
// post-hardening campaigns hunt fault combinations instead of
// re-finding single events; with -corpus the deduplicated minimal
// counterexamples are written there as replayable JSON artifacts.
// shrink minimizes one failing schedule read from a fault.Schedule JSON
// file. replay re-runs every committed counterexample and verifies both
// the expected failure kinds and a byte-identical journal hash, serially
// or with -parallel workers — the result is the same either way.
// verify replays the corpus against the hardened scenario profile
// (core.ScenarioConfig.Hardened: island mode, placement spreading,
// backup actuators, sticky failover) and checks each entry against its
// `expect` field: hardened ML4 must fix its partition-island and
// actuator-loss entries, while ML1 entries must still fail — the
// maturity ordering the paper claims. With -explain each entry also
// prints a riotscope incident timeline of its hardened run; with
// -flight-dir, entries that still fail hardened dump a flight-recorder
// artifact (the moments leading up to the failure) there.
// realnet replays corpus entries on real loopback UDP sockets at a
// wall-clock time scale: the entry's topology boots live, every fault
// kind arms on wall timers (skipped arms fail the run), and the oracle
// judges outcomes — default-knob runs must still fail, hardened runs
// must match their `expect` field; -city additionally boots the city
// smoke tier live under hardened ML4, replays the -city-entry corpus
// schedule against it at the entry's horizon, and requires the city to
// survive the oracle.
// refresh re-runs every entry at default knobs and re-records its
// journal hash, goal persistence and hash-suffixed file name — the
// maintained path after an intentional behavioral change (e.g. a wire-
// protocol rework) moves every hash; entries whose recorded failures no
// longer reproduce abort the refresh and must be re-minimized instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/observatory"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: riotchaos <search|shrink|replay> [flags]")
	}
	switch args[0] {
	case "search":
		return runSearch(args[1:], out)
	case "shrink":
		return runShrink(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	case "verify":
		return runVerify(args[1:], out)
	case "refresh":
		return runRefresh(args[1:], out)
	case "realnet":
		return runRealnet(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want search, shrink, replay, verify, refresh or realnet)", args[0])
	}
}

// oracleFlags registers the flags shared by search and shrink and
// returns a builder resolving them into a chaos.Config.
func oracleFlags(fs *flag.FlagSet) func() (chaos.Config, error) {
	arch := fs.String("arch", "ML4", "architecture maturity level under test: ML1..ML4")
	zones := fs.Int("zones", 4, "number of zones")
	duration := fs.Duration("duration", 6*time.Minute, "virtual run duration per candidate")
	seed := fs.Int64("scenario-seed", 1, "simulation seed of the scenario itself")
	floor := fs.Float64("floor", chaos.DefaultMinPersistence,
		"goal-persistence floor R; below it a run fails (negative disables)")
	return func() (chaos.Config, error) {
		a, err := core.ParseArchetype(*arch)
		if err != nil {
			return chaos.Config{}, err
		}
		sc := core.DefaultScenario()
		sc.Zones = *zones
		sc.Duration = *duration
		sc.Seed = *seed
		return chaos.Config{Scenario: sc, Archetype: a, MinPersistence: *floor}, nil
	}
}

func runSearch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos search", flag.ContinueOnError)
	cfgOf := oracleFlags(fs)
	budget := fs.Int("budget", 50, "number of candidate schedules to evaluate")
	parallel := fs.Int("parallel", 1, "worker count (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "search seed (candidate derivation)")
	minEvents := fs.Int("min-events", 0, "floor on events per candidate schedule (multi-fault campaigns)")
	corpusDir := fs.String("corpus", "", "write deduplicated minimal counterexamples to this directory")
	verbose := fs.Bool("v", false, "stream chaos.* progress events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	cfg.MinEvents = *minEvents
	if *verbose {
		cfg.Bus = obs.NewBus(nil)
		sub := cfg.Bus.SubscribeFunc(func(ev obs.Event) {
			fmt.Fprintf(out, "# %-20s %s\n", ev.Kind, ev.Detail)
		})
		defer sub.Close()
	}

	res, err := chaos.Search(cfg, *seed, *budget, *parallel)
	if err != nil {
		return err
	}
	found := chaos.DedupFound(res.Found)
	fmt.Fprintf(out, "search: arch=%s budget=%d seed=%d — %d violation(s), %d distinct, %d oracle runs\n",
		cfg.Archetype.ShortName(), res.Budget, *seed, len(res.Found), len(found), res.OracleRuns)
	for _, f := range found {
		sr := f.Minimal
		fmt.Fprintf(out, "\ncandidate %d: %s\n", f.Index, sr.Verdict)
		fmt.Fprintf(out, "  R(goal)=%.3f  events %d→%d (shrunk in %d runs)\n",
			sr.Verdict.Report.GoalPersistence, sr.FromEvents, sr.ToEvents, sr.Runs)
		fmt.Fprint(out, indent(sr.Schedule.String()))
	}
	if *corpusDir != "" {
		for _, f := range found {
			ce := chaos.NewCounterexample(cfg, f.Minimal)
			ce.Found = fmt.Sprintf("riotchaos search -seed %d -budget %d, candidate %d", *seed, *budget, f.Index)
			path, err := ce.WriteFile(*corpusDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "\nwrote %s\n", path)
		}
	}
	return nil
}

func runShrink(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos shrink", flag.ContinueOnError)
	cfgOf := oracleFlags(fs)
	in := fs.String("in", "", "failing schedule to minimize (fault.Schedule JSON)")
	outPath := fs.String("out", "", "write the minimized counterexample JSON here")
	budget := fs.Int("budget", chaos.DefaultShrinkBudget, "oracle-run budget for shrinking")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("shrink: -in is required")
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var s fault.Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("shrink: %s: %w", *in, err)
	}
	oracle := chaos.NewOracle(cfg)
	v := oracle.Run(&s)
	if !v.Failed() {
		return fmt.Errorf("shrink: schedule in %s passes the oracle; nothing to minimize", *in)
	}
	sr := chaos.Shrink(oracle, &s, v, *budget)
	fmt.Fprintf(out, "shrink: %s\n  events %d→%d in %d oracle runs\n",
		sr.Verdict, sr.FromEvents, sr.ToEvents, sr.Runs)
	fmt.Fprint(out, indent(sr.Schedule.String()))
	if *outPath != "" {
		ce := chaos.NewCounterexample(cfg, sr)
		ce.Found = fmt.Sprintf("riotchaos shrink -in %s", *in)
		data, err := json.MarshalIndent(ce, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos replay", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "corpus/chaos", "counterexample corpus directory")
	parallel := fs.Int("parallel", 1, "worker count (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ces, err := chaos.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	if len(ces) == 0 {
		return fmt.Errorf("replay: no counterexamples in %s", *corpusDir)
	}
	results, err := chaos.ReplayAll(ces, *parallel)
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(out, "FAIL  %s: %v\n", r.Name, r.Err)
		} else {
			fmt.Fprintf(out, "ok    %s\n", r.Name)
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d counterexample(s): all reproduce byte-identically\n", len(results))
	return nil
}

func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos verify", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "corpus/chaos", "counterexample corpus directory")
	parallel := fs.Int("parallel", 1, "worker count (0 = GOMAXPROCS)")
	explain := fs.Bool("explain", false, "print an incident timeline per entry (riotscope analysis of the hardened run)")
	flightDir := fs.String("flight-dir", "", "dump flight-recorder artifacts here for entries that still fail hardened")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ces, err := chaos.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	if len(ces) == 0 {
		return fmt.Errorf("verify: no counterexamples in %s", *corpusDir)
	}
	byName := make(map[string]*chaos.Counterexample, len(ces))
	for _, ce := range ces {
		byName[ce.Name] = ce
	}
	results, err := chaos.VerifyAllObserved(ces, *parallel, chaos.VerifyOptions{FlightDir: *flightDir})
	fixed := 0
	for _, r := range results {
		mark := "ok  "
		if r.Err != nil {
			mark = "FAIL"
		}
		if r.Status == chaos.ExpectFixed {
			fixed++
		}
		fmt.Fprintf(out, "%s  %-12s %-44s R=%.3f (was %.3f) expect=%s\n",
			mark, r.Status, r.Name, r.R, r.RecordedR, r.Expect)
		if r.Detail != "" {
			fmt.Fprintf(out, "      %s\n", r.Detail)
		}
		if *explain && r.Journal != nil {
			cfg, cfgErr := byName[r.Name].HardenedConfig()
			if cfgErr != nil {
				return cfgErr
			}
			a := observatory.Analyze(r.Journal, observatory.Options{
				Duration: cfg.Scenario.Duration, Zones: cfg.Scenario.Zones,
			})
			fmt.Fprint(out, indent(observatory.FormatAnalysis(a, false)))
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "verified %d counterexample(s) against the hardened profile: %d fixed, %d still-fail — all as expected\n",
		len(results), fixed, len(results)-fixed)
	return nil
}

func runRefresh(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos refresh", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "corpus/chaos", "counterexample corpus directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ces, err := chaos.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	if len(ces) == 0 {
		return fmt.Errorf("refresh: no counterexamples in %s", *corpusDir)
	}
	refreshed := 0
	for _, ce := range ces {
		oldName := ce.Name
		changed, err := ce.Refresh()
		if err != nil {
			return err
		}
		if !changed {
			fmt.Fprintf(out, "ok         %s\n", ce.Name)
			continue
		}
		if _, err := ce.WriteFile(*corpusDir); err != nil {
			return err
		}
		if ce.Name != oldName {
			if err := os.Remove(filepath.Join(*corpusDir, oldName+".json")); err != nil {
				return err
			}
		}
		refreshed++
		fmt.Fprintf(out, "refreshed  %s -> %s (R=%.3f)\n", oldName, ce.Name, ce.GoalPersistence)
	}
	fmt.Fprintf(out, "refreshed %d of %d counterexample(s)\n", refreshed, len(ces))
	return nil
}

// indent prefixes every line with four spaces.
func indent(s string) string {
	if s == "" {
		return s
	}
	var b []byte
	for _, line := range splitLines(s) {
		b = append(b, "    "...)
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
