package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
)

func TestSearchFindsShrinksAndSavesCorpus(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"search", "-arch", "ML1", "-budget", "10", "-parallel", "2",
		"-duration", "4m", "-corpus", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "violation(s)") || strings.Contains(out.String(), " 0 violation(s)") {
		t.Fatalf("search found nothing:\n%s", out.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files written (err=%v)", err)
	}

	// The saved corpus must replay byte-identically, serially and with
	// 4 workers.
	for _, parallel := range []string{"1", "4"} {
		var rep strings.Builder
		if err := run([]string{"replay", "-corpus", dir, "-parallel", parallel}, &rep); err != nil {
			t.Fatalf("replay -parallel %s: %v\n%s", parallel, err, rep.String())
		}
		if !strings.Contains(rep.String(), "all reproduce byte-identically") {
			t.Fatalf("replay -parallel %s output:\n%s", parallel, rep.String())
		}
	}
}

func TestShrinkSubcommand(t *testing.T) {
	dir := t.TempDir()
	s := &fault.Schedule{}
	s.Crash(time.Minute, "gw-0", 0)
	s.UpgradeStack(30*time.Second, "gw-1")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "sched.json")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ce := filepath.Join(dir, "min.json")
	var out strings.Builder
	if err := run([]string{"shrink", "-arch", "ML1", "-duration", "4m", "-in", in, "-out", ce}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events 2→1") {
		t.Fatalf("shrink output:\n%s", out.String())
	}
	var rep strings.Builder
	if err := run([]string{"replay", "-corpus", dir}, &rep); err == nil {
		t.Fatal("replay accepted sched.json (no schema) as a counterexample")
	}
	// Drop the raw schedule; the minimized counterexample alone replays.
	if err := os.Remove(in); err != nil {
		t.Fatal(err)
	}
	rep.Reset()
	if err := run([]string{"replay", "-corpus", dir}, &rep); err != nil {
		t.Fatalf("replay: %v\n%s", err, rep.String())
	}
}

func TestShrinkRejectsPassingSchedule(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(in, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"shrink", "-arch", "ML1", "-duration", "4m", "-in", in}, &out)
	if err == nil || !strings.Contains(err.Error(), "passes the oracle") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"explode"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"search", "-arch", "ML9"}, &out); err == nil {
		t.Fatal("bad archetype accepted")
	}
	if err := run([]string{"search", "-budget", "0"}, &out); err == nil {
		t.Fatal("zero budget accepted")
	}
	if err := run([]string{"shrink"}, &out); err == nil {
		t.Fatal("shrink without -in accepted")
	}
	if err := run([]string{"replay", "-corpus", "/does/not/exist"}, &out); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestVerifySubcommand(t *testing.T) {
	dir := t.TempDir()
	cfg, err := verifyFixtureConfig()
	if err != nil {
		t.Fatal(err)
	}
	o := chaos.NewOracle(cfg)
	s := &fault.Schedule{}
	s.Crash(time.Minute, "gw-0", 0)
	v := o.Run(s)
	if !v.Failed() {
		t.Fatal("fixture schedule passes")
	}
	ce := chaos.NewCounterexample(cfg, chaos.Shrink(o, s, v, 0))
	// ML1 has no mechanism against a dead gateway: still-fails (the
	// empty-Expect default) must verify green.
	if _, err := ce.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"verify", "-corpus", dir, "-parallel", "2"}, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 fixed, 1 still-fail — all as expected") {
		t.Fatalf("verify output:\n%s", out.String())
	}

	// Declaring the same entry fixed must fail the run.
	ce.Expect = chaos.ExpectFixed
	if _, err := ce.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"verify", "-corpus", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "corpus expects fixed") {
		t.Fatalf("expectation mismatch not reported: %v\n%s", err, out.String())
	}
}

// verifyFixtureConfig is the short ML1 scenario the verify test pins.
func verifyFixtureConfig() (chaos.Config, error) {
	arch, err := core.ParseArchetype("ML1")
	if err != nil {
		return chaos.Config{}, err
	}
	sc := core.DefaultScenario()
	sc.Duration = 4 * time.Minute
	return chaos.Config{Scenario: sc, Archetype: arch}, nil
}
