package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/observatory"
)

// runRealnet replays the corpus on real loopback UDP sockets: each
// entry's topology boots as live riotnode-style endpoints, the schedule
// arms on wall-clock timers (crashes, partitions, link shaping — every
// fault kind), and the oracle judges the outcome. The expectations
// mirror `replay`/`verify` at the outcome level: default-knob runs must
// still fail (they are counterexamples), hardened runs must match each
// entry's `expect` field. Journal hashes are never compared — live runs
// carry no bit-level determinism contract (DESIGN.md §14).
func runRealnet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotchaos realnet", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "corpus/chaos", "counterexample corpus directory")
	match := fs.String("match", "", "only replay entries whose name contains this substring")
	limit := fs.Int("limit", 0, "replay at most this many entries (0 = all)")
	profile := fs.String("profile", "both", "scenario profile to replay: default, hardened, both or none (city only)")
	scale := fs.Float64("scale", 0.1, "wall-clock time scale (wall = virtual × scale)")
	city := fs.Bool("city", false, "additionally boot the city smoke tier live (hardened ML4) under a corpus entry's schedule")
	cityEntry := fs.String("city-entry", "ml4-low-persistence-af146e73", "corpus entry whose schedule the live city replays")
	explain := fs.Bool("explain", false, "print an incident timeline per live run (riotscope analysis)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var wantDefault, wantHardened bool
	switch *profile {
	case "default":
		wantDefault = true
	case "hardened":
		wantHardened = true
	case "both":
		wantDefault, wantHardened = true, true
	case "none":
		// Corpus replays skipped: only the -city run, if requested.
	default:
		return fmt.Errorf("realnet: -profile %q (want default, hardened, both or none)", *profile)
	}
	if !wantDefault && !wantHardened && !*city {
		return fmt.Errorf("realnet: -profile none without -city selects nothing")
	}

	ces, err := chaos.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	var picked []*chaos.Counterexample
	for _, ce := range ces {
		if *match != "" && !strings.Contains(ce.Name, *match) {
			continue
		}
		picked = append(picked, ce)
		if *limit > 0 && len(picked) == *limit {
			break
		}
	}
	if len(picked) == 0 && !*city {
		return fmt.Errorf("realnet: no counterexamples selected in %s", *corpusDir)
	}

	mismatches := 0
	runs := 0
	for _, ce := range picked {
		if wantDefault {
			if !replayOneLive(out, ce, chaos.LiveOptions{TimeScale: *scale}, *explain) {
				mismatches++
			}
			runs++
		}
		if wantHardened {
			if !replayOneLive(out, ce, chaos.LiveOptions{TimeScale: *scale, Hardened: true}, *explain) {
				mismatches++
			}
			runs++
		}
	}
	if *city {
		var entry *chaos.Counterexample
		for _, ce := range ces {
			if ce.Name == *cityEntry {
				entry = ce
				break
			}
		}
		if entry == nil {
			return fmt.Errorf("realnet: -city-entry %q not found in %s", *cityEntry, *corpusDir)
		}
		ok, err := runCityLive(out, entry, *scale, *explain)
		if err != nil {
			return err
		}
		if !ok {
			mismatches++
		}
		runs++
	}
	if mismatches > 0 {
		return fmt.Errorf("realnet: %d of %d live run(s) did not match expectations", mismatches, runs)
	}
	fmt.Fprintf(out, "realnet: %d live run(s) on real sockets — all as expected\n", runs)
	return nil
}

// replayOneLive runs one entry × profile and prints its row. Returns
// false on an error or expectation mismatch.
func replayOneLive(out io.Writer, ce *chaos.Counterexample, opts chaos.LiveOptions, explain bool) bool {
	prof := "default"
	expect := chaos.ExpectStillFails
	if opts.Hardened {
		prof = "hardened"
		expect = ce.Expect
		if expect == "" {
			expect = chaos.ExpectStillFails
		}
	}
	res := ce.ReplayLive(opts)
	if res.Err != nil {
		fmt.Fprintf(out, "FAIL  %-8s %-12s %-44s %v\n", prof, "error", ce.Name, res.Err)
		return false
	}
	ok := res.Status == expect
	mark := "ok  "
	if !ok {
		mark = "FAIL"
	}
	fmt.Fprintf(out, "%s  %-8s %-12s %-44s R=%.3f (sim %.3f) armed=%d skipped=%d wall=%s\n",
		mark, prof, res.Status, ce.Name, res.Report.GoalPersistence, ce.GoalPersistence,
		res.Info.Armed, res.Info.Skipped, res.Info.WallDuration.Round(time.Millisecond))
	if !ok {
		fmt.Fprintf(out, "      expected %s, got %s: %s\n", expect, res.Status, res.Verdict)
	}
	if explain && res.Verdict.Journal != nil {
		a := observatory.Analyze(res.Verdict.Journal, observatory.Options{Zones: zonesOf(ce)})
		fmt.Fprint(out, indent(observatory.FormatAnalysis(a, false)))
	}
	return ok
}

// zonesOf reads the entry's zone count for observatory analysis.
func zonesOf(ce *chaos.Counterexample) int {
	cfg, err := ce.Config()
	if err != nil {
		return 0
	}
	return cfg.Scenario.Zones
}

// runCityLive boots the city smoke tier (hardened ML4) on real sockets
// and replays one corpus entry's schedule against it at the entry's
// recorded horizon — "the city survives its corpus": the hardened city
// must pass the same oracle the corpus was found with. The entry's
// explicit fault groups name nodes from the corpus-scale topology;
// unlisted city nodes land in the implicit complement group, exactly as
// in simulation. Returns whether the city survived.
func runCityLive(out io.Writer, ce *chaos.Counterexample, scale float64, explain bool) (bool, error) {
	sc := core.CityScenarioSmoke().Hardened()
	sc.Preset = core.FaultsNone
	sc.Faults = ce.Schedule
	if d, err := time.ParseDuration(ce.Duration); err == nil && d > 0 {
		sc.Duration = d
	}
	sys, err := core.NewLiveSystem(sc, core.ML4, core.LiveConfig{TimeScale: scale})
	if err != nil {
		return false, err
	}
	report, info, err := sys.RunLive()
	if err != nil {
		return false, err
	}
	journal := sys.Journal()
	v := chaos.NewOracle(chaos.Config{Scenario: sc, Archetype: core.ML4}).JudgeLive(report, journal)
	ok := !v.Failed() && info.Skipped == 0 && info.Armed == ce.Schedule.Len()
	mark := "ok  "
	status := "survived"
	if !ok {
		mark, status = "FAIL", "failed"
	}
	fmt.Fprintf(out, "%s  %-8s %-12s %-44s R=%.3f armed=%d skipped=%d wall=%s net(sent=%d recv=%d dropped=%d)\n",
		mark, "city", status, "city:"+ce.Name, report.GoalPersistence,
		info.Armed, info.Skipped, info.WallDuration.Round(time.Millisecond),
		info.Net.Sent, info.Net.Received, info.Net.Dropped)
	if !ok {
		fmt.Fprintf(out, "      %s\n", v)
	}
	if explain {
		a := observatory.Analyze(journal, observatory.Options{Duration: sc.Duration, Zones: sc.Zones})
		fmt.Fprint(out, indent(observatory.FormatAnalysis(a, false)))
	}
	return ok, nil
}
