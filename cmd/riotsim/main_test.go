package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunSingleArchetype(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-arch", "ML1", "-duration", "2m", "-preset", "none"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ML1-silo") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunMatrix(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-matrix", "-duration", "2m", "-preset", "none"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ML1-silo", "ML2-cloud", "ML3-edge", "ML4-resilient"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %s in output:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-arch", "ML9"}, &out); err == nil {
		t.Fatal("bad archetype accepted")
	}
	if err := run([]string{"-preset", "bogus"}, &out); err == nil {
		t.Fatal("bad preset accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestParseArchetype(t *testing.T) {
	if _, err := core.ParseArchetype("ml3"); err != nil {
		t.Fatal("lowercase archetype rejected")
	}
}
