// Command riotsim runs the smart-city scenario at one architecture
// maturity level and prints its resilience report.
//
// Usage:
//
//	riotsim -arch ML4 -zones 4 -duration 20m -seed 1 -preset standard
//
// With -trace the full observability event stream (faults, causal
// violation/recovery spans, gossip, Raft, MAPE cycles, actuations) is
// written as Chrome trace-event JSON, viewable in chrome://tracing or
// https://ui.perfetto.dev:
//
//	riotsim -arch ML4 -duration 5m -trace run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotsim", flag.ContinueOnError)
	archName := fs.String("arch", "ML4", "architecture maturity level: ML1, ML2, ML3 or ML4")
	zones := fs.Int("zones", 4, "number of zones")
	duration := fs.Duration("duration", 20*time.Minute, "virtual run duration")
	seed := fs.Int64("seed", 1, "simulation seed")
	preset := fs.String("preset", "standard", "fault preset: standard, none or heavy")
	matrix := fs.Bool("matrix", false, "run all four archetypes (Tables 1/2)")
	events := fs.Bool("events", false, "print the run journal (faults, placements, violations, alerts)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file of the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultScenario()
	cfg.Zones = *zones
	cfg.Duration = *duration
	cfg.Seed = *seed
	switch strings.ToLower(*preset) {
	case "standard":
		cfg.Preset = core.FaultsStandard
	case "none":
		cfg.Preset = core.FaultsNone
	case "heavy":
		cfg.Preset = core.FaultsHeavy
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	if *matrix {
		if *trace != "" {
			return fmt.Errorf("-trace needs a single run; drop -matrix")
		}
		reports := core.RunMatrix(cfg)
		fmt.Fprint(out, core.FormatReports(reports))
		return nil
	}

	arch, err := core.ParseArchetype(*archName)
	if err != nil {
		return err
	}
	sys := core.NewSystem(cfg, arch)
	var tc *obs.TraceCollector
	if *trace != "" {
		tc = obs.Collect(sys.Bus())
	}
	report := sys.Run()
	fmt.Fprint(out, report.String())
	if *events {
		fmt.Fprintf(out, "\nrun journal (%d events):\n", len(sys.Journal()))
		fmt.Fprint(out, core.FormatJournal(sys.Journal()))
	}
	if tc != nil {
		tc.Close()
		if err := tc.WriteChromeTraceFile(*trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d events written to %s\n", tc.Len(), *trace)
	}
	return nil
}
