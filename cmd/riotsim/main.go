// Command riotsim runs the smart-city scenario at one architecture
// maturity level and prints its resilience report.
//
// Usage:
//
//	riotsim -arch ML4 -zones 4 -duration 20m -seed 1 -preset standard
//
// -tier selects a scenario preset (default, city, city-smoke, metro,
// metro-smoke); -zones and -duration still override it when given
// explicitly. -shards runs the zone-sharded scheduler (DESIGN.md §11):
// -shards 1 is the serial reference leg and higher counts execute zone
// lanes in parallel with a byte-identical journal, which -hash prints
// for differential checks (the metropolis-determinism CI job diffs
// these across shard counts):
//
//	riotsim -tier city-smoke -arch ML4 -shards 4 -hash
//
// With -trace the full observability event stream (faults, causal
// violation/recovery spans, gossip, Raft, MAPE cycles, actuations) is
// written as Chrome trace-event JSON, viewable in chrome://tracing or
// https://ui.perfetto.dev:
//
//	riotsim -arch ML4 -duration 5m -trace run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotsim", flag.ContinueOnError)
	archName := fs.String("arch", "ML4", "architecture maturity level: ML1, ML2, ML3 or ML4")
	tier := fs.String("tier", "default", "scenario tier: default, city, city-smoke, metro or metro-smoke")
	zones := fs.Int("zones", 4, "number of zones")
	duration := fs.Duration("duration", 20*time.Minute, "virtual run duration")
	seed := fs.Int64("seed", 1, "simulation seed")
	shards := fs.Int("shards", 0, "zone-shard count (0 = legacy serial scheduler, 1 = sharded reference leg)")
	preset := fs.String("preset", "standard", "fault preset: standard, none or heavy")
	matrix := fs.Bool("matrix", false, "run all four archetypes (Tables 1/2)")
	events := fs.Bool("events", false, "print the run journal (faults, placements, violations, alerts)")
	hash := fs.Bool("hash", false, "print the journal hash (per archetype with -matrix)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file of the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg core.ScenarioConfig
	switch strings.ToLower(*tier) {
	case "default":
		cfg = core.DefaultScenario()
	case "city":
		cfg = core.CityScenario()
	case "city-smoke":
		cfg = core.CityScenarioSmoke()
	case "metro":
		cfg = core.MetropolisScenario()
	case "metro-smoke":
		cfg = core.MetropolisScenarioSmoke()
	default:
		return fmt.Errorf("unknown tier %q", *tier)
	}
	// -zones/-duration defaults describe the default tier; only apply
	// them over a named tier when the user set them explicitly.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *tier == "default" || explicit["zones"] {
		cfg.Zones = *zones
	}
	if *tier == "default" || explicit["duration"] {
		cfg.Duration = *duration
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	switch strings.ToLower(*preset) {
	case "standard":
		cfg.Preset = core.FaultsStandard
	case "none":
		cfg.Preset = core.FaultsNone
	case "heavy":
		cfg.Preset = core.FaultsHeavy
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	if *matrix {
		if *trace != "" {
			return fmt.Errorf("-trace needs a single run; drop -matrix")
		}
		if *hash {
			for _, a := range core.AllArchetypes() {
				sys := core.NewSystem(cfg, a)
				sys.Run()
				fmt.Fprintf(out, "journal arch=%s %s\n", a, sys.JournalHash())
			}
			return nil
		}
		reports := core.RunMatrix(cfg)
		fmt.Fprint(out, core.FormatReports(reports))
		return nil
	}

	arch, err := core.ParseArchetype(*archName)
	if err != nil {
		return err
	}
	sys := core.NewSystem(cfg, arch)
	var tc *obs.TraceCollector
	if *trace != "" {
		tc = obs.Collect(sys.Bus())
	}
	report := sys.Run()
	fmt.Fprint(out, report.String())
	if *hash {
		fmt.Fprintf(out, "journal %s\n", sys.JournalHash())
	}
	if *events {
		fmt.Fprintf(out, "\nrun journal (%d events):\n", len(sys.Journal()))
		fmt.Fprint(out, core.FormatJournal(sys.Journal()))
	}
	if tc != nil {
		tc.Close()
		if err := tc.WriteChromeTraceFile(*trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d events written to %s\n", tc.Len(), *trace)
	}
	return nil
}
