// Command riotverify checks resilience properties of a software
// configuration model — the Figure 2 pipeline as a tool. The input is
// a JSON specification of components (with hosts, provided and
// required services), a failure assumption, and CTL properties over
// the derived propositions (svc:<name>, comp:<id>, all-up).
//
// Example specification:
//
//	{
//	  "maxConcurrentFailures": 1,
//	  "components": [
//	    {"id": "sense-a", "host": "s1", "provides": ["sensing"]},
//	    {"id": "sense-b", "host": "s2", "provides": ["sensing"]},
//	    {"id": "ctrl", "host": "gw", "provides": ["control"],
//	     "requires": ["sensing"]}
//	  ],
//	  "properties": [
//	    {"name": "sensing-redundant", "formula": "AG svc:sensing"},
//	    {"name": "recoverable", "formula": "AG EF all-up"}
//	  ]
//	}
//
// Usage:
//
//	riotverify spec.json
//	riotverify -          # read the specification from stdin
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/verify"
)

// spec is the JSON input schema.
type spec struct {
	MaxConcurrentFailures int             `json:"maxConcurrentFailures"`
	Components            []specComponent `json:"components"`
	Properties            []specProperty  `json:"properties"`
}

type specComponent struct {
	ID       string   `json:"id"`
	Host     string   `json:"host"`
	Provides []string `json:"provides"`
	Requires []string `json:"requires"`
}

type specProperty struct {
	Name    string `json:"name"`
	Formula string `json:"formula"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotverify:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: riotverify <spec.json | ->")
	}
	var data []byte
	var err error
	if args[0] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}

	var s spec
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("parsing specification: %w", err)
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("specification has no components")
	}
	if len(s.Properties) == 0 {
		return fmt.Errorf("specification has no properties")
	}

	cfg := model.NewConfiguration()
	for _, c := range s.Components {
		comp := model.Component{ID: model.ComponentID(c.ID), Host: c.Host}
		for _, p := range c.Provides {
			comp.Provides = append(comp.Provides, model.Service(p))
		}
		for _, r := range c.Requires {
			comp.Requires = append(comp.Requires, model.Service(r))
		}
		cfg.Add(comp)
	}

	maxDown := s.MaxConcurrentFailures
	if maxDown == 0 {
		maxDown = 1
	}
	k, err := model.FailureKripke(cfg, model.FailureModelOptions{MaxConcurrentFailures: maxDown})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "model: %d components on %d hosts, ≤%d concurrent failures → %d states\n",
		len(s.Components), len(cfg.Hosts()), maxDown, k.NumStates())

	failed := 0
	for _, p := range s.Properties {
		f, err := verify.ParseCTL(p.Formula)
		if err != nil {
			return fmt.Errorf("property %q: %w", p.Name, err)
		}
		holds := verify.Check(k, f)
		verdict := "HOLDS"
		if !holds {
			verdict = "FAILS"
			failed++
		}
		fmt.Fprintf(out, "%-7s %s: %s\n", verdict, p.Name, p.Formula)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d properties failed", failed, len(s.Properties))
	}
	return nil
}
