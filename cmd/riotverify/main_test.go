package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodSpec = `{
  "maxConcurrentFailures": 1,
  "components": [
    {"id": "sense-a", "host": "s1", "provides": ["sensing"]},
    {"id": "sense-b", "host": "s2", "provides": ["sensing"]}
  ],
  "properties": [
    {"name": "redundant", "formula": "AG svc:sensing"}
  ]
}`

func TestRunGoodSpec(t *testing.T) {
	var out strings.Builder
	if err := run([]string{writeSpec(t, goodSpec)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HOLDS") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunFailingProperty(t *testing.T) {
	spec := `{
	  "components": [{"id": "c", "host": "h", "provides": ["x"]}],
	  "properties": [{"name": "spa", "formula": "AG svc:x"}]
	}`
	var out strings.Builder
	err := run([]string{writeSpec(t, spec)}, &out)
	if err == nil {
		t.Fatal("failing property did not error")
	}
	if !strings.Contains(out.String(), "FAILS") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		spec string
	}{
		{"bad json", "{"},
		{"no components", `{"properties":[{"name":"p","formula":"true"}]}`},
		{"no properties", `{"components":[{"id":"c","host":"h"}]}`},
		{"bad formula", `{"components":[{"id":"c","host":"h"}],"properties":[{"name":"p","formula":"AG ("}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{writeSpec(t, tt.spec)}, &out); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestRunUsageAndMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/nonexistent/spec.json"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
