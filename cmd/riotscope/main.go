// Command riotscope explains runs: it derives incident records (fault →
// detection → reaction → recovery, with MTTD/TTR), per-zone R(t)
// availability timelines, and aggregate MTTD/MTTR percentiles from a
// simulated run's journal, and renders them as text, JSON, or a Chrome
// trace-event overlay. It is the repository's answer to "R was 0.83 —
// what actually happened?".
//
// Usage:
//
//	riotscope run [-arch ML4] [-scenario default|city|city-smoke] [-zones N]
//	              [-duration D] [-seed N] [-hardened] [-windows N] [-all-zones]
//	              [-format text|json] [-trace FILE] [-require-incidents]
//	riotscope corpus [-corpus DIR] [-entry NAME] [-hardened] [-windows N]
//	              [-all-zones] [-format text|json] [-trace FILE] [-require-incidents]
//
// run executes a fresh scenario under its standard disruption schedule
// and explains it. corpus replays committed chaos counterexamples —
// by default under the knobs they were found with (the run the entry
// pins), with -hardened under the full resilience profile `riotchaos
// verify` gates on — and explains each one. -trace writes a Chrome
// trace-event overlay (incidents as spans per zone, faults and
// reactions as instants) loadable in chrome://tracing or
// ui.perfetto.dev; with corpus it requires -entry. -require-incidents
// exits non-zero when an explanation contains no incidents, so CI can
// assert the explainer still sees what the oracle saw. The analysis
// only reads journals: explaining a run never changes it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/observatory"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotscope:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: riotscope <run|corpus> [flags]")
	}
	switch args[0] {
	case "run":
		return runScenario(args[1:], out)
	case "corpus":
		return runCorpus(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run or corpus)", args[0])
	}
}

// renderFlags registers the output flags shared by both subcommands.
type renderFlags struct {
	windows          *int
	allZones         *bool
	format           *string
	tracePath        *string
	requireIncidents *bool
}

func addRenderFlags(fs *flag.FlagSet) renderFlags {
	return renderFlags{
		windows:          fs.Int("windows", 0, "R(t) timeline buckets (0 = 24)"),
		allZones:         fs.Bool("all-zones", false, "list fully-available zones in the timeline too"),
		format:           fs.String("format", "text", "output format: text or json"),
		tracePath:        fs.String("trace", "", "write a Chrome trace-event overlay of the analysis to this file"),
		requireIncidents: fs.Bool("require-incidents", false, "fail when an explanation contains no incidents"),
	}
}

// explanation is one named analysis, the unit both subcommands emit.
type explanation struct {
	Name      string `json:"name"`
	Archetype string `json:"archetype"`
	Hardened  bool   `json:"hardened"`
	// Expect/Status carry the corpus expectation check ("" for run).
	Expect   string               `json:"expect,omitempty"`
	Status   string               `json:"status,omitempty"`
	R        float64              `json:"goal_persistence"`
	Analysis observatory.Analysis `json:"analysis"`
}

func (rf renderFlags) render(out io.Writer, exps []explanation) error {
	switch *rf.format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(exps); err != nil {
			return err
		}
	case "text":
		for _, e := range exps {
			header := fmt.Sprintf("%s (%s", e.Name, e.Archetype)
			if e.Hardened {
				header += ", hardened"
			}
			header += ")"
			if e.Status != "" {
				header += fmt.Sprintf(" — %s (expect %s)", e.Status, e.Expect)
			}
			fmt.Fprintf(out, "%s  R=%.3f\n", header, e.R)
			fmt.Fprint(out, observatory.FormatAnalysis(e.Analysis, *rf.allZones))
		}
	default:
		return fmt.Errorf("unknown -format %q (want text or json)", *rf.format)
	}
	if *rf.tracePath != "" {
		if len(exps) != 1 {
			return fmt.Errorf("-trace explains exactly one run (got %d; use -entry)", len(exps))
		}
		f, err := os.Create(*rf.tracePath)
		if err != nil {
			return err
		}
		if err := observatory.WriteTraceOverlay(exps[0].Analysis, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote trace overlay %s\n", *rf.tracePath)
	}
	if *rf.requireIncidents {
		for _, e := range exps {
			if len(e.Analysis.Incidents) == 0 {
				return fmt.Errorf("%s: no incidents in analysis", e.Name)
			}
		}
	}
	return nil
}

func runScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotscope run", flag.ContinueOnError)
	arch := fs.String("arch", "ML4", "architecture maturity level: ML1..ML4")
	scenario := fs.String("scenario", "default", "base scenario: default, city or city-smoke")
	zones := fs.Int("zones", 0, "override zone count (0 = scenario default)")
	duration := fs.Duration("duration", 0, "override run duration (0 = scenario default)")
	seed := fs.Int64("seed", 0, "override simulation seed (0 = scenario default)")
	hardened := fs.Bool("hardened", false, "enable the full resilience profile (island mode, spread, backups, sticky failover)")
	rf := addRenderFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := core.ParseArchetype(*arch)
	if err != nil {
		return err
	}
	var cfg core.ScenarioConfig
	switch *scenario {
	case "default":
		cfg = core.DefaultScenario()
	case "city":
		cfg = core.CityScenario()
	case "city-smoke":
		cfg = core.CityScenarioSmoke()
	default:
		return fmt.Errorf("unknown -scenario %q (want default, city or city-smoke)", *scenario)
	}
	if *zones > 0 {
		cfg.Zones = *zones
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *hardened {
		cfg = cfg.Hardened()
	}

	sys := core.NewSystem(cfg, a)
	report := sys.Run()
	analysis := observatory.Analyze(sys.Journal(), observatory.Options{
		Duration: cfg.Duration, Zones: cfg.Zones, Windows: *rf.windows,
	})
	return rf.render(out, []explanation{{
		Name:      *scenario,
		Archetype: a.ShortName(),
		Hardened:  *hardened,
		R:         report.GoalPersistence,
		Analysis:  analysis,
	}})
}

func runCorpus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotscope corpus", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "corpus/chaos", "counterexample corpus directory")
	entry := fs.String("entry", "", "explain only this entry (default: every entry)")
	hardened := fs.Bool("hardened", false, "replay under the hardened profile instead of the recorded knobs")
	rf := addRenderFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ces, err := chaos.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	if *entry != "" {
		var match []*chaos.Counterexample
		for _, ce := range ces {
			if ce.Name == *entry {
				match = append(match, ce)
			}
		}
		if len(match) == 0 {
			return fmt.Errorf("corpus: no entry named %q in %s", *entry, *corpusDir)
		}
		ces = match
	}
	if len(ces) == 0 {
		return fmt.Errorf("corpus: no counterexamples in %s", *corpusDir)
	}

	exps := make([]explanation, 0, len(ces))
	for _, ce := range ces {
		e, err := explainEntry(ce, *hardened, *rf.windows)
		if err != nil {
			return err
		}
		exps = append(exps, e)
	}
	return rf.render(out, exps)
}

// explainEntry replays one counterexample and analyzes its journal.
func explainEntry(ce *chaos.Counterexample, hardened bool, windows int) (explanation, error) {
	cfg, err := ce.Config()
	if err != nil {
		return explanation{}, err
	}
	opts := observatory.Options{
		Duration: cfg.Scenario.Duration, Zones: cfg.Scenario.Zones, Windows: windows,
	}
	e := explanation{Name: ce.Name, Archetype: cfg.Archetype.ShortName(), Hardened: hardened}
	if hardened {
		res := ce.Verify()
		if res.Err != nil {
			// An expectation mismatch is still explainable; surface it in
			// Status and let the caller's corpus gates decide.
			res.Err = nil
		}
		e.Expect, e.Status, e.R = res.Expect, res.Status, res.R
		e.Analysis = observatory.Analyze(res.Journal, opts)
		return e, nil
	}
	cfg.KeepJournal = true
	v := chaos.NewOracle(cfg).Run(ce.Schedule)
	e.R = v.Report.GoalPersistence
	e.Analysis = observatory.Analyze(v.Journal, opts)
	return e, nil
}
