package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExplainsDisruptedScenario(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"run", "-arch", "ML1", "-duration", "8m", "-require-incidents"}, &sb)
	if err != nil {
		t.Fatalf("riotscope run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"default (ML1)", "incidents:", "R(t) over", "MTTR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONRoundTrips(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"run", "-arch", "ML1", "-duration", "8m", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var exps []struct {
		Name     string  `json:"name"`
		R        float64 `json:"goal_persistence"`
		Analysis struct {
			Incidents []json.RawMessage `json:"incidents"`
		} `json:"analysis"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &exps); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(exps) != 1 || exps[0].Name != "default" || len(exps[0].Analysis.Incidents) == 0 {
		t.Fatalf("unexpected JSON shape: %+v", exps)
	}
}

func TestCorpusExplainsEveryEntry(t *testing.T) {
	corpus := filepath.Join("..", "..", "corpus", "chaos")
	if _, err := os.Stat(corpus); err != nil {
		t.Skip("no corpus checked out")
	}
	var sb strings.Builder
	// Default knobs: every entry pinned a failing run, so every
	// explanation must contain incidents.
	err := run([]string{"corpus", "-corpus", corpus, "-require-incidents"}, &sb)
	if err != nil {
		t.Fatalf("riotscope corpus: %v\n%s", err, sb.String())
	}
	if got := strings.Count(sb.String(), "incidents:"); got != 12 {
		t.Fatalf("explained %d entries, want 12:\n%s", got, sb.String())
	}
}

func TestCorpusHardenedReportsStatus(t *testing.T) {
	corpus := filepath.Join("..", "..", "corpus", "chaos")
	if _, err := os.Stat(corpus); err != nil {
		t.Skip("no corpus checked out")
	}
	var sb strings.Builder
	err := run([]string{"corpus", "-corpus", corpus, "-hardened",
		"-entry", "ml1-low-persistence-3a94bb47"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "still-fails (expect still-fails)") {
		t.Fatalf("hardened status missing:\n%s", sb.String())
	}
}

func TestTraceOverlayFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overlay.json")
	var sb strings.Builder
	err := run([]string{"run", "-arch", "ML1", "-duration", "8m", "-trace", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatalf("trace overlay is not JSON: %v", err)
	}
	if _, ok := obj["traceEvents"]; !ok {
		t.Fatalf("trace overlay missing traceEvents: %s", data)
	}
}
