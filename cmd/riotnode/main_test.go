package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestParseArgs(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-id", "a", "-bind", "127.0.0.1:7001",
		"-peers", "b=127.0.0.1:7002,c=127.0.0.1:7003",
		"-seeds", "b",
		"-put", "k1=1.5,k2=2",
		"-duration", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.id != "a" || len(cfg.peers) != 2 || len(cfg.seeds) != 1 || cfg.seeds[0] != "b" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.puts["k1"] != 1.5 || cfg.puts["k2"] != 2 {
		t.Fatalf("puts = %v", cfg.puts)
	}
	if cfg.duration != 3*time.Second {
		t.Fatalf("duration = %v", cfg.duration)
	}
}

func TestParseArgsErrors(t *testing.T) {
	bad := [][]string{
		{},                                   // missing id
		{"-id", "a", "-peers", "noequals"},   // bad peer
		{"-id", "a", "-peers", "=addr"},      // empty peer id
		{"-id", "a", "-seeds", "ghost"},      // seed not in peers
		{"-id", "a", "-put", "keyonly"},      // bad put
		{"-id", "a", "-put", "k=notanumber"}, // bad value
		{"-id", "a", "-notaflag"},            // bad flag
	}
	for _, args := range bad {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSingleNodeBriefly(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-id", "solo", "-bind", "127.0.0.1:0",
		"-put", "x=1", "-duration", "250ms", "-interval", "100ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "riotnode solo listening") {
		t.Fatalf("output = %q", s)
	}
	if !strings.Contains(s, "solo=alive") || !strings.Contains(s, "x=1") {
		t.Fatalf("status output missing member/data: %q", s)
	}
}

func TestRunTwoNodesConverge(t *testing.T) {
	// Reserve two distinct loopback ports by binding ephemeral nodes
	// is racy; instead use high fixed ports unlikely to collide and
	// retry once on failure.
	addrA, addrB := "127.0.0.1:39461", "127.0.0.1:39462"
	outA := &syncWriter{}
	outB := &syncWriter{}
	errc := make(chan error, 2)
	go func() {
		errc <- run([]string{"-id", "a", "-bind", addrA,
			"-peers", "b=" + addrB, "-duration", "2s", "-interval", "200ms"}, outA)
	}()
	go func() {
		errc <- run([]string{"-id", "b", "-bind", addrB,
			"-peers", "a=" + addrA, "-seeds", "a",
			"-put", "shared/key=7", "-duration", "2s", "-interval", "200ms"}, outB)
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Skipf("port busy or bind failed: %v", err)
		}
	}
	// Node a must have learned both the member and the data.
	s := outA.String()
	if !strings.Contains(s, "b=alive") {
		t.Fatalf("node a never saw b alive:\n%s", s)
	}
	if !strings.Contains(s, "shared/key=7") {
		t.Fatalf("node a never received the shared datum:\n%s", s)
	}
}

// TestMetricsEndpoint starts a node with -metrics-addr, scrapes the
// printed ephemeral address while the node runs, and checks both the
// Prometheus exposition and the health probe.
func TestMetricsEndpoint(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-id", "scraped", "-bind", "127.0.0.1:0",
			"-metrics-addr", "127.0.0.1:0", "-put", "k=3",
			"-duration", "3s", "-interval", "100ms"}, out)
	}()

	var base string
	deadline := time.Now().Add(2 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never printed; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "metrics: ") {
				base = strings.TrimSuffix(strings.TrimPrefix(line, "metrics: "), "/metrics")
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Give the gauges one status interval to be set.
	time.Sleep(300 * time.Millisecond)
	body := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE riot_members_alive gauge",
		"riot_members_alive 1",
		"riot_store_keys 1",
		"riot_incidents_total 0",
		"riot_incidents_open 0",
		"riot_incident_recovery_seconds_count 0",
		"riot_realnet_dropped_total 0",
		"riot_realnet_delayed_total 0",
		"riot_realnet_shaped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if health := httpGet(t, base+"/healthz"); health != "ok\n" {
		t.Fatalf("/healthz = %q", health)
	}
	// A seedless node bootstraps its own cluster: ready immediately.
	if ready := httpGet(t, base+"/readyz"); ready != "ok\n" {
		t.Fatalf("/readyz = %q", ready)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestReadinessRequiresJoin starts a node whose only seed does not
// exist: the node is alive (healthz ok) but must never become ready.
func TestReadinessRequiresJoin(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-id", "lonely", "-bind", "127.0.0.1:0",
			"-peers", "ghost=127.0.0.1:1", "-seeds", "ghost",
			"-metrics-addr", "127.0.0.1:0",
			"-duration", "1s", "-interval", "100ms"}, out)
	}()

	var base string
	deadline := time.Now().Add(2 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never printed; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "metrics: ") {
				base = strings.TrimSuffix(strings.TrimPrefix(line, "metrics: "), "/metrics")
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before join = %d, want 503", resp.StatusCode)
	}
	if health := httpGet(t, base+"/healthz"); health != "ok\n" {
		t.Fatalf("/healthz while unready = %q", health)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShortDurationDoesNotOverrun: a -duration shorter than the print
// -interval must still end the run on time (the deadline is a timer in
// the select, not a check after a full-interval sleep).
func TestShortDurationDoesNotOverrun(t *testing.T) {
	start := time.Now()
	var out strings.Builder
	err := run([]string{"-id", "brief", "-bind", "127.0.0.1:0",
		"-duration", "200ms", "-interval", "10s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("200ms run with 10s interval took %v", elapsed)
	}
}

// TestServeAddrServesData starts a node with the serve front door and
// exercises a write/read round trip plus the members view over HTTP.
func TestServeAddrServesData(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-id", "api", "-bind", "127.0.0.1:0",
			"-serve-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-duration", "3s", "-interval", "100ms"}, out)
	}()
	base := waitForLine(t, out, "serve: ")

	req, _ := http.NewRequest(http.MethodPut, base+"/v1/data/room1/temp",
		strings.NewReader(`{"value": 21.5}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	body := httpGet(t, base+"/v1/data/room1/temp")
	if !strings.Contains(body, "21.5") {
		t.Fatalf("GET body = %q", body)
	}
	members := httpGet(t, base+"/v1/members")
	if !strings.Contains(members, `"api"`) || !strings.Contains(members, "alive") {
		t.Fatalf("members body = %q", members)
	}
	// The serve request metrics land on the shared node registry.
	metrics := waitForLine(t, out, "metrics: ")
	if m := httpGet(t, strings.TrimSuffix(metrics, "/metrics")+"/metrics"); !strings.Contains(m, "riot_serve_requests_total") {
		t.Fatalf("node metrics missing serve family:\n%s", m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSignalShutdownDrains delivers SIGTERM to the process while a
// node with an open-ended duration runs: run must return promptly and
// report the drain.
func TestSignalShutdownDrains(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-id", "sig", "-bind", "127.0.0.1:0",
			"-serve-addr", "127.0.0.1:0", "-interval", "100ms"}, out)
	}()
	waitForLine(t, out, "serve: ")

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "draining") {
		t.Fatalf("no drain message in output: %q", s)
	}
}

// TestReadyzFlipsAfterJoin: a two-node cluster where the joining
// node's /readyz starts 503 and flips to 200 once its first probe of
// the seed is acked.
func TestReadyzFlipsAfterJoin(t *testing.T) {
	addrA, addrB := "127.0.0.1:39471", "127.0.0.1:39472"
	outA, outB := &syncWriter{}, &syncWriter{}
	errc := make(chan error, 2)
	go func() {
		errc <- run([]string{"-id", "a", "-bind", addrA,
			"-peers", "b=" + addrB, "-duration", "4s", "-interval", "200ms"}, outA)
	}()
	go func() {
		errc <- run([]string{"-id", "b", "-bind", addrB,
			"-peers", "a=" + addrA, "-seeds", "a",
			"-metrics-addr", "127.0.0.1:0",
			"-duration", "4s", "-interval", "200ms"}, outB)
	}()
	base := strings.TrimSuffix(waitForLine(t, outB, "metrics: "), "/metrics")

	// Poll until ready; the flip must happen within the run.
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node b never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Skipf("port busy or bind failed: %v", err)
		}
	}
}

// waitForLine polls out until a line with the given prefix appears and
// returns the rest of that line.
func waitForLine(t *testing.T, out *syncWriter, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return rest
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("line %q never printed; output: %q", prefix, out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// syncWriter is a strings.Builder safe for cross-goroutine use.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
