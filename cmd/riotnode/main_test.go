package main

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseArgs(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-id", "a", "-bind", "127.0.0.1:7001",
		"-peers", "b=127.0.0.1:7002,c=127.0.0.1:7003",
		"-seeds", "b",
		"-put", "k1=1.5,k2=2",
		"-duration", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.id != "a" || len(cfg.peers) != 2 || len(cfg.seeds) != 1 || cfg.seeds[0] != "b" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.puts["k1"] != 1.5 || cfg.puts["k2"] != 2 {
		t.Fatalf("puts = %v", cfg.puts)
	}
	if cfg.duration != 3*time.Second {
		t.Fatalf("duration = %v", cfg.duration)
	}
}

func TestParseArgsErrors(t *testing.T) {
	bad := [][]string{
		{},                                   // missing id
		{"-id", "a", "-peers", "noequals"},   // bad peer
		{"-id", "a", "-peers", "=addr"},      // empty peer id
		{"-id", "a", "-seeds", "ghost"},      // seed not in peers
		{"-id", "a", "-put", "keyonly"},      // bad put
		{"-id", "a", "-put", "k=notanumber"}, // bad value
		{"-id", "a", "-notaflag"},            // bad flag
	}
	for _, args := range bad {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSingleNodeBriefly(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-id", "solo", "-bind", "127.0.0.1:0",
		"-put", "x=1", "-duration", "250ms", "-interval", "100ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "riotnode solo listening") {
		t.Fatalf("output = %q", s)
	}
	if !strings.Contains(s, "solo=alive") || !strings.Contains(s, "x=1") {
		t.Fatalf("status output missing member/data: %q", s)
	}
}

func TestRunTwoNodesConverge(t *testing.T) {
	// Reserve two distinct loopback ports by binding ephemeral nodes
	// is racy; instead use high fixed ports unlikely to collide and
	// retry once on failure.
	addrA, addrB := "127.0.0.1:39461", "127.0.0.1:39462"
	outA := &syncWriter{}
	outB := &syncWriter{}
	errc := make(chan error, 2)
	go func() {
		errc <- run([]string{"-id", "a", "-bind", addrA,
			"-peers", "b=" + addrB, "-duration", "2s", "-interval", "200ms"}, outA)
	}()
	go func() {
		errc <- run([]string{"-id", "b", "-bind", addrB,
			"-peers", "a=" + addrA, "-seeds", "a",
			"-put", "shared/key=7", "-duration", "2s", "-interval", "200ms"}, outB)
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Skipf("port busy or bind failed: %v", err)
		}
	}
	// Node a must have learned both the member and the data.
	s := outA.String()
	if !strings.Contains(s, "b=alive") {
		t.Fatalf("node a never saw b alive:\n%s", s)
	}
	if !strings.Contains(s, "shared/key=7") {
		t.Fatalf("node a never received the shared datum:\n%s", s)
	}
}

// syncWriter is a strings.Builder safe for cross-goroutine use.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
