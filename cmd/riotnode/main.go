// Command riotnode runs one resilient-IoT edge node on a real network:
// SWIM gossip membership plus a governed CRDT data store over UDP —
// the ML4 edge stack outside the simulator.
//
// Start a two-node cluster on one machine:
//
//	riotnode -id a -bind 127.0.0.1:7946 -peers b=127.0.0.1:7947
//	riotnode -id b -bind 127.0.0.1:7947 -peers a=127.0.0.1:7946 -seeds a \
//	         -put room1/temp=21.5
//
// Each node prints its membership view and store contents once per
// second. Stop with ^C (or -duration for a bounded run).
//
// With -metrics-addr the node serves Prometheus-format metrics at
// /metrics, a liveness probe at /healthz, and a readiness probe at
// /readyz that passes once the node has joined its cluster (a probe
// of a peer has been acked; a seedless node is ready immediately).
// The metrics
// include incident counters derived from membership transitions:
// riot_incidents_total, riot_incidents_open, and a
// riot_incident_recovery_seconds histogram of dead-to-alive recovery
// times. Use :0 for an ephemeral port; the chosen address is printed
// on startup:
//
//	riotnode -id a -bind 127.0.0.1:7946 -metrics-addr 127.0.0.1:9100
//	curl http://127.0.0.1:9100/metrics
//
// With -serve-addr the node additionally serves the data-plane HTTP
// API (PUT/GET /v1/data, /v1/members, /v1/incidents, /v1/stream) with
// admission control — see internal/serve. SIGINT or SIGTERM drains
// the serve listener, announces departure via gossip, and exits
// cleanly:
//
//	riotnode -id a -bind 127.0.0.1:7946 -serve-addr 127.0.0.1:8080
//	curl -X PUT -d '{"value": 21.5}' http://127.0.0.1:8080/v1/data/room1/temp
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dataflow"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/realnet"
	"repro/internal/serve"
	"repro/internal/simnet"
	"repro/internal/space"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotnode:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	id          simnet.NodeID
	bind        string
	peers       map[simnet.NodeID]string
	seeds       []simnet.NodeID
	puts        map[string]float64
	duration    time.Duration
	interval    time.Duration
	metricsAddr string
	serveAddr   string
}

func parseArgs(args []string) (config, error) {
	fs := flag.NewFlagSet("riotnode", flag.ContinueOnError)
	id := fs.String("id", "", "node identifier (required)")
	bind := fs.String("bind", "127.0.0.1:0", "UDP bind address")
	peersFlag := fs.String("peers", "", "comma-separated id=host:port peer list")
	seedsFlag := fs.String("seeds", "", "comma-separated peer ids to join through")
	putFlag := fs.String("put", "", "comma-separated key=value data to publish")
	duration := fs.Duration("duration", 0, "run time; 0 runs until interrupted")
	interval := fs.Duration("interval", time.Second, "status print interval")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty disables)")
	serveAddr := fs.String("serve-addr", "", "serve the /v1 data API on this address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *id == "" {
		return config{}, fmt.Errorf("-id is required")
	}
	cfg := config{
		id:          simnet.NodeID(*id),
		bind:        *bind,
		peers:       make(map[simnet.NodeID]string),
		puts:        make(map[string]float64),
		duration:    *duration,
		interval:    *interval,
		metricsAddr: *metricsAddr,
		serveAddr:   *serveAddr,
	}
	if *peersFlag != "" {
		for _, kv := range strings.Split(*peersFlag, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return config{}, fmt.Errorf("bad peer %q (want id=host:port)", kv)
			}
			cfg.peers[simnet.NodeID(parts[0])] = parts[1]
		}
	}
	if *seedsFlag != "" {
		for _, s := range strings.Split(*seedsFlag, ",") {
			if _, ok := cfg.peers[simnet.NodeID(s)]; !ok {
				return config{}, fmt.Errorf("seed %q is not in -peers", s)
			}
			cfg.seeds = append(cfg.seeds, simnet.NodeID(s))
		}
	}
	if *putFlag != "" {
		for _, kv := range strings.Split(*putFlag, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return config{}, fmt.Errorf("bad put %q (want key=value)", kv)
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return config{}, fmt.Errorf("bad put value %q: %w", parts[1], err)
			}
			cfg.puts[parts[0]] = v
		}
	}
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}

	gossip.RegisterWire(realnet.RegisterWireType)
	dataflow.RegisterWire(realnet.RegisterWireType)
	simnet.RegisterMuxWire(realnet.RegisterWireType)

	node, err := realnet.NewNode(cfg.id, cfg.bind)
	if err != nil {
		return err
	}
	defer node.Close()
	// Gossip and the data store share the socket through the protocol
	// mux, exactly as the ML4 edge stack does in simulation.
	mux := simnet.NewPortMux(node)

	// One trusted site domain: riotnode is a connectivity tool; richer
	// domain layouts come from the library API.
	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "site", Trusted: true})
	world.Place(string(cfg.id), space.Point{}, "site")
	var peerIDs []simnet.NodeID
	for id, addr := range cfg.peers {
		if err := node.AddPeer(id, addr); err != nil {
			return err
		}
		world.Place(string(id), space.Point{}, "site")
		peerIDs = append(peerIDs, id)
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })

	members := gossip.New(mux.Port("gossip"), gossip.Config{
		ProbeInterval:    500 * time.Millisecond,
		ProbeTimeout:     150 * time.Millisecond,
		SuspicionTimeout: 2 * time.Second,
	})

	// Observability: the bus reads the node's wall clock; the registry
	// counts bus events and serves scrape endpoints when enabled.
	bus := obs.NewBus(node.Now)
	members.SetBus(bus)

	// Readiness: a node with seeds is ready once a probe of any peer
	// has been acked — confirmed two-way contact, not the optimistic
	// alive that Start assumes for its seeds. A seedless node
	// bootstraps its own cluster and is ready immediately. Both the
	// /readyz probe and the serve front door gate on this.
	var joined atomic.Bool
	joined.Store(len(cfg.seeds) == 0)
	probeSub := bus.SubscribeFunc(func(ev obs.Event) {
		if ev.Kind == "gossip.probe" {
			joined.Store(true)
		}
	})
	defer probeSub.Close()

	var reg *obs.Registry
	var aliveGauge, keysGauge *obs.Gauge
	var syncBytesGauge, syncEntriesGauge, syncPendingGauge *obs.Gauge
	var netDroppedGauge, netDelayedGauge, netShapedGauge *obs.Gauge
	if cfg.metricsAddr != "" {
		reg = obs.NewRegistry()
		reg.WatchBus(bus)
		aliveGauge = reg.Gauge("riot_members_alive", "members this node believes alive")
		keysGauge = reg.Gauge("riot_store_keys", "keys in the local replicated store")
		syncBytesGauge = reg.Gauge("riot_sync_bytes_sent", "replication bytes shipped to peers")
		syncEntriesGauge = reg.Gauge("riot_sync_entries_sent", "replication entries shipped to peers")
		syncPendingGauge = reg.Gauge("riot_sync_pending_keys", "dirty keys buffered for unreachable peers")
		netDroppedGauge = reg.Gauge("riot_realnet_dropped_total",
			"datagrams dropped by partitions, shaper loss or the crash fault")
		netDelayedGauge = reg.Gauge("riot_realnet_delayed_total",
			"datagrams routed through a shaped link's delay queue")
		netShapedGauge = reg.Gauge("riot_realnet_shaped_total",
			"datagrams that traversed a link with an active shaping rule")

		// Incident counters: every peer transition to dead opens an
		// incident, the next alive transition closes it and records the
		// recovery time — the live counterpart of the simulator's
		// observatory. The OnChange callback runs on the node's event
		// loop, so the tracking map needs no lock; the metrics it
		// updates are atomic and safe to scrape concurrently.
		incidentsTotal := reg.Counter("riot_incidents_total", "peer-down incidents observed by membership")
		incidentsOpen := reg.Gauge("riot_incidents_open", "peer-down incidents currently open")
		recoverySec := reg.Histogram("riot_incident_recovery_seconds",
			"peer dead-to-alive recovery time", []float64{1, 5, 15, 60, 300})

		downSince := make(map[simnet.NodeID]time.Duration)
		members.OnChange(func(m gossip.Member) {
			switch m.Status {
			case gossip.StatusAlive:
				if at, ok := downSince[m.ID]; ok {
					delete(downSince, m.ID)
					recoverySec.Observe((node.Now() - at).Seconds())
					incidentsOpen.Set(float64(len(downSince)))
				}
			case gossip.StatusDead:
				if _, ok := downSince[m.ID]; !ok {
					downSince[m.ID] = node.Now()
					incidentsTotal.Inc()
					incidentsOpen.Set(float64(len(downSince)))
				}
			}
		})

		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: obs.Handler(reg, node.Up, joined.Load)}
		defer srv.Close()
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(out, "metrics: http://%s/metrics\n", ln.Addr())
	}
	store := dataflow.NewStore(mux.Port("store"), world, dataflow.StoreConfig{
		Peers: peerIDs, SyncInterval: time.Second,
	})

	// The serve front door shares the node's registry when metrics are
	// on (one scrape surface) and must be constructed before the event
	// loop starts so its store/membership callbacks are registered
	// race-free.
	var srv *serve.Server
	if cfg.serveAddr != "" {
		srv = serve.NewServer(serve.Config{
			Loop:     node,
			Store:    store,
			Members:  members,
			Registry: reg,
			Ready:    joined.Load,
			Now:      node.Now,
		})
		ln, err := net.Listen("tcp", cfg.serveAddr)
		if err != nil {
			return fmt.Errorf("serve listener: %w", err)
		}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(out, "serve: http://%s\n", ln.Addr())
	}

	node.Run()
	node.Do(func() {
		members.Start(cfg.seeds...)
		store.Start()
		for key, val := range cfg.puts {
			store.Put(dataflow.Item{
				Key: key, Value: val,
				Label: dataflow.Label{Topic: "cli", Sensitivity: dataflow.Public, Origin: "site"},
			})
		}
	})

	fmt.Fprintf(out, "riotnode %s listening on %s (%d peers, %d seeds)\n",
		cfg.id, node.Addr(), len(cfg.peers), len(cfg.seeds))

	// The status loop multiplexes the print ticker, the optional run
	// deadline, and shutdown signals. A deadline shorter than the
	// print interval still ends the run on time.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	var deadlineC <-chan time.Time
	if cfg.duration > 0 {
		deadlineTimer := time.NewTimer(cfg.duration)
		defer deadlineTimer.Stop()
		deadlineC = deadlineTimer.C
	}
	ticker := time.NewTicker(cfg.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			printStatus(out, node, members, store)
			if aliveGauge != nil {
				node.Do(func() {
					aliveGauge.Set(float64(members.AliveCount()))
					keysGauge.Set(float64(len(store.Keys())))
					st := store.SyncStats()
					syncBytesGauge.Set(float64(st.BytesSent))
					syncEntriesGauge.Set(float64(st.EntriesSent))
					pending := 0
					for _, p := range peerIDs {
						pending += store.PendingFor(p)
					}
					syncPendingGauge.Set(float64(pending))
					ns := node.NetStats()
					netDroppedGauge.Set(float64(ns.Dropped))
					netDelayedGauge.Set(float64(ns.Delayed))
					netShapedGauge.Set(float64(ns.Shaped))
				})
			}
		case <-deadlineC:
			return shutdown(out, srv, node, members)
		case sig := <-sigc:
			fmt.Fprintf(out, "received %s, draining\n", sig)
			return shutdown(out, srv, node, members)
		}
	}
}

// shutdown drains gracefully: stop accepting API traffic and flush
// accepted writes, announce departure so peers mark this node left
// instead of suspect, then let the deferred node.Close stop the loop.
func shutdown(out io.Writer, srv *serve.Server, node *realnet.Node, members *gossip.Protocol) error {
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(out, "serve drain: %v\n", err)
		}
		cancel()
	}
	node.Do(func() { members.Leave() })
	return nil
}

func printStatus(out io.Writer, node *realnet.Node, members *gossip.Protocol, store *dataflow.Store) {
	node.Do(func() {
		var b strings.Builder
		fmt.Fprintf(&b, "[%s] members:", time.Now().Format("15:04:05"))
		for _, m := range members.Members() {
			fmt.Fprintf(&b, " %s=%s", m.ID, m.Status)
		}
		keys := store.Keys()
		if len(keys) > 0 {
			b.WriteString(" | data:")
			for _, k := range keys {
				if item, ok := store.Get(k); ok {
					fmt.Fprintf(&b, " %s=%v", k, item.Value)
				}
			}
		}
		fmt.Fprintln(out, b.String())
	})
}
