// Command riotload drives an open-loop load run against one or more
// riotnode serve endpoints (-serve-addr) and reports throughput and
// latency percentiles. Arrivals are scheduled at a fixed rate
// regardless of how fast the cluster answers, and every latency is
// measured from the scheduled arrival — server-side queueing counts
// against the percentiles, so the numbers are free of coordinated
// omission.
//
// Drive a two-node cluster at 500 requests/second for 30 seconds:
//
//	riotload -targets http://127.0.0.1:8080,http://127.0.0.1:8081 \
//	         -rps 500 -duration 30s
//
// With -out the run is additionally recorded in the riotbench bench
// JSON schema (lat_p50_ns / lat_p99_ns / runs_per_sec), so a load run
// can be diffed by scripts/benchdiff.go like any experiment. -fail-on-5xx
// and -min-writes turn the run into an assertion for CI smoke jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotload:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	load      serve.LoadConfig
	out       string
	id        string
	failOn5xx bool
	minWrites int
}

func parseArgs(args []string) (config, error) {
	fs := flag.NewFlagSet("riotload", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated serve base URLs (required)")
	rps := fs.Int("rps", 200, "open-loop arrival rate across all targets")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate arrivals")
	conns := fs.Int("conns", 64, "max outstanding requests (beyond: client-side drop)")
	keys := fs.Int("keys", 64, "key-space size")
	readFrac := fs.Float64("read-frac", 0.5, "fraction of arrivals that are reads (0 = write-only)")
	seed := fs.Int64("seed", 1, "arrival-schedule rng seed")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	readyWait := fs.Duration("ready-wait", 5*time.Second, "wait for every target's /readyz before loading (0 skips)")
	keyPrefix := fs.String("key-prefix", "load/k", "key namespace prefix")
	outPath := fs.String("out", "", "write the run as riotbench bench JSON to this file")
	id := fs.String("id", "riotload", "bench id recorded in -out")
	failOn5xx := fs.Bool("fail-on-5xx", false, "exit non-zero if any 5xx or transport error occurred")
	minWrites := fs.Int("min-writes", 0, "exit non-zero if fewer writes were accepted")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *targets == "" {
		return config{}, fmt.Errorf("-targets is required")
	}
	cfg := config{
		load: serve.LoadConfig{
			Targets:      strings.Split(*targets, ","),
			RPS:          *rps,
			Duration:     *duration,
			Conns:        *conns,
			Keys:         *keys,
			ReadFraction: *readFrac,
			Seed:         *seed,
			Timeout:      *timeout,
			ReadyWait:    *readyWait,
			KeyPrefix:    *keyPrefix,
		},
		out:       *outPath,
		id:        *id,
		failOn5xx: *failOn5xx,
		minWrites: *minWrites,
	}
	// The library treats 0 as "default mix"; on the command line an
	// explicit 0 means write-only.
	if *readFrac == 0 {
		cfg.load.ReadFraction = -1
	}
	if *readyWait == 0 {
		cfg.load.ReadyWait = -1
	}
	return cfg, nil
}

// benchResult mirrors riotbench's bench JSON row (cmd packages cannot
// import each other); benchdiff compares on the shared field names.
type benchResult struct {
	ID         string  `json:"id"`
	NsPerOp    int64   `json:"ns_per_op"`
	Runs       int     `json:"runs"`
	RunsPerSec float64 `json:"runs_per_sec"`
	LatP50Ns   int64   `json:"lat_p50_ns,omitempty"`
	LatP99Ns   int64   `json:"lat_p99_ns,omitempty"`
}

type benchFile struct {
	Schema  string        `json:"schema"`
	Benches []benchResult `json:"benches"`
}

func run(args []string, out io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "riotload: %d targets, %d rps for %v (conns=%d keys=%d)\n",
		len(cfg.load.Targets), cfg.load.RPS, cfg.load.Duration, cfg.load.Conns, cfg.load.Keys)
	rep, err := serve.RunLoad(cfg.load)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep.Format())

	if cfg.out != "" {
		br := benchResult{
			ID:         cfg.id,
			NsPerOp:    int64(rep.Latency.P50),
			Runs:       rep.OK,
			RunsPerSec: rep.AchievedRPS,
			LatP50Ns:   int64(rep.Latency.P50),
			LatP99Ns:   int64(rep.Latency.P99),
		}
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(benchFile{Schema: "riotbench/bench/v1", Benches: []benchResult{br}}); err != nil {
			f.Close()
			return fmt.Errorf("encoding %s: %w", cfg.out, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: written to %s\n", cfg.out)
	}

	if cfg.failOn5xx && rep.ServerErr+rep.NetErr > 0 {
		return fmt.Errorf("%d server errors, %d transport errors", rep.ServerErr, rep.NetErr)
	}
	if rep.WriteOK < cfg.minWrites {
		return fmt.Errorf("%d writes accepted, want at least %d", rep.WriteOK, cfg.minWrites)
	}
	return nil
}
