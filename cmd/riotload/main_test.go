package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseArgs(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-targets", "http://a:1,http://b:2",
		"-rps", "100", "-duration", "2s", "-read-frac", "0.25",
		"-out", "bench.json", "-min-writes", "5", "-fail-on-5xx",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.load.Targets) != 2 || cfg.load.RPS != 100 || cfg.load.ReadFraction != 0.25 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.out != "bench.json" || cfg.minWrites != 5 || !cfg.failOn5xx {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseArgsWriteOnly(t *testing.T) {
	cfg, err := parseArgs([]string{"-targets", "http://a:1", "-read-frac", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.load.ReadFraction >= 0 {
		t.Fatalf("explicit 0 must request write-only, got %v", cfg.load.ReadFraction)
	}
}

func TestParseArgsErrors(t *testing.T) {
	bad := [][]string{
		{},               // missing targets
		{"-rps", "100"},  // still missing targets
		{"-notaflag"},    // unknown flag
		{"-targets", ""}, // empty targets
	}
	for _, args := range bad {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunAgainstStubWritesBench(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz":
			w.WriteHeader(http.StatusOK)
		case r.Method == http.MethodPut:
			w.WriteHeader(http.StatusNoContent)
		default:
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"key":"k","value":1}`))
		}
	}))
	defer stub.Close()

	benchPath := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	err := run([]string{"-targets", stub.URL, "-rps", "200", "-duration", "300ms",
		"-out", benchPath, "-min-writes", "1", "-fail-on-5xx"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "ok=") || !strings.Contains(s, "p99=") {
		t.Fatalf("summary missing: %q", s)
	}

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Schema != "riotbench/bench/v1" || len(bf.Benches) != 1 {
		t.Fatalf("bench file = %+v", bf)
	}
	br := bf.Benches[0]
	if br.ID != "riotload" || br.LatP50Ns <= 0 || br.LatP99Ns < br.LatP50Ns || br.Runs == 0 {
		t.Fatalf("bench row = %+v", br)
	}
}

func TestRunFailsOn5xx(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer stub.Close()

	var out strings.Builder
	err := run([]string{"-targets", stub.URL, "-rps", "100", "-duration", "200ms",
		"-fail-on-5xx"}, &out)
	if err == nil {
		t.Fatal("expected error on 5xx responses")
	}
}

func TestRunFailsBelowMinWrites(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer stub.Close()

	var out strings.Builder
	err := run([]string{"-targets", stub.URL, "-rps", "100", "-duration", "200ms",
		"-min-writes", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "writes accepted") {
		t.Fatalf("err = %v, want min-writes failure", err)
	}
}
