// Command riotbench regenerates every table and figure of the paper
// as measured experiments and prints them.
//
// Usage:
//
//	riotbench             # all experiments, paper-scale parameters
//	riotbench -quick      # shortened parameters for a fast look
//	riotbench -only f3    # one experiment: table12, f1..f5, a1, a2
//
// With -trace a dedicated short ML4 run is traced and written as
// Chrome trace-event JSON (riotbench -trace out.json -only none skips
// the experiments and writes only the trace):
//
//	riotbench -trace out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shorter runs")
	only := fs.String("only", "", "run a single experiment: table12, f1, f2, f3, f4, f5, a1, a2, x1")
	seed := fs.Int64("seed", 1, "experiment seed")
	seedRuns := fs.Int("seeds", 1, "number of seeds for the table12 aggregate (>1 adds mean/min/max rows)")
	trace := fs.String("trace", "", "additionally trace a short ML4 run into this Chrome trace JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultScenario()
	cfg.Seed = *seed
	zoneCounts := []int{20, 100, 400, 1000}
	if *quick {
		cfg.Duration = 6 * time.Minute
		zoneCounts = []int{4, 16, 64}
	}

	type experiment struct {
		id    string
		title string
		run   func(io.Writer)
	}
	all := []experiment{
		{"table12", "Tables 1+2 — maturity matrix under the standard disruption schedule", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatTable12(experiments.Table12(cfg)))
			if *seedRuns > 1 {
				seeds := make([]int64, *seedRuns)
				for i := range seeds {
					seeds[i] = *seed + int64(i)
				}
				fmt.Fprintf(w, "\naggregate over %d seeds:\n", *seedRuns)
				fmt.Fprint(w, experiments.FormatTable12Stats(experiments.Table12Stats(cfg, seeds)))
			}
		}},
		{"f1", "Figure 1 — landscape scale (edge-centric deployment, 1 virtual minute)", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatFigure1(experiments.Figure1(*seed, zoneCounts, time.Minute)))
		}},
		{"f2", "Figure 2 — model construction and resilience-property checking", func(w io.Writer) {
			pts := experiments.Figure2([]int{4, 8, 12, 16}, 3)
			quants := experiments.Figure2Quantitative([]int{1, 2, 5, 10, 20})
			fmt.Fprint(w, experiments.FormatFigure2(pts, quants))
		}},
		{"f3", "Figure 3 — centralized vs decentralized control under cloud downtime", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatFigure3(experiments.Figure3(*seed, []float64{0, 0.2, 0.4, 0.6, 0.8})))
		}},
		{"f4", "Figure 4 — cloud-mediated vs edge-governed data flows under WAN partitions", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatFigure4(experiments.Figure4(*seed, []float64{0, 0.25, 0.5, 0.75})))
		}},
		{"f5", "Figure 5 — MAPE loop placement (edge vs cloud) vs environment change rate", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatFigure5(experiments.Figure5(*seed, []float64{1, 2, 4, 8})))
		}},
		{"a1", "Ablation A1 — bolt-on resilience (hardened ML2) vs native ML4", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatTable12(experiments.AblationA1(cfg)))
			fmt.Fprintln(w, "(rows: ML2 plain, ML2 with bolt-on mechanisms, ML4 native)")
		}},
		{"a2", "Ablation A2 — ML4 with one decentralization mechanism removed", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatA2(experiments.AblationA2(cfg)))
		}},
		{"x1", "Extension X1 — mobility: static binding vs nearest-edge handover", func(w io.Writer) {
			fmt.Fprint(w, experiments.FormatMobility(experiments.ExtensionMobility(*seed, []float64{1, 2, 4, 8})))
		}},
		{"x2", "Extension X2 — cost of resilience: ML4 sync interval vs R and traffic", func(w io.Writer) {
			intervals := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 15 * time.Second}
			fmt.Fprint(w, experiments.FormatCost(experiments.ExtensionCost(cfg, intervals)))
		}},
	}

	ran := 0
	for _, ex := range all {
		if *only != "" && ex.id != *only {
			continue
		}
		fmt.Fprintf(out, "=== %s ===\n", ex.title)
		ex.run(out)
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 && *trace == "" {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	if *trace != "" {
		if err := writeTrace(cfg, *trace, out); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace runs a short disrupted ML4 scenario with a trace
// collector attached and writes the Chrome trace-event JSON.
func writeTrace(cfg core.ScenarioConfig, path string, out io.Writer) error {
	cfg.Duration = 5 * time.Minute
	sys := core.NewSystem(cfg, core.ML4)
	tc := obs.Collect(sys.Bus())
	sys.Run()
	tc.Close()
	if err := tc.WriteChromeTraceFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d events from a 5m ML4 run written to %s\n", tc.Len(), path)
	return nil
}
