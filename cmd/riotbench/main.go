// Command riotbench regenerates every table and figure of the paper
// as measured experiments and prints them.
//
// Usage:
//
//	riotbench                      # all experiments, paper-scale parameters
//	riotbench -quick               # shortened parameters for a fast look
//	riotbench -only f3             # one experiment: table12, f1..f5, a1,
//	                               # a2, x1, x2, city, chaos/<name>
//	riotbench -parallel 4 -seeds 8 # fan the table12 campaign over workers
//	riotbench -shards 4            # zone-sharded scheduler in every run
//	riotbench -out BENCH_riot.json # write per-experiment benchmark JSON
//
// The city experiment runs the four-archetype matrix at the Figure-1
// city tier (200 gateways, 5009 devices; -quick swaps in the reduced
// smoke tier). Every minimized counterexample in the chaos corpus is
// additionally registered as a chaos/<name> experiment, so the perf
// gate tracks searched-out worst-case schedules alongside scripted
// ones.
//
// The serve experiment boots a 3-node real-socket cluster
// (internal/serve) and drives it with an open-loop load run; the
// request p50/p99 land in the bench JSON as lat_p50_ns/lat_p99_ns so
// serving-path latency is gated alongside simulation throughput.
//
// The table12 experiment is a multi-seed campaign: -seeds M runs the
// maturity matrix at M consecutive seeds and -parallel N distributes
// the (seed, archetype) runs over N workers. Journals are byte-
// identical whichever worker count is used; -hashes prints the
// per-run journal hashes so serial and parallel output can be diffed
// directly (the determinism CI job does exactly that).
//
// -shards selects the zone-sharded scheduler (DESIGN.md §11) inside
// every simulation; -shards 1 is the sharded serial reference and
// higher counts run zone lanes in parallel with identical journals.
// -parallel and -shards multiply: N workers × S shard lanes would run
// N*S goroutines hot, so when both exceed one the worker count is
// capped at GOMAXPROCS/shards — campaign throughput already saturates
// the machine, and oversubscribing would only serialize the shard
// windows. The metro/s1, metro/s2 and metro/s4 experiments run the
// metropolis tier (~104k devices; -quick swaps the 1-minute smoke) at
// fixed shard counts so the bench JSON records the cores-vs-wall-clock
// scaling curve.
//
// With -trace a dedicated short ML4 run is traced and written as
// Chrome trace-event JSON (riotbench -trace out.json -only none skips
// the experiments and writes only the trace):
//
//	riotbench -trace out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/observatory"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riotbench:", err)
		os.Exit(1)
	}
}

// errWriter latches the first write error so experiment code can print
// unconditionally while run() still reports broken pipes and full
// disks with a non-zero exit.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// benchResult is one experiment's measurement in the riotbench bench
// JSON. ns_per_op/allocs_per_op/bytes_per_op cover one full experiment
// execution; runs counts the result rows it produced.
type benchResult struct {
	ID          string  `json:"id"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
	RunsPerSec  float64 `json:"runs_per_sec"`

	// Resilience latencies (virtual time), set only by experiments that
	// derive an incident analysis from a run journal (the city tier's
	// ML4 run). benchdiff gates upward drift like ns_per_op — slower
	// detection or recovery at city scale is a resilience regression
	// even when wall-clock throughput holds.
	MTTDP50Ns int64 `json:"mttd_p50_ns,omitempty"`
	MTTDP99Ns int64 `json:"mttd_p99_ns,omitempty"`
	MTTRP50Ns int64 `json:"mttr_p50_ns,omitempty"`
	MTTRP99Ns int64 `json:"mttr_p99_ns,omitempty"`

	// Serving-path latencies (wall clock), set only by the serve
	// experiment: request percentiles measured by an open-loop load run
	// against a live 3-node cluster. benchdiff gates upward drift.
	LatP50Ns int64 `json:"lat_p50_ns,omitempty"`
	LatP99Ns int64 `json:"lat_p99_ns,omitempty"`

	// Replication bytes-on-wire (virtual wire, deterministic), set only
	// by the sync experiments. benchdiff gates upward drift: shipping
	// more sync bytes for the same scenario is a bandwidth regression.
	SyncBytes int64 `json:"sync_bytes,omitempty"`
}

// benchFile is the schema scripts/benchdiff.go compares.
type benchFile struct {
	Schema  string        `json:"schema"`
	Benches []benchResult `json:"benches"`
}

const benchSchema = "riotbench/bench/v1"

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riotbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shorter runs")
	only := fs.String("only", "", "run a single experiment: table12, f1..f5, a1, a2, x1, x2, city, serve, sync/city, sync/metro, metro/s<n>, chaos/<name>")
	corpus := fs.String("corpus", "corpus/chaos", "chaos corpus directory; each counterexample becomes a chaos/<name> experiment (missing directory: skipped)")
	seed := fs.Int64("seed", 1, "experiment seed")
	seedRuns := fs.Int("seeds", 1, "number of seeds for the table12 campaign (>1 adds mean/min/max rows)")
	parallel := fs.Int("parallel", 1, "worker count for the table12 campaign (0 = GOMAXPROCS)")
	hashes := fs.Bool("hashes", false, "print per-(seed,archetype) journal hashes for the table12 campaign")
	shards := fs.Int("shards", 0, "zone-shard count for every simulation (0 = legacy serial scheduler, 1 = sharded reference leg)")
	outPath := fs.String("out", "", "write per-experiment benchmark JSON (ns/op, allocs/op, runs/sec) to this file")
	benchReps := fs.Int("benchreps", 1, "repetitions per experiment for -out measurements; the minimum is recorded")
	trace := fs.String("trace", "", "additionally trace a short ML4 run into this Chrome trace JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultScenario()
	cfg.Seed = *seed
	cfg.Shards = *shards
	zoneCounts := []int{20, 100, 400, 1000}
	if *quick {
		cfg.Duration = 6 * time.Minute
		zoneCounts = []int{4, 16, 64}
	}

	// -parallel workers each own a full simulation; with -shards every
	// simulation additionally runs shard-count lanes. Cap the product at
	// GOMAXPROCS so the two axes of parallelism cannot oversubscribe the
	// machine — oversubscription serializes the shard windows and erases
	// the speedup both flags exist to deliver.
	workers := *parallel
	if *shards > 1 {
		if maxw := max(1, runtime.GOMAXPROCS(0) / *shards); workers <= 0 || workers > maxw {
			workers = maxw
		}
	}

	type experiment struct {
		id    string
		title string
		run   func(io.Writer) (int, error)
	}
	// cityML4 captures the city experiment's ML4 incident analysis so
	// its MTTD/MTTR percentiles land in the bench JSON next to the
	// wall-clock figures (deterministic runs: identical across reps).
	var cityML4 *observatory.Analysis
	// serveRep keeps the best (lowest-p99) load report across reps:
	// the serving path is wall-clock real, so the minimum strips
	// scheduler noise the same way best-of-reps does for ns_per_op.
	var serveRep *serve.LoadReport
	// syncBytes captures the sync experiments' bytes-on-wire figure
	// (deterministic: identical across reps) for the bench JSON.
	syncBytes := make(map[string]int64)
	all := []experiment{
		{"table12", "Tables 1+2 — maturity matrix under the standard disruption schedule", func(w io.Writer) (int, error) {
			seeds := make([]int64, max(1, *seedRuns))
			for i := range seeds {
				seeds[i] = *seed + int64(i)
			}
			runs, err := experiments.MatrixCampaign(cfg, seeds, workers)
			if err != nil {
				return 0, err
			}
			fmt.Fprint(w, experiments.FormatTable12(runs[0].Reports))
			rows := len(runs[0].Reports)
			if len(seeds) > 1 {
				stats := experiments.StatsFromRuns(runs)
				fmt.Fprintf(w, "\naggregate over %d seeds:\n", len(seeds))
				fmt.Fprint(w, experiments.FormatTable12Stats(stats))
				rows = len(seeds) * len(runs[0].Reports)
			}
			if *hashes {
				archs := core.AllArchetypes()
				for _, r := range runs {
					for ai, h := range r.Hashes {
						fmt.Fprintf(w, "journal seed=%d arch=%s %s\n", r.Seed, archs[ai], h)
					}
				}
			}
			return rows, nil
		}},
		{"f1", "Figure 1 — landscape scale (edge-centric deployment, 1 virtual minute)", func(w io.Writer) (int, error) {
			pts := experiments.Figure1(*seed, zoneCounts, time.Minute)
			fmt.Fprint(w, experiments.FormatFigure1(pts))
			return len(pts), nil
		}},
		{"f2", "Figure 2 — model construction and resilience-property checking", func(w io.Writer) (int, error) {
			pts := experiments.Figure2([]int{4, 8, 12, 16}, 3)
			quants := experiments.Figure2Quantitative([]int{1, 2, 5, 10, 20})
			fmt.Fprint(w, experiments.FormatFigure2(pts, quants))
			return len(pts) + len(quants), nil
		}},
		{"f3", "Figure 3 — centralized vs decentralized control under cloud downtime", func(w io.Writer) (int, error) {
			pts := experiments.Figure3(*seed, []float64{0, 0.2, 0.4, 0.6, 0.8})
			fmt.Fprint(w, experiments.FormatFigure3(pts))
			return len(pts), nil
		}},
		{"f4", "Figure 4 — cloud-mediated vs edge-governed data flows under WAN partitions", func(w io.Writer) (int, error) {
			pts := experiments.Figure4(*seed, []float64{0, 0.25, 0.5, 0.75})
			fmt.Fprint(w, experiments.FormatFigure4(pts))
			return len(pts), nil
		}},
		{"f5", "Figure 5 — MAPE loop placement (edge vs cloud) vs environment change rate", func(w io.Writer) (int, error) {
			pts := experiments.Figure5(*seed, []float64{1, 2, 4, 8})
			fmt.Fprint(w, experiments.FormatFigure5(pts))
			return len(pts), nil
		}},
		{"a1", "Ablation A1 — bolt-on resilience (hardened ML2) vs native ML4", func(w io.Writer) (int, error) {
			reports := experiments.AblationA1(cfg)
			fmt.Fprint(w, experiments.FormatTable12(reports))
			fmt.Fprintln(w, "(rows: ML2 plain, ML2 with bolt-on mechanisms, ML4 native)")
			return len(reports), nil
		}},
		{"a2", "Ablation A2 — ML4 with one decentralization mechanism removed", func(w io.Writer) (int, error) {
			variants := experiments.AblationA2(cfg)
			fmt.Fprint(w, experiments.FormatA2(variants))
			return len(variants), nil
		}},
		{"x1", "Extension X1 — mobility: static binding vs nearest-edge handover", func(w io.Writer) (int, error) {
			pts := experiments.ExtensionMobility(*seed, []float64{1, 2, 4, 8})
			fmt.Fprint(w, experiments.FormatMobility(pts))
			return len(pts), nil
		}},
		{"x2", "Extension X2 — cost of resilience: ML4 sync interval vs R and traffic", func(w io.Writer) (int, error) {
			intervals := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 15 * time.Second}
			pts := experiments.ExtensionCost(cfg, intervals)
			fmt.Fprint(w, experiments.FormatCost(pts))
			return len(pts), nil
		}},
		{"city", "City tier — maturity matrix at Figure-1 scale (200 gateways, 5009 devices)", func(w io.Writer) (int, error) {
			ccfg := core.CityScenario()
			if *quick {
				ccfg = core.CityScenarioSmoke()
			}
			ccfg.Seed = *seed
			// Run the matrix archetype by archetype (same order and
			// reports as experiments.Table12) so the ML4 journal can be
			// analyzed for city-scale detection/recovery latencies.
			var reports []core.Report
			for _, a := range core.AllArchetypes() {
				sys := core.NewSystem(ccfg, a)
				reports = append(reports, sys.Run())
				if a == core.ML4 {
					an := observatory.Analyze(sys.Journal(), observatory.Options{
						Duration: ccfg.Duration, Zones: ccfg.Zones,
					})
					cityML4 = &an
				}
			}
			fmt.Fprint(w, experiments.FormatTable12(reports))
			if cityML4 != nil && cityML4.MTTD.Count > 0 {
				fmt.Fprintf(w, "ML4 incidents: %d (%d unresolved)  MTTD p50=%s p99=%s  MTTR p50=%s p99=%s\n",
					len(cityML4.Incidents), cityML4.Unresolved,
					cityML4.MTTD.P50.Round(time.Millisecond), cityML4.MTTD.P99.Round(time.Millisecond),
					cityML4.MTTR.P50.Round(time.Millisecond), cityML4.MTTR.P99.Round(time.Millisecond))
			}
			return len(reports), nil
		}},
		{"serve", "Serving path — 3-node real-socket cluster under open-loop load", func(w io.Writer) (int, error) {
			rps, dur := 300, 5*time.Second
			if *quick {
				rps, dur = 150, 2*time.Second
			}
			cl, err := serve.StartCluster(3, serve.ClusterOptions{})
			if err != nil {
				return 0, err
			}
			defer cl.Close()
			// Warmup: establish connections and populate the key space so
			// the measured percentiles are steady-state serving, not TCP
			// connects and cold-start event-loop contention.
			if _, err := serve.RunLoad(serve.LoadConfig{
				Targets: cl.URLs(), RPS: 50, Duration: 500 * time.Millisecond,
				Conns: 64, Keys: 32, Seed: *seed,
			}); err != nil {
				return 0, err
			}
			rep, err := serve.RunLoad(serve.LoadConfig{
				Targets: cl.URLs(), RPS: rps, Duration: dur,
				Conns: 64, Keys: 32, Seed: *seed,
			})
			if err != nil {
				return 0, err
			}
			if rep.ServerErr+rep.NetErr > 0 {
				return 0, fmt.Errorf("errors under load: %s", rep.Format())
			}
			fmt.Fprintln(w, rep.Format())
			if serveRep == nil || rep.Latency.P99 < serveRep.Latency.P99 {
				r := rep
				serveRep = &r
			}
			return rep.OK, nil
		}},
	}
	// Replication-cost legs: one ML4 run per tier, reporting the sync
	// path's bytes-on-wire (accurate per-entry encoded sizes summed over
	// every store link). Deterministic, so benchdiff can gate upward
	// drift tightly — shipping more bytes for the same scenario is a
	// bandwidth regression even when wall-clock throughput holds.
	for _, leg := range []struct {
		id   string
		cfgf func() core.ScenarioConfig
	}{
		{"sync/city", func() core.ScenarioConfig {
			if *quick {
				return core.CityScenarioSmoke()
			}
			return core.CityScenario()
		}},
		{"sync/metro", func() core.ScenarioConfig {
			if *quick {
				return core.MetropolisScenarioSmoke()
			}
			return core.MetropolisScenario()
		}},
	} {
		leg := leg
		all = append(all, experiment{
			id:    leg.id,
			title: fmt.Sprintf("Sync path — ML4 replication bytes-on-wire (%s)", leg.id),
			run: func(w io.Writer) (int, error) {
				scfg := leg.cfgf()
				scfg.Seed = *seed
				sys := core.NewSystem(scfg, core.ML4)
				rep := sys.Run()
				st := sys.SyncTraffic()
				fmt.Fprintf(w, "frames=%d entries=%d bytes=%d acks=%d R(goal)=%.4f\n",
					st.FramesSent, st.EntriesSent, st.BytesSent, st.AcksIn, rep.GoalPersistence)
				syncBytes[leg.id] = int64(st.BytesSent)
				return 1, nil
			},
		})
	}
	// Metropolis scaling legs: one ML4 run of the metropolis tier per
	// shard count. The bench JSON then carries ns_per_op for the serial
	// reference and each sharded leg side by side, so the committed
	// baseline records the cores-vs-wall-clock curve and benchdiff
	// gates it like any other figure. Later legs cross-check their
	// journal hash against the serial leg — a scaling number from a
	// diverging run would be meaningless.
	var metroHash string
	for _, n := range []int{1, 2, 4} {
		n := n
		all = append(all, experiment{
			id:    fmt.Sprintf("metro/s%d", n),
			title: fmt.Sprintf("Metropolis tier — ML4, %d shard(s) (scaling leg)", n),
			run: func(w io.Writer) (int, error) {
				mcfg := core.MetropolisScenario()
				if *quick {
					mcfg = core.MetropolisScenarioSmoke()
				}
				mcfg.Seed = *seed
				mcfg.Shards = n
				sys := core.NewSystem(mcfg, core.ML4)
				rep := sys.Run()
				h := sys.JournalHash()
				fmt.Fprintf(w, "shards=%d R(goal)=%.4f journal %.12s\n", n, rep.GoalPersistence, h)
				if n == 1 {
					metroHash = h
				} else if metroHash != "" && h != metroHash {
					return 0, fmt.Errorf("shards=%d journal hash %s diverges from serial %s", n, h, metroHash)
				}
				return 1, nil
			},
		})
	}
	// Corpus-driven worst-case benches: every minimized counterexample
	// in the chaos corpus becomes a named experiment, so the perf gate
	// tracks searched-out worst-case schedules alongside scripted ones.
	if ces, err := chaos.LoadCorpus(*corpus); err == nil {
		for _, ce := range ces {
			ce := ce
			all = append(all, experiment{
				id:    "chaos/" + ce.Name,
				title: fmt.Sprintf("Chaos corpus — %s (minimized worst-case schedule)", ce.Name),
				run: func(w io.Writer) (int, error) {
					if err := ce.Replay(); err != nil {
						return 0, err
					}
					fmt.Fprintf(w, "replayed %s: %d fault events, journal %.12s\n",
						ce.Name, ce.Schedule.Len(), ce.JournalHash)
					return 1, nil
				},
			})
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("chaos corpus %s: %w", *corpus, err)
	}

	ew := &errWriter{w: out}
	reps := max(1, *benchReps)
	if *outPath == "" {
		reps = 1 // repetitions only sharpen the -out measurement
	}
	var benches []benchResult
	ran := 0
	for _, ex := range all {
		if *only != "" && ex.id != *only {
			continue
		}
		fmt.Fprintf(ew, "=== %s ===\n", ex.title)
		var br benchResult
		// Best-of-reps: experiments are deterministic, so the minimum
		// over repetitions strips scheduler and GC noise from the
		// wall-clock figure the CI gate compares.
		for rep := 0; rep < reps; rep++ {
			w := io.Writer(ew)
			if rep > 0 {
				w = io.Discard
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			rows, err := ex.run(w)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", ex.id, err)
			}
			cur := benchResult{
				ID:          ex.id,
				NsPerOp:     elapsed.Nanoseconds(),
				AllocsPerOp: after.Mallocs - before.Mallocs,
				BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
				Runs:        rows,
			}
			if secs := elapsed.Seconds(); secs > 0 {
				cur.RunsPerSec = float64(rows) / secs
			}
			if rep == 0 || cur.NsPerOp < br.NsPerOp {
				br.NsPerOp, br.RunsPerSec = cur.NsPerOp, cur.RunsPerSec
			}
			if rep == 0 || cur.AllocsPerOp < br.AllocsPerOp {
				br.AllocsPerOp, br.BytesPerOp = cur.AllocsPerOp, cur.BytesPerOp
			}
			if rep == 0 {
				br.ID, br.Runs = cur.ID, cur.Runs
			}
		}
		if ex.id == "city" && cityML4 != nil {
			br.MTTDP50Ns = int64(cityML4.MTTD.P50)
			br.MTTDP99Ns = int64(cityML4.MTTD.P99)
			br.MTTRP50Ns = int64(cityML4.MTTR.P50)
			br.MTTRP99Ns = int64(cityML4.MTTR.P99)
		}
		if ex.id == "serve" && serveRep != nil {
			br.LatP50Ns = int64(serveRep.Latency.P50)
			br.LatP99Ns = int64(serveRep.Latency.P99)
		}
		if b, ok := syncBytes[ex.id]; ok {
			br.SyncBytes = b
		}
		fmt.Fprintln(ew)
		ran++
		benches = append(benches, br)
	}
	if ran == 0 && *trace == "" {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	if *trace != "" {
		if err := writeTrace(cfg, *trace, ew); err != nil {
			return err
		}
	}
	if *outPath != "" {
		if err := writeBench(*outPath, benches); err != nil {
			return err
		}
		fmt.Fprintf(ew, "bench: %d experiment measurements written to %s\n", len(benches), *outPath)
	}
	if ew.err != nil {
		return fmt.Errorf("writing output: %w", ew.err)
	}
	return nil
}

// writeBench writes the benchmark JSON, surfacing create, encode, and
// close errors — a truncated bench file would silently pass the CI
// regression gate.
func writeBench(path string, benches []benchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchFile{Schema: benchSchema, Benches: benches}); err != nil {
		f.Close()
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return f.Close()
}

// writeTrace runs a short disrupted ML4 scenario with a trace
// collector attached and writes the Chrome trace-event JSON.
func writeTrace(cfg core.ScenarioConfig, path string, out io.Writer) error {
	cfg.Duration = 5 * time.Minute
	sys := core.NewSystem(cfg, core.ML4)
	tc := obs.Collect(sys.Bus())
	sys.Run()
	tc.Close()
	if err := tc.WriteChromeTraceFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d events from a 5m ML4 run written to %s\n", tc.Len(), path)
	return nil
}
