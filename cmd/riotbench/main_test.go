package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "f2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "f9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickTable12(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "table12"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ML4-resilient") {
		t.Fatalf("output missing matrix:\n%s", out.String())
	}
}

// TestRunTraceOnly writes a Chrome trace without running experiments
// and round-trips it through encoding/json.
func TestRunTraceOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-trace", path, "-only", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatalf("output = %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
