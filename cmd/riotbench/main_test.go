package main

import (
	"strings"
	"testing"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "f2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "f9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickTable12(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "table12"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ML4-resilient") {
		t.Fatalf("output missing matrix:\n%s", out.String())
	}
}
