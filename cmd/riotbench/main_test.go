package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "f2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "f9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickTable12(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "table12"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ML4-resilient") {
		t.Fatalf("output missing matrix:\n%s", out.String())
	}
}

// TestRunParallelMatchesSerial is the CLI-level determinism check: the
// same campaign on one worker and on four must print byte-identical
// output, journal hashes included.
func TestRunParallelMatchesSerial(t *testing.T) {
	var serial, parallel strings.Builder
	base := []string{"-quick", "-only", "table12", "-seeds", "2", "-hashes"}
	if err := run(base, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-parallel", "4"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("serial and parallel output differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "journal seed=1 arch=") {
		t.Fatalf("output missing journal hashes:\n%s", serial.String())
	}
}

// TestRunOutWritesBenchJSON checks the -out schema benchdiff consumes.
func TestRunOutWritesBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "f2", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Benches []struct {
			ID          string  `json:"id"`
			NsPerOp     int64   `json:"ns_per_op"`
			AllocsPerOp uint64  `json:"allocs_per_op"`
			Runs        int     `json:"runs"`
			RunsPerSec  float64 `json:"runs_per_sec"`
		} `json:"benches"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if doc.Schema != "riotbench/bench/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Benches) != 1 || doc.Benches[0].ID != "f2" {
		t.Fatalf("benches = %+v", doc.Benches)
	}
	b := doc.Benches[0]
	if b.NsPerOp <= 0 || b.Runs <= 0 || b.RunsPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", b)
	}
}

// TestRunOutBadPath: an unwritable -out target must fail the run.
func TestRunOutBadPath(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-quick", "-only", "f2", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "b.json")}, &out)
	if err == nil {
		t.Fatal("unwritable -out path accepted")
	}
}

// failWriter errors after the first write, standing in for a broken
// pipe or full disk on stdout.
type failWriter struct{ writes int }

var errSink = errors.New("sink closed")

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, errSink
	}
	return len(p), nil
}

// TestRunWriteErrorPropagates: riotbench must exit non-zero when its
// output writer fails instead of silently printing into the void.
func TestRunWriteErrorPropagates(t *testing.T) {
	err := run([]string{"-quick", "-only", "f2"}, &failWriter{})
	if !errors.Is(err, errSink) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
}

// TestRunTraceOnly writes a Chrome trace without running experiments
// and round-trips it through encoding/json.
func TestRunTraceOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-trace", path, "-only", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatalf("output = %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
