package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/gossip"
)

// maxClosedIncidents bounds the retained history of closed incidents.
const maxClosedIncidents = 128

// IncidentView is one peer-down incident as served by /v1/incidents.
type IncidentView struct {
	Peer       string `json:"peer"`
	DownAtMs   int64  `json:"down_at_ms"`
	UpAtMs     int64  `json:"up_at_ms,omitempty"`
	RecoveryMs int64  `json:"recovery_ms,omitempty"`
	Open       bool   `json:"open"`
}

// IncidentsView is the /v1/incidents response.
type IncidentsView struct {
	Open      int            `json:"open"`
	Total     int            `json:"total"`
	Incidents []IncidentView `json:"incidents"`
}

// incidentLog derives incident records from membership transitions: a
// peer turning dead opens an incident, its next alive transition
// closes it. observe runs on the event loop, snapshot on HTTP handler
// goroutines, so the log carries its own lock.
type incidentLog struct {
	mu     sync.Mutex
	now    func() time.Duration
	open   map[string]time.Duration
	closed []IncidentView
	total  int
}

func newIncidentLog(now func() time.Duration) *incidentLog {
	return &incidentLog{now: now, open: make(map[string]time.Duration)}
}

func (l *incidentLog) observe(m gossip.Member) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch m.Status {
	case gossip.StatusDead:
		if _, ok := l.open[string(m.ID)]; !ok {
			l.open[string(m.ID)] = l.now()
			l.total++
		}
	case gossip.StatusAlive:
		if downAt, ok := l.open[string(m.ID)]; ok {
			delete(l.open, string(m.ID))
			up := l.now()
			l.closed = append(l.closed, IncidentView{
				Peer:       string(m.ID),
				DownAtMs:   downAt.Milliseconds(),
				UpAtMs:     up.Milliseconds(),
				RecoveryMs: (up - downAt).Milliseconds(),
			})
			if len(l.closed) > maxClosedIncidents {
				l.closed = l.closed[len(l.closed)-maxClosedIncidents:]
			}
		}
	}
}

// snapshot renders open incidents first (most recent down last), then
// the retained closed history in close order.
func (l *incidentLog) snapshot() IncidentsView {
	l.mu.Lock()
	defer l.mu.Unlock()
	view := IncidentsView{Open: len(l.open), Total: l.total}
	opens := make([]IncidentView, 0, len(l.open))
	for peer, downAt := range l.open {
		opens = append(opens, IncidentView{Peer: peer, DownAtMs: downAt.Milliseconds(), Open: true})
	}
	sort.Slice(opens, func(i, j int) bool { return opens[i].DownAtMs < opens[j].DownAtMs })
	view.Incidents = append(opens, append([]IncidentView(nil), l.closed...)...)
	if view.Incidents == nil {
		view.Incidents = []IncidentView{}
	}
	return view
}
