// Package serve is the production front door: an HTTP JSON API plus a
// server-sent-event subscription stream over a node's governed
// dataflow.Store and gossip membership. It is the first subsystem
// where the resilience stack meets real client traffic, so it is built
// service-shaped rather than demo-shaped:
//
//   - every store and membership access is funneled through the node's
//     event loop (the Loop interface realnet.Node satisfies), keeping
//     the single-threaded protocol contract intact;
//   - writes are coalesced by a batcher so a burst of PUTs costs one
//     event-loop turn, not one turn per request;
//   - admission control bounds the in-flight request count and sheds
//     the excess with 429 + Retry-After instead of queueing without
//     bound — resilience measured at the service boundary means the
//     node must degrade by refusing load, not by falling over;
//   - per-endpoint latency and outcome metrics land on the shared
//     obs.Registry, so the serving path is observable with the same
//     scrape the simulator metrics use;
//   - Shutdown drains: the stream hub closes its subscribers, the HTTP
//     listener stops accepting and waits for in-flight handlers, and
//     the batcher flushes queued writes before the node goes away.
//
// API surface:
//
//	PUT  /v1/data/{key}   write one item   {"value": 21.5, "topic": "...", "sensitivity": "public", "ttl": "30s"}
//	GET  /v1/data/{key}   read one item    value + produced-at + staleness + lineage
//	GET  /v1/data         list live keys
//	GET  /v1/members      gossip membership view
//	GET  /v1/incidents    peer-down incidents (open and recent closed)
//	GET  /v1/stream       SSE stream of applied items and membership transitions
//	GET  /healthz         liveness (process up, not draining is not required)
//	GET  /readyz          readiness (joined cluster and not draining)
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/space"
)

// Loop serializes access to protocol state owned by a node's event
// loop. realnet.Node satisfies it; Do runs fn on the loop and reports
// false if the node shut down before fn could run.
type Loop interface {
	Do(fn func()) bool
}

// Config parameterizes NewServer. Loop, Store and Members are
// required; everything else has serviceable defaults.
type Config struct {
	// Loop is the event-loop funnel of the node hosting the store and
	// membership (realnet.Node). Required.
	Loop Loop
	// Store is the governed data store reads and writes go to. Required.
	Store *dataflow.Store
	// Members is the gossip membership the members/incidents endpoints
	// and the stream report on. Required.
	Members *gossip.Protocol
	// Registry receives serving-path metrics; nil uses a private one.
	Registry *obs.Registry
	// Ready reports whether the node has joined its cluster; nil means
	// always ready. Draining always reads as not ready.
	Ready func() bool
	// Now is the clock incidents and items are stamped with; nil uses
	// wall time since NewServer.
	Now func() time.Duration
	// Origin is the domain label stamped on API writes (default "site").
	Origin space.DomainID
	// MaxInFlight bounds concurrently admitted requests; beyond it the
	// server sheds with 429 (default 256).
	MaxInFlight int
	// MaxBatch bounds how many queued writes one event-loop turn
	// applies (default 64).
	MaxBatch int
	// StreamBuffer is each subscriber's event buffer; events beyond it
	// are dropped for that subscriber (default 64).
	StreamBuffer int
	// MaxStreams bounds concurrent stream subscribers (default 1024).
	MaxStreams int
}

func (cfg Config) withDefaults() Config {
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Origin == "" {
		cfg.Origin = "site"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 64
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 1024
	}
	return cfg
}

// Server is one node's HTTP front door. Construct with NewServer
// before the node's event loop starts (it registers store and
// membership callbacks), then either Serve a listener or mount
// Handler in a test server. Shutdown drains.
type Server struct {
	cfg     Config
	loop    Loop
	store   *dataflow.Store
	members *gossip.Protocol
	reg     *obs.Registry

	mux       *http.ServeMux
	httpSrv   *http.Server
	batcher   *batcher
	hub       *hub
	incidents *incidentLog

	inflight chan struct{}
	draining atomic.Bool
	downOnce sync.Once

	reqSeconds map[string]*obs.Histogram
	shedTotal  *obs.Counter
	inflightG  *obs.Gauge
}

// routes instrumented with admission control and latency metrics.
var routeNames = []string{"put_data", "get_data", "list_data", "members", "incidents", "stream"}

// NewServer wires a server over the node's store and membership. Call
// before the node starts running: the constructor registers OnApply
// and OnChange callbacks, which must not race the event loop.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		loop:     cfg.Loop,
		store:    cfg.Store,
		members:  cfg.Members,
		reg:      cfg.Registry,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
	}
	s.reqSeconds = make(map[string]*obs.Histogram, len(routeNames))
	for _, r := range routeNames {
		s.reqSeconds[r] = s.reg.Histogram("riot_serve_request_seconds",
			"serving-path request latency by route", obs.DefBuckets, "route", r)
	}
	s.shedTotal = s.reg.Counter("riot_serve_shed_total", "requests shed by admission control")
	s.inflightG = s.reg.Gauge("riot_serve_inflight", "requests currently admitted")

	s.hub = newHub(cfg.StreamBuffer, cfg.MaxStreams,
		s.reg.Gauge("riot_serve_stream_subscribers", "live stream subscribers"),
		s.reg.Counter("riot_serve_stream_dropped_total", "stream events dropped on slow subscribers"))
	s.incidents = newIncidentLog(cfg.Now)
	s.batcher = newBatcher(cfg.Loop, s.applyBatch, cfg.MaxBatch, cfg.MaxInFlight,
		s.reg.Histogram("riot_serve_batch_size", "writes applied per event-loop turn",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}))

	// Remote applies and membership transitions feed the stream; the
	// callbacks run on the event loop, the hub is lock-protected.
	s.store.OnApply(func(item dataflow.Item, from simnet.NodeID) {
		s.hub.publish(StreamEvent{Type: "data", Key: item.Key, Value: item.Value, From: string(from)})
	})
	s.members.OnChange(func(m gossip.Member) {
		s.hub.publish(StreamEvent{Type: "member", Member: string(m.ID), Status: m.Status.String()})
		s.incidents.observe(m)
	})

	s.routes()
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// applyBatch runs on the event loop: it applies one batch of admitted
// writes to the store and publishes them to stream subscribers.
func (s *Server) applyBatch(items []dataflow.Item) {
	for _, item := range items {
		s.store.Put(item)
		s.hub.publish(StreamEvent{Type: "data", Key: item.Key, Value: item.Value, From: "local"})
	}
}

// Handler returns the server's HTTP handler (for httptest mounting).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. Like
// http.Server.Serve it returns http.ErrServerClosed after a graceful
// shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: readiness flips to 503, stream
// subscribers are closed (so their handlers finish), the HTTP server
// stops accepting and waits for in-flight requests up to ctx's
// deadline, and the batcher flushes queued writes. Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.downOnce.Do(func() {
		s.draining.Store(true)
		s.hub.close()
		err = s.httpSrv.Shutdown(ctx)
		s.batcher.stop()
	})
	return err
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() || (s.cfg.Ready != nil && !s.cfg.Ready()) {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("PUT /v1/data/{key...}", s.instrument("put_data", s.handlePut))
	s.mux.HandleFunc("GET /v1/data/{key...}", s.instrument("get_data", s.handleGet))
	s.mux.HandleFunc("GET /v1/data", s.instrument("list_data", s.handleList))
	s.mux.HandleFunc("GET /v1/members", s.instrument("members", s.handleMembers))
	s.mux.HandleFunc("GET /v1/incidents", s.instrument("incidents", s.handleIncidents))
	// The stream is long-lived, so it must not hold an admission slot
	// for its whole life; the hub bounds subscribers itself.
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with admission control and per-route
// latency/outcome metrics. A full in-flight queue sheds the request
// with 429 and a Retry-After hint instead of queueing it — bounded
// load is the serving-path resilience mechanism.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reqSeconds[route]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		select {
		case s.inflight <- struct{}{}:
		default:
			s.shedTotal.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			s.count(route, http.StatusTooManyRequests)
			return
		}
		s.inflightG.Add(1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		<-s.inflight
		s.inflightG.Add(-1)
		hist.Observe(time.Since(start).Seconds())
		s.count(route, rec.code)
	}
}

func (s *Server) count(route string, code int) {
	s.reg.Counter("riot_serve_requests_total", "serving-path requests by route and status",
		"route", route, "code", strconv.Itoa(code)).Inc()
}

// putBody is the PUT /v1/data/{key} request payload.
type putBody struct {
	Value       any    `json:"value"`
	Topic       string `json:"topic"`
	Sensitivity string `json:"sensitivity"`
	TTL         string `json:"ttl"`
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "empty key")
		return
	}
	var body putBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: "+err.Error())
		return
	}
	// Values must survive the gob wire between stores, so only scalar
	// JSON values are accepted (numbers arrive as float64).
	switch body.Value.(type) {
	case float64, string, bool:
	default:
		writeError(w, http.StatusBadRequest, "value must be a number, string, or boolean")
		return
	}
	sens, err := parseSensitivity(body.Sensitivity)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var ttl time.Duration
	if body.TTL != "" {
		ttl, err = time.ParseDuration(body.TTL)
		if err != nil || ttl < 0 {
			writeError(w, http.StatusBadRequest, "bad ttl")
			return
		}
	}
	topic := body.Topic
	if topic == "" {
		topic = "api"
	}
	item := dataflow.Item{
		Key:   key,
		Value: body.Value,
		Label: dataflow.Label{Topic: topic, Sensitivity: sens, Origin: s.cfg.Origin, TTL: ttl},
	}
	if err := s.batcher.submit(item); err != nil {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// hopView is one lineage step in a read response.
type hopView struct {
	Node   string `json:"node"`
	Action string `json:"action"`
	AtMs   int64  `json:"at_ms"`
}

// itemView is the GET /v1/data/{key} response.
type itemView struct {
	Key          string    `json:"key"`
	Value        any       `json:"value"`
	ProducedAtMs int64     `json:"produced_at_ms"`
	StalenessMs  int64     `json:"staleness_ms"`
	Lineage      []hopView `json:"lineage,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var (
		item  dataflow.Item
		ok    bool
		stale time.Duration
	)
	if !s.loop.Do(func() {
		item, ok = s.store.Get(key)
		if ok {
			stale, _ = s.store.Staleness(key)
		}
	}) {
		writeError(w, http.StatusServiceUnavailable, "node shut down")
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	view := itemView{
		Key:          key,
		Value:        item.Value,
		ProducedAtMs: item.ProducedAt.Milliseconds(),
		StalenessMs:  stale.Milliseconds(),
	}
	for _, h := range item.Lineage {
		view.Lineage = append(view.Lineage, hopView{Node: h.Node, Action: h.Action, AtMs: h.At.Milliseconds()})
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	var keys []string
	if !s.loop.Do(func() { keys = s.store.Keys() }) {
		writeError(w, http.StatusServiceUnavailable, "node shut down")
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys})
}

// memberView is one row of the GET /v1/members response.
type memberView struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Incarnation uint64 `json:"incarnation"`
}

func (s *Server) handleMembers(w http.ResponseWriter, _ *http.Request) {
	var ms []gossip.Member
	if !s.loop.Do(func() { ms = s.members.Members() }) {
		writeError(w, http.StatusServiceUnavailable, "node shut down")
		return
	}
	views := make([]memberView, 0, len(ms))
	for _, m := range ms {
		views = append(views, memberView{ID: string(m.ID), Status: m.Status.String(), Incarnation: m.Incarnation})
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.incidents.snapshot())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		s.count("stream", http.StatusInternalServerError)
		return
	}
	sub, err := s.hub.subscribe()
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		s.count("stream", http.StatusServiceUnavailable)
		return
	}
	defer s.hub.unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, ": connected\n\n")
	fl.Flush()
	s.count("stream", http.StatusOK)
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				return // hub closed: server draining
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func parseSensitivity(s string) (dataflow.Sensitivity, error) {
	switch s {
	case "", "public":
		return dataflow.Public, nil
	case "internal":
		return dataflow.Internal, nil
	case "sensitive":
		return dataflow.Sensitive, nil
	default:
		return 0, fmt.Errorf("unknown sensitivity %q (want public, internal, or sensitive)", s)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
