package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/realnet"
	"repro/internal/simnet"
	"repro/internal/space"
)

// testStack is a single-node protocol stack a server can front.
type testStack struct {
	node    *realnet.Node
	store   *dataflow.Store
	members *gossip.Protocol
}

func newTestStack(t *testing.T) *testStack {
	t.Helper()
	registerWire()
	node, err := realnet.NewNode("solo", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "site", Trusted: true})
	world.Place("solo", space.Point{}, "site")
	mux := simnet.NewPortMux(node)
	members := gossip.New(mux.Port("gossip"), gossip.Config{
		ProbeInterval: 200 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond,
		SuspicionTimeout: time.Second,
	})
	store := dataflow.NewStore(mux.Port("store"), world, dataflow.StoreConfig{
		SyncInterval: 200 * time.Millisecond,
	})
	return &testStack{node: node, store: store, members: members}
}

func (ts *testStack) start() {
	ts.node.Run()
	ts.node.Do(func() {
		ts.members.Start()
		ts.store.Start()
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ts := newTestStack(t)
	if cfg.Loop == nil {
		cfg.Loop = ts.node
	}
	cfg.Store = ts.store
	cfg.Members = ts.members
	cfg.Now = ts.node.Now
	srv := NewServer(cfg)
	ts.start()
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		ts.node.Close()
	})
	return srv, hts
}

func doReq(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestPutGetRoundTrip(t *testing.T) {
	_, hts := newTestServer(t, Config{})

	resp, body := doReq(t, http.MethodPut, hts.URL+"/v1/data/room1/temp",
		`{"value": 21.5, "topic": "climate", "ttl": "1m"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d %s", resp.StatusCode, body)
	}

	resp, body = doReq(t, http.MethodGet, hts.URL+"/v1/data/room1/temp", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d %s", resp.StatusCode, body)
	}
	var view itemView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Key != "room1/temp" || view.Value != 21.5 {
		t.Fatalf("view = %+v", view)
	}
	if len(view.Lineage) == 0 || view.Lineage[0].Action != "produced" {
		t.Fatalf("lineage = %+v", view.Lineage)
	}

	resp, body = doReq(t, http.MethodGet, hts.URL+"/v1/data", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "room1/temp") {
		t.Fatalf("list = %d %s", resp.StatusCode, body)
	}
}

func TestGetMissingIs404(t *testing.T) {
	_, hts := newTestServer(t, Config{})
	resp, _ := doReq(t, http.MethodGet, hts.URL+"/v1/data/ghost", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing = %d", resp.StatusCode)
	}
}

func TestPutRejectsBadBodies(t *testing.T) {
	_, hts := newTestServer(t, Config{})
	for _, body := range []string{
		``,                             // empty
		`{"value": {"nested": 1}}`,     // non-scalar value
		`{"value": [1,2]}`,             // non-scalar value
		`{"value": null}`,              // null value
		`{"value": 1, "ttl": "bogus"}`, // bad ttl
		`{"value": 1, "sensitivity": "topsecret"}`, // unknown sensitivity
	} {
		resp, got := doReq(t, http.MethodPut, hts.URL+"/v1/data/k", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %q = %d %s, want 400", body, resp.StatusCode, got)
		}
	}
}

func TestMembersEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Config{})
	resp, body := doReq(t, http.MethodGet, hts.URL+"/v1/members", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("members = %d", resp.StatusCode)
	}
	var views []memberView
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].ID != "solo" || views[0].Status != "alive" {
		t.Fatalf("members = %+v", views)
	}
}

func TestIncidentsEndpointEmpty(t *testing.T) {
	_, hts := newTestServer(t, Config{})
	resp, body := doReq(t, http.MethodGet, hts.URL+"/v1/incidents", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("incidents = %d", resp.StatusCode)
	}
	var view IncidentsView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Open != 0 || view.Total != 0 || len(view.Incidents) != 0 {
		t.Fatalf("incidents = %+v", view)
	}
}

// gatedLoop blocks every Do until the gate closes — the test handle
// for holding a request in flight.
type gatedLoop struct {
	inner Loop
	gate  chan struct{}
}

func (g gatedLoop) Do(fn func()) bool {
	<-g.gate
	return g.inner.Do(fn)
}

func TestAdmissionControlSheds(t *testing.T) {
	ts := newTestStack(t)
	gate := make(chan struct{})
	reg := obs.NewRegistry()
	srv := NewServer(Config{
		Loop:        gatedLoop{inner: ts.node, gate: gate},
		Store:       ts.store,
		Members:     ts.members,
		Registry:    reg,
		Now:         ts.node.Now,
		MaxInFlight: 1,
	})
	ts.start()
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		ts.node.Close()
	})

	// First request occupies the single admission slot, blocked at the
	// gate inside the handler.
	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(hts.URL + "/v1/data/held")
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitFor(t, time.Second, func() bool { return srv.inflightG.Value() == 1 })

	// The queue is full: the next request must be shed, not queued.
	resp, _ := doReq(t, http.MethodGet, hts.URL+"/v1/data/extra", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
	if srv.shedTotal.Value() != 1 {
		t.Fatalf("shed counter = %d", srv.shedTotal.Value())
	}

	close(gate)
	if code := <-first; code != http.StatusNotFound {
		t.Fatalf("held request = %d, want 404", code)
	}
	// Slot released: traffic flows again.
	resp, _ = doReq(t, http.MethodGet, hts.URL+"/v1/data/after", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-release request = %d, want 404", resp.StatusCode)
	}
}

func TestStreamDeliversWritesAndDrains(t *testing.T) {
	srv, hts := newTestServer(t, Config{})

	resp, err := http.Get(hts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				lines <- strings.TrimPrefix(line, "data: ")
			}
		}
		close(lines)
	}()

	if resp, body := doReq(t, http.MethodPut, hts.URL+"/v1/data/streamed", `{"value": 7}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d %s", resp.StatusCode, body)
	}

	select {
	case line := <-lines:
		var ev StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != "data" || ev.Key != "streamed" || ev.From != "local" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no stream event within 2s")
	}

	// Drain: the hub closes the subscription, so the body ends.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-lines:
		if open {
			// Events published before the drain may still be buffered;
			// drain until close.
			for range lines {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream did not end on drain")
	}
}

func TestWritesRefusedWhileDraining(t *testing.T) {
	srv, hts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if !srv.Draining() {
		t.Fatal("server not draining after Shutdown")
	}
	resp, _ := doReq(t, http.MethodPut, hts.URL+"/v1/data/late", `{"value": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT while draining = %d, want 503", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, hts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
}

func TestReadyzTracksConfigReady(t *testing.T) {
	ready := false
	_, hts := newTestServer(t, Config{Ready: func() bool { return ready }})
	resp, _ := doReq(t, http.MethodGet, hts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz unjoined = %d, want 503", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, hts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	ready = true
	resp, _ = doReq(t, http.MethodGet, hts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz joined = %d, want 200", resp.StatusCode)
	}
}

func TestServeMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	_, hts := newTestServer(t, Config{Registry: reg})
	if resp, body := doReq(t, http.MethodPut, hts.URL+"/v1/data/m", `{"value": 1}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d %s", resp.StatusCode, body)
	}
	doReq(t, http.MethodGet, hts.URL+"/v1/data/m", "")

	var sb strings.Builder
	if err := reg.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`riot_serve_requests_total{code="204",route="put_data"} 1`,
		`riot_serve_requests_total{code="200",route="get_data"} 1`,
		`riot_serve_request_seconds_count{route="put_data"} 1`,
		`riot_serve_batch_size_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIncidentLog exercises the open/close bookkeeping directly.
func TestIncidentLog(t *testing.T) {
	now := 10 * time.Second
	log := newIncidentLog(func() time.Duration { return now })

	log.observe(gossip.Member{ID: "b", Status: gossip.StatusDead})
	now = 12 * time.Second
	log.observe(gossip.Member{ID: "b", Status: gossip.StatusDead}) // duplicate: no-op
	view := log.snapshot()
	if view.Open != 1 || view.Total != 1 || !view.Incidents[0].Open {
		t.Fatalf("after down: %+v", view)
	}

	log.observe(gossip.Member{ID: "b", Status: gossip.StatusAlive})
	view = log.snapshot()
	if view.Open != 0 || view.Total != 1 {
		t.Fatalf("after recovery: %+v", view)
	}
	inc := view.Incidents[0]
	if inc.Peer != "b" || inc.RecoveryMs != 2000 || inc.Open {
		t.Fatalf("closed incident = %+v", inc)
	}

	// Alive with no open incident is a no-op.
	log.observe(gossip.Member{ID: "c", Status: gossip.StatusAlive})
	if v := log.snapshot(); v.Total != 1 {
		t.Fatalf("spurious incident: %+v", v)
	}
}

// TestIncidentLogRingBound checks the closed-history bound holds.
func TestIncidentLogRingBound(t *testing.T) {
	var now time.Duration
	log := newIncidentLog(func() time.Duration { return now })
	for i := 0; i < maxClosedIncidents+10; i++ {
		id := simnet.NodeID(fmt.Sprintf("p%d", i))
		log.observe(gossip.Member{ID: id, Status: gossip.StatusDead})
		now += time.Second
		log.observe(gossip.Member{ID: id, Status: gossip.StatusAlive})
	}
	view := log.snapshot()
	if len(view.Incidents) != maxClosedIncidents {
		t.Fatalf("retained %d closed incidents, want %d", len(view.Incidents), maxClosedIncidents)
	}
	if view.Total != maxClosedIncidents+10 {
		t.Fatalf("total = %d", view.Total)
	}
}
