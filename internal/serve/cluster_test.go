package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClusterEndToEnd is the serving-path acceptance test: a 3-node
// real-socket cluster where a write accepted by one node becomes
// readable from another, membership converges, and the stream on a
// third node carries the replicated item.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster test")
	}
	cl, err := StartCluster(3, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	urls := cl.URLs()

	// Readiness: every node joins within the warmup budget.
	client := &http.Client{Timeout: 2 * time.Second}
	if err := waitReady(client, urls, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Subscribe on node 2 before writing on node 0.
	stream, err := client.Get(urls[2] + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	events := make(chan StreamEvent, 64)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev StreamEvent
				if json.Unmarshal([]byte(line), &ev) == nil {
					events <- ev
				}
			}
		}
	}()

	req, _ := http.NewRequest(http.MethodPut, urls[0]+"/v1/data/city/temp",
		strings.NewReader(`{"value": 19.25}`))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT on node 0 = %d", resp.StatusCode)
	}

	// The write must become readable from node 2 (two sync hops max).
	deadline := time.Now().Add(5 * time.Second)
	var view itemView
	for {
		resp, err := client.Get(urls[2] + "/v1/data/city/temp")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &view); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never reached node 2 (last status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if view.Value != 19.25 {
		t.Fatalf("node 2 read %v, want 19.25", view.Value)
	}
	// Lineage shows the item travelled: produced on n0, received here.
	if len(view.Lineage) < 2 || view.Lineage[0].Node != "n0" {
		t.Fatalf("lineage = %+v", view.Lineage)
	}

	// Node 2's stream saw the item arrive from a peer.
	streamDeadline := time.After(3 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Type == "data" && ev.Key == "city/temp" {
				if ev.From == "local" {
					t.Fatalf("node 2 stream labeled the item local: %+v", ev)
				}
				goto members
			}
		case <-streamDeadline:
			t.Fatal("stream on node 2 never carried the replicated item")
		}
	}

members:
	// Membership view on node 1 has all three alive.
	resp, err = client.Get(urls[1] + "/v1/members")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var views []memberView
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, v := range views {
		if v.Status == "alive" {
			alive++
		}
	}
	if alive != 3 {
		t.Fatalf("node 1 sees %d alive members, want 3: %+v", alive, views)
	}
}

// TestClusterUnderLoad drives a short riotload run against a live
// cluster: no server errors, non-zero accepted writes, sane latencies.
func TestClusterUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load test")
	}
	cl, err := StartCluster(3, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rep, err := RunLoad(LoadConfig{
		Targets:  cl.URLs(),
		RPS:      200,
		Duration: time.Second,
		Conns:    32,
		Keys:     16,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErr != 0 || rep.NetErr != 0 {
		t.Fatalf("errors under load: %+v", rep)
	}
	if rep.WriteOK == 0 {
		t.Fatalf("no accepted writes: %+v", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
}

func TestStartClusterValidation(t *testing.T) {
	if _, err := StartCluster(0, ClusterOptions{}); err == nil {
		t.Fatal("size 0 accepted")
	}
	// A registry slice of the wrong length is a config error.
	if _, err := StartCluster(2, ClusterOptions{Registries: make([]*obs.Registry, 1)}); err == nil {
		t.Fatal("mismatched registries accepted")
	}
}
