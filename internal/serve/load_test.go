package serve

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestLatHistPercentiles(t *testing.T) {
	h := newLatHist()
	// 100 samples: 1ms .. 100ms.
	for i := 1; i <= 100; i++ {
		h.record(time.Duration(i) * time.Millisecond)
	}
	s := h.summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	// Log-bucketed: the reported percentile is the bucket upper bound,
	// within one growth factor (25%) of the true value.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 50 * time.Millisecond}, {0.90, 90 * time.Millisecond}, {0.99, 99 * time.Millisecond}}
	for _, c := range checks {
		h.mu.Lock()
		got := h.percentile(c.q)
		h.mu.Unlock()
		if got < c.want || got > c.want*5/4 {
			t.Errorf("p%.0f = %v, want within [%v, %v]", c.q*100, got, c.want, c.want*5/4)
		}
	}
}

func TestLatHistEmptyAndOverflow(t *testing.T) {
	h := newLatHist()
	if s := h.summary(); s.P50 != 0 || s.Max != 0 || s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	h.record(10 * time.Minute) // beyond the last bucket
	s := h.summary()
	if s.Max != 10*time.Minute || s.P99 != 10*time.Minute {
		t.Fatalf("overflow summary = %+v", s)
	}
}

func TestRunLoadAgainstStub(t *testing.T) {
	var puts, gets atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz":
			w.WriteHeader(http.StatusOK)
		case r.Method == http.MethodPut:
			puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
		case r.Method == http.MethodGet:
			gets.Add(1)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"key":"k","value":1}`))
		}
	}))
	defer stub.Close()

	rep, err := RunLoad(LoadConfig{
		Targets:  []string{stub.URL},
		RPS:      400,
		Duration: 500 * time.Millisecond,
		Conns:    32,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.OK != rep.ReadOK+rep.WriteOK {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ServerErr != 0 || rep.NetErr != 0 || rep.Shed != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	if rep.Latency.Count != rep.OK {
		t.Fatalf("latency count %d != ok %d", rep.Latency.Count, rep.OK)
	}
	if rep.Latency.P99 == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("latency/rps missing: %+v", rep)
	}
	if rep.ReadOK == 0 || rep.WriteOK == 0 {
		t.Fatalf("mix not exercised: %+v", rep)
	}
	if got := puts.Load() + gets.Load(); got != int64(rep.Issued) {
		t.Fatalf("server saw %d requests, client issued %d", got, rep.Issued)
	}
}

func TestRunLoadCountsSheds(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer stub.Close()

	rep, err := RunLoad(LoadConfig{
		Targets:  []string{stub.URL},
		RPS:      200,
		Duration: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 || rep.Shed == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Shed responses are not service latencies.
	if rep.Latency.Count != 0 {
		t.Fatalf("latency count = %d, want 0", rep.Latency.Count)
	}
}

func TestRunLoadReadyTimeout(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer stub.Close()
	_, err := RunLoad(LoadConfig{
		Targets:   []string{stub.URL},
		RPS:       10,
		Duration:  100 * time.Millisecond,
		ReadyWait: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected readiness timeout")
	}
}

func TestRunLoadValidation(t *testing.T) {
	bad := []LoadConfig{
		{},                                      // no targets
		{Targets: []string{"http://x"}},         // no rps
		{Targets: []string{"http://x"}, RPS: 1}, // no duration
		{Targets: []string{"http://x"}, RPS: 1, Duration: time.Second, ReadFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := RunLoad(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
