package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataflow"
)

// countingLoop runs callbacks inline (optionally gated) and counts
// turns — a stand-in for the node event loop.
type countingLoop struct {
	gate  chan struct{} // nil: never blocks
	turns atomic.Int64
	dead  atomic.Bool
}

func (l *countingLoop) Do(fn func()) bool {
	if l.gate != nil {
		<-l.gate
	}
	if l.dead.Load() {
		return false
	}
	l.turns.Add(1)
	fn()
	return true
}

func TestBatcherAppliesEveryWrite(t *testing.T) {
	loop := &countingLoop{}
	var mu sync.Mutex
	var got []string
	b := newBatcher(loop, func(items []dataflow.Item) {
		mu.Lock()
		for _, it := range items {
			got = append(got, it.Key)
		}
		mu.Unlock()
	}, 8, 64, nil)
	defer b.stop()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.submit(dataflow.Item{Key: string(rune('a' + i%26))}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 20 {
		t.Fatalf("applied %d writes, want 20", n)
	}
}

// TestBatcherCoalesces holds the loop shut while writers queue, then
// releases it: the queued writes must land in far fewer turns than
// writes — the single-turn coalescing the serving path depends on.
func TestBatcherCoalesces(t *testing.T) {
	gate := make(chan struct{})
	loop := &countingLoop{gate: gate}
	b := newBatcher(loop, func([]dataflow.Item) {}, 64, 64, nil)
	defer b.stop()

	const writers = 24
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.submit(dataflow.Item{Key: "k"}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	// Let every writer enqueue: the dispatcher is blocked at the gate
	// holding the first (possibly small) batch.
	deadline := time.Now().Add(time.Second)
	for len(b.reqs) < writers-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	turns := loop.turns.Load()
	// First turn takes whatever was drained at pickup; the second takes
	// everything else. A small scheduling margin keeps this robust.
	if turns > 4 {
		t.Fatalf("24 writes took %d event-loop turns, want <= 4 (coalescing broken)", turns)
	}
}

func TestBatcherMaxBatchBound(t *testing.T) {
	gate := make(chan struct{})
	loop := &countingLoop{gate: gate}
	var mu sync.Mutex
	var sizes []int
	b := newBatcher(loop, func(items []dataflow.Item) {
		mu.Lock()
		sizes = append(sizes, len(items))
		mu.Unlock()
	}, 4, 64, nil)
	defer b.stop()

	const writers = 10
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.submit(dataflow.Item{Key: "k"})
		}()
	}
	deadline := time.Now().Add(time.Second)
	for len(b.reqs) < writers-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, s := range sizes {
		if s > 4 {
			t.Fatalf("batch of %d exceeds max 4 (sizes %v)", s, sizes)
		}
		total += s
	}
	if total != writers {
		t.Fatalf("applied %d writes, want %d", total, writers)
	}
}

func TestBatcherStopFlushesQueued(t *testing.T) {
	gate := make(chan struct{})
	loop := &countingLoop{gate: gate}
	var applied atomic.Int64
	b := newBatcher(loop, func(items []dataflow.Item) {
		applied.Add(int64(len(items)))
	}, 64, 64, nil)

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.submit(dataflow.Item{Key: "k"})
		}()
	}
	deadline := time.Now().Add(time.Second)
	for len(b.reqs) < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	b.stop() // must flush everything already accepted
	wg.Wait()
	if got := applied.Load(); got != 10 {
		t.Fatalf("stop flushed %d writes, want 10", got)
	}

	// After stop, new submissions are refused.
	if err := b.submit(dataflow.Item{Key: "late"}); err != ErrDraining {
		t.Fatalf("submit after stop = %v, want ErrDraining", err)
	}
}

func TestBatcherDeadLoopReportsError(t *testing.T) {
	loop := &countingLoop{}
	loop.dead.Store(true)
	b := newBatcher(loop, func([]dataflow.Item) {}, 8, 8, nil)
	defer b.stop()
	if err := b.submit(dataflow.Item{Key: "k"}); err != ErrDraining {
		t.Fatalf("submit on dead loop = %v, want ErrDraining", err)
	}
}
