package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes one open-loop load run against a set of
// serve endpoints.
type LoadConfig struct {
	// Targets are the base URLs of the nodes to drive (round-robin by
	// the arrival scheduler's rng). Required.
	Targets []string
	// RPS is the open-loop arrival rate across all targets. Required.
	RPS int
	// Duration is how long arrivals are generated. Required.
	Duration time.Duration
	// Conns bounds outstanding requests; arrivals beyond it are counted
	// as client-side drops rather than queued, keeping the arrival
	// process open-loop (default 64).
	Conns int
	// Keys is the key-space size (default 64).
	Keys int
	// ReadFraction is the share of arrivals that are reads; 0 selects
	// the 0.5 default, negative requests a write-only mix.
	ReadFraction float64
	// Seed feeds the arrival scheduler's rng (default 1).
	Seed int64
	// Timeout is the per-request client timeout (default 5s).
	Timeout time.Duration
	// ReadyWait polls each target's /readyz before starting, up to this
	// long (default 5s; negative skips the check).
	ReadyWait time.Duration
	// KeyPrefix namespaces the generated keys (default "load/k").
	KeyPrefix string
}

func (cfg LoadConfig) withDefaults() (LoadConfig, error) {
	if len(cfg.Targets) == 0 {
		return cfg, errors.New("load: no targets")
	}
	if cfg.RPS <= 0 {
		return cfg, errors.New("load: rps must be positive")
	}
	if cfg.Duration <= 0 {
		return cfg, errors.New("load: duration must be positive")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 64
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	switch {
	case cfg.ReadFraction == 0:
		cfg.ReadFraction = 0.5
	case cfg.ReadFraction < 0:
		cfg.ReadFraction = 0
	case cfg.ReadFraction > 1:
		return cfg, errors.New("load: read fraction must be at most 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.ReadyWait == 0 {
		cfg.ReadyWait = 5 * time.Second
	}
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = "load/k"
	}
	return cfg, nil
}

// LatencySummary is the percentile digest of served-request latencies.
type LatencySummary struct {
	Count int
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// LoadReport is the outcome of one load run. Offered counts scheduled
// arrivals; Dropped are arrivals shed client-side when Conns was
// exhausted (the open-loop analogue of a connection refusing to
// dial). Latencies cover served requests only (2xx and 404 reads) and
// are measured from the scheduled arrival, so server-side queueing
// counts against the percentile — no coordinated omission.
type LoadReport struct {
	Offered   int
	Issued    int
	OK        int
	WriteOK   int
	ReadOK    int
	NotFound  int
	Shed      int // 429 from admission control
	ServerErr int // 5xx
	NetErr    int // transport failures
	Dropped   int // client-side: Conns exhausted
	Elapsed   time.Duration
	// AchievedRPS is successfully served requests per wall-clock second.
	AchievedRPS float64
	Latency     LatencySummary
}

// loadStats accumulates outcomes across request goroutines.
type loadStats struct {
	issued, writeOK, readOK, notFound atomic.Int64
	shed, serverErr, netErr           atomic.Int64
	hist                              *latHist
}

// RunLoad drives the targets with an open-loop arrival process for
// cfg.Duration and returns the outcome digest. The run is wall-clock
// real: latencies are whatever the serving path actually delivered.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return LoadReport{}, err
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Conns * len(cfg.Targets),
			MaxIdleConnsPerHost: cfg.Conns,
		},
	}
	defer client.CloseIdleConnections()
	if cfg.ReadyWait > 0 {
		if err := waitReady(client, cfg.Targets, cfg.ReadyWait); err != nil {
			return LoadReport{}, err
		}
	}

	st := &loadStats{hist: newLatHist()}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sem := make(chan struct{}, cfg.Conns)
	interval := time.Second / time.Duration(cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	offered, dropped := 0, 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		offered++
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		target := cfg.Targets[rng.Intn(len(cfg.Targets))]
		key := fmt.Sprintf("%s%04d", cfg.KeyPrefix, rng.Intn(cfg.Keys))
		read := rng.Float64() < cfg.ReadFraction
		val := rng.Float64() * 100
		arrival := time.Now()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			doRequest(client, st, target, key, read, val, arrival)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadReport{
		Offered:   offered,
		Issued:    int(st.issued.Load()),
		WriteOK:   int(st.writeOK.Load()),
		ReadOK:    int(st.readOK.Load()),
		NotFound:  int(st.notFound.Load()),
		Shed:      int(st.shed.Load()),
		ServerErr: int(st.serverErr.Load()),
		NetErr:    int(st.netErr.Load()),
		Dropped:   dropped,
		Elapsed:   elapsed,
	}
	rep.OK = rep.WriteOK + rep.ReadOK
	if secs := elapsed.Seconds(); secs > 0 {
		rep.AchievedRPS = float64(rep.OK) / secs
	}
	rep.Latency = st.hist.summary()
	return rep, nil
}

func doRequest(client *http.Client, st *loadStats, target, key string, read bool, val float64, arrival time.Time) {
	st.issued.Add(1)
	url := target + "/v1/data/" + key
	var (
		resp *http.Response
		err  error
	)
	if read {
		resp, err = client.Get(url)
	} else {
		body, _ := json.Marshal(map[string]any{"value": val})
		var req *http.Request
		req, err = http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			resp, err = client.Do(req)
		}
	}
	if err != nil {
		st.netErr.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(arrival)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		st.shed.Add(1)
	case resp.StatusCode >= 500:
		st.serverErr.Add(1)
	case resp.StatusCode == http.StatusNotFound && read:
		// A read of a key no writer has touched yet is served correctly;
		// it counts toward latency but not toward OK throughput.
		st.notFound.Add(1)
		st.hist.record(lat)
	case resp.StatusCode < 300:
		if read {
			st.readOK.Add(1)
		} else {
			st.writeOK.Add(1)
		}
		st.hist.record(lat)
	default:
		st.netErr.Add(1)
	}
}

// waitReady polls every target's /readyz until it passes or the
// deadline expires — load against a cluster still joining would
// measure bootstrap, not serving.
func waitReady(client *http.Client, targets []string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for _, t := range targets {
		for {
			resp, err := client.Get(t + "/readyz")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("load: target %s not ready after %v", t, wait)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	return nil
}

// latHist is an HDR-style log-bucketed latency histogram: geometric
// buckets from 20µs growing 1.25x per step (64 buckets reach ~25s), so
// percentile error is bounded at ~25% of the value across the whole
// range — plenty for a p50/p99 gate — with O(1) record cost.
type latHist struct {
	mu     sync.Mutex
	bounds []time.Duration
	counts []int
	over   int
	max    time.Duration
	count  int
}

const (
	latHistBuckets = 64
	latHistBase    = 20 * time.Microsecond
	latHistGrowth  = 1.25
)

func newLatHist() *latHist {
	bounds := make([]time.Duration, latHistBuckets)
	b := float64(latHistBase)
	for i := range bounds {
		bounds[i] = time.Duration(b)
		b *= latHistGrowth
	}
	return &latHist{bounds: bounds, counts: make([]int, latHistBuckets)}
}

func (h *latHist) record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	if d > h.max {
		h.max = d
	}
	// Binary search for the first bound >= d.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.bounds) {
		h.over++
		return
	}
	h.counts[lo]++
}

// percentile returns the upper bound of the bucket holding the q-th
// quantile sample (the exact max for the overflow bucket). Callers
// hold the lock.
func (h *latHist) percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return h.bounds[i]
		}
	}
	return h.max
}

func (h *latHist) summary() LatencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return LatencySummary{
		Count: h.count,
		P50:   h.percentile(0.50),
		P90:   h.percentile(0.90),
		P99:   h.percentile(0.99),
		Max:   h.max,
	}
}

// Format renders the report as a one-line human summary.
func (r LoadReport) Format() string {
	return fmt.Sprintf(
		"offered=%d ok=%d (w=%d r=%d nf=%d) shed=%d 5xx=%d neterr=%d dropped=%d achieved=%.0f/s p50=%s p90=%s p99=%s max=%s",
		r.Offered, r.OK, r.WriteOK, r.ReadOK, r.NotFound, r.Shed, r.ServerErr, r.NetErr, r.Dropped,
		r.AchievedRPS,
		r.Latency.P50.Round(10*time.Microsecond), r.Latency.P90.Round(10*time.Microsecond),
		r.Latency.P99.Round(10*time.Microsecond), r.Latency.Max.Round(10*time.Microsecond))
}
