package serve

import (
	"errors"

	"repro/internal/dataflow"
	"repro/internal/obs"
)

// ErrDraining is returned by a write submitted while the server drains
// or after the node's event loop has shut down.
var ErrDraining = errors.New("serve: draining")

// writeReq is one queued write; done receives the apply outcome.
type writeReq struct {
	item dataflow.Item
	done chan error
}

// batcher coalesces concurrent writes into single event-loop turns.
// HTTP handler goroutines submit and block until their write is
// applied; a single dispatcher goroutine drains whatever is queued (up
// to max per turn) and applies the whole batch in one Loop.Do. Under a
// burst of B writers one turn absorbs up to min(B, max) writes, so the
// event loop spends its time on protocol work instead of per-request
// handoffs.
type batcher struct {
	loop  Loop
	apply func([]dataflow.Item)
	max   int
	reqs  chan writeReq
	quit  chan struct{}
	done  chan struct{}
	sizes *obs.Histogram
}

// newBatcher starts the dispatcher. queue bounds how many writes may
// wait; the server's admission control keeps submissions below it.
func newBatcher(loop Loop, apply func([]dataflow.Item), max, queue int, sizes *obs.Histogram) *batcher {
	b := &batcher{
		loop:  loop,
		apply: apply,
		max:   max,
		reqs:  make(chan writeReq, queue),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		sizes: sizes,
	}
	go b.run()
	return b
}

// submit queues one write and waits for it to be applied.
func (b *batcher) submit(item dataflow.Item) error {
	req := writeReq{item: item, done: make(chan error, 1)}
	select {
	case b.reqs <- req:
	case <-b.quit:
		return ErrDraining
	}
	select {
	case err := <-req.done:
		return err
	case <-b.done:
		// The dispatcher exited after we enqueued: either it applied us
		// during its final drain (done is buffered) or we were stranded.
		select {
		case err := <-req.done:
			return err
		default:
			return ErrDraining
		}
	}
}

// stop flushes queued writes and waits for the dispatcher to exit.
// Idempotent; callers already holding no new submissions (the HTTP
// server is shut down) get every accepted write applied.
func (b *batcher) stop() {
	select {
	case <-b.quit:
	default:
		close(b.quit)
	}
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	var batch []writeReq
	for {
		select {
		case r := <-b.reqs:
			batch = b.fill(batch[:0], r)
			b.flush(batch)
		case <-b.quit:
			for {
				select {
				case r := <-b.reqs:
					batch = b.fill(batch[:0], r)
					b.flush(batch)
				default:
					return
				}
			}
		}
	}
}

// fill drains everything already queued behind the first request, up
// to the per-turn bound — the coalescing step.
func (b *batcher) fill(batch []writeReq, first writeReq) []writeReq {
	batch = append(batch, first)
	for len(batch) < b.max {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// flush applies one batch in a single event-loop turn and completes
// every waiter.
func (b *batcher) flush(batch []writeReq) {
	items := make([]dataflow.Item, len(batch))
	for i, r := range batch {
		items[i] = r.item
	}
	var err error
	if !b.loop.Do(func() { b.apply(items) }) {
		err = ErrDraining
	}
	if b.sizes != nil {
		b.sizes.Observe(float64(len(batch)))
	}
	for _, r := range batch {
		r.done <- err
	}
}
