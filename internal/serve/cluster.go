package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/realnet"
	"repro/internal/simnet"
	"repro/internal/space"
)

// ClusterOptions tunes StartCluster. Zero values pick fast loopback
// defaults suited to tests and benches.
type ClusterOptions struct {
	// ProbeInterval is the gossip probe period (default 200ms; timeout
	// and suspicion scale off it).
	ProbeInterval time.Duration
	// SyncInterval is the store anti-entropy period (default 250ms).
	SyncInterval time.Duration
	// MaxInFlight / MaxBatch configure each node's server.
	MaxInFlight int
	MaxBatch    int
	// Registries, when non-nil, must have one registry per node; nil
	// gives each server a private registry.
	Registries []*obs.Registry
}

// ClusterNode is one member of a local serving cluster.
type ClusterNode struct {
	ID      simnet.NodeID
	Node    *realnet.Node
	Members *gossip.Protocol
	Store   *dataflow.Store
	Server  *Server
	URL     string

	ln  net.Listener
	sub *obs.Subscription
}

// Cluster is a set of loopback realnet nodes, each running gossip
// membership, a governed store synchronized all-to-all, and a serve
// front door — the in-process shape of the CI smoke's three riotnode
// processes. Used by the riotbench `serve` experiment and the e2e
// tests.
type Cluster struct {
	Nodes []*ClusterNode
}

var wireOnce sync.Once

// registerWire makes the cluster's protocol messages gob-encodable
// exactly once per process (idempotent with riotnode's own calls).
func registerWire() {
	wireOnce.Do(func() {
		gossip.RegisterWire(realnet.RegisterWireType)
		dataflow.RegisterWire(realnet.RegisterWireType)
		simnet.RegisterMuxWire(realnet.RegisterWireType)
	})
}

// StartCluster boots n nodes on ephemeral loopback ports (UDP for the
// protocols, TCP for the serve API), joins them through node 0, and
// returns once every server is accepting. Callers own Close.
func StartCluster(n int, opts ClusterOptions) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: cluster size %d", n)
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 200 * time.Millisecond
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 250 * time.Millisecond
	}
	if opts.Registries != nil && len(opts.Registries) != n {
		return nil, fmt.Errorf("serve: %d registries for %d nodes", len(opts.Registries), n)
	}
	registerWire()

	c := &Cluster{}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		node, err := realnet.NewNode(ids[i], "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, &ClusterNode{ID: ids[i], Node: node})
	}
	for _, cn := range c.Nodes {
		for _, other := range c.Nodes {
			if other.ID == cn.ID {
				continue
			}
			if err := cn.Node.AddPeer(other.ID, other.Node.Addr()); err != nil {
				return nil, err
			}
		}
	}

	for i, cn := range c.Nodes {
		world := space.NewMap()
		world.AddDomain(space.Domain{ID: "site", Trusted: true})
		var peers []simnet.NodeID
		for _, other := range c.Nodes {
			world.Place(string(other.ID), space.Point{}, "site")
			if other.ID != cn.ID {
				peers = append(peers, other.ID)
			}
		}
		mux := simnet.NewPortMux(cn.Node)
		cn.Members = gossip.New(mux.Port("gossip"), gossip.Config{
			ProbeInterval:    opts.ProbeInterval,
			ProbeTimeout:     opts.ProbeInterval / 2,
			SuspicionTimeout: 4 * opts.ProbeInterval,
		})
		bus := obs.NewBus(cn.Node.Now)
		cn.Members.SetBus(bus)
		// Node 0 bootstraps the cluster and is ready at once; the rest
		// are ready after their first acked probe proves two-way contact.
		var joined atomic.Bool
		joined.Store(i == 0)
		cn.sub = bus.SubscribeFunc(func(ev obs.Event) {
			if ev.Kind == "gossip.probe" {
				joined.Store(true)
			}
		})
		cn.Store = dataflow.NewStore(mux.Port("store"), world, dataflow.StoreConfig{
			Peers: peers, SyncInterval: opts.SyncInterval,
		})
		var reg *obs.Registry
		if opts.Registries != nil {
			reg = opts.Registries[i]
		}
		cn.Server = NewServer(Config{
			Loop:        cn.Node,
			Store:       cn.Store,
			Members:     cn.Members,
			Registry:    reg,
			Ready:       joined.Load,
			Now:         cn.Node.Now,
			MaxInFlight: opts.MaxInFlight,
			MaxBatch:    opts.MaxBatch,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		cn.ln = ln
		cn.URL = "http://" + ln.Addr().String()
	}

	for i, cn := range c.Nodes {
		cn := cn
		var seeds []simnet.NodeID
		if i > 0 {
			seeds = []simnet.NodeID{ids[0]}
		}
		cn.Node.Run()
		cn.Node.Do(func() {
			cn.Members.Start(seeds...)
			cn.Store.Start()
		})
		go func() { _ = cn.Server.Serve(cn.ln) }()
	}
	ok = true
	return c, nil
}

// URLs returns each node's serve base URL, in node order.
func (c *Cluster) URLs() []string {
	urls := make([]string, len(c.Nodes))
	for i, cn := range c.Nodes {
		urls[i] = cn.URL
	}
	return urls
}

// Close drains every server (bounded) and stops every node. Safe on a
// partially-started cluster.
func (c *Cluster) Close() {
	for _, cn := range c.Nodes {
		if cn.Server != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			_ = cn.Server.Shutdown(ctx)
			cancel()
		} else if cn.ln != nil {
			_ = cn.ln.Close()
		}
		if cn.sub != nil {
			cn.sub.Close()
		}
	}
	for _, cn := range c.Nodes {
		if cn.Node != nil {
			cn.Node.Close()
		}
	}
}
