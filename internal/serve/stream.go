package serve

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// StreamEvent is one SSE payload: a data item applied on this node
// (locally written or admitted from a peer) or a membership
// transition.
type StreamEvent struct {
	Type   string `json:"type"` // "data" or "member"
	Key    string `json:"key,omitempty"`
	Value  any    `json:"value,omitempty"`
	From   string `json:"from,omitempty"` // "local" or the peer node id
	Member string `json:"member,omitempty"`
	Status string `json:"status,omitempty"`
}

// subscriber is one stream consumer; its channel is closed only by the
// hub on shutdown.
type subscriber struct {
	ch chan StreamEvent
}

// hub fans events out to subscribers. Publishes never block: a
// subscriber whose buffer is full loses that event (counted), so one
// slow reader cannot stall the event loop the publishers run on.
type hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	buf     int
	maxSubs int
	gauge   *obs.Gauge
	dropped *obs.Counter
}

func newHub(buf, maxSubs int, gauge *obs.Gauge, dropped *obs.Counter) *hub {
	return &hub{
		subs:    make(map[*subscriber]struct{}),
		buf:     buf,
		maxSubs: maxSubs,
		gauge:   gauge,
		dropped: dropped,
	}
}

var (
	errHubClosed = errors.New("draining")
	errHubFull   = errors.New("too many stream subscribers")
)

func (h *hub) subscribe() (*subscriber, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errHubClosed
	}
	if len(h.subs) >= h.maxSubs {
		return nil, errHubFull
	}
	sub := &subscriber{ch: make(chan StreamEvent, h.buf)}
	h.subs[sub] = struct{}{}
	h.gauge.Set(float64(len(h.subs)))
	return sub, nil
}

// unsubscribe detaches a consumer; its channel is left to the garbage
// collector (only close, under the lock, closes channels).
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.gauge.Set(float64(len(h.subs)))
	}
}

// publish delivers ev to every subscriber that has buffer room.
func (h *hub) publish(ev StreamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			h.dropped.Inc()
		}
	}
}

// close ends every subscription: channels are closed so blocked stream
// handlers wake up and return, letting the HTTP server's graceful
// shutdown complete.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	h.gauge.Set(0)
}
