package simnet

// Sharded deterministic mode: conservative parallel discrete-event
// simulation (Chandy–Misra–Bryant style) behind WithShards.
//
// The simulation is split into n shard lanes plus one coordinator lane.
// Every node is assigned to a lane (SetShard); sim-level timers
// (Sim.At/After — environment stepping, fault injection, measurement)
// run on the coordinator lane. Each lane owns a full scheduler — timing
// wheel, event arena, timer arena, traffic stats — so lanes execute
// without sharing any scheduler state.
//
// Correctness rests on three mechanisms:
//
//  1. Logical event keys. In legacy mode events are ordered by
//     (at, seq) with seq a global allocation counter — an order that
//     only exists on one thread. Sharded mode packs seq as
//     rank<<ctrBits | counter, where rank is the scheduling node's
//     AddNode position (coordinator = rank 0) and counter is that
//     node's private event count. The key depends only on per-node
//     history, so it is identical at any shard count, and the total
//     order (at, seq) is reconstructible after the fact — that is what
//     makes journals byte-identical at 1, 2, 4 or 8 shards.
//
//  2. Per-node random streams. The shared rng would be consumed in
//     nondeterministic order across lanes, so every node draws loss/
//     jitter/duplication and application randomness (Endpoint.Rand)
//     from its own splitmix-seeded stream. Draw sequences then depend
//     only on the node's own event history. (This makes sharded runs a
//     different — but internally consistent — universe from legacy
//     runs; the invariance contract is across shard counts, not
//     against the legacy rng.)
//
//  3. Conservative lookahead windows. Cross-lane influence travels
//     only through messages, and every link has a latency floor (the
//     minimum cross-lane link latency; jitter only adds). With
//     lookahead la > 0, all lanes may run [W0, W0+la) in parallel:
//     any message sent inside the window arrives at or after its end.
//     Cross-lane sends are buffered in per-lane outboxes and injected
//     into the destination wheel at the window barrier, in fixed lane
//     order — injection order is irrelevant because the logical key is
//     the total order. Coordinator events are barriers by construction:
//     a window never extends past the next coordinator event, so
//     global mutations (partitions, link changes, crashes, environment
//     stepping) happen single-threaded between windows.
//
// When the lookahead collapses to zero (a cross-lane link override
// with zero latency) or n == 1, the simulation falls back to executing
// all lanes' events serially in global (at, seq) order — the same
// total order the parallel mode realizes, minus the parallelism.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ctrBits is the width of the per-node event counter inside a packed
// logical key; the node rank occupies the bits above it. 2^40 events
// per node and 2^24 nodes are both far beyond any simulated scenario.
const ctrBits = 40

// packKey builds the logical event key for a node's next event.
func packKey(rank uint32, ctr uint64) uint64 {
	return uint64(rank)<<ctrBits | ctr
}

// lane is one independently schedulable slice of the simulation: its
// own clock, timing wheel, event/timer arenas and traffic counters.
// Lane index n (== sharding.n) is the coordinator lane.
type lane struct {
	idx        int
	now        time.Duration
	wheel      *timerWheel
	pages      [][]event
	free       []uint32
	timerArena []Timer
	stats      Stats
	// outbox buffers cross-lane transfers generated during a parallel
	// window; the barrier drains it into destination wheels.
	outbox []xfer
	// curAt/curSeq are the key of the event currently executing — the
	// journal context handed out by Sim.ExecContext.
	curAt  time.Duration
	curSeq uint64
}

// xfer is one cross-lane message in flight between window barriers.
// The key (at, seq) was assigned by the sender at send time, so the
// barrier's injection order cannot affect the delivery order.
type xfer struct {
	at    time.Duration
	seq   uint64
	dst   *node
	from  NodeID
	proto string
	msg   Message
	env   Envelope
}

// laneJob dispatches one lane's window to a worker goroutine.
type laneJob struct {
	ln   *lane
	end  time.Duration
	incl bool
}

// sharding is the Sim extension state for sharded mode.
type sharding struct {
	n     int     // shard lanes; lanes[n] is the coordinator
	lanes []*lane // length n+1

	nextRank uint32 // rank allocator; 0 is reserved for the coordinator
	coordCtr uint64 // coordinator logical-event counter

	la      time.Duration // cached lookahead: min cross-lane link latency
	laDirty bool          // recompute la before the next window

	// inPar is true while shard workers execute a window. Written by
	// the coordinating goroutine before worker dispatch and after the
	// join, so worker reads are ordered by the dispatch channel.
	inPar     bool
	windowEnd time.Duration // current window end, for the outbox guard

	serialized bool // degraded permanently to the serial merged path

	jobs    chan laneJob
	wg      sync.WaitGroup
	started bool
}

// WithShards enables sharded deterministic mode with n shard lanes.
// n == 1 runs the same logical-key scheduler without parallelism — the
// serial reference the invariance gate diffs against. Nodes default to
// lane 0; assign them with SetShard before scheduling anything.
func WithShards(n int) Option {
	return func(s *Sim) {
		if n < 1 {
			panic(fmt.Sprintf("simnet: WithShards(%d): need at least one shard", n))
		}
		sh := &sharding{n: n, laDirty: true}
		sh.lanes = make([]*lane, n+1)
		for i := range sh.lanes {
			sh.lanes[i] = &lane{idx: i, wheel: newTimerWheel()}
		}
		s.shd = sh
	}
}

// ShardCount returns the number of shard lanes, 0 in legacy mode.
func (s *Sim) ShardCount() int {
	if s.shd == nil {
		return 0
	}
	return s.shd.n
}

// Lookahead returns the conservative window width currently in effect
// (the minimum cross-lane link latency), 0 in legacy mode.
func (s *Sim) Lookahead() time.Duration {
	sh := s.shd
	if sh == nil {
		return 0
	}
	if sh.laDirty {
		sh.la = s.computeLookahead()
		sh.laDirty = false
	}
	return sh.la
}

// SetShard assigns a node to a shard lane. It must be called during
// topology construction, before anything is scheduled on or sent to
// the node — moving a node with queued events would strand them on the
// old lane. In legacy mode it is a no-op, so scenario builders call it
// unconditionally.
func (s *Sim) SetShard(id NodeID, shard int) {
	sh := s.shd
	if sh == nil {
		return
	}
	if shard < 0 || shard >= sh.n {
		panic(fmt.Sprintf("simnet: SetShard(%q, %d): shard out of range [0,%d)", id, shard, sh.n))
	}
	n, ok := s.nodes[id]
	if !ok {
		panic(fmt.Sprintf("simnet: SetShard(%q): unknown node", id))
	}
	if n.ctr != 0 {
		panic(fmt.Sprintf("simnet: SetShard(%q) after the node scheduled events", id))
	}
	n.ln = sh.lanes[shard]
	sh.laDirty = true
}

// Shard returns the endpoint's lane index (0 in legacy mode).
func (e *Endpoint) Shard() int {
	if e.node.ln == nil {
		return 0
	}
	return e.node.ln.idx
}

// ExecContext reports the lane index and logical key of the event
// currently executing on behalf of ep — the node's lane during a
// parallel window, the coordinator lane during barrier execution (and
// for ep == nil). ok is false in legacy mode. Callers use it to route
// side records (journals, audit engines) to per-lane storage that is
// merged by key after the run.
func (s *Sim) ExecContext(ep *Endpoint) (laneIdx int, seq uint64, ok bool) {
	sh := s.shd
	if sh == nil {
		return 0, 0, false
	}
	ln := sh.lanes[sh.n]
	if sh.inPar && ep != nil {
		ln = ep.node.ln
	}
	return ln.idx, ln.curSeq, true
}

// mixSeed derives a node's private stream seed from the simulation
// seed and the node's rank (splitmix64 finalizer).
func mixSeed(seed int64, rank uint32) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(rank+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shardNode initializes the sharded-mode fields of a freshly added
// node: its rank (and thereby its key space and rng stream) and its
// default lane.
func (s *Sim) shardNode(n *node) {
	sh := s.shd
	sh.nextRank++
	n.rank = sh.nextRank
	n.rng = rand.New(rand.NewSource(mixSeed(s.seed, n.rank)))
	n.ln = sh.lanes[0]
	sh.laDirty = true
}

// --- per-lane scheduler plumbing (mirrors the Sim methods) ---

func (l *lane) eventAt(idx uint32) *event {
	return &l.pages[idx>>eventPageShift][idx&eventPageMask]
}

func (l *lane) alloc() (uint32, *event) {
	if n := len(l.free); n > 0 {
		idx := l.free[n-1]
		l.free = l.free[:n-1]
		return idx, l.eventAt(idx)
	}
	page := make([]event, eventPageSize)
	base := uint32(len(l.pages)) << eventPageShift
	l.pages = append(l.pages, page)
	for i := eventPageSize - 1; i >= 1; i-- {
		l.free = append(l.free, base+uint32(i))
	}
	return base, &page[0]
}

func (l *lane) recycle(idx uint32, ev *event) {
	ev.gen++
	ev.dead = false
	ev.fn = nil
	ev.argFn = nil
	ev.arg = 0
	ev.owner = nil
	ev.dst = nil
	ev.from = ""
	ev.proto = ""
	ev.msg = nil
	ev.env = Envelope{}
	ev.tick = nil
	l.free = append(l.free, idx)
}

func (l *lane) newTimer(ev *event) *Timer {
	if len(l.timerArena) == 0 {
		l.timerArena = make([]Timer, eventArenaSize)
	}
	t := &l.timerArena[0]
	l.timerArena = l.timerArena[1:]
	t.ev = ev
	t.gen = ev.gen
	return t
}

// peekLive returns the lane's next live entry, recycling cancelled
// entries it skips over.
func (l *lane) peekLive() (heapEntry, bool) {
	for {
		entry, ok := l.wheel.peek()
		if !ok {
			return heapEntry{}, false
		}
		if ev := l.eventAt(entry.idx); ev.dead {
			l.wheel.pop()
			l.recycle(entry.idx, ev)
			continue
		}
		return entry, true
	}
}

// pending counts the lane's live entries.
func (l *lane) pending(scratch []heapEntry) (int, []heapEntry) {
	scratch = l.wheel.entries(scratch[:0])
	n := 0
	for _, entry := range scratch {
		if !l.eventAt(entry.idx).dead {
			n++
		}
	}
	return n, scratch
}

// shardSchedule allocates and queues an event at absolute time t on
// n's lane (the coordinator lane when n is nil), keyed by the
// scheduler's next logical sequence.
func (s *Sim) shardSchedule(n *node, t time.Duration) (*event, *lane) {
	sh := s.shd
	var ln *lane
	var seq uint64
	if n == nil {
		if sh.inPar {
			panic("simnet: coordinator scheduling from inside a shard window")
		}
		ln = sh.lanes[sh.n]
		sh.coordCtr++
		seq = sh.coordCtr // rank 0: sorts before node events at equal times
	} else {
		ln = n.ln
		n.ctr++
		seq = packKey(n.rank, n.ctr)
	}
	if t < ln.now {
		t = ln.now
	}
	idx, ev := ln.alloc()
	ln.wheel.push(t, seq, idx)
	return ev, ln
}

// shardSend is the sharded counterpart of sendProto/sendProtoEnv: all
// random draws come from the sender's private stream and the delivery
// key is assigned by the sender, so the outcome depends only on the
// sender's own history. Same-lane deliveries are pushed directly;
// cross-lane deliveries are buffered in the sender lane's outbox
// during parallel windows and pushed directly between windows.
func (s *Sim) shardSend(src *node, proto string, to NodeID, msg Message, env Envelope) bool {
	if src.down {
		return false
	}
	ln := src.ln
	ln.stats.Sent++
	dst, ok := s.nodes[to]
	if !ok || !s.reachable(src.id, to) {
		ln.stats.Dropped++
		return false
	}
	latency, loss := s.linkParams(src.id, to)
	rng := src.rng
	if loss > 0 && rng.Float64() < loss {
		ln.stats.Dropped++
		return false
	}
	if latency > 0 {
		latency += time.Duration(rng.Int63n(int64(latency)/10 + 1))
	}
	deliveries := 1
	if s.defDup > 0 && rng.Float64() < s.defDup {
		deliveries = 2
	}
	for i := 0; i < deliveries; i++ {
		at := ln.now + latency + time.Duration(i)*latency
		src.ctr++
		seq := packKey(src.rank, src.ctr)
		if s.shd.inPar && dst.ln != ln {
			if at < s.shd.windowEnd {
				panic(fmt.Sprintf("simnet: lookahead violated: %s→%s arrives %v inside window ending %v",
					src.id, to, at, s.shd.windowEnd))
			}
			ln.outbox = append(ln.outbox, xfer{at: at, seq: seq, dst: dst, from: src.id, proto: proto, msg: msg, env: env})
			continue
		}
		idx, ev := dst.ln.alloc()
		dst.ln.wheel.push(at, seq, idx)
		ev.dst = dst
		ev.from = src.id
		ev.proto = proto
		ev.msg = msg
		ev.env = env
	}
	return true
}

// shardDeliver executes a delivery on the destination's lane,
// accounting traffic in that lane's counters. The logic mirrors
// deliver/deliverEnv; taps must be safe for concurrent invocation when
// combined with shards (core does not tap).
func (s *Sim) shardDeliver(ln *lane, ev *event) {
	dst := ev.dst
	if dst.down || !s.reachable(ev.from, dst.id) {
		ln.stats.Dropped++
		return
	}
	ln.stats.Delivered++
	if ev.env.Kind != 0 {
		ln.stats.Bytes += int(ev.env.Bytes) + protoOverhead
		if len(s.taps) > 0 {
			var m Message = ev.env
			for _, tap := range s.taps {
				tap(ev.from, dst.id, m)
			}
		}
		for i := range dst.protoHandlers {
			if e := &dst.protoHandlers[i]; e.proto == ev.proto {
				if e.eh != nil {
					e.eh(ev.from, &ev.env)
				} else if e.h != nil {
					e.h(ev.from, ev.env)
				}
				return
			}
		}
		return
	}
	size := messageSize(ev.msg)
	if ev.proto != "" {
		size += protoOverhead
	}
	ln.stats.Bytes += size
	for _, tap := range s.taps {
		tap(ev.from, dst.id, ev.msg)
	}
	if ev.proto != "" {
		if h := dst.protoHandler(ev.proto); h != nil {
			h(ev.from, ev.msg)
		}
		return
	}
	if dst.handler != nil {
		dst.handler(ev.from, ev.msg)
	}
}

// shardRunTick fires a ticker on its lane and re-arms the same storage
// under the owner's next logical key.
func (s *Sim) shardRunTick(ln *lane, idx uint32, ev *event) {
	t := ev.tick
	if t.stopped {
		ln.recycle(idx, ev)
		return
	}
	if !t.owner.down {
		t.fn()
	}
	if t.stopped {
		ln.recycle(idx, ev)
		return
	}
	n := t.owner
	n.ctr++
	ln.wheel.push(ln.now+t.interval, packKey(n.rank, n.ctr), idx)
}

// laneExec pops and executes one event (the lane's current head).
func (s *Sim) laneExec(ln *lane, entry heapEntry) {
	ln.wheel.pop()
	ev := ln.eventAt(entry.idx)
	ln.now = entry.at
	ln.curAt = entry.at
	ln.curSeq = entry.seq
	switch {
	case ev.dst != nil:
		s.shardDeliver(ln, ev)
		ln.recycle(entry.idx, ev)
	case ev.tick != nil:
		s.shardRunTick(ln, entry.idx, ev)
	default:
		fn, argFn, arg, owner := ev.fn, ev.argFn, ev.arg, ev.owner
		ln.recycle(entry.idx, ev)
		if owner == nil || !owner.down {
			if fn != nil {
				fn()
			} else if argFn != nil {
				argFn(arg)
			}
		}
	}
}

// laneRun executes ln's events with at < end (at <= end when incl) in
// key order, leaving the lane clock at end.
func (s *Sim) laneRun(ln *lane, end time.Duration, incl bool) {
	for {
		entry, ok := ln.peekLive()
		if !ok || entry.at > end || (entry.at == end && !incl) {
			break
		}
		s.laneExec(ln, entry)
	}
	ln.now = end
}

// syncLanes advances every lane clock that is behind t to t.
func (s *Sim) syncLanes(t time.Duration) {
	for _, ln := range s.shd.lanes {
		if ln.now < t {
			ln.now = t
		}
	}
}

// computeLookahead returns the smallest latency of any cross-lane
// link: the conservative window width. Only link overrides can lower
// it below the default latency; partitions and cuts drop traffic
// entirely and never make it faster.
func (s *Sim) computeLookahead() time.Duration {
	la := s.defLat
	for k, ov := range s.net.links {
		if ov.latency >= la {
			continue
		}
		from, to := s.nodes[k.from], s.nodes[k.to]
		if from == nil || to == nil || from.ln == to.ln {
			continue
		}
		la = ov.latency
	}
	return la
}

// drainOutboxes injects buffered cross-lane transfers into their
// destination wheels. Lane iteration order is fixed but irrelevant:
// delivery order is governed by the sender-assigned keys.
func (s *Sim) drainOutboxes() {
	for _, ln := range s.shd.lanes[:s.shd.n] {
		for i := range ln.outbox {
			x := &ln.outbox[i]
			idx, ev := x.dst.ln.alloc()
			x.dst.ln.wheel.push(x.at, x.seq, idx)
			ev.dst = x.dst
			ev.from = x.from
			ev.proto = x.proto
			ev.msg = x.msg
			ev.env = x.env
			*x = xfer{} // drop the payload reference
		}
		ln.outbox = ln.outbox[:0]
	}
}

// startWorkers spins up the persistent window executors (one per shard
// lane beyond the first; the coordinating goroutine runs one lane
// inline).
func (sh *sharding) startWorkers(s *Sim) {
	if sh.started || sh.n < 2 {
		return
	}
	// Workers range over a local copy of the channel: reading the
	// sh.jobs field from the worker goroutines would race with
	// stopWorkers clearing it.
	jobs := make(chan laneJob)
	sh.jobs = jobs
	for i := 0; i < sh.n-1; i++ {
		go func() {
			for j := range jobs {
				s.laneRun(j.ln, j.end, j.incl)
				sh.wg.Done()
			}
		}()
	}
	sh.started = true
}

func (sh *sharding) stopWorkers() {
	if !sh.started {
		return
	}
	close(sh.jobs)
	sh.jobs = nil
	sh.started = false
}

// runShards executes one parallel window across all lanes that have
// work before end. With one active lane the window runs inline.
func (s *Sim) runShards(end time.Duration, incl bool) {
	sh := s.shd
	var active []*lane
	for _, ln := range sh.lanes[:sh.n] {
		if entry, ok := ln.peekLive(); ok && (entry.at < end || (incl && entry.at == end)) {
			active = append(active, ln)
		}
	}
	if len(active) == 0 {
		return
	}
	sh.windowEnd = end
	if len(active) == 1 {
		sh.inPar = true
		s.laneRun(active[0], end, incl)
		sh.inPar = false
		return
	}
	sh.inPar = true
	sh.wg.Add(len(active) - 1)
	for _, ln := range active[1:] {
		sh.jobs <- laneJob{ln: ln, end: end, incl: incl}
	}
	s.laneRun(active[0], end, incl)
	sh.wg.Wait()
	sh.inPar = false
}

// minLaneAt returns the lane holding the globally minimal live event
// no later than horizon, by (at, seq).
func (s *Sim) minLaneAt(horizon time.Duration) (*lane, heapEntry, bool) {
	var best *lane
	var bestE heapEntry
	for _, ln := range s.shd.lanes {
		entry, ok := ln.peekLive()
		if !ok || entry.at > horizon {
			continue
		}
		if best == nil || entry.at < bestE.at || (entry.at == bestE.at && entry.seq < bestE.seq) {
			best, bestE = ln, entry
		}
	}
	return best, bestE, best != nil
}

// shardRunSerial executes all lanes' events up to horizon in global
// (at, seq) order on one goroutine — the fallback when the lookahead
// is zero and the reference semantics the parallel windows realize.
func (s *Sim) shardRunSerial(horizon time.Duration) {
	coord := s.shd.lanes[s.shd.n]
	for {
		ln, entry, ok := s.minLaneAt(horizon)
		if !ok {
			break
		}
		if ln == coord {
			// Coordinator events mutate global state and their callbacks
			// send from arbitrary nodes' endpoints; park every lane clock
			// at the event time first, exactly as the windowed path does
			// before its coordinator drains — otherwise an OnUp send is
			// stamped with the node lane's stale clock.
			s.syncLanes(entry.at)
		}
		s.laneExec(ln, entry)
	}
	s.syncLanes(horizon)
}

// shardStep executes the single globally next event, in (at, seq)
// order — Step's sharded-mode semantics.
func (s *Sim) shardStep() bool {
	ln, entry, ok := s.minLaneAt(1<<62 - 1)
	if !ok {
		return false
	}
	if ln == s.shd.lanes[s.shd.n] {
		s.syncLanes(entry.at) // see shardRunSerial
	}
	s.laneExec(ln, entry)
	return true
}

// shardRunUntil is RunUntil in sharded mode: alternate single-threaded
// coordinator drains (global mutations) with parallel lane windows
// bounded by the lookahead and the next coordinator event.
func (s *Sim) shardRunUntil(horizon time.Duration) {
	sh := s.shd
	if sh.serialized {
		s.shardRunSerial(horizon)
		return
	}
	coord := sh.lanes[sh.n]
	sh.startWorkers(s)
	defer sh.stopWorkers()
	for {
		if sh.laDirty {
			sh.la = s.computeLookahead()
			sh.laDirty = false
		}
		if sh.n == 1 || sh.la <= 0 {
			// Zero lookahead cannot window; fall back for good. (A later
			// link restore could re-enable windows, but a scenario that
			// zeroes a cross-lane link has chosen correctness over speed.)
			sh.serialized = sh.la <= 0
			s.shardRunSerial(horizon)
			return
		}
		coordEntry, coordOK := coord.peekLive()
		if coordOK && coordEntry.at > horizon {
			coordOK = false
		}
		minNext := time.Duration(-1)
		for _, ln := range sh.lanes[:sh.n] {
			if entry, ok := ln.peekLive(); ok && entry.at <= horizon {
				if minNext < 0 || entry.at < minNext {
					minNext = entry.at
				}
			}
		}
		if !coordOK && minNext < 0 {
			break
		}
		if coordOK && (minNext < 0 || coordEntry.at <= minNext) {
			// Coordinator first: rank 0 sorts lowest at equal times, and
			// its events may mutate global state, so it runs alone with
			// every lane parked at its timestamp.
			s.syncLanes(coordEntry.at)
			s.laneRun(coord, coordEntry.at, true)
			continue
		}
		// A parallel window: no coordinator event before minNext, and
		// nothing sent after minNext can arrive before minNext+la.
		end, incl := minNext+sh.la, false
		if coordOK && coordEntry.at < end {
			end = coordEntry.at
		}
		if end > horizon {
			// Final window: events exactly at the horizon execute, to
			// match legacy RunUntil semantics. Safe: their sends arrive
			// strictly later and stay queued past the horizon.
			end, incl = horizon, true
		}
		s.runShards(end, incl)
		s.syncLanes(end)
		s.drainOutboxes()
	}
	s.syncLanes(horizon)
}
