package simnet

import (
	"math/rand"
	"time"
)

// Port is the node-side network surface protocol implementations are
// written against. *Endpoint implements Port directly (single-protocol
// nodes); *Mux fans one endpoint out to several named Ports so that a
// node can run gossip, consensus, data sync and control planes
// side-by-side — which is exactly what an ML4 edge node does.
type Port interface {
	// ID returns the node identifier.
	ID() NodeID
	// Now returns the current virtual time.
	Now() time.Duration
	// Rand returns the deterministic random source.
	Rand() *rand.Rand
	// Up reports whether the node is currently up.
	Up() bool
	// Send transmits msg to the destination node.
	Send(to NodeID, msg Message) bool
	// OnMessage installs the message handler.
	OnMessage(h Handler)
	// After schedules fn unless the node is down when it fires.
	After(d time.Duration, fn func()) *Timer
	// Every runs fn periodically, skipping ticks while down.
	Every(interval time.Duration, fn func()) *Ticker
	// OnUp registers a recovery callback.
	OnUp(fn func())
	// OnDown registers a crash callback.
	OnDown(fn func())
}

var _ Port = (*Endpoint)(nil)

// protoOverhead is the framing cost in bytes attributed to tagging a
// message with its protocol name, whether it travels as an envelope
// (generic Ports) or as a native event field (simulated endpoints).
const protoOverhead = 4

// envelope wraps a protocol message with its protocol name for routing
// at the receiving mux. Simulated endpoints bypass it (see
// Sim.sendProto); it remains the wire format for generic Ports such as
// realnet adapters.
type envelope struct {
	Proto string
	Msg   Message
}

// Size attributes the inner message size plus a small header.
func (e envelope) Size() int { return protoOverhead + messageSize(e.Msg) }

// Mux multiplexes one port among multiple named protocols. Messages
// sent through a protocol port are wrapped in an envelope; the mux
// routes arriving envelopes to the port registered under that name.
// Construct with NewMux (simulated endpoints) or NewPortMux (any Port,
// e.g. a real-network node); either takes over the message handler.
//
// Over a simulated *Endpoint the mux short-circuits the envelope
// entirely: sends go through Sim.sendProto (no per-message boxing) and
// handlers register directly on the simulator node.
type Mux struct {
	ep          Port
	sim         *Endpoint // non-nil when ep is a simulated endpoint
	handlers    map[string]Handler
	envHandlers map[string]EnvelopeHandler
}

// NewMux creates a mux over a simulated endpoint.
func NewMux(ep *Endpoint) *Mux { return NewPortMux(ep) }

// NewPortMux creates a mux over any Port implementation.
func NewPortMux(p Port) *Mux {
	m := &Mux{ep: p, handlers: make(map[string]Handler)}
	m.sim, _ = p.(*Endpoint)
	p.OnMessage(m.dispatch)
	return m
}

// RegisterMuxWire registers the mux's envelope type with a wire codec
// (e.g. realnet's gob transport). Required when multiplexed protocols
// run over a real network.
func RegisterMuxWire(register func(any)) {
	register(envelope{})
}

func (m *Mux) dispatch(from NodeID, msg Message) {
	env, ok := msg.(envelope)
	if !ok {
		return // non-multiplexed traffic is not for this node's stack
	}
	// Envelopes sent over a generic Port arrive boxed inside the wire
	// envelope; route them to the protocol's envelope handler.
	if e, ok := env.Msg.(Envelope); ok {
		if eh, ok := m.envHandlers[env.Proto]; ok && eh != nil {
			eh(from, &e)
			return
		}
	}
	if h, ok := m.handlers[env.Proto]; ok && h != nil {
		h(from, env.Msg)
	}
}

// Port returns the named protocol port, creating it on first use. All
// traffic sent through it is tagged with the protocol name and only
// messages tagged with the same name are delivered to its handler.
func (m *Mux) Port(proto string) Port {
	return &protoPort{mux: m, proto: proto}
}

// protoPort is one protocol's view of the shared endpoint.
type protoPort struct {
	mux   *Mux
	proto string
}

var (
	_ Port            = (*protoPort)(nil)
	_ EnvelopeCarrier = (*protoPort)(nil)
	_ ArgScheduler    = (*protoPort)(nil)
)

func (p *protoPort) ID() NodeID         { return p.mux.ep.ID() }
func (p *protoPort) Now() time.Duration { return p.mux.ep.Now() }
func (p *protoPort) Rand() *rand.Rand   { return p.mux.ep.Rand() }
func (p *protoPort) Up() bool           { return p.mux.ep.Up() }
func (p *protoPort) OnUp(fn func())     { p.mux.ep.OnUp(fn) }
func (p *protoPort) OnDown(fn func())   { p.mux.ep.OnDown(fn) }

func (p *protoPort) OnMessage(h Handler) {
	if ep := p.mux.sim; ep != nil {
		ep.node.setProtoHandler(p.proto, h)
		return
	}
	p.mux.handlers[p.proto] = h
}

func (p *protoPort) Send(to NodeID, msg Message) bool {
	if ep := p.mux.sim; ep != nil {
		return ep.sim.sendProto(ep.node, p.proto, to, msg)
	}
	return p.mux.ep.Send(to, envelope{Proto: p.proto, Msg: msg})
}

// SendEnvelope transmits env without boxing: over a simulated endpoint
// the payload travels inline in the event arena. Generic ports fall
// back to the boxed wire envelope, preserving semantics (and byte
// accounting, via Envelope.Size) at the cost of the allocation.
func (p *protoPort) SendEnvelope(to NodeID, env Envelope) bool {
	if ep := p.mux.sim; ep != nil {
		return ep.sim.sendProtoEnv(ep.node, p.proto, to, env)
	}
	return p.mux.ep.Send(to, envelope{Proto: p.proto, Msg: env})
}

// OnEnvelope installs the envelope handler for this protocol.
func (p *protoPort) OnEnvelope(h EnvelopeHandler) {
	if ep := p.mux.sim; ep != nil {
		ep.node.setProtoEnvHandler(p.proto, h)
		return
	}
	if p.mux.envHandlers == nil {
		p.mux.envHandlers = make(map[string]EnvelopeHandler)
	}
	p.mux.envHandlers[p.proto] = h
}

func (p *protoPort) After(d time.Duration, fn func()) *Timer {
	return p.mux.ep.After(d, fn)
}

// AfterArg delegates to the underlying port's ArgScheduler, falling
// back to a capturing closure over generic ports.
func (p *protoPort) AfterArg(d time.Duration, fn func(uint64), arg uint64) *Timer {
	if as, ok := p.mux.ep.(ArgScheduler); ok {
		return as.AfterArg(d, fn, arg)
	}
	return p.mux.ep.After(d, func() { fn(arg) })
}

func (p *protoPort) Every(interval time.Duration, fn func()) *Ticker {
	return p.mux.ep.Every(interval, fn)
}
