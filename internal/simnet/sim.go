// Package simnet provides a deterministic discrete-event network simulator.
//
// All higher-level substrates (gossip membership, consensus, MAPE loops,
// data-flow sessions) run as event-driven state machines on a single
// virtual clock. Determinism comes from a seeded random source and a
// strictly ordered event queue: two runs with the same seed and the same
// scenario produce identical traces.
//
// The simulator models nodes connected by links with configurable latency
// and loss, supports network partitions, and exposes per-node endpoints
// whose timers are automatically silenced while the node is down. This is
// the substitute for the heterogeneous physical IoT infrastructure of the
// paper: disruptions (crashes, partitions, latency spikes) are injected
// reproducibly instead of occurring in the wild.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is the read/schedule surface of the simulator that protocol code
// is written against. Production code must never call time.Now; it asks
// its Clock instead so that simulation time is the only time.
type Clock interface {
	// Now returns the current virtual time, measured from the start of
	// the simulation.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer
	// that may be stopped before it fires.
	After(d time.Duration, fn func()) *Timer
	// Rand returns the simulation's deterministic random source.
	Rand() *rand.Rand
}

// event is a scheduled callback in the simulator's queue.
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker for identical timestamps: FIFO order
	fn    func()
	index int // heap index
	dead  bool
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	sim      *Sim
	ev       *event
	external func() bool
}

// NewExternalTimer wraps an external cancel function in a Timer so
// that alternative Port implementations (e.g. a real-network adapter)
// can satisfy the Port interface. stop must report whether it
// prevented the callback from firing.
func NewExternalTimer(stop func() bool) *Timer {
	return &Timer{external: stop}
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.external != nil {
		return t.external()
	}
	if t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Sim is a deterministic discrete-event simulator. The zero value is not
// usable; construct with New.
type Sim struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	nodes   map[NodeID]*node
	net     netState
	stats   Stats
	taps    []MessageTap
	defLat  time.Duration
	defLoss float64
	defDup  float64
}

// Option configures a Sim at construction time.
type Option func(*Sim)

// WithSeed sets the seed of the simulation's random source. The default
// seed is 1.
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultLatency sets the one-way delivery latency used for links that
// have no explicit override. The default is 5ms.
func WithDefaultLatency(d time.Duration) Option {
	return func(s *Sim) { s.defLat = d }
}

// WithDefaultLoss sets the message loss probability in [0,1] for links
// without an explicit override. The default is 0.
func WithDefaultLoss(p float64) Option {
	return func(s *Sim) { s.defLoss = p }
}

// WithDuplicateProb sets the probability in [0,1] that a delivered
// message is delivered a second time shortly after (datagram
// duplication). Protocols must be idempotent to survive it; the CRDT
// data plane is, by construction. The default is 0.
func WithDuplicateProb(p float64) Option {
	return func(s *Sim) { s.defDup = p }
}

// New constructs a simulator.
func New(opts ...Option) *Sim {
	s := &Sim{
		rng:    rand.New(rand.NewSource(1)),
		nodes:  make(map[NodeID]*node),
		defLat: 5 * time.Millisecond,
	}
	s.net.init()
	for _, opt := range opts {
		opt(s)
	}
	return s
}

var _ Clock = (*Sim)(nil)

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to now to keep the clock
// monotonic.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return &Timer{sim: s, ev: ev}
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Step executes the next pending event. It reports whether an event was
// executed.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the
// next event is later than t. The clock is left at min(t, last event time)
// advanced to exactly t if the horizon is reached.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run executes all pending events until the queue is exhausted. Periodic
// tickers re-arm themselves, so Run on a simulation with tickers will not
// terminate; use RunUntil with a horizon instead.
func (s *Sim) Run() {
	for s.Step() {
	}
}

func (s *Sim) peek() *event {
	for s.queue.Len() > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// Pending returns the number of live scheduled events.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// String summarizes the simulator state, mainly for debugging.
func (s *Sim) String() string {
	return fmt.Sprintf("simnet: t=%v nodes=%d pending=%d", s.now, len(s.nodes), s.Pending())
}
