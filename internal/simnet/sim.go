// Package simnet provides a deterministic discrete-event network simulator.
//
// All higher-level substrates (gossip membership, consensus, MAPE loops,
// data-flow sessions) run as event-driven state machines on a single
// virtual clock. Determinism comes from a seeded random source and a
// strictly ordered event queue: two runs with the same seed and the same
// scenario produce identical traces.
//
// The simulator models nodes connected by links with configurable latency
// and loss, supports network partitions, and exposes per-node endpoints
// whose timers are automatically silenced while the node is down. This is
// the substitute for the heterogeneous physical IoT infrastructure of the
// paper: disruptions (crashes, partitions, latency spikes) are injected
// reproducibly instead of occurring in the wild.
//
// The scheduler is built for throughput: events are ordered by a
// hierarchical timing wheel (see wheel.go; a 4-ary min-heap reference
// implementation survives in heap.go behind WithHeapScheduler), are
// allocated from a per-simulator arena and recycled after firing, and
// the highest-volume event kinds — message deliveries and periodic
// ticks — are encoded as struct fields instead of closures so that
// steady-state simulation does not allocate per event. A generation
// counter on each event keeps recycled storage safe against stale
// Timer handles.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// Clock is the read/schedule surface of the simulator that protocol code
// is written against. Production code must never call time.Now; it asks
// its Clock instead so that simulation time is the only time.
type Clock interface {
	// Now returns the current virtual time, measured from the start of
	// the simulation.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer
	// that may be stopped before it fires.
	After(d time.Duration, fn func()) *Timer
	// Rand returns the simulation's deterministic random source.
	Rand() *rand.Rand
}

// event is a scheduled entry in the simulator's queue. Exactly one of
// three payloads is set: fn (a plain callback, optionally gated on
// owner being up), dst (a message delivery, executed without any
// closure), or tick (a periodic ticker that re-arms its own event).
// The ordering key lives in the queue's heapEntry, not here. Events
// are pooled: gen increments on every recycle so stale Timer handles
// cannot cancel the storage's next occupant.
type event struct {
	gen  uint32 // incremented on recycle; guards pooled reuse
	dead bool

	// Callback payload. argFn carries its uint64 argument inline in
	// arg, so a caller that binds argFn once (a method value) schedules
	// per-occurrence timers without allocating a capturing closure.
	fn    func()
	argFn func(uint64)
	arg   uint64
	owner *node // when set, fn/argFn is skipped while the owner is down

	// Delivery payload (dst != nil): msg from `from` to node dst. When
	// env.Kind is nonzero the payload is the inline envelope instead of
	// the boxed msg — the allocation-free fast path (see env.go).
	dst   *node
	from  NodeID
	proto string // non-empty for multiplexed protocol traffic
	msg   Message
	env   Envelope

	// Ticker payload.
	tick *Ticker
}

// eventArenaSize is the number of Timers allocated at once when the
// timer arena runs dry. Chunked allocation keeps pooled objects close
// together in memory and divides the allocator traffic by the chunk
// size.
const eventArenaSize = 64

// Event storage is paged: events live in fixed-size pages and are
// addressed by a uint32 index (page number in the high bits, offset in
// the low). The queue stores that index instead of a pointer, which
// keeps heapEntry pointer-free — sift operations then move plain
// integers and never trip the GC write barrier. Pages are never
// reallocated, so *event pointers held by Timer/Ticker handles stay
// valid for the lifetime of the Sim.
const (
	eventPageShift = 9 // 512 events per page
	eventPageSize  = 1 << eventPageShift
	eventPageMask  = eventPageSize - 1
)

// Timer is a handle to a scheduled callback.
type Timer struct {
	ev       *event
	gen      uint32
	external func() bool
}

// NewExternalTimer wraps an external cancel function in a Timer so
// that alternative Port implementations (e.g. a real-network adapter)
// can satisfy the Port interface. stop must report whether it
// prevented the callback from firing.
func NewExternalTimer(stop func() bool) *Timer {
	return &Timer{external: stop}
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// call prevented the timer from firing. Stop on a timer whose event has
// already fired (and whose storage may have been recycled for a newer
// event) is a safe no-op: the generation check tells the handle apart
// from the storage's current occupant.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.external != nil {
		return t.external()
	}
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	t.ev.argFn = nil
	return true
}

// Sim is a deterministic discrete-event simulator. The zero value is not
// usable; construct with New.
type Sim struct {
	now        time.Duration
	seq        uint64
	wheel      *timerWheel // default scheduler; nil when the heap is selected
	queue      eventHeap   // reference scheduler (WithHeapScheduler)
	pages      [][]event
	free       []uint32 // free event indices, used as a stack
	timerArena []Timer
	rng        *rand.Rand
	seed       int64 // the WithSeed value; derives per-node streams in sharded mode
	nodes      map[NodeID]*node
	net        netState
	stats      Stats
	taps       []MessageTap
	defLat     time.Duration
	defLoss    float64
	defDup     float64
	shd        *sharding // non-nil in sharded deterministic mode (see shard.go)
}

// Option configures a Sim at construction time.
type Option func(*Sim)

// WithSeed sets the seed of the simulation's random source. The default
// seed is 1.
func WithSeed(seed int64) Option {
	return func(s *Sim) {
		s.seed = seed
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// WithDefaultLatency sets the one-way delivery latency used for links that
// have no explicit override. The default is 5ms.
func WithDefaultLatency(d time.Duration) Option {
	return func(s *Sim) { s.defLat = d }
}

// WithDefaultLoss sets the message loss probability in [0,1] for links
// without an explicit override. The default is 0.
func WithDefaultLoss(p float64) Option {
	return func(s *Sim) { s.defLoss = p }
}

// WithDuplicateProb sets the probability in [0,1] that a delivered
// message is delivered a second time shortly after (datagram
// duplication). Protocols must be idempotent to survive it; the CRDT
// data plane is, by construction. The default is 0.
func WithDuplicateProb(p float64) Option {
	return func(s *Sim) { s.defDup = p }
}

// WithHeapScheduler selects the 4-ary min-heap event queue instead of
// the default hierarchical timing wheel. The two schedulers pop events
// in the identical (at, seq) total order — the heap is retained as the
// reference implementation for differential and property tests, and as
// an escape hatch.
func WithHeapScheduler() Option {
	return func(s *Sim) {
		s.wheel = nil
		s.queue.e = make([]heapEntry, 0, 256)
	}
}

// New constructs a simulator.
func New(opts ...Option) *Sim {
	s := &Sim{
		rng:    rand.New(rand.NewSource(1)),
		seed:   1,
		nodes:  make(map[NodeID]*node),
		defLat: 5 * time.Millisecond,
	}
	s.wheel = newTimerWheel()
	s.net.init()
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// qpush queues an entry on whichever scheduler is active.
func (s *Sim) qpush(at time.Duration, seq uint64, idx uint32) {
	if s.wheel != nil {
		s.wheel.push(at, seq, idx)
	} else {
		s.queue.push(at, seq, idx)
	}
}

// qpop removes and returns the minimum entry; qlen must be > 0.
func (s *Sim) qpop() heapEntry {
	if s.wheel != nil {
		if s.wheel.head == len(s.wheel.run) {
			s.wheel.advance()
		}
		return s.wheel.pop()
	}
	return s.queue.pop()
}

// qpeek returns the minimum entry without removing it.
func (s *Sim) qpeek() (heapEntry, bool) {
	if s.wheel != nil {
		return s.wheel.peek()
	}
	return s.queue.peek()
}

// qlen is the number of queued (live or cancelled) entries.
func (s *Sim) qlen() int {
	if s.wheel != nil {
		return s.wheel.len()
	}
	return s.queue.len()
}

var _ Clock = (*Sim)(nil)

// Now returns the current virtual time. In sharded mode this is the
// coordinator lane's clock; node code should prefer Endpoint.Now,
// which reads the node's own lane.
func (s *Sim) Now() time.Duration {
	if sh := s.shd; sh != nil {
		return sh.lanes[sh.n].now
	}
	return s.now
}

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// eventAt resolves an arena index to its event.
func (s *Sim) eventAt(idx uint32) *event {
	return &s.pages[idx>>eventPageShift][idx&eventPageMask]
}

// alloc takes an event index from the free list, appending a fresh
// page when the list is empty.
func (s *Sim) alloc() (uint32, *event) {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx, s.eventAt(idx)
	}
	page := make([]event, eventPageSize)
	base := uint32(len(s.pages)) << eventPageShift
	s.pages = append(s.pages, page)
	for i := eventPageSize - 1; i >= 1; i-- {
		s.free = append(s.free, base+uint32(i))
	}
	return base, &page[0]
}

// recycle returns a fired or cancelled event to the free list, bumping
// its generation so outstanding Timer handles become inert.
func (s *Sim) recycle(idx uint32, ev *event) {
	ev.gen++
	ev.dead = false
	ev.fn = nil
	ev.argFn = nil
	ev.arg = 0
	ev.owner = nil
	ev.dst = nil
	ev.from = ""
	ev.proto = ""
	ev.msg = nil
	ev.env = Envelope{}
	ev.tick = nil
	s.free = append(s.free, idx)
}

// newTimer hands out a Timer for ev from a chunked arena: timers are
// caller-owned and never recycled, but allocating them 64 at a time
// turns per-schedule allocator traffic into a rounding error.
func (s *Sim) newTimer(ev *event) *Timer {
	if len(s.timerArena) == 0 {
		s.timerArena = make([]Timer, eventArenaSize)
	}
	t := &s.timerArena[0]
	s.timerArena = s.timerArena[1:]
	t.ev = ev
	t.gen = ev.gen
	return t
}

// schedule allocates and queues an event at absolute time t (clamped to
// now) with the next sequence number. The caller fills in the payload.
func (s *Sim) schedule(t time.Duration) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	idx, ev := s.alloc()
	s.qpush(t, s.seq, idx)
	return ev
}

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to now to keep the clock
// monotonic.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if s.shd != nil {
		ev, ln := s.shardSchedule(nil, t)
		ev.fn = fn
		return ln.newTimer(ev)
	}
	ev := s.schedule(t)
	ev.fn = fn
	return s.newTimer(ev)
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.Now()+d, fn)
}

// Step executes the next pending event. It reports whether an event was
// executed. In sharded mode the next event is the globally minimal one
// across all lanes, executed on the calling goroutine.
func (s *Sim) Step() bool {
	if s.shd != nil {
		return s.shardStep()
	}
	for s.qlen() > 0 {
		entry := s.qpop()
		ev := s.eventAt(entry.idx)
		if ev.dead {
			s.recycle(entry.idx, ev)
			continue
		}
		s.now = entry.at
		switch {
		case ev.dst != nil:
			if ev.env.Kind != 0 {
				s.deliverEnv(ev)
			} else {
				s.deliver(ev)
			}
			s.recycle(entry.idx, ev)
		case ev.tick != nil:
			s.runTick(entry.idx, ev)
		default:
			fn, argFn, arg, owner := ev.fn, ev.argFn, ev.arg, ev.owner
			s.recycle(entry.idx, ev)
			if owner == nil || !owner.down {
				if fn != nil {
					fn()
				} else if argFn != nil {
					argFn(arg)
				}
			}
		}
		return true
	}
	return false
}

// runTick fires a ticker event and re-arms the same event storage for
// the next period — a steady ticker never touches the allocator.
func (s *Sim) runTick(idx uint32, ev *event) {
	t := ev.tick
	if t.stopped {
		s.recycle(idx, ev)
		return
	}
	if !t.owner.down {
		t.fn()
	}
	if t.stopped { // fn stopped its own ticker
		s.recycle(idx, ev)
		return
	}
	s.seq++
	s.qpush(s.now+t.interval, s.seq, idx)
}

// RunUntil executes events in order until the queue is exhausted or the
// next event is later than t. The clock is left at min(t, last event time)
// advanced to exactly t if the horizon is reached.
func (s *Sim) RunUntil(t time.Duration) {
	if s.shd != nil {
		s.shardRunUntil(t)
		return
	}
	for {
		at, ok := s.peek()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run executes all pending events until the queue is exhausted. Periodic
// tickers re-arm themselves, so Run on a simulation with tickers will not
// terminate; use RunUntil with a horizon instead.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// peek reports the time of the next live event.
func (s *Sim) peek() (time.Duration, bool) {
	for {
		entry, ok := s.qpeek()
		if !ok {
			return 0, false
		}
		if ev := s.eventAt(entry.idx); ev.dead {
			s.qpop()
			s.recycle(entry.idx, ev)
			continue
		}
		return entry.at, true
	}
}

// Pending returns the number of live scheduled events.
func (s *Sim) Pending() int {
	if sh := s.shd; sh != nil {
		total := 0
		var scratch []heapEntry
		for _, ln := range sh.lanes {
			var n int
			n, scratch = ln.pending(scratch)
			total += n
		}
		return total
	}
	entries := s.queue.e
	if s.wheel != nil {
		entries = s.wheel.entries(nil)
	}
	n := 0
	for _, entry := range entries {
		if !s.eventAt(entry.idx).dead {
			n++
		}
	}
	return n
}

// String summarizes the simulator state, mainly for debugging.
func (s *Sim) String() string {
	return fmt.Sprintf("simnet: t=%v nodes=%d pending=%d", s.Now(), len(s.nodes), s.Pending())
}
