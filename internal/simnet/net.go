package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// NodeID identifies a node in the simulated network.
type NodeID string

// Message is the payload carried between nodes. Messages are delivered by
// reference; senders and receivers must treat them as immutable after
// Send. A message may implement Sized to contribute a realistic byte size
// to traffic statistics.
type Message any

// Sized is implemented by messages that know their encoded size in bytes.
type Sized interface {
	Size() int
}

// defaultMessageSize is attributed to messages that do not implement
// Sized. It approximates a small protocol datagram.
const defaultMessageSize = 100

// MessageTap observes every delivered message. Taps run at delivery time,
// after the receiving handler is selected but before it runs.
type MessageTap func(from, to NodeID, msg Message)

// Handler consumes messages arriving at an endpoint.
type Handler func(from NodeID, msg Message)

// protoEntry binds one protocol name to its handlers on a node: h for
// boxed messages, eh for envelopes (see env.go). Either may be nil.
type protoEntry struct {
	proto string
	h     Handler
	eh    EnvelopeHandler
}

// node is the simulator-internal state of a registered node.
type node struct {
	id      NodeID
	down    bool
	handler Handler
	// protoHandlers routes natively multiplexed traffic (see
	// Sim.sendProto). A node runs a handful of protocols at most, so a
	// linear scan beats a map: the proto strings are shared constants,
	// and Go's string compare short-circuits on pointer equality.
	protoHandlers []protoEntry
	onUp          []func()
	onDown        []func()

	// Sharded deterministic mode (see shard.go). rank is the node's
	// AddNode position (the tie-break half of its logical event keys),
	// ctr its private event counter, rng its private random stream and
	// ln the lane that executes its events. All nil/zero in legacy mode.
	rank uint32
	ctr  uint64
	rng  *rand.Rand
	ln   *lane
}

// setProtoHandler installs (or replaces) the handler for proto.
func (n *node) setProtoHandler(proto string, h Handler) {
	for i := range n.protoHandlers {
		if n.protoHandlers[i].proto == proto {
			n.protoHandlers[i].h = h
			return
		}
	}
	n.protoHandlers = append(n.protoHandlers, protoEntry{proto: proto, h: h})
}

// setProtoEnvHandler installs (or replaces) the envelope handler for
// proto, alongside any boxed handler on the same entry.
func (n *node) setProtoEnvHandler(proto string, eh EnvelopeHandler) {
	for i := range n.protoHandlers {
		if n.protoHandlers[i].proto == proto {
			n.protoHandlers[i].eh = eh
			return
		}
	}
	n.protoHandlers = append(n.protoHandlers, protoEntry{proto: proto, eh: eh})
}

// protoHandler looks up the handler for proto, nil if none registered.
func (n *node) protoHandler(proto string) Handler {
	for i := range n.protoHandlers {
		if n.protoHandlers[i].proto == proto {
			return n.protoHandlers[i].h
		}
	}
	return nil
}

// linkKey identifies a directed link override.
type linkKey struct {
	from, to NodeID
}

// linkOverride carries per-link latency/loss settings.
type linkOverride struct {
	latency time.Duration
	loss    float64
}

// netState models connectivity: partitions and per-link overrides.
type netState struct {
	// group maps a node to its partition group. Nodes in different
	// groups cannot exchange messages. Nodes absent from the map are in
	// the implicit group "".
	group map[NodeID]string
	links map[linkKey]linkOverride
	cut   map[linkKey]bool
}

func (n *netState) init() {
	n.group = make(map[NodeID]string)
	n.links = make(map[linkKey]linkOverride)
	n.cut = make(map[linkKey]bool)
}

// Stats aggregates traffic counters for the whole simulation.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // lost to link loss, cuts, partitions or down nodes
	Bytes     int // bytes of delivered messages
}

// AddNode registers a node and returns its endpoint. Registering the same
// ID twice panics: scenarios construct their topology once, up front, and
// a duplicate ID is a scenario-construction bug.
func (s *Sim) AddNode(id NodeID) *Endpoint {
	if _, ok := s.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %q", id))
	}
	n := &node{id: id}
	if s.shd != nil {
		s.shardNode(n)
	}
	s.nodes[id] = n
	return &Endpoint{sim: s, node: n}
}

// Node reports whether id is registered and currently up.
func (s *Sim) NodeUp(id NodeID) bool {
	n, ok := s.nodes[id]
	return ok && !n.down
}

// SetDown marks a node down (crashed) or back up. Transitions invoke the
// endpoint's OnDown/OnUp callbacks synchronously. Setting the current
// state again is a no-op.
func (s *Sim) SetDown(id NodeID, down bool) {
	n, ok := s.nodes[id]
	if !ok || n.down == down {
		return
	}
	n.down = down
	if down {
		for _, fn := range n.onDown {
			fn()
		}
		return
	}
	for _, fn := range n.onUp {
		fn()
	}
}

// Partition splits the network into the given groups. A node listed in
// group i can only communicate with nodes in group i. Nodes not listed in
// any group form one extra implicit group together. Calling Partition
// replaces any previous partition.
func (s *Sim) Partition(groups ...[]NodeID) {
	s.net.group = make(map[NodeID]string)
	for i, g := range groups {
		name := fmt.Sprintf("g%d", i)
		for _, id := range g {
			s.net.group[id] = name
		}
	}
}

// HealPartition removes all partition groups.
func (s *Sim) HealPartition() {
	s.net.group = make(map[NodeID]string)
}

// SetLink overrides latency and loss for the directed link from→to.
func (s *Sim) SetLink(from, to NodeID, latency time.Duration, loss float64) {
	s.net.links[linkKey{from, to}] = linkOverride{latency: latency, loss: loss}
	if s.shd != nil {
		s.shd.laDirty = true // link floors bound the sharded lookahead
	}
}

// SetLinkBidirectional overrides both directions of a link.
func (s *Sim) SetLinkBidirectional(a, b NodeID, latency time.Duration, loss float64) {
	s.SetLink(a, b, latency, loss)
	s.SetLink(b, a, latency, loss)
}

// ClearLink removes any override for the directed link from→to.
func (s *Sim) ClearLink(from, to NodeID) {
	delete(s.net.links, linkKey{from, to})
	if s.shd != nil {
		s.shd.laDirty = true
	}
}

// CutLink blocks all traffic from→to (both directions must be cut
// separately; see CutLinkBidirectional).
func (s *Sim) CutLink(from, to NodeID) {
	s.net.cut[linkKey{from, to}] = true
}

// CutLinkBidirectional blocks traffic in both directions between a and b.
func (s *Sim) CutLinkBidirectional(a, b NodeID) {
	s.CutLink(a, b)
	s.CutLink(b, a)
}

// RestoreLink unblocks traffic from→to.
func (s *Sim) RestoreLink(from, to NodeID) {
	delete(s.net.cut, linkKey{from, to})
}

// RestoreLinkBidirectional unblocks both directions between a and b.
func (s *Sim) RestoreLinkBidirectional(a, b NodeID) {
	s.RestoreLink(a, b)
	s.RestoreLink(b, a)
}

// Tap registers a delivery observer.
func (s *Sim) Tap(t MessageTap) {
	s.taps = append(s.taps, t)
}

// Stats returns a copy of the traffic counters. In sharded mode the
// per-lane counters are summed.
func (s *Sim) Stats() Stats {
	if sh := s.shd; sh != nil {
		total := s.stats
		for _, ln := range sh.lanes {
			total.Sent += ln.stats.Sent
			total.Delivered += ln.stats.Delivered
			total.Dropped += ln.stats.Dropped
			total.Bytes += ln.stats.Bytes
		}
		return total
	}
	return s.stats
}

// Reachable reports whether traffic from→to would currently traverse
// the network (no cut link, same partition group), ignoring loss and
// node liveness. Combine with NodeUp for end-to-end reachability.
func (s *Sim) Reachable(from, to NodeID) bool {
	return s.reachable(from, to)
}

// reachable reports whether a message from→to would currently traverse
// the network (ignoring loss). The len checks skip the map hashing
// entirely in the common healthy-network state (no cuts, no partition).
func (s *Sim) reachable(from, to NodeID) bool {
	if len(s.net.cut) != 0 && s.net.cut[linkKey{from, to}] {
		return false
	}
	if len(s.net.group) == 0 {
		return true
	}
	return s.net.group[from] == s.net.group[to]
}

// linkParams resolves latency and loss for from→to.
func (s *Sim) linkParams(from, to NodeID) (time.Duration, float64) {
	if len(s.net.links) != 0 {
		if ov, ok := s.net.links[linkKey{from, to}]; ok {
			return ov.latency, ov.loss
		}
	}
	return s.defLat, s.defLoss
}

// send implements message transfer with loss, partitions and down-node
// semantics. Partition and down state are evaluated both at send and at
// delivery time, mirroring how a real datagram can be lost by a failure
// occurring while it is in flight.
func (s *Sim) send(from, to NodeID, msg Message) bool {
	src, ok := s.nodes[from]
	if !ok {
		return false
	}
	return s.sendFrom(src, to, msg)
}

// sendFrom is send with the source already resolved — the path every
// Endpoint.Send takes, skipping one map lookup per message. Deliveries
// are scheduled as payload-carrying events (see event.dst), not
// closures, so a send costs no allocation beyond its queue slot.
func (s *Sim) sendFrom(src *node, to NodeID, msg Message) bool {
	return s.sendProto(src, "", to, msg)
}

// sendProto is the native multiplexed send: proto travels as an event
// field instead of an envelope wrapper, so protocol traffic (the bulk
// of every ML4 run) avoids one interface boxing per message. An empty
// proto is plain traffic delivered to the node's main handler.
func (s *Sim) sendProto(src *node, proto string, to NodeID, msg Message) bool {
	if s.shd != nil {
		return s.shardSend(src, proto, to, msg, Envelope{})
	}
	if src.down {
		return false
	}
	s.stats.Sent++
	dst, ok := s.nodes[to]
	if !ok {
		s.stats.Dropped++
		return false
	}
	if !s.reachable(src.id, to) {
		s.stats.Dropped++
		return false
	}
	latency, loss := s.linkParams(src.id, to)
	if loss > 0 && s.rng.Float64() < loss {
		s.stats.Dropped++
		return false
	}
	// Jitter up to 10% keeps simultaneous broadcasts from arriving in
	// pathological lockstep while staying deterministic under the seed.
	if latency > 0 {
		latency += time.Duration(s.rng.Int63n(int64(latency)/10 + 1))
	}
	deliveries := 1
	if s.defDup > 0 && s.rng.Float64() < s.defDup {
		deliveries = 2
	}
	for i := 0; i < deliveries; i++ {
		// A duplicate trails the original by up to one latency.
		ev := s.schedule(s.now + latency + time.Duration(i)*latency)
		ev.dst = dst
		ev.from = src.id
		ev.proto = proto
		ev.msg = msg
	}
	return true
}

// deliver executes a delivery event: the in-flight checks mirror a real
// datagram being lost to a failure that happened after send. Protocol
// traffic dispatches straight to the node's per-protocol handler; the
// byte accounting matches the envelope framing it replaces.
func (s *Sim) deliver(ev *event) {
	dst := ev.dst
	if dst.down || !s.reachable(ev.from, dst.id) {
		s.stats.Dropped++
		return
	}
	s.stats.Delivered++
	size := messageSize(ev.msg)
	if ev.proto != "" {
		size += protoOverhead
	}
	s.stats.Bytes += size
	for _, tap := range s.taps {
		tap(ev.from, dst.id, ev.msg)
	}
	if ev.proto != "" {
		if h := dst.protoHandler(ev.proto); h != nil {
			h(ev.from, ev.msg)
		}
		return
	}
	if dst.handler != nil {
		dst.handler(ev.from, ev.msg)
	}
}

func messageSize(msg Message) int {
	if sz, ok := msg.(Sized); ok {
		return sz.Size()
	}
	return defaultMessageSize
}
