package simnet

import "time"

// Envelope is a compact tagged-union representation for the small
// fixed-shape datagrams that dominate protocol traffic: raft votes,
// heartbeats and acks, gossip probes, delivery acknowledgements. A
// struct sent through Port.Send is boxed into a Message interface —
// one heap allocation per message, which at city scale is the single
// largest allocation source in a run. An Envelope instead travels
// inline in the simulator's event arena: sending one costs no
// allocation at all.
//
// Kind is a protocol-defined discriminator (namespaced per protocol
// port, so protocols assign kinds independently); Flag, A–D, S and T
// carry the message fields under protocol-defined meaning; Bytes is
// the accounted wire size and must equal the Size() of the boxed
// struct the envelope replaces, so traffic statistics are identical
// whichever representation a sender picks.
type Envelope struct {
	Kind  uint16 // protocol-defined discriminator; zero is reserved (no envelope)
	Flag  bool
	A     uint64
	B     uint64
	C     uint64
	D     uint64
	S     NodeID
	T     NodeID
	Bytes int32
}

// Size implements Sized so a boxed Envelope (generic-Port fallback,
// taps) accounts the same wire size as the native path.
func (e Envelope) Size() int { return int(e.Bytes) }

// EnvelopeHandler consumes envelopes arriving at a protocol port. The
// pointer is valid only for the duration of the call: the storage
// belongs to the simulator's event arena and is recycled afterwards.
type EnvelopeHandler func(from NodeID, env *Envelope)

// EnvelopeCarrier is an optional Port extension for allocation-free
// fixed-size messages. Protocols type-assert once at construction and
// fall back to boxed structs when the port does not implement it
// (e.g. real-network adapters):
//
//	if ec, ok := port.(simnet.EnvelopeCarrier); ok { ... }
//
// A protocol that sends envelopes must install an EnvelopeHandler on
// every peer's port; envelope and boxed traffic flow independently and
// a port may receive both.
type EnvelopeCarrier interface {
	// SendEnvelope transmits env to the destination node with the same
	// loss/latency/partition semantics as Send.
	SendEnvelope(to NodeID, env Envelope) bool
	// OnEnvelope installs the envelope handler.
	OnEnvelope(h EnvelopeHandler)
}

// sendProtoEnv is sendProto for envelopes: the payload is copied into
// the event inline, so the send path touches the allocator only for
// its queue slot (which is arena-pooled). The control flow — including
// the order of random draws — mirrors sendProto exactly; a call site
// switched from Send(struct) to SendEnvelope produces a bit-identical
// simulation provided Bytes matches the struct's Size().
func (s *Sim) sendProtoEnv(src *node, proto string, to NodeID, env Envelope) bool {
	if s.shd != nil {
		return s.shardSend(src, proto, to, nil, env)
	}
	if src.down {
		return false
	}
	s.stats.Sent++
	dst, ok := s.nodes[to]
	if !ok {
		s.stats.Dropped++
		return false
	}
	if !s.reachable(src.id, to) {
		s.stats.Dropped++
		return false
	}
	latency, loss := s.linkParams(src.id, to)
	if loss > 0 && s.rng.Float64() < loss {
		s.stats.Dropped++
		return false
	}
	if latency > 0 {
		latency += time.Duration(s.rng.Int63n(int64(latency)/10 + 1))
	}
	deliveries := 1
	if s.defDup > 0 && s.rng.Float64() < s.defDup {
		deliveries = 2
	}
	for i := 0; i < deliveries; i++ {
		ev := s.schedule(s.now + latency + time.Duration(i)*latency)
		ev.dst = dst
		ev.from = src.id
		ev.proto = proto
		ev.env = env
	}
	return true
}

// deliverEnv executes an envelope delivery event. Byte accounting and
// in-flight checks mirror deliver; dispatch goes to the protocol's
// envelope handler, falling back to the boxed handler (which then pays
// the boxing the sender avoided) if none is installed.
func (s *Sim) deliverEnv(ev *event) {
	dst := ev.dst
	if dst.down || !s.reachable(ev.from, dst.id) {
		s.stats.Dropped++
		return
	}
	s.stats.Delivered++
	s.stats.Bytes += int(ev.env.Bytes) + protoOverhead
	if len(s.taps) > 0 {
		var m Message = ev.env // box once for all taps
		for _, tap := range s.taps {
			tap(ev.from, dst.id, m)
		}
	}
	for i := range dst.protoHandlers {
		if e := &dst.protoHandlers[i]; e.proto == ev.proto {
			if e.eh != nil {
				e.eh(ev.from, &ev.env)
			} else if e.h != nil {
				e.h(ev.from, ev.env)
			}
			return
		}
	}
}
