package simnet_test

import (
	"fmt"
	"time"

	"repro/internal/simnet"
)

// The simulator is deterministic: nodes exchange messages under
// configurable latency, partitions and crashes, all on a virtual clock.
func ExampleSim() {
	sim := simnet.New(simnet.WithDefaultLatency(5 * time.Millisecond))
	alice := sim.AddNode("alice")
	bob := sim.AddNode("bob")

	bob.OnMessage(func(from simnet.NodeID, msg simnet.Message) {
		fmt.Printf("bob got %q from %s at %v\n", msg, from, sim.Now().Round(time.Millisecond))
		bob.Send(from, "pong")
	})
	alice.OnMessage(func(from simnet.NodeID, msg simnet.Message) {
		fmt.Printf("alice got %q at %v\n", msg, sim.Now().Round(time.Millisecond))
	})

	alice.Send("bob", "ping")
	sim.Run()

	// Output:
	// bob got "ping" from alice at 5ms
	// alice got "pong" at 10ms
}

// Node-scoped timers are silenced while the node is down — a crashed
// device does not run its control loop.
func ExampleEndpoint_Every() {
	sim := simnet.New()
	dev := sim.AddNode("device")
	ticks := 0
	dev.Every(time.Second, func() { ticks++ })

	sim.At(2500*time.Millisecond, func() { sim.SetDown("device", true) })
	sim.At(4500*time.Millisecond, func() { sim.SetDown("device", false) })
	sim.RunUntil(6 * time.Second)

	fmt.Println("ticks:", ticks) // 1s,2s fire; 3s,4s skipped; 5s,6s fire

	// Output:
	// ticks: 4
}
