package simnet

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventHeapProperty pushes entries with random times and unique
// sequence numbers and checks that pops come out totally ordered by
// (at, seq).
func TestEventHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h eventHeap
	const n = 2000
	for seq := uint64(1); seq <= n; seq++ {
		at := time.Duration(rng.Intn(100)) * time.Millisecond
		h.push(at, seq, uint32(seq))
	}
	if h.len() != n {
		t.Fatalf("len = %d, want %d", h.len(), n)
	}
	prev, ok := heapEntry{}, false
	for h.len() > 0 {
		e := h.pop()
		if ok && !entryLess(prev, e) && (prev.at != e.at || prev.seq != e.seq) {
			t.Fatalf("pop out of order: (%v,%d) after (%v,%d)", e.at, e.seq, prev.at, prev.seq)
		}
		if ok && !entryLess(prev, e) {
			t.Fatalf("duplicate ordering key (%v,%d)", e.at, e.seq)
		}
		prev, ok = e, true
	}
}

// TestEventHeapEqualTimesFIFO pins the tie-break: events scheduled for
// the same instant pop in scheduling order regardless of push pattern.
func TestEventHeapEqualTimesFIFO(t *testing.T) {
	var h eventHeap
	at := 10 * time.Millisecond
	// Interleave a few distinct times so the equal-time entries take
	// different paths through the tree.
	for seq := uint64(1); seq <= 64; seq++ {
		h.push(at, seq, uint32(seq))
		h.push(at+time.Millisecond*time.Duration(seq%3+1), 1000+seq, uint32(1000+seq))
	}
	var lastEqual uint64
	for h.len() > 0 {
		e := h.pop()
		if e.at == at {
			if e.seq <= lastEqual {
				t.Fatalf("equal-time pop out of FIFO order: seq %d after %d", e.seq, lastEqual)
			}
			lastEqual = e.seq
		}
	}
	if lastEqual != 64 {
		t.Fatalf("last equal-time seq = %d, want 64", lastEqual)
	}
}

// TestStaleTimerHandleIsInert is the pooled-reuse safety property: a
// Timer whose event has fired and been recycled must not cancel the
// recycled storage's next occupant.
func TestStaleTimerHandleIsInert(t *testing.T) {
	s := New()
	fired1, fired2 := false, false
	t1 := s.After(time.Millisecond, func() { fired1 = true })
	s.Run()
	if !fired1 {
		t.Fatal("first timer did not fire")
	}

	// The pool hands the same storage back to the next schedule.
	t2 := s.After(time.Millisecond, func() { fired2 = true })
	if t2.ev != t1.ev {
		t.Skip("pool did not reuse the storage; stale-handle path not exercised")
	}
	if t1.Stop() {
		t.Fatal("stale Stop claimed to cancel")
	}
	s.Run()
	if !fired2 {
		t.Fatal("stale Stop cancelled the recycled event's new occupant")
	}
	// t2's own Stop after firing is also a no-op.
	if t2.Stop() {
		t.Fatal("Stop after firing claimed to cancel")
	}
}

// TestTickerStopInsideCallback: a ticker whose callback stops it must
// not fire again, and its event storage must be recycled cleanly.
func TestTickerStopInsideCallback(t *testing.T) {
	s := New()
	ep := s.AddNode("n")
	count := 0
	var tk *Ticker
	tk = ep.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Minute)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after ticker stopped itself", s.Pending())
	}
}

// TestEventPoolRecyclesAcrossPages schedules more simultaneous events
// than one arena page holds, so paging and index arithmetic get
// exercised, then checks every callback ran exactly once.
func TestEventPoolRecyclesAcrossPages(t *testing.T) {
	s := New()
	const n = eventPageSize*2 + 37
	fired := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		s.After(time.Duration(i%7)*time.Millisecond, func() { fired[i]++ })
	}
	s.Run()
	for i, f := range fired {
		if f != 1 {
			t.Fatalf("callback %d fired %d times", i, f)
		}
	}
	// All storage is back on the free list; a fresh burst must not
	// grow the page table.
	pages := len(s.pages)
	for i := 0; i < n; i++ {
		s.After(time.Millisecond, func() {})
	}
	s.Run()
	if len(s.pages) != pages {
		t.Fatalf("page table grew from %d to %d despite recycling", pages, len(s.pages))
	}
}
