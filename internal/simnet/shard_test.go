package simnet

import (
	"fmt"
	"testing"
	"time"
)

// Shard-boundary edge cases for the zone-sharded scheduler (DESIGN.md
// §11). The conservative window ends at minNext+lookahead; the
// contract at the edge is: a cross-shard delivery may land exactly ON
// the window end (it executes in the next window), never inside it,
// and every (at, seq) order the windows realize must match the serial
// reference leg event for event.

// tinyLat is a latency small enough that the 10% jitter draw
// Int63n(lat/10+1) is always zero: deliveries land exactly at
// send+tinyLat, which lets tests place events precisely on window
// boundaries. The draw still happens, so RNG streams advance exactly
// as at realistic latencies.
const tinyLat = 8 * time.Nanosecond

// TestShardDeliveryExactlyAtLookaheadHorizon sends a cross-shard
// message whose delivery time equals the window end (send time +
// lookahead, zero jitter). The outbox guard rejects at < windowEnd;
// equality is legal and must deliver, at the same virtual time as the
// serial leg.
func TestShardDeliveryExactlyAtLookaheadHorizon(t *testing.T) {
	run := func(shards int) (got time.Duration, n int) {
		s := New(WithShards(shards), WithSeed(7), WithDefaultLatency(tinyLat))
		a := s.AddNode("a")
		b := s.AddNode("b")
		s.SetShard("b", shards-1)
		b.OnMessage(func(from NodeID, msg Message) {
			got = b.Now()
			n++
		})
		a.After(10*time.Nanosecond, func() { a.Send("b", "edge") })
		s.RunUntil(time.Millisecond)
		return got, n
	}
	wantAt, wantN := run(1)
	if wantN != 1 || wantAt != 10*time.Nanosecond+tinyLat {
		t.Fatalf("serial leg: delivered %d at %v, want 1 at %v", wantN, wantAt, 10*time.Nanosecond+tinyLat)
	}
	for _, shards := range []int{2, 4} {
		at, n := run(shards)
		if n != wantN || at != wantAt {
			t.Errorf("shards=%d: delivered %d at %v, serial delivered %d at %v", shards, n, at, wantN, wantAt)
		}
	}
}

// TestShardWindowEdgeOrdering races a cross-shard delivery against the
// receiver's own timer at the same instant. The delivery carries the
// sender's logical key and the timer the receiver's; the sender was
// registered first, so its rank — and therefore the delivery — sorts
// first at equal times, whichever side of a window boundary the
// instant falls on.
func TestShardWindowEdgeOrdering(t *testing.T) {
	run := func(shards int) []string {
		s := New(WithShards(shards), WithSeed(7), WithDefaultLatency(tinyLat))
		a := s.AddNode("a") // rank 1: delivery key wins ties
		b := s.AddNode("b")
		s.SetShard("b", shards-1)
		var order []string
		b.OnMessage(func(from NodeID, msg Message) {
			order = append(order, fmt.Sprintf("msg@%v", b.Now()))
		})
		// Both land at 18ns: the delivery (sent 10ns + 8ns latency) and
		// b's own timer.
		b.After(18*time.Nanosecond, func() {
			order = append(order, fmt.Sprintf("timer@%v", b.Now()))
		})
		a.After(10*time.Nanosecond, func() { a.Send("b", "tie") })
		s.RunUntil(time.Millisecond)
		return order
	}
	want := run(1)
	if len(want) != 2 || want[0] != "msg@18ns" || want[1] != "timer@18ns" {
		t.Fatalf("serial leg order = %v, want [msg@18ns timer@18ns]", want)
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("shards=%d: order = %v, serial = %v", shards, got, want)
		}
	}
}

// TestShardSingleLaneDegeneratesToSerial pins the degenerate case:
// with every node on one lane of a multi-shard sim, runShards sees a
// single active lane and runs it inline — no goroutine handoff, and a
// trace identical to the one-shard reference.
func TestShardSingleLaneDegeneratesToSerial(t *testing.T) {
	run := func(shards int) []string {
		s := New(WithShards(shards), WithSeed(11), WithDefaultLatency(time.Millisecond))
		var trace []string
		const n = 4
		eps := make([]*Endpoint, n)
		for i := 0; i < n; i++ {
			i := i
			id := NodeID(fmt.Sprintf("n%d", i))
			eps[i] = s.AddNode(id) // all on default lane 0
			eps[i].OnMessage(func(from NodeID, msg Message) {
				trace = append(trace, fmt.Sprintf("%v %s->n%d", eps[i].Now(), from, i))
				// Bounce to a pseudo-random peer from the node's own
				// stream; dies out via loss of interest after 100 hops.
				if len(trace) < 100 {
					eps[i].Send(NodeID(fmt.Sprintf("n%d", eps[i].Rand().Intn(n))), msg)
				}
			})
		}
		eps[0].After(time.Millisecond, func() { eps[0].Send("n1", "seed") })
		s.RunUntil(time.Second)
		return trace
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("serial leg produced an empty trace")
	}
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d events, serial %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: trace[%d] = %q, serial %q", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardInvarianceProperty is the simnet-level shard-invariance
// property test: a randomized workload — per-node tickers fanning out
// to pseudo-random peers across lanes, with loss and duplicates — must
// produce identical per-node receive traces at every shard count. All
// randomness is drawn from per-node streams, so the expectation is
// exact equality, not statistical similarity.
func TestShardInvarianceProperty(t *testing.T) {
	const nodes = 12
	run := func(seed int64, shards int) map[NodeID][]string {
		s := New(WithShards(shards), WithSeed(seed),
			WithDefaultLatency(2*time.Millisecond), WithDefaultLoss(0.05), WithDuplicateProb(0.02))
		// One slice slot per node: callbacks run on their node's lane
		// goroutine, so writing only the node's own index keeps the
		// collection race-free without a lock (a shared map here races
		// across lanes within a window).
		perNode := make([][]string, nodes)
		eps := make([]*Endpoint, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			id := NodeID(fmt.Sprintf("n%d", i))
			eps[i] = s.AddNode(id)
			s.SetShard(id, i%shards)
			eps[i].OnMessage(func(from NodeID, msg Message) {
				perNode[i] = append(perNode[i], fmt.Sprintf("%v %s %v", eps[i].Now(), from, msg))
			})
			eps[i].Every(time.Duration(10+i)*time.Millisecond, func() {
				peer := NodeID(fmt.Sprintf("n%d", eps[i].Rand().Intn(nodes)))
				eps[i].Send(peer, eps[i].Rand().Intn(1000))
			})
		}
		s.RunUntil(2 * time.Second)
		traces := make(map[NodeID][]string, nodes)
		for i, tr := range perNode {
			traces[NodeID(fmt.Sprintf("n%d", i))] = tr
		}
		return traces
	}
	for _, seed := range []int64{1, 42} {
		ref := run(seed, 1)
		total := 0
		for _, tr := range ref {
			total += len(tr)
		}
		if total == 0 {
			t.Fatalf("seed %d: serial leg delivered nothing", seed)
		}
		for _, shards := range []int{2, 3, 4, 8} {
			got := run(seed, shards)
			for id, wantTr := range ref {
				gotTr := got[id]
				if len(gotTr) != len(wantTr) {
					t.Fatalf("seed %d shards=%d node %s: %d events, serial %d",
						seed, shards, id, len(gotTr), len(wantTr))
				}
				for i := range wantTr {
					if gotTr[i] != wantTr[i] {
						t.Fatalf("seed %d shards=%d node %s event %d = %q, serial %q",
							seed, shards, id, i, gotTr[i], wantTr[i])
					}
				}
			}
		}
	}
}
