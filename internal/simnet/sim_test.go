package simnet

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var fired time.Duration
	s.After(42*time.Millisecond, func() { fired = s.Now() })
	s.Run()
	if fired != 42*time.Millisecond {
		t.Fatalf("fired at %v, want 42ms", fired)
	}
	if s.Now() != 42*time.Millisecond {
		t.Fatalf("Now() = %v, want 42ms", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO for equal timestamps)", i, order[i], i)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestAtClampsPast(t *testing.T) {
	s := New()
	s.After(10*time.Millisecond, func() {
		s.At(5*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Errorf("past event ran at %v, want clamped to 10ms", s.Now())
			}
		})
	})
	s.Run()
}

func TestRunUntilAdvancesToHorizon(t *testing.T) {
	s := New()
	ran := false
	s.After(time.Second, func() { ran = true })
	s.RunUntil(500 * time.Millisecond)
	if ran {
		t.Fatal("event after horizon ran")
	}
	if s.Now() != 500*time.Millisecond {
		t.Fatalf("Now() = %v, want 500ms", s.Now())
	}
	s.RunUntil(2 * time.Second)
	if !ran {
		t.Fatal("event did not run after extending horizon")
	}
}

func TestSendDeliver(t *testing.T) {
	s := New(WithDefaultLatency(3 * time.Millisecond))
	a := s.AddNode("a")
	b := s.AddNode("b")
	var got Message
	var from NodeID
	var at time.Duration
	b.OnMessage(func(f NodeID, m Message) { from, got, at = f, m, s.Now() })
	if !a.Send("b", "hello") {
		t.Fatal("Send returned false")
	}
	s.Run()
	if got != "hello" || from != "a" {
		t.Fatalf("got %v from %v, want hello from a", got, from)
	}
	if at < 3*time.Millisecond || at > 4*time.Millisecond {
		t.Fatalf("delivered at %v, want ~3ms (latency + ≤10%% jitter)", at)
	}
}

func TestSendToUnknownNodeDropped(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	if a.Send("ghost", "x") {
		t.Fatal("Send to unknown node returned true")
	}
	if s.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Stats().Dropped)
	}
}

func TestDownNodeCannotSendOrReceive(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })

	s.SetDown("b", true)
	a.Send("b", "x")
	s.Run()
	if delivered != 0 {
		t.Fatal("message delivered to down node")
	}

	s.SetDown("b", false)
	s.SetDown("a", true)
	if a.Send("b", "y") {
		t.Fatal("down node could send")
	}
	s.Run()
	if delivered != 0 {
		t.Fatal("message from down node delivered")
	}
}

func TestCrashWhileInFlightDropsMessage(t *testing.T) {
	s := New(WithDefaultLatency(10 * time.Millisecond))
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })
	a.Send("b", "x")
	s.After(time.Millisecond, func() { s.SetDown("b", true) })
	s.Run()
	if delivered != 0 {
		t.Fatal("message delivered to node that crashed while message was in flight")
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })

	s.Partition([]NodeID{"a"}, []NodeID{"b"})
	a.Send("b", "blocked")
	s.Run()
	if delivered != 0 {
		t.Fatal("message crossed partition")
	}

	s.HealPartition()
	a.Send("b", "ok")
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after heal, want 1", delivered)
	}
}

func TestUnlistedNodesShareImplicitGroup(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	s.AddNode("b")
	c := s.AddNode("c")
	got := 0
	c.OnMessage(func(NodeID, Message) { got++ })
	// Partition isolates only b; a and c stay connected.
	s.Partition([]NodeID{"b"})
	a.Send("c", "x")
	s.Run()
	if got != 1 {
		t.Fatalf("delivered = %d, want 1 (a and c share the implicit group)", got)
	}
}

func TestCutLink(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	b := s.AddNode("b")
	var fromA, fromB int
	b.OnMessage(func(NodeID, Message) { fromA++ })
	a.OnMessage(func(NodeID, Message) { fromB++ })

	s.CutLink("a", "b")
	a.Send("b", "x")
	b.Send("a", "y") // reverse direction not cut
	s.Run()
	if fromA != 0 {
		t.Fatal("cut link delivered")
	}
	if fromB != 1 {
		t.Fatal("reverse direction wrongly cut")
	}
	s.RestoreLink("a", "b")
	a.Send("b", "z")
	s.Run()
	if fromA != 1 {
		t.Fatal("restored link did not deliver")
	}
}

func TestLinkLoss(t *testing.T) {
	s := New(WithSeed(7))
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })
	s.SetLink("a", "b", time.Millisecond, 0.5)
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send("b", i)
	}
	s.Run()
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered = %d of %d with 50%% loss, want ≈500", delivered, n)
	}
}

func TestEndpointTimerSkippedWhileDown(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	fired := false
	a.After(10*time.Millisecond, func() { fired = true })
	s.SetDown("a", true)
	s.Run()
	if fired {
		t.Fatal("endpoint timer fired while node down")
	}
}

func TestTickerSkipsDownAndResumes(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	ticks := 0
	a.Every(10*time.Millisecond, func() { ticks++ })
	s.After(25*time.Millisecond, func() { s.SetDown("a", true) })  // after 2 ticks
	s.After(55*time.Millisecond, func() { s.SetDown("a", false) }) // misses ticks 3,4,5
	s.RunUntil(100 * time.Millisecond)
	// Ticks at 10,20 fire; 30,40,50 skipped; 60..100 fire (5 more).
	if ticks != 7 {
		t.Fatalf("ticks = %d, want 7", ticks)
	}
}

func TestTickerStop(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	ticks := 0
	tk := a.Every(10*time.Millisecond, func() { ticks++ })
	s.After(35*time.Millisecond, tk.Stop)
	s.RunUntil(100 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestOnUpOnDownCallbacks(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	var events []string
	a.OnDown(func() { events = append(events, "down") })
	a.OnUp(func() { events = append(events, "up") })
	s.SetDown("a", true)
	s.SetDown("a", true) // no-op
	s.SetDown("a", false)
	if len(events) != 2 || events[0] != "down" || events[1] != "up" {
		t.Fatalf("events = %v, want [down up]", events)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		s := New(WithSeed(99), WithDefaultLatency(4*time.Millisecond), WithDefaultLoss(0.2))
		a := s.AddNode("a")
		b := s.AddNode("b")
		var arrivals []time.Duration
		b.OnMessage(func(NodeID, Message) { arrivals = append(arrivals, s.Now()) })
		for i := 0; i < 50; i++ {
			d := time.Duration(i) * time.Millisecond
			s.After(d, func() { a.Send("b", "m") })
		}
		s.Run()
		return arrivals
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("runs differ in length: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

type sizedMsg struct{ n int }

func (m sizedMsg) Size() int { return m.n }

func TestStatsAndSizedMessages(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	b := s.AddNode("b")
	b.OnMessage(func(NodeID, Message) {})
	a.Send("b", sizedMsg{n: 321})
	a.Send("b", "plain")
	s.Run()
	st := s.Stats()
	if st.Sent != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want 2 sent / 2 delivered", st)
	}
	if st.Bytes != 321+defaultMessageSize {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, 321+defaultMessageSize)
	}
}

func TestTapObservesDeliveries(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	b := s.AddNode("b")
	b.OnMessage(func(NodeID, Message) {})
	var seen []NodeID
	s.Tap(func(from, to NodeID, _ Message) { seen = append(seen, from, to) })
	a.Send("b", "x")
	s.Run()
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("tap saw %v, want [a b]", seen)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	s := New(WithSeed(4), WithDuplicateProb(0.5))
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send("b", i)
	}
	s.Run()
	if delivered < 1400 || delivered > 1600 {
		t.Fatalf("delivered = %d of %d sends with 50%% duplication, want ≈1500", delivered, n)
	}
}

func TestNoDuplicatesByDefault(t *testing.T) {
	s := New(WithSeed(4))
	a := s.AddNode("a")
	b := s.AddNode("b")
	delivered := 0
	b.OnMessage(func(NodeID, Message) { delivered++ })
	for i := 0; i < 100; i++ {
		a.Send("b", i)
	}
	s.Run()
	if delivered != 100 {
		t.Fatalf("delivered = %d, want exactly 100", delivered)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate node")
		}
	}()
	s := New()
	s.AddNode("a")
	s.AddNode("a")
}

func TestPendingCountsLiveEvents(t *testing.T) {
	s := New()
	s.After(time.Millisecond, func() {})
	tm := s.After(2*time.Millisecond, func() {})
	tm.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}
