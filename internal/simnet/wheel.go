package simnet

import (
	"math/bits"
	"slices"
	"time"
)

// timerWheel is a hierarchical timing wheel (Varghese & Lauck) that
// replaces the global event heap on the scheduler's hottest path. The
// heap pays O(log n) sift cost per event against the *whole* pending
// set — at city scale that is a ~10^5-entry array walked on every
// push and pop. The wheel buckets events by coarse deadline instead,
// so an insert is an append into one of 512 slots and a pop drains one
// small bucket at a time: O(1) amortized in the total queue size.
//
// Layout (bucket widths are powers of two so slot math is a shift):
//
//	level 0:  256 slots x 2^20ns (~1.05ms)  — covers ~268ms
//	level 1:  256 slots x 2^28ns (~268ms)   — covers ~68.7s
//	spill:    sorted slice for everything beyond the L1 horizon
//	          (scenario faults, run-end timers — rare by construction)
//
// Buckets are unordered; when a bucket becomes current it is sorted by
// (at, seq) into the *run* — the currently draining, totally ordered
// slice. Because (at, seq) is a total order (seq is unique), the pop
// sequence is exactly the heap's pop sequence, which is what keeps
// journals bit-identical between the two schedulers (verified by
// TestSchedulerDifferential and the property test in wheel_test.go).
//
// Invariants, with runHi == cur0<<l0Shift at all times:
//
//	run[head:]        all entries with at <  runHi, sorted by (at, seq)
//	l0[b&mask]        entries with at>>l0Shift == b, cur0 <= b < cur1<<8
//	l1[b&mask]        entries with at>>l1Shift == b, cur1 <= b < cur1+256
//	spill             entries with at >= (cur1+256)<<l1Shift,
//	                  sorted descending so promotion pops from the end
//
// Inserts below runHi (same-tick sends, zero-delay callbacks) binary-
// insert into the run, preserving the total order; everything else is
// a bucket append. Cancellation is not the wheel's job: events are
// marked dead in the arena and skipped at pop, exactly as with the
// heap.
type timerWheel struct {
	run    []heapEntry // current sorted drain window
	head   int         // next run entry to pop
	runHi  time.Duration
	l0     [wheelSlots][]heapEntry
	l1     [wheelSlots][]heapEntry
	cur0   int64 // next absolute L0 bucket to drain; runHi == cur0<<l0Shift
	cur1   int64 // next absolute L1 bucket to cascade into L0
	n0, n1 int   // queued entry counts per level
	spill  []heapEntry
	// Occupancy bitmaps over the slot arrays (bit i = slot i is
	// non-empty). advance jumps straight to the next set bit instead
	// of probing empty slots one by one — in a sparse sim the wheel
	// would otherwise sweep ~a thousand empty ~1ms slots per virtual
	// second between events.
	occ0 [wheelSlots / 64]uint64
	occ1 [wheelSlots / 64]uint64
}

const (
	l0Shift    = 20 // 2^20ns ~ 1.05ms per L0 bucket
	l1Shift    = 28 // 2^28ns ~ 268ms per L1 bucket
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
)

func newTimerWheel() *timerWheel {
	return &timerWheel{cur1: 1} // L0 owns [0, 256); L1 owns [1, 257)
}

func (w *timerWheel) len() int {
	return (len(w.run) - w.head) + w.n0 + w.n1 + len(w.spill)
}

// entryCmp is entryLess as a three-way comparison for slices.SortFunc.
func entryCmp(a, b heapEntry) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1 // seq is unique; equality cannot happen
}

// push files the entry into the level owning its deadline.
func (w *timerWheel) push(at time.Duration, seq uint64, idx uint32) {
	e := heapEntry{at: at, seq: seq, idx: idx}
	if at < w.runHi {
		// Lands inside the already-sorted drain window: binary insert
		// after any earlier (at, seq) keys. Rare (zero-delay work).
		lo, hi := w.head, len(w.run)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if entryLess(w.run[mid], e) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		w.run = append(w.run, heapEntry{})
		copy(w.run[lo+1:], w.run[lo:])
		w.run[lo] = e
		return
	}
	if b := int64(at >> l0Shift); b < w.cur1<<8 {
		w.l0[b&wheelMask] = append(w.l0[b&wheelMask], e)
		w.occ0[(b&wheelMask)>>6] |= 1 << (uint(b) & 63)
		w.n0++
		return
	}
	if b := int64(at >> l1Shift); b < w.cur1+wheelSlots {
		w.l1[b&wheelMask] = append(w.l1[b&wheelMask], e)
		w.occ1[(b&wheelMask)>>6] |= 1 << (uint(b) & 63)
		w.n1++
		return
	}
	// Far future: sorted descending, so the minimum sits at the end.
	lo, hi := 0, len(w.spill)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(e, w.spill[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.spill = append(w.spill, heapEntry{})
	copy(w.spill[lo+1:], w.spill[lo:])
	w.spill[lo] = e
}

// peek returns the minimum entry without removing it.
func (w *timerWheel) peek() (heapEntry, bool) {
	if w.head == len(w.run) && !w.advance() {
		return heapEntry{}, false
	}
	return w.run[w.head], true
}

// pop removes and returns the minimum entry.
func (w *timerWheel) pop() heapEntry {
	e := w.run[w.head] // peek must have returned ok
	w.head++
	return e
}

// advance materializes the next drain window: the next non-empty L0
// bucket, sorted. When L0 is exhausted it cascades the next L1 bucket
// down, and when L1 runs dry it slides the L1 window toward the spill
// minimum and promotes. Returns false when no entries remain anywhere.
func (w *timerWheel) advance() bool {
	for {
		if w.n0 > 0 {
			// Every L0 bucket in the window [cur0, cur1<<8) lives in
			// one mask period, so the next occupied slot is the next
			// set occupancy bit at or after cur0's masked index.
			idx, _ := nextSet(w.occ0[:], int(w.cur0&wheelMask))
			w.cur0 = (w.cur0 &^ wheelMask) | int64(idx)
			w.cur0++
			w.runHi = time.Duration(w.cur0) << l0Shift
			b := &w.l0[idx]
			w.n0 -= len(*b)
			w.run, *b = *b, w.run[:0]
			w.occ0[idx>>6] &^= 1 << (uint(idx) & 63)
			w.head = 0
			slices.SortFunc(w.run, entryCmp)
			return true
		}
		if w.n1 == 0 && len(w.spill) == 0 {
			return false
		}
		if w.n1 == 0 {
			// Idle gap: slide the L1 window so the spill minimum lands
			// inside it instead of cascading empty slots one by one.
			min := w.spill[len(w.spill)-1]
			if b := int64(min.at >> l1Shift); b >= w.cur1+wheelSlots {
				w.cur1 = b - (wheelSlots - 1)
			}
			w.promote()
			continue
		}
		// Cascade the next L1 bucket into L0, jumping over buckets
		// that are provably empty: before both the next occupied L1
		// slot and the point where the first spill entry would enter
		// the L1 window (promotion into a skipped bucket must not be
		// lost, so the jump is clamped to that boundary).
		next := w.nextL1()
		if len(w.spill) > 0 {
			if s := int64(w.spill[len(w.spill)-1].at>>l1Shift) - (wheelSlots - 1); s > w.cur1 && s < next {
				next = s
			}
		}
		w.cur1 = next
		w.cur0 = w.cur1 << 8
		w.runHi = time.Duration(w.cur0) << l0Shift
		b := &w.l1[w.cur1&wheelMask]
		w.occ1[(w.cur1&wheelMask)>>6] &^= 1 << (uint(w.cur1) & 63)
		w.cur1++
		w.n1 -= len(*b)
		for _, e := range *b {
			slot := int64(e.at>>l0Shift) & wheelMask
			w.l0[slot] = append(w.l0[slot], e)
			w.occ0[slot>>6] |= 1 << (uint(slot) & 63)
		}
		w.n0 += len(*b)
		*b = (*b)[:0]
		w.promote()
	}
}

// nextL1 returns the absolute index of the first occupied L1 bucket at
// or after cur1. The window [cur1, cur1+256) wraps the mask, so a
// failed scan from cur1's masked index restarts from zero. Caller
// guarantees n1 > 0.
func (w *timerWheel) nextL1() int64 {
	base := w.cur1 &^ wheelMask
	if idx, ok := nextSet(w.occ1[:], int(w.cur1&wheelMask)); ok {
		return base | int64(idx)
	}
	idx, _ := nextSet(w.occ1[:], 0)
	return base + wheelSlots + int64(idx)
}

// nextSet returns the index of the first set bit at or after from.
func nextSet(occ []uint64, from int) (int, bool) {
	if word := occ[from>>6] >> (uint(from) & 63); word != 0 {
		return from + bits.TrailingZeros64(word), true
	}
	for i := from>>6 + 1; i < len(occ); i++ {
		if occ[i] != 0 {
			return i<<6 + bits.TrailingZeros64(occ[i]), true
		}
	}
	return 0, false
}

// promote moves spill entries now covered by the L1 window into L1.
// The spill is sorted descending, so candidates sit at the end.
func (w *timerWheel) promote() {
	limit := time.Duration(w.cur1+wheelSlots) << l1Shift
	for n := len(w.spill); n > 0 && w.spill[n-1].at < limit; n = len(w.spill) {
		e := w.spill[n-1]
		w.spill = w.spill[:n-1]
		slot := int64(e.at>>l1Shift) & wheelMask
		w.l1[slot] = append(w.l1[slot], e)
		w.occ1[slot>>6] |= 1 << (uint(slot) & 63)
		w.n1++
	}
}

// entries appends every queued entry (live or dead, in no particular
// order) to dst; used by Pending and diagnostics only.
func (w *timerWheel) entries(dst []heapEntry) []heapEntry {
	dst = append(dst, w.run[w.head:]...)
	for i := range w.l0 {
		dst = append(dst, w.l0[i]...)
	}
	for i := range w.l1 {
		dst = append(dst, w.l1[i]...)
	}
	return append(dst, w.spill...)
}
