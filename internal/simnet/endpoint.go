package simnet

import (
	"math/rand"
	"time"
)

// Endpoint is a node's interface to the simulated network. Protocol state
// machines hold an Endpoint and register a message handler; they schedule
// their periodic work through the endpoint so that timers are silenced
// while the node is down (a crashed device does not run its timers).
type Endpoint struct {
	sim  *Sim
	node *node
}

var _ Clock = (*Endpoint)(nil)

// ID returns the node's identifier.
func (e *Endpoint) ID() NodeID { return e.node.id }

// Sim returns the underlying simulator.
func (e *Endpoint) Sim() *Sim { return e.sim }

// Now returns the current virtual time. In sharded mode this is the
// node's lane clock — equal to the global clock at barriers, and the
// only clock a node's events may read during a parallel window.
func (e *Endpoint) Now() time.Duration {
	if ln := e.node.ln; ln != nil {
		return ln.now
	}
	return e.sim.Now()
}

// Rand returns the node's deterministic random source: the shared
// simulation stream in legacy mode, the node's private stream in
// sharded mode (so draw order cannot depend on lane interleaving).
func (e *Endpoint) Rand() *rand.Rand {
	if e.node.rng != nil {
		return e.node.rng
	}
	return e.sim.Rand()
}

// Up reports whether the node is currently up.
func (e *Endpoint) Up() bool { return !e.node.down }

// OnMessage installs the handler invoked for every message delivered to
// this node. Only one handler is active; protocols that multiplex install
// a dispatching handler.
func (e *Endpoint) OnMessage(h Handler) { e.node.handler = h }

// OnDown registers a callback invoked synchronously when the node
// transitions to down.
func (e *Endpoint) OnDown(fn func()) { e.node.onDown = append(e.node.onDown, fn) }

// OnUp registers a callback invoked synchronously when the node
// transitions back to up. Protocols typically reset volatile state and
// re-arm their timers here.
func (e *Endpoint) OnUp(fn func()) { e.node.onUp = append(e.node.onUp, fn) }

// Send transmits msg to the destination node, subject to the network's
// latency, loss, partition and liveness state. It reports whether the
// message entered the network (a true result does not imply delivery).
func (e *Endpoint) Send(to NodeID, msg Message) bool {
	return e.sim.sendFrom(e.node, to, msg)
}

// After schedules fn to run once, d from now, unless the node is down at
// that moment. The callback is skipped (not deferred) if the node is down
// when the timer fires. The down-gate is the event's owner field, not a
// wrapping closure, so a node-scoped timer costs the same as a bare one.
func (e *Endpoint) After(d time.Duration, fn func()) *Timer {
	if e.sim.shd != nil {
		ev, ln := e.sim.shardSchedule(e.node, e.node.ln.now+d)
		ev.owner = e.node
		ev.fn = fn
		return ln.newTimer(ev)
	}
	ev := e.sim.schedule(e.sim.now + d)
	ev.owner = e.node
	ev.fn = fn
	return e.sim.newTimer(ev)
}

// ArgScheduler is an optional Port extension for allocation-free
// per-occurrence timers: fn rides in the event together with its
// argument, so callers that bind fn once (a method value) pay no
// closure allocation per schedule. Callers must fall back to
// Port.After with a capturing closure when the port does not
// implement it.
type ArgScheduler interface {
	AfterArg(d time.Duration, fn func(uint64), arg uint64) *Timer
}

var _ ArgScheduler = (*Endpoint)(nil)

// AfterArg schedules fn(arg) to run once, d from now, with the same
// down-gating as After.
func (e *Endpoint) AfterArg(d time.Duration, fn func(uint64), arg uint64) *Timer {
	if e.sim.shd != nil {
		ev, ln := e.sim.shardSchedule(e.node, e.node.ln.now+d)
		ev.owner = e.node
		ev.argFn = fn
		ev.arg = arg
		return ln.newTimer(ev)
	}
	ev := e.sim.schedule(e.sim.now + d)
	ev.owner = e.node
	ev.argFn = fn
	ev.arg = arg
	return e.sim.newTimer(ev)
}

// Ticker is a periodic node-scoped timer. Simulated tickers own a
// single pooled event that re-arms itself (see Sim.runTick); external
// tickers delegate to the wrapped cancel function.
type Ticker struct {
	stopped  bool
	external func()

	// Simulated mode.
	owner    *node
	interval time.Duration
	fn       func()
	ev       *event
	gen      uint32
}

// NewExternalTicker wraps an external cancel function in a Ticker for
// alternative Port implementations.
func NewExternalTicker(stop func()) *Ticker {
	return &Ticker{external: stop}
}

// Stop permanently cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.external != nil {
		t.external()
		return
	}
	if t.ev != nil && t.ev.gen == t.gen && !t.ev.dead {
		t.ev.dead = true
	}
}

// Every runs fn every interval, starting one interval from now. Ticks
// that occur while the node is down are skipped, but the ticker keeps
// re-arming, so it resumes automatically when the node comes back up.
// Tickers are owned by their node: in sharded mode they fire, re-arm
// and must be stopped on the owning node's lane (all in-repo protocol
// code stops timers from the owner's own events, which satisfies this).
func (e *Endpoint) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{owner: e.node, interval: interval, fn: fn}
	if e.sim.shd != nil {
		ev, _ := e.sim.shardSchedule(e.node, e.node.ln.now+interval)
		ev.tick = t
		t.ev = ev
		t.gen = ev.gen
		return t
	}
	ev := e.sim.schedule(e.sim.now + interval)
	ev.tick = t
	t.ev = ev
	t.gen = ev.gen
	return t
}
