package simnet

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw scheduler throughput: schedule
// and execute chained timer events.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(time.Microsecond, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkMessageDelivery measures end-to-end send→deliver cost.
func BenchmarkMessageDelivery(b *testing.B) {
	s := New(WithDefaultLatency(time.Microsecond))
	a := s.AddNode("a")
	rx := s.AddNode("b")
	got := 0
	rx.OnMessage(func(NodeID, Message) { got++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send("b", i)
		s.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkFanOut measures a 100-node broadcast through the scheduler.
func BenchmarkFanOut(b *testing.B) {
	s := New(WithDefaultLatency(time.Microsecond))
	src := s.AddNode("src")
	const n = 100
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = NodeID(rune('A'+i%26)) + NodeID(rune('a'+i/26))
		s.AddNode(ids[i]).OnMessage(func(NodeID, Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			src.Send(id, i)
		}
		s.Run()
	}
}
