package simnet

import "time"

// heapEntry is one queue slot: the ordering key (at, seq) inline next
// to the event's arena index. Comparisons during sift-up/down touch
// only the entry array — never the events themselves — so the hot loop
// stays in a handful of cache lines, and because the entry is
// pointer-free, sift moves incur no GC write barriers (which otherwise
// dominate the scheduler's profile).
type heapEntry struct {
	at  time.Duration
	seq uint64
	idx uint32 // event arena index; see Sim.eventAt
}

// entryLess orders entries by time, then by scheduling order (FIFO for
// equal timestamps). seq is unique, so the order is total and pop
// order is fully determined by scheduling history regardless of heap
// shape — which is what keeps runs bit-identical across refactors of
// this file.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap of heapEntry. It replaces
// container/heap on the scheduler's hottest path: a wider node keeps
// the tree shallower (log4 instead of log2 levels), the four children
// of a node are adjacent in the backing array, and the monomorphic
// compare avoids the interface-method calls container/heap makes for
// every Less/Swap.
type eventHeap struct {
	e []heapEntry
}

func (h *eventHeap) len() int { return len(h.e) }

// push inserts the event at arena index idx with ordering key (at, seq).
func (h *eventHeap) push(at time.Duration, seq uint64, idx uint32) {
	h.e = append(h.e, heapEntry{at: at, seq: seq, idx: idx})
	h.up(len(h.e) - 1)
}

// pop removes and returns the minimum entry.
func (h *eventHeap) pop() heapEntry {
	root := h.e[0]
	n := len(h.e) - 1
	last := h.e[n]
	h.e[n] = heapEntry{}
	h.e = h.e[:n]
	if n > 0 {
		h.e[0] = last
		h.down(0)
	}
	return root
}

// peek returns the minimum entry without removing it; ok is false when
// the heap is empty.
func (h *eventHeap) peek() (heapEntry, bool) {
	if len(h.e) == 0 {
		return heapEntry{}, false
	}
	return h.e[0], true
}

func (h *eventHeap) up(i int) {
	e := h.e[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h.e[p]) {
			break
		}
		h.e[i] = h.e[p]
		i = p
	}
	h.e[i] = e
}

func (h *eventHeap) down(i int) {
	n := len(h.e)
	e := h.e[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h.e[j], h.e[m]) {
				m = j
			}
		}
		if !entryLess(h.e[m], e) {
			break
		}
		h.e[i] = h.e[m]
		i = m
	}
	h.e[i] = e
}
