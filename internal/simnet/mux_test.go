package simnet

import (
	"testing"
	"time"
)

func TestMuxRoutesByProtocol(t *testing.T) {
	s := New()
	ma := NewMux(s.AddNode("a"))
	mb := NewMux(s.AddNode("b"))

	var gotX, gotY []Message
	mb.Port("x").OnMessage(func(_ NodeID, m Message) { gotX = append(gotX, m) })
	mb.Port("y").OnMessage(func(_ NodeID, m Message) { gotY = append(gotY, m) })

	ma.Port("x").Send("b", "for-x")
	ma.Port("y").Send("b", "for-y")
	ma.Port("z").Send("b", "no-handler") // silently dropped
	s.Run()

	if len(gotX) != 1 || gotX[0] != "for-x" {
		t.Fatalf("x got %v", gotX)
	}
	if len(gotY) != 1 || gotY[0] != "for-y" {
		t.Fatalf("y got %v", gotY)
	}
}

func TestMuxIgnoresNonEnvelopeTraffic(t *testing.T) {
	s := New()
	a := s.AddNode("a")
	mb := NewMux(s.AddNode("b"))
	called := false
	mb.Port("x").OnMessage(func(NodeID, Message) { called = true })
	a.Send("b", "raw")
	s.Run()
	if called {
		t.Fatal("raw message reached a protocol port")
	}
}

func TestMuxPortSurface(t *testing.T) {
	s := New(WithSeed(3))
	m := NewMux(s.AddNode("a"))
	p := m.Port("x")
	if p.ID() != "a" {
		t.Fatalf("ID = %v", p.ID())
	}
	if !p.Up() {
		t.Fatal("Up = false")
	}
	fired := 0
	p.After(time.Millisecond, func() { fired++ })
	tk := p.Every(time.Millisecond, func() { fired++ })
	s.RunUntil(3500 * time.Microsecond)
	tk.Stop()
	if fired != 4 { // 1 one-shot + ticks at 1,2,3ms
		t.Fatalf("fired = %d, want 4", fired)
	}
	if p.Now() != 3500*time.Microsecond {
		t.Fatalf("Now = %v", p.Now())
	}
	if p.Rand() == nil {
		t.Fatal("Rand is nil")
	}
	var ups, downs int
	p.OnUp(func() { ups++ })
	p.OnDown(func() { downs++ })
	s.SetDown("a", true)
	s.SetDown("a", false)
	if downs != 1 || ups != 1 {
		t.Fatalf("downs=%d ups=%d", downs, ups)
	}
}

func TestEnvelopeSize(t *testing.T) {
	e := envelope{Proto: "x", Msg: sizedMsg{n: 50}}
	if e.Size() != 54 {
		t.Fatalf("Size = %d, want 54", e.Size())
	}
}

func TestMuxTwoProtocolsDontCross(t *testing.T) {
	s := New()
	ma := NewMux(s.AddNode("a"))
	mb := NewMux(s.AddNode("b"))
	xa, xb := ma.Port("gossip"), mb.Port("gossip")
	ya, yb := ma.Port("raft"), mb.Port("raft")

	var gossipMsgs, raftMsgs int
	xb.OnMessage(func(NodeID, Message) { gossipMsgs++ })
	yb.OnMessage(func(NodeID, Message) { raftMsgs++ })
	_ = xa
	for i := 0; i < 3; i++ {
		xa.Send("b", i)
	}
	for i := 0; i < 2; i++ {
		ya.Send("b", i)
	}
	_ = yb
	s.Run()
	if gossipMsgs != 3 || raftMsgs != 2 {
		t.Fatalf("gossip=%d raft=%d, want 3/2", gossipMsgs, raftMsgs)
	}
}
