package simnet

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refModel is an independent reference scheduler built on the standard
// library's container/heap, deliberately sharing no code with either
// production queue. The property tests drive the timing wheel and this
// model with identical operation sequences and require identical pop
// sequences.
type refModel []heapEntry

func (m refModel) Len() int      { return len(m) }
func (m refModel) Swap(i, j int) { m[i], m[j] = m[j], m[i] }
func (m refModel) Less(i, j int) bool {
	if m[i].at != m[j].at {
		return m[i].at < m[j].at
	}
	return m[i].seq < m[j].seq
}
func (m *refModel) Push(x any) { *m = append(*m, x.(heapEntry)) }
func (m *refModel) Pop() any {
	old := *m
	n := len(old) - 1
	e := old[n]
	*m = old[:n]
	return e
}

// drawDeadline picks a deadline at or after now from one of several
// regimes so the test exercises every wheel level: the current drain
// window, the L0 wheel, the L1 wheel, and the far-future spill.
func drawDeadline(rng *rand.Rand, now time.Duration) time.Duration {
	switch rng.Intn(10) {
	case 0: // same tick / zero delay — must land in the current run
		return now
	case 1, 2, 3: // near future: L0 territory (latency-scale)
		return now + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
	case 4, 5, 6: // mid future: L1 territory (ticker-scale)
		return now + time.Duration(rng.Int63n(int64(60*time.Second)))
	case 7, 8: // beyond the L1 horizon: spill territory
		return now + 69*time.Second + time.Duration(rng.Int63n(int64(10*time.Minute)))
	default: // deep idle gap: forces the L1 window slide
		return now + time.Duration(rng.Int63n(int64(4*time.Hour)))
	}
}

// TestWheelMatchesHeapModel drives the wheel and the reference model
// with the same randomized insert/advance sequence and checks that
// every pop returns the same (at, seq, idx) triple — i.e. the wheel
// realizes exactly the (at, seq) total order, which is the property
// journal determinism rests on.
func TestWheelMatchesHeapModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := newTimerWheel()
		ref := &refModel{}
		var (
			seq uint64
			now time.Duration
		)
		for op := 0; op < 4000; op++ {
			if n := rng.Intn(10); n < 6 || ref.Len() == 0 {
				seq++
				at := drawDeadline(rng, now)
				w.push(at, seq, uint32(seq))
				heap.Push(ref, heapEntry{at: at, seq: seq, idx: uint32(seq)})
				continue
			}
			want := heap.Pop(ref).(heapEntry)
			gotPeek, ok := w.peek()
			if !ok || gotPeek != want {
				t.Fatalf("seed %d op %d: peek = %+v (ok=%v), want %+v", seed, op, gotPeek, ok, want)
			}
			got := w.pop()
			if got != want {
				t.Fatalf("seed %d op %d: pop = %+v, want %+v", seed, op, got, want)
			}
			now = got.at // simulation time advances to the popped event
		}
		// Drain both completely; the tails must agree too.
		for ref.Len() > 0 {
			want := heap.Pop(ref).(heapEntry)
			got, ok := w.peek()
			if !ok || got != want {
				t.Fatalf("seed %d drain: peek = %+v (ok=%v), want %+v", seed, got, ok, want)
			}
			w.pop()
		}
		if e, ok := w.peek(); ok {
			t.Fatalf("seed %d: wheel still has %+v after drain", seed, e)
		}
		if w.len() != 0 {
			t.Fatalf("seed %d: wheel len = %d after drain", seed, w.len())
		}
	}
}

// TestWheelSameTickFIFO checks stable ordering for equal deadlines:
// entries scheduled for the same instant must pop in scheduling (seq)
// order, including entries binary-inserted into an already-materialized
// drain window.
func TestWheelSameTickFIFO(t *testing.T) {
	w := newTimerWheel()
	const at = 5 * time.Millisecond
	for seq := uint64(1); seq <= 100; seq++ {
		w.push(at, seq, uint32(seq))
	}
	// Materialize the run, then add more entries at the same tick; they
	// must slot in after the existing ones.
	if e, _ := w.peek(); e.seq != 1 {
		t.Fatalf("first peek seq = %d, want 1", e.seq)
	}
	for seq := uint64(101); seq <= 200; seq++ {
		w.push(at, seq, uint32(seq))
	}
	for want := uint64(1); want <= 200; want++ {
		e, ok := w.peek()
		if !ok || e.seq != want || e.at != at {
			t.Fatalf("pop %d: got %+v (ok=%v)", want, e, ok)
		}
		w.pop()
	}
}

// TestWheelSpillPromotion checks the far-future path: entries beyond
// the L1 horizon go to the spill and are promoted through L1/L0 in
// order, including across idle gaps that force the L1 window to slide.
func TestWheelSpillPromotion(t *testing.T) {
	w := newTimerWheel()
	deadlines := []time.Duration{
		3 * time.Hour,    // deep spill
		70 * time.Second, // just past the initial L1 horizon
		time.Millisecond, // L0
		30 * time.Second, // L1
		90 * time.Minute, // spill, out of insertion order
		3*time.Hour + 1,  // adjacent to the deep entry
		3*time.Hour - time.Nanosecond,
	}
	for i, at := range deadlines {
		w.push(at, uint64(i+1), uint32(i+1))
	}
	var prev heapEntry
	for i := 0; i < len(deadlines); i++ {
		e, ok := w.peek()
		if !ok {
			t.Fatalf("pop %d: wheel empty", i)
		}
		if i > 0 && !entryLess(prev, e) {
			t.Fatalf("pop %d: %+v not after %+v", i, e, prev)
		}
		prev = e
		w.pop()
	}
	if w.len() != 0 {
		t.Fatalf("wheel len = %d after drain", w.len())
	}
}

// TestSimSchedulerEquivalence runs the same timer workload — including
// cancellations — through two Sims, one per scheduler, and requires
// identical execution traces.
func TestSimSchedulerEquivalence(t *testing.T) {
	run := func(opts ...Option) []string {
		s := New(append(opts, WithSeed(7))...)
		var trace []string
		rng := rand.New(rand.NewSource(42))
		var timers []*Timer
		for i := 0; i < 500; i++ {
			i := i
			d := drawDeadline(rng, 0)
			timers = append(timers, s.After(d, func() {
				trace = append(trace, time.Duration(i).String())
			}))
		}
		// Cancel a deterministic third of them.
		for i, tm := range timers {
			if i%3 == 0 {
				tm.Stop()
			}
		}
		s.RunUntil(5 * time.Hour)
		return trace
	}
	wheel := run()
	heapTrace := run(WithHeapScheduler())
	if len(wheel) != len(heapTrace) {
		t.Fatalf("trace lengths differ: wheel %d, heap %d", len(wheel), len(heapTrace))
	}
	for i := range wheel {
		if wheel[i] != heapTrace[i] {
			t.Fatalf("trace[%d]: wheel %q, heap %q", i, wheel[i], heapTrace[i])
		}
	}
}
