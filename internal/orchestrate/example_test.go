package orchestrate_test

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/orchestrate"
)

// Deviceless placement: functions declare capabilities and resources,
// never devices. When a host fails, Heal migrates its functions.
func ExampleOrchestrator() {
	down := map[device.ID]bool{}
	orch := orchestrate.New(nil, func(id device.ID) bool { return !down[id] })
	orch.RegisterHost(device.New("gw-a", device.Config{Class: device.ClassGateway}))
	orch.RegisterHost(device.New("gw-b", device.Config{Class: device.ClassGateway}))

	host, _ := orch.Deploy(orchestrate.Function{
		Name: "analytics", Requires: []device.Capability{device.CapCompute},
		CPUMIPS: 100, MemMB: 64,
	})
	fmt.Println("placed on:", host)

	down[host] = true
	healed := orch.Heal()
	newHost, _ := orch.HostOf("analytics")
	fmt.Println("healed:", healed, "→", newHost)

	// Output:
	// placed on: gw-a
	// healed: 1 → gw-b
}
