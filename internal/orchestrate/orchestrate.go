// Package orchestrate implements the paper's "deviceless" paradigm
// (§III roadmap, pervasiveness/deviceless disruption vectors): business
// logic is expressed as functions with declared capability and resource
// demands, fully decoupled from concrete devices; the orchestrator
// places each function on a feasible host (capability-aware,
// capacity-aware, locality-aware), and re-places functions automatically
// when their host fails — the self-healing half of Table 2's
// "autonomous control, coordination and self-healing". The placement
// logic is a deterministic library; archetypes decide where it runs
// (cloud-only in ML2, per-edge-group behind Raft in ML4).
package orchestrate

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/space"
)

// Function is a deployable unit of business logic.
type Function struct {
	Name string
	// Requires lists capabilities the host must offer (supports the
	// "prefix:*" query form).
	Requires []device.Capability
	// CPUMIPS and MemMB are the function's resource demands.
	CPUMIPS int
	MemMB   int
	// Zone, when set, constrains placement to hosts located in the
	// zone (data locality / privacy scope).
	Zone space.ZoneID
	// PreferEdge biases placement toward edge-class hosts even when a
	// cloud host has more headroom.
	PreferEdge bool
}

// Placement records where a function currently runs.
type Placement struct {
	Function Function
	Host     device.ID
}

// Stats counts orchestrator activity.
type Stats struct {
	Deployments      int
	FailedDeploys    int
	Migrations       int
	FailedMigrations int
}

// Orchestrator places functions on registered hosts. Construct with
// New; it is not safe for concurrent use (drive it from the simulation
// loop).
type Orchestrator struct {
	spaces *space.Map
	alive  func(device.ID) bool

	hosts     map[device.ID]*device.Device
	hostOrder []device.ID
	usedCPU   map[device.ID]int
	usedMem   map[device.ID]int

	placements map[string]Placement
	stats      Stats
}

// New creates an orchestrator. alive reports host liveness (wire it to
// the membership view or the simulator); spaces resolves zone
// constraints and may be nil if no function uses them.
func New(spaces *space.Map, alive func(device.ID) bool) *Orchestrator {
	if alive == nil {
		alive = func(device.ID) bool { return true }
	}
	return &Orchestrator{
		spaces:     spaces,
		alive:      alive,
		hosts:      make(map[device.ID]*device.Device),
		usedCPU:    make(map[device.ID]int),
		usedMem:    make(map[device.ID]int),
		placements: make(map[string]Placement),
	}
}

// RegisterHost adds a device to the placement pool.
func (o *Orchestrator) RegisterHost(d *device.Device) {
	if _, dup := o.hosts[d.ID()]; !dup {
		o.hostOrder = append(o.hostOrder, d.ID())
	}
	o.hosts[d.ID()] = d
}

// Hosts returns the registered host IDs in registration order.
func (o *Orchestrator) Hosts() []device.ID {
	out := make([]device.ID, len(o.hostOrder))
	copy(out, o.hostOrder)
	return out
}

// Stats returns a copy of the counters.
func (o *Orchestrator) Stats() Stats { return o.stats }

// feasible reports whether host can run fn right now.
func (o *Orchestrator) feasible(fn Function, id device.ID) bool {
	d, ok := o.hosts[id]
	if !ok || !o.alive(id) || d.Drained() {
		return false
	}
	for _, cap := range fn.Requires {
		if !d.Has(cap) {
			return false
		}
	}
	res := d.Resources()
	if o.usedCPU[id]+fn.CPUMIPS > res.CPUMIPS || o.usedMem[id]+fn.MemMB > res.MemMB {
		return false
	}
	if fn.Zone != "" {
		if o.spaces == nil {
			return false
		}
		z, ok := o.spaces.ZoneOf(string(id))
		if !ok || z.ID != fn.Zone {
			return false
		}
	}
	return true
}

// score ranks a feasible host: prefer edge hosts when asked, then the
// least relative CPU load, then stable order by ID.
func (o *Orchestrator) score(fn Function, id device.ID) float64 {
	d := o.hosts[id]
	res := d.Resources()
	load := 0.0
	if res.CPUMIPS > 0 {
		load = float64(o.usedCPU[id]) / float64(res.CPUMIPS)
	}
	s := -load // less load → higher score
	if fn.PreferEdge && d.Class().IsEdge() {
		s += 10
	}
	return s
}

// Deploy places fn on the best feasible host. Re-deploying an existing
// function first releases its old placement.
func (o *Orchestrator) Deploy(fn Function) (device.ID, error) {
	if old, ok := o.placements[fn.Name]; ok {
		o.release(old)
	}
	host, ok := o.pick(fn)
	if !ok {
		o.stats.FailedDeploys++
		return "", fmt.Errorf("orchestrate: no feasible host for function %q", fn.Name)
	}
	o.place(fn, host)
	o.stats.Deployments++
	return host, nil
}

func (o *Orchestrator) pick(fn Function) (device.ID, bool) {
	best := device.ID("")
	bestScore := 0.0
	found := false
	// Deterministic: iterate hosts in sorted order.
	ids := append([]device.ID(nil), o.hostOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !o.feasible(fn, id) {
			continue
		}
		s := o.score(fn, id)
		if !found || s > bestScore {
			best, bestScore, found = id, s, true
		}
	}
	return best, found
}

func (o *Orchestrator) place(fn Function, host device.ID) {
	o.usedCPU[host] += fn.CPUMIPS
	o.usedMem[host] += fn.MemMB
	o.placements[fn.Name] = Placement{Function: fn, Host: host}
}

func (o *Orchestrator) release(p Placement) {
	o.usedCPU[p.Host] -= p.Function.CPUMIPS
	o.usedMem[p.Host] -= p.Function.MemMB
	delete(o.placements, p.Function.Name)
}

// replicaName names the i-th replica of a replicated function.
func replicaName(base string, i int) string {
	return fmt.Sprintf("%s#%d", base, i)
}

// replicaGroup returns the base name of a replica ("svc#2" → "svc"),
// or "" for non-replicated functions.
func replicaGroup(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '#' {
			return name[:i]
		}
	}
	return ""
}

// siblingHosts returns the hosts occupied by other replicas of the
// same group, for anti-affinity during (re)placement.
func (o *Orchestrator) siblingHosts(name string) map[device.ID]bool {
	group := replicaGroup(name)
	if group == "" {
		return nil
	}
	out := make(map[device.ID]bool)
	for other, p := range o.placements {
		if other != name && replicaGroup(other) == group {
			out[p.Host] = true
		}
	}
	return out
}

// DeployReplicated places n replicas of fn on n *distinct* hosts
// (anti-affinity), so that no single host failure takes out more than
// one replica. Replicas are named "<name>#0" … "<name>#<n-1>". The
// operation is all-or-nothing: if fewer than n distinct feasible
// hosts exist, nothing is placed and an error is returned.
func (o *Orchestrator) DeployReplicated(fn Function, n int) ([]device.ID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("orchestrate: replica count %d must be positive", n)
	}
	// Release any previous generation of this replicated function.
	for i := 0; ; i++ {
		p, ok := o.placements[replicaName(fn.Name, i)]
		if !ok {
			break
		}
		o.release(p)
	}
	used := make(map[device.ID]bool, n)
	placed := make([]Placement, 0, n)
	hosts := make([]device.ID, 0, n)
	rollback := func() {
		for _, p := range placed {
			o.release(p)
		}
	}
	for i := 0; i < n; i++ {
		rep := fn
		rep.Name = replicaName(fn.Name, i)
		host, ok := o.pickExcluding(rep, used)
		if !ok {
			rollback()
			o.stats.FailedDeploys++
			return nil, fmt.Errorf("orchestrate: only %d of %d distinct hosts feasible for %q", i, n, fn.Name)
		}
		o.place(rep, host)
		placed = append(placed, o.placements[rep.Name])
		used[host] = true
		hosts = append(hosts, host)
	}
	o.stats.Deployments += n
	return hosts, nil
}

// DeployAvoiding places fn like Deploy but never on a host in avoid.
// The partition-aware planner uses it to spread a zone's controller
// replicas across connectivity domains: the backup replica avoids the
// primary's host and the zone's own gateway, so no single partition
// isolates every replica (DESIGN.md §9).
func (o *Orchestrator) DeployAvoiding(fn Function, avoid map[device.ID]bool) (device.ID, error) {
	if old, ok := o.placements[fn.Name]; ok {
		o.release(old)
	}
	host, ok := o.pickExcluding(fn, avoid)
	if !ok {
		o.stats.FailedDeploys++
		return "", fmt.Errorf("orchestrate: no feasible host outside avoid set for function %q", fn.Name)
	}
	o.place(fn, host)
	o.stats.Deployments++
	return host, nil
}

// pickExcluding is pick with an exclusion set for anti-affinity.
func (o *Orchestrator) pickExcluding(fn Function, excluded map[device.ID]bool) (device.ID, bool) {
	best := device.ID("")
	bestScore := 0.0
	found := false
	ids := append([]device.ID(nil), o.hostOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if excluded[id] || !o.feasible(fn, id) {
			continue
		}
		s := o.score(fn, id)
		if !found || s > bestScore {
			best, bestScore, found = id, s, true
		}
	}
	return best, found
}

// Undeploy removes a function.
func (o *Orchestrator) Undeploy(name string) {
	if p, ok := o.placements[name]; ok {
		o.release(p)
	}
}

// HostOf returns the host currently running the function.
func (o *Orchestrator) HostOf(name string) (device.ID, bool) {
	p, ok := o.placements[name]
	return p.Host, ok
}

// Placements returns all placements sorted by function name.
func (o *Orchestrator) Placements() []Placement {
	out := make([]Placement, 0, len(o.placements))
	for _, p := range o.placements {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Function.Name < out[j].Function.Name })
	return out
}

// Operational reports whether the function is placed on a live host.
func (o *Orchestrator) Operational(name string) bool {
	p, ok := o.placements[name]
	if !ok {
		return false
	}
	d := o.hosts[p.Host]
	return o.alive(p.Host) && d != nil && !d.Drained()
}

// migrate tries to move one broken placement to a feasible host
// (respecting replica anti-affinity). When no alternative exists the
// placement is kept on its dead host — still accounted, still visible,
// retried by the next heal pass — and counted as a failed migration.
func (o *Orchestrator) migrate(p Placement) bool {
	o.release(p)
	host, ok := o.pickExcluding(p.Function, o.siblingHosts(p.Function.Name))
	if !ok {
		o.place(p.Function, p.Host) // keep it; a later heal retries
		o.stats.FailedMigrations++
		return false
	}
	o.place(p.Function, host)
	o.stats.Migrations++
	return true
}

// HealHost migrates every function off a failed host. It returns the
// names of the functions successfully re-placed; functions with no
// feasible alternative stay on the failed host (non-operational) and
// are retried by later heal passes.
func (o *Orchestrator) HealHost(failed device.ID) []string {
	var victims []Placement
	for _, p := range o.placements {
		if p.Host == failed {
			victims = append(victims, p)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Function.Name < victims[j].Function.Name })
	var migrated []string
	for _, p := range victims {
		if o.migrate(p) {
			migrated = append(migrated, p.Function.Name)
		}
	}
	return migrated
}

// Heal re-places every function whose host is currently infeasible
// (down, drained or overloaded after changes). It returns the number of
// successful migrations this pass.
func (o *Orchestrator) Heal() int {
	var broken []Placement
	for _, p := range o.placements {
		if !o.Operational(p.Function.Name) {
			broken = append(broken, p)
		}
	}
	sort.Slice(broken, func(i, j int) bool { return broken[i].Function.Name < broken[j].Function.Name })
	n := 0
	for _, p := range broken {
		if o.migrate(p) {
			n++
		}
	}
	return n
}
