package orchestrate

import (
	"testing"

	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/space"
)

// pool: one gateway (edge), one cloudlet (edge, bigger), one cloud VM.
func pool(t *testing.T, alive func(device.ID) bool) *Orchestrator {
	t.Helper()
	m := space.NewMap()
	m.AddDomain(space.Domain{ID: "d", Trusted: true})
	if err := m.AddZone(space.Zone{ID: "z1", Max: space.Point{X: 10, Y: 10}, DomainID: "d"}); err != nil {
		t.Fatal(err)
	}
	m.Place("gw", space.Point{X: 5, Y: 5}, "d")
	m.Place("cl", space.Point{X: 50, Y: 50}, "d")
	m.Place("cloud", space.Point{X: 100, Y: 100}, "d")

	o := New(m, alive)
	o.RegisterHost(device.New("gw", device.Config{Class: device.ClassGateway}))
	o.RegisterHost(device.New("cl", device.Config{Class: device.ClassCloudlet}))
	o.RegisterHost(device.New("cloud", device.Config{Class: device.ClassCloudVM}))
	return o
}

func alwaysAlive(device.ID) bool { return true }

func TestDeployPrefersEdge(t *testing.T) {
	o := pool(t, alwaysAlive)
	host, err := o.Deploy(Function{Name: "analytics", Requires: []device.Capability{device.CapCompute},
		CPUMIPS: 100, MemMB: 64, PreferEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	if host == "cloud" {
		t.Fatalf("placed on cloud despite PreferEdge: %s", host)
	}
	if !o.Operational("analytics") {
		t.Fatal("not operational after deploy")
	}
}

func TestDeployWithoutPreferenceUsesLeastLoaded(t *testing.T) {
	o := pool(t, alwaysAlive)
	// Saturate relative load on the cloudlet and gateway by deploying
	// large functions, then check the next goes to the emptiest host.
	if _, err := o.Deploy(Function{Name: "f1", CPUMIPS: 1800, MemMB: 1}); err != nil {
		t.Fatal(err) // lands somewhere
	}
	host2, err := o.Deploy(Function{Name: "f2", CPUMIPS: 100, MemMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := o.HostOf("f1")
	if host2 == h1 {
		t.Fatalf("both functions on %s; expected spreading", h1)
	}
}

func TestCapabilityConstraints(t *testing.T) {
	o := pool(t, alwaysAlive)
	// No host senses temperature.
	if _, err := o.Deploy(Function{Name: "sense", Requires: []device.Capability{device.SenseCap(env.Temperature)}}); err == nil {
		t.Fatal("deploy with unsatisfiable capability succeeded")
	}
	if st := o.Stats(); st.FailedDeploys != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Register a sensor host: still fails (sensor nodes don't get
	// CapCompute, but the function only asks for sensing — so it works).
	o.RegisterHost(device.New("s1", device.Config{
		Class:        device.ClassSensorNode,
		Capabilities: []device.Capability{device.SenseCap(env.Temperature)},
	}))
	host, err := o.Deploy(Function{Name: "sense", Requires: []device.Capability{device.SenseCap(env.Temperature)}})
	if err != nil || host != "s1" {
		t.Fatalf("host = %v, err = %v", host, err)
	}
}

func TestCapacityAccounting(t *testing.T) {
	o := New(nil, alwaysAlive)
	o.RegisterHost(device.New("gw", device.Config{Class: device.ClassGateway})) // 2000 MIPS, 1024 MB
	if _, err := o.Deploy(Function{Name: "a", CPUMIPS: 1500, MemMB: 512}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Deploy(Function{Name: "b", CPUMIPS: 600, MemMB: 128}); err == nil {
		t.Fatal("over-CPU deploy succeeded")
	}
	if _, err := o.Deploy(Function{Name: "c", CPUMIPS: 100, MemMB: 600}); err == nil {
		t.Fatal("over-memory deploy succeeded")
	}
	if _, err := o.Deploy(Function{Name: "d", CPUMIPS: 100, MemMB: 100}); err != nil {
		t.Fatal("fitting deploy failed:", err)
	}
	// Undeploy releases capacity.
	o.Undeploy("a")
	if _, err := o.Deploy(Function{Name: "e", CPUMIPS: 1500, MemMB: 500}); err != nil {
		t.Fatal("capacity not released:", err)
	}
}

func TestZoneConstraint(t *testing.T) {
	o := pool(t, alwaysAlive)
	host, err := o.Deploy(Function{Name: "local", Zone: "z1", CPUMIPS: 10, MemMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if host != "gw" {
		t.Fatalf("host = %s, want gw (only host in z1)", host)
	}
	// A zone nobody is in.
	if _, err := o.Deploy(Function{Name: "nowhere", Zone: "ghost"}); err == nil {
		t.Fatal("deploy into empty zone succeeded")
	}
}

func TestZoneConstraintWithoutSpaces(t *testing.T) {
	o := New(nil, alwaysAlive)
	o.RegisterHost(device.New("gw", device.Config{Class: device.ClassGateway}))
	if _, err := o.Deploy(Function{Name: "f", Zone: "z1"}); err == nil {
		t.Fatal("zone-constrained deploy without a space map succeeded")
	}
}

func TestHealHostMigrates(t *testing.T) {
	down := map[device.ID]bool{}
	o := pool(t, func(id device.ID) bool { return !down[id] })
	host, err := o.Deploy(Function{Name: "ctrl", CPUMIPS: 100, MemMB: 64, PreferEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	down[host] = true
	if o.Operational("ctrl") {
		t.Fatal("operational on dead host")
	}
	migrated := o.HealHost(host)
	if len(migrated) != 1 || migrated[0] != "ctrl" {
		t.Fatalf("migrated = %v", migrated)
	}
	newHost, _ := o.HostOf("ctrl")
	if newHost == host {
		t.Fatal("function still on failed host")
	}
	if !o.Operational("ctrl") {
		t.Fatal("not operational after heal")
	}
	if st := o.Stats(); st.Migrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealScansAllPlacements(t *testing.T) {
	down := map[device.ID]bool{}
	o := pool(t, func(id device.ID) bool { return !down[id] })
	o.Deploy(Function{Name: "f1", CPUMIPS: 10, MemMB: 1, PreferEdge: true})
	o.Deploy(Function{Name: "f2", CPUMIPS: 10, MemMB: 1, PreferEdge: true})
	h1, _ := o.HostOf("f1")
	h2, _ := o.HostOf("f2")
	down[h1] = true
	down[h2] = true
	n := o.Heal()
	if n != 2 {
		t.Fatalf("healed %d, want 2", n)
	}
	if !o.Operational("f1") || !o.Operational("f2") {
		t.Fatal("functions not operational after Heal")
	}
}

func TestHealFailsWhenNoHostFeasible(t *testing.T) {
	down := map[device.ID]bool{}
	o := New(nil, func(id device.ID) bool { return !down[id] })
	o.RegisterHost(device.New("only", device.Config{Class: device.ClassGateway}))
	o.Deploy(Function{Name: "f", CPUMIPS: 10, MemMB: 1})
	down["only"] = true
	if n := o.Heal(); n != 0 {
		t.Fatalf("healed %d with no feasible host", n)
	}
	if st := o.Stats(); st.FailedMigrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The placement is kept (non-operational) so later heals retry.
	if _, ok := o.HostOf("f"); !ok {
		t.Fatal("failed migration dropped the placement entirely")
	}
	if o.Operational("f") {
		t.Fatal("function operational on a dead host")
	}
	// Recovery: host comes back; the placement is operational again
	// without any migration.
	down["only"] = false
	if !o.Operational("f") {
		t.Fatal("function not operational after host recovery")
	}
	if n := o.Heal(); n != 0 {
		t.Fatalf("heal migrated %d although nothing is broken", n)
	}
}

func TestDrainedHostInfeasible(t *testing.T) {
	o := New(nil, alwaysAlive)
	d := device.New("bat", device.Config{Class: device.ClassMobile,
		Resources: &device.Resources{CPUMIPS: 1000, MemMB: 1000, BatterymAh: 0.001}, IdleDrawmAhPerSec: 1})
	o.RegisterHost(d)
	if _, err := o.Deploy(Function{Name: "f", CPUMIPS: 1, MemMB: 1}); err != nil {
		t.Fatal(err)
	}
	d.Idle(10) // drains (10ns of idle at 1 mAh/s is still 0; use seconds)
	if !d.Drained() {
		d.Idle(1e9) // 1 second
	}
	if o.Operational("f") {
		t.Fatal("operational on drained host")
	}
}

func TestRedeployReleasesOldPlacement(t *testing.T) {
	o := New(nil, alwaysAlive)
	o.RegisterHost(device.New("gw", device.Config{Class: device.ClassGateway}))
	o.Deploy(Function{Name: "f", CPUMIPS: 1500, MemMB: 512})
	// Re-deploy same function with smaller demand must not double-count.
	if _, err := o.Deploy(Function{Name: "f", CPUMIPS: 1500, MemMB: 512}); err != nil {
		t.Fatal("redeploy failed:", err)
	}
	if got := len(o.Placements()); got != 1 {
		t.Fatalf("placements = %d", got)
	}
}

func TestDeployReplicatedAntiAffinity(t *testing.T) {
	o := pool(t, alwaysAlive)
	hosts, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 10, MemMB: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[device.ID]bool{}
	for _, h := range hosts {
		if seen[h] {
			t.Fatalf("replicas share host %s", h)
		}
		seen[h] = true
	}
	if len(o.Placements()) != 3 {
		t.Fatalf("placements = %d", len(o.Placements()))
	}
	if h, ok := o.HostOf("svc#1"); !ok || h == "" {
		t.Fatal("replica name not placed")
	}
}

func TestDeployReplicatedAllOrNothing(t *testing.T) {
	o := pool(t, alwaysAlive) // 3 hosts
	if _, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 10, MemMB: 1}, 4); err == nil {
		t.Fatal("4 replicas on 3 hosts accepted")
	}
	if len(o.Placements()) != 0 {
		t.Fatalf("partial placement left behind: %v", o.Placements())
	}
	if st := o.Stats(); st.FailedDeploys != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeployReplicatedRedeployReleasesOldGeneration(t *testing.T) {
	o := pool(t, alwaysAlive)
	if _, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 700, MemMB: 256}, 3); err != nil {
		t.Fatal(err)
	}
	// Same function again: old generation must be released first or
	// capacity would be double-counted.
	if _, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 700, MemMB: 256}, 3); err != nil {
		t.Fatal("redeploy failed:", err)
	}
	if len(o.Placements()) != 3 {
		t.Fatalf("placements = %d", len(o.Placements()))
	}
}

func TestDeployReplicatedInvalidCount(t *testing.T) {
	o := pool(t, alwaysAlive)
	if _, err := o.DeployReplicated(Function{Name: "svc"}, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestReplicatedSurvivesSingleHostFailure(t *testing.T) {
	down := map[device.ID]bool{}
	o := pool(t, func(id device.ID) bool { return !down[id] })
	hosts, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 10, MemMB: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	down[hosts[0]] = true
	alive := 0
	for i := 0; i < 2; i++ {
		if o.Operational(replicaName("svc", i)) {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("alive replicas = %d, want 1", alive)
	}
	// Heal migrates the dead replica to the remaining distinct host.
	if n := o.Heal(); n != 1 {
		t.Fatalf("healed %d, want 1", n)
	}
}

func TestHealPreservesAntiAffinity(t *testing.T) {
	// 3 hosts, 3 replicas: when one host dies there is no distinct
	// host left, so the heal must fail that replica rather than stack
	// two replicas on one host.
	down := map[device.ID]bool{}
	o := pool(t, func(id device.ID) bool { return !down[id] })
	hosts, err := o.DeployReplicated(Function{Name: "svc", CPUMIPS: 10, MemMB: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	down[hosts[0]] = true
	if n := o.Heal(); n != 0 {
		t.Fatalf("healed %d; stacking replicas violates anti-affinity", n)
	}
	// With a 4th host available the heal succeeds onto it.
	o.RegisterHost(device.New("extra", device.Config{Class: device.ClassGateway}))
	if n := o.Heal(); n != 1 {
		t.Fatalf("healed %d onto the new host, want 1", n)
	}
	counts := map[device.ID]int{}
	for _, p := range o.Placements() {
		counts[p.Host]++
	}
	for h, n := range counts {
		if n > 1 {
			t.Fatalf("host %s runs %d replicas", h, n)
		}
	}
}

func TestReplicaGroup(t *testing.T) {
	if replicaGroup("svc#2") != "svc" || replicaGroup("plain") != "" || replicaGroup("a#b#1") != "a#b" {
		t.Fatal("replicaGroup parsing wrong")
	}
}

func TestPlacementsSortedAndHosts(t *testing.T) {
	o := pool(t, alwaysAlive)
	o.Deploy(Function{Name: "b", CPUMIPS: 1, MemMB: 1})
	o.Deploy(Function{Name: "a", CPUMIPS: 1, MemMB: 1})
	ps := o.Placements()
	if len(ps) != 2 || ps[0].Function.Name != "a" {
		t.Fatalf("placements = %v", ps)
	}
	if len(o.Hosts()) != 3 {
		t.Fatalf("hosts = %v", o.Hosts())
	}
	if _, ok := o.HostOf("ghost"); ok {
		t.Fatal("ghost function placed")
	}
	if o.Operational("ghost") {
		t.Fatal("ghost function operational")
	}
}

func TestDeployAvoidingSpreadsReplicas(t *testing.T) {
	o := pool(t, alwaysAlive)
	primary, err := o.Deploy(Function{Name: "ctl", CPUMIPS: 100, MemMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	// A replica avoiding the primary's host must land elsewhere — the
	// partition-aware spreading rule.
	backup, err := o.DeployAvoiding(Function{Name: "ctl#b1", CPUMIPS: 100, MemMB: 64},
		map[device.ID]bool{primary: true})
	if err != nil {
		t.Fatal(err)
	}
	if backup == primary {
		t.Fatalf("replica landed on the avoided host %s", backup)
	}
	if !o.Operational("ctl#b1") {
		t.Fatal("replica not operational after DeployAvoiding")
	}
	// Redeploying the same replica releases the old placement first, so
	// repeated replans do not leak capacity.
	again, err := o.DeployAvoiding(Function{Name: "ctl#b1", CPUMIPS: 100, MemMB: 64},
		map[device.ID]bool{primary: true})
	if err != nil {
		t.Fatal(err)
	}
	if again == primary {
		t.Fatalf("redeployed replica landed on the avoided host %s", again)
	}
}

func TestDeployAvoidingAllHostsInfeasible(t *testing.T) {
	o := pool(t, alwaysAlive)
	avoid := map[device.ID]bool{"gw": true, "cl": true, "cloud": true}
	if _, err := o.DeployAvoiding(Function{Name: "f", CPUMIPS: 1, MemMB: 1}, avoid); err == nil {
		t.Fatal("DeployAvoiding succeeded with every host excluded")
	}
}
