// Package device models heterogeneous IoT devices: their class, compute
// and energy resources, software stacks and capabilities. The paper's
// landscape (§II, Fig 1) ranges "from microcontrollers to mobile phones
// and micro-clouds"; heterogeneity of device and software stacks is one
// of the resilience factors (§IV). This package gives each entity an
// explicit capability descriptor — the "formal representation and
// treatment of resource capabilities" the roadmap calls for — which the
// orchestrator uses for capability-aware placement, and a battery model
// whose exhaustion is a disruption source.
package device

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/env"
	"repro/internal/space"
)

// ID identifies a device. Device IDs double as simulation node IDs.
type ID string

// Class is the hardware class of a device.
type Class int

// Device classes, ordered roughly by capability.
const (
	ClassSensorNode Class = iota + 1
	ClassActuatorNode
	ClassMicrocontroller
	ClassMobile
	ClassGateway
	ClassCloudlet
	ClassCloudVM
)

var classNames = map[Class]string{
	ClassSensorNode:      "sensor-node",
	ClassActuatorNode:    "actuator-node",
	ClassMicrocontroller: "microcontroller",
	ClassMobile:          "mobile",
	ClassGateway:         "gateway",
	ClassCloudlet:        "cloudlet",
	ClassCloudVM:         "cloud-vm",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// IsEdge reports whether the class can host edge facilities (compute,
// control and data close to end-devices) in the sense of the paper.
func (c Class) IsEdge() bool {
	return c == ClassMobile || c == ClassGateway || c == ClassCloudlet
}

// Resources describes a device's computational and energy resources.
type Resources struct {
	CPUMIPS   int // abstract compute throughput
	MemMB     int
	StorageMB int
	// BatterymAh is the battery capacity; 0 with Mains=true means
	// unlimited wall power.
	BatterymAh float64
	Mains      bool
}

// Capability is a typed ability a device offers, e.g. "sense:temperature",
// "actuate:hvac", "compute", "store". The namespace prefix before ':'
// groups capabilities; Matches supports exact and prefix queries.
type Capability string

// SenseCap is the capability of sensing the given environment variable.
func SenseCap(v env.Variable) Capability { return Capability("sense:" + string(v)) }

// ActuateCap is the capability of driving the named actuator kind.
func ActuateCap(kind string) Capability { return Capability("actuate:" + kind) }

// Compute and storage capabilities offered by edge/cloud classes.
const (
	CapCompute Capability = "compute"
	CapStore   Capability = "store"
	CapControl Capability = "control" // can host MAPE analysis/planning
)

// Matches reports whether the capability satisfies a query. A query
// "sense:*" matches any sensing capability; otherwise matching is exact.
func (c Capability) Matches(query Capability) bool {
	if q := string(query); len(q) > 1 && q[len(q)-1] == '*' {
		prefix := q[:len(q)-1]
		return len(c) >= len(prefix) && string(c[:len(prefix)]) == prefix
	}
	return c == query
}

// SoftwareStack describes the software a device hosts. Heterogeneity and
// vendor-driven updates (configuration change) are modeled by Version
// bumps and stack differences.
type SoftwareStack struct {
	OS      string
	Runtime string
	Version int
}

// Device is one IoT entity. Construct with New; the zero value has no
// class and is not usable.
type Device struct {
	id    ID
	class Class
	res   Resources
	stack SoftwareStack
	caps  []Capability

	battery    float64 // remaining mAh
	idleDraw   float64 // mAh per second while up
	perMessage float64 // mAh per message sent
	perSample  float64 // mAh per sensor sample
	drained    bool
}

// Config parameterizes New. Zero fields take class-profile defaults.
type Config struct {
	Class        Class
	Resources    *Resources
	Stack        SoftwareStack
	Capabilities []Capability
	// IdleDrawmAhPerSec etc. override the class energy profile.
	IdleDrawmAhPerSec float64
	PerMessagemAh     float64
	PerSamplemAh      float64
}

// profile returns the default resources and energy profile for a class,
// shaped after typical hardware (e.g. an MCU with coin cell vs a mains
// powered cloudlet).
func profile(c Class) (Resources, float64, float64, float64) {
	switch c {
	case ClassSensorNode, ClassActuatorNode:
		return Resources{CPUMIPS: 16, MemMB: 1, StorageMB: 1, BatterymAh: 1000}, 0.002, 0.001, 0.0005
	case ClassMicrocontroller:
		return Resources{CPUMIPS: 100, MemMB: 8, StorageMB: 16, BatterymAh: 2000}, 0.004, 0.001, 0.0005
	case ClassMobile:
		return Resources{CPUMIPS: 4000, MemMB: 4096, StorageMB: 65536, BatterymAh: 4000}, 0.05, 0.002, 0.001
	case ClassGateway:
		return Resources{CPUMIPS: 2000, MemMB: 1024, StorageMB: 32768, Mains: true}, 0, 0, 0
	case ClassCloudlet:
		return Resources{CPUMIPS: 16000, MemMB: 16384, StorageMB: 1 << 20, Mains: true}, 0, 0, 0
	case ClassCloudVM:
		return Resources{CPUMIPS: 64000, MemMB: 65536, StorageMB: 1 << 22, Mains: true}, 0, 0, 0
	default:
		return Resources{}, 0, 0, 0
	}
}

// New constructs a device of the given class, applying class-profile
// defaults for unset config fields.
func New(id ID, cfg Config) *Device {
	res, idle, perMsg, perSample := profile(cfg.Class)
	if cfg.Resources != nil {
		res = *cfg.Resources
	}
	if cfg.IdleDrawmAhPerSec != 0 {
		idle = cfg.IdleDrawmAhPerSec
	}
	if cfg.PerMessagemAh != 0 {
		perMsg = cfg.PerMessagemAh
	}
	if cfg.PerSamplemAh != 0 {
		perSample = cfg.PerSamplemAh
	}
	caps := make([]Capability, len(cfg.Capabilities))
	copy(caps, cfg.Capabilities)
	if cfg.Class.IsEdge() || cfg.Class == ClassCloudVM || cfg.Class == ClassCloudlet {
		caps = append(caps, CapCompute, CapStore, CapControl)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	return &Device{
		id:         id,
		class:      cfg.Class,
		res:        res,
		stack:      cfg.Stack,
		caps:       caps,
		battery:    res.BatterymAh,
		idleDraw:   idle,
		perMessage: perMsg,
		perSample:  perSample,
	}
}

// ID returns the device identifier.
func (d *Device) ID() ID { return d.id }

// Class returns the hardware class.
func (d *Device) Class() Class { return d.class }

// Resources returns the device's resource description.
func (d *Device) Resources() Resources { return d.res }

// Stack returns the device's software stack descriptor.
func (d *Device) Stack() SoftwareStack { return d.stack }

// UpgradeStack bumps the stack version — a vendor-driven software
// configuration change, one of the paper's disruption classes.
func (d *Device) UpgradeStack() {
	d.stack.Version++
}

// Capabilities returns a copy of the device's capability list.
func (d *Device) Capabilities() []Capability {
	out := make([]Capability, len(d.caps))
	copy(out, d.caps)
	return out
}

// Has reports whether the device offers a capability matching the query
// (exact or "prefix:*" form).
func (d *Device) Has(query Capability) bool {
	for _, c := range d.caps {
		if c.Matches(query) {
			return true
		}
	}
	return false
}

// BatteryLevel returns the remaining battery fraction in [0,1]; mains
// powered devices always report 1.
func (d *Device) BatteryLevel() float64 {
	if d.res.Mains {
		return 1
	}
	if d.res.BatterymAh == 0 {
		return 0
	}
	return d.battery / d.res.BatterymAh
}

// Drained reports whether the battery has been exhausted.
func (d *Device) Drained() bool { return d.drained }

// drawCharge subtracts charge and reports whether the device just
// drained.
func (d *Device) drawCharge(mAh float64) bool {
	if d.res.Mains || d.drained {
		return false
	}
	d.battery -= mAh
	if d.battery <= 0 {
		d.battery = 0
		d.drained = true
		return true
	}
	return false
}

// Idle accounts for dt of idle operation. It reports whether the device
// just exhausted its battery.
func (d *Device) Idle(dt time.Duration) bool {
	return d.drawCharge(d.idleDraw * dt.Seconds())
}

// SpendMessage accounts for sending one message.
func (d *Device) SpendMessage() bool { return d.drawCharge(d.perMessage) }

// SpendSample accounts for taking one sensor sample.
func (d *Device) SpendSample() bool { return d.drawCharge(d.perSample) }

// Recharge restores the battery to full and clears the drained state.
func (d *Device) Recharge() {
	d.battery = d.res.BatterymAh
	d.drained = false
}

// Sensor binds a device to an environment variable in a zone: Sample
// reads the ground truth plus sensor noise.
type Sensor struct {
	Device   *Device
	Zone     space.ZoneID
	Variable env.Variable
	// NoiseStd is the stddev of Gaussian measurement noise.
	NoiseStd float64
}

// Sample reads the environment. It returns false if the variable is
// undefined or the device's battery is exhausted. The normal deviate is
// supplied by the caller so sampling shares the simulation's
// deterministic random stream.
func (s *Sensor) Sample(e *env.Environment, normDeviate float64) (float64, bool) {
	if s.Device.Drained() {
		return 0, false
	}
	v, ok := e.Value(s.Zone, s.Variable)
	if !ok {
		return 0, false
	}
	s.Device.SpendSample()
	return v + s.NoiseStd*normDeviate, true
}

// Actuator binds a device to an environment variable it can influence.
// While engaged, each Apply adds Effect*dt to the variable (e.g. cooling
// at -0.5 degrees per second).
type Actuator struct {
	Device   *Device
	Zone     space.ZoneID
	Variable env.Variable
	Effect   float64 // units per second while engaged
	engaged  bool
}

// Engaged reports whether the actuator is currently on.
func (a *Actuator) Engaged() bool { return a.engaged }

// SetEngaged turns the actuator on or off. A drained device cannot
// engage.
func (a *Actuator) SetEngaged(on bool) bool {
	if on && a.Device.Drained() {
		return false
	}
	a.engaged = on
	return true
}

// Apply applies the actuator's effect for dt. Disengaged or drained
// actuators have no effect; a drained actuator also disengages.
func (a *Actuator) Apply(e *env.Environment, dt time.Duration) {
	if !a.engaged {
		return
	}
	if a.Device.Drained() {
		a.engaged = false
		return
	}
	_ = e.Add(a.Zone, a.Variable, a.Effect*dt.Seconds())
}
