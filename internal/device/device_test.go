package device

import (
	"testing"
	"time"

	"repro/internal/env"
)

func TestClassString(t *testing.T) {
	if got := ClassGateway.String(); got != "gateway" {
		t.Fatalf("String = %q", got)
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Fatalf("String = %q", got)
	}
}

func TestIsEdge(t *testing.T) {
	tests := []struct {
		c    Class
		want bool
	}{
		{ClassSensorNode, false},
		{ClassMicrocontroller, false},
		{ClassMobile, true},
		{ClassGateway, true},
		{ClassCloudlet, true},
		{ClassCloudVM, false},
	}
	for _, tt := range tests {
		if got := tt.c.IsEdge(); got != tt.want {
			t.Errorf("%v.IsEdge() = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestCapabilityMatches(t *testing.T) {
	tests := []struct {
		cap   Capability
		query Capability
		want  bool
	}{
		{"sense:temperature", "sense:temperature", true},
		{"sense:temperature", "sense:*", true},
		{"actuate:hvac", "sense:*", false},
		{"compute", "compute", true},
		{"compute", "comp", false},
		{"sense:temperature", "sense:humidity", false},
	}
	for _, tt := range tests {
		if got := tt.cap.Matches(tt.query); got != tt.want {
			t.Errorf("%q.Matches(%q) = %v, want %v", tt.cap, tt.query, got, tt.want)
		}
	}
}

func TestNewAppliesClassProfile(t *testing.T) {
	d := New("gw1", Config{Class: ClassGateway})
	if !d.Resources().Mains {
		t.Fatal("gateway should be mains powered")
	}
	if !d.Has(CapCompute) || !d.Has(CapStore) || !d.Has(CapControl) {
		t.Fatal("edge-class device should gain compute/store/control capabilities")
	}
	s := New("s1", Config{Class: ClassSensorNode, Capabilities: []Capability{SenseCap(env.Temperature)}})
	if s.Has(CapCompute) {
		t.Fatal("sensor node should not gain compute capability")
	}
	if !s.Has("sense:*") {
		t.Fatal("sensor node lacks its sensing capability")
	}
}

func TestConfigOverridesResources(t *testing.T) {
	d := New("x", Config{Class: ClassMobile, Resources: &Resources{CPUMIPS: 1, BatterymAh: 10}})
	if d.Resources().CPUMIPS != 1 {
		t.Fatalf("CPUMIPS = %d, want override 1", d.Resources().CPUMIPS)
	}
	if d.BatteryLevel() != 1 {
		t.Fatalf("fresh battery level = %v, want 1", d.BatteryLevel())
	}
}

func TestBatteryDrainAndRecharge(t *testing.T) {
	d := New("s", Config{Class: ClassSensorNode, Resources: &Resources{BatterymAh: 1},
		IdleDrawmAhPerSec: 0.1})
	if d.Idle(5 * time.Second) {
		t.Fatal("device drained too early")
	}
	if lvl := d.BatteryLevel(); lvl != 0.5 {
		t.Fatalf("level = %v, want 0.5", lvl)
	}
	if !d.Idle(10 * time.Second) {
		t.Fatal("device did not report draining")
	}
	if !d.Drained() || d.BatteryLevel() != 0 {
		t.Fatal("drained state inconsistent")
	}
	if d.Idle(time.Second) {
		t.Fatal("already-drained device reported draining again")
	}
	d.Recharge()
	if d.Drained() || d.BatteryLevel() != 1 {
		t.Fatal("recharge did not restore battery")
	}
}

func TestMainsNeverDrains(t *testing.T) {
	d := New("gw", Config{Class: ClassGateway})
	if d.Idle(1000 * time.Hour) {
		t.Fatal("mains device drained")
	}
	if d.BatteryLevel() != 1 {
		t.Fatal("mains battery level != 1")
	}
}

func TestSpendMessageAndSample(t *testing.T) {
	d := New("s", Config{Class: ClassSensorNode, Resources: &Resources{BatterymAh: 0.01},
		PerMessagemAh: 0.004, PerSamplemAh: 0.002})
	d.SpendMessage() // 0.006 left
	d.SpendSample()  // 0.004 left
	if d.Drained() {
		t.Fatal("drained too early")
	}
	if !d.SpendMessage() { // 0 left
		t.Fatal("final message did not drain")
	}
}

func TestUpgradeStack(t *testing.T) {
	d := New("m", Config{Class: ClassMobile, Stack: SoftwareStack{OS: "android", Version: 3}})
	d.UpgradeStack()
	if d.Stack().Version != 4 {
		t.Fatalf("version = %d, want 4", d.Stack().Version)
	}
}

func TestCapabilitiesReturnsCopy(t *testing.T) {
	d := New("m", Config{Class: ClassMobile})
	caps := d.Capabilities()
	if len(caps) == 0 {
		t.Fatal("no capabilities")
	}
	caps[0] = "mutated"
	if d.Capabilities()[0] == "mutated" {
		t.Fatal("mutating returned slice changed device state")
	}
}

func newEnvWithTemp(t *testing.T, val float64) *env.Environment {
	t.Helper()
	e := env.New(1)
	e.Define("z", env.Temperature, env.Process{Initial: val, Min: -50, Max: 50})
	return e
}

func TestSensorSample(t *testing.T) {
	e := newEnvWithTemp(t, 22)
	d := New("s", Config{Class: ClassSensorNode})
	s := &Sensor{Device: d, Zone: "z", Variable: env.Temperature, NoiseStd: 0.5}
	got, ok := s.Sample(e, 2.0) // deviate +2σ
	if !ok || got != 23 {
		t.Fatalf("Sample = %v/%v, want 23", got, ok)
	}
}

func TestSensorSampleUndefinedVariable(t *testing.T) {
	e := newEnvWithTemp(t, 22)
	d := New("s", Config{Class: ClassSensorNode})
	s := &Sensor{Device: d, Zone: "z", Variable: env.Humidity}
	if _, ok := s.Sample(e, 0); ok {
		t.Fatal("sample of undefined variable succeeded")
	}
}

func TestSensorDrainedCannotSample(t *testing.T) {
	e := newEnvWithTemp(t, 22)
	d := New("s", Config{Class: ClassSensorNode, Resources: &Resources{BatterymAh: 0.001},
		PerSamplemAh: 0.002})
	s := &Sensor{Device: d, Zone: "z", Variable: env.Temperature}
	if _, ok := s.Sample(e, 0); !ok {
		t.Fatal("first sample should succeed (drains after)")
	}
	if _, ok := s.Sample(e, 0); ok {
		t.Fatal("drained sensor sampled")
	}
}

func TestActuatorAffectsEnvironment(t *testing.T) {
	e := newEnvWithTemp(t, 30)
	d := New("a", Config{Class: ClassActuatorNode, Resources: &Resources{Mains: true}})
	a := &Actuator{Device: d, Zone: "z", Variable: env.Temperature, Effect: -0.5}
	a.Apply(e, 10*time.Second) // disengaged: no effect
	if v, _ := e.Value("z", env.Temperature); v != 30 {
		t.Fatalf("disengaged actuator changed env to %v", v)
	}
	if !a.SetEngaged(true) {
		t.Fatal("SetEngaged failed")
	}
	a.Apply(e, 10*time.Second)
	if v, _ := e.Value("z", env.Temperature); v != 25 {
		t.Fatalf("after 10s of -0.5/s cooling, temp = %v, want 25", v)
	}
}

func TestDrainedActuatorDisengages(t *testing.T) {
	e := newEnvWithTemp(t, 30)
	d := New("a", Config{Class: ClassActuatorNode, Resources: &Resources{BatterymAh: 0.001},
		IdleDrawmAhPerSec: 1})
	a := &Actuator{Device: d, Zone: "z", Variable: env.Temperature, Effect: -1}
	a.SetEngaged(true)
	d.Idle(time.Second) // drains
	a.Apply(e, 10*time.Second)
	if v, _ := e.Value("z", env.Temperature); v != 30 {
		t.Fatalf("drained actuator changed env to %v", v)
	}
	if a.Engaged() {
		t.Fatal("drained actuator still engaged")
	}
	if a.SetEngaged(true) {
		t.Fatal("drained actuator re-engaged")
	}
}
