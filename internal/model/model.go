// Package model provides the analyzable system representations of the
// paper's modeling roadmap (§IV): a goal model with AND/OR refinement
// (requirements engineering), requirements that carry their own formal
// properties (design-time CTL, runtime LTL), a software configuration
// graph (components, services, hosts), and a translation of
// configurations into Kripke structures under a bounded-failure
// assumption — the concrete "IoT system model facet → verification"
// pipeline of Figure 2. Requirements as first-class objects are what
// make resilience *native*: the same Requirement drives design-time
// checking, runtime monitoring and the persistence metric.
package model

import (
	"fmt"
	"sort"

	"repro/internal/verify"
)

// RequirementID names a requirement.
type RequirementID string

// Requirement is a first-class requirement: a human description plus
// the formal artifacts used to validate it at design time and monitor
// it at runtime.
type Requirement struct {
	ID          RequirementID
	Description string
	// Prop is the atomic proposition whose truth encodes instantaneous
	// satisfaction; the runtime knowledge base publishes it each tick.
	Prop verify.Prop
	// Temporal is the runtime property monitored over the trace of
	// observations. When nil, it defaults to G(Prop) — an invariant.
	Temporal verify.LTLFormula
	// Design is an optional design-time CTL property checked against a
	// Kripke model of the configuration.
	Design verify.CTLFormula
	// Critical requirements gate the system's top-level goal even under
	// OR refinement alternatives elsewhere.
	Critical bool
}

// RuntimeProperty returns the LTL property to monitor (the explicit
// Temporal formula, or the default invariant G(Prop)).
func (r *Requirement) RuntimeProperty() verify.LTLFormula {
	if r.Temporal != nil {
		return r.Temporal
	}
	return verify.LGlobally(verify.LAP(r.Prop))
}

// GoalID names a goal.
type GoalID string

// Refinement is the decomposition mode of a goal's children.
type Refinement int

// Refinement modes.
const (
	// RefinementAND requires all children satisfied.
	RefinementAND Refinement = iota + 1
	// RefinementOR requires at least one child satisfied.
	RefinementOR
)

func (r Refinement) String() string {
	switch r {
	case RefinementAND:
		return "AND"
	case RefinementOR:
		return "OR"
	default:
		return fmt.Sprintf("refinement(%d)", int(r))
	}
}

// Goal is a node in the goal tree. A leaf goal is satisfied when all of
// its Requirements are; an inner goal per its Refinement over Subgoals.
type Goal struct {
	ID           GoalID
	Description  string
	Refinement   Refinement
	Subgoals     []*Goal
	Requirements []RequirementID
}

// GoalModel is a requirements goal tree with its requirement registry.
type GoalModel struct {
	root *Goal
	reqs map[RequirementID]*Requirement
}

// NewGoalModel builds a model rooted at root with the given
// requirements. Validate before use.
func NewGoalModel(root *Goal, reqs []*Requirement) *GoalModel {
	m := &GoalModel{root: root, reqs: make(map[RequirementID]*Requirement, len(reqs))}
	for _, r := range reqs {
		m.reqs[r.ID] = r
	}
	return m
}

// Root returns the root goal.
func (m *GoalModel) Root() *Goal { return m.root }

// Requirement returns a requirement by ID.
func (m *GoalModel) Requirement(id RequirementID) (*Requirement, bool) {
	r, ok := m.reqs[id]
	return r, ok
}

// Requirements returns all requirements sorted by ID.
func (m *GoalModel) Requirements() []*Requirement {
	out := make([]*Requirement, 0, len(m.reqs))
	for _, r := range m.reqs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Validate checks structural sanity: a root exists, goal IDs are
// unique, every referenced requirement is registered, inner goals have
// children and leaves have requirements.
func (m *GoalModel) Validate() error {
	if m.root == nil {
		return fmt.Errorf("model: goal model has no root")
	}
	seen := make(map[GoalID]bool)
	var walk func(g *Goal) error
	walk = func(g *Goal) error {
		if seen[g.ID] {
			return fmt.Errorf("model: duplicate goal %q", g.ID)
		}
		seen[g.ID] = true
		if len(g.Subgoals) == 0 && len(g.Requirements) == 0 {
			return fmt.Errorf("model: goal %q has neither subgoals nor requirements", g.ID)
		}
		if len(g.Subgoals) > 0 && g.Refinement != RefinementAND && g.Refinement != RefinementOR {
			return fmt.Errorf("model: goal %q has children but no refinement mode", g.ID)
		}
		for _, rid := range g.Requirements {
			if _, ok := m.reqs[rid]; !ok {
				return fmt.Errorf("model: goal %q references unknown requirement %q", g.ID, rid)
			}
		}
		for _, c := range g.Subgoals {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(m.root)
}

// Satisfied evaluates the goal tree given per-requirement satisfaction.
// Requirements absent from sat count as unsatisfied. A critical
// requirement that is unsatisfied fails the whole tree regardless of OR
// alternatives.
func (m *GoalModel) Satisfied(sat map[RequirementID]bool) bool {
	for id, r := range m.reqs {
		if r.Critical && !sat[id] {
			return false
		}
	}
	return m.goalSatisfied(m.root, sat)
}

// SinglePointsOfFailure returns the requirements whose individual
// unsatisfaction — with everything else satisfied — breaks the root
// goal. OR-refined alternatives mask their members; AND paths and
// critical requirements surface here. This is the design-time "where
// does redundancy end" analysis the goal model enables.
func (m *GoalModel) SinglePointsOfFailure() []RequirementID {
	all := make(map[RequirementID]bool, len(m.reqs))
	for id := range m.reqs {
		all[id] = true
	}
	var out []RequirementID
	for _, r := range m.Requirements() {
		all[r.ID] = false
		if !m.Satisfied(all) {
			out = append(out, r.ID)
		}
		all[r.ID] = true
	}
	return out
}

func (m *GoalModel) goalSatisfied(g *Goal, sat map[RequirementID]bool) bool {
	for _, rid := range g.Requirements {
		if !sat[rid] {
			return false
		}
	}
	if len(g.Subgoals) == 0 {
		return true
	}
	switch g.Refinement {
	case RefinementOR:
		for _, c := range g.Subgoals {
			if m.goalSatisfied(c, sat) {
				return true
			}
		}
		return false
	default: // AND
		for _, c := range g.Subgoals {
			if !m.goalSatisfied(c, sat) {
				return false
			}
		}
		return true
	}
}
