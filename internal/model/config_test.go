package model

import (
	"testing"

	"repro/internal/verify"
)

// demoConfig: sensing on two sensor hosts (redundant), control on the
// gateway requiring sensing, storage on the cloud.
func demoConfig() *Configuration {
	cfg := NewConfiguration()
	cfg.Add(Component{ID: "sense-a", Host: "s1", Provides: []Service{"sensing"}})
	cfg.Add(Component{ID: "sense-b", Host: "s2", Provides: []Service{"sensing"}})
	cfg.Add(Component{ID: "control", Host: "gw", Provides: []Service{"control"}, Requires: []Service{"sensing"}})
	cfg.Add(Component{ID: "store", Host: "cloud", Provides: []Service{"storage"}, Requires: []Service{"control"}})
	return cfg
}

func allUp(string) bool { return true }

func TestServiceAvailability(t *testing.T) {
	cfg := demoConfig()
	if !cfg.ServiceAvailable("sensing", allUp) {
		t.Fatal("sensing should be available")
	}
	oneSensorDown := func(h string) bool { return h != "s1" }
	if !cfg.ServiceAvailable("sensing", oneSensorDown) {
		t.Fatal("redundant sensing should survive one sensor")
	}
	bothDown := func(h string) bool { return h != "s1" && h != "s2" }
	if cfg.ServiceAvailable("sensing", bothDown) {
		t.Fatal("sensing should fail with both sensors down")
	}
	if cfg.ServiceAvailable("ghost", allUp) {
		t.Fatal("unknown service available")
	}
}

func TestComponentOperational(t *testing.T) {
	cfg := demoConfig()
	if !cfg.ComponentOperational("control", allUp) {
		t.Fatal("control should be operational")
	}
	gwDown := func(h string) bool { return h != "gw" }
	if cfg.ComponentOperational("control", gwDown) {
		t.Fatal("control operational with its host down")
	}
	// control's requirement fails when both sensors are down.
	bothDown := func(h string) bool { return h != "s1" && h != "s2" }
	if cfg.ComponentOperational("control", bothDown) {
		t.Fatal("control operational without sensing")
	}
	if cfg.ComponentOperational("ghost", allUp) {
		t.Fatal("unknown component operational")
	}
}

func TestSnapshotProps(t *testing.T) {
	cfg := demoConfig()
	snap := cfg.Snapshot(allUp)
	for _, p := range []verify.Prop{"svc:sensing", "svc:control", "svc:storage", "comp:control", "comp:store"} {
		if !snap[p] {
			t.Fatalf("prop %s missing from snapshot %v", p, snap)
		}
	}
	s1Down := func(h string) bool { return h != "cloud" }
	snap2 := cfg.Snapshot(s1Down)
	if snap2["svc:storage"] {
		t.Fatal("storage available with cloud down")
	}
	if !snap2["svc:control"] {
		t.Fatal("control should survive cloud outage")
	}
}

func TestAddReplaceRemove(t *testing.T) {
	cfg := NewConfiguration()
	cfg.Add(Component{ID: "c", Host: "h1", Provides: []Service{"x"}})
	cfg.Add(Component{ID: "c", Host: "h2", Provides: []Service{"x"}}) // migration
	comp, ok := cfg.Component("c")
	if !ok || comp.Host != "h2" {
		t.Fatalf("component = %+v", comp)
	}
	if n := len(cfg.Components()); n != 1 {
		t.Fatalf("components = %d, want 1 after replace", n)
	}
	cfg.Remove("c")
	if _, ok := cfg.Component("c"); ok {
		t.Fatal("component survived Remove")
	}
	cfg.Remove("c") // idempotent
	if len(cfg.Hosts()) != 0 {
		t.Fatal("hosts nonempty after removal")
	}
}

func TestComponentCopySemantics(t *testing.T) {
	cfg := NewConfiguration()
	provides := []Service{"x"}
	cfg.Add(Component{ID: "c", Host: "h", Provides: provides})
	provides[0] = "mutated"
	if !cfg.ServiceAvailable("x", allUp) {
		t.Fatal("mutating caller slice changed configuration")
	}
	comp, _ := cfg.Component("c")
	comp.Provides[0] = "mutated2"
	if !cfg.ServiceAvailable("x", allUp) {
		t.Fatal("mutating returned component changed configuration")
	}
}

func TestHostsSorted(t *testing.T) {
	cfg := demoConfig()
	hosts := cfg.Hosts()
	want := []string{"cloud", "gw", "s1", "s2"}
	if len(hosts) != len(want) {
		t.Fatalf("hosts = %v", hosts)
	}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v, want %v", hosts, want)
		}
	}
}

func TestFailureKripkeVerifiesRedundancy(t *testing.T) {
	cfg := demoConfig()
	// Under at most one concurrent failure, sensing is always
	// available (two redundant providers).
	k, err := FailureKripke(cfg, FailureModelOptions{MaxConcurrentFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	// States: C(4,0)+C(4,1) = 5.
	if k.NumStates() != 5 {
		t.Fatalf("states = %d, want 5", k.NumStates())
	}
	if !verify.Check(k, verify.AG(verify.AP(ServiceProp("sensing")))) {
		t.Fatal("AG sensing should hold under single failures")
	}
	// control is NOT always available (its only host may be the one
	// failure).
	if verify.Check(k, verify.AG(verify.AP(ServiceProp("control")))) {
		t.Fatal("AG control should fail — gateway is a single point of failure")
	}
	// But recovery is always possible.
	if !verify.Check(k, verify.AG(verify.EF(verify.AP("all-up")))) {
		t.Fatal("AG EF all-up should hold")
	}
}

func TestFailureKripkeTwoFailuresBreakSensing(t *testing.T) {
	cfg := demoConfig()
	k, err := FailureKripke(cfg, FailureModelOptions{MaxConcurrentFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11.
	if k.NumStates() != 11 {
		t.Fatalf("states = %d, want 11", k.NumStates())
	}
	if verify.Check(k, verify.AG(verify.AP(ServiceProp("sensing")))) {
		t.Fatal("AG sensing must fail when both sensors can be down")
	}
}

func TestFailureKripkeUnboundedFailures(t *testing.T) {
	cfg := demoConfig()
	k, err := FailureKripke(cfg, FailureModelOptions{MaxConcurrentFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	if k.NumStates() != 16 {
		t.Fatalf("states = %d, want 16", k.NumStates())
	}
}

func TestFailureKripkeExtraLabels(t *testing.T) {
	cfg := demoConfig()
	k, err := FailureKripke(cfg, FailureModelOptions{
		MaxConcurrentFailures: 1,
		ExtraLabels: func(down map[string]bool) []verify.Prop {
			if down["cloud"] {
				return []verify.Prop{"cloud-out"}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even during a cloud outage, control keeps working: AG(cloud-out
	// → svc:control).
	if !verify.Check(k, verify.AG(verify.Implies(verify.AP("cloud-out"), verify.AP(ServiceProp("control"))))) {
		t.Fatal("edge control should survive cloud outage in the model")
	}
}

func TestFailureKripkeTooManyHosts(t *testing.T) {
	cfg := NewConfiguration()
	for i := 0; i < 21; i++ {
		cfg.Add(Component{ID: ComponentID(rune('a' + i)), Host: string(rune('a' + i))})
	}
	if _, err := FailureKripke(cfg, FailureModelOptions{}); err == nil {
		t.Fatal("21 hosts accepted")
	}
}

func TestPropHelpers(t *testing.T) {
	if ServiceProp("x") != "svc:x" || ComponentProp("c") != "comp:c" {
		t.Fatal("prop helpers wrong")
	}
}
