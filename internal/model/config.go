package model

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/verify"
)

// Service names a software service interface.
type Service string

// ComponentID names a software component.
type ComponentID string

// Component is one software component of the configuration: it runs on
// a host, provides services and requires services from others. The
// paper's configuration view treats this graph as dynamic — components
// move, hosts fail, interfaces change — so everything here is keyed by
// ID and re-evaluated against the current liveness of hosts.
type Component struct {
	ID       ComponentID
	Host     string // hosting device/node ID
	Provides []Service
	Requires []Service
}

// Configuration is the software configuration graph.
type Configuration struct {
	comps map[ComponentID]*Component
	order []ComponentID
}

// NewConfiguration returns an empty configuration.
func NewConfiguration() *Configuration {
	return &Configuration{comps: make(map[ComponentID]*Component)}
}

// Add registers a component. Re-adding an ID replaces it (a software
// update or migration).
func (c *Configuration) Add(comp Component) {
	if _, dup := c.comps[comp.ID]; !dup {
		c.order = append(c.order, comp.ID)
	}
	cp := comp
	cp.Provides = append([]Service(nil), comp.Provides...)
	cp.Requires = append([]Service(nil), comp.Requires...)
	c.comps[comp.ID] = &cp
}

// Remove deletes a component.
func (c *Configuration) Remove(id ComponentID) {
	if _, ok := c.comps[id]; !ok {
		return
	}
	delete(c.comps, id)
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Component returns a deep copy of a component by ID.
func (c *Configuration) Component(id ComponentID) (Component, bool) {
	comp, ok := c.comps[id]
	if !ok {
		return Component{}, false
	}
	return copyComponent(comp), true
}

// Components returns deep copies of all components in registration
// order.
func (c *Configuration) Components() []Component {
	out := make([]Component, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, copyComponent(c.comps[id]))
	}
	return out
}

func copyComponent(comp *Component) Component {
	cp := *comp
	cp.Provides = append([]Service(nil), comp.Provides...)
	cp.Requires = append([]Service(nil), comp.Requires...)
	return cp
}

// Hosts returns the distinct hosts referenced, sorted.
func (c *Configuration) Hosts() []string {
	set := make(map[string]bool)
	for _, comp := range c.comps {
		set[comp.Host] = true
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// ServiceAvailable reports whether some component providing svc runs on
// a live host.
func (c *Configuration) ServiceAvailable(svc Service, hostUp func(string) bool) bool {
	for _, comp := range c.comps {
		if !hostUp(comp.Host) {
			continue
		}
		for _, s := range comp.Provides {
			if s == svc {
				return true
			}
		}
	}
	return false
}

// ComponentOperational reports whether the component's host is up and
// all of its required services are available.
func (c *Configuration) ComponentOperational(id ComponentID, hostUp func(string) bool) bool {
	comp, ok := c.comps[id]
	if !ok || !hostUp(comp.Host) {
		return false
	}
	for _, req := range comp.Requires {
		if !c.ServiceAvailable(req, hostUp) {
			return false
		}
	}
	return true
}

// Services returns all provided service names, sorted.
func (c *Configuration) Services() []Service {
	set := make(map[Service]bool)
	for _, comp := range c.comps {
		for _, s := range comp.Provides {
			set[s] = true
		}
	}
	out := make([]Service, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServiceProp is the atomic proposition labeling states where svc is
// available.
func ServiceProp(svc Service) verify.Prop {
	return verify.Prop("svc:" + string(svc))
}

// ComponentProp is the proposition labeling states where the component
// is operational.
func ComponentProp(id ComponentID) verify.Prop {
	return verify.Prop("comp:" + string(id))
}

// Snapshot computes the currently true propositions (service
// availability and component operability) for the live configuration.
func (c *Configuration) Snapshot(hostUp func(string) bool) map[verify.Prop]bool {
	out := make(map[verify.Prop]bool)
	for _, svc := range c.Services() {
		if c.ServiceAvailable(svc, hostUp) {
			out[ServiceProp(svc)] = true
		}
	}
	for _, id := range c.order {
		if c.ComponentOperational(id, hostUp) {
			out[ComponentProp(id)] = true
		}
	}
	return out
}

// FailureModelOptions parameterizes the configuration→Kripke
// translation.
type FailureModelOptions struct {
	// MaxConcurrentFailures bounds how many hosts can be down at once
	// in the model (the failure assumption under which design-time
	// guarantees hold). Values < 0 mean "all hosts may fail".
	MaxConcurrentFailures int
	// ExtraLabels, if set, adds propositions per state given the set of
	// down hosts.
	ExtraLabels func(down map[string]bool) []verify.Prop
}

// FailureKripke translates the configuration into a Kripke structure
// whose states are the host-failure patterns with at most
// MaxConcurrentFailures concurrent failures; transitions are single
// host failures and recoveries. States are labeled with service
// availability and component operability, so resilience properties —
// e.g. AG(svc:control) "control survives any admissible failure", or
// AG(EF all-up) "the system can always recover" — become CTL checks.
// The initial state is all-hosts-up.
func FailureKripke(cfg *Configuration, opts FailureModelOptions) (*verify.Kripke, error) {
	hosts := cfg.Hosts()
	n := len(hosts)
	if n > 20 {
		return nil, fmt.Errorf("model: %d hosts exceed the explicit-state limit of 20", n)
	}
	maxDown := opts.MaxConcurrentFailures
	if maxDown < 0 || maxDown > n {
		maxDown = n
	}
	k := verify.NewKripke()
	idx := make(map[uint32]int) // bitmask of down hosts → state
	var masks []uint32
	for mask := uint32(0); mask < 1<<n; mask++ {
		if bits.OnesCount32(mask) > maxDown {
			continue
		}
		down := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				down[hosts[i]] = true
			}
		}
		hostUp := func(h string) bool { return !down[h] }
		var props []verify.Prop
		for p := range cfg.Snapshot(hostUp) {
			props = append(props, p)
		}
		if opts.ExtraLabels != nil {
			props = append(props, opts.ExtraLabels(down)...)
		}
		if mask == 0 {
			props = append(props, "all-up")
		}
		idx[mask] = k.AddState(props...)
		masks = append(masks, mask)
	}
	for _, mask := range masks {
		s := idx[mask]
		// Self-loop: time can pass without a failure event.
		if err := k.AddTransition(s, s); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			flipped := mask ^ (1 << i)
			if t, ok := idx[flipped]; ok {
				if err := k.AddTransition(s, t); err != nil {
					return nil, err
				}
			}
		}
	}
	k.SetInitial(idx[0])
	return k, nil
}
