package model

import (
	"testing"

	"repro/internal/verify"
)

func demoModel(t *testing.T) *GoalModel {
	t.Helper()
	reqs := []*Requirement{
		{ID: "R1", Prop: "temp_ok", Description: "temperature in range"},
		{ID: "R2", Prop: "data_fresh", Description: "readings fresh"},
		{ID: "R3", Prop: "cloud_sync", Description: "cloud backup current"},
		{ID: "R4", Prop: "edge_store", Description: "edge copy current"},
	}
	root := &Goal{
		ID: "G", Refinement: RefinementAND,
		Subgoals: []*Goal{
			{ID: "G1", Requirements: []RequirementID{"R1", "R2"}},
			{ID: "G2", Refinement: RefinementOR, Subgoals: []*Goal{
				{ID: "G2a", Requirements: []RequirementID{"R3"}},
				{ID: "G2b", Requirements: []RequirementID{"R4"}},
			}},
		},
	}
	m := NewGoalModel(root, reqs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGoalSatisfactionANDOR(t *testing.T) {
	m := demoModel(t)
	tests := []struct {
		name string
		sat  map[RequirementID]bool
		want bool
	}{
		{"all satisfied", map[RequirementID]bool{"R1": true, "R2": true, "R3": true, "R4": true}, true},
		{"OR alternative suffices", map[RequirementID]bool{"R1": true, "R2": true, "R4": true}, true},
		{"other OR alternative", map[RequirementID]bool{"R1": true, "R2": true, "R3": true}, true},
		{"both OR branches down", map[RequirementID]bool{"R1": true, "R2": true}, false},
		{"AND branch fails", map[RequirementID]bool{"R1": true, "R3": true}, false},
		{"nothing", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Satisfied(tt.sat); got != tt.want {
				t.Fatalf("Satisfied = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCriticalRequirementGates(t *testing.T) {
	reqs := []*Requirement{
		{ID: "R1", Prop: "a", Critical: true},
		{ID: "R2", Prop: "b"},
		{ID: "R3", Prop: "c"},
	}
	root := &Goal{ID: "G", Refinement: RefinementOR, Subgoals: []*Goal{
		{ID: "Ga", Requirements: []RequirementID{"R1", "R2"}},
		{ID: "Gb", Requirements: []RequirementID{"R3"}},
	}}
	m := NewGoalModel(root, reqs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Gb alone satisfies the OR, but critical R1 is down → whole tree
	// fails.
	if m.Satisfied(map[RequirementID]bool{"R3": true}) {
		t.Fatal("critical requirement did not gate the goal tree")
	}
	if !m.Satisfied(map[RequirementID]bool{"R1": true, "R3": true}) {
		t.Fatal("satisfied critical + OR branch should pass")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		m    *GoalModel
	}{
		{"nil root", NewGoalModel(nil, nil)},
		{"duplicate goal", NewGoalModel(&Goal{ID: "G", Refinement: RefinementAND, Subgoals: []*Goal{
			{ID: "G"},
		}}, nil)},
		{"empty goal", NewGoalModel(&Goal{ID: "G"}, nil)},
		{"unknown requirement", NewGoalModel(&Goal{ID: "G", Requirements: []RequirementID{"ghost"}}, nil)},
		{"missing refinement", NewGoalModel(&Goal{ID: "G", Subgoals: []*Goal{
			{ID: "G1", Requirements: []RequirementID{"R"}},
		}}, []*Requirement{{ID: "R", Prop: "p"}})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); err == nil {
				t.Fatal("Validate accepted invalid model")
			}
		})
	}
}

func TestRuntimePropertyDefault(t *testing.T) {
	r := &Requirement{ID: "R", Prop: "p"}
	if got := r.RuntimeProperty().String(); got != "G p" {
		t.Fatalf("default runtime property = %q, want G p", got)
	}
	r2 := &Requirement{ID: "R2", Prop: "p", Temporal: verify.LEventually(verify.LAP("q"))}
	if got := r2.RuntimeProperty().String(); got != "F q" {
		t.Fatalf("explicit property = %q", got)
	}
}

func TestRequirementsSorted(t *testing.T) {
	m := demoModel(t)
	rs := m.Requirements()
	if len(rs) != 4 || rs[0].ID != "R1" || rs[3].ID != "R4" {
		t.Fatalf("Requirements = %v", rs)
	}
	if r, ok := m.Requirement("R2"); !ok || r.Prop != "data_fresh" {
		t.Fatal("Requirement lookup failed")
	}
	if _, ok := m.Requirement("ghost"); ok {
		t.Fatal("ghost requirement found")
	}
}

func TestSinglePointsOfFailure(t *testing.T) {
	m := demoModel(t)
	// R1, R2 sit on the AND path; R3, R4 are OR alternatives.
	got := m.SinglePointsOfFailure()
	if len(got) != 2 || got[0] != "R1" || got[1] != "R2" {
		t.Fatalf("SPOFs = %v, want [R1 R2]", got)
	}
}

func TestSinglePointsOfFailureCritical(t *testing.T) {
	reqs := []*Requirement{
		{ID: "R1", Prop: "a", Critical: true},
		{ID: "R2", Prop: "b"},
	}
	root := &Goal{ID: "G", Refinement: RefinementOR, Subgoals: []*Goal{
		{ID: "Ga", Requirements: []RequirementID{"R1"}},
		{ID: "Gb", Requirements: []RequirementID{"R2"}},
	}}
	m := NewGoalModel(root, reqs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// R1 is an OR alternative but critical → SPOF; R2 is masked.
	got := m.SinglePointsOfFailure()
	if len(got) != 1 || got[0] != "R1" {
		t.Fatalf("SPOFs = %v, want [R1]", got)
	}
}

func TestRefinementString(t *testing.T) {
	if RefinementAND.String() != "AND" || RefinementOR.String() != "OR" {
		t.Fatal("names wrong")
	}
	if Refinement(7).String() != "refinement(7)" {
		t.Fatal("unknown name wrong")
	}
}
