package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// X2Point is one step of the cost-of-resilience experiment: the ML4
// data plane's anti-entropy period swept against resilience and
// traffic. The paper expects the "combined effect" of the resilience
// mechanisms to cost something; X2 shows the knob that trades that
// cost against freshness.
type X2Point struct {
	SyncInterval time.Duration
	GoalR        float64
	DataAvail    float64
	StaleP95     time.Duration
	Messages     int
}

// ExtensionCost runs ML4 under the standard disruption schedule at
// each sync interval.
func ExtensionCost(cfg core.ScenarioConfig, intervals []time.Duration) []X2Point {
	out := make([]X2Point, 0, len(intervals))
	for _, iv := range intervals {
		c := cfg
		c.ML4SyncInterval = iv
		r := core.NewSystem(c, core.ML4).Run()
		out = append(out, X2Point{
			SyncInterval: iv,
			GoalR:        r.GoalPersistence,
			DataAvail:    r.DataAvailability,
			StaleP95:     r.StalenessP95,
			Messages:     r.Messages,
		})
	}
	return out
}

// FormatCost renders the series.
func FormatCost(points []X2Point) string {
	rows := [][]string{{"sync_every", "R(goal)", "dataAvail", "staleP95", "msgs"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.SyncInterval.String(),
			fmt.Sprintf("%.3f", p.GoalR),
			fmt.Sprintf("%.3f", p.DataAvail),
			p.StaleP95.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", p.Messages),
		})
	}
	return formatTable(rows)
}
