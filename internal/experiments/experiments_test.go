package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// quickCfg shortens the Table 1/2 scenario for tests.
func quickCfg() core.ScenarioConfig {
	cfg := core.DefaultScenario()
	cfg.Duration = 6 * time.Minute
	return cfg
}

func TestFormatTable(t *testing.T) {
	s := formatTable([][]string{{"a", "bb"}, {"ccc", "d"}})
	if !strings.Contains(s, "a") || !strings.Contains(s, "---") {
		t.Fatalf("table = %q", s)
	}
	if formatTable(nil) != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestTable12Shape(t *testing.T) {
	reports := Table12(quickCfg())
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	out := FormatTable12(reports)
	if !strings.Contains(out, "ML4-resilient") {
		t.Fatalf("missing ML4 row:\n%s", out)
	}
}

func TestTable12StatsOrderingAcrossSeeds(t *testing.T) {
	cfg := quickCfg()
	stats := Table12Stats(cfg, []int64{1, 2, 3})
	if len(stats) != 4 {
		t.Fatalf("stats = %d archetypes", len(stats))
	}
	byArch := make(map[core.Archetype]ArchetypeStats)
	for _, s := range stats {
		if s.Runs != 3 {
			t.Fatalf("runs = %d", s.Runs)
		}
		const eps = 1e-9
		if s.MinR > s.MeanR+eps || s.MeanR > s.MaxR+eps || s.StdDevR < 0 {
			t.Fatalf("inconsistent stats %+v", s)
		}
		byArch[s.Archetype] = s
	}
	// The headline ordering must hold in the mean, not just one seed.
	if byArch[core.ML4].MeanR <= byArch[core.ML1].MeanR {
		t.Fatalf("mean ML4 %.3f not above mean ML1 %.3f",
			byArch[core.ML4].MeanR, byArch[core.ML1].MeanR)
	}
	// And even ML4's worst seed should beat ML1's best.
	if byArch[core.ML4].MinR <= byArch[core.ML1].MaxR {
		t.Fatalf("ML4 min %.3f does not dominate ML1 max %.3f",
			byArch[core.ML4].MinR, byArch[core.ML1].MaxR)
	}
	if FormatTable12Stats(stats) == "" {
		t.Fatal("format empty")
	}
}

func TestFigure1ScalesWithoutCollapse(t *testing.T) {
	points := Figure1(1, []int{4, 16}, 30*time.Second)
	if len(points) != 2 {
		t.Fatal("wrong point count")
	}
	if points[1].Devices <= points[0].Devices {
		t.Fatal("device count did not grow")
	}
	if points[0].Messages == 0 || points[1].Messages == 0 {
		t.Fatal("no traffic simulated")
	}
	// Larger deployments move more messages in the same horizon.
	if points[1].Messages <= points[0].Messages {
		t.Fatal("message volume did not scale with size")
	}
	if FormatFigure1(points) == "" {
		t.Fatal("format empty")
	}
}

func TestFigure2StateSpaceGrowsAndVerdictsHold(t *testing.T) {
	points := Figure2([]int{2, 4, 6}, 2)
	for i, p := range points {
		if i > 0 && p.States <= points[i-1].States {
			t.Fatal("state space did not grow")
		}
		// With ≥3 control hosts, control survives any 2 failures.
		wantCtrl := p.Hosts > 2
		if p.ControlSurvives != wantCtrl {
			t.Fatalf("hosts=%d: AG(control) = %v, want %v", p.Hosts, p.ControlSurvives, wantCtrl)
		}
		if !p.Recoverable {
			t.Fatalf("hosts=%d: recovery property failed", p.Hosts)
		}
	}
	quants := Figure2Quantitative([]int{1, 5, 10})
	if len(quants) != 3 {
		t.Fatal("wrong quant count")
	}
	for i := 1; i < len(quants); i++ {
		if quants[i].PRecover < quants[i-1].PRecover {
			t.Fatal("bounded reachability not monotone in the bound")
		}
	}
	if quants[0].PRecover != 0.4 {
		t.Fatalf("P[F<=1 up] = %v, want 0.4", quants[0].PRecover)
	}
	if FormatFigure2(points, quants) == "" {
		t.Fatal("format empty")
	}
}

func TestFigure3DecentralizedSurvivesCloudOutage(t *testing.T) {
	points := Figure3(1, []float64{0, 0.5})
	calm, stressed := points[0], points[1]

	// Without outages both modes work.
	if calm.CentralizedSuccess < 0.95 || calm.DecentralizedSuccess < 0.95 {
		t.Fatalf("calm success: central %.3f decentral %.3f", calm.CentralizedSuccess, calm.DecentralizedSuccess)
	}
	// At 50%% cloud downtime, centralized control collapses towards
	// 50%% while decentralized stays high.
	if stressed.CentralizedSuccess > 0.7 {
		t.Fatalf("centralized success %.3f despite 50%% downtime", stressed.CentralizedSuccess)
	}
	if stressed.DecentralizedSuccess < 0.9 {
		t.Fatalf("decentralized success %.3f under cloud downtime", stressed.DecentralizedSuccess)
	}
	// Edge actions arrive faster than WAN actions.
	if calm.DecentralizedP95 >= calm.CentralizedP95 {
		t.Fatalf("edge p95 %v not below WAN p95 %v", calm.DecentralizedP95, calm.CentralizedP95)
	}
	if FormatFigure3(points) == "" {
		t.Fatal("format empty")
	}
}

func TestFigure4EdgeGovernedBeatsCloudMediated(t *testing.T) {
	points := Figure4(1, []float64{0, 0.5})
	calm, stressed := points[0], points[1]

	// Cloud mediation leaks the sensitive stream; the governed edge
	// plane never does.
	if calm.CloudViolations == 0 {
		t.Fatal("cloud-mediated mode showed no violations")
	}
	if calm.EdgeViolations != 0 || stressed.EdgeViolations != 0 {
		t.Fatalf("edge-governed mode leaked: %d / %d", calm.EdgeViolations, stressed.EdgeViolations)
	}
	// Under WAN partitions, edge availability holds while cloud-path
	// availability degrades.
	if stressed.EdgeAvail < 0.9 {
		t.Fatalf("edge availability %.3f under partitions", stressed.EdgeAvail)
	}
	if stressed.CloudAvail >= stressed.EdgeAvail {
		t.Fatalf("cloud availability %.3f not below edge %.3f", stressed.CloudAvail, stressed.EdgeAvail)
	}
	if FormatFigure4(points) == "" {
		t.Fatal("format empty")
	}
}

func TestFigure5EdgePlacementSustainsHigherR(t *testing.T) {
	points := Figure5(1, []float64{2})
	p := points[0]
	if p.EdgeR < p.CloudR {
		t.Fatalf("edge R %.3f below cloud R %.3f", p.EdgeR, p.CloudR)
	}
	if p.EdgeActions == 0 || p.CloudActions == 0 {
		t.Fatalf("loops idle: edge %d cloud %d", p.EdgeActions, p.CloudActions)
	}
	if FormatFigure5(points) == "" {
		t.Fatal("format empty")
	}
}

func TestAblationA1NativeBeatsBoltOn(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = 8 * time.Minute
	reports := AblationA1(cfg)
	if len(reports) != 3 {
		t.Fatal("wrong report count")
	}
	plain, bolted, native := reports[0], reports[1], reports[2]
	// Bolt-on mechanisms must not beat the native architecture.
	if bolted.GoalPersistence > native.GoalPersistence {
		t.Fatalf("bolt-on R %.3f above native R %.3f", bolted.GoalPersistence, native.GoalPersistence)
	}
	// And native must clearly beat plain ML2.
	if native.GoalPersistence <= plain.GoalPersistence {
		t.Fatalf("native R %.3f not above plain R %.3f", native.GoalPersistence, plain.GoalPersistence)
	}
}

func TestAblationA2EveryMechanismMatters(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = 8 * time.Minute
	variants := AblationA2(cfg)
	if len(variants) != 4 || variants[0].Name != "full" {
		t.Fatalf("variants = %+v", variants)
	}
	full := variants[0].Report
	for _, v := range variants[1:] {
		if v.Report.GoalPersistence > full.GoalPersistence+0.01 {
			t.Fatalf("ablation %q beat the full architecture: %.3f vs %.3f",
				v.Name, v.Report.GoalPersistence, full.GoalPersistence)
		}
	}
	if FormatA2(variants) == "" {
		t.Fatal("format empty")
	}
}

func TestExtensionMobilityHandoverDominates(t *testing.T) {
	points := ExtensionMobility(1, []float64{2, 8})
	for _, p := range points {
		if p.Crossings == 0 {
			t.Fatalf("speed %.1f: no zone crossings", p.SpeedMps)
		}
		if p.HandoverFreshness < 0.95 {
			t.Fatalf("speed %.1f: handover freshness = %.3f", p.SpeedMps, p.HandoverFreshness)
		}
		if p.StaticFreshness > 0.75 {
			t.Fatalf("speed %.1f: static binding freshness = %.3f, should starve the away zone", p.SpeedMps, p.StaticFreshness)
		}
		if p.HandoverFreshness <= p.StaticFreshness {
			t.Fatalf("speed %.1f: handover %.3f not above static %.3f", p.SpeedMps, p.HandoverFreshness, p.StaticFreshness)
		}
	}
	// Faster movement → more crossings.
	if points[1].Crossings <= points[0].Crossings {
		t.Fatalf("crossings did not grow with speed: %d vs %d", points[0].Crossings, points[1].Crossings)
	}
	if FormatMobility(points) == "" {
		t.Fatal("format empty")
	}
}

func TestExtensionCostTradeoff(t *testing.T) {
	cfg := quickCfg()
	points := ExtensionCost(cfg, []time.Duration{2 * time.Second, 16 * time.Second})
	fast, slow := points[0], points[1]
	if fast.Messages <= slow.Messages {
		t.Fatalf("faster sync should cost more traffic: %d vs %d", fast.Messages, slow.Messages)
	}
	if fast.StaleP95 >= slow.StaleP95 {
		t.Fatalf("faster sync should be fresher: %v vs %v", fast.StaleP95, slow.StaleP95)
	}
	if fast.GoalR < slow.GoalR-0.02 {
		t.Fatalf("faster sync should not hurt resilience: %.3f vs %.3f", fast.GoalR, slow.GoalR)
	}
	if FormatCost(points) == "" {
		t.Fatal("format empty")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := Figure3(5, []float64{0.3})
	b := Figure3(5, []float64{0.3})
	if a[0] != b[0] {
		t.Fatalf("Figure3 not deterministic: %+v vs %+v", a[0], b[0])
	}
	fa := Figure4(5, []float64{0.3})
	fb := Figure4(5, []float64{0.3})
	if fa[0] != fb[0] {
		t.Fatalf("Figure4 not deterministic: %+v vs %+v", fa[0], fb[0])
	}
}
