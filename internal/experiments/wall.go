package experiments

import "time"

// wallClock abstracts real time so experiment tests can run without
// flaky wall-clock assertions. Only this package touches real time.
var wallNow = time.Now

// nowWall reads the wall clock.
func nowWall() time.Time { return wallNow() }
