package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/mape"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/space"
)

// Fig5Point compares a MAPE loop placed at the edge against the same
// loop placed in the cloud, at one environment change rate — the
// measured Figure 5: analysis and planning belong close to the
// end-devices.
type Fig5Point struct {
	// ShocksPerMinute is the expected rate of environment shocks.
	ShocksPerMinute float64
	// Persistence of the temperature requirement (ground truth).
	EdgeR  float64
	CloudR float64
	// Mean time to recover the requirement after a shock.
	EdgeMTTR  time.Duration
	CloudMTTR time.Duration
	// Adaptation actions executed by each loop.
	EdgeActions  int
	CloudActions int
}

const (
	fig5Horizon  = 15 * time.Minute
	fig5Step     = time.Second
	fig5Sample   = time.Second
	fig5TempLow  = 18.0
	fig5TempHigh = 26.0
	// Cooling is deliberately fast so that the time to recover from a
	// shock is dominated by *detection and actuation latency* — the
	// quantity that differs between loop placements — rather than by
	// the physics of cooling.
	fig5CoolRate = -2.0
	fig5WANLoss  = 0.10
	fig5Outage   = 0.3 // cloud down 30% of each minute
)

// Figure5 sweeps the shock rate.
func Figure5(seed int64, shocksPerMinute []float64) []Fig5Point {
	out := make([]Fig5Point, 0, len(shocksPerMinute))
	for _, rate := range shocksPerMinute {
		eR, eM, eA := runFig5(seed, rate, true)
		cR, cM, cA := runFig5(seed, rate, false)
		out = append(out, Fig5Point{
			ShocksPerMinute: rate,
			EdgeR:           eR, CloudR: cR,
			EdgeMTTR: eM, CloudMTTR: cM,
			EdgeActions: eA, CloudActions: cA,
		})
	}
	return out
}

// runFig5 executes one placement. The controller is a genuine MAPE-K
// loop: Monitor ingests the latest reading, Analyze evaluates the
// comfort and economy requirements with LTL3 monitors attached, Plan
// emits engage/disengage actions, Execute sends them to the actuator.
func runFig5(seed int64, shocksPerMinute float64, atEdge bool) (persistence float64, mttr time.Duration, actions int) {
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithDefaultLatency(2*time.Millisecond))
	world := env.New(seed + 1)
	const zone = space.ZoneID("z")
	shockProb := shocksPerMinute * fig5Step.Seconds() / 60
	// Strong ambient heating produces a sawtooth workload: the zone
	// heats toward the band's upper edge continuously, so requirement
	// violations recur at a steady rate for every placement and each
	// violation's duration is dominated by the loop's detection and
	// actuation latency — the quantity Figure 5 compares. Shocks add
	// unscheduled disturbances on top.
	world.Define(zone, env.Temperature, env.Process{
		Initial: 22, Drift: 0.2, Noise: 0.02,
		ShockProb: shockProb, ShockMag: 6,
		// The floor equals the band's low end: only upper violations
		// occur, which the cooling actuator can correct.
		Min: fig5TempLow, Max: 60,
	})

	sensorEp := sim.AddNode("sensor")
	actEp := sim.AddNode("actuator")
	edgeEp := sim.AddNode("edge")
	cloudEp := sim.AddNode("cloud")
	for _, id := range []simnet.NodeID{"sensor", "actuator", "edge"} {
		sim.SetLinkBidirectional(id, "cloud", 40*time.Millisecond, fig5WANLoss)
	}

	sensorDev := device.New("sensor", device.Config{Class: device.ClassSensorNode})
	sensor := &device.Sensor{Device: sensorDev, Zone: zone, Variable: env.Temperature, NoiseStd: 0.05}
	actDev := device.New("actuator", device.Config{
		Class: device.ClassActuatorNode, Resources: &device.Resources{Mains: true},
	})
	actuator := &device.Actuator{Device: actDev, Zone: zone, Variable: env.Temperature, Effect: fig5CoolRate}

	// The loop host.
	host := edgeEp
	if !atEdge {
		host = cloudEp
	}

	// Sensor → host: plain periodic readings.
	table := newFig5Table()
	host.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		if item, ok := msg.(dataflow.Item); ok {
			table.put(item)
		}
	})
	sensorEp.Every(fig5Sample, func() {
		v, ok := sensor.Sample(world, sim.Rand().NormFloat64())
		if !ok {
			return
		}
		sensorEp.Send(host.ID(), dataflow.Item{Key: "temp", Value: v, ProducedAt: sim.Now()})
	})

	// Actuator obeys engage commands.
	actEp.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		if engage, ok := msg.(bool); ok {
			actuator.SetEngaged(engage)
		}
	})

	// The MAPE-K loop.
	loop := mape.NewLoop(mape.NewKnowledge("loop", sim.Now), sim.Now)
	loop.AddMonitor(func(k *mape.Knowledge) {
		if item, ok := table.get("temp"); ok {
			if v, isF := item.Value.(float64); isF {
				k.Put("temp", v)
				k.Put("age", float64(sim.Now()-item.ProducedAt))
			}
		}
	})
	// comfort judges the last known temperature (a violation seen on
	// stale data is still the loop's best knowledge); fresh tracks
	// data timeliness separately and plans no actuation — acting on
	// missing data is exactly the failure mode a resilient loop must
	// avoid.
	loop.AddRule(mape.PropRule{Prop: "comfort", Eval: func(k *mape.Knowledge) bool {
		v, ok := k.GetFloat("temp")
		return !ok || v <= fig5TempHigh
	}})
	loop.AddRule(mape.PropRule{Prop: "fresh", Eval: func(k *mape.Knowledge) bool {
		age, ok := k.GetFloat("age")
		return ok && time.Duration(age) <= 5*fig5Sample
	}})
	loop.AddRule(mape.PropRule{Prop: "economy", Eval: func(k *mape.Knowledge) bool {
		engaged, _ := k.Get("engaged")
		v, ok := k.GetFloat("temp")
		return !ok || engaged != true || v > fig5TempLow+3
	}})
	loop.AddRequirement(&model.Requirement{ID: "R-comfort", Prop: "comfort",
		Description: "zone temperature within the comfort band"})
	loop.AddRequirement(&model.Requirement{ID: "R-fresh", Prop: "fresh",
		Description: "readings fresh at the loop"})
	loop.AddRequirement(&model.Requirement{ID: "R-economy", Prop: "economy",
		Description: "cooling disengages once the zone is cool"})
	loop.SetPlanner(func(k *mape.Knowledge, issues []mape.Issue) []mape.Action {
		var out []mape.Action
		for _, is := range issues {
			switch is.Prop {
			case "comfort":
				out = append(out, mape.Action{Name: "engage", Value: true})
			case "economy":
				out = append(out, mape.Action{Name: "engage", Value: false})
			}
		}
		return out
	})
	loop.SetExecutor(func(k *mape.Knowledge, a mape.Action) bool {
		engage, ok := a.Value.(bool)
		if !ok {
			return false
		}
		k.Put("engaged", engage)
		return host.Send("actuator", engage)
	})
	host.Every(fig5Sample, func() {
		loop.Cycle()
		// Re-assert the desired actuation state every cycle: commands
		// are idempotent, so this repairs lost messages and actuator
		// restarts (same mechanism as the core archetypes).
		if e, ok := loop.Knowledge().Get("engaged"); ok {
			if engage, isBool := e.(bool); isBool {
				host.Send("actuator", engage)
			}
		}
	})

	// Cloud outages (only matter for the cloud placement).
	downFor := time.Duration(fig5Outage * float64(time.Minute))
	var outage func(at time.Duration)
	outage = func(at time.Duration) {
		sim.At(at, func() { sim.SetDown("cloud", true) })
		sim.At(at+downFor, func() { sim.SetDown("cloud", false) })
		if next := at + time.Minute; next < fig5Horizon {
			outage(next)
		}
	}
	outage(20 * time.Second)

	// Physics + ground truth sampling.
	trace := &metrics.SatisfactionTrace{}
	var step func()
	step = func() {
		world.Step(fig5Step)
		if sim.NodeUp("actuator") {
			actuator.Apply(world, fig5Step)
		}
		v, _ := world.Value(zone, env.Temperature)
		trace.Record(sim.Now(), v >= fig5TempLow && v <= fig5TempHigh)
		if sim.Now()+fig5Step <= fig5Horizon {
			sim.After(fig5Step, step)
		}
	}
	sim.After(fig5Step, step)

	sim.RunUntil(fig5Horizon)
	st := loop.Stats()
	return trace.TimeWeightedPersistence(fig5Horizon), trace.MTTR(), st.ActionsExecuted
}

// fig5Table is the host's latest-reading cache.
type fig5Table struct {
	items map[string]dataflow.Item
}

func newFig5Table() *fig5Table {
	return &fig5Table{items: make(map[string]dataflow.Item)}
}

func (t *fig5Table) put(item dataflow.Item) {
	if cur, ok := t.items[item.Key]; ok && cur.ProducedAt > item.ProducedAt {
		return
	}
	t.items[item.Key] = item
}

func (t *fig5Table) get(key string) (dataflow.Item, bool) {
	item, ok := t.items[key]
	return item, ok
}

// FormatFigure5 renders the series.
func FormatFigure5(points []Fig5Point) string {
	rows := [][]string{{"shocks/min", "edge_R", "cloud_R", "edge_MTTR", "cloud_MTTR", "edge_acts", "cloud_acts"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.ShocksPerMinute),
			fmt.Sprintf("%.3f", p.EdgeR),
			fmt.Sprintf("%.3f", p.CloudR),
			p.EdgeMTTR.Round(time.Second).String(),
			p.CloudMTTR.Round(time.Second).String(),
			fmt.Sprintf("%d", p.EdgeActions),
			fmt.Sprintf("%d", p.CloudActions),
		})
	}
	return formatTable(rows)
}
