package experiments

import (
	"math/rand"
	"time"
)

// newSeededRand builds a deterministic random source for experiment
// schedules, separate from each simulation's own stream.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// expDur draws an exponential duration with the given mean.
func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
