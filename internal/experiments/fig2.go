package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/verify"
)

// Fig2Point is one step of the verification experiment (Figure 2):
// translating a system facet into an analyzable model and checking
// resilience properties against it, at growing state-space sizes.
type Fig2Point struct {
	Hosts  int
	States int
	// BuildMS and CheckMS are wall-clock costs of model construction
	// and CTL checking.
	BuildMS float64
	CheckMS float64
	// ControlSurvives is the verdict of AG(svc:control) — control
	// availability under the failure assumption.
	ControlSurvives bool
	// Recoverable is the verdict of AG(EF all-up).
	Recoverable bool
}

// redundantConfig builds a configuration with hosts control replicas
// and two sensing hosts.
func redundantConfig(hosts int) *model.Configuration {
	cfg := model.NewConfiguration()
	for i := 0; i < 2; i++ {
		cfg.Add(model.Component{
			ID:   model.ComponentID(fmt.Sprintf("sense-%d", i)),
			Host: fmt.Sprintf("s%d", i), Provides: []model.Service{"sensing"},
		})
	}
	for i := 0; i < hosts; i++ {
		cfg.Add(model.Component{
			ID:   model.ComponentID(fmt.Sprintf("ctrl-%d", i)),
			Host: fmt.Sprintf("e%d", i), Provides: []model.Service{"control"},
			Requires: []model.Service{"sensing"},
		})
	}
	return cfg
}

// Figure2 sweeps the number of control hosts, building the
// bounded-failure Kripke structure (up to maxDown concurrent failures)
// and checking the two resilience properties on it.
func Figure2(hostCounts []int, maxDown int) []Fig2Point {
	out := make([]Fig2Point, 0, len(hostCounts))
	for _, hosts := range hostCounts {
		cfg := redundantConfig(hosts)
		t0 := nowWall()
		k, err := model.FailureKripke(cfg, model.FailureModelOptions{MaxConcurrentFailures: maxDown})
		if err != nil {
			panic(err) // sweep parameters are chosen within the model's limits
		}
		t1 := nowWall()
		ctrl := verify.Check(k, verify.AG(verify.AP(model.ServiceProp("control"))))
		rec := verify.Check(k, verify.AG(verify.EF(verify.AP("all-up"))))
		t2 := nowWall()
		out = append(out, Fig2Point{
			Hosts:           hosts,
			States:          k.NumStates(),
			BuildMS:         float64(t1.Sub(t0).Microseconds()) / 1000,
			CheckMS:         float64(t2.Sub(t1).Microseconds()) / 1000,
			ControlSurvives: ctrl,
			Recoverable:     rec,
		})
	}
	return out
}

// Fig2Quant is one quantitative (PCTL-style) verification point: the
// probability that a disrupted system recovers within k steps, on a
// failure/repair DTMC.
type Fig2Quant struct {
	Steps        int
	PRecover     float64
	SatisfiesP99 bool
}

// Figure2Quantitative analyzes a failure/repair chain (fail 0.05/step,
// repair 0.4/step) for bounded recovery, sweeping the step bound —
// "uncertainty quantification" in the paper's roadmap.
func Figure2Quantitative(bounds []int) []Fig2Quant {
	d := verify.NewDTMC()
	up := d.AddState("up")
	down := d.AddState("down")
	mustProb(d, up, up, 0.95)
	mustProb(d, up, down, 0.05)
	mustProb(d, down, up, 0.4)
	mustProb(d, down, down, 0.6)
	out := make([]Fig2Quant, 0, len(bounds))
	for _, k := range bounds {
		p := d.ReachWithin("up", k)[down]
		out = append(out, Fig2Quant{Steps: k, PRecover: p, SatisfiesP99: p >= 0.99})
	}
	return out
}

func mustProb(d *verify.DTMC, from, to int, p float64) {
	if err := d.SetProb(from, to, p); err != nil {
		panic(err)
	}
}

// FormatFigure2 renders both sub-series.
func FormatFigure2(points []Fig2Point, quants []Fig2Quant) string {
	rows := [][]string{{"ctrl_hosts", "states", "build_ms", "check_ms", "AG(control)", "AG(EF all-up)"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Hosts),
			fmt.Sprintf("%d", p.States),
			fmt.Sprintf("%.2f", p.BuildMS),
			fmt.Sprintf("%.2f", p.CheckMS),
			fmt.Sprintf("%v", p.ControlSurvives),
			fmt.Sprintf("%v", p.Recoverable),
		})
	}
	s := formatTable(rows)
	rows = [][]string{{"bound_k", "P[F<=k up]", "P>=0.99"}}
	for _, q := range quants {
		rows = append(rows, []string{
			fmt.Sprintf("%d", q.Steps),
			fmt.Sprintf("%.4f", q.PRecover),
			fmt.Sprintf("%v", q.SatisfiesP99),
		})
	}
	return s + "\n" + formatTable(rows)
}
