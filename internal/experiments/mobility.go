package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/space"
)

// MobilityPoint compares static-binding against nearest-edge reporting
// with a replicated data plane, for a sensor that physically moves
// between zones — the mobility/handover concern the paper raises for
// runtime self-adaptation (§VII: "the spatial aspect is significant").
type MobilityPoint struct {
	// SpeedMps is the device's speed in meters per second.
	SpeedMps float64
	// Crossings is how many zone boundaries the device crossed.
	Crossings int
	// Freshness of the device's stream at the *current zone's* edge
	// node (the consumer that needs it for local control).
	StaticFreshness   float64
	HandoverFreshness float64
}

const (
	mobilityHorizon  = 10 * time.Minute
	mobilitySample   = time.Second
	mobilityFreshWin = 5 * time.Second
)

// ExtensionMobility sweeps device speed. In "static" mode the mobile
// sensor stays bound to its home gateway (ML1-style vertical binding);
// in "handover" mode it reports to the nearest gateway and the
// gateways synchronize through the governed CRDT data plane
// (ML4-style), so the current zone's edge always has fresh data.
func ExtensionMobility(seed int64, speeds []float64) []MobilityPoint {
	out := make([]MobilityPoint, 0, len(speeds))
	for _, speed := range speeds {
		sFresh, _ := runMobility(seed, speed, false)
		hFresh, crossings := runMobility(seed, speed, true)
		out = append(out, MobilityPoint{
			SpeedMps:          speed,
			Crossings:         crossings,
			StaticFreshness:   sFresh,
			HandoverFreshness: hFresh,
		})
	}
	return out
}

func runMobility(seed int64, speed float64, handover bool) (freshness float64, crossings int) {
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithDefaultLatency(2*time.Millisecond))
	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "campus", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	zones := []space.Zone{
		{ID: "west", Max: space.Point{X: 500, Y: 100}, DomainID: "campus"},
		{ID: "east", Min: space.Point{X: 501}, Max: space.Point{X: 1000, Y: 100}, DomainID: "campus"},
	}
	for _, z := range zones {
		if err := world.AddZone(z); err != nil {
			panic(err)
		}
	}
	world.Place("gw-west", space.Point{X: 250, Y: 50}, "campus")
	world.Place("gw-east", space.Point{X: 750, Y: 50}, "campus")
	world.Place("wearable", space.Point{X: 100, Y: 50}, "campus")

	gwWest := sim.AddNode("gw-west")
	gwEast := sim.AddNode("gw-east")
	sensor := sim.AddNode("wearable")

	// Gateways host governed stores; in handover mode they peer so the
	// stream is available wherever the device roams.
	var westPeers, eastPeers []simnet.NodeID
	if handover {
		westPeers = []simnet.NodeID{"gw-east"}
		eastPeers = []simnet.NodeID{"gw-west"}
	}
	storeWest := dataflow.NewStore(gwWest, world, dataflow.StoreConfig{Peers: westPeers, SyncInterval: mobilitySample})
	storeEast := dataflow.NewStore(gwEast, world, dataflow.StoreConfig{Peers: eastPeers, SyncInterval: mobilitySample})
	storeWest.Start()
	storeEast.Start()
	stores := map[space.ZoneID]*dataflow.Store{"west": storeWest, "east": storeEast}

	// The wearable patrols between the two zones.
	mover, err := space.NewMover(world, "wearable", speed, true,
		space.Point{X: 900, Y: 50}, space.Point{X: 100, Y: 50})
	if err != nil {
		panic(err)
	}

	// Reporting: fixed home gateway (static) or nearest gateway
	// (handover).
	gwIDs := []string{"gw-west", "gw-east"}
	sensor.Every(mobilitySample, func() {
		target := simnet.NodeID("gw-west")
		if handover {
			ordered := world.NearestOrder("wearable", gwIDs)
			target = simnet.NodeID(ordered[0])
		}
		sensor.Send(target, dataflow.Item{
			Key: "wearable/hr", Value: 72.0,
			Label:      dataflow.Label{Topic: "vitals", Sensitivity: dataflow.Sensitive, Origin: "campus", Jurisdiction: space.JurisdictionGDPR},
			ProducedAt: sim.Now(),
		})
	})
	gwWest.OnMessage(muxStoreAndReadings(storeWest))
	gwEast.OnMessage(muxStoreAndReadings(storeEast))

	// Physics: movement + freshness sampling at the current zone's
	// store.
	var fresh metrics.Ratio
	var step func()
	step = func() {
		if mover.Step(mobilitySample) {
			crossings++
		}
		zone, ok := world.ZoneOf("wearable")
		if ok {
			st := stores[zone.ID]
			age, hasIt := st.Staleness("wearable/hr")
			fresh.RecordOutcome(hasIt && age <= mobilityFreshWin)
		}
		if sim.Now()+mobilitySample <= mobilityHorizon {
			sim.After(mobilitySample, step)
		}
	}
	sim.After(30*time.Second, step)

	sim.RunUntil(mobilityHorizon)
	return fresh.Value(), crossings
}

// muxStoreAndReadings routes plain reading items into the store while
// leaving store-sync traffic to the store's own handler. The store
// installed its handler on the endpoint at construction; we wrap it.
func muxStoreAndReadings(st *dataflow.Store) simnet.Handler {
	inner := st.Handler()
	return func(from simnet.NodeID, msg simnet.Message) {
		if item, ok := msg.(dataflow.Item); ok {
			st.Put(item)
			return
		}
		inner(from, msg)
	}
}

// FormatMobility renders the series.
func FormatMobility(points []MobilityPoint) string {
	rows := [][]string{{"speed_mps", "crossings", "static_fresh", "handover_fresh"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.SpeedMps),
			fmt.Sprintf("%d", p.Crossings),
			fmt.Sprintf("%.3f", p.StaticFreshness),
			fmt.Sprintf("%.3f", p.HandoverFreshness),
		})
	}
	return formatTable(rows)
}
