// Package experiments regenerates every evaluation artifact of the
// paper as a measured experiment: the Table 1/2 maturity matrix and
// one experiment per figure (F1–F5), plus two ablations (A1, A2) for
// the roadmap's design claims. Each experiment returns typed rows and
// a formatted table; the repository-root benchmarks and cmd/riotbench
// drive them. Wall-clock timing is confined to this package — the
// library itself runs purely on virtual time.
package experiments

import (
	"fmt"
	"strings"
)

// formatTable renders rows of cells as an aligned text table with a
// header separator.
func formatTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
