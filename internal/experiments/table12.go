package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Table12 runs the maturity matrix — the measured reproduction of the
// paper's Tables 1 and 2: every archetype against the same workload
// and standard disruption schedule.
func Table12(cfg core.ScenarioConfig) []core.Report {
	return core.RunMatrix(cfg)
}

// FormatTable12 renders the matrix.
func FormatTable12(reports []core.Report) string {
	return core.FormatReports(reports)
}

// ArchetypeStats aggregates the headline resilience metric across
// several seeds for one archetype.
type ArchetypeStats struct {
	Archetype core.Archetype
	Runs      int
	MeanR     float64
	MinR      float64
	MaxR      float64
	StdDevR   float64
}

// Table12Stats runs the maturity matrix at each seed and aggregates
// goal persistence per archetype — the statistical version of the
// Table 1/2 experiment, guarding the headline ordering against
// single-schedule luck. It is the serial entry point over
// MatrixCampaign; pass workers > 1 to MatrixCampaign directly for the
// concurrent version.
func Table12Stats(cfg core.ScenarioConfig, seeds []int64) []ArchetypeStats {
	runs, err := MatrixCampaign(cfg, seeds, 1)
	if err != nil {
		// Jobs only fail by panicking; re-raise rather than swallow.
		panic(err)
	}
	return StatsFromRuns(runs)
}

// statsFromSamples reduces per-archetype samples to the aggregate rows,
// in canonical archetype order.
func statsFromSamples(byArch map[core.Archetype][]float64) []ArchetypeStats {
	out := make([]ArchetypeStats, 0, len(byArch))
	for _, a := range core.AllArchetypes() {
		rs := byArch[a]
		if len(rs) == 0 {
			continue
		}
		st := ArchetypeStats{Archetype: a, Runs: len(rs), MinR: rs[0], MaxR: rs[0]}
		sum := 0.0
		for _, r := range rs {
			sum += r
			if r < st.MinR {
				st.MinR = r
			}
			if r > st.MaxR {
				st.MaxR = r
			}
		}
		st.MeanR = sum / float64(len(rs))
		varSum := 0.0
		for _, r := range rs {
			d := r - st.MeanR
			varSum += d * d
		}
		st.StdDevR = math.Sqrt(varSum / float64(len(rs)))
		out = append(out, st)
	}
	return out
}

// FormatTable12Stats renders the aggregate.
func FormatTable12Stats(stats []ArchetypeStats) string {
	rows := [][]string{{"archetype", "runs", "mean_R", "min_R", "max_R", "stddev"}}
	for _, s := range stats {
		rows = append(rows, []string{
			s.Archetype.String(),
			fmt.Sprintf("%d", s.Runs),
			fmt.Sprintf("%.3f", s.MeanR),
			fmt.Sprintf("%.3f", s.MinR),
			fmt.Sprintf("%.3f", s.MaxR),
			fmt.Sprintf("%.3f", s.StdDevR),
		})
	}
	return formatTable(rows)
}

// AblationA1 compares bolt-on resilience (ML2 hardened with QoS-1
// retries and aggressive re-subscription) against native ML4 — the
// roadmap's claim that resilience must be built into the core, not
// added on.
func AblationA1(cfg core.ScenarioConfig) []core.Report {
	plain := core.NewSystem(cfg, core.ML2).Run()
	hardened := cfg
	hardened.BoltOnResilience = true
	bolted := core.NewSystem(hardened, core.ML2).Run()
	native := core.NewSystem(cfg, core.ML4).Run()
	return []core.Report{plain, bolted, native}
}

// A2Variant names one ML4 ablation.
type A2Variant struct {
	Name   string
	Report core.Report
}

// AblationA2 removes one decentralization mechanism of ML4 at a time:
// sensor failover, placement healing, CRDT data synchronization.
func AblationA2(cfg core.ScenarioConfig) []A2Variant {
	variants := []string{"", "no-failover", "no-replan", "no-sync"}
	out := make([]A2Variant, 0, len(variants))
	for _, v := range variants {
		c := cfg
		c.ML4Ablation = v
		name := v
		if name == "" {
			name = "full"
		}
		out = append(out, A2Variant{Name: name, Report: core.NewSystem(c, core.ML4).Run()})
	}
	return out
}

// FormatA2 renders the ablation reports with variant names prefixed.
func FormatA2(variants []A2Variant) string {
	rows := [][]string{{"variant", "R(goal)", "R(temp)", "invoke", "dataAvail", "privViol"}}
	for _, v := range variants {
		r := v.Report
		rows = append(rows, []string{
			v.Name,
			fmt.Sprintf("%.3f", r.GoalPersistence),
			fmt.Sprintf("%.3f", r.TempPersistence),
			fmt.Sprintf("%.3f", r.InvocationSuccess),
			fmt.Sprintf("%.3f", r.DataAvailability),
			fmt.Sprintf("%d", r.PrivacyViolations),
		})
	}
	return formatTable(rows)
}
