package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Fig3Point compares centralized (cloud) against decentralized
// (edge-consensus) control at one cloud-downtime level — the measured
// Figure 3: the edge as a coordinated control agent that keeps issuing
// control actions when central control is unreachable.
type Fig3Point struct {
	CloudDowntime float64 // fraction of time the cloud is down
	// Success rates: fraction of control periods whose action reached
	// the actuator.
	CentralizedSuccess   float64
	DecentralizedSuccess float64
	// P95 action latency (issue → actuator), successful periods only.
	CentralizedP95   time.Duration
	DecentralizedP95 time.Duration
}

// fig3Action is the control command counted at the actuator.
type fig3Action struct {
	Period   int
	IssuedAt time.Duration
}

func (fig3Action) Size() int { return 16 }

// fig3Params fixes the workload shape.
const (
	fig3EdgeNodes     = 5
	fig3Period        = time.Second
	fig3Horizon       = 10 * time.Minute
	fig3OutageCycle   = time.Minute
	fig3EdgeCrashMTBF = 3 * time.Minute
	fig3EdgeRepair    = 20 * time.Second
)

// Figure3 sweeps cloud downtime and measures both control modes. Edge
// nodes additionally crash and recover randomly in both modes, so the
// decentralized variant also demonstrates leader re-election.
func Figure3(seed int64, downtimes []float64) []Fig3Point {
	out := make([]Fig3Point, 0, len(downtimes))
	for _, d := range downtimes {
		cSucc, cLat := runFig3(seed, d, false)
		dSucc, dLat := runFig3(seed, d, true)
		out = append(out, Fig3Point{
			CloudDowntime:        d,
			CentralizedSuccess:   cSucc,
			DecentralizedSuccess: dSucc,
			CentralizedP95:       cLat,
			DecentralizedP95:     dLat,
		})
	}
	return out
}

// runFig3 executes one mode at one downtime level.
func runFig3(seed int64, downtime float64, decentralized bool) (success float64, p95 time.Duration) {
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithDefaultLatency(2*time.Millisecond))

	// Topology: one actuator, fig3EdgeNodes edge nodes, one cloud.
	actuator := sim.AddNode("actuator")
	var edgeIDs []simnet.NodeID
	var edgeEps []*simnet.Endpoint
	for i := 0; i < fig3EdgeNodes; i++ {
		id := simnet.NodeID(fmt.Sprintf("e%d", i))
		edgeIDs = append(edgeIDs, id)
		edgeEps = append(edgeEps, sim.AddNode(id))
	}
	cloud := sim.AddNode("cloud")
	for _, id := range append(append([]simnet.NodeID{}, edgeIDs...), "actuator") {
		sim.SetLinkBidirectional(id, "cloud", 40*time.Millisecond, 0)
	}

	// Actuator counts unique periods served.
	served := make(map[int]time.Duration) // period → first arrival latency
	actuator.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		a, ok := msg.(fig3Action)
		if !ok {
			return
		}
		if _, dup := served[a.Period]; !dup {
			served[a.Period] = sim.Now() - a.IssuedAt
		}
	})

	period := func() int { return int(sim.Now() / fig3Period) }

	if decentralized {
		nodes := make([]*consensus.Node, fig3EdgeNodes)
		for i, ep := range edgeEps {
			nodes[i] = consensus.New(ep, edgeIDs, consensus.Config{}, nil)
			nodes[i].Start()
		}
		for i, ep := range edgeEps {
			n := nodes[i]
			ep.Every(fig3Period, func() {
				if n.Role() == consensus.Leader {
					ep.Send("actuator", fig3Action{Period: period(), IssuedAt: sim.Now()})
				}
			})
		}
	} else {
		cloud.Every(fig3Period, func() {
			cloud.Send("actuator", fig3Action{Period: period(), IssuedAt: sim.Now()})
		})
	}

	// Cloud outages with the requested duty cycle.
	if downtime > 0 {
		downFor := time.Duration(downtime * float64(fig3OutageCycle))
		var cycle func(at time.Duration)
		cycle = func(at time.Duration) {
			sim.At(at, func() { sim.SetDown("cloud", true) })
			sim.At(at+downFor, func() { sim.SetDown("cloud", false) })
			if next := at + fig3OutageCycle; next < fig3Horizon {
				cycle(next)
			}
		}
		cycle(10 * time.Second)
	}

	// Random edge crashes (same schedule in both modes).
	crashRNG := newSeededRand(seed + 7)
	for _, id := range edgeIDs {
		t := expDur(crashRNG, fig3EdgeCrashMTBF)
		for t < fig3Horizon {
			id := id
			at := t
			sim.At(at, func() { sim.SetDown(id, true) })
			sim.At(at+fig3EdgeRepair, func() { sim.SetDown(id, false) })
			t += fig3EdgeRepair + expDur(crashRNG, fig3EdgeCrashMTBF)
		}
	}

	sim.RunUntil(fig3Horizon)

	expected := int(fig3Horizon / fig3Period)
	lat := &metrics.LatencyRecorder{}
	hits := 0
	for p, l := range served {
		if p >= 0 && p < expected {
			hits++
			lat.Record(l)
		}
	}
	return float64(hits) / float64(expected), lat.Percentile(95)
}

// FormatFigure3 renders the series.
func FormatFigure3(points []Fig3Point) string {
	rows := [][]string{{"cloud_down", "central_ok", "decentral_ok", "central_p95", "decentral_p95"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.CloudDowntime*100),
			fmt.Sprintf("%.3f", p.CentralizedSuccess),
			fmt.Sprintf("%.3f", p.DecentralizedSuccess),
			p.CentralizedP95.Round(time.Millisecond).String(),
			p.DecentralizedP95.Round(time.Millisecond).String(),
		})
	}
	return formatTable(rows)
}
