package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Fig1Point is one scale step of the landscape experiment (Figure 1):
// how large a heterogeneous IoT deployment the substrate sustains.
type Fig1Point struct {
	Zones      int
	Devices    int
	VirtualSec float64
	WallMS     float64
	Messages   int
	// MsgPerWallSec is simulator throughput: delivered messages per
	// wall-clock second.
	MsgPerWallSec float64
	// SpeedUp is virtual seconds simulated per wall second.
	SpeedUp float64
}

// Figure1 runs the edge-centric archetype at growing zone counts for a
// fixed virtual horizon and reports simulator capacity. The paper's
// Figure 1 is the qualitative landscape; the measured counterpart
// shows the substrate hosting thousands of heterogeneous entities.
func Figure1(seed int64, zoneCounts []int, horizon time.Duration) []Fig1Point {
	if horizon <= 0 {
		horizon = time.Minute
	}
	out := make([]Fig1Point, 0, len(zoneCounts))
	for _, zones := range zoneCounts {
		cfg := core.DefaultScenario()
		cfg.Seed = seed
		cfg.Zones = zones
		cfg.Duration = horizon
		cfg.Preset = core.FaultsNone
		sys := core.NewSystem(cfg, core.ML3)
		start := nowWall()
		r := sys.Run()
		wall := nowWall().Sub(start)
		// Per zone: TempSensorsPerZone sensors + occupancy + actuator
		// + gateway; plus shared cloudlets and the cloud node.
		devices := zones*(cfg.TempSensorsPerZone+3) + cfg.Cloudlets + 1
		p := Fig1Point{
			Zones:      zones,
			Devices:    devices,
			VirtualSec: horizon.Seconds(),
			WallMS:     float64(wall.Microseconds()) / 1000,
			Messages:   r.Messages,
		}
		if wall > 0 {
			p.MsgPerWallSec = float64(r.Messages) / wall.Seconds()
			p.SpeedUp = horizon.Seconds() / wall.Seconds()
		}
		out = append(out, p)
	}
	return out
}

// FormatFigure1 renders the series.
func FormatFigure1(points []Fig1Point) string {
	rows := [][]string{{"zones", "devices", "virtual_s", "wall_ms", "messages", "msg/wall_s", "speedup"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Zones),
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%.0f", p.VirtualSec),
			fmt.Sprintf("%.1f", p.WallMS),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%.0f", p.MsgPerWallSec),
			fmt.Sprintf("%.0fx", p.SpeedUp),
		})
	}
	return formatTable(rows)
}
