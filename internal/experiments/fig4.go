package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/space"
)

// Fig4Point compares cloud-mediated against edge-governed data flows
// at one WAN-partition intensity — the measured Figure 4: privacy,
// timeliness and availability of inter-IoT data exchange.
type Fig4Point struct {
	PartitionDuty float64
	// Availability: fraction of samples where the consumer had fresh
	// data (public + sensitive streams).
	CloudAvail float64
	EdgeAvail  float64
	// Staleness p95 of data present at the consumer.
	CloudStaleP95 time.Duration
	EdgeStaleP95  time.Duration
	// PrivacyViolations: sensitive items observed outside their
	// jurisdiction.
	CloudViolations int
	EdgeViolations  int
}

const (
	fig4Horizon  = 10 * time.Minute
	fig4Interval = time.Second
	fig4FreshWin = 5 * time.Second
	fig4Cycle    = time.Minute
)

// Figure4 sweeps the fraction of time the WAN to the cloud is
// partitioned away.
func Figure4(seed int64, duties []float64) []Fig4Point {
	out := make([]Fig4Point, 0, len(duties))
	for _, duty := range duties {
		ca, cs, cv := runFig4(seed, duty, false)
		ea, es, ev := runFig4(seed, duty, true)
		out = append(out, Fig4Point{
			PartitionDuty: duty,
			CloudAvail:    ca, EdgeAvail: ea,
			CloudStaleP95: cs, EdgeStaleP95: es,
			CloudViolations: cv, EdgeViolations: ev,
		})
	}
	return out
}

// runFig4 executes one mode: edgeGoverned synchronizes producer→
// consumer directly under an enforcing policy engine; the cloud
// mediated mode relays everything through the cloud under an
// observe-only engine (no governance).
func runFig4(seed int64, duty float64, edgeGoverned bool) (avail float64, staleP95 time.Duration, violations int) {
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithDefaultLatency(2*time.Millisecond))
	m := space.NewMap()
	m.AddDomain(space.Domain{ID: "eu", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	m.AddDomain(space.Domain{ID: "cloudprov", Jurisdiction: space.JurisdictionCCPA, Trusted: true})
	m.Place("producer", space.Point{X: 0, Y: 0}, "eu")
	m.Place("consumer", space.Point{X: 50, Y: 0}, "eu")
	m.Place("cloud", space.Point{X: 500, Y: 500}, "cloudprov")

	prodEp := sim.AddNode("producer")
	consEp := sim.AddNode("consumer")
	cloudEp := sim.AddNode("cloud")
	sim.SetLinkBidirectional("producer", "cloud", 40*time.Millisecond, 0)
	sim.SetLinkBidirectional("consumer", "cloud", 40*time.Millisecond, 0)

	engine := dataflow.ObservedEngine
	if edgeGoverned {
		engine = dataflow.DefaultPrivacyEngine
	}
	var prodPeers []simnet.NodeID
	if edgeGoverned {
		prodPeers = []simnet.NodeID{"consumer", "cloud"}
	} else {
		prodPeers = []simnet.NodeID{"cloud"}
	}
	producer := dataflow.NewStore(prodEp, m, dataflow.StoreConfig{
		Peers: prodPeers, SyncInterval: fig4Interval, Engine: engine(),
	})
	var cloudPeers []simnet.NodeID
	if !edgeGoverned {
		cloudPeers = []simnet.NodeID{"consumer"} // relay downstream
	}
	cloudStore := dataflow.NewStore(cloudEp, m, dataflow.StoreConfig{
		Peers: cloudPeers, SyncInterval: fig4Interval, Engine: engine(),
	})
	consumer := dataflow.NewStore(consEp, m, dataflow.StoreConfig{
		SyncInterval: fig4Interval, Engine: engine(),
	})
	producer.Start()
	cloudStore.Start()
	consumer.Start()

	// Privacy auditing: sensitive items observed at the cloud.
	auditor := dataflow.ObservedEngine()
	euDom, _ := m.Domain("eu")
	cloudDom, _ := m.Domain("cloudprov")
	cloudStore.OnApply(func(item dataflow.Item, _ simnet.NodeID) {
		auditor.Admit(dataflow.FlowContext{Item: item, From: euDom, To: cloudDom}, sim.Now())
	})

	// Producer writes a public and a sensitive stream every interval.
	prodEp.Every(fig4Interval, func() {
		now := sim.Now()
		producer.Put(dataflow.Item{
			Key: "temp", Value: 21.0,
			Label:      dataflow.Label{Topic: "temperature", Sensitivity: dataflow.Public, Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
			ProducedAt: now,
		})
		producer.Put(dataflow.Item{
			Key: "occ", Value: 3.0,
			Label:      dataflow.Label{Topic: "occupancy", Sensitivity: dataflow.Sensitive, Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
			ProducedAt: now,
		})
	})

	// WAN partitions: the cloud is severed from the edge for
	// duty×cycle of every cycle.
	if duty > 0 {
		downFor := time.Duration(duty * float64(fig4Cycle))
		var cycle func(at time.Duration)
		cycle = func(at time.Duration) {
			sim.At(at, func() {
				sim.Partition([]simnet.NodeID{"producer", "consumer"}, []simnet.NodeID{"cloud"})
			})
			sim.At(at+downFor, func() { sim.HealPartition() })
			if next := at + fig4Cycle; next < fig4Horizon {
				cycle(next)
			}
		}
		cycle(10 * time.Second)
	}

	// Sample consumer-side availability and staleness.
	var availRatio metrics.Ratio
	stale := &metrics.LatencyRecorder{}
	var sample func()
	sample = func() {
		for _, key := range []string{"temp", "occ"} {
			st, ok := consumer.Staleness(key)
			fresh := ok && st <= fig4FreshWin
			// The edge-governed mode *must* deliver the sensitive
			// stream too (same jurisdiction); the cloud-mediated mode
			// delivers it only by violating policy — both facts are
			// measured as-is.
			availRatio.RecordOutcome(fresh)
			if ok {
				stale.Record(st)
			}
		}
		if sim.Now()+fig4Interval <= fig4Horizon {
			sim.After(fig4Interval, sample)
		}
	}
	sim.After(30*time.Second, sample) // settle-in

	sim.RunUntil(fig4Horizon)
	return availRatio.Value(), stale.Percentile(95), len(auditor.Violations())
}

// FormatFigure4 renders the series.
func FormatFigure4(points []Fig4Point) string {
	rows := [][]string{{"wan_down", "cloud_avail", "edge_avail", "cloud_p95", "edge_p95", "cloud_viol", "edge_viol"}}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.PartitionDuty*100),
			fmt.Sprintf("%.3f", p.CloudAvail),
			fmt.Sprintf("%.3f", p.EdgeAvail),
			p.CloudStaleP95.Round(time.Millisecond).String(),
			p.EdgeStaleP95.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", p.CloudViolations),
			fmt.Sprintf("%d", p.EdgeViolations),
		})
	}
	return formatTable(rows)
}
