package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Job is one unit of work for the experiment worker pool. Run receives
// the index of the worker executing it, so jobs can attribute their
// observability output (traces, metrics) to the worker that produced
// it.
type Job struct {
	ID  string
	Run func(worker int) error
}

// RunPool executes jobs on a pool of workers. Workers claim jobs in
// submission order via an atomic cursor; the first failing job stops
// the pool from dispatching further work (jobs already in flight
// finish), and its error is returned — by job order, so the reported
// error is deterministic even when several jobs fail concurrently.
// A panicking job is recovered and reported as that job's error.
//
// workers <= 0 selects GOMAXPROCS. With workers == 1 the pool degrades
// to a plain in-order loop, which is the serial baseline the
// determinism checks compare against.
func RunPool(workers int, jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, len(jobs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := runJob(jobs[i], worker); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("job %s: %w", jobs[i].ID, err)
		}
	}
	return nil
}

// runJob executes one job, converting a panic into an error so a
// single bad scenario cannot take down the whole campaign.
func runJob(j Job, worker int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return j.Run(worker)
}

// SeedRun is one seed's full maturity matrix: the reports and journal
// hashes in archetype order, plus which worker executed each run.
type SeedRun struct {
	Seed    int64
	Reports []core.Report
	Hashes  []string
	Workers []int
}

// RunObserver is called with every System a campaign constructs,
// before the run starts. Observers attach per-run instrumentation —
// e.g. a trace collector whose PID is the worker index.
type RunObserver func(worker int, seed int64, arch core.Archetype, sys *core.System)

// CampaignOption configures MatrixCampaign.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	observer RunObserver
}

// WithRunObserver registers fn on the campaign. It runs on the worker
// goroutine that owns the run, so it may touch the System freely until
// Run starts.
func WithRunObserver(fn RunObserver) CampaignOption {
	return func(c *campaignConfig) { c.observer = fn }
}

// MatrixCampaign fans the maturity matrix across seeds and workers:
// one job per (seed, archetype), each running a self-contained
// simulation. Every simulation owns its world — simulator, RNG, bus —
// so the journals (and their hashes) are byte-identical whether the
// campaign runs on one worker or many; only wall-clock time changes.
// Results are written into per-job slots, so no locking is needed.
func MatrixCampaign(cfg core.ScenarioConfig, seeds []int64, workers int, opts ...CampaignOption) ([]SeedRun, error) {
	var cc campaignConfig
	for _, opt := range opts {
		opt(&cc)
	}
	archs := core.AllArchetypes()
	runs := make([]SeedRun, len(seeds))
	jobs := make([]Job, 0, len(seeds)*len(archs))
	for si, seed := range seeds {
		runs[si] = SeedRun{
			Seed:    seed,
			Reports: make([]core.Report, len(archs)),
			Hashes:  make([]string, len(archs)),
			Workers: make([]int, len(archs)),
		}
		for ai, arch := range archs {
			si, ai, arch := si, ai, arch
			c := cfg
			c.Seed = seed
			jobs = append(jobs, Job{
				ID: fmt.Sprintf("seed%d/%s", seed, arch),
				Run: func(worker int) error {
					sys := core.NewSystem(c, arch)
					if cc.observer != nil {
						cc.observer(worker, seed, arch, sys)
					}
					runs[si].Reports[ai] = sys.Run()
					runs[si].Hashes[ai] = sys.JournalHash()
					runs[si].Workers[ai] = worker
					return nil
				},
			})
		}
	}
	if err := RunPool(workers, jobs); err != nil {
		return nil, err
	}
	return runs, nil
}

// StatsFromRuns aggregates goal persistence per archetype from
// campaign results — the same statistic Table12Stats computes, without
// re-running anything.
func StatsFromRuns(runs []SeedRun) []ArchetypeStats {
	byArch := make(map[core.Archetype][]float64)
	for _, run := range runs {
		for _, r := range run.Reports {
			byArch[r.Archetype] = append(byArch[r.Archetype], r.GoalPersistence)
		}
	}
	return statsFromSamples(byArch)
}
