package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func shortCfg() core.ScenarioConfig {
	cfg := core.DefaultScenario()
	cfg.Duration = 3 * time.Minute
	return cfg
}

func TestRunPoolRunsAllJobs(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(int) error {
			ran.Add(1)
			return nil
		}}
	}
	for _, workers := range []int{1, 4, 0, 100} {
		ran.Store(0)
		if err := RunPool(workers, jobs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := ran.Load(); got != 20 {
			t.Fatalf("workers=%d ran %d jobs, want 20", workers, got)
		}
	}
}

func TestRunPoolEmpty(t *testing.T) {
	if err := RunPool(4, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunPoolCancelsOnFirstError pins the serial semantics: with one
// worker, jobs after the failing one must never start.
func TestRunPoolCancelsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	jobs := []Job{
		{ID: "ok", Run: func(int) error { return nil }},
		{ID: "fail", Run: func(int) error { return boom }},
		{ID: "late", Run: func(int) error { after.Add(1); return nil }},
		{ID: "later", Run: func(int) error { after.Add(1); return nil }},
	}
	err := RunPool(1, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "fail") {
		t.Fatalf("err %q does not name the failing job", err)
	}
	if after.Load() != 0 {
		t.Fatalf("%d jobs ran after the failure with one worker", after.Load())
	}
}

// With many workers the pool must still stop dispatching after a
// failure: at most the jobs already claimed may run.
func TestRunPoolStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	jobs := make([]Job, 200)
	jobs[0] = Job{ID: "fail", Run: func(int) error { return boom }}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(int) error {
			ran.Add(1)
			return nil
		}}
	}
	err := RunPool(4, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got >= int64(len(jobs)-1) {
		t.Fatalf("pool kept dispatching after the error: %d jobs ran", got)
	}
}

func TestRunPoolRecoversPanic(t *testing.T) {
	jobs := []Job{
		{ID: "kaboom", Run: func(int) error { panic("scenario exploded") }},
	}
	err := RunPool(2, jobs)
	if err == nil {
		t.Fatal("panicking job returned nil error")
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "scenario exploded") {
		t.Fatalf("err = %q, want job ID and panic value", err)
	}
}

// TestMatrixCampaignParallelMatchesSerial is the engine's core
// guarantee: same seeds, one worker vs many, byte-identical journal
// hashes and identical reports.
func TestMatrixCampaignParallelMatchesSerial(t *testing.T) {
	cfg := shortCfg()
	seeds := []int64{1, 7}

	serial, err := MatrixCampaign(cfg, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MatrixCampaign(cfg, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Seed != p.Seed {
			t.Fatalf("seed order differs at %d: %d vs %d", i, s.Seed, p.Seed)
		}
		for j := range s.Hashes {
			if s.Hashes[j] == "" {
				t.Fatalf("seed %d run %d: empty journal hash", s.Seed, j)
			}
			if s.Hashes[j] != p.Hashes[j] {
				t.Fatalf("seed %d archetype %d: serial hash %s != parallel hash %s",
					s.Seed, j, s.Hashes[j], p.Hashes[j])
			}
			if s.Reports[j] != p.Reports[j] {
				t.Fatalf("seed %d archetype %d: reports differ", s.Seed, j)
			}
		}
	}

	// The aggregate derived from campaign results must match the
	// serial Table12Stats path.
	fromRuns := StatsFromRuns(parallel)
	direct := Table12Stats(cfg, seeds)
	if len(fromRuns) != len(direct) {
		t.Fatalf("stats row counts differ: %d vs %d", len(fromRuns), len(direct))
	}
	for i := range fromRuns {
		if fromRuns[i] != direct[i] {
			t.Fatalf("stats row %d differs: %+v vs %+v", i, fromRuns[i], direct[i])
		}
	}
}

// TestMatrixCampaignWorkerAttribution checks the observer hook and the
// recorded worker indices: with one worker everything belongs to
// worker 0, and a trace collector attached per run carries the
// worker-derived PID.
func TestMatrixCampaignWorkerAttribution(t *testing.T) {
	cfg := shortCfg()
	var observed atomic.Int64
	runs, err := MatrixCampaign(cfg, []int64{1}, 1, WithRunObserver(
		func(worker int, seed int64, arch core.Archetype, sys *core.System) {
			observed.Add(1)
			tc := obs.Collect(sys.Bus())
			tc.SetPID(worker + 1)
			if worker != 0 {
				t.Errorf("worker = %d with a single-worker pool", worker)
			}
			if seed != 1 {
				t.Errorf("seed = %d, want 1", seed)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if observed.Load() != int64(len(core.AllArchetypes())) {
		t.Fatalf("observer ran %d times, want %d", observed.Load(), len(core.AllArchetypes()))
	}
	for _, w := range runs[0].Workers {
		if w != 0 {
			t.Fatalf("recorded workers = %v, want all 0", runs[0].Workers)
		}
	}
}
