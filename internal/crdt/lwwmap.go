package crdt

import (
	"slices"
	"sort"
	"strings"
	"time"
)

// LWWMap is a last-writer-wins key/value map — the workhorse of the
// data plane: each key behaves as an LWWRegister, and replicas converge
// by exchanging either full state or deltas (entries newer than a known
// timestamp). Deletes are tombstoned writes so they propagate.
type LWWMap struct {
	replica ReplicaID
	entries map[string]mapEntry
	maxTs   time.Duration // newest write time; exact, since entries never regress
}

// mapEntry is one key's LWW state.
type mapEntry struct {
	Value   any
	Ts      time.Duration
	Replica ReplicaID
	Deleted bool
}

// wins reports whether (ts, r) supersedes the entry.
func (e mapEntry) wins(ts time.Duration, r ReplicaID) bool {
	if ts != e.Ts {
		return ts > e.Ts
	}
	return r > e.Replica
}

// Entry is an exported snapshot of one key's state, used for deltas.
type Entry struct {
	Key     string
	Value   any
	Ts      time.Duration
	Replica ReplicaID
	Deleted bool
}

// NewLWWMap returns an empty map owned by replica r.
func NewLWWMap(r ReplicaID) *LWWMap {
	return &LWWMap{replica: r, entries: make(map[string]mapEntry)}
}

// Replica returns the owning replica ID.
func (m *LWWMap) Replica() ReplicaID { return m.replica }

// Set writes key=value at timestamp ts on behalf of the local replica.
// It reports whether the write won against the current state.
func (m *LWWMap) Set(key string, value any, ts time.Duration) bool {
	return m.apply(Entry{Key: key, Value: value, Ts: ts, Replica: m.replica})
}

// Delete tombstones the key at ts. It reports whether the delete won.
func (m *LWWMap) Delete(key string, ts time.Duration) bool {
	return m.apply(Entry{Key: key, Ts: ts, Replica: m.replica, Deleted: true})
}

// apply merges one entry (local or remote) into the map.
func (m *LWWMap) apply(e Entry) bool {
	cur, ok := m.entries[e.Key]
	if ok && !cur.wins(e.Ts, e.Replica) {
		return false
	}
	m.entries[e.Key] = mapEntry{Value: e.Value, Ts: e.Ts, Replica: e.Replica, Deleted: e.Deleted}
	if e.Ts > m.maxTs {
		m.maxTs = e.Ts
	}
	return true
}

// Wins reports whether applying e would supersede the key's current
// state, without mutating the map — the read-only pre-check for apply.
func (m *LWWMap) Wins(e Entry) bool {
	cur, ok := m.entries[e.Key]
	return !ok || cur.wins(e.Ts, e.Replica)
}

// Get returns the live value for key.
func (m *LWWMap) Get(key string) (any, bool) {
	e, ok := m.entries[key]
	if !ok || e.Deleted {
		return nil, false
	}
	return e.Value, true
}

// Timestamp returns the winning write time for key (including deletes),
// and false if the key was never written.
func (m *LWWMap) Timestamp(key string) (time.Duration, bool) {
	e, ok := m.entries[key]
	if !ok {
		return 0, false
	}
	return e.Ts, true
}

// Keys returns the live keys, sorted.
func (m *LWWMap) Keys() []string {
	var out []string
	for k, e := range m.entries {
		if !e.Deleted {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (m *LWWMap) Len() int {
	n := 0
	for _, e := range m.entries {
		if !e.Deleted {
			n++
		}
	}
	return n
}

// State exports every entry (including tombstones), sorted by key, for
// full-state synchronization.
func (m *LWWMap) State() []Entry {
	out := make([]Entry, 0, len(m.entries))
	for k, e := range m.entries {
		out = append(out, Entry{Key: k, Value: e.Value, Ts: e.Ts, Replica: e.Replica, Deleted: e.Deleted})
	}
	slices.SortFunc(out, func(a, b Entry) int { return strings.Compare(a.Key, b.Key) })
	return out
}

// Entry exports one key's state (including tombstones) as a delta
// entry, for callers that track their own change sets.
func (m *LWWMap) Entry(key string) (Entry, bool) {
	e, ok := m.entries[key]
	if !ok {
		return Entry{}, false
	}
	return Entry{Key: key, Value: e.Value, Ts: e.Ts, Replica: e.Replica, Deleted: e.Deleted}, true
}

// Since exports entries with a write time strictly after ts — a delta
// for incremental anti-entropy.
func (m *LWWMap) Since(ts time.Duration) []Entry {
	out := make([]Entry, 0, len(m.entries))
	for k, e := range m.entries {
		if e.Ts > ts {
			out = append(out, Entry{Key: k, Value: e.Value, Ts: e.Ts, Replica: e.Replica, Deleted: e.Deleted})
		}
	}
	slices.SortFunc(out, func(a, b Entry) int { return strings.Compare(a.Key, b.Key) })
	return out
}

// Apply merges a batch of exported entries (full state or delta) and
// returns how many of them won.
func (m *LWWMap) Apply(entries []Entry) int {
	won := 0
	for _, e := range entries {
		if m.apply(e) {
			won++
		}
	}
	return won
}

// Merge folds another map into this one.
func (m *LWWMap) Merge(other *LWWMap) {
	if other == nil {
		return
	}
	m.Apply(other.State())
}

// MaxTimestamp returns the newest write time in the map. It is O(1):
// the map tracks the maximum incrementally (winning writes only ever
// advance it), so callers can use it as a cheap has-anything-changed
// probe before exporting a delta.
func (m *LWWMap) MaxTimestamp() time.Duration { return m.maxTs }

// Copy returns a deep copy keeping the same replica identity.
func (m *LWWMap) Copy() *LWWMap {
	out := NewLWWMap(m.replica)
	for k, e := range m.entries {
		out.entries[k] = e
	}
	out.maxTs = m.maxTs
	return out
}
