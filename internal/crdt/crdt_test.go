package crdt

import (
	"testing"
	"testing/quick"
	"time"
)

// --- VClock ---

func TestVClockCompare(t *testing.T) {
	a := VClock{"r1": 1, "r2": 2}
	tests := []struct {
		name  string
		other VClock
		want  Ordering
	}{
		{"equal", VClock{"r1": 1, "r2": 2}, OrderingEqual},
		{"before", VClock{"r1": 2, "r2": 2}, OrderingBefore},
		{"after", VClock{"r1": 1, "r2": 1}, OrderingAfter},
		{"concurrent", VClock{"r1": 2, "r2": 1}, OrderingConcurrent},
		{"after empty", VClock{}, OrderingAfter},
		{"concurrent disjoint", VClock{"r3": 1}, OrderingConcurrent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Compare(tt.other); got != tt.want {
				t.Fatalf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVClockTickAndMerge(t *testing.T) {
	a := make(VClock).Tick("r1").Tick("r1")
	b := make(VClock).Tick("r2")
	a.Merge(b)
	if a["r1"] != 2 || a["r2"] != 1 {
		t.Fatalf("merged = %v", a)
	}
	if got := a.Compare(b); got != OrderingAfter {
		t.Fatalf("Compare = %v, want after", got)
	}
}

func TestVClockReplicas(t *testing.T) {
	v := VClock{"b": 1, "a": 2, "zero": 0}
	got := v.Replicas()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Replicas = %v", got)
	}
}

func TestVClockCopyIndependent(t *testing.T) {
	a := make(VClock).Tick("r1")
	b := a.Copy()
	b.Tick("r1")
	if a["r1"] != 1 || b["r1"] != 2 {
		t.Fatal("copy not independent")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		OrderingEqual: "equal", OrderingBefore: "before",
		OrderingAfter: "after", OrderingConcurrent: "concurrent",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}

// --- GCounter / PNCounter ---

func TestGCounterBasics(t *testing.T) {
	g := NewGCounter()
	g.Add("a", 3)
	g.Add("b", 2)
	g.Add("a", 1)
	if g.Value() != 6 {
		t.Fatalf("Value = %d, want 6", g.Value())
	}
}

func TestGCounterZeroValueUsable(t *testing.T) {
	var g GCounter
	g.Add("a", 1)
	if g.Value() != 1 {
		t.Fatal("zero-value GCounter unusable")
	}
	var g2 GCounter
	g2.Merge(&g)
	if g2.Value() != 1 {
		t.Fatal("zero-value merge failed")
	}
}

func TestGCounterMergeIsMax(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Add("r", 5)
	b.Merge(a)
	b.Merge(a) // idempotent
	if b.Value() != 5 {
		t.Fatalf("Value = %d, want 5 (merge must not double-count)", b.Value())
	}
}

func TestPNCounter(t *testing.T) {
	p := NewPNCounter()
	p.Add("a", 10)
	p.Sub("b", 4)
	if p.Value() != 6 {
		t.Fatalf("Value = %d, want 6", p.Value())
	}
	q := p.Copy()
	q.Sub("a", 10)
	p.Merge(q)
	if p.Value() != -4 {
		t.Fatalf("after merge, Value = %d, want -4", p.Value())
	}
}

// Property: GCounter merge is commutative, associative, idempotent.
func TestGCounterMergeProperties(t *testing.T) {
	mk := func(incs []uint8) *GCounter {
		g := NewGCounter()
		replicas := []ReplicaID{"a", "b", "c"}
		for i, n := range incs {
			g.Add(replicas[i%len(replicas)], uint64(n))
		}
		return g
	}
	prop := func(x, y, z []uint8) bool {
		a, b, c := mk(x), mk(y), mk(z)

		// Commutativity: a⊔b == b⊔a
		ab := a.Copy()
		ab.Merge(b)
		ba := b.Copy()
		ba.Merge(a)
		if ab.Value() != ba.Value() {
			return false
		}
		// Associativity: (a⊔b)⊔c == a⊔(b⊔c)
		abc1 := a.Copy()
		abc1.Merge(b)
		abc1.Merge(c)
		bc := b.Copy()
		bc.Merge(c)
		abc2 := a.Copy()
		abc2.Merge(bc)
		if abc1.Value() != abc2.Value() {
			return false
		}
		// Idempotence: a⊔a == a
		aa := a.Copy()
		aa.Merge(a)
		return aa.Value() == a.Value()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- LWWRegister ---

func TestLWWRegisterLastWriteWins(t *testing.T) {
	var r LWWRegister
	if _, ok := r.Get(); ok {
		t.Fatal("unset register reported a value")
	}
	if !r.Set("v1", time.Second, "a") {
		t.Fatal("first write lost")
	}
	if r.Set("old", 500*time.Millisecond, "b") {
		t.Fatal("older write won")
	}
	if !r.Set("v2", 2*time.Second, "b") {
		t.Fatal("newer write lost")
	}
	v, ok := r.Get()
	if !ok || v != "v2" {
		t.Fatalf("Get = %v/%v", v, ok)
	}
	if r.Timestamp() != 2*time.Second || r.Writer() != "b" {
		t.Fatal("metadata wrong")
	}
}

func TestLWWRegisterTieBreaksByReplica(t *testing.T) {
	var a, b LWWRegister
	a.Set("fromA", time.Second, "alpha")
	b.Set("fromB", time.Second, "beta")
	a.Merge(&b)
	b.Merge(&a)
	va, _ := a.Get()
	vb, _ := b.Get()
	if va != vb {
		t.Fatalf("replicas diverged: %v vs %v", va, vb)
	}
	if va != "fromB" { // "beta" > "alpha"
		t.Fatalf("tie winner = %v, want fromB", va)
	}
}

func TestLWWRegisterMergeEmptyNoop(t *testing.T) {
	var a, empty LWWRegister
	a.Set("x", time.Second, "r")
	a.Merge(&empty)
	a.Merge(nil)
	if v, _ := a.Get(); v != "x" {
		t.Fatal("merge with empty register changed value")
	}
}

// Property: register merge converges regardless of merge order.
func TestLWWRegisterConvergence(t *testing.T) {
	type write struct {
		Val     uint16
		Ts      uint16
		Replica uint8
	}
	prop := func(writes []write) bool {
		if len(writes) == 0 {
			return true
		}
		regs := make([]*LWWRegister, 3)
		for i := range regs {
			regs[i] = &LWWRegister{}
		}
		for i, w := range writes {
			regs[i%3].Set(w.Val, time.Duration(w.Ts), ReplicaID(rune('a'+w.Replica%5)))
		}
		// Merge in two different orders.
		x := regs[0].Copy()
		x.Merge(regs[1])
		x.Merge(regs[2])
		y := regs[2].Copy()
		y.Merge(regs[0])
		y.Merge(regs[1])
		vx, okx := x.Get()
		vy, oky := y.Get()
		return okx == oky && vx == vy
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- ORSet ---

func TestORSetAddRemove(t *testing.T) {
	s := NewORSet("a")
	s.Add("x")
	s.Add("y")
	if !s.Contains("x") || s.Len() != 2 {
		t.Fatal("adds missing")
	}
	s.Remove("x")
	if s.Contains("x") || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	got := s.Elements()
	if len(got) != 1 || got[0] != "y" {
		t.Fatalf("Elements = %v", got)
	}
}

func TestORSetConcurrentAddWinsOverRemove(t *testing.T) {
	a := NewORSet("a")
	a.Add("x")
	b := a.Copy()
	// Concurrently: a removes x, b re-adds x (new tag).
	a.Remove("x")
	bAsB := NewORSet("b")
	bAsB.Merge(b)
	bAsB.Add("x")

	a.Merge(bAsB)
	bAsB.Merge(a)
	if !a.Contains("x") || !bAsB.Contains("x") {
		t.Fatal("concurrent add did not win over remove")
	}
}

func TestORSetRemoveOnlyObserved(t *testing.T) {
	a := NewORSet("a")
	b := NewORSet("b")
	b.Add("x")
	// a has not observed b's add; a.Remove is a no-op for it.
	a.Remove("x")
	a.Merge(b)
	if !a.Contains("x") {
		t.Fatal("unobserved add was removed")
	}
}

func TestORSetReAddAfterRemove(t *testing.T) {
	s := NewORSet("a")
	s.Add("x")
	s.Remove("x")
	s.Add("x")
	if !s.Contains("x") {
		t.Fatal("re-add after remove failed")
	}
}

func TestORSetMergeKeepsSeqAhead(t *testing.T) {
	a := NewORSet("a")
	a.Add("x")
	a.Add("y") // seq=2
	restored := NewORSet("a")
	restored.Merge(a) // same replica identity restored from peer state
	restored.Add("z") // must not reuse tag a#1/a#2
	restored.Remove("z")
	if restored.Contains("z") {
		t.Fatal("fresh add reused an old tag and survived its own remove")
	}
	if !restored.Contains("x") || !restored.Contains("y") {
		t.Fatal("restore lost elements")
	}
}

// Property: ORSet merge is commutative and idempotent on membership.
func TestORSetMergeProperties(t *testing.T) {
	elems := []string{"p", "q", "r"}
	type op struct {
		Elem   uint8
		Remove bool
	}
	mk := func(r ReplicaID, ops []op) *ORSet {
		s := NewORSet(r)
		for _, o := range ops {
			e := elems[int(o.Elem)%len(elems)]
			if o.Remove {
				s.Remove(e)
			} else {
				s.Add(e)
			}
		}
		return s
	}
	eq := func(a, b *ORSet) bool {
		ea, eb := a.Elements(), b.Elements()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	prop := func(x, y []op) bool {
		a, b := mk("a", x), mk("b", y)
		ab := a.Copy()
		ab.Merge(b)
		ba := b.Copy()
		ba.Merge(a)
		if !eq(ab, ba) {
			return false
		}
		aa := a.Copy()
		aa.Merge(a)
		return eq(aa, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- LWWMap ---

func TestLWWMapSetGetDelete(t *testing.T) {
	m := NewLWWMap("a")
	if m.Replica() != "a" {
		t.Fatal("replica wrong")
	}
	m.Set("k1", 1, time.Second)
	m.Set("k2", 2, time.Second)
	if v, ok := m.Get("k1"); !ok || v != 1 {
		t.Fatalf("Get = %v/%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete("k1", 2*time.Second)
	if _, ok := m.Get("k1"); ok {
		t.Fatal("deleted key readable")
	}
	keys := m.Keys()
	if len(keys) != 1 || keys[0] != "k2" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestLWWMapOldWriteLoses(t *testing.T) {
	m := NewLWWMap("a")
	m.Set("k", "new", 2*time.Second)
	if m.Set("k", "old", time.Second) {
		t.Fatal("older write won")
	}
	if v, _ := m.Get("k"); v != "new" {
		t.Fatalf("value = %v", v)
	}
}

func TestLWWMapDeleteThenOlderWriteLoses(t *testing.T) {
	m := NewLWWMap("a")
	m.Set("k", "v", time.Second)
	m.Delete("k", 3*time.Second)
	if m.Set("k", "zombie", 2*time.Second) {
		t.Fatal("write older than tombstone won")
	}
	if _, ok := m.Get("k"); ok {
		t.Fatal("zombie value resurrected")
	}
	// A genuinely newer write does resurrect.
	m.Set("k", "back", 4*time.Second)
	if v, _ := m.Get("k"); v != "back" {
		t.Fatal("newer write after delete lost")
	}
}

func TestLWWMapSinceDelta(t *testing.T) {
	m := NewLWWMap("a")
	m.Set("k1", 1, time.Second)
	m.Set("k2", 2, 2*time.Second)
	m.Delete("k1", 3*time.Second)
	delta := m.Since(time.Second)
	if len(delta) != 2 {
		t.Fatalf("delta = %v", delta)
	}
	if m.MaxTimestamp() != 3*time.Second {
		t.Fatalf("MaxTimestamp = %v", m.MaxTimestamp())
	}

	peer := NewLWWMap("b")
	if won := peer.Apply(m.State()); won != 2 {
		t.Fatalf("Apply won %d, want 2", won)
	}
	if _, ok := peer.Get("k1"); ok {
		t.Fatal("tombstone did not propagate")
	}
	if v, _ := peer.Get("k2"); v != 2 {
		t.Fatal("value did not propagate")
	}
}

func TestLWWMapMergeCommutes(t *testing.T) {
	a := NewLWWMap("a")
	b := NewLWWMap("b")
	a.Set("k", "fromA", time.Second)
	b.Set("k", "fromB", time.Second) // tie → replica "b" wins
	a2 := a.Copy()
	a.Merge(b)
	b.Merge(a2)
	va, _ := a.Get("k")
	vb, _ := b.Get("k")
	if va != vb || va != "fromB" {
		t.Fatalf("diverged: %v vs %v", va, vb)
	}
}

// Property: three LWWMap replicas converge under arbitrary writes and
// arbitrary pairwise merge order.
func TestLWWMapConvergence(t *testing.T) {
	keys := []string{"k1", "k2", "k3"}
	type w struct {
		Key    uint8
		Val    uint16
		Ts     uint16
		Del    bool
		Target uint8
	}
	prop := func(writes []w) bool {
		ms := []*LWWMap{NewLWWMap("a"), NewLWWMap("b"), NewLWWMap("c")}
		for _, x := range writes {
			m := ms[int(x.Target)%3]
			k := keys[int(x.Key)%3]
			if x.Del {
				m.Delete(k, time.Duration(x.Ts))
			} else {
				m.Set(k, x.Val, time.Duration(x.Ts))
			}
		}
		// Full pairwise exchange, two different orders.
		x := ms[0].Copy()
		x.Merge(ms[1])
		x.Merge(ms[2])
		y := ms[2].Copy()
		y.Merge(ms[1])
		y.Merge(ms[0])
		kx, ky := x.Keys(), y.Keys()
		if len(kx) != len(ky) {
			return false
		}
		for i := range kx {
			if kx[i] != ky[i] {
				return false
			}
			vx, _ := x.Get(kx[i])
			vy, _ := y.Get(ky[i])
			if vx != vy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLWWMapStateSorted(t *testing.T) {
	m := NewLWWMap("a")
	m.Set("b", 1, 1)
	m.Set("a", 2, 2)
	st := m.State()
	if len(st) != 2 || st[0].Key != "a" || st[1].Key != "b" {
		t.Fatalf("State = %v", st)
	}
}
