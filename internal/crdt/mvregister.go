package crdt

import (
	"fmt"
	"sort"
)

// version is one causally-tagged value in an MVRegister.
type version struct {
	value any
	clock VClock
}

// MVRegister is a multi-value register: unlike LWW, concurrent writes
// are *kept* rather than arbitrated, so the application can see — and
// resolve — the conflict itself. Useful where losing a concurrent
// update silently is worse than surfacing it (e.g. conflicting
// actuation set-points from two edge controllers during a partition).
type MVRegister struct {
	replica  ReplicaID
	versions []version
}

// NewMVRegister returns an empty register owned by replica r.
func NewMVRegister(r ReplicaID) *MVRegister {
	return &MVRegister{replica: r}
}

// Set writes a value that causally supersedes every version currently
// visible at this replica.
func (m *MVRegister) Set(value any) {
	clock := make(VClock)
	for _, v := range m.versions {
		clock.Merge(v.clock)
	}
	clock.Tick(m.replica)
	m.versions = []version{{value: value, clock: clock}}
}

// Values returns the current concurrent values. A single element means
// no conflict; multiple elements are concurrent writes awaiting
// application-level resolution. Order is deterministic (by rendered
// clock).
func (m *MVRegister) Values() []any {
	sorted := append([]version(nil), m.versions...)
	sort.Slice(sorted, func(i, j int) bool {
		return clockKey(sorted[i].clock) < clockKey(sorted[j].clock)
	})
	out := make([]any, len(sorted))
	for i, v := range sorted {
		out[i] = v.value
	}
	return out
}

// Conflicting reports whether the register currently holds more than
// one concurrent value.
func (m *MVRegister) Conflicting() bool { return len(m.versions) > 1 }

// Merge folds other's versions into m, keeping only causally maximal
// versions.
func (m *MVRegister) Merge(other *MVRegister) {
	if other == nil {
		return
	}
	combined := append(append([]version(nil), m.versions...), other.versions...)
	var maximal []version
	for i, v := range combined {
		dominated := false
		for j, w := range combined {
			if i == j {
				continue
			}
			switch v.clock.Compare(w.clock) {
			case OrderingBefore:
				dominated = true
			case OrderingEqual:
				// Keep only the first of identical versions.
				if j < i {
					dominated = true
				}
			}
			if dominated {
				break
			}
		}
		if !dominated {
			maximal = append(maximal, version{value: v.value, clock: v.clock.Copy()})
		}
	}
	m.versions = maximal
}

// Copy returns a deep copy keeping the same replica identity.
func (m *MVRegister) Copy() *MVRegister {
	out := NewMVRegister(m.replica)
	for _, v := range m.versions {
		out.versions = append(out.versions, version{value: v.value, clock: v.clock.Copy()})
	}
	return out
}

// clockKey renders a clock canonically for deterministic ordering.
func clockKey(v VClock) string {
	reps := v.Replicas()
	s := ""
	for _, r := range reps {
		s += fmt.Sprintf("%s=%d;", r, v[r])
	}
	return s
}
