package crdt

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkLWWMapSet measures local write throughput.
func BenchmarkLWWMapSet(b *testing.B) {
	m := NewLWWMap("a")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(keys[i%256], i, time.Duration(i))
	}
}

// BenchmarkLWWMapMergeFullState measures full-state merge between two
// 1k-key replicas.
func BenchmarkLWWMapMergeFullState(b *testing.B) {
	src := NewLWWMap("a")
	for i := 0; i < 1000; i++ {
		src.Set(fmt.Sprintf("key-%d", i), i, time.Duration(i))
	}
	state := src.State()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewLWWMap("b")
		dst.Apply(state)
	}
}

// BenchmarkLWWMapDelta measures incremental delta extraction.
func BenchmarkLWWMapDelta(b *testing.B) {
	m := NewLWWMap("a")
	for i := 0; i < 1000; i++ {
		m.Set(fmt.Sprintf("key-%d", i), i, time.Duration(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Since(time.Duration(900)) // last 10% of writes
	}
}

// BenchmarkORSetAddContains measures set operations.
func BenchmarkORSetAddContains(b *testing.B) {
	s := NewORSet("a")
	elems := make([]string, 128)
	for i := range elems {
		elems[i] = fmt.Sprintf("e%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := elems[i%128]
		s.Add(e)
		if !s.Contains(e) {
			b.Fatal("missing element")
		}
	}
}

// BenchmarkVClockCompare measures causal comparison of 16-replica
// clocks.
func BenchmarkVClockCompare(b *testing.B) {
	x := make(VClock)
	y := make(VClock)
	for i := 0; i < 16; i++ {
		r := ReplicaID(fmt.Sprintf("r%d", i))
		x[r] = uint64(i)
		y[r] = uint64(16 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}
