package crdt_test

import (
	"fmt"
	"time"

	"repro/internal/crdt"
)

// Two replicas of a last-writer-wins map diverge during a partition
// and converge after exchanging state — in either order.
func ExampleLWWMap() {
	edge := crdt.NewLWWMap("edge")
	cloud := crdt.NewLWWMap("cloud")

	edge.Set("zone1/temp", 21.5, 1*time.Second)
	cloud.Set("zone1/temp", 22.0, 2*time.Second) // newer

	edge.Merge(cloud)
	cloud.Merge(edge)

	v1, _ := edge.Get("zone1/temp")
	v2, _ := cloud.Get("zone1/temp")
	fmt.Println(v1, v2)

	// Output:
	// 22 22
}

// An observed-remove set keeps a concurrently re-added element: the
// remove only covers the adds it has seen.
func ExampleORSet() {
	a := crdt.NewORSet("a")
	a.Add("sensor-7")
	b := a.Copy()

	a.Remove("sensor-7") // a removes...
	b.Add("sensor-7")    // ...while b re-registers it concurrently

	a.Merge(b)
	fmt.Println(a.Contains("sensor-7"))

	// Output:
	// true
}

// A multi-value register surfaces conflicting concurrent writes
// instead of silently dropping one.
func ExampleMVRegister() {
	a := crdt.NewMVRegister("controller-a")
	b := crdt.NewMVRegister("controller-b")
	a.Set("cool")
	b.Set("heat") // concurrent: neither saw the other

	a.Merge(b)
	fmt.Println(a.Conflicting(), a.Values())

	a.Set("off") // application resolves the conflict
	fmt.Println(a.Conflicting(), a.Values())

	// Output:
	// true [cool heat]
	// false [off]
}
