package crdt

import (
	"testing"
	"time"
)

func TestDeltaBufferCoalescesWrites(t *testing.T) {
	b := NewDeltaBuffer("p")
	b.Dirty("p", "k")
	b.Dirty("p", "k")
	b.Dirty("p", "k")
	if got := b.Pending("p"); len(got) != 1 || got[0] != "k" {
		t.Fatalf("pending = %v, want one coalesced key", got)
	}
	if b.PendingCount("p") != 1 {
		t.Fatalf("count = %d", b.PendingCount("p"))
	}
}

func TestDeltaBufferPendingSorted(t *testing.T) {
	b := NewDeltaBuffer("p")
	b.Dirty("p", "z")
	b.Dirty("p", "a")
	b.Dirty("p", "m")
	got := b.Pending("p")
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("pending = %v, want sorted", got)
	}
}

func TestDeltaBufferDirtyAllAndDrop(t *testing.T) {
	b := NewDeltaBuffer("p1", "p2")
	b.DirtyAll("k")
	if b.PendingCount("p1") != 1 || b.PendingCount("p2") != 1 {
		t.Fatal("DirtyAll missed a peer")
	}
	b.Drop("p1", "k")
	if b.PendingCount("p1") != 0 || b.PendingCount("p2") != 1 {
		t.Fatal("Drop leaked across peers")
	}
}

func TestDeltaBufferAckEvicts(t *testing.T) {
	b := NewDeltaBuffer("p")
	b.Dirty("p", "k")
	seq := b.NextSeq("p")
	b.MarkSent("p", seq, []string{"k"}, time.Second)
	if b.PendingCount("p") != 0 {
		t.Fatal("sent key still pending")
	}
	if !b.Ack("p", seq) {
		t.Fatal("ack of tracked frame rejected")
	}
	if b.Ack("p", seq) {
		t.Fatal("duplicate ack accepted")
	}
	b.Requeue("p", time.Hour)
	if b.PendingCount("p") != 0 {
		t.Fatal("acked key requeued")
	}
}

func TestDeltaBufferRequeueRespectsCutoff(t *testing.T) {
	// Frame sent at t=10s: a requeue with cutoff 5s (ack may still be
	// in flight) must leave it alone; a cutoff at/after 10s retransmits.
	b := NewDeltaBuffer("p")
	b.Dirty("p", "k")
	seq := b.NextSeq("p")
	b.MarkSent("p", seq, []string{"k"}, 10*time.Second)

	b.Requeue("p", 5*time.Second)
	if b.PendingCount("p") != 0 {
		t.Fatal("in-flight frame requeued before its RTO")
	}
	b.Requeue("p", 10*time.Second)
	if got := b.Pending("p"); len(got) != 1 || got[0] != "k" {
		t.Fatalf("pending after RTO = %v, want the lost key", got)
	}
	// The frame is gone from in-flight: a late ack is a no-op.
	if b.Ack("p", seq) {
		t.Fatal("late ack matched a requeued frame")
	}
}

func TestDeltaBufferRedirtyAfterSendStaysPending(t *testing.T) {
	// A key re-dirtied after its frame was cut carries a newer version:
	// the ack of the old frame must not evict the new change, and a
	// requeue must not clobber the newer pending version.
	b := NewDeltaBuffer("p")
	b.Dirty("p", "k")
	seq := b.NextSeq("p")
	b.MarkSent("p", seq, []string{"k"}, time.Second)
	b.Dirty("p", "k")
	b.Ack("p", seq)
	if b.PendingCount("p") != 1 {
		t.Fatal("ack evicted a change newer than the frame")
	}

	b2 := NewDeltaBuffer("p")
	b2.Dirty("p", "k")
	s2 := b2.NextSeq("p")
	b2.MarkSent("p", s2, []string{"k"}, time.Second)
	b2.Dirty("p", "k")
	b2.Requeue("p", time.Hour)
	if b2.PendingCount("p") != 1 {
		t.Fatalf("pending = %d after requeue with newer version", b2.PendingCount("p"))
	}
}

func TestDeltaBufferDownPeerAccumulates(t *testing.T) {
	// A peer that never acks accumulates the coalesced key set, not a
	// growing retransmission backlog.
	b := NewDeltaBuffer("p")
	for turn := 0; turn < 5; turn++ {
		b.Dirty("p", "k1")
		b.Dirty("p", "k2")
		b.Requeue("p", time.Duration(turn)*time.Second)
		seq := b.NextSeq("p")
		b.MarkSent("p", seq, b.Pending("p"), time.Duration(turn)*time.Second)
	}
	b.Requeue("p", time.Hour)
	if got := b.Pending("p"); len(got) != 2 {
		t.Fatalf("pending = %v, want exactly the two coalesced keys", got)
	}
}

func TestDeltaBufferUnknownPeer(t *testing.T) {
	b := NewDeltaBuffer()
	b.Dirty("ghost", "k")
	if b.PendingCount("ghost") != 0 || b.Pending("ghost") != nil {
		t.Fatal("unknown peer tracked")
	}
	if b.Ack("ghost", 1) {
		t.Fatal("unknown peer acked")
	}
}

func TestORSetDigestDeltaRoundTrip(t *testing.T) {
	a := NewORSet("A")
	b := NewORSet("B")
	a.Add("x")
	a.Add("y")
	a.Remove("x")

	// B has seen nothing: the delta since its digest is A's whole
	// operation history.
	d := a.DeltaSince(b.Digest())
	if d.Empty() {
		t.Fatal("delta empty")
	}
	b.ApplyDelta(d)
	if b.Contains("x") || !b.Contains("y") {
		t.Fatalf("elements after delta = %v", b.Elements())
	}

	// Now B is caught up: the next delta is empty — no full-state
	// reship for a converged peer.
	if d2 := a.DeltaSince(b.Digest()); !d2.Empty() {
		t.Fatalf("delta for converged peer = %+v", d2)
	}

	// One more op ships exactly that op.
	a.Add("z")
	d3 := a.DeltaSince(b.Digest())
	if len(d3.Adds) != 1 || len(d3.Adds["z"]) != 1 || len(d3.Tombs) != 0 {
		t.Fatalf("incremental delta = %+v", d3)
	}
	b.ApplyDelta(d3)
	if !b.Contains("z") {
		t.Fatal("incremental delta lost the add")
	}
}

func TestORSetDeltaIdempotent(t *testing.T) {
	a := NewORSet("A")
	b := NewORSet("B")
	a.Add("x")
	a.Remove("x")
	a.Add("y")
	d := a.DeltaSince(b.Digest())
	b.ApplyDelta(d)
	b.ApplyDelta(d) // duplicate delivery
	if b.Contains("x") || !b.Contains("y") || b.Len() != 1 {
		t.Fatalf("after duplicate apply: %v", b.Elements())
	}
}

func TestGCounterDeltaSince(t *testing.T) {
	g := NewGCounter()
	g.Add("A", 3)
	g.Add("B", 2)
	peer := NewGCounter()
	peer.MergeDelta(g.DeltaSince(peer.Frontier()))
	if peer.Value() != 5 {
		t.Fatalf("value = %d", peer.Value())
	}
	// Converged: nothing to ship.
	if d := g.DeltaSince(peer.Frontier()); d != nil {
		t.Fatalf("delta for converged peer = %v", d)
	}
	g.Add("A", 1)
	d := g.DeltaSince(peer.Frontier())
	if len(d) != 1 || d["A"] != 4 {
		t.Fatalf("incremental delta = %v", d)
	}
	peer.MergeDelta(d)
	peer.MergeDelta(d) // idempotent
	if peer.Value() != 6 {
		t.Fatalf("value = %d", peer.Value())
	}
}

func TestPNCounterDeltaSince(t *testing.T) {
	p := NewPNCounter()
	p.Add("A", 10)
	p.Sub("B", 4)
	peer := NewPNCounter()
	peer.MergeDelta(p.DeltaSince(peer.Frontier()))
	if peer.Value() != 6 {
		t.Fatalf("value = %d", peer.Value())
	}
	if d := p.DeltaSince(peer.Frontier()); !d.Empty() {
		t.Fatalf("delta for converged peer = %+v", d)
	}
	p.Sub("A", 1)
	d := p.DeltaSince(peer.Frontier())
	if d.Empty() || len(d.Pos) != 0 || d.Neg["A"] != 1 {
		t.Fatalf("incremental delta = %+v", d)
	}
	peer.MergeDelta(d)
	if peer.Value() != 5 {
		t.Fatalf("value = %d", peer.Value())
	}
}
