package crdt

import (
	"testing"
	"testing/quick"
)

func TestMVRegisterSingleWriter(t *testing.T) {
	m := NewMVRegister("a")
	if got := m.Values(); len(got) != 0 {
		t.Fatalf("empty register values = %v", got)
	}
	m.Set(1)
	m.Set(2)
	got := m.Values()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("values = %v, want [2]", got)
	}
	if m.Conflicting() {
		t.Fatal("single writer conflicting")
	}
}

func TestMVRegisterConcurrentWritesKept(t *testing.T) {
	a := NewMVRegister("a")
	b := NewMVRegister("b")
	a.Set("fromA")
	b.Set("fromB")
	a.Merge(b)
	if !a.Conflicting() {
		t.Fatal("concurrent writes not kept")
	}
	got := a.Values()
	if len(got) != 2 {
		t.Fatalf("values = %v", got)
	}
}

func TestMVRegisterCausalOverwrite(t *testing.T) {
	a := NewMVRegister("a")
	b := NewMVRegister("b")
	a.Set("v1")
	b.Merge(a)
	b.Set("v2") // causally after v1
	a.Merge(b)
	got := a.Values()
	if len(got) != 1 || got[0] != "v2" {
		t.Fatalf("values = %v, want [v2] (v1 dominated)", got)
	}
}

func TestMVRegisterResolveConflict(t *testing.T) {
	a := NewMVRegister("a")
	b := NewMVRegister("b")
	a.Set(1)
	b.Set(2)
	a.Merge(b)
	if !a.Conflicting() {
		t.Fatal("expected conflict")
	}
	// Application-level resolution: a new Set dominates both.
	a.Set(3)
	if a.Conflicting() {
		t.Fatal("conflict survived resolution")
	}
	b.Merge(a)
	if got := b.Values(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("b values = %v, want [3]", got)
	}
}

func TestMVRegisterMergeIdempotent(t *testing.T) {
	a := NewMVRegister("a")
	a.Set("x")
	a.Merge(a.Copy())
	a.Merge(a.Copy())
	if got := a.Values(); len(got) != 1 {
		t.Fatalf("idempotent merge broke: %v", got)
	}
	a.Merge(nil)
	if got := a.Values(); len(got) != 1 {
		t.Fatal("nil merge broke register")
	}
}

// Property: merge order does not affect the final value set.
func TestMVRegisterConvergence(t *testing.T) {
	prop := func(writesA, writesB, writesC []uint8) bool {
		a, b, c := NewMVRegister("a"), NewMVRegister("b"), NewMVRegister("c")
		for _, w := range writesA {
			a.Set(int(w))
		}
		for _, w := range writesB {
			b.Set(int(w))
		}
		for _, w := range writesC {
			c.Set(int(w))
		}
		x := a.Copy()
		x.Merge(b)
		x.Merge(c)
		y := c.Copy()
		y.Merge(a)
		y.Merge(b)
		vx, vy := x.Values(), y.Values()
		if len(vx) != len(vy) {
			return false
		}
		for i := range vx {
			if vx[i] != vy[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
