package crdt

import (
	"sort"
	"time"
)

// DeltaBuffer tracks, per peer, which keys have changed since that
// peer last acknowledged them — the sender side of a delta-state sync
// protocol (Almeida/Shoker/Baquero). Repeated writes to one key
// coalesce: the buffer records only that the key is dirty, and the
// caller exports the key's *current* entry at send time, so
// intermediate LWW versions never reach the wire. Frames carry a
// per-peer sequence number; the receiver acknowledges each frame, and
// an acknowledged key whose dirty version has not advanced since the
// frame was cut is evicted. Unacknowledged frames are requeued at the
// next sync turn, giving retransmit-until-acked under loss, and a
// peer that is down simply accumulates pending keys — on heal it
// receives exactly the coalesced set it missed, not a full-state
// reship.
//
// The buffer is keyed by opaque peer and key strings and holds no
// values, so it composes with any keyed CRDT (the LWW map here; the
// OR-set and counters ship their own join-decompositions, see
// DeltaSince on each type).
type DeltaBuffer struct {
	ver   uint64 // global dirty-version counter
	peers map[string]*peerBuffer
}

type peerBuffer struct {
	// pending maps dirty keys to the version of their latest change.
	pending map[string]uint64
	// inFlight maps a sent frame's sequence number to the key versions
	// it carried and its send time. Entries live until acked or
	// requeued.
	inFlight map[uint64]*inFlightFrame
	nextSeq  uint64
}

type inFlightFrame struct {
	at   time.Duration
	keys map[string]uint64
}

// NewDeltaBuffer returns an empty buffer tracking the given peers.
func NewDeltaBuffer(peers ...string) *DeltaBuffer {
	b := &DeltaBuffer{peers: make(map[string]*peerBuffer, len(peers))}
	for _, p := range peers {
		b.AddPeer(p)
	}
	return b
}

// AddPeer starts tracking a peer; existing state is unaffected. Known
// peers are not reset.
func (b *DeltaBuffer) AddPeer(peer string) {
	if _, ok := b.peers[peer]; !ok {
		b.peers[peer] = &peerBuffer{
			pending:  make(map[string]uint64),
			inFlight: make(map[uint64]*inFlightFrame),
		}
	}
}

// Dirty marks key as changed for one peer. Repeated calls coalesce:
// only the latest version is remembered.
func (b *DeltaBuffer) Dirty(peer, key string) {
	pb, ok := b.peers[peer]
	if !ok {
		return
	}
	b.ver++
	pb.pending[key] = b.ver
}

// DirtyAll marks key as changed for every tracked peer.
func (b *DeltaBuffer) DirtyAll(key string) {
	b.ver++
	for _, pb := range b.peers {
		pb.pending[key] = b.ver
	}
}

// Drop removes key from a peer's pending set (e.g. the key was
// filtered by policy, deleted, or originates at that peer). A later
// Dirty re-adds it.
func (b *DeltaBuffer) Drop(peer, key string) {
	if pb, ok := b.peers[peer]; ok {
		delete(pb.pending, key)
	}
}

// Requeue moves unacknowledged in-flight keys from frames sent at or
// before the cutoff back into the peer's pending set, preserving newer
// pending versions. Call at the start of a sync turn with a cutoff one
// retransmission timeout in the past: frames that were genuinely lost
// (or whose peer is down) get retransmitted, while frames whose ack is
// simply still in flight are left alone — an immediate SyncNow burst
// must not re-ship everything that was sent milliseconds ago.
func (b *DeltaBuffer) Requeue(peer string, before time.Duration) {
	pb, ok := b.peers[peer]
	if !ok {
		return
	}
	for seq, fr := range pb.inFlight {
		if fr.at > before {
			continue
		}
		for k, v := range fr.keys {
			if _, dirty := pb.pending[k]; !dirty {
				pb.pending[k] = v
			}
		}
		delete(pb.inFlight, seq)
	}
}

// Pending returns the peer's dirty keys, sorted, so frame content is
// deterministic whatever the map iteration order.
func (b *DeltaBuffer) Pending(peer string) []string {
	pb, ok := b.peers[peer]
	if !ok || len(pb.pending) == 0 {
		return nil
	}
	out := make([]string, 0, len(pb.pending))
	for k := range pb.pending {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PendingCount reports how many keys are dirty for the peer.
func (b *DeltaBuffer) PendingCount(peer string) int {
	pb, ok := b.peers[peer]
	if !ok {
		return 0
	}
	return len(pb.pending)
}

// NextSeq allocates the next frame sequence number for the peer.
func (b *DeltaBuffer) NextSeq(peer string) uint64 {
	pb, ok := b.peers[peer]
	if !ok {
		return 0
	}
	pb.nextSeq++
	return pb.nextSeq
}

// MarkSent records that the keys went out to peer in frame seq at the
// given time and removes them from pending. They stay tracked
// in-flight until Ack (evicted) or Requeue (retransmitted).
func (b *DeltaBuffer) MarkSent(peer string, seq uint64, keys []string, at time.Duration) {
	pb, ok := b.peers[peer]
	if !ok || len(keys) == 0 {
		return
	}
	sent := make(map[string]uint64, len(keys))
	for _, k := range keys {
		if v, dirty := pb.pending[k]; dirty {
			sent[k] = v
			delete(pb.pending, k)
		}
	}
	if len(sent) > 0 {
		pb.inFlight[seq] = &inFlightFrame{at: at, keys: sent}
	}
}

// Ack acknowledges frame seq from peer: its keys are confirmed
// delivered and evicted. Keys re-dirtied after the frame was cut are
// already pending again under a newer version and stay queued.
// Duplicate or late acks are no-ops. Reports whether the seq was
// still tracked.
func (b *DeltaBuffer) Ack(peer string, seq uint64) bool {
	pb, ok := b.peers[peer]
	if !ok {
		return false
	}
	if _, tracked := pb.inFlight[seq]; !tracked {
		return false
	}
	delete(pb.inFlight, seq)
	return true
}
