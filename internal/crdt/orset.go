package crdt

import (
	"fmt"
	"sort"
)

// Tag uniquely identifies one Add operation (replica + local counter).
type Tag struct {
	Replica ReplicaID
	Seq     uint64
}

func (t Tag) String() string { return fmt.Sprintf("%s#%d", t.Replica, t.Seq) }

// ORSet is an observed-remove set of strings: concurrent add wins over
// remove, because a remove only deletes the add-tags it has observed.
// The zero value is not usable; construct with NewORSet.
type ORSet struct {
	replica ReplicaID
	seq     uint64
	adds    map[string]map[Tag]struct{}
	tombs   map[Tag]struct{}
}

// NewORSet returns an empty set owned by replica r.
func NewORSet(r ReplicaID) *ORSet {
	return &ORSet{
		replica: r,
		adds:    make(map[string]map[Tag]struct{}),
		tombs:   make(map[Tag]struct{}),
	}
}

// Add inserts the element with a fresh tag.
func (s *ORSet) Add(elem string) {
	s.seq++
	tag := Tag{Replica: s.replica, Seq: s.seq}
	if s.adds[elem] == nil {
		s.adds[elem] = make(map[Tag]struct{})
	}
	s.adds[elem][tag] = struct{}{}
}

// Remove deletes the element by tombstoning every live tag observed
// locally. Concurrent adds elsewhere (unobserved tags) survive a merge.
func (s *ORSet) Remove(elem string) {
	for tag := range s.adds[elem] {
		if _, dead := s.tombs[tag]; !dead {
			s.tombs[tag] = struct{}{}
		}
	}
}

// Contains reports whether the element has at least one live tag.
func (s *ORSet) Contains(elem string) bool {
	for tag := range s.adds[elem] {
		if _, dead := s.tombs[tag]; !dead {
			return true
		}
	}
	return false
}

// Elements returns the live elements, sorted.
func (s *ORSet) Elements() []string {
	var out []string
	for elem := range s.adds {
		if s.Contains(elem) {
			out = append(out, elem)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live elements.
func (s *ORSet) Len() int {
	n := 0
	for elem := range s.adds {
		if s.Contains(elem) {
			n++
		}
	}
	return n
}

// Merge folds other into s: union of add-tags and tombstones.
func (s *ORSet) Merge(other *ORSet) {
	if other == nil {
		return
	}
	for elem, tags := range other.adds {
		if s.adds[elem] == nil {
			s.adds[elem] = make(map[Tag]struct{}, len(tags))
		}
		for tag := range tags {
			s.adds[elem][tag] = struct{}{}
		}
	}
	for tag := range other.tombs {
		s.tombs[tag] = struct{}{}
	}
	// Keep local tag generation ahead of anything merged in from our
	// own past states (e.g. a replica restored from a peer's copy).
	for elem := range other.adds {
		for tag := range other.adds[elem] {
			if tag.Replica == s.replica && tag.Seq > s.seq {
				s.seq = tag.Seq
			}
		}
	}
}

// Copy returns a deep copy that keeps the same replica identity.
func (s *ORSet) Copy() *ORSet {
	out := NewORSet(s.replica)
	out.seq = s.seq
	for elem, tags := range s.adds {
		out.adds[elem] = make(map[Tag]struct{}, len(tags))
		for tag := range tags {
			out.adds[elem][tag] = struct{}{}
		}
	}
	for tag := range s.tombs {
		out.tombs[tag] = struct{}{}
	}
	return out
}
