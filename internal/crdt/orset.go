package crdt

import (
	"fmt"
	"sort"
)

// Tag uniquely identifies one Add operation (replica + local counter).
type Tag struct {
	Replica ReplicaID
	Seq     uint64
}

func (t Tag) String() string { return fmt.Sprintf("%s#%d", t.Replica, t.Seq) }

// ORSet is an observed-remove set of strings: concurrent add wins over
// remove, because a remove only deletes the add-tags it has observed.
// The zero value is not usable; construct with NewORSet.
type ORSet struct {
	replica ReplicaID
	seq     uint64
	adds    map[string]map[Tag]struct{}
	tombs   map[Tag]struct{}
	// elems maps each add-tag back to its element so deltas can ship
	// tags with their elements without scanning adds.
	elems map[Tag]string
	// rmSeq numbers this replica's remove operations; tombLog records
	// every tombstone with its recording replica and remove sequence,
	// which is what lets DeltaSince ship only the removes a peer's
	// digest has not observed.
	rmSeq   uint64
	tombLog map[tombKey]Tomb
}

// NewORSet returns an empty set owned by replica r.
func NewORSet(r ReplicaID) *ORSet {
	return &ORSet{
		replica: r,
		adds:    make(map[string]map[Tag]struct{}),
		tombs:   make(map[Tag]struct{}),
		elems:   make(map[Tag]string),
		tombLog: make(map[tombKey]Tomb),
	}
}

// Add inserts the element with a fresh tag.
func (s *ORSet) Add(elem string) {
	s.seq++
	tag := Tag{Replica: s.replica, Seq: s.seq}
	if s.adds[elem] == nil {
		s.adds[elem] = make(map[Tag]struct{})
	}
	s.adds[elem][tag] = struct{}{}
	s.elems[tag] = elem
}

// Remove deletes the element by tombstoning every live tag observed
// locally. Concurrent adds elsewhere (unobserved tags) survive a merge.
func (s *ORSet) Remove(elem string) {
	for tag := range s.adds[elem] {
		if _, dead := s.tombs[tag]; !dead {
			s.tombs[tag] = struct{}{}
			s.rmSeq++
			rec := Tomb{By: s.replica, Seq: s.rmSeq, Tag: tag}
			s.tombLog[tombKey{rec.By, rec.Seq}] = rec
		}
	}
}

// Contains reports whether the element has at least one live tag.
func (s *ORSet) Contains(elem string) bool {
	for tag := range s.adds[elem] {
		if _, dead := s.tombs[tag]; !dead {
			return true
		}
	}
	return false
}

// Elements returns the live elements, sorted.
func (s *ORSet) Elements() []string {
	var out []string
	for elem := range s.adds {
		if s.Contains(elem) {
			out = append(out, elem)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live elements.
func (s *ORSet) Len() int {
	n := 0
	for elem := range s.adds {
		if s.Contains(elem) {
			n++
		}
	}
	return n
}

// Merge folds other into s: union of add-tags and tombstones.
func (s *ORSet) Merge(other *ORSet) {
	if other == nil {
		return
	}
	for elem, tags := range other.adds {
		if s.adds[elem] == nil {
			s.adds[elem] = make(map[Tag]struct{}, len(tags))
		}
		for tag := range tags {
			s.adds[elem][tag] = struct{}{}
			s.elems[tag] = elem
		}
	}
	for tag := range other.tombs {
		s.tombs[tag] = struct{}{}
	}
	for k, rec := range other.tombLog {
		s.tombLog[k] = rec
		if rec.By == s.replica && rec.Seq > s.rmSeq {
			s.rmSeq = rec.Seq
		}
	}
	// Keep local tag generation ahead of anything merged in from our
	// own past states (e.g. a replica restored from a peer's copy).
	for elem := range other.adds {
		for tag := range other.adds[elem] {
			if tag.Replica == s.replica && tag.Seq > s.seq {
				s.seq = tag.Seq
			}
		}
	}
}

// Copy returns a deep copy that keeps the same replica identity.
func (s *ORSet) Copy() *ORSet {
	out := NewORSet(s.replica)
	out.seq = s.seq
	out.rmSeq = s.rmSeq
	for elem, tags := range s.adds {
		out.adds[elem] = make(map[Tag]struct{}, len(tags))
		for tag := range tags {
			out.adds[elem][tag] = struct{}{}
			out.elems[tag] = elem
		}
	}
	for tag := range s.tombs {
		out.tombs[tag] = struct{}{}
	}
	for k, rec := range s.tombLog {
		out.tombLog[k] = rec
	}
	return out
}

// tombKey identifies one remove operation (recording replica + its
// remove sequence).
type tombKey struct {
	By  ReplicaID
	Seq uint64
}

// Tomb is one recorded remove operation: replica By tombstoned Tag as
// its Seq-th remove. Two replicas removing the same tag concurrently
// record distinct Tombs for the same Tag; applying either (or both)
// kills the tag.
type Tomb struct {
	By  ReplicaID
	Seq uint64
	Tag Tag
}

// ORDigest is a compact summary of an OR-set's observed operations:
// per replica, the highest add-tag sequence and remove sequence seen.
// A peer sends its digest; the reply is DeltaSince(digest) — only the
// operations the digest has not observed.
type ORDigest struct {
	Adds    map[ReplicaID]uint64
	Removes map[ReplicaID]uint64
}

// ORDelta is a join-decomposition of an OR-set: the add-tags (with
// their elements) and remove records above some digest. Applying it
// elsewhere is a state merge restricted to the missing operations.
type ORDelta struct {
	Adds  map[string][]Tag
	Tombs []Tomb
}

// Empty reports whether the delta carries nothing.
func (d ORDelta) Empty() bool { return len(d.Adds) == 0 && len(d.Tombs) == 0 }

// Digest summarizes the set's observed add and remove frontiers.
func (s *ORSet) Digest() ORDigest {
	d := ORDigest{
		Adds:    make(map[ReplicaID]uint64),
		Removes: make(map[ReplicaID]uint64),
	}
	for tag := range s.elems {
		if tag.Seq > d.Adds[tag.Replica] {
			d.Adds[tag.Replica] = tag.Seq
		}
	}
	for k := range s.tombLog {
		if k.Seq > d.Removes[k.By] {
			d.Removes[k.By] = k.Seq
		}
	}
	return d
}

// DeltaSince returns the operations the digest has not observed: add
// tags above the digest's add frontier and remove records above its
// remove frontier, deterministically ordered.
func (s *ORSet) DeltaSince(d ORDigest) ORDelta {
	out := ORDelta{}
	for tag, elem := range s.elems {
		if tag.Seq > d.Adds[tag.Replica] {
			if out.Adds == nil {
				out.Adds = make(map[string][]Tag)
			}
			out.Adds[elem] = append(out.Adds[elem], tag)
		}
	}
	for elem := range out.Adds {
		tags := out.Adds[elem]
		sort.Slice(tags, func(i, j int) bool {
			if tags[i].Replica != tags[j].Replica {
				return tags[i].Replica < tags[j].Replica
			}
			return tags[i].Seq < tags[j].Seq
		})
	}
	for k, rec := range s.tombLog {
		if k.Seq > d.Removes[k.By] {
			out.Tombs = append(out.Tombs, rec)
		}
	}
	sort.Slice(out.Tombs, func(i, j int) bool {
		if out.Tombs[i].By != out.Tombs[j].By {
			return out.Tombs[i].By < out.Tombs[j].By
		}
		return out.Tombs[i].Seq < out.Tombs[j].Seq
	})
	return out
}

// ApplyDelta merges a delta produced by DeltaSince on another replica.
// Application is idempotent and commutative, like any state merge.
func (s *ORSet) ApplyDelta(d ORDelta) {
	for elem, tags := range d.Adds {
		if s.adds[elem] == nil {
			s.adds[elem] = make(map[Tag]struct{}, len(tags))
		}
		for _, tag := range tags {
			s.adds[elem][tag] = struct{}{}
			s.elems[tag] = elem
			if tag.Replica == s.replica && tag.Seq > s.seq {
				s.seq = tag.Seq
			}
		}
	}
	for _, rec := range d.Tombs {
		s.tombs[rec.Tag] = struct{}{}
		s.tombLog[tombKey{rec.By, rec.Seq}] = rec
		if rec.By == s.replica && rec.Seq > s.rmSeq {
			s.rmSeq = rec.Seq
		}
	}
}
