// Package crdt implements state-based conflict-free replicated data
// types: vector clocks, G/PN-counters, last-writer-wins registers and
// maps, and observed-remove sets. The paper's data-flow vision (§VI)
// requires data to be "kept synchronized or transferred" between IoT
// software components across unreliable links and partitions without
// central storage; state-based CRDTs provide exactly that — replicas
// merge pairwise in any order, any grouping, any number of times, and
// converge (the property-based tests check commutativity, associativity
// and idempotence explicitly).
package crdt

import "slices"

// ReplicaID identifies one replica of a CRDT.
type ReplicaID string

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Possible causal relations between two clocks.
const (
	OrderingEqual Ordering = iota + 1
	OrderingBefore
	OrderingAfter
	OrderingConcurrent
)

func (o Ordering) String() string {
	switch o {
	case OrderingEqual:
		return "equal"
	case OrderingBefore:
		return "before"
	case OrderingAfter:
		return "after"
	case OrderingConcurrent:
		return "concurrent"
	default:
		return "ordering(?)"
	}
}

// VClock is a vector clock. The zero value (nil) is a valid empty clock
// for reading; use make or Tick to write.
type VClock map[ReplicaID]uint64

// Tick increments the component of the given replica and returns the
// clock for chaining.
func (v VClock) Tick(r ReplicaID) VClock {
	v[r]++
	return v
}

// Merge folds other into v, taking the pairwise max.
func (v VClock) Merge(other VClock) {
	for r, c := range other {
		if c > v[r] {
			v[r] = c
		}
	}
}

// Copy returns a deep copy.
func (v VClock) Copy() VClock {
	out := make(VClock, len(v))
	for r, c := range v {
		out[r] = c
	}
	return out
}

// Compare returns the causal relation of v to other.
func (v VClock) Compare(other VClock) Ordering {
	vLess, oLess := false, false
	for r, c := range v {
		if oc := other[r]; c > oc {
			oLess = true
		} else if c < oc {
			vLess = true
		}
	}
	for r, oc := range other {
		if c := v[r]; oc > c {
			vLess = true
		} else if oc < c {
			oLess = true
		}
	}
	switch {
	case vLess && oLess:
		return OrderingConcurrent
	case vLess:
		return OrderingBefore
	case oLess:
		return OrderingAfter
	default:
		return OrderingEqual
	}
}

// Replicas returns the replica IDs with nonzero components, sorted.
func (v VClock) Replicas() []ReplicaID {
	out := make([]ReplicaID, 0, len(v))
	for r, c := range v {
		if c > 0 {
			out = append(out, r)
		}
	}
	slices.Sort(out)
	return out
}
