package crdt

// GCounter is a grow-only counter. The zero value is ready to use.
type GCounter struct {
	counts map[ReplicaID]uint64
}

// NewGCounter returns an empty grow-only counter.
func NewGCounter() *GCounter {
	return &GCounter{counts: make(map[ReplicaID]uint64)}
}

func (g *GCounter) ensure() {
	if g.counts == nil {
		g.counts = make(map[ReplicaID]uint64)
	}
}

// Add increments the counter by n on behalf of replica r.
func (g *GCounter) Add(r ReplicaID, n uint64) {
	g.ensure()
	g.counts[r] += n
}

// Value returns the counter total.
func (g *GCounter) Value() uint64 {
	var sum uint64
	for _, c := range g.counts {
		sum += c
	}
	return sum
}

// Merge folds other into g (pairwise max per replica).
func (g *GCounter) Merge(other *GCounter) {
	if other == nil {
		return
	}
	g.ensure()
	for r, c := range other.counts {
		if c > g.counts[r] {
			g.counts[r] = c
		}
	}
}

// Copy returns a deep copy.
func (g *GCounter) Copy() *GCounter {
	out := NewGCounter()
	for r, c := range g.counts {
		out.counts[r] = c
	}
	return out
}

// PNCounter is a counter supporting increments and decrements, built
// from two grow-only counters. The zero value is ready to use.
type PNCounter struct {
	pos GCounter
	neg GCounter
}

// NewPNCounter returns an empty PN-counter.
func NewPNCounter() *PNCounter { return &PNCounter{} }

// Add increments by n on behalf of replica r.
func (p *PNCounter) Add(r ReplicaID, n uint64) { p.pos.Add(r, n) }

// Sub decrements by n on behalf of replica r.
func (p *PNCounter) Sub(r ReplicaID, n uint64) { p.neg.Add(r, n) }

// Value returns the signed total.
func (p *PNCounter) Value() int64 {
	return int64(p.pos.Value()) - int64(p.neg.Value())
}

// Merge folds other into p.
func (p *PNCounter) Merge(other *PNCounter) {
	if other == nil {
		return
	}
	p.pos.Merge(&other.pos)
	p.neg.Merge(&other.neg)
}

// Copy returns a deep copy.
func (p *PNCounter) Copy() *PNCounter {
	out := NewPNCounter()
	out.pos = *p.pos.Copy()
	out.neg = *p.neg.Copy()
	return out
}
