package crdt

// GCounter is a grow-only counter. The zero value is ready to use.
type GCounter struct {
	counts map[ReplicaID]uint64
}

// NewGCounter returns an empty grow-only counter.
func NewGCounter() *GCounter {
	return &GCounter{counts: make(map[ReplicaID]uint64)}
}

func (g *GCounter) ensure() {
	if g.counts == nil {
		g.counts = make(map[ReplicaID]uint64)
	}
}

// Add increments the counter by n on behalf of replica r.
func (g *GCounter) Add(r ReplicaID, n uint64) {
	g.ensure()
	g.counts[r] += n
}

// Value returns the counter total.
func (g *GCounter) Value() uint64 {
	var sum uint64
	for _, c := range g.counts {
		sum += c
	}
	return sum
}

// Merge folds other into g (pairwise max per replica).
func (g *GCounter) Merge(other *GCounter) {
	if other == nil {
		return
	}
	g.ensure()
	for r, c := range other.counts {
		if c > g.counts[r] {
			g.counts[r] = c
		}
	}
}

// Copy returns a deep copy.
func (g *GCounter) Copy() *GCounter {
	out := NewGCounter()
	for r, c := range g.counts {
		out.counts[r] = c
	}
	return out
}

// Frontier returns the per-replica counts as a digest: a peer that
// sends its frontier receives DeltaSince(frontier) — only the rows it
// is behind on — instead of the whole counter.
func (g *GCounter) Frontier() map[ReplicaID]uint64 {
	out := make(map[ReplicaID]uint64, len(g.counts))
	for r, c := range g.counts {
		out[r] = c
	}
	return out
}

// DeltaSince returns the rows strictly ahead of the known frontier —
// the counter's join-decomposition. Nil when nothing is ahead.
func (g *GCounter) DeltaSince(known map[ReplicaID]uint64) map[ReplicaID]uint64 {
	var out map[ReplicaID]uint64
	for r, c := range g.counts {
		if c > known[r] {
			if out == nil {
				out = make(map[ReplicaID]uint64)
			}
			out[r] = c
		}
	}
	return out
}

// MergeDelta folds a delta (from DeltaSince) into g: pairwise max,
// idempotent under re-delivery.
func (g *GCounter) MergeDelta(d map[ReplicaID]uint64) {
	g.ensure()
	for r, c := range d {
		if c > g.counts[r] {
			g.counts[r] = c
		}
	}
}

// PNCounter is a counter supporting increments and decrements, built
// from two grow-only counters. The zero value is ready to use.
type PNCounter struct {
	pos GCounter
	neg GCounter
}

// NewPNCounter returns an empty PN-counter.
func NewPNCounter() *PNCounter { return &PNCounter{} }

// Add increments by n on behalf of replica r.
func (p *PNCounter) Add(r ReplicaID, n uint64) { p.pos.Add(r, n) }

// Sub decrements by n on behalf of replica r.
func (p *PNCounter) Sub(r ReplicaID, n uint64) { p.neg.Add(r, n) }

// Value returns the signed total.
func (p *PNCounter) Value() int64 {
	return int64(p.pos.Value()) - int64(p.neg.Value())
}

// Merge folds other into p.
func (p *PNCounter) Merge(other *PNCounter) {
	if other == nil {
		return
	}
	p.pos.Merge(&other.pos)
	p.neg.Merge(&other.neg)
}

// Copy returns a deep copy.
func (p *PNCounter) Copy() *PNCounter {
	out := NewPNCounter()
	out.pos = *p.pos.Copy()
	out.neg = *p.neg.Copy()
	return out
}

// PNFrontier is a PN-counter digest: the per-replica increment and
// decrement counts a replica has observed.
type PNFrontier struct {
	Pos map[ReplicaID]uint64
	Neg map[ReplicaID]uint64
}

// PNDelta is the PN-counter join-decomposition above some frontier.
type PNDelta struct {
	Pos map[ReplicaID]uint64
	Neg map[ReplicaID]uint64
}

// Empty reports whether the delta carries nothing.
func (d PNDelta) Empty() bool { return len(d.Pos) == 0 && len(d.Neg) == 0 }

// Frontier returns the counter's digest.
func (p *PNCounter) Frontier() PNFrontier {
	return PNFrontier{Pos: p.pos.Frontier(), Neg: p.neg.Frontier()}
}

// DeltaSince returns the rows strictly ahead of the known frontier.
func (p *PNCounter) DeltaSince(known PNFrontier) PNDelta {
	return PNDelta{Pos: p.pos.DeltaSince(known.Pos), Neg: p.neg.DeltaSince(known.Neg)}
}

// MergeDelta folds a delta (from DeltaSince) into p.
func (p *PNCounter) MergeDelta(d PNDelta) {
	p.pos.MergeDelta(d.Pos)
	p.neg.MergeDelta(d.Neg)
}
