package crdt

import "time"

// LWWRegister is a last-writer-wins register. Writes carry a timestamp
// (virtual simulation time in this repository) and the writing replica's
// ID; merge keeps the write with the larger timestamp, breaking ties by
// replica ID so all replicas resolve conflicts identically.
type LWWRegister struct {
	value   any
	ts      time.Duration
	replica ReplicaID
	set     bool
}

// Set records a write. Writes that lose to the current state (older
// timestamp, or equal timestamp with smaller replica ID) are ignored,
// which makes Set usable both for local writes and remote replays. It
// reports whether the write won.
func (l *LWWRegister) Set(value any, ts time.Duration, r ReplicaID) bool {
	if !l.wins(ts, r) {
		return false
	}
	l.value = value
	l.ts = ts
	l.replica = r
	l.set = true
	return true
}

// wins reports whether a write at (ts, r) supersedes the current state.
func (l *LWWRegister) wins(ts time.Duration, r ReplicaID) bool {
	if !l.set {
		return true
	}
	if ts != l.ts {
		return ts > l.ts
	}
	return r > l.replica
}

// Get returns the current value and whether the register was ever set.
func (l *LWWRegister) Get() (any, bool) {
	return l.value, l.set
}

// Timestamp returns the winning write's timestamp.
func (l *LWWRegister) Timestamp() time.Duration { return l.ts }

// Writer returns the winning write's replica.
func (l *LWWRegister) Writer() ReplicaID { return l.replica }

// Merge folds other into l.
func (l *LWWRegister) Merge(other *LWWRegister) {
	if other == nil || !other.set {
		return
	}
	l.Set(other.value, other.ts, other.replica)
}

// Copy returns a copy. The value is shared (values must be treated as
// immutable, like simulator messages).
func (l *LWWRegister) Copy() *LWWRegister {
	out := *l
	return &out
}
