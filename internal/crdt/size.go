package crdt

import "time"

// SizedValue lets a value payload report its own encoded size, so
// entry sizing reflects real wire cost for structured values (e.g.
// dataflow.Item with its label and lineage) instead of a flat guess.
type SizedValue interface {
	EncodedSize() int
}

// scalarOverhead is the assumed encoded size of fixed-width scalars
// (numbers, timestamps) in a compact binary encoding.
const scalarOverhead = 8

// ValueSize estimates the encoded size of an entry value. Values
// implementing SizedValue report exactly; scalars use their natural
// width; unknown payloads fall back to a conservative constant so the
// estimate never reads as free.
func ValueSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 1
	case SizedValue:
		return x.EncodedSize()
	case string:
		return len(x)
	case bool:
		return 1
	case float64, float32, int, int64, int32, uint, uint64, uint32, time.Duration:
		return scalarOverhead
	default:
		return 2 * scalarOverhead
	}
}

// EntrySize estimates the encoded size of one LWW entry: key bytes,
// origin timestamp, replica ID, the deleted flag, and the value
// payload.
func EntrySize(e Entry) int {
	return len(e.Key) + scalarOverhead + len(e.Replica) + 1 + ValueSize(e.Value)
}

// EntriesSize sums EntrySize over a batch.
func EntriesSize(entries []Entry) int {
	n := 0
	for _, e := range entries {
		n += EntrySize(e)
	}
	return n
}
