package observatory

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// DefaultFlightRingSize bounds the flight recorder's memory: the
// newest events win, exactly like a hardware flight recorder.
const DefaultFlightRingSize = 4096

// FlightSchema tags dump files; bump on incompatible change.
const FlightSchema = "riotscope/flight/v1"

// FlightRecorder keeps a bounded ring of the most recent observability
// events of a run — journal entries (mirrored on the bus as core.*) and
// protocol spans alike — so that when an oracle trips, the moments
// leading up to the failure can be dumped as a structured artifact.
// Attaching one to a bus never alters the run: subscribers only read.
type FlightRecorder struct {
	sub  *obs.Subscription
	size int
}

// NewFlightRecorder attaches a recorder to the bus. size <= 0 selects
// DefaultFlightRingSize.
func NewFlightRecorder(bus *obs.Bus, size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRingSize
	}
	return &FlightRecorder{sub: bus.Subscribe(size), size: size}
}

// Close detaches the recorder from the bus. The ring remains drainable.
func (fr *FlightRecorder) Close() { fr.sub.Close() }

// Snapshot drains the ring, oldest first.
func (fr *FlightRecorder) Snapshot() []obs.Event { return fr.sub.Events() }

// Dropped reports how many events the ring overwrote before Snapshot.
func (fr *FlightRecorder) Dropped() uint64 { return fr.sub.Dropped() }

// FlightEvent is one recorded event in dump form: durations rendered as
// strings so the artifact reads as documentation.
type FlightEvent struct {
	At     string `json:"at"`
	Dur    string `json:"dur,omitempty"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FlightDump is the structured artifact written when an oracle fires.
type FlightDump struct {
	Schema string `json:"schema"`
	// Name identifies the failing run (the chaos oracle uses
	// "<archetype>-<journal-hash-prefix>").
	Name string `json:"name"`
	// Reason lists why the oracle fired (failure kind: detail lines).
	Reason []string `json:"reason,omitempty"`
	// Dropped counts ring overwrites: non-zero means the window below
	// is the *tail* of the run, not all of it.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events is the recorded window, oldest first.
	Events []FlightEvent `json:"events"`
}

// NewFlightDump assembles a dump from a snapshot.
func NewFlightDump(name string, reason []string, events []obs.Event, dropped uint64) FlightDump {
	d := FlightDump{Schema: FlightSchema, Name: name, Reason: reason, Dropped: dropped}
	d.Events = make([]FlightEvent, 0, len(events))
	for _, ev := range events {
		fe := FlightEvent{
			At: ev.At.String(), Kind: ev.Kind, Node: ev.Node,
			Span: ev.Span, Parent: ev.Parent, Detail: ev.Detail,
		}
		if ev.Dur > 0 {
			fe.Dur = ev.Dur.String()
		}
		d.Events = append(d.Events, fe)
	}
	return d
}

// Dump snapshots the recorder into an artifact.
func (fr *FlightRecorder) Dump(name string, reason []string) FlightDump {
	events := fr.Snapshot()
	return NewFlightDump(name, reason, events, fr.Dropped())
}

// WriteFile writes the dump as <dir>/<name>.flight.json (creating dir)
// and returns the path.
func (d FlightDump) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, d.Name+".flight.json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFlightDump loads a dump written by WriteFile.
func ReadFlightDump(path string) (FlightDump, error) {
	var d FlightDump
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != FlightSchema {
		return d, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, FlightSchema)
	}
	return d, nil
}
