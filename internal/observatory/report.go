package observatory

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// FormatAnalysis renders the analysis as a human-readable incident
// report: headline, R(t) timeline, then one block per incident in
// detection order. showAllZones forwards to FormatTimeline.
func FormatAnalysis(a Analysis, showAllZones bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %s, %d zone(s), %d fault event(s)\n",
		a.Duration.Round(time.Millisecond), a.Zones, len(a.Faults))
	fmt.Fprintf(&b, "incidents: %d (%d recovered, %d unresolved)", len(a.Incidents),
		len(a.Incidents)-a.Unresolved, a.Unresolved)
	if a.IslandTransitions > 0 || a.Placements > 0 {
		fmt.Fprintf(&b, "   reactions: %d placement(s), %d island transition(s)",
			a.Placements, a.IslandTransitions)
	}
	b.WriteByte('\n')
	if a.MTTD.Count > 0 {
		fmt.Fprintf(&b, "MTTD p50=%s p99=%s max=%s (over %d fault-attributed incidents)\n",
			a.MTTD.P50.Round(time.Millisecond), a.MTTD.P99.Round(time.Millisecond),
			a.MTTD.Max.Round(time.Millisecond), a.MTTD.Count)
	}
	if a.MTTR.Count > 0 {
		fmt.Fprintf(&b, "MTTR p50=%s p99=%s max=%s (over %d recovered incidents)\n",
			a.MTTR.P50.Round(time.Millisecond), a.MTTR.P99.Round(time.Millisecond),
			a.MTTR.Max.Round(time.Millisecond), a.MTTR.Count)
	}
	if tl := FormatTimeline(a.Timeline, showAllZones); tl != "" {
		b.WriteString(tl)
	}
	for i, inc := range a.Incidents {
		fmt.Fprintf(&b, "#%-3d %s\n", i+1, inc)
		for _, re := range inc.Reactions {
			fmt.Fprintf(&b, "      %8s  %-10s %s\n", re.At.Round(time.Millisecond), re.Kind, re.Detail)
		}
	}
	return b.String()
}

// WriteTraceOverlay exports the analysis as Chrome trace-event JSON:
// each zone renders as one "thread" carrying its incidents as spans
// (detection → recovery), with faults and reactions as instants on the
// system thread. Load the file in chrome://tracing or ui.perfetto.dev —
// optionally alongside a full -trace capture of the same run, which
// shares the time axis (both are virtual time since run start).
func WriteTraceOverlay(a Analysis, w io.Writer) error {
	// Reuse the obs exporter: replay the analysis onto a private bus as
	// spans/instants and let the collector render them.
	bus := obs.NewBus(func() time.Duration { return 0 })
	tc := obs.Collect(bus)
	defer tc.Close()

	for _, f := range a.Faults {
		bus.Publish(obs.Event{At: f.At, Kind: "fault", Detail: f.Detail})
	}
	for _, inc := range a.Incidents {
		node := fmt.Sprintf("zone-%d", inc.Zone)
		dur := a.Duration - inc.DetectedAt
		kind := "incident." + inc.Requirement + ".unresolved"
		if inc.Recovered {
			dur = inc.TTR
			kind = "incident." + inc.Requirement
		}
		if dur <= 0 {
			dur = time.Millisecond
		}
		bus.Publish(obs.Event{At: inc.DetectedAt, Dur: dur, Kind: kind, Node: node, Detail: inc.Detect})
		for _, re := range inc.Reactions {
			bus.Publish(obs.Event{At: re.At, Kind: "reaction." + re.Kind, Node: node, Detail: re.Detail})
		}
	}
	return tc.WriteChromeTrace(w)
}
