package observatory

import (
	"fmt"
	"strings"
	"time"
)

// DefaultWindows is the R(t) resolution when Options.Windows is zero.
const DefaultWindows = 24

// ZoneTimeline is one zone's windowed availability.
type ZoneTimeline struct {
	Zone int `json:"zone"`
	// R is the zone's availability per window: the fraction of the
	// window during which none of the zone's requirements was in
	// violation (per the journal's violation/recovery transitions).
	R []float64 `json:"r"`
	// Overall is the zone's whole-run availability.
	Overall float64 `json:"overall"`
}

// Timeline is the windowed R(t) view of a run: what a scalar R
// time-averages away.
type Timeline struct {
	// Window is each bucket's width; Windows the bucket count.
	Window  time.Duration `json:"window"`
	Windows int           `json:"windows"`
	// Goal is whole-goal availability per window (1 when no zone held
	// an open violation, time-weighted within the window).
	Goal []float64 `json:"goal"`
	// GoalOverall is the whole-run goal availability — the journal's
	// approximation of Report.GoalPersistence (it differs only by the
	// warmup window, during which monitors do not sample).
	GoalOverall float64 `json:"goal_overall"`
	// PerZone holds each zone's row, ordered by zone index.
	PerZone []ZoneTimeline `json:"per_zone"`
}

// interval is one violated stretch [from, to).
type interval struct {
	from, to time.Duration
}

// buildTimeline computes windowed availability from incident spans.
func buildTimeline(incidents []Incident, zones int, duration time.Duration, windows int) Timeline {
	if windows <= 0 {
		windows = DefaultWindows
	}
	tl := Timeline{Windows: windows}
	if duration <= 0 || zones <= 0 {
		return tl
	}
	tl.Window = duration / time.Duration(windows)
	if tl.Window <= 0 {
		tl.Window = time.Nanosecond
	}

	perZone := make([][]interval, zones)
	var all []interval
	for _, inc := range incidents {
		to := duration
		if inc.Recovered {
			to = inc.RecoveredAt
		}
		iv := interval{from: inc.DetectedAt, to: to}
		if iv.to <= iv.from {
			continue
		}
		if inc.Zone < zones {
			perZone[inc.Zone] = append(perZone[inc.Zone], iv)
		}
		all = append(all, iv)
	}

	tl.Goal = availability(all, duration, windows)
	tl.GoalOverall = overallAvailability(all, duration)
	for z := 0; z < zones; z++ {
		tl.PerZone = append(tl.PerZone, ZoneTimeline{
			Zone:    z,
			R:       availability(perZone[z], duration, windows),
			Overall: overallAvailability(perZone[z], duration),
		})
	}
	return tl
}

// merge coalesces possibly-overlapping violated intervals (two
// requirements of one zone can be violated at once; the violated time
// must not double-count).
func merge(ivs []interval) []interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sorted := append([]interval(nil), ivs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].from < sorted[j-1].from; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.from <= last.to {
			if iv.to > last.to {
				last.to = iv.to
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// availability computes the satisfied fraction of each window.
func availability(ivs []interval, duration time.Duration, windows int) []float64 {
	ivs = merge(ivs)
	out := make([]float64, windows)
	w := duration / time.Duration(windows)
	for i := 0; i < windows; i++ {
		lo := time.Duration(i) * w
		hi := lo + w
		if i == windows-1 {
			hi = duration // absorb the integer-division remainder
		}
		width := hi - lo
		if width <= 0 {
			out[i] = 1
			continue
		}
		var violated time.Duration
		for _, iv := range ivs {
			from, to := iv.from, iv.to
			if from < lo {
				from = lo
			}
			if to > hi {
				to = hi
			}
			if to > from {
				violated += to - from
			}
		}
		out[i] = 1 - float64(violated)/float64(width)
	}
	return out
}

// overallAvailability computes the satisfied fraction of the whole run.
func overallAvailability(ivs []interval, duration time.Duration) float64 {
	if duration <= 0 {
		return 1
	}
	var violated time.Duration
	for _, iv := range merge(ivs) {
		violated += iv.to - iv.from
	}
	return 1 - float64(violated)/float64(duration)
}

// sparkRunes maps availability to a glyph, worst (block) to best (dot).
var sparkRunes = []rune("█▇▆▅▄▃▂·")

// Spark renders one availability row as a sparkline of outage density:
// '·' is a fully-available window, solid blocks are outage. Rendering
// outage (not availability) keeps a healthy run visually quiet.
func Spark(r []float64) string {
	var b strings.Builder
	for _, v := range r {
		switch {
		case v < 0:
			v = 0
		case v > 1:
			v = 1
		}
		idx := int(v * float64(len(sparkRunes)-1))
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// FormatTimeline renders the timeline as aligned rows: the whole-goal
// row first, then any zone that saw at least one degraded window (fully
// healthy zones are summarized, not listed — at city scale 200 quiet
// rows would bury the signal). With showAll every zone is listed.
func FormatTimeline(tl Timeline, showAll bool) string {
	if tl.Windows == 0 || len(tl.Goal) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "R(t) over %d × %s windows ('·' available, '█' outage):\n",
		tl.Windows, tl.Window.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-8s %s  R=%.3f\n", "goal", Spark(tl.Goal), tl.GoalOverall)
	quiet := 0
	for _, zt := range tl.PerZone {
		if !showAll && zt.Overall >= 1 {
			quiet++
			continue
		}
		fmt.Fprintf(&b, "  %-8s %s  R=%.3f\n", fmt.Sprintf("zone %d", zt.Zone), Spark(zt.R), zt.Overall)
	}
	if quiet > 0 {
		fmt.Fprintf(&b, "  (%d zone(s) fully available, not shown)\n", quiet)
	}
	return b.String()
}
