// Package observatory turns a run's journal into an explanation. The
// paper treats resilience as a property to be continuously monitored —
// "the persistence of reliable requirements satisfaction when facing
// change" — but a scalar R collapses *when* availability was lost and
// *how long* detection, reaction and recovery took. This package is the
// read-only analysis layer that recovers that structure from any
// core.System run:
//
//   - Incident records: each requirement violation becomes an incident
//     linking the fault that (most plausibly) caused it, the moment the
//     monitors detected it, the reactions the architecture took while it
//     was open (placements, failovers, island transitions), and the
//     recovery — with per-incident MTTD (fault → detection) and TTR
//     (detection → recovery).
//   - R(t) timelines: per-zone and whole-goal availability over fixed
//     windows, so a run renders as a timeline instead of one number.
//   - A flight recorder (see flight.go): a bounded ring of recent
//     journal events and obs spans that dumps a structured artifact when
//     the chaos oracle fires.
//
// Everything here only *reads* journals and bus events; attaching the
// observatory never changes a run's behavior, so pinned journal hashes
// and corpus replays stay bit-identical (enforced by tests).
package observatory

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Requirement classes an incident can violate, parsed from the
// journal's violation/recovery details.
const (
	ReqTemperature = "temperature"
	ReqFreshness   = "freshness"
)

// Incident is one violation episode of a single zone requirement: the
// span from first detection to recovery, annotated with the fault it is
// attributed to and the reactions taken while it was open.
type Incident struct {
	// Zone and Requirement identify the violated monitor.
	Zone        int    `json:"zone"`
	Requirement string `json:"requirement"`

	// FaultAt/Fault describe the most recent injected fault at or
	// before detection — the causal attribution the journal's span
	// parenting uses. HasFault is false when the violation preceded any
	// fault (e.g. environment shocks), leaving MTTD undefined.
	HasFault bool          `json:"has_fault"`
	FaultAt  time.Duration `json:"fault_at,omitempty"`
	Fault    string        `json:"fault,omitempty"`

	// DetectedAt is when the monitors first saw the violation; Detect
	// is the journal detail.
	DetectedAt time.Duration `json:"detected_at"`
	Detect     string        `json:"detect"`

	// Reactions are the placement/island journal events recorded while
	// the incident was open — what the architecture did about it.
	Reactions []core.RunEvent `json:"reactions,omitempty"`

	// Recovered reports whether the requirement was satisfied again
	// before the run ended; RecoveredAt is when.
	Recovered   bool          `json:"recovered"`
	RecoveredAt time.Duration `json:"recovered_at,omitempty"`

	// MTTD is detection latency (FaultAt → DetectedAt; zero without an
	// attributed fault). TTR is repair time (DetectedAt → RecoveredAt;
	// zero while unresolved).
	MTTD time.Duration `json:"mttd,omitempty"`
	TTR  time.Duration `json:"ttr,omitempty"`
}

// String renders the incident as one journal-style line.
func (in Incident) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zone %d %s:", in.Zone, in.Requirement)
	if in.HasFault {
		fmt.Fprintf(&b, " fault %s (%s)", in.FaultAt.Round(time.Millisecond), in.Fault)
		fmt.Fprintf(&b, " → detected +%s", in.MTTD.Round(time.Millisecond))
	} else {
		fmt.Fprintf(&b, " detected %s (no prior fault)", in.DetectedAt.Round(time.Millisecond))
	}
	if len(in.Reactions) > 0 {
		fmt.Fprintf(&b, " → %d reaction(s)", len(in.Reactions))
	}
	if in.Recovered {
		fmt.Fprintf(&b, " → recovered +%s", in.TTR.Round(time.Millisecond))
	} else {
		b.WriteString(" → UNRESOLVED at end of run")
	}
	return b.String()
}

// DurationStats summarizes a duration distribution.
type DurationStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
	Mean  time.Duration `json:"mean"`
	Max   time.Duration `json:"max"`
}

func statsOf(r *metrics.LatencyRecorder) DurationStats {
	return DurationStats{
		Count: r.Count(),
		P50:   r.Percentile(50),
		P99:   r.Percentile(99),
		Mean:  r.Mean(),
		Max:   r.Max(),
	}
}

// Options parameterizes Analyze. The zero value infers everything from
// the journal.
type Options struct {
	// Duration is the run horizon. Zero infers the last event time.
	Duration time.Duration
	// Zones is the zone count. Zero infers max seen zone + 1.
	Zones int
	// Windows is the R(t) timeline resolution. Zero selects 24.
	Windows int
}

// Analysis is the derived explanation of one run.
type Analysis struct {
	Duration time.Duration `json:"duration"`
	Zones    int           `json:"zones"`

	// Faults lists every injected fault event.
	Faults []core.RunEvent `json:"faults,omitempty"`
	// Incidents in detection order.
	Incidents []Incident `json:"incidents"`
	// Unresolved counts incidents still open at the end of the run —
	// the journal-derived counterpart of Report.UnresolvedViolations.
	Unresolved int `json:"unresolved"`

	// MTTD aggregates detection latency over fault-attributed
	// incidents; MTTR aggregates repair time over recovered incidents.
	MTTD DurationStats `json:"mttd"`
	MTTR DurationStats `json:"mttr"`

	// Timeline is the windowed R(t) view.
	Timeline Timeline `json:"timeline"`

	// IslandTransitions counts island enter/rejoin events (hardened
	// runs only); Placements counts replans applied.
	IslandTransitions int `json:"island_transitions,omitempty"`
	Placements        int `json:"placements,omitempty"`
}

// openKey identifies an open violation.
type openKey struct {
	zone int
	req  string
}

// Analyze derives incidents and timelines from a run journal. It is a
// pure function of the events: calling it (or not) cannot affect the
// run that produced them.
func Analyze(events []core.RunEvent, opts Options) Analysis {
	a := Analysis{Duration: opts.Duration, Zones: opts.Zones}
	open := make(map[openKey]int) // key → index into a.Incidents
	var lastFault *core.RunEvent

	for i := range events {
		ev := events[i]
		if ev.At > a.Duration {
			a.Duration = ev.At
		}
		switch ev.Kind {
		case core.EventFault:
			a.Faults = append(a.Faults, ev)
			lastFault = &a.Faults[len(a.Faults)-1]
		case core.EventViolation:
			zone, req, ok := parseRequirement(ev.Detail)
			if !ok {
				continue
			}
			if zone+1 > a.Zones {
				a.Zones = zone + 1
			}
			inc := Incident{
				Zone: zone, Requirement: req,
				DetectedAt: ev.At, Detect: ev.Detail,
			}
			if lastFault != nil {
				inc.HasFault = true
				inc.FaultAt = lastFault.At
				inc.Fault = lastFault.Detail
				inc.MTTD = ev.At - lastFault.At
			}
			open[openKey{zone, req}] = len(a.Incidents)
			a.Incidents = append(a.Incidents, inc)
		case core.EventRecovery:
			zone, req, ok := parseRequirement(ev.Detail)
			if !ok {
				continue
			}
			idx, isOpen := open[openKey{zone, req}]
			if !isOpen {
				continue
			}
			inc := &a.Incidents[idx]
			inc.Recovered = true
			inc.RecoveredAt = ev.At
			inc.TTR = ev.At - inc.DetectedAt
			delete(open, openKey{zone, req})
		case core.EventPlacement, core.EventIsland:
			if ev.Kind == core.EventIsland {
				a.IslandTransitions++
			} else {
				a.Placements++
			}
			// A reaction belongs to every incident open while it fired.
			for _, idx := range open {
				a.Incidents[idx].Reactions = append(a.Incidents[idx].Reactions, ev)
			}
		}
	}

	a.Unresolved = len(open)
	mttd := &metrics.LatencyRecorder{}
	mttr := &metrics.LatencyRecorder{}
	for _, inc := range a.Incidents {
		if inc.HasFault {
			mttd.Record(inc.MTTD)
		}
		if inc.Recovered {
			mttr.Record(inc.TTR)
		}
	}
	a.MTTD = statsOf(mttd)
	a.MTTR = statsOf(mttr)
	a.Timeline = buildTimeline(a.Incidents, a.Zones, a.Duration, opts.Windows)
	return a
}

// parseRequirement extracts the zone index and requirement class from a
// violation/recovery journal detail ("zone 3 temperature out of band
// (27.1°)", "zone 0 data fresh at controller again").
func parseRequirement(detail string) (zone int, req string, ok bool) {
	rest, found := strings.CutPrefix(detail, "zone ")
	if !found {
		return 0, "", false
	}
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return 0, "", false
	}
	zone, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return 0, "", false
	}
	switch {
	case strings.Contains(rest[sp:], "temperature"):
		return zone, ReqTemperature, true
	case strings.Contains(rest[sp:], "data"):
		return zone, ReqFreshness, true
	default:
		return 0, "", false
	}
}
