package observatory

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// shortScenario is a fast disrupted run for integration tests.
func shortScenario() core.ScenarioConfig {
	cfg := core.DefaultScenario()
	cfg.Duration = 6 * time.Minute
	return cfg
}

// TestObservatoryIsReadOnly is the contract the whole package rests on:
// attaching a flight recorder (activating the obs bus) and analyzing
// the journal must leave the run's journal hash bit-identical to a bare
// run.
func TestObservatoryIsReadOnly(t *testing.T) {
	cfg := shortScenario()

	bare := core.NewSystem(cfg, core.ML4)
	bare.Run()
	bareHash := bare.JournalHash()

	observed := core.NewSystem(cfg, core.ML4)
	fr := NewFlightRecorder(observed.Bus(), 0)
	observed.Run()
	obsHash := observed.JournalHash()
	a := Analyze(observed.Journal(), Options{Duration: cfg.Duration, Zones: cfg.Zones})
	fr.Close()

	if bareHash != obsHash {
		t.Fatalf("journal hash drifted under observation: %s vs %s", bareHash, obsHash)
	}
	if len(a.Incidents) == 0 {
		t.Fatal("disrupted run produced no incidents")
	}
	if len(fr.Snapshot()) == 0 {
		t.Fatal("flight recorder captured nothing")
	}
}

// TestAnalysisAgreesWithReport cross-checks the two independent
// derivations of non-recovery: the report counts monitors still
// violated at the final sample, the analysis counts incidents without a
// recovery event.
func TestAnalysisAgreesWithReport(t *testing.T) {
	for _, arch := range []core.Archetype{core.ML1, core.ML4} {
		cfg := shortScenario()
		sys := core.NewSystem(cfg, arch)
		report := sys.Run()
		a := Analyze(sys.Journal(), Options{Duration: cfg.Duration, Zones: cfg.Zones})
		if a.Unresolved != report.UnresolvedViolations {
			t.Errorf("%v: analysis unresolved=%d, report=%d", arch, a.Unresolved, report.UnresolvedViolations)
		}
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	bus := obs.NewBus(nil)
	fr := NewFlightRecorder(bus, 8)
	defer fr.Close()
	for i := 0; i < 12; i++ { // overflow the ring: newest 8 win
		bus.Emit("core.fault", "", 0, 0, "event %d", i)
	}
	dump := fr.Dump("ml4-test", []string{"low-persistence: R=0.1"})
	if len(dump.Events) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(dump.Events))
	}
	if dump.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dump.Dropped)
	}
	if dump.Events[len(dump.Events)-1].Detail != "event 11" {
		t.Fatalf("newest event = %+v", dump.Events[len(dump.Events)-1])
	}

	dir := t.TempDir()
	path, err := dump.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != dump.Name || len(back.Events) != len(dump.Events) || back.Reason[0] != dump.Reason[0] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestWriteTraceOverlay(t *testing.T) {
	j := []core.RunEvent{
		{At: 10 * time.Second, Kind: core.EventFault, Detail: "crash gw-0"},
		{At: 14 * time.Second, Kind: core.EventViolation, Detail: "zone 0 data stale at controller"},
		{At: 20 * time.Second, Kind: core.EventRecovery, Detail: "zone 0 data fresh at controller again"},
		{At: 30 * time.Second, Kind: core.EventViolation, Detail: "zone 1 temperature out of band (27.0°)"},
	}
	a := Analyze(j, Options{Duration: time.Minute, Zones: 2})
	var sb strings.Builder
	if err := WriteTraceOverlay(a, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"incident.freshness"`, `"incident.temperature.unresolved"`, `"fault"`, `"zone-0"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace overlay missing %s:\n%s", want, out)
		}
	}
}
