package observatory

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// journal builds a synthetic run journal.
func journal(events ...core.RunEvent) []core.RunEvent { return events }

func ev(at time.Duration, kind, detail string) core.RunEvent {
	return core.RunEvent{At: at, Kind: kind, Detail: detail}
}

func TestAnalyzeEmptyJournal(t *testing.T) {
	a := Analyze(nil, Options{Duration: time.Minute, Zones: 2})
	if len(a.Incidents) != 0 || a.Unresolved != 0 {
		t.Fatalf("empty journal produced incidents: %+v", a)
	}
	if a.Timeline.GoalOverall != 1 {
		t.Fatalf("GoalOverall = %v, want 1", a.Timeline.GoalOverall)
	}
	for _, zt := range a.Timeline.PerZone {
		if zt.Overall != 1 {
			t.Fatalf("zone %d overall = %v, want 1", zt.Zone, zt.Overall)
		}
	}
}

func TestAnalyzeIncidentLifecycle(t *testing.T) {
	j := journal(
		ev(10*time.Second, core.EventFault, "crash gw-0"),
		ev(14*time.Second, core.EventViolation, "zone 0 data stale at controller"),
		ev(16*time.Second, core.EventPlacement, "leader cl-0 proposes ctrl-0→cl-1"),
		ev(20*time.Second, core.EventRecovery, "zone 0 data fresh at controller again"),
		ev(30*time.Second, core.EventViolation, "zone 1 temperature out of band (27.3°)"),
	)
	a := Analyze(j, Options{Duration: time.Minute, Zones: 2})
	if len(a.Incidents) != 2 {
		t.Fatalf("incidents = %d, want 2", len(a.Incidents))
	}

	first := a.Incidents[0]
	if first.Zone != 0 || first.Requirement != ReqFreshness {
		t.Fatalf("first incident = %+v", first)
	}
	if !first.HasFault || first.MTTD != 4*time.Second {
		t.Fatalf("MTTD = %v (hasFault=%v), want 4s", first.MTTD, first.HasFault)
	}
	if !first.Recovered || first.TTR != 6*time.Second {
		t.Fatalf("TTR = %v (recovered=%v), want 6s", first.TTR, first.Recovered)
	}
	if len(first.Reactions) != 1 || first.Reactions[0].Kind != core.EventPlacement {
		t.Fatalf("reactions = %+v", first.Reactions)
	}

	second := a.Incidents[1]
	if second.Zone != 1 || second.Requirement != ReqTemperature {
		t.Fatalf("second incident = %+v", second)
	}
	if second.Recovered {
		t.Fatal("second incident should be unresolved")
	}
	if a.Unresolved != 1 {
		t.Fatalf("unresolved = %d, want 1", a.Unresolved)
	}
	if a.MTTD.Count != 2 || a.MTTR.Count != 1 {
		t.Fatalf("stats counts: MTTD=%d MTTR=%d", a.MTTD.Count, a.MTTR.Count)
	}
	if a.MTTR.P50 != 6*time.Second || a.MTTR.Max != 6*time.Second {
		t.Fatalf("MTTR stats = %+v", a.MTTR)
	}
}

func TestAnalyzeReactionOnlyAttachesWhileOpen(t *testing.T) {
	j := journal(
		ev(5*time.Second, core.EventPlacement, "leader gw-0 proposes ctrl-0→gw-0"),
		ev(10*time.Second, core.EventViolation, "zone 0 temperature out of band (28.0°)"),
		ev(20*time.Second, core.EventRecovery, "zone 0 temperature back in band (24.0°)"),
		ev(25*time.Second, core.EventIsland, "gw-1 enters island mode: no quorum contact for 6s"),
	)
	a := Analyze(j, Options{Duration: 30 * time.Second, Zones: 1})
	if len(a.Incidents) != 1 {
		t.Fatalf("incidents = %d", len(a.Incidents))
	}
	if len(a.Incidents[0].Reactions) != 0 {
		t.Fatalf("reactions outside the open window attached: %+v", a.Incidents[0].Reactions)
	}
	if a.Placements != 1 || a.IslandTransitions != 1 {
		t.Fatalf("placements=%d islands=%d", a.Placements, a.IslandTransitions)
	}
}

func TestAnalyzeInfersZonesAndDuration(t *testing.T) {
	j := journal(
		ev(10*time.Second, core.EventViolation, "zone 3 temperature out of band (28.0°)"),
		ev(40*time.Second, core.EventRecovery, "zone 3 temperature back in band (24.0°)"),
	)
	a := Analyze(j, Options{})
	if a.Zones != 4 {
		t.Fatalf("zones = %d, want 4 (inferred)", a.Zones)
	}
	if a.Duration != 40*time.Second {
		t.Fatalf("duration = %v, want 40s (inferred)", a.Duration)
	}
}

func TestAnalyzeRecoveryWithoutViolationIgnored(t *testing.T) {
	j := journal(
		ev(10*time.Second, core.EventRecovery, "zone 0 temperature back in band (24.0°)"),
		ev(11*time.Second, core.EventViolation, "not a zone detail"),
	)
	a := Analyze(j, Options{Duration: time.Minute, Zones: 1})
	if len(a.Incidents) != 0 {
		t.Fatalf("incidents = %+v, want none", a.Incidents)
	}
}

func TestParseRequirement(t *testing.T) {
	cases := []struct {
		detail string
		zone   int
		req    string
		ok     bool
	}{
		{"zone 0 temperature out of band (31.2°)", 0, ReqTemperature, true},
		{"zone 12 data stale at controller", 12, ReqFreshness, true},
		{"zone 3 temperature back in band (24.9°)", 3, ReqTemperature, true},
		{"zone 7 data fresh at controller again", 7, ReqFreshness, true},
		{"item k observed at cloud (origin campus)", 0, "", false},
		{"zone x temperature out of band", 0, "", false},
		{"zone 4", 0, "", false},
	}
	for _, c := range cases {
		zone, req, ok := parseRequirement(c.detail)
		if zone != c.zone || req != c.req || ok != c.ok {
			t.Errorf("parseRequirement(%q) = (%d, %q, %v), want (%d, %q, %v)",
				c.detail, zone, req, ok, c.zone, c.req, c.ok)
		}
	}
}

func TestTimelineWindowsAccountOutage(t *testing.T) {
	// One zone violated for the middle half of a 40s run, 4 windows.
	j := journal(
		ev(10*time.Second, core.EventViolation, "zone 0 temperature out of band (28.0°)"),
		ev(30*time.Second, core.EventRecovery, "zone 0 temperature back in band (24.0°)"),
	)
	a := Analyze(j, Options{Duration: 40 * time.Second, Zones: 1, Windows: 4})
	want := []float64{1, 0, 0, 1}
	for i, r := range a.Timeline.Goal {
		if r != want[i] {
			t.Fatalf("goal windows = %v, want %v", a.Timeline.Goal, want)
		}
	}
	if a.Timeline.GoalOverall != 0.5 {
		t.Fatalf("overall = %v, want 0.5", a.Timeline.GoalOverall)
	}
	if a.Timeline.PerZone[0].Overall != 0.5 {
		t.Fatalf("zone overall = %v, want 0.5", a.Timeline.PerZone[0].Overall)
	}
}

func TestTimelineOverlappingRequirementsNoDoubleCount(t *testing.T) {
	// Temperature and freshness of the same zone violated over
	// overlapping spans: violated time is the union, not the sum.
	j := journal(
		ev(10*time.Second, core.EventViolation, "zone 0 temperature out of band (28.0°)"),
		ev(15*time.Second, core.EventViolation, "zone 0 data stale at controller"),
		ev(20*time.Second, core.EventRecovery, "zone 0 temperature back in band (24.0°)"),
		ev(25*time.Second, core.EventRecovery, "zone 0 data fresh at controller again"),
	)
	a := Analyze(j, Options{Duration: 30 * time.Second, Zones: 1, Windows: 1})
	want := 1 - 15.0/30.0
	if got := a.Timeline.GoalOverall; got != want {
		t.Fatalf("overall = %v, want %v", got, want)
	}
}

func TestSparkAndFormat(t *testing.T) {
	s := Spark([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("spark = %q", s)
	}
	if []rune(s)[0] != '█' || []rune(s)[2] != '·' {
		t.Fatalf("spark endpoints = %q", s)
	}

	j := journal(
		ev(10*time.Second, core.EventFault, "crash gw-0"),
		ev(14*time.Second, core.EventViolation, "zone 0 data stale at controller"),
		ev(20*time.Second, core.EventRecovery, "zone 0 data fresh at controller again"),
	)
	a := Analyze(j, Options{Duration: time.Minute, Zones: 2})
	out := FormatAnalysis(a, false)
	for _, want := range []string{"incidents: 1 (1 recovered, 0 unresolved)", "MTTD", "MTTR", "zone 0", "R(t)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// One fully-quiet zone must be summarized, not listed.
	if !strings.Contains(out, "1 zone(s) fully available") {
		t.Fatalf("quiet-zone summary missing:\n%s", out)
	}
}

func TestIncidentStringUnresolved(t *testing.T) {
	inc := Incident{Zone: 2, Requirement: ReqTemperature, DetectedAt: 5 * time.Second}
	if s := inc.String(); !strings.Contains(s, "UNRESOLVED") || !strings.Contains(s, "no prior fault") {
		t.Fatalf("incident string = %q", s)
	}
}
