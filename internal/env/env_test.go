package env

import (
	"testing"
	"time"

	"repro/internal/space"
)

const zone = space.ZoneID("z1")

func TestDefineAndValue(t *testing.T) {
	e := New(1)
	e.Define(zone, Temperature, Process{Initial: 21, Min: -10, Max: 50})
	v, ok := e.Value(zone, Temperature)
	if !ok || v != 21 {
		t.Fatalf("Value = %v/%v, want 21", v, ok)
	}
	if _, ok := e.Value(zone, Humidity); ok {
		t.Fatal("undefined variable reported a value")
	}
}

func TestInitialClamped(t *testing.T) {
	e := New(1)
	e.Define(zone, Temperature, Process{Initial: 100, Min: 0, Max: 50})
	v, _ := e.Value(zone, Temperature)
	if v != 50 {
		t.Fatalf("initial = %v, want clamped to 50", v)
	}
}

func TestDriftIsLinear(t *testing.T) {
	e := New(1)
	e.Define(zone, Temperature, Process{Initial: 20, Drift: 0.5, Min: 0, Max: 100})
	for i := 0; i < 10; i++ {
		e.Step(time.Second)
	}
	v, _ := e.Value(zone, Temperature)
	if v != 25 {
		t.Fatalf("after 10s of 0.5/s drift, value = %v, want 25", v)
	}
}

func TestStepClampsToBounds(t *testing.T) {
	e := New(1)
	e.Define(zone, Occupancy, Process{Initial: 9, Drift: 10, Min: 0, Max: 10})
	e.Step(5 * time.Second)
	v, _ := e.Value(zone, Occupancy)
	if v != 10 {
		t.Fatalf("value = %v, want clamped to 10", v)
	}
}

func TestUnboundedProcessNotClamped(t *testing.T) {
	e := New(1)
	e.Define(zone, Power, Process{Initial: 0, Drift: -5})
	e.Step(10 * time.Second)
	v, _ := e.Value(zone, Power)
	if v != -50 {
		t.Fatalf("value = %v, want -50 (Min==Max==0 means unbounded)", v)
	}
}

func TestNoiseMovesValue(t *testing.T) {
	e := New(42)
	e.Define(zone, Humidity, Process{Initial: 50, Noise: 2, Min: 0, Max: 100})
	e.Step(time.Second)
	v, _ := e.Value(zone, Humidity)
	if v == 50 {
		t.Fatal("noise process did not move the value")
	}
}

func TestShocksOccurAtConfiguredRate(t *testing.T) {
	e := New(7)
	e.Define(zone, Traffic, Process{Initial: 0, ShockProb: 0.5, ShockMag: 1})
	shocks := 0
	prev := 0.0
	const ticks = 1000
	for i := 0; i < ticks; i++ {
		e.Step(0) // dt=0 isolates the shock term
		v, _ := e.Value(zone, Traffic)
		if v != prev {
			shocks++
		}
		prev = v
	}
	if shocks < 400 || shocks > 600 {
		t.Fatalf("shocks = %d of %d at p=0.5, want ≈500", shocks, ticks)
	}
}

func TestSetAndAdd(t *testing.T) {
	e := New(1)
	e.Define(zone, Temperature, Process{Initial: 20, Min: 0, Max: 40})
	if err := e.Set(zone, Temperature, 35); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Value(zone, Temperature); v != 35 {
		t.Fatalf("after Set, value = %v", v)
	}
	if err := e.Add(zone, Temperature, -5); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Value(zone, Temperature); v != 30 {
		t.Fatalf("after Add, value = %v", v)
	}
	if err := e.Add(zone, Temperature, 100); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Value(zone, Temperature); v != 40 {
		t.Fatalf("Add did not clamp: %v", v)
	}
	if err := e.Set(zone, Humidity, 1); err == nil {
		t.Fatal("Set on undefined variable succeeded")
	}
	if err := e.Add(zone, Humidity, 1); err == nil {
		t.Fatal("Add on undefined variable succeeded")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	e := New(1)
	e.Define("zb", Temperature, Process{Initial: 1})
	e.Define("za", Humidity, Process{Initial: 2})
	e.Define("za", AirQuality, Process{Initial: 3})
	snap := e.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	if snap[0].Zone != "za" || snap[0].Variable != AirQuality {
		t.Fatalf("snapshot[0] = %+v, want za/air_quality", snap[0])
	}
	if snap[2].Zone != "zb" {
		t.Fatalf("snapshot[2] = %+v, want zb last", snap[2])
	}
}

func TestRedefineResetsValue(t *testing.T) {
	e := New(1)
	e.Define(zone, Temperature, Process{Initial: 20})
	if err := e.Set(zone, Temperature, 33); err != nil {
		t.Fatal(err)
	}
	e.Define(zone, Temperature, Process{Initial: 18})
	if v, _ := e.Value(zone, Temperature); v != 18 {
		t.Fatalf("redefine did not reset value: %v", v)
	}
	if n := len(e.Snapshot()); n != 1 {
		t.Fatalf("redefine duplicated the cell: %d entries", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New(5)
		e.Define(zone, Temperature, Process{Initial: 20, Noise: 1, ShockProb: 0.1, ShockMag: 3, Min: -50, Max: 50})
		var vals []float64
		for i := 0; i < 100; i++ {
			e.Step(time.Second)
			v, _ := e.Value(zone, Temperature)
			vals = append(vals, v)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
