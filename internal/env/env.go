// Package env simulates the physical environment an IoT deployment is
// embedded in. The paper treats the environment as a first-class source
// of change (§II, §VII): design-time assumptions about it may not hold at
// runtime, and the *rate* of environmental change stresses a system's
// self-adaptation machinery. This package models named environment
// variables per zone that evolve under configurable stochastic processes
// (drift, noise, shocks) and can be influenced by actuators, closing the
// sense→analyze→plan→actuate loop of Figure 5.
package env

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/space"
)

// Variable names an environmental quantity, e.g. "temperature" or
// "occupancy".
type Variable string

// Common variables used by the examples and experiments.
const (
	Temperature Variable = "temperature"
	Humidity    Variable = "humidity"
	Occupancy   Variable = "occupancy"
	AirQuality  Variable = "air_quality"
	Power       Variable = "power"
	Traffic     Variable = "traffic"
)

// Process defines how a variable evolves per simulation tick. The update
// is: value += Drift*dt + Noise*N(0,1)*sqrt(dt) + shock, where dt is in
// seconds and a shock of magnitude ShockMag occurs with probability
// ShockProb per tick. Values are clamped to [Min, Max].
type Process struct {
	Initial   float64
	Drift     float64 // units per second
	Noise     float64 // stddev of Brownian term per sqrt(second)
	ShockProb float64 // probability of a shock per tick
	ShockMag  float64 // magnitude of a shock (sign randomized)
	Min, Max  float64
}

// cell is the state of one variable in one zone.
type cell struct {
	proc  Process
	value float64
}

// key identifies a (zone, variable) pair.
type key struct {
	zone space.ZoneID
	v    Variable
}

// Environment holds the current value of every (zone, variable) pair and
// advances them under their processes. It is driven by an external
// stepper (the scenario runner) via Step, so it shares the simulation's
// virtual clock implicitly.
type Environment struct {
	rng   *rand.Rand
	cells map[key]*cell
	order []key // deterministic iteration
}

// New constructs an environment with its own deterministic random
// stream (separate from the network's so traffic and weather don't
// perturb each other's sequences).
func New(seed int64) *Environment {
	return &Environment{
		rng:   rand.New(rand.NewSource(seed)),
		cells: make(map[key]*cell),
	}
}

// Define installs a variable in a zone with the given process. Defining
// the same pair again replaces the process and resets the value.
func (e *Environment) Define(zone space.ZoneID, v Variable, p Process) {
	k := key{zone, v}
	if _, dup := e.cells[k]; !dup {
		e.order = append(e.order, k)
	}
	e.cells[k] = &cell{proc: p, value: clamp(p.Initial, p.Min, p.Max)}
}

// Value returns the current value of a variable in a zone.
func (e *Environment) Value(zone space.ZoneID, v Variable) (float64, bool) {
	c, ok := e.cells[key{zone, v}]
	if !ok {
		return 0, false
	}
	return c.value, true
}

// Set forces a variable to a value (clamped), e.g. to script a scenario
// event like a heat wave.
func (e *Environment) Set(zone space.ZoneID, v Variable, val float64) error {
	c, ok := e.cells[key{zone, v}]
	if !ok {
		return fmt.Errorf("env: undefined variable %s in zone %s", v, zone)
	}
	c.value = clamp(val, c.proc.Min, c.proc.Max)
	return nil
}

// Add applies a delta to a variable, used by actuators: a running HVAC
// unit adds a negative temperature delta each tick.
func (e *Environment) Add(zone space.ZoneID, v Variable, delta float64) error {
	c, ok := e.cells[key{zone, v}]
	if !ok {
		return fmt.Errorf("env: undefined variable %s in zone %s", v, zone)
	}
	c.value = clamp(c.value+delta, c.proc.Min, c.proc.Max)
	return nil
}

// Step advances every variable by dt under its process.
func (e *Environment) Step(dt time.Duration) {
	sec := dt.Seconds()
	sq := 0.0
	if sec > 0 {
		sq = math.Sqrt(sec)
	}
	for _, k := range e.order {
		c := e.cells[k]
		v := c.value + c.proc.Drift*sec + c.proc.Noise*e.rng.NormFloat64()*sq
		if c.proc.ShockProb > 0 && e.rng.Float64() < c.proc.ShockProb {
			mag := c.proc.ShockMag
			if e.rng.Intn(2) == 0 {
				mag = -mag
			}
			v += mag
		}
		c.value = clamp(v, c.proc.Min, c.proc.Max)
	}
}

// Snapshot returns all (zone, variable, value) triples in a stable order.
func (e *Environment) Snapshot() []Reading {
	out := make([]Reading, 0, len(e.order))
	for _, k := range e.order {
		out = append(out, Reading{Zone: k.zone, Variable: k.v, Value: e.cells[k].value})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Zone != out[j].Zone {
			return out[i].Zone < out[j].Zone
		}
		return out[i].Variable < out[j].Variable
	})
	return out
}

// Reading is one observed (zone, variable, value) triple.
type Reading struct {
	Zone     space.ZoneID
	Variable Variable
	Value    float64
}

func clamp(v, lo, hi float64) float64 {
	if lo == 0 && hi == 0 { // unbounded process
		return v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
