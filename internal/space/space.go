// Package space models the physical and administrative space an IoT
// system is deployed in: locations, zones, administrative domains and
// legal jurisdictions. The paper identifies locality as a key contextual
// characteristic of IoT (§IV, §VII): devices are spatially distributed,
// belong to administrative domains, and data is subject to the
// jurisdiction it is produced in. This package gives those concepts an
// analyzable representation and derives network latency from distance,
// so that "the edge is close" is a measured property rather than an
// assumption.
package space

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// Point is a position in a 2-D deployment plane, in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points in meters.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Jurisdiction is a legal data-protection regime, e.g. GDPR or CCPA.
// Privacy policies in the data plane reference jurisdictions.
type Jurisdiction string

// Common jurisdictions used throughout examples and experiments.
const (
	JurisdictionNone Jurisdiction = ""
	JurisdictionGDPR Jurisdiction = "GDPR"
	JurisdictionCCPA Jurisdiction = "CCPA"
)

// DomainID identifies an administrative domain (an owner/operator scope).
type DomainID string

// Domain is an administrative domain: a set of devices under one
// operational authority, within one legal jurisdiction and one level of
// trust. Transfer of a device across domains is one of the paper's
// disruption classes.
type Domain struct {
	ID           DomainID
	Jurisdiction Jurisdiction
	// Trusted reports whether components in this domain are trusted by
	// the system operator. Data policies typically forbid sensitive
	// flows into untrusted domains.
	Trusted bool
}

// ZoneID identifies a spatial zone.
type ZoneID string

// Zone is a rectangular region of the deployment plane, e.g. a building
// floor, a street block, or a hospital ward. Zones scope edge
// responsibility: an edge node manages the devices inside its zone.
type Zone struct {
	ID       ZoneID
	Min, Max Point
	DomainID DomainID
}

// Contains reports whether p lies inside the zone (inclusive bounds).
func (z Zone) Contains(p Point) bool {
	return p.X >= z.Min.X && p.X <= z.Max.X && p.Y >= z.Min.Y && p.Y <= z.Max.Y
}

// Placement records where an entity is and which domain currently owns
// it. Ownership can diverge from the zone's domain after a transfer.
type Placement struct {
	Position Point
	Domain   DomainID
}

// Map is the spatial model: zones, domains and entity placements. The
// zero value is not usable; construct with NewMap.
type Map struct {
	domains    map[DomainID]Domain
	zones      map[ZoneID]Zone
	placements map[string]Placement
	zoneOrder  []ZoneID // deterministic iteration
	// zoneMemo caches ZoneOf results (the first containing zone in
	// registration order). Orchestrator feasibility checks resolve the
	// zone of every candidate for every pending service, which at
	// metropolis scale turns the linear zone scan quadratic. Entries
	// are dropped when the entity moves and the whole memo flushes
	// when a zone is added or redefined; only positive results are
	// cached, so a later zone that newly contains an unmatched entity
	// is picked up without invalidation.
	zoneMemo map[string]ZoneID
}

// NewMap constructs an empty spatial model.
func NewMap() *Map {
	return &Map{
		domains:    make(map[DomainID]Domain),
		zones:      make(map[ZoneID]Zone),
		placements: make(map[string]Placement),
		zoneMemo:   make(map[string]ZoneID),
	}
}

// AddDomain registers an administrative domain.
func (m *Map) AddDomain(d Domain) {
	m.domains[d.ID] = d
}

// Domain returns the domain with the given ID.
func (m *Map) Domain(id DomainID) (Domain, bool) {
	d, ok := m.domains[id]
	return d, ok
}

// AddZone registers a zone. The zone's domain must already exist.
func (m *Map) AddZone(z Zone) error {
	if _, ok := m.domains[z.DomainID]; !ok && z.DomainID != "" {
		return fmt.Errorf("space: zone %q references unknown domain %q", z.ID, z.DomainID)
	}
	if _, dup := m.zones[z.ID]; !dup {
		m.zoneOrder = append(m.zoneOrder, z.ID)
	}
	m.zones[z.ID] = z
	clear(m.zoneMemo) // bounds may have changed for an already-memoized entity
	return nil
}

// Zone returns the zone with the given ID.
func (m *Map) Zone(id ZoneID) (Zone, bool) {
	z, ok := m.zones[id]
	return z, ok
}

// Zones returns all zones in registration order. The returned slice is a
// copy.
func (m *Map) Zones() []Zone {
	out := make([]Zone, 0, len(m.zoneOrder))
	for _, id := range m.zoneOrder {
		out = append(out, m.zones[id])
	}
	return out
}

// Place positions an entity and assigns its owning domain.
func (m *Map) Place(entity string, p Point, domain DomainID) {
	m.placements[entity] = Placement{Position: p, Domain: domain}
	delete(m.zoneMemo, entity)
}

// Move updates an entity's position, keeping its domain.
func (m *Map) Move(entity string, p Point) error {
	pl, ok := m.placements[entity]
	if !ok {
		return fmt.Errorf("space: unknown entity %q", entity)
	}
	pl.Position = p
	m.placements[entity] = pl
	delete(m.zoneMemo, entity)
	return nil
}

// Transfer moves an entity to a different administrative domain. This is
// the "transfer of administrative domains" disruption from the paper.
func (m *Map) Transfer(entity string, to DomainID) error {
	pl, ok := m.placements[entity]
	if !ok {
		return fmt.Errorf("space: unknown entity %q", entity)
	}
	if _, ok := m.domains[to]; !ok {
		return fmt.Errorf("space: unknown domain %q", to)
	}
	pl.Domain = to
	m.placements[entity] = pl
	return nil
}

// PlacementOf returns an entity's placement.
func (m *Map) PlacementOf(entity string) (Placement, bool) {
	pl, ok := m.placements[entity]
	return pl, ok
}

// ZoneOf returns the first zone (in registration order) containing the
// entity's position.
func (m *Map) ZoneOf(entity string) (Zone, bool) {
	pl, ok := m.placements[entity]
	if !ok {
		return Zone{}, false
	}
	if id, ok := m.zoneMemo[entity]; ok {
		return m.zones[id], true
	}
	for _, id := range m.zoneOrder {
		if z := m.zones[id]; z.Contains(pl.Position) {
			m.zoneMemo[entity] = id
			return z, true
		}
	}
	return Zone{}, false
}

// JurisdictionOf returns the jurisdiction of the entity's owning domain.
func (m *Map) JurisdictionOf(entity string) Jurisdiction {
	pl, ok := m.placements[entity]
	if !ok {
		return JurisdictionNone
	}
	d, ok := m.domains[pl.Domain]
	if !ok {
		return JurisdictionNone
	}
	return d.Jurisdiction
}

// SameDomain reports whether two entities are owned by the same domain.
func (m *Map) SameDomain(a, b string) bool {
	pa, oka := m.placements[a]
	pb, okb := m.placements[b]
	return oka && okb && pa.Domain == pb.Domain
}

// Distance returns the Euclidean distance between two placed entities in
// meters, and false if either is unplaced.
func (m *Map) Distance(a, b string) (float64, bool) {
	pa, oka := m.placements[a]
	pb, okb := m.placements[b]
	if !oka || !okb {
		return 0, false
	}
	return pa.Position.Distance(pb.Position), true
}

// Nearest returns, among candidates, the entity closest to the given
// entity, preferring earlier candidates on ties. It returns false if the
// entity or all candidates are unplaced.
func (m *Map) Nearest(entity string, candidates []string) (string, bool) {
	pl, ok := m.placements[entity]
	if !ok {
		return "", false
	}
	best, bestDist := "", math.Inf(1)
	for _, c := range candidates {
		pc, ok := m.placements[c]
		if !ok {
			continue
		}
		if d := pl.Position.Distance(pc.Position); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, best != ""
}

// NearestOrder returns the placed candidates ordered by ascending
// distance from the entity (ties broken by candidate order); unplaced
// candidates are dropped. If the entity itself is unplaced, the
// candidates are returned in their given order.
//
// Distances are computed once per candidate, not per comparison: the
// metropolis tier orders ~1000 edge candidates for each of ~100k
// sensors at construction, and map lookups inside the comparator were
// the single largest line in that profile.
func (m *Map) NearestOrder(entity string, candidates []string) []string {
	pl, entPlaced := m.placements[entity]
	type cand struct {
		d float64
		c string
	}
	placed := make([]cand, 0, len(candidates))
	for _, c := range candidates {
		pc, ok := m.placements[c]
		if !ok {
			continue
		}
		var d float64
		if entPlaced {
			d = pl.Position.Distance(pc.Position)
		}
		placed = append(placed, cand{d: d, c: c})
	}
	out := make([]string, len(placed))
	if entPlaced {
		slices.SortStableFunc(placed, func(a, b cand) int {
			switch {
			case a.d < b.d:
				return -1
			case a.d > b.d:
				return 1
			}
			return 0
		})
	}
	for i, p := range placed {
		out[i] = p.c
	}
	return out
}

// Entities returns the IDs of all placed entities, sorted.
func (m *Map) Entities() []string {
	out := make([]string, 0, len(m.placements))
	for id := range m.placements {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LatencyModel derives one-way network latency from spatial distance:
// a base propagation/processing delay plus a per-meter term, with an
// extra WAN penalty for links that cross domains (traffic between
// domains transits the public internet in our model). This replaces the
// paper's implicit assumption that "the edge is close and the cloud is
// far" with a measurable model.
type LatencyModel struct {
	Base       time.Duration // fixed per-hop cost
	PerMeter   time.Duration // distance-proportional cost
	CrossWAN   time.Duration // added when endpoints are in different domains
	DefaultLat time.Duration // used when an entity is unplaced
}

// DefaultLatencyModel returns parameters giving ≈1–2ms within a zone,
// ≈5–10ms across a site and ≈40ms+ across domains — the shape of real
// LAN/MAN/WAN deployments.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		Base:       500 * time.Microsecond,
		PerMeter:   3 * time.Microsecond,
		CrossWAN:   40 * time.Millisecond,
		DefaultLat: 5 * time.Millisecond,
	}
}

// Latency computes the one-way latency between two placed entities.
func (lm LatencyModel) Latency(m *Map, a, b string) time.Duration {
	d, ok := m.Distance(a, b)
	if !ok {
		return lm.DefaultLat
	}
	lat := lm.Base + time.Duration(d*float64(lm.PerMeter))
	if !m.SameDomain(a, b) {
		lat += lm.CrossWAN
	}
	return lat
}
