package space

import (
	"math"
	"testing"
	"time"
)

func newTestMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	m.AddDomain(Domain{ID: "campus", Jurisdiction: JurisdictionGDPR, Trusted: true})
	m.AddDomain(Domain{ID: "city", Jurisdiction: JurisdictionCCPA, Trusted: false})
	if err := m.AddZone(Zone{ID: "floor1", Min: Point{0, 0}, Max: Point{100, 100}, DomainID: "campus"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddZone(Zone{ID: "street", Min: Point{200, 0}, Max: Point{400, 100}, DomainID: "city"}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPointDistance(t *testing.T) {
	got := Point{0, 0}.Distance(Point{3, 4})
	if got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
}

func TestZoneContains(t *testing.T) {
	z := Zone{Min: Point{0, 0}, Max: Point{10, 10}}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"inside", Point{5, 5}, true},
		{"on edge", Point{10, 10}, true},
		{"outside x", Point{11, 5}, false},
		{"outside y", Point{5, -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := z.Contains(tt.p); got != tt.want {
				t.Fatalf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestAddZoneUnknownDomain(t *testing.T) {
	m := NewMap()
	if err := m.AddZone(Zone{ID: "z", DomainID: "ghost"}); err == nil {
		t.Fatal("AddZone with unknown domain succeeded")
	}
}

func TestPlaceAndZoneOf(t *testing.T) {
	m := newTestMap(t)
	m.Place("sensor1", Point{50, 50}, "campus")
	z, ok := m.ZoneOf("sensor1")
	if !ok || z.ID != "floor1" {
		t.Fatalf("ZoneOf = %v/%v, want floor1", z.ID, ok)
	}
	m.Place("nowhere", Point{150, 50}, "campus")
	if _, ok := m.ZoneOf("nowhere"); ok {
		t.Fatal("ZoneOf found a zone for a position outside all zones")
	}
}

func TestMove(t *testing.T) {
	m := newTestMap(t)
	m.Place("car", Point{50, 50}, "campus")
	if err := m.Move("car", Point{300, 50}); err != nil {
		t.Fatal(err)
	}
	z, ok := m.ZoneOf("car")
	if !ok || z.ID != "street" {
		t.Fatalf("after Move, zone = %v, want street", z.ID)
	}
	if err := m.Move("ghost", Point{0, 0}); err == nil {
		t.Fatal("Move of unknown entity succeeded")
	}
}

func TestTransferChangesJurisdiction(t *testing.T) {
	m := newTestMap(t)
	m.Place("dev", Point{10, 10}, "campus")
	if j := m.JurisdictionOf("dev"); j != JurisdictionGDPR {
		t.Fatalf("jurisdiction = %v, want GDPR", j)
	}
	if err := m.Transfer("dev", "city"); err != nil {
		t.Fatal(err)
	}
	if j := m.JurisdictionOf("dev"); j != JurisdictionCCPA {
		t.Fatalf("after transfer jurisdiction = %v, want CCPA", j)
	}
	if err := m.Transfer("dev", "ghost"); err == nil {
		t.Fatal("Transfer to unknown domain succeeded")
	}
	if err := m.Transfer("ghost", "city"); err == nil {
		t.Fatal("Transfer of unknown entity succeeded")
	}
}

func TestJurisdictionOfUnplaced(t *testing.T) {
	m := newTestMap(t)
	if j := m.JurisdictionOf("ghost"); j != JurisdictionNone {
		t.Fatalf("jurisdiction of unplaced = %v, want none", j)
	}
}

func TestSameDomain(t *testing.T) {
	m := newTestMap(t)
	m.Place("a", Point{1, 1}, "campus")
	m.Place("b", Point{2, 2}, "campus")
	m.Place("c", Point{3, 3}, "city")
	if !m.SameDomain("a", "b") {
		t.Fatal("a,b should share a domain")
	}
	if m.SameDomain("a", "c") {
		t.Fatal("a,c should not share a domain")
	}
	if m.SameDomain("a", "ghost") {
		t.Fatal("unplaced entity shares a domain")
	}
}

func TestNearest(t *testing.T) {
	m := newTestMap(t)
	m.Place("dev", Point{0, 0}, "campus")
	m.Place("e1", Point{10, 0}, "campus")
	m.Place("e2", Point{5, 0}, "campus")
	m.Place("e3", Point{100, 0}, "city")
	got, ok := m.Nearest("dev", []string{"e1", "e2", "e3"})
	if !ok || got != "e2" {
		t.Fatalf("Nearest = %q/%v, want e2", got, ok)
	}
	if _, ok := m.Nearest("ghost", []string{"e1"}); ok {
		t.Fatal("Nearest of unplaced entity succeeded")
	}
	if _, ok := m.Nearest("dev", []string{"ghost"}); ok {
		t.Fatal("Nearest with only unplaced candidates succeeded")
	}
}

func TestEntitiesSorted(t *testing.T) {
	m := newTestMap(t)
	m.Place("b", Point{}, "campus")
	m.Place("a", Point{}, "campus")
	got := m.Entities()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Entities = %v, want [a b]", got)
	}
}

func TestZonesReturnsCopyInOrder(t *testing.T) {
	m := newTestMap(t)
	zs := m.Zones()
	if len(zs) != 2 || zs[0].ID != "floor1" || zs[1].ID != "street" {
		t.Fatalf("Zones = %v", zs)
	}
	zs[0].ID = "mutated"
	if z, _ := m.Zone("floor1"); z.ID != "floor1" {
		t.Fatal("mutating returned slice affected the map")
	}
}

func TestLatencyModelLocalVsCrossDomain(t *testing.T) {
	m := newTestMap(t)
	lm := DefaultLatencyModel()
	m.Place("s", Point{0, 0}, "campus")
	m.Place("edge", Point{30, 40}, "campus") // 50m away, same domain
	m.Place("cloud", Point{30, 40}, "city")  // same spot, other domain

	local := lm.Latency(m, "s", "edge")
	wantLocal := lm.Base + 50*lm.PerMeter
	if local != wantLocal {
		t.Fatalf("local latency = %v, want %v", local, wantLocal)
	}
	cross := lm.Latency(m, "s", "cloud")
	if cross != wantLocal+lm.CrossWAN {
		t.Fatalf("cross-domain latency = %v, want %v", cross, wantLocal+lm.CrossWAN)
	}
	if cross <= local {
		t.Fatal("cross-domain latency should exceed local latency")
	}
}

func TestLatencyModelUnplacedFallsBack(t *testing.T) {
	m := newTestMap(t)
	lm := DefaultLatencyModel()
	if got := lm.Latency(m, "ghost1", "ghost2"); got != lm.DefaultLat {
		t.Fatalf("latency = %v, want default %v", got, lm.DefaultLat)
	}
}

func TestDistanceUnplaced(t *testing.T) {
	m := newTestMap(t)
	m.Place("a", Point{0, 0}, "campus")
	if _, ok := m.Distance("a", "ghost"); ok {
		t.Fatal("Distance with unplaced entity succeeded")
	}
}

func TestLatencyScalesWithDistance(t *testing.T) {
	m := newTestMap(t)
	lm := DefaultLatencyModel()
	m.Place("a", Point{0, 0}, "campus")
	for _, d := range []float64{10, 100, 1000} {
		m.Place("b", Point{d, 0}, "campus")
		want := lm.Base + time.Duration(d*float64(lm.PerMeter))
		if got := lm.Latency(m, "a", "b"); got != want {
			t.Fatalf("latency at %vm = %v, want %v", d, got, want)
		}
	}
}

func TestNearestTieBreaksEarlier(t *testing.T) {
	m := newTestMap(t)
	m.Place("dev", Point{0, 0}, "campus")
	m.Place("x", Point{5, 0}, "campus")
	m.Place("y", Point{0, 5}, "campus")
	got, _ := m.Nearest("dev", []string{"x", "y"})
	if got != "x" {
		t.Fatalf("Nearest tie = %q, want x (earlier candidate)", got)
	}
}

func TestDistanceExact(t *testing.T) {
	m := newTestMap(t)
	m.Place("a", Point{1, 2}, "campus")
	m.Place("b", Point{4, 6}, "campus")
	d, ok := m.Distance("a", "b")
	if !ok || math.Abs(d-5) > 1e-12 {
		t.Fatalf("Distance = %v/%v, want 5", d, ok)
	}
}
