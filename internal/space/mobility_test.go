package space

import (
	"testing"
	"time"
)

func moverMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	m.AddDomain(Domain{ID: "d", Trusted: true})
	if err := m.AddZone(Zone{ID: "west", Max: Point{X: 100, Y: 100}, DomainID: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddZone(Zone{ID: "east", Min: Point{X: 101}, Max: Point{X: 200, Y: 100}, DomainID: "d"}); err != nil {
		t.Fatal(err)
	}
	m.Place("car", Point{X: 0, Y: 50}, "d")
	return m
}

func TestMoverConstructorErrors(t *testing.T) {
	m := moverMap(t)
	if _, err := NewMover(m, "ghost", 1, false, Point{}); err == nil {
		t.Fatal("unplaced entity accepted")
	}
	if _, err := NewMover(m, "car", 0, false, Point{}); err == nil {
		t.Fatal("zero speed accepted")
	}
	if _, err := NewMover(m, "car", 1, false); err == nil {
		t.Fatal("no waypoints accepted")
	}
}

func TestMoverMovesAtSpeed(t *testing.T) {
	m := moverMap(t)
	mv, err := NewMover(m, "car", 10, false, Point{X: 200, Y: 50})
	if err != nil {
		t.Fatal(err)
	}
	mv.Step(time.Second)
	if pos := mv.Position(); pos.X != 10 || pos.Y != 50 {
		t.Fatalf("position = %+v, want (10,50)", pos)
	}
}

func TestMoverZoneCrossing(t *testing.T) {
	m := moverMap(t)
	mv, err := NewMover(m, "car", 50, false, Point{X: 200, Y: 50})
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	for i := 0; i < 10 && !mv.Done(); i++ {
		if mv.Step(time.Second) {
			crossings++
		}
	}
	if crossings != 1 {
		t.Fatalf("zone crossings = %d, want 1 (west→east)", crossings)
	}
	z, ok := m.ZoneOf("car")
	if !ok || z.ID != "east" {
		t.Fatalf("final zone = %v", z.ID)
	}
	if !mv.Done() {
		t.Fatal("mover not done after reaching final waypoint")
	}
	if mv.ETA() != 0 {
		t.Fatalf("ETA after arrival = %v", mv.ETA())
	}
	if mv.Step(time.Second) {
		t.Fatal("done mover reported a crossing")
	}
}

func TestMoverMultiWaypointAndETA(t *testing.T) {
	m := moverMap(t)
	mv, err := NewMover(m, "car", 10, false, Point{X: 30, Y: 50}, Point{X: 30, Y: 90})
	if err != nil {
		t.Fatal(err)
	}
	// Total path: 30 + 40 = 70m at 10 m/s → 7s.
	if eta := mv.ETA(); eta != 7*time.Second {
		t.Fatalf("ETA = %v, want 7s", eta)
	}
	// One long step crosses the first waypoint and continues.
	mv.Step(4 * time.Second) // 40m: 30 to wp1, 10 up
	if pos := mv.Position(); pos.X != 30 || pos.Y != 60 {
		t.Fatalf("position = %+v, want (30,60)", pos)
	}
	mv.Step(10 * time.Second)
	if !mv.Done() {
		t.Fatal("not done")
	}
	if pos := mv.Position(); pos.Y != 90 {
		t.Fatalf("final position = %+v", pos)
	}
}

func TestMoverLoopPatrols(t *testing.T) {
	m := moverMap(t)
	mv, err := NewMover(m, "car", 100, true, Point{X: 50, Y: 50}, Point{X: 0, Y: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mv.Step(time.Second)
	}
	if mv.Done() {
		t.Fatal("looping mover reported done")
	}
	if pos := mv.Position(); pos.X > 50 {
		t.Fatalf("patrol left its segment: %+v", pos)
	}
	if mv.ETA() <= 0 {
		t.Fatal("looping ETA should be effectively infinite")
	}
}
