package space

import (
	"fmt"
	"math"
	"time"
)

// Mover moves one entity along a list of waypoints at constant speed —
// the simplest useful mobility model for the paper's "mobility and
// unpredictable human activity" (§II): phones, vehicles and wearables
// crossing zone (and therefore responsibility and privacy-scope)
// boundaries. Drive Step from the simulation's environment loop.
type Mover struct {
	spaces    *Map
	entity    string
	waypoints []Point
	next      int
	speed     float64 // meters per second
	loop      bool
}

// NewMover creates a mover for a placed entity. Speed must be
// positive; with loop the entity patrols the waypoints forever,
// otherwise it stops at the last one.
func NewMover(m *Map, entity string, speed float64, loop bool, waypoints ...Point) (*Mover, error) {
	if _, ok := m.PlacementOf(entity); !ok {
		return nil, fmt.Errorf("space: mover for unplaced entity %q", entity)
	}
	if speed <= 0 {
		return nil, fmt.Errorf("space: mover speed %v must be positive", speed)
	}
	if len(waypoints) == 0 {
		return nil, fmt.Errorf("space: mover needs at least one waypoint")
	}
	return &Mover{
		spaces:    m,
		entity:    entity,
		waypoints: append([]Point(nil), waypoints...),
		speed:     speed,
		loop:      loop,
	}, nil
}

// Done reports whether a non-looping mover has reached its final
// waypoint.
func (mv *Mover) Done() bool {
	return !mv.loop && mv.next >= len(mv.waypoints)
}

// Step advances the entity by dt. It reports whether the entity's
// containing zone changed during this step (the trigger for handover
// logic).
func (mv *Mover) Step(dt time.Duration) bool {
	if mv.Done() {
		return false
	}
	beforeZone, hadBefore := mv.spaces.ZoneOf(mv.entity)
	budget := mv.speed * dt.Seconds()
	pl, _ := mv.spaces.PlacementOf(mv.entity)
	pos := pl.Position
	for budget > 0 && mv.next < len(mv.waypoints) {
		target := mv.waypoints[mv.next]
		dist := pos.Distance(target)
		if dist <= budget {
			pos = target
			budget -= dist
			mv.next++
			if mv.next >= len(mv.waypoints) && mv.loop {
				mv.next = 0
			}
			continue
		}
		// Move part-way toward the target.
		frac := budget / dist
		pos = Point{
			X: pos.X + (target.X-pos.X)*frac,
			Y: pos.Y + (target.Y-pos.Y)*frac,
		}
		budget = 0
	}
	_ = mv.spaces.Move(mv.entity, pos)
	afterZone, hasAfter := mv.spaces.ZoneOf(mv.entity)
	switch {
	case hadBefore != hasAfter:
		return true
	case hadBefore && beforeZone.ID != afterZone.ID:
		return true
	default:
		return false
	}
}

// Position returns the entity's current position.
func (mv *Mover) Position() Point {
	pl, _ := mv.spaces.PlacementOf(mv.entity)
	return pl.Position
}

// ETA estimates the remaining travel time to the final waypoint for a
// non-looping mover (infinite for looping movers).
func (mv *Mover) ETA() time.Duration {
	if mv.loop {
		return time.Duration(math.MaxInt64)
	}
	if mv.Done() {
		return 0
	}
	pl, _ := mv.spaces.PlacementOf(mv.entity)
	pos := pl.Position
	total := 0.0
	for i := mv.next; i < len(mv.waypoints); i++ {
		total += pos.Distance(mv.waypoints[i])
		pos = mv.waypoints[i]
	}
	return time.Duration(total / mv.speed * float64(time.Second))
}
