package core

import (
	"fmt"

	"repro/internal/simnet"
	"repro/internal/space"
)

// keyTableSize bounds the precomputed name tables below. The
// measurement loop renders zone-indexed keys on every tick of every
// run, so the realistic zone range is built once at package init and
// indices beyond it fall back to formatting. 1024 covers the city
// tier (200 zones) and the Figure 1 sweep's largest point (1000).
const keyTableSize = 1024

var (
	zoneTempKeys    [keyTableSize]string
	zoneTempAgeKeys [keyTableSize]string
	zoneOccKeys     [keyTableSize]string
	zoneIDTable     [keyTableSize]space.ZoneID
	actTopicTable   [keyTableSize]string
	controlFnTable  [keyTableSize]string
	tempSensor0     [keyTableSize]simnet.NodeID
)

func init() {
	for z := 0; z < keyTableSize; z++ {
		zoneTempKeys[z] = fmt.Sprintf("z%d/temp", z)
		zoneTempAgeKeys[z] = zoneTempKeys[z] + "/age"
		zoneOccKeys[z] = fmt.Sprintf("z%d/occ", z)
		zoneIDTable[z] = space.ZoneID(fmt.Sprintf("zone-%d", z))
		actTopicTable[z] = fmt.Sprintf("act/%d", z)
		controlFnTable[z] = fmt.Sprintf("zone-controller-%d", z)
		tempSensor0[z] = simnet.NodeID(fmt.Sprintf("z%d-s0", z))
	}
}
