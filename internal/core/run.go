package core

import (
	"time"

	"repro/internal/env"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simnet"
)

// coolDownWindow is the physical settling time after a repair: an
// outage that ends within this window after an external recovery event
// is attributed to the repair (a manual intervention), not to the
// architecture's own adaptation.
const coolDownWindow = 90 * time.Second

// Run executes the scenario to its horizon and returns the measured
// report. Run may be called once per System.
func (sys *System) Run() Report {
	sys.startEnvironmentLoop()
	sys.startMeasurementLoop()
	sys.sim.RunUntil(sys.cfg.Duration)
	sys.mergeJournal()
	if st := sys.SyncTraffic(); st.FramesSent > 0 || st.FramesIn > 0 {
		// One summary line at the horizon, after the lane merge so it
		// lands last regardless of shard count.
		sys.record(EventSync, "frames=%d entries=%d bytes=%d acks=%d",
			st.FramesSent, st.EntriesSent, st.BytesSent, st.AcksIn)
	}
	return sys.report()
}

// envTickBody advances the physical world by one step: environment
// processes, actuator effects and battery drain. Shared between the
// simulated scheduler loop and the live wall-clock driver.
func (sys *System) envTickBody(step time.Duration) {
	sys.envm.Step(step)
	for _, rig := range sys.actuators {
		// A crashed actuator node has no effect on the world.
		if sys.nodeUp(rig.id) {
			rig.actuator.Apply(sys.envm, step)
		}
	}
	for _, rig := range sys.sensors {
		if rig.dev.Idle(step) {
			// Battery exhausted: the node goes dark.
			sys.setNodeDown(rig.id, true)
		}
	}
}

// startEnvironmentLoop advances the physical world: environment
// processes, actuator effects and battery drain, every EnvStep.
func (sys *System) startEnvironmentLoop() {
	step := sys.cfg.EnvStep
	var tick func()
	tick = func() {
		sys.envTickBody(step)
		if sys.sim.Now()+step <= sys.cfg.Duration {
			sys.sim.After(step, tick)
		}
	}
	sys.sim.After(step, tick)
}

// sampleInvocations records one invocation-success sample per zone:
// did each zone see a successful control tick within 1.5 control
// intervals?
func (sys *System) sampleInvocations() {
	inv := sys.cfg.ControlInterval
	for z := 0; z < sys.cfg.Zones; z++ {
		ok := sys.now()-time.Duration(sys.lastControlOK[z].Load()) <= inv+inv/2
		sys.invocations.RecordOutcome(ok)
	}
}

// startMeasurementLoop samples ground truth and per-vector metrics.
func (sys *System) startMeasurementLoop() {
	step := sys.cfg.EnvStep
	var tick func()
	tick = func() {
		if sys.sim.Now() >= sys.warmup {
			sys.measure()
		}
		if sys.sim.Now()+step <= sys.cfg.Duration {
			sys.sim.After(step, tick)
		}
	}
	sys.sim.After(step, tick)

	inv := sys.cfg.ControlInterval
	var invTick func()
	invTick = func() {
		if sys.sim.Now() >= sys.warmup {
			sys.sampleInvocations()
		}
		if sys.sim.Now()+inv <= sys.cfg.Duration {
			sys.sim.After(inv, invTick)
		}
	}
	sys.sim.After(inv, invTick)
}

// controllerStack resolves which stack currently controls zone z (and
// is up), per the archetype's rules.
func (sys *System) controllerStack(z int) (*edgeStack, bool) {
	switch sys.arch {
	case ML1:
		st := sys.gateways[z]
		return st, sys.nodeUp(st.id)
	case ML2:
		return sys.cloud, sys.nodeUp(cloudID)
	case ML3:
		if sys.nodeUp(sys.gateways[z].id) {
			return sys.gateways[z], true
		}
		bak := sys.backupFor(z)
		return bak, sys.nodeUp(bak.id)
	case ML4:
		if !sys.ml4Hardened() {
			for _, st := range sys.edgeStacks() {
				if st.applied[z] == st.id && sys.nodeUp(st.id) {
					return st, true
				}
			}
			return nil, false
		}
		// Hardened claim resolution: several stacks may claim a zone
		// during a partition (an islanded node and the quorum side both
		// believe they control it). The zone's effective controller is
		// the first claimant actually holding fresh data — the only one
		// whose control tick can act — falling back to the first bare
		// claimant when nobody has data.
		var first *edgeStack
		for _, st := range sys.edgeStacks() {
			if !sys.nodeUp(st.id) || !sys.ml4Controls(st, z) {
				continue
			}
			if _, fresh := sys.freshAt(st.view, zoneTempKey(z)); fresh {
				return st, true
			}
			if first == nil {
				first = st
			}
		}
		return first, first != nil
	default:
		return nil, false
	}
}

// servableCandidates lists the collectors a zone's sensors may use
// under the archetype's binding rules — the pervasiveness vector
// measures how often at least one is alive and reachable.
func (sys *System) servableCandidates(z int) []simnet.NodeID {
	switch sys.arch {
	case ML1:
		return []simnet.NodeID{gatewayID(z)}
	case ML2:
		return []simnet.NodeID{cloudID}
	case ML3:
		return []simnet.NodeID{gatewayID(z), sys.backupFor(z).id}
	case ML4:
		return sys.edgeIDs()
	default:
		return nil
	}
}

// freshAt reports whether key is present and fresh in the given view.
func (sys *System) freshAt(view dataView, key string) (time.Duration, bool) {
	if view == nil {
		return 0, false
	}
	item, ok := view(key)
	if !ok {
		return 0, false
	}
	age := sys.now() - item.ProducedAt
	return age, age <= sys.freshWin
}

// measure samples every metric once.
func (sys *System) measure() {
	now := sys.now()
	if sys.prevTempOK == nil {
		sys.prevTempOK = make([]bool, sys.cfg.Zones)
		sys.prevFresh = make([]bool, sys.cfg.Zones)
		sys.tempViolSpan = make([]uint64, sys.cfg.Zones)
		sys.freshViolSpan = make([]uint64, sys.cfg.Zones)
		for z := range sys.prevTempOK {
			sys.prevTempOK[z] = true
			sys.prevFresh[z] = true
		}
	}
	sat := make(map[model.RequirementID]bool, 2*sys.cfg.Zones)
	for z := 0; z < sys.cfg.Zones; z++ {
		// Ground-truth temperature requirement.
		temp, _ := sys.envm.Value(zoneID(z), env.Temperature)
		tempOK := temp >= sys.cfg.TempLow && temp <= sys.cfg.TempHigh
		sys.tempTrace[z].Record(now, tempOK)
		sat[sys.reqTemp[z]] = tempOK
		if tempOK != sys.prevTempOK[z] {
			if tempOK {
				sys.recordSpan(EventRecovery, sys.tempViolSpan[z], sys.lastFaultSpan,
					"zone %d temperature back in band (%.1f°)", z, temp)
				sys.tempViolSpan[z] = 0
			} else {
				sys.tempViolSpan[z] = sys.bus.NewSpanID()
				sys.recordSpan(EventViolation, sys.tempViolSpan[z], sys.lastFaultSpan,
					"zone %d temperature out of band (%.1f°)", z, temp)
			}
			sys.prevTempOK[z] = tempOK
		}

		// Freshness at the active controller.
		ctrl, up := sys.controllerStack(z)
		freshOK := false
		var ctrlView dataView
		if up && ctrl != nil {
			ctrlView = ctrl.view
			_, freshOK = sys.freshAt(ctrl.view, zoneTempKey(z))
		}
		sys.freshTrace[z].Record(now, freshOK)
		sat[sys.reqFresh[z]] = freshOK
		if freshOK != sys.prevFresh[z] {
			if freshOK {
				sys.recordSpan(EventRecovery, sys.freshViolSpan[z], sys.lastFaultSpan,
					"zone %d data fresh at controller again", z)
				sys.freshViolSpan[z] = 0
			} else {
				sys.freshViolSpan[z] = sys.bus.NewSpanID()
				sys.recordSpan(EventViolation, sys.freshViolSpan[z], sys.lastFaultSpan,
					"zone %d data stale at controller", z)
			}
			sys.prevFresh[z] = freshOK
		}

		// Pervasiveness: is any admissible collector alive and
		// reachable from the zone's first sensor?
		sensor := tempSensorID(z, 0)
		servable := false
		for _, c := range sys.servableCandidates(z) {
			if sys.nodeUp(c) && sys.reachable(sensor, c) {
				servable = true
				break
			}
		}
		sys.servable.RecordOutcome(servable)

		// Data-flow vector: the application's intended consumers.
		dash := sys.gateways[(z+1)%sys.cfg.Zones]
		var dashView dataView
		if sys.nodeUp(dash.id) {
			dashView = dash.view
		}
		var cloudView dataView
		if sys.nodeUp(cloudID) {
			cloudView = sys.cloud.view
		}
		for _, consumer := range []dataView{ctrlView, cloudView, dashView} {
			age, fresh := sys.freshAt(consumer, zoneTempKey(z))
			sys.dataAvail.RecordOutcome(fresh)
			if fresh {
				sys.staleness.Record(age)
			}
		}
		// Sensitive occupancy: its intended consumers are the edge
		// dashboards inside the jurisdiction (never the cloud).
		home := sys.gateways[z]
		var homeView dataView
		if sys.nodeUp(home.id) {
			homeView = home.view
		}
		for _, consumer := range []dataView{homeView, dashView} {
			_, fresh := sys.freshAt(consumer, zoneOccKey(z))
			sys.dataAvail.RecordOutcome(fresh)
		}
	}
	sys.goalTrace.Record(now, sys.goal.Satisfied(sat))
}

// report assembles the final Report, including the manual-intervention
// attribution against the fault log.
func (sys *System) report() Report {
	end := sys.cfg.Duration
	r := Report{
		Archetype:          sys.arch,
		GoalPersistence:    sys.goalTrace.TimeWeightedPersistence(end),
		Pervasiveness:      sys.servable.Value(),
		InvocationSuccess:  sys.invocations.Value(),
		DataAvailability:   sys.dataAvail.Value(),
		StalenessP95:       sys.staleness.Percentile(95),
		PrivacyViolations:  sys.violationCount(),
		DesignChecksPassed: sys.designPassed,
		RuntimeChecks:      int(sys.runtimeChecks.Load()),
		RuntimeAlerts:      int(sys.runtimeAlerts.Load()),
		Messages:           sys.messageCount(),
		Bytes:              sys.byteCount(),
	}
	st := sys.SyncTraffic()
	r.SyncFrames = int(st.FramesSent)
	r.SyncEntries = int(st.EntriesSent)
	r.SyncBytes = int(st.BytesSent)
	r.SyncAcks = int(st.AcksIn)
	// Each requirement has two assurance slots (runtime monitor,
	// design-time verdict); coverage is the filled fraction.
	totalAssurance := 2 * 2 * sys.cfg.Zones
	r.ValidationCoverage = float64(sys.runtimeMonitored+sys.designChecked) / float64(totalAssurance)
	if r.ValidationCoverage > 1 {
		r.ValidationCoverage = 1
	}

	// Requirements still violated at the final sample never recovered
	// within the run (prev slices are nil only if measurement never
	// started, i.e. the horizon ended inside the warmup window).
	if sys.prevTempOK != nil {
		for z := 0; z < sys.cfg.Zones; z++ {
			if !sys.prevTempOK[z] {
				r.UnresolvedViolations++
			}
			if !sys.prevFresh[z] {
				r.UnresolvedViolations++
			}
		}
	}

	var persistSum float64
	var mttrSum time.Duration
	mttrCount := 0
	recoveries := sys.recoveryTimes()
	for z := 0; z < sys.cfg.Zones; z++ {
		persistSum += sys.tempTrace[z].TimeWeightedPersistence(end)
		if m := sys.tempTrace[z].MTTR(); m > 0 {
			mttrSum += m
			mttrCount++
		}
		manual, auto := attributeOutages(sys.tempTrace[z], recoveries)
		r.ManualInterventions += manual
		r.AutoRecoveries += auto
	}
	r.TempPersistence = persistSum / float64(sys.cfg.Zones)
	if mttrCount > 0 {
		r.MTTR = mttrSum / time.Duration(mttrCount)
	}
	return r
}

// recoveryTimes extracts external repair instants from the fault log.
func (sys *System) recoveryTimes() []time.Duration {
	var out []time.Duration
	for _, ev := range sys.faultLog() {
		switch ev.Kind {
		case fault.KindRecover, fault.KindPartitionEnd, fault.KindLinkRestore:
			out = append(out, ev.At)
		}
	}
	return out
}

// attributeOutages classifies each completed outage of a trace as
// manually resolved (its end follows an external repair within the
// settling window) or automatically resolved by the architecture.
func attributeOutages(tr *metrics.SatisfactionTrace, recoveries []time.Duration) (manual, auto int) {
	for _, end := range tr.OutageEnds() {
		isManual := false
		for _, rec := range recoveries {
			if end >= rec && end-rec <= coolDownWindow {
				isManual = true
				break
			}
		}
		if isManual {
			manual++
		} else {
			auto++
		}
	}
	return manual, auto
}
