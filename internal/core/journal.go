package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// RunEvent is one entry of a system run's journal: faults as they are
// injected, controller placements as they change, requirement
// violations and recoveries as ground truth crosses the band, privacy
// violations as the auditor sees them, and models@runtime alerts.
type RunEvent struct {
	At     time.Duration
	Kind   string
	Detail string
}

// Journal event kinds.
const (
	EventFault     = "fault"
	EventPlacement = "placement"
	EventViolation = "violation"
	EventRecovery  = "recovery"
	EventPrivacy   = "privacy"
	EventAlert     = "models@runtime"
	// EventIsland marks island-mode transitions (enter/rejoin). Only
	// emitted under the hardened profile (ScenarioConfig.IslandMode),
	// so default-knob journals never contain it.
	EventIsland = "island"
	// EventSync summarizes the run's replication traffic (frames,
	// entries, bytes, acks over all store links). Emitted once at the
	// horizon, only for architectures with replicated stores — the
	// totals derive from the deterministic delivery sequence, so the
	// entry is shard-count-invariant like every other journal line.
	EventSync = "sync"
)

// record appends one journal entry at the current virtual time.
func (sys *System) record(kind, format string, args ...any) {
	sys.recordAt(nil, kind, 0, 0, format, args...)
}

// recordSpan is record with causal span IDs, from coordinator context
// (environment/measurement loops, fault subscribers).
func (sys *System) recordSpan(kind string, span, parent uint64, format string, args ...any) {
	sys.recordAt(nil, kind, span, parent, format, args...)
}

// recordOn appends one journal entry from a node's event (a shard-side
// call site). The entry is stamped with the node's lane clock and, in
// sharded mode, buffered per lane under the executing event's logical
// key so the post-run merge restores the global order.
func (sys *System) recordOn(ep simnet.Port, kind, format string, args ...any) {
	sys.recordAt(ep, kind, 0, 0, format, args...)
}

// laneEvent is a journal record tagged with the logical key of the
// event that emitted it, buffered per lane in sharded mode.
type laneEvent struct {
	seq uint64
	ev  RunEvent
}

// recordAt appends one journal entry and mirrors it onto the
// observability bus as a "core.<kind>" event carrying the given causal
// span IDs. The journal is written directly — not via a bus
// subscription — so it stays an always-on view while the bus keeps its
// zero-subscriber fast path. In sharded mode the entry goes to the
// executing lane's buffer (see mergeJournal); in legacy mode straight
// to the journal, byte-identically to the pre-sharding code.
func (sys *System) recordAt(ep simnet.Port, kind string, span, parent uint64, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	at := sys.now()
	if ep != nil {
		at = ep.Now()
	}
	// Lane buffers exist only until mergeJournal (and only in sharded
	// simulation, where every ep is a simulator endpoint); anything
	// recorded after the merge (e.g. the horizon sync summary) goes
	// straight to the journal even if the scheduler still reports a
	// lane context.
	buffered := false
	if sys.laneJournals != nil {
		sep, _ := ep.(*simnet.Endpoint)
		if lane, seq, ok := sys.sim.ExecContext(sep); ok {
			sys.laneJournals[lane] = append(sys.laneJournals[lane], laneEvent{
				seq: seq,
				ev:  RunEvent{At: at, Kind: kind, Detail: detail},
			})
			buffered = true
		}
	}
	if !buffered {
		sys.journal = append(sys.journal, RunEvent{At: at, Kind: kind, Detail: detail})
	}
	sys.bus.Publish(obs.Event{
		At: at, Kind: "core." + kind,
		Span: span, Parent: parent, Detail: detail,
	})
}

// mergeJournal flattens the per-lane buffers into the journal in
// global (At, seq) order. The logical keys are shard-count-invariant,
// and records sharing a key (several records from one event) keep
// their append order via the stable sort — so the merged journal, and
// therefore JournalHash, is byte-identical at any shard count.
func (sys *System) mergeJournal() {
	if sys.laneJournals == nil {
		return
	}
	total := 0
	for _, lj := range sys.laneJournals {
		total += len(lj)
	}
	all := make([]laneEvent, 0, total)
	for _, lj := range sys.laneJournals {
		all = append(all, lj...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		return all[i].seq < all[j].seq
	})
	merged := make([]RunEvent, 0, len(sys.journal)+len(all))
	merged = append(merged, sys.journal...)
	for i := range all {
		merged = append(merged, all[i].ev)
	}
	sys.journal = merged
	sys.laneJournals = nil
}

// Journal returns the run's events in chronological order. Call after
// Run.
func (sys *System) Journal() []RunEvent {
	out := make([]RunEvent, len(sys.journal))
	copy(out, sys.journal)
	return out
}

// FormatJournal renders events as one line each.
func FormatJournal(events []RunEvent) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%8s  %-14s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Detail)
	}
	return b.String()
}

// JournalHash digests a journal as the hex SHA-256 of its formatted
// rendering. Two runs of the same scenario at the same seed must
// produce the same hash — this is the equality the parallel experiment
// engine (and the CI determinism job) checks between serial and
// concurrent executions.
func JournalHash(events []RunEvent) string {
	// Stream the formatted lines into the hasher instead of
	// materializing FormatJournal's string: the digested bytes are
	// identical, without the run-sized intermediate buffers.
	h := sha256.New()
	for _, ev := range events {
		fmt.Fprintf(h, "%8s  %-14s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JournalHash digests this run's journal. Call after Run.
func (sys *System) JournalHash() string {
	return JournalHash(sys.journal)
}
