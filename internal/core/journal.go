package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// RunEvent is one entry of a system run's journal: faults as they are
// injected, controller placements as they change, requirement
// violations and recoveries as ground truth crosses the band, privacy
// violations as the auditor sees them, and models@runtime alerts.
type RunEvent struct {
	At     time.Duration
	Kind   string
	Detail string
}

// Journal event kinds.
const (
	EventFault     = "fault"
	EventPlacement = "placement"
	EventViolation = "violation"
	EventRecovery  = "recovery"
	EventPrivacy   = "privacy"
	EventAlert     = "models@runtime"
	// EventIsland marks island-mode transitions (enter/rejoin). Only
	// emitted under the hardened profile (ScenarioConfig.IslandMode),
	// so default-knob journals never contain it.
	EventIsland = "island"
)

// record appends one journal entry at the current virtual time.
func (sys *System) record(kind, format string, args ...any) {
	sys.recordSpan(kind, 0, 0, format, args...)
}

// recordSpan appends one journal entry and mirrors it onto the
// observability bus as a "core.<kind>" event carrying the given causal
// span IDs. The journal is written directly — not via a bus
// subscription — so it stays an always-on view while the bus keeps its
// zero-subscriber fast path.
func (sys *System) recordSpan(kind string, span, parent uint64, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	sys.journal = append(sys.journal, RunEvent{
		At:     sys.sim.Now(),
		Kind:   kind,
		Detail: detail,
	})
	sys.bus.Publish(obs.Event{
		At: sys.sim.Now(), Kind: "core." + kind,
		Span: span, Parent: parent, Detail: detail,
	})
}

// Journal returns the run's events in chronological order. Call after
// Run.
func (sys *System) Journal() []RunEvent {
	out := make([]RunEvent, len(sys.journal))
	copy(out, sys.journal)
	return out
}

// FormatJournal renders events as one line each.
func FormatJournal(events []RunEvent) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%8s  %-14s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Detail)
	}
	return b.String()
}

// JournalHash digests a journal as the hex SHA-256 of its formatted
// rendering. Two runs of the same scenario at the same seed must
// produce the same hash — this is the equality the parallel experiment
// engine (and the CI determinism job) checks between serial and
// concurrent executions.
func JournalHash(events []RunEvent) string {
	// Stream the formatted lines into the hasher instead of
	// materializing FormatJournal's string: the digested bytes are
	// identical, without the run-sized intermediate buffers.
	h := sha256.New()
	for _, ev := range events {
		fmt.Fprintf(h, "%8s  %-14s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JournalHash digests this run's journal. Call after Run.
func (sys *System) JournalHash() string {
	return JournalHash(sys.journal)
}
