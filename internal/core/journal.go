package core

import (
	"fmt"
	"strings"
	"time"
)

// RunEvent is one entry of a system run's journal: faults as they are
// injected, controller placements as they change, requirement
// violations and recoveries as ground truth crosses the band, privacy
// violations as the auditor sees them, and models@runtime alerts.
type RunEvent struct {
	At     time.Duration
	Kind   string
	Detail string
}

// Journal event kinds.
const (
	EventFault     = "fault"
	EventPlacement = "placement"
	EventViolation = "violation"
	EventRecovery  = "recovery"
	EventPrivacy   = "privacy"
	EventAlert     = "models@runtime"
)

// record appends one journal entry at the current virtual time.
func (sys *System) record(kind, format string, args ...any) {
	sys.journal = append(sys.journal, RunEvent{
		At:     sys.sim.Now(),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Journal returns the run's events in chronological order. Call after
// Run.
func (sys *System) Journal() []RunEvent {
	out := make([]RunEvent, len(sys.journal))
	copy(out, sys.journal)
	return out
}

// FormatJournal renders events as one line each.
func FormatJournal(events []RunEvent) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%8s  %-14s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Detail)
	}
	return b.String()
}
