package core

import (
	"testing"
	"time"
)

// TestSchedulerDifferential is the determinism contract for the timing
// wheel: the heap scheduler and the wheel scheduler must produce
// bit-identical runs — every archetype's resilience numbers AND the
// full journal hash — across many seeds. The wheel is only allowed to
// change how fast events pop, never in what order.
func TestSchedulerDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	cfg := DefaultScenario()
	if testing.Short() {
		seeds = seeds[:2]
		cfg.Duration = 5 * time.Minute
	}
	for _, seed := range seeds {
		for _, arch := range AllArchetypes() {
			c := cfg
			c.Seed = seed

			c.UseHeapScheduler = false
			wheelSys := NewSystem(c, arch)
			wheelRep := wheelSys.Run()

			c.UseHeapScheduler = true
			heapSys := NewSystem(c, arch)
			heapRep := heapSys.Run()

			if wheelRep != heapRep {
				t.Errorf("seed %d %s: reports differ\nwheel: %+v\nheap:  %+v",
					seed, arch, wheelRep, heapRep)
			}
			wh, hh := wheelSys.JournalHash(), heapSys.JournalHash()
			if wh != hh {
				t.Errorf("seed %d %s: journal hashes differ: wheel %s, heap %s",
					seed, arch, wh, hh)
			}
		}
	}
}
