package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// chaosCfg builds a scenario driven by a random fault campaign over
// the edge infrastructure.
func chaosCfg(seed int64, mtbf, repair time.Duration) ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Seed = seed
	cfg.Duration = 10 * time.Minute
	var targets []simnet.NodeID
	for z := 0; z < cfg.Zones; z++ {
		targets = append(targets, gatewayID(z))
	}
	for i := 0; i < cfg.Cloudlets; i++ {
		targets = append(targets, cloudletID(i))
	}
	campaign := fault.Campaign{
		Seed:       seed + 100,
		Horizon:    cfg.Duration,
		Targets:    targets,
		MTBF:       mtbf,
		MeanRepair: repair,
	}
	cfg.Faults = campaign.Generate()
	return cfg
}

// TestML4ChaosInvariants runs random edge-crash campaigns at several
// seeds and checks the invariants that must hold regardless of the
// fault pattern.
func TestML4ChaosInvariants(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			cfg := chaosCfg(seed, 3*time.Minute, 30*time.Second)
			r := NewSystem(cfg, ML4).Run()

			// Invariant 1: the governed data plane never leaks,
			// whatever the fault pattern.
			if r.PrivacyViolations != 0 {
				t.Errorf("privacy violations under chaos: %d", r.PrivacyViolations)
			}
			// Invariant 2: validation machinery stays fully
			// instantiated.
			if r.ValidationCoverage != 1 {
				t.Errorf("validation coverage = %.2f", r.ValidationCoverage)
			}
			// Invariant 3: with the whole edge pool available for
			// migration, the system keeps controlling: persistence
			// must stay usefully high even under a rolling-crash
			// campaign.
			if r.TempPersistence < 0.8 {
				t.Errorf("temp persistence = %.3f under chaos", r.TempPersistence)
			}
			// Invariant 4: metrics are sane.
			if r.GoalPersistence < 0 || r.GoalPersistence > 1 ||
				r.Pervasiveness < 0 || r.Pervasiveness > 1 ||
				r.InvocationSuccess < 0 || r.InvocationSuccess > 1 ||
				r.DataAvailability < 0 || r.DataAvailability > 1 {
				t.Errorf("metric out of range: %+v", r)
			}
		})
	}
}

// TestChaosML4BeatsML1AcrossSeeds checks the headline ordering is not
// an artifact of one lucky schedule.
func TestChaosML4BeatsML1AcrossSeeds(t *testing.T) {
	wins := 0
	const runs = 3
	for seed := int64(10); seed < 10+runs; seed++ {
		cfg := chaosCfg(seed, 2*time.Minute, 45*time.Second)
		ml1 := NewSystem(cfg, ML1).Run()
		ml4 := NewSystem(cfg, ML4).Run()
		if ml4.GoalPersistence > ml1.GoalPersistence {
			wins++
		}
		t.Logf("seed %d: ML1 R=%.3f  ML4 R=%.3f", seed, ml1.GoalPersistence, ml4.GoalPersistence)
	}
	if wins != runs {
		t.Fatalf("ML4 won only %d of %d chaos runs", wins, runs)
	}
}

// TestHeavyPresetStillOrdered runs the heavy preset end to end.
func TestHeavyPresetStillOrdered(t *testing.T) {
	cfg := DefaultScenario()
	cfg.Duration = 8 * time.Minute
	cfg.Preset = FaultsHeavy
	ml1 := NewSystem(cfg, ML1).Run()
	ml4 := NewSystem(cfg, ML4).Run()
	if ml4.GoalPersistence <= ml1.GoalPersistence {
		t.Fatalf("heavy preset: ML4 R=%.3f not above ML1 R=%.3f", ml4.GoalPersistence, ml1.GoalPersistence)
	}
	if ml4.PrivacyViolations != 0 {
		t.Fatalf("heavy preset: ML4 leaked %d", ml4.PrivacyViolations)
	}
}

// TestActuatorWatchdogBoundsRunaway pins the device-local failsafe: a
// controller partitioned away from its actuator must not leave cooling
// running indefinitely.
func TestActuatorWatchdogBoundsRunaway(t *testing.T) {
	cfg := DefaultScenario()
	cfg.Duration = 8 * time.Minute
	cfg.Zones = 1
	// Isolate the zone's actuator for 90 seconds, starting while
	// cooling is likely engaged.
	sched := &fault.Schedule{}
	island := []simnet.NodeID{actuatorID(0)}
	sched.Partition(2*time.Minute, 90*time.Second, island)
	cfg.Faults = sched
	r := NewSystem(cfg, ML1).Run()
	// With the watchdog, the only damage is ~20s of uncontrolled
	// ambient heating near the end of the partition (R ≈ 0.9). Without
	// it, 90s of runaway cooling drives the zone to ~0°C and the
	// drift-only recovery to the 18° band edge takes ~5 further
	// minutes (R ≈ 0.3).
	if r.TempPersistence < 0.8 {
		t.Fatalf("temp persistence = %.3f — runaway actuator not bounded", r.TempPersistence)
	}
}
