package core

import (
	"fmt"
	"strings"
	"time"
)

// Report is the measured counterpart of one row of the paper's
// Tables 1 and 2: the same scenario and disruption schedule, scored
// along each disruption vector.
type Report struct {
	Archetype Archetype

	// GoalPersistence is the headline resilience number: the paper's
	// "persistence of reliable requirements satisfaction when facing
	// change", as the time-weighted fraction of the run during which
	// the whole goal tree was satisfied.
	GoalPersistence float64
	// TempPersistence is the mean per-zone temperature-band
	// satisfaction (ground truth).
	TempPersistence float64

	// Pervasiveness: fraction of time a zone's sensors had at least
	// one admissible, reachable collector (infrastructure as utility).
	Pervasiveness float64
	// InvocationSuccess: fraction of control periods in which the
	// zone's controller function ran with fresh data (deviceless).
	InvocationSuccess float64
	// ValidationCoverage: fraction of (requirement × assurance-kind)
	// pairs carrying a formal artifact — runtime monitor or
	// design-time model-checking verdict.
	ValidationCoverage float64
	// DesignChecksPassed reports whether all executed design-time
	// checks verified.
	DesignChecksPassed bool
	// MTTR is the mean time to recover ground-truth requirement
	// satisfaction after a violation; ManualInterventions counts
	// outages resolved only by external repair, AutoRecoveries those
	// the architecture resolved itself (operations automation).
	MTTR                time.Duration
	ManualInterventions int
	AutoRecoveries      int
	// DataAvailability: fraction of (zone × consumer) checks where
	// the intended consumer had fresh data; StalenessP95 the 95th
	// percentile age of delivered data; PrivacyViolations the number
	// of items observed at a node policy forbids (data flows and
	// governance).
	DataAvailability  float64
	StalenessP95      time.Duration
	PrivacyViolations int

	// RuntimeChecks counts models@runtime re-verifications the ML4
	// leader performed; RuntimeAlerts how many found the failure
	// assumption no longer satisfiable by the live membership.
	RuntimeChecks int
	RuntimeAlerts int

	// UnresolvedViolations counts requirement monitors (temperature
	// band, freshness; two per zone) still in violation when the run
	// ended: the system never recovered them. The chaos oracle treats
	// any non-zero value as a non-recovery failure.
	UnresolvedViolations int

	// Traffic cost of the architecture.
	Messages int
	Bytes    int

	// Replication traffic: totals over every store sync link (zero for
	// architectures without replicated stores). SyncBytes is the
	// bytes-on-wire figure the bench gate tracks.
	SyncFrames  int
	SyncEntries int
	SyncBytes   int
	SyncAcks    int
}

// header returns the table header rows for Format.
func header() []string {
	return []string{
		"archetype", "R(goal)", "R(temp)", "pervasive", "invoke", "validate",
		"MTTR", "manual", "auto", "dataAvail", "staleP95", "privViol", "msgs",
	}
}

// row formats one report as table cells.
func (r Report) row() []string {
	return []string{
		r.Archetype.String(),
		fmt.Sprintf("%.3f", r.GoalPersistence),
		fmt.Sprintf("%.3f", r.TempPersistence),
		fmt.Sprintf("%.3f", r.Pervasiveness),
		fmt.Sprintf("%.3f", r.InvocationSuccess),
		fmt.Sprintf("%.2f", r.ValidationCoverage),
		r.MTTR.Round(time.Second).String(),
		fmt.Sprintf("%d", r.ManualInterventions),
		fmt.Sprintf("%d", r.AutoRecoveries),
		fmt.Sprintf("%.3f", r.DataAvailability),
		r.StalenessP95.Round(time.Millisecond).String(),
		fmt.Sprintf("%d", r.PrivacyViolations),
		fmt.Sprintf("%d", r.Messages),
	}
}

// String renders the report as a single table row with header.
func (r Report) String() string {
	return FormatReports([]Report{r})
}

// FormatReports renders reports as an aligned text table — the
// measured Table 1/2.
func FormatReports(reports []Report) string {
	rows := [][]string{header()}
	for _, r := range reports {
		rows = append(rows, r.row())
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RunMatrix builds and runs the scenario at each archetype — the
// measured reproduction of Tables 1 and 2.
func RunMatrix(cfg ScenarioConfig, archetypes ...Archetype) []Report {
	if len(archetypes) == 0 {
		archetypes = AllArchetypes()
	}
	out := make([]Report, 0, len(archetypes))
	for _, a := range archetypes {
		out = append(out, NewSystem(cfg, a).Run())
	}
	return out
}
