package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
)

// quickCfg is a shortened scenario for tests.
func quickCfg(preset FaultPreset) ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Duration = 6 * time.Minute
	cfg.Preset = preset
	return cfg
}

func TestArchetypeString(t *testing.T) {
	want := map[Archetype]string{
		ML1: "ML1-silo", ML2: "ML2-cloud", ML3: "ML3-edge", ML4: "ML4-resilient",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if Archetype(9).String() != "archetype(9)" {
		t.Fatal("unknown archetype name")
	}
	if len(AllArchetypes()) != 4 {
		t.Fatal("AllArchetypes wrong")
	}
}

func TestDefaultsFilled(t *testing.T) {
	cfg := ScenarioConfig{}.withDefaults()
	if cfg.Zones == 0 || cfg.Duration == 0 || cfg.TempHigh <= cfg.TempLow || cfg.CoolRate >= 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}

func TestStandardFaultsNonEmptySorted(t *testing.T) {
	s := buildFaults(DefaultScenario())
	evs := s.Events()
	if len(evs) == 0 {
		t.Fatal("no fault events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events not sorted")
		}
	}
	if n := buildFaults(quickCfg(FaultsNone)).Len(); n != 0 {
		t.Fatalf("FaultsNone produced %d events", n)
	}
	if buildFaults(quickCfg(FaultsHeavy)).Len() == 0 {
		t.Fatal("FaultsHeavy empty")
	}
}

func TestML1CalmRunControlsTemperature(t *testing.T) {
	r := NewSystem(quickCfg(FaultsNone), ML1).Run()
	if r.TempPersistence < 0.95 {
		t.Fatalf("ML1 calm temp persistence = %.3f, want ≥0.95", r.TempPersistence)
	}
	if r.InvocationSuccess < 0.9 {
		t.Fatalf("ML1 calm invocation = %.3f", r.InvocationSuccess)
	}
	if r.PrivacyViolations != 0 {
		t.Fatalf("ML1 leaked %d items (nothing leaves the zone in a silo)", r.PrivacyViolations)
	}
	if r.ValidationCoverage != 0 {
		t.Fatalf("ML1 validation = %.2f, want 0", r.ValidationCoverage)
	}
}

func TestML2CalmRunLeaksSensitiveData(t *testing.T) {
	r := NewSystem(quickCfg(FaultsNone), ML2).Run()
	if r.TempPersistence < 0.9 {
		t.Fatalf("ML2 calm temp persistence = %.3f", r.TempPersistence)
	}
	if r.PrivacyViolations == 0 {
		t.Fatal("ML2 ships occupancy to the cloud; auditor saw nothing")
	}
	if r.ValidationCoverage != 0.5 {
		t.Fatalf("ML2 validation = %.2f, want 0.50 (runtime only)", r.ValidationCoverage)
	}
}

func TestML3CalmRun(t *testing.T) {
	r := NewSystem(quickCfg(FaultsNone), ML3).Run()
	if r.TempPersistence < 0.95 {
		t.Fatalf("ML3 calm temp persistence = %.3f", r.TempPersistence)
	}
	if r.PrivacyViolations == 0 {
		t.Fatal("ML3 forwards everything to the cloud; auditor saw nothing")
	}
	if r.ValidationCoverage <= 0.5 || r.ValidationCoverage >= 1 {
		t.Fatalf("ML3 validation = %.2f, want in (0.5,1)", r.ValidationCoverage)
	}
	if !r.DesignChecksPassed {
		t.Fatal("ML3 design checks failed")
	}
}

func TestML4CalmRunEnforcesPrivacyAndFullValidation(t *testing.T) {
	r := NewSystem(quickCfg(FaultsNone), ML4).Run()
	if r.TempPersistence < 0.95 {
		t.Fatalf("ML4 calm temp persistence = %.3f", r.TempPersistence)
	}
	if r.PrivacyViolations != 0 {
		t.Fatalf("ML4 leaked %d items despite enforcement", r.PrivacyViolations)
	}
	if r.ValidationCoverage != 1 {
		t.Fatalf("ML4 validation = %.2f, want 1", r.ValidationCoverage)
	}
	if !r.DesignChecksPassed {
		t.Fatal("ML4 design checks failed")
	}
	if r.DataAvailability < 0.9 {
		t.Fatalf("ML4 calm data availability = %.3f", r.DataAvailability)
	}
}

func TestMatrixUnderDisruption(t *testing.T) {
	cfg := quickCfg(FaultsStandard)
	cfg.Duration = 10 * time.Minute
	reports := RunMatrix(cfg)
	byArch := make(map[Archetype]Report, len(reports))
	for _, r := range reports {
		byArch[r.Archetype] = r
	}
	ml1, ml2, ml3, ml4 := byArch[ML1], byArch[ML2], byArch[ML3], byArch[ML4]

	t.Logf("\n%s", FormatReports(reports))

	// Headline: resilience improves with maturity level.
	if !(ml4.GoalPersistence > ml1.GoalPersistence) {
		t.Fatalf("ML4 R=%.3f not above ML1 R=%.3f", ml4.GoalPersistence, ml1.GoalPersistence)
	}
	if ml4.GoalPersistence < ml3.GoalPersistence-0.02 {
		t.Fatalf("ML4 R=%.3f clearly below ML3 R=%.3f", ml4.GoalPersistence, ml3.GoalPersistence)
	}
	if ml4.TempPersistence < 0.9 {
		t.Fatalf("ML4 temp persistence = %.3f under standard faults", ml4.TempPersistence)
	}

	// Pervasiveness: ML4's open edge beats the silo and the
	// cloud-tethered variants.
	if !(ml4.Pervasiveness >= ml3.Pervasiveness && ml3.Pervasiveness >= ml1.Pervasiveness) {
		t.Fatalf("pervasiveness not monotone: %.3f / %.3f / %.3f", ml1.Pervasiveness, ml3.Pervasiveness, ml4.Pervasiveness)
	}
	if ml2.Pervasiveness >= ml4.Pervasiveness {
		t.Fatalf("cloud-only pervasiveness %.3f should trail ML4 %.3f (WAN outage)", ml2.Pervasiveness, ml4.Pervasiveness)
	}

	// Deviceless: ML4 keeps invoking through failures.
	if ml4.InvocationSuccess <= ml1.InvocationSuccess {
		t.Fatalf("ML4 invocations %.3f not above ML1 %.3f", ml4.InvocationSuccess, ml1.InvocationSuccess)
	}

	// Validation coverage is strictly ordered by construction.
	if !(ml1.ValidationCoverage < ml2.ValidationCoverage &&
		ml2.ValidationCoverage < ml3.ValidationCoverage &&
		ml3.ValidationCoverage < ml4.ValidationCoverage) {
		t.Fatalf("validation coverage not increasing: %.2f %.2f %.2f %.2f",
			ml1.ValidationCoverage, ml2.ValidationCoverage, ml3.ValidationCoverage, ml4.ValidationCoverage)
	}

	// Operations automation: the silo needs the most manual repairs;
	// the resilient system the fewest.
	if ml4.ManualInterventions > ml1.ManualInterventions {
		t.Fatalf("ML4 manual=%d above ML1 manual=%d", ml4.ManualInterventions, ml1.ManualInterventions)
	}

	// Data governance: only ML4 is violation-free; data availability
	// is best at ML4.
	if ml4.PrivacyViolations != 0 {
		t.Fatalf("ML4 violations = %d", ml4.PrivacyViolations)
	}
	if ml2.PrivacyViolations == 0 || ml3.PrivacyViolations == 0 {
		t.Fatal("ML2/ML3 should show violations")
	}
	if !(ml4.DataAvailability > ml1.DataAvailability && ml4.DataAvailability > ml2.DataAvailability) {
		t.Fatalf("ML4 data availability %.3f not dominant (%.3f, %.3f)",
			ml4.DataAvailability, ml1.DataAvailability, ml2.DataAvailability)
	}
}

func TestModelsAtRuntimeChecksRun(t *testing.T) {
	r := NewSystem(quickCfg(FaultsNone), ML4).Run()
	if r.RuntimeChecks == 0 {
		t.Fatal("no models@runtime re-verifications performed")
	}
	if r.RuntimeAlerts != 0 {
		t.Fatalf("alerts = %d on a calm run with 6 edge nodes", r.RuntimeAlerts)
	}
	// Non-ML4 archetypes have no models@runtime machinery.
	r1 := NewSystem(quickCfg(FaultsNone), ML1).Run()
	if r1.RuntimeChecks != 0 {
		t.Fatal("ML1 performed runtime checks")
	}
}

func TestModelsAtRuntimeAlertsWhenAssumptionBreaks(t *testing.T) {
	// A minimal edge group (2 gateways + 1 cloudlet = 3 edge nodes)
	// with one gateway down for a long stretch: only 2 edge nodes
	// remain alive, so "control survives any 2 concurrent failures"
	// is no longer satisfiable — the leader's re-verification must
	// raise alerts while the outage lasts.
	cfg := quickCfg(FaultsNone)
	cfg.Zones = 2
	cfg.Cloudlets = 1
	sched := &fault.Schedule{}
	sched.Crash(time.Minute, "gw-1", 3*time.Minute)
	cfg.Faults = sched
	r := NewSystem(cfg, ML4).Run()
	if r.RuntimeAlerts == 0 {
		t.Fatalf("no runtime alerts despite broken failure assumption (checks=%d)", r.RuntimeChecks)
	}
	if r.RuntimeAlerts >= r.RuntimeChecks {
		t.Fatalf("alerts=%d should cover only the outage window of %d checks", r.RuntimeAlerts, r.RuntimeChecks)
	}
}

func TestJournalRecordsRunStory(t *testing.T) {
	cfg := quickCfg(FaultsStandard)
	sys := NewSystem(cfg, ML4)
	sys.Run()
	events := sys.Journal()
	if len(events) == 0 {
		t.Fatal("empty journal")
	}
	kinds := map[string]int{}
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && ev.At < events[i-1].At {
			t.Fatal("journal not chronological")
		}
	}
	if kinds[EventFault] == 0 {
		t.Fatal("no fault events journaled")
	}
	if kinds[EventPlacement] == 0 {
		t.Fatal("no placement events journaled (ML4 must replan)")
	}
	if out := FormatJournal(events); len(out) == 0 {
		t.Fatal("format empty")
	}
	// ML4 never leaks: no privacy events.
	if kinds[EventPrivacy] != 0 {
		t.Fatalf("privacy events in ML4 journal: %d", kinds[EventPrivacy])
	}

	// ML2's journal does show privacy events.
	sys2 := NewSystem(cfg, ML2)
	sys2.Run()
	privacy := 0
	for _, ev := range sys2.Journal() {
		if ev.Kind == EventPrivacy {
			privacy++
		}
	}
	if privacy == 0 {
		t.Fatal("ML2 journal shows no privacy events")
	}
}

func TestSyncTrafficSurfacedInReportAndJournal(t *testing.T) {
	cfg := quickCfg(FaultsStandard)
	sys := NewSystem(cfg, ML4)
	rep := sys.Run()

	st := sys.SyncTraffic()
	if st.FramesSent == 0 || st.EntriesSent == 0 || st.BytesSent == 0 {
		t.Fatalf("ML4 run reported no replication traffic: %+v", st)
	}
	if rep.SyncFrames != int(st.FramesSent) || rep.SyncEntries != int(st.EntriesSent) ||
		rep.SyncBytes != int(st.BytesSent) || rep.SyncAcks != int(st.AcksIn) {
		t.Fatalf("report sync counters %d/%d/%d/%d != link totals %+v",
			rep.SyncFrames, rep.SyncEntries, rep.SyncBytes, rep.SyncAcks, st)
	}

	// Exactly one horizon summary event, and its detail matches the
	// totals (so journal hashes pin bytes-on-wire).
	var syncs []RunEvent
	for _, ev := range sys.Journal() {
		if ev.Kind == EventSync {
			syncs = append(syncs, ev)
		}
	}
	if len(syncs) != 1 {
		t.Fatalf("EventSync count = %d, want 1", len(syncs))
	}
	want := fmt.Sprintf("frames=%d entries=%d bytes=%d acks=%d",
		st.FramesSent, st.EntriesSent, st.BytesSent, st.AcksIn)
	if syncs[0].Detail != want {
		t.Fatalf("sync event detail = %q, want %q", syncs[0].Detail, want)
	}

	// ML1 has no replicated stores: zero traffic, no sync event.
	sys1 := NewSystem(cfg, ML1)
	rep1 := sys1.Run()
	if rep1.SyncBytes != 0 {
		t.Fatalf("ML1 reported sync bytes: %d", rep1.SyncBytes)
	}
	for _, ev := range sys1.Journal() {
		if ev.Kind == EventSync {
			t.Fatal("ML1 journal has a sync event")
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickCfg(FaultsStandard)
	cfg.Duration = 4 * time.Minute
	r1 := NewSystem(cfg, ML4).Run()
	r2 := NewSystem(cfg, ML4).Run()
	if r1 != r2 {
		t.Fatalf("ML4 runs differ:\n%+v\n%+v", r1, r2)
	}
}

func TestFormatReports(t *testing.T) {
	r := Report{Archetype: ML1, GoalPersistence: 0.5}
	s := FormatReports([]Report{r})
	if s == "" || len(s) < 20 {
		t.Fatalf("format = %q", s)
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}
