package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/gossip"
	"repro/internal/mape"
	"repro/internal/pubsub"
	"repro/internal/realnet"
	"repro/internal/simnet"
)

// liveBackend carries the realnet state behind a live System: the
// loopback UDP cluster hosting every node, and — once RunLive arms the
// schedule — the wall-clock fault injector.
type liveBackend struct {
	cluster *realnet.Cluster
	inj     *realnet.Injector
	scale   float64
}

// LiveConfig tunes a live (real-socket) run.
type LiveConfig struct {
	// TimeScale compresses virtual time onto the wall clock: wall =
	// virtual × TimeScale. 0.1 runs a 6-minute scenario in ~36 s of
	// wall time while every protocol interval and shaper latency
	// scales with it. Zero means 1 (real time).
	TimeScale float64
}

// NewLiveSystem builds the scenario on real UDP sockets: the same
// topology, protocols and wiring as NewSystem, but every node is a
// realnet process-local UDP endpoint on loopback and faults land on
// wall clocks. The returned system must be run with RunLive.
func NewLiveSystem(cfg ScenarioConfig, arch Archetype, lc LiveConfig) (sys *System, err error) {
	cfg = cfg.withDefaults()
	if cfg.Shards > 0 {
		return nil, fmt.Errorf("core: live runs do not support sharding (Shards=%d)", cfg.Shards)
	}
	registerLiveWire()
	scale := lc.TimeScale
	if scale <= 0 {
		scale = 1
	}
	cluster := realnet.NewCluster(realnet.ClusterConfig{
		Seed:      cfg.Seed,
		TimeScale: scale,
		Serialize: true,
	})
	defer func() {
		// buildWorld panics on a failed socket bind; convert to an
		// error and release whatever part of the cluster came up.
		if r := recover(); r != nil {
			cluster.Close()
			sys, err = nil, fmt.Errorf("core: live boot failed: %v", r)
		}
	}()
	sys = newSystem(cfg, arch, &liveBackend{cluster: cluster, scale: scale})
	return sys, nil
}

// LiveInfo summarizes the non-Report side of a live run: how much of
// the fault schedule armed, the aggregate socket traffic, and the wall
// time the run took.
type LiveInfo struct {
	Armed        int
	Skipped      int
	Net          realnet.NetStats
	WallDuration time.Duration
}

// RunLive executes a live system to its horizon on the wall clock and
// returns the measured report. The driver replaces the simulator's
// scheduler: environment and measurement ticks fire from a wall-clock
// ticker under the cluster's world lock (the live analogue of the
// simulator's single-threaded event loop), with virtual-time
// watermarks so a late tick catches up rather than skipping samples.
func (sys *System) RunLive() (Report, LiveInfo, error) {
	lb := sys.live
	if lb == nil {
		return Report{}, LiveInfo{}, fmt.Errorf("core: RunLive on a simulated system; use Run")
	}
	wallStart := time.Now()
	if err := lb.cluster.Start(); err != nil {
		lb.cluster.Close()
		return Report{}, LiveInfo{}, err
	}
	defer lb.cluster.Close()

	inj := lb.cluster.Injector()
	lb.inj = inj
	defer inj.Stop()
	sys.attachFaultSubscribers(inj)
	armed, skipped := inj.Arm(buildFaults(sys.cfg))

	lock := lb.cluster.WorldLock()
	step := sys.cfg.EnvStep
	inv := sys.cfg.ControlInterval
	nextEnv, nextInv := step, inv
	// Tick at half an (scaled) EnvStep so each virtual step is seen
	// close to its due time; the watermark loops absorb scheduling
	// jitter by running every step the wall clock has passed.
	wallTick := time.Duration(float64(step) * lb.scale / 2)
	if wallTick < time.Millisecond {
		wallTick = time.Millisecond
	}
	ticker := time.NewTicker(wallTick)
	defer ticker.Stop()
	for {
		<-ticker.C
		now := lb.cluster.Now()
		lock.Lock()
		for nextEnv <= now && nextEnv <= sys.cfg.Duration {
			sys.envTickBody(step)
			if nextEnv >= sys.warmup {
				sys.measure()
			}
			nextEnv += step
		}
		for nextInv <= now && nextInv <= sys.cfg.Duration {
			if nextInv >= sys.warmup {
				sys.sampleInvocations()
			}
			nextInv += inv
		}
		lock.Unlock()
		if now >= sys.cfg.Duration {
			break
		}
	}

	lock.Lock()
	if st := sys.SyncTraffic(); st.FramesSent > 0 || st.FramesIn > 0 {
		sys.record(EventSync, "frames=%d entries=%d bytes=%d acks=%d",
			st.FramesSent, st.EntriesSent, st.BytesSent, st.AcksIn)
	}
	r := sys.report()
	lock.Unlock()
	info := LiveInfo{
		Armed:        armed,
		Skipped:      skipped,
		Net:          lb.cluster.NetStats(),
		WallDuration: time.Since(wallStart),
	}
	return r, info, nil
}

// ---- backend seam ----------------------------------------------------
//
// Every run-time query the measurement and control code makes goes
// through these wrappers, so the same code drives the simulator and
// the live cluster.

// now reads the current virtual time from whichever backend is active.
func (sys *System) now() time.Duration {
	if sys.live != nil {
		return sys.live.cluster.Now()
	}
	return sys.sim.Now()
}

// nodeUp reports whether a node exists and is not crashed.
func (sys *System) nodeUp(id simnet.NodeID) bool {
	if sys.live != nil {
		return sys.live.cluster.NodeUp(id)
	}
	return sys.sim.NodeUp(id)
}

// setNodeDown crashes or revives a node (battery exhaustion).
func (sys *System) setNodeDown(id simnet.NodeID, down bool) {
	if sys.live != nil {
		sys.live.cluster.SetDown(id, down)
		return
	}
	sys.sim.SetDown(id, down)
}

// reachable reports whether the network currently lets from talk to to.
func (sys *System) reachable(from, to simnet.NodeID) bool {
	if sys.live != nil {
		return sys.live.cluster.Reachable(from, to)
	}
	return sys.sim.Reachable(from, to)
}

// shardCount reports the sharded scheduler's lane count; live runs and
// legacy simulation report zero.
func (sys *System) shardCount() int {
	if sys.sim != nil {
		return sys.sim.ShardCount()
	}
	return 0
}

// addNode registers a node with the active backend and returns its
// network surface.
func (sys *System) addNode(id simnet.NodeID) simnet.Port {
	if sys.live != nil {
		n, err := sys.live.cluster.AddNode(id)
		if err != nil {
			panic(err)
		}
		return n
	}
	return sys.sim.AddNode(id)
}

// setShard assigns a node to a scheduler lane; a no-op on live runs.
func (sys *System) setShard(id simnet.NodeID, shard int) {
	if sys.sim != nil {
		sys.sim.SetShard(id, shard)
	}
}

// setWANLink installs the scenario's WAN latency between two nodes. On
// the simulator this is a plain link parameter; live it is a shaper
// rule on the loopback fabric (loss 0), scaled like every latency.
func (sys *System) setWANLink(a, b simnet.NodeID, latency time.Duration) {
	if sys.live != nil {
		sys.live.cluster.Fabric().DegradeLink(a, b, latency, 0)
		return
	}
	sys.sim.SetLinkBidirectional(a, b, latency, 0)
}

// messageCount totals delivered messages across the backend.
func (sys *System) messageCount() int {
	if sys.live != nil {
		return int(sys.live.cluster.NetStats().Received)
	}
	return sys.sim.Stats().Delivered
}

// byteCount totals bytes put on the wire across the backend.
func (sys *System) byteCount() int {
	if sys.live != nil {
		return int(sys.live.cluster.NetStats().SentBytes)
	}
	return sys.sim.Stats().Bytes
}

// faultLog returns the events the active injector has fired so far.
func (sys *System) faultLog() []fault.Event {
	if sys.live != nil {
		if sys.live.inj == nil {
			return nil
		}
		return sys.live.inj.Log()
	}
	return sys.injector.Log()
}

// registerLiveWire registers every message type the archetypes put on
// the wire with realnet's gob codec. Idempotent; shared by all live
// systems in the process.
var liveWireOnce sync.Once

func registerLiveWire() {
	liveWireOnce.Do(func() {
		simnet.RegisterMuxWire(realnet.RegisterWireType)
		realnet.RegisterWireType(simnet.Envelope{})
		gossip.RegisterWire(realnet.RegisterWireType)
		dataflow.RegisterWire(realnet.RegisterWireType)
		consensus.RegisterWire(realnet.RegisterWireType)
		mape.RegisterWire(realnet.RegisterWireType)
		pubsub.RegisterWire(realnet.RegisterWireType)
		realnet.RegisterWireType(readingMsg{})
		realnet.RegisterWireType(readingAck{})
		realnet.RegisterWireType(actuateMsg{})
		realnet.RegisterWireType(placementCmd{})
	})
}
