package core

import (
	"testing"

	"repro/internal/obs"
)

// TestBusMirrorsJournalWithCausalSpans runs a disrupted ML4 scenario
// with a trace collector attached and checks that (a) every journal
// entry appears on the bus as a core.* event, (b) violations are
// parented on a fault span, and (c) recoveries reuse their violation's
// span ID — the fault → violation → recovery causal chain the
// observability layer exists to expose.
func TestBusMirrorsJournalWithCausalSpans(t *testing.T) {
	cfg := quickCfg(FaultsStandard)
	sys := NewSystem(cfg, ML4)
	tc := obs.Collect(sys.Bus())
	sys.Run()
	tc.Close()

	journal := sys.Journal()
	events := tc.Events()
	coreEvents := map[string]int{}
	faultSpans := map[uint64]bool{}
	violations := map[uint64]obs.Event{}
	recoveredViolations := 0
	subsystems := map[string]bool{}
	for _, ev := range events {
		subsystems[ev.Kind] = true
		switch ev.Kind {
		case "core." + EventFault:
			coreEvents[EventFault]++
			if ev.Span == 0 {
				t.Fatalf("fault without span: %+v", ev)
			}
			faultSpans[ev.Span] = true
		case "core." + EventViolation:
			coreEvents[EventViolation]++
			if ev.Span == 0 {
				t.Fatalf("violation without span: %+v", ev)
			}
			if ev.Parent != 0 && !faultSpans[ev.Parent] {
				t.Fatalf("violation parented on unknown span: %+v", ev)
			}
			violations[ev.Span] = ev
		case "core." + EventRecovery:
			coreEvents[EventRecovery]++
			if _, ok := violations[ev.Span]; ok {
				recoveredViolations++
			}
		case "core." + EventPlacement:
			coreEvents[EventPlacement]++
		}
	}

	journalCore := map[string]int{}
	for _, ev := range journal {
		journalCore[ev.Kind]++
	}
	for _, kind := range []string{EventFault, EventViolation, EventRecovery, EventPlacement} {
		if coreEvents[kind] != journalCore[kind] {
			t.Fatalf("bus saw %d %s events, journal has %d", coreEvents[kind], kind, journalCore[kind])
		}
	}
	if coreEvents[EventViolation] == 0 {
		t.Fatal("disrupted run produced no violations")
	}
	if recoveredViolations == 0 {
		t.Fatal("no recovery reused its violation's span ID")
	}

	// The instrumented subsystems must all have spoken.
	for _, kind := range []string{"gossip.probe", "raft.leader", "mape.cycle", "sensor.report", "control.actuate"} {
		if !subsystems[kind] {
			t.Fatalf("no %q events on the bus (kinds seen: %v)", kind, keysOf(subsystems))
		}
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestBusInactiveWithoutSubscribers confirms the no-subscriber fast
// path: a plain run allocates span IDs for the journal's causal chain
// but the bus itself reports inactive throughout.
func TestBusInactiveWithoutSubscribers(t *testing.T) {
	cfg := quickCfg(FaultsNone)
	sys := NewSystem(cfg, ML4)
	if sys.Bus().Active() {
		t.Fatal("fresh system's bus has subscribers")
	}
	sys.Run()
	if sys.Bus().Active() {
		t.Fatal("bus became active during an unobserved run")
	}
	if len(sys.Journal()) == 0 && sys.arch == ML4 {
		t.Fatal("journal should still record (always-on view)")
	}
}
