package core

import (
	"testing"
	"time"
)

// TestShardInvariance is the determinism contract for the zone-sharded
// scheduler (DESIGN.md §11): a run's resilience report AND its full
// journal hash must be byte-identical at any shard count. Shards=1 is
// the serial reference leg — the sharded event order with every lane
// merged into one — and 2/4/8 exercise real cross-shard windows.
// Sharding is allowed to change how events are executed (which
// goroutine, how batched), never what the run computes.
func TestShardInvariance(t *testing.T) {
	seeds := []int64{1, 2, 3}
	counts := []int{2, 4, 8}
	cfg := DefaultScenario()
	if testing.Short() {
		seeds = seeds[:1]
		counts = []int{2, 4}
		cfg.Duration = 5 * time.Minute
	}
	for _, seed := range seeds {
		for _, arch := range AllArchetypes() {
			c := cfg
			c.Seed = seed
			c.Shards = 1
			ref := NewSystem(c, arch)
			refRep := ref.Run()
			refHash := ref.JournalHash()

			for _, n := range counts {
				c.Shards = n
				sys := NewSystem(c, arch)
				rep := sys.Run()
				if rep != refRep {
					t.Errorf("seed %d %s shards=%d: reports differ\nserial:  %+v\nsharded: %+v",
						seed, arch, n, refRep, rep)
				}
				if h := sys.JournalHash(); h != refHash {
					t.Errorf("seed %d %s shards=%d: journal hash %s, serial %s",
						seed, arch, n, h, refHash)
				}
			}
		}
	}
}

// TestShardInvarianceCity runs the same contract at city scale — the
// tier the sharded scheduler exists for, with enough zones that every
// window carries real cross-shard traffic (WAN flows, gossip, Raft,
// CRDT sync) and the fault schedule's partitions and crashes land
// mid-window.
func TestShardInvarianceCity(t *testing.T) {
	if testing.Short() {
		t.Skip("city-tier differential is minutes of work; covered by the metropolis-determinism CI job")
	}
	cfg := CityScenarioSmoke()
	for _, arch := range AllArchetypes() {
		c := cfg
		c.Shards = 1
		ref := NewSystem(c, arch)
		refRep := ref.Run()
		refHash := ref.JournalHash()

		for _, n := range []int{2, 4, 8} {
			c.Shards = n
			sys := NewSystem(c, arch)
			rep := sys.Run()
			if rep != refRep {
				t.Errorf("%s shards=%d: reports differ\nserial:  %+v\nsharded: %+v",
					arch, n, refRep, rep)
			}
			if h := sys.JournalHash(); h != refHash {
				t.Errorf("%s shards=%d: journal hash %s, serial %s", arch, n, h, refHash)
			}
		}
	}
}

// TestShardLegacyUnchanged pins the dual-mode boundary: constructing a
// system with Shards left at zero must keep the legacy scheduler's
// journal family byte-for-byte — the chaos corpus and the committed
// bench baselines depend on it. (The sharded family is a different
// hash: per-node RNG streams replace the global draw order.)
func TestShardLegacyUnchanged(t *testing.T) {
	cfg := DefaultScenario()
	cfg.Duration = 5 * time.Minute
	legacy := NewSystem(cfg, ML4)
	legacy.Run()

	cfg.Shards = 1
	sharded := NewSystem(cfg, ML4)
	sharded.Run()

	if legacy.JournalHash() == sharded.JournalHash() {
		// Not a failure of determinism — but if the families ever
		// collide, the "legacy untouched" claim is no longer being
		// tested by the corpus replays alone. Flag it for a human.
		t.Log("note: legacy and sharded journal families coincide for this config")
	}
	if got := legacy.sim.ShardCount(); got != 0 {
		t.Fatalf("legacy system reports ShardCount %d, want 0", got)
	}
	if got := sharded.sim.ShardCount(); got != 1 {
		t.Fatalf("sharded system reports ShardCount %d, want 1", got)
	}
}
