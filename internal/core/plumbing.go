package core

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Wire messages shared by the archetypes.

// readingMsg carries one sensor item to a collector. Seq 0 means
// fire-and-forget (no ack expected), used for edge→cloud forwarding.
type readingMsg struct {
	Seq  uint64
	Item dataflow.Item
}

// readingAck acknowledges a reading to its sensor.
type readingAck struct {
	Seq uint64
}

// actuateMsg commands an actuator to the desired engagement state. It
// is idempotent and re-sent every control period so a restarted
// actuator re-learns its state.
type actuateMsg struct {
	Zone   int
	Engage bool
}

func (m readingMsg) Size() int { return 24 + 64 }
func (m readingAck) Size() int { return 12 }
func (m actuateMsg) Size() int { return 16 }

// Envelope kinds for the fixed-size core wire messages. Kinds are
// namespaced per protocol port ("data" carries acks, "act" carries
// actuation commands); Bytes mirrors the boxed Size so traffic
// accounting is identical on either path.
const (
	envReadingAck uint16 = 1 // "data": A=Seq
	envActuate    uint16 = 2 // "act": A=zone, Flag=engage
)

// directActuate returns the send half of the direct actuation path
// over port, envelope-encoded when the port supports it. readingMsg
// itself stays boxed (it carries an Item).
func directActuate(port simnet.Port) func(z int, engage bool) {
	ec, _ := port.(simnet.EnvelopeCarrier)
	return func(z int, engage bool) {
		if ec != nil {
			ec.SendEnvelope(actuatorID(z), simnet.Envelope{Kind: envActuate, A: uint64(z), Flag: engage, Bytes: 16})
			return
		}
		port.Send(actuatorID(z), actuateMsg{Zone: z, Engage: engage})
	}
}

// sendActTo ships one actuation command to an explicit target — the
// backup-actuator failover path. directActuate stays the fixed-primary
// fast path; callers resolve ec once and pass it in.
func sendActTo(port simnet.Port, ec simnet.EnvelopeCarrier, to simnet.NodeID, z int, engage bool) {
	if ec != nil {
		ec.SendEnvelope(to, simnet.Envelope{Kind: envActuate, A: uint64(z), Flag: engage, Bytes: 16})
		return
	}
	port.Send(to, actuateMsg{Zone: z, Engage: engage})
}

// zoneTempKey is the data key of a zone's temperature stream.
func zoneTempKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneTempKeys[z]
	}
	return fmt.Sprintf("z%d/temp", z)
}

// zoneTempAgeKey is the knowledge-base key carrying the age of a
// zone's last temperature sample.
func zoneTempAgeKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneTempAgeKeys[z]
	}
	return zoneTempKey(z) + "/age"
}

// zoneOccKey is the data key of a zone's (sensitive) occupancy stream.
func zoneOccKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneOccKeys[z]
	}
	return fmt.Sprintf("z%d/occ", z)
}

// ackTimeout bounds how long a reporter waits for a collector ack
// before counting a miss.
const ackTimeout = 500 * time.Millisecond

// reporterMissLimit is how many consecutive misses trigger failover to
// the next collector candidate.
const reporterMissLimit = 2

// reporterHomeInterval is how often a failed-over reporter retries its
// primary candidate, so a recovered collector is rediscovered.
const reporterHomeInterval = 30 * time.Second

// reporter delivers sensor readings to a prioritized list of collector
// candidates with ack-based failover: after reporterMissLimit
// consecutive unacknowledged readings it rotates to the next candidate
// (and eventually back, so a recovered primary is rediscovered).
type reporter struct {
	port       simnet.Port
	argSched   simnet.ArgScheduler // non-nil when port supports arg timers
	timeoutFn  func(uint64)        // onAckTimeout bound once, reused per send
	candidates []simnet.NodeID
	cur        int
	misses     int
	seq        uint64
	pending    map[uint64]*simnet.Timer
	bus        *obs.Bus
	// sticky (ScenarioConfig.StickyFailover) makes a failed home retry
	// jump straight back to the last acked candidate instead of walking
	// the list from the top. Inside a device-side island most of the
	// list is unreachable, and the walk (reporterMissLimit × ackTimeout
	// per dead candidate, restarted every reporterHomeInterval) would
	// keep freshness flapping at the island's controller.
	sticky   bool
	lastGood int // last candidate index that acked; -1 if none
}

// newReporter wires a reporter onto port. The port's message handler is
// installed here; sensors own the whole port.
func newReporter(port simnet.Port, candidates []simnet.NodeID) *reporter {
	r := &reporter{
		port:       port,
		candidates: append([]simnet.NodeID(nil), candidates...),
		pending:    make(map[uint64]*simnet.Timer),
		lastGood:   -1,
	}
	r.argSched, _ = port.(simnet.ArgScheduler)
	r.timeoutFn = r.onAckTimeout
	port.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		if ack, ok := msg.(readingAck); ok {
			r.onAck(ack.Seq)
		}
	})
	if ec, ok := port.(simnet.EnvelopeCarrier); ok {
		ec.OnEnvelope(func(_ simnet.NodeID, e *simnet.Envelope) {
			if e.Kind == envReadingAck {
				r.onAck(e.A)
			}
		})
	}
	if len(r.candidates) > 1 {
		// Periodically fail back to the primary so a recovered
		// collector is rediscovered (otherwise the reporter would stay
		// on a working backup forever).
		port.Every(reporterHomeInterval, func() {
			r.cur = 0
			r.misses = 0
		})
	}
	return r
}

// target returns the current collector candidate.
func (r *reporter) target() simnet.NodeID { return r.candidates[r.cur] }

// onAck settles one acknowledged reading (boxed or envelope path).
func (r *reporter) onAck(seq uint64) {
	if t, pending := r.pending[seq]; pending {
		t.Stop()
		delete(r.pending, seq)
		r.misses = 0
		r.lastGood = r.cur
	}
}

// onAckTimeout counts a miss for an unacknowledged reading and rotates
// to the next collector candidate past the miss limit.
func (r *reporter) onAckTimeout(seq uint64) {
	if _, still := r.pending[seq]; !still {
		return
	}
	delete(r.pending, seq)
	r.misses++
	if r.misses >= reporterMissLimit && len(r.candidates) > 1 {
		if r.sticky && r.lastGood >= 0 && r.lastGood != r.cur {
			r.cur = r.lastGood
		} else {
			if r.sticky && r.lastGood == r.cur {
				r.lastGood = -1 // the remembered candidate died; walk again
			}
			r.cur = (r.cur + 1) % len(r.candidates)
		}
		r.misses = 0
	}
}

// send ships one item to the current candidate and arms the failover
// timer.
func (r *reporter) send(item dataflow.Item) {
	r.seq++
	seq := r.seq
	r.port.Send(r.target(), readingMsg{Seq: seq, Item: item})
	if r.bus.Active() {
		r.bus.Emit("sensor.report", string(r.port.ID()), 0, 0, "%s → %s", item.Key, r.target())
	}
	if r.argSched != nil {
		r.pending[seq] = r.argSched.AfterArg(ackTimeout, r.timeoutFn, seq)
	} else {
		r.pending[seq] = r.port.After(ackTimeout, func() { r.onAckTimeout(seq) })
	}
}

// collector receives readings on a port, hands items to sink and acks
// them. Forwarding, storage and auditing live in the sink closure.
type collector struct {
	port simnet.Port
	sink func(item dataflow.Item, from simnet.NodeID)
}

// newCollector installs the collector's handler on port.
func newCollector(port simnet.Port, sink func(dataflow.Item, simnet.NodeID)) *collector {
	c := &collector{port: port, sink: sink}
	ec, _ := port.(simnet.EnvelopeCarrier)
	port.OnMessage(func(from simnet.NodeID, msg simnet.Message) {
		m, ok := msg.(readingMsg)
		if !ok {
			return
		}
		c.sink(m.Item, from)
		if m.Seq != 0 {
			if ec != nil {
				ec.SendEnvelope(from, simnet.Envelope{Kind: envReadingAck, A: m.Seq, Bytes: 12})
			} else {
				c.port.Send(from, readingAck{Seq: m.Seq})
			}
		}
	})
	return c
}

// itemTable is the simple latest-value store used by ML1–ML3
// collectors (a plain map, deliberately not replicated — that is the
// point of those maturity levels).
type itemTable struct {
	items map[string]dataflow.Item
}

func newItemTable() *itemTable {
	return &itemTable{items: make(map[string]dataflow.Item)}
}

func (t *itemTable) put(item dataflow.Item) {
	cur, ok := t.items[item.Key]
	if ok && cur.ProducedAt > item.ProducedAt {
		return // keep the newest payload
	}
	t.items[item.Key] = item
}

func (t *itemTable) get(key string) (dataflow.Item, bool) {
	item, ok := t.items[key]
	return item, ok
}
