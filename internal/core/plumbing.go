package core

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Wire messages shared by the archetypes.

// readingMsg carries one sensor item to a collector. Seq 0 means
// fire-and-forget (no ack expected), used for edge→cloud forwarding.
type readingMsg struct {
	Seq  uint64
	Item dataflow.Item
}

// readingAck acknowledges a reading to its sensor.
type readingAck struct {
	Seq uint64
}

// actuateMsg commands an actuator to the desired engagement state. It
// is idempotent and re-sent every control period so a restarted
// actuator re-learns its state.
type actuateMsg struct {
	Zone   int
	Engage bool
}

func (m readingMsg) Size() int { return 24 + 64 }
func (m readingAck) Size() int { return 12 }
func (m actuateMsg) Size() int { return 16 }

// zoneTempKey is the data key of a zone's temperature stream.
func zoneTempKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneTempKeys[z]
	}
	return fmt.Sprintf("z%d/temp", z)
}

// zoneTempAgeKey is the knowledge-base key carrying the age of a
// zone's last temperature sample.
func zoneTempAgeKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneTempAgeKeys[z]
	}
	return zoneTempKey(z) + "/age"
}

// zoneOccKey is the data key of a zone's (sensitive) occupancy stream.
func zoneOccKey(z int) string {
	if z >= 0 && z < keyTableSize {
		return zoneOccKeys[z]
	}
	return fmt.Sprintf("z%d/occ", z)
}

// ackTimeout bounds how long a reporter waits for a collector ack
// before counting a miss.
const ackTimeout = 500 * time.Millisecond

// reporterMissLimit is how many consecutive misses trigger failover to
// the next collector candidate.
const reporterMissLimit = 2

// reporterHomeInterval is how often a failed-over reporter retries its
// primary candidate, so a recovered collector is rediscovered.
const reporterHomeInterval = 30 * time.Second

// reporter delivers sensor readings to a prioritized list of collector
// candidates with ack-based failover: after reporterMissLimit
// consecutive unacknowledged readings it rotates to the next candidate
// (and eventually back, so a recovered primary is rediscovered).
type reporter struct {
	port       simnet.Port
	candidates []simnet.NodeID
	cur        int
	misses     int
	seq        uint64
	pending    map[uint64]*simnet.Timer
	bus        *obs.Bus
}

// newReporter wires a reporter onto port. The port's message handler is
// installed here; sensors own the whole port.
func newReporter(port simnet.Port, candidates []simnet.NodeID) *reporter {
	r := &reporter{
		port:       port,
		candidates: append([]simnet.NodeID(nil), candidates...),
		pending:    make(map[uint64]*simnet.Timer),
	}
	port.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
		ack, ok := msg.(readingAck)
		if !ok {
			return
		}
		if t, pending := r.pending[ack.Seq]; pending {
			t.Stop()
			delete(r.pending, ack.Seq)
			r.misses = 0
		}
	})
	if len(r.candidates) > 1 {
		// Periodically fail back to the primary so a recovered
		// collector is rediscovered (otherwise the reporter would stay
		// on a working backup forever).
		port.Every(reporterHomeInterval, func() {
			r.cur = 0
			r.misses = 0
		})
	}
	return r
}

// target returns the current collector candidate.
func (r *reporter) target() simnet.NodeID { return r.candidates[r.cur] }

// send ships one item to the current candidate and arms the failover
// timer.
func (r *reporter) send(item dataflow.Item) {
	r.seq++
	seq := r.seq
	r.port.Send(r.target(), readingMsg{Seq: seq, Item: item})
	if r.bus.Active() {
		r.bus.Emit("sensor.report", string(r.port.ID()), 0, 0, "%s → %s", item.Key, r.target())
	}
	r.pending[seq] = r.port.After(ackTimeout, func() {
		if _, still := r.pending[seq]; !still {
			return
		}
		delete(r.pending, seq)
		r.misses++
		if r.misses >= reporterMissLimit && len(r.candidates) > 1 {
			r.cur = (r.cur + 1) % len(r.candidates)
			r.misses = 0
		}
	})
}

// collector receives readings on a port, hands items to sink and acks
// them. Forwarding, storage and auditing live in the sink closure.
type collector struct {
	port simnet.Port
	sink func(item dataflow.Item, from simnet.NodeID)
}

// newCollector installs the collector's handler on port.
func newCollector(port simnet.Port, sink func(dataflow.Item, simnet.NodeID)) *collector {
	c := &collector{port: port, sink: sink}
	port.OnMessage(func(from simnet.NodeID, msg simnet.Message) {
		m, ok := msg.(readingMsg)
		if !ok {
			return
		}
		c.sink(m.Item, from)
		if m.Seq != 0 {
			c.port.Send(from, readingAck{Seq: m.Seq})
		}
	})
	return c
}

// itemTable is the simple latest-value store used by ML1–ML3
// collectors (a plain map, deliberately not replicated — that is the
// point of those maturity levels).
type itemTable struct {
	items map[string]dataflow.Item
}

func newItemTable() *itemTable {
	return &itemTable{items: make(map[string]dataflow.Item)}
}

func (t *itemTable) put(item dataflow.Item) {
	cur, ok := t.items[item.Key]
	if ok && cur.ProducedAt > item.ProducedAt {
		return // keep the newest payload
	}
	t.items[item.Key] = item
}

func (t *itemTable) get(key string) (dataflow.Item, bool) {
	item, ok := t.items[key]
	return item, ok
}
