package core

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// FaultPreset selects a canned disruption schedule.
type FaultPreset int

// Canned disruption schedules.
const (
	// FaultsStandard is the Table 1/2 schedule: a cloud-WAN outage, a
	// gateway crash, a combined gateway+backup crash, an edge
	// partition and a cloud restart, spread over the run.
	FaultsStandard FaultPreset = iota + 1
	// FaultsNone disables disruption (calibration runs).
	FaultsNone
	// FaultsHeavy doubles the standard schedule's outage durations.
	FaultsHeavy
)

// ScenarioConfig describes the smart-city workload every archetype
// runs: zones with drifting/shocked temperature controlled through
// cooling actuators, plus a sensitive occupancy stream per zone. Zero
// fields take defaults (see DefaultScenario).
type ScenarioConfig struct {
	Seed  int64
	Zones int
	// TempSensorsPerZone is the number of redundant temperature
	// sensors per zone.
	TempSensorsPerZone int
	// Cloudlets is the number of shared edge cloudlets.
	Cloudlets int

	Duration        time.Duration
	SampleInterval  time.Duration // sensor reporting period
	ControlInterval time.Duration // controller decision period
	EnvStep         time.Duration // environment integration step

	TempInit  float64
	TempLow   float64 // requirement band lower bound
	TempHigh  float64 // requirement band upper bound
	Drift     float64 // ambient heating, units/s
	Noise     float64 // environment noise stddev
	ShockProb float64 // heat-shock probability per env step
	ShockMag  float64 // heat-shock magnitude
	CoolRate  float64 // actuator effect, units/s (negative)

	// FreshnessFactor: a reading is fresh at the controller while its
	// age is below FreshnessFactor × SampleInterval.
	FreshnessFactor int

	Preset FaultPreset
	// Faults overrides the preset with a custom schedule.
	Faults *fault.Schedule

	// BoltOnResilience hardens the ML2 archetype with the traditional
	// add-on mechanisms the paper argues are insufficient (§III):
	// QoS-1 publishes with retry, aggressive re-subscription after
	// broker restarts. Used by the A1 ablation; ignored by other
	// archetypes.
	BoltOnResilience bool
	// ML4Ablation disables one native mechanism of the ML4 archetype
	// for the A2 ablation: "no-failover" pins sensors to their home
	// gateway, "no-replan" freezes controller placements after the
	// initial assignment, "no-sync" removes CRDT peer synchronization
	// between stores. Empty means the full architecture.
	ML4Ablation string
	// ML4SyncInterval overrides the ML4 data plane's anti-entropy
	// period (default: SampleInterval). The X2 experiment sweeps it to
	// trade traffic against freshness.
	ML4SyncInterval time.Duration

	// EdgePeerFanout bounds how many edge peers each ML4 store and
	// MAPE knowledge syncer gossips with (nearest ring neighbours plus
	// the cloud). Zero keeps the paper-scale default of full all-to-all
	// peering; the city tier sets a small fanout because O(n²) peering
	// across hundreds of gateways would dominate the run.
	EdgePeerFanout int

	// StrictMembership makes the ML4 gossip detector require a
	// strictly newer incarnation before an Alive claim overrides a
	// Dead verdict (gossip.Config.StrictResurrection). The city tier
	// sets it: at 200+ members, stale Alive echoes outlive the
	// dissemination of a death verdict and flap crashed gateways back
	// to life, so the replanner parks controllers on dead nodes. Off
	// by default — the paper-scale group converges within a round, and
	// its journals are pinned to the lenient rule.
	StrictMembership bool

	// RaftHeartbeat overrides the ML4 placement group's AppendEntries
	// period (election timeouts scale with it). Zero keeps the
	// consensus package's 50 ms default, which is right for a 6-member
	// paper-scale group but floods a 200+-member city group: the
	// placement log changes every few seconds, so the city tier
	// stretches the heartbeat instead of paying ~1M idle appends per
	// run.
	RaftHeartbeat time.Duration

	// UseHeapScheduler selects simnet's reference 4-ary heap event
	// queue instead of the default hierarchical timing wheel. Both pop
	// events in the identical (at, seq) order, so runs are bit-identical
	// either way — enforced by TestSchedulerDifferential, which is the
	// knob's reason to exist.
	UseHeapScheduler bool

	// Resilience hardening knobs (DESIGN.md §9). All default off/zero
	// so every pinned journal — paper scale, city tier, and the chaos
	// corpus replay contract — stays bit-identical. Hardened() turns
	// them on as a profile; `riotchaos verify` runs the corpus against
	// that profile.

	// IslandMode lets an ML4 edge node that has lost Raft quorum
	// contact for IslandGrace fall back to a local planner: the node
	// keeps its zones' sensing→analysis→actuation chains running from
	// locally-cached state and hands control back deterministically
	// when quorum contact returns (CRDT merge + placement handoff).
	IslandMode bool
	// IslandGrace is how long quorum contact must be lost before a
	// node enters island mode. Zero means 3 × ControlInterval — long
	// enough that an election-timeout flap never trips it.
	IslandGrace time.Duration
	// PlacementSpread makes the ML4 planner place each zone controller
	// on PlacementSpread distinct hosts spanning connectivity domains
	// (primary + off-zone backups), so no single partition isolates
	// every replica. 0 or 1 keeps single-replica placement.
	PlacementSpread int
	// BackupActuators adds that many standby actuators per zone to the
	// topology. The ML4 actuation path fails over to the first
	// gossip-alive candidate when the primary dies; other archetypes
	// keep commanding only the primary (the maturity gap under test).
	BackupActuators int
	// StickyFailover makes sensor reporters return to the last node
	// that acked them — instead of restarting the candidate walk from
	// their home gateway — after the periodic home retry fails. Without
	// it a reporter inside a device-side island spends most of each
	// retry cycle walking dead candidates and freshness flaps.
	StickyFailover bool

	// Shards selects simnet's zone-sharded deterministic scheduler
	// (DESIGN.md §11): the zones are block-partitioned across Shards
	// lanes that advance in conservative lookahead windows, and the
	// journal is merged by shard-count-invariant logical event keys —
	// so the JournalHash is byte-identical at any Shards ≥ 1, with
	// Shards = 1 the serial reference leg. Zero keeps the legacy
	// single-threaded scheduler and its pinned journal family
	// (sharded-mode hashes form a separate family: per-node RNG
	// streams replace the global draw order). Not defaulted by
	// withDefaults. Supersedes UseHeapScheduler when set.
	Shards int
}

// Hardened returns a copy of the config with every resilience knob
// turned on: island-mode degraded operation, 2-way placement spread,
// one backup actuator per zone, and sticky reporter failover. This is
// the profile `riotchaos verify` replays the corpus against.
func (c ScenarioConfig) Hardened() ScenarioConfig {
	c.IslandMode = true
	c.PlacementSpread = 2
	c.BackupActuators = 1
	c.StickyFailover = true
	return c
}

// DefaultScenario returns the configuration used by the Table 1/2
// experiment.
func DefaultScenario() ScenarioConfig {
	return ScenarioConfig{
		Seed:               1,
		Zones:              4,
		TempSensorsPerZone: 2,
		Cloudlets:          2,
		Duration:           20 * time.Minute,
		SampleInterval:     2 * time.Second,
		ControlInterval:    2 * time.Second,
		EnvStep:            time.Second,
		TempInit:           21,
		TempLow:            18,
		TempHigh:           26,
		Drift:              0.06,
		Noise:              0.03,
		ShockProb:          0.002,
		ShockMag:           3,
		CoolRate:           -0.3,
		FreshnessFactor:    4,
		Preset:             FaultsStandard,
	}
}

// CityScenario returns the Figure-1-scale configuration: a city-wide
// deployment of 5009 devices — 200 zones × (22 temperature sensors +
// occupancy sensor + actuator) plus 200 gateways, 8 cloudlets and the
// cloud — under the same disruption vectors as the paper-scale run.
// Intervals are stretched and the run shortened so a full maturity
// matrix stays a benchmark, not a batch job, and the physics rates are
// rescaled so each control decision moves the temperature by the same
// amount as at paper scale (rate × interval is what the hysteresis
// band sees; stretching the interval without rescaling the rates makes
// every archetype overshoot the band and measures the config, not the
// architecture). The default FreshnessFactor keeps the freshness
// window at 4 × SampleInterval = 20 s: comfortably above the two-hop
// sync latency of relayed data (≤10 s) yet far below the heavy
// schedule's 48–72 s outages — the discrimination between archetypes
// lives in that inequality.
// EdgePeerFanout bounds the ML4 peering degree and RaftHeartbeat
// stretches the 208-member placement group's idle traffic, since
// all-to-all sync and 50 ms heartbeats across 200 gateways would
// measure O(n²) peering instead of the architecture.
func CityScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Zones = 200
	cfg.TempSensorsPerZone = 22
	cfg.Cloudlets = 8
	cfg.Duration = 4 * time.Minute
	cfg.SampleInterval = 5 * time.Second
	cfg.ControlInterval = 5 * time.Second
	cfg.EnvStep = 5 * time.Second
	cfg.Drift = 0.024      // +0.12 per 5 s decision, as at paper scale
	cfg.CoolRate = -0.12   // −0.6 per 5 s decision, as at paper scale
	cfg.ShockProb = 0.0005 // ~5 shocks per run city-wide, as at paper scale
	cfg.EdgePeerFanout = 4
	cfg.StrictMembership = true
	cfg.RaftHeartbeat = 500 * time.Millisecond
	cfg.Preset = FaultsHeavy
	return cfg
}

// CityScenarioSmoke returns the reduced city tier the CI smoke job
// runs: the same stretched intervals and bounded fanout, scaled down
// to finish a four-archetype matrix in seconds.
func CityScenarioSmoke() ScenarioConfig {
	cfg := CityScenario()
	cfg.Zones = 40
	cfg.TempSensorsPerZone = 6
	cfg.Cloudlets = 4
	cfg.Duration = 3 * time.Minute
	return cfg
}

// MetropolisScenario returns the metropolis tier: 1000 zones × 102
// devices ≈ 102k simulated devices (100 temperature sensors + occupancy
// sensor + actuator + gateway per zone, 16 cloudlets, one cloud) — two
// orders of magnitude past paper scale, the ~100k rung on the way to
// the 1M-device target (reach it by raising Zones to 10000 via the
// -zones flag). Zones stay at 1000 and density carries the device
// count: per-device work is linear, but gossip membership, replanning
// and placement all grow with the gateway count, so zones are the
// axis that turns quadratic at this scale. The tier exists to exercise
// the sharded scheduler: zone-local traffic dominates, so wall clock
// scales with cores (EXPERIMENTS.md records the curve). Intervals
// stretch further than the city tier so the event count stays a
// benchmark, and the fault preset is the standard schedule — the tier
// measures throughput, not archetype discrimination (the city tier
// does that).
func MetropolisScenario() ScenarioConfig {
	cfg := CityScenario()
	cfg.Zones = 1000
	cfg.TempSensorsPerZone = 100
	cfg.Cloudlets = 16
	cfg.Duration = 2 * time.Minute
	cfg.SampleInterval = 10 * time.Second
	cfg.ControlInterval = 10 * time.Second
	cfg.EnvStep = 10 * time.Second
	cfg.Drift = 0.012        // +0.12 per 10 s decision, as at paper scale
	cfg.CoolRate = -0.06     // −0.6 per 10 s decision, as at paper scale
	cfg.ShockProb = 0.000025 // ~5 shocks per run metropolis-wide
	cfg.Preset = FaultsStandard
	return cfg
}

// MetropolisScenarioSmoke returns the reduced metropolis tier the CI
// smoke job runs: the full ~100k-device tier shortened so one ML1 run
// finishes in CI seconds.
func MetropolisScenarioSmoke() ScenarioConfig {
	cfg := MetropolisScenario()
	cfg.Duration = time.Minute
	return cfg
}

// withDefaults fills zero fields from DefaultScenario.
func (c ScenarioConfig) withDefaults() ScenarioConfig {
	d := DefaultScenario()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Zones == 0 {
		c.Zones = d.Zones
	}
	if c.TempSensorsPerZone == 0 {
		c.TempSensorsPerZone = d.TempSensorsPerZone
	}
	if c.Cloudlets == 0 {
		c.Cloudlets = d.Cloudlets
	}
	if c.Duration == 0 {
		c.Duration = d.Duration
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = d.SampleInterval
	}
	if c.ControlInterval == 0 {
		c.ControlInterval = d.ControlInterval
	}
	if c.EnvStep == 0 {
		c.EnvStep = d.EnvStep
	}
	if c.TempInit == 0 {
		c.TempInit = d.TempInit
	}
	if c.TempLow == 0 {
		c.TempLow = d.TempLow
	}
	if c.TempHigh == 0 {
		c.TempHigh = d.TempHigh
	}
	if c.Drift == 0 {
		c.Drift = d.Drift
	}
	if c.Noise == 0 {
		c.Noise = d.Noise
	}
	if c.ShockProb == 0 {
		c.ShockProb = d.ShockProb
	}
	if c.ShockMag == 0 {
		c.ShockMag = d.ShockMag
	}
	if c.CoolRate == 0 {
		c.CoolRate = d.CoolRate
	}
	if c.FreshnessFactor == 0 {
		c.FreshnessFactor = d.FreshnessFactor
	}
	if c.Preset == 0 {
		c.Preset = d.Preset
	}
	return c
}

// Node naming helpers shared by the archetypes and experiments.

func gatewayID(zone int) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("gw-%d", zone))
}

func cloudletID(i int) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("cl-%d", i))
}

func tempSensorID(zone, i int) simnet.NodeID {
	if i == 0 && zone >= 0 && zone < keyTableSize {
		return tempSensor0[zone]
	}
	return simnet.NodeID(fmt.Sprintf("z%d-s%d", zone, i))
}

func occSensorID(zone int) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("z%d-occ", zone))
}

func actuatorID(zone int) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("z%d-act", zone))
}

func backupActuatorID(zone, i int) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("z%d-act-b%d", zone, i))
}

// cloudID is the single cloud node.
const cloudID = simnet.NodeID("cloud")

// standardFaults builds the preset disruption schedule, expressed as
// fractions of the run so it scales with Duration.
func standardFaults(cfg ScenarioConfig, heavy bool) *fault.Schedule {
	T := cfg.Duration
	frac := func(f float64) time.Duration { return time.Duration(f * float64(T)) }
	scale := 1.0
	if heavy {
		scale = 2.0
	}
	dur := func(f float64) time.Duration { return time.Duration(f * scale * float64(T)) }

	s := &fault.Schedule{}
	// 1) Cloud WAN outage: all traffic to/from the cloud dies.
	for z := 0; z < cfg.Zones; z++ {
		s.CutLink(frac(0.10), dur(0.15), gatewayID(z), cloudID)
		for i := 0; i < cfg.TempSensorsPerZone; i++ {
			s.CutLink(frac(0.10), dur(0.15), tempSensorID(z, i), cloudID)
		}
		s.CutLink(frac(0.10), dur(0.15), occSensorID(z), cloudID)
		s.CutLink(frac(0.10), dur(0.15), actuatorID(z), cloudID)
	}
	for i := 0; i < cfg.Cloudlets; i++ {
		s.CutLink(frac(0.10), dur(0.15), cloudletID(i), cloudID)
	}
	// 2) Gateway of zone 0 crashes.
	s.Crash(frac(0.30), gatewayID(0), dur(0.12))
	// 3) Gateway of zone 1 AND its statically designated ML3 backup
	//    cloudlet crash together.
	s.Crash(frac(0.50), gatewayID(1), dur(0.12))
	s.Crash(frac(0.50), cloudletID(1%cfg.Cloudlets), dur(0.12))
	// 4) Partition: zone 2's infrastructure is severed from the rest
	//    of the edge (and the cloud).
	if cfg.Zones > 2 {
		island := []simnet.NodeID{gatewayID(2), actuatorID(2), occSensorID(2)}
		for i := 0; i < cfg.TempSensorsPerZone; i++ {
			island = append(island, tempSensorID(2, i))
		}
		s.Partition(frac(0.70), dur(0.10), island)
	}
	// 5) Cloud node restarts (brokers lose volatile state).
	s.Crash(frac(0.85), cloudID, dur(0.05))
	return s
}

// buildFaults resolves the schedule for a config.
func buildFaults(cfg ScenarioConfig) *fault.Schedule {
	if cfg.Faults != nil {
		return cfg.Faults
	}
	switch cfg.Preset {
	case FaultsNone:
		return &fault.Schedule{}
	case FaultsHeavy:
		return standardFaults(cfg, true)
	default:
		return standardFaults(cfg, false)
	}
}
