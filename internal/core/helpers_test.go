package core

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/space"
)

func TestServableCandidatesPerArchetype(t *testing.T) {
	cfg := quickCfg(FaultsNone)
	tests := []struct {
		arch Archetype
		zone int
		want []simnet.NodeID
	}{
		{ML1, 0, []simnet.NodeID{"gw-0"}},
		{ML2, 1, []simnet.NodeID{"cloud"}},
		{ML3, 1, []simnet.NodeID{"gw-1", "cl-1"}},
		{ML3, 2, []simnet.NodeID{"gw-2", "cl-0"}},
	}
	for _, tt := range tests {
		sys := NewSystem(cfg, tt.arch)
		got := sys.servableCandidates(tt.zone)
		if len(got) != len(tt.want) {
			t.Fatalf("%v zone %d: candidates = %v, want %v", tt.arch, tt.zone, got, tt.want)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Fatalf("%v zone %d: candidates = %v, want %v", tt.arch, tt.zone, got, tt.want)
			}
		}
	}
	// ML4: all edge nodes.
	sys := NewSystem(cfg, ML4)
	if got := sys.servableCandidates(0); len(got) != cfg.Zones+cfg.Cloudlets {
		t.Fatalf("ML4 candidates = %v", got)
	}
}

func TestControllerStackFollowsLiveness(t *testing.T) {
	cfg := quickCfg(FaultsNone)

	// ML1: the home gateway, or nothing.
	sys := NewSystem(cfg, ML1)
	st, up := sys.controllerStack(0)
	if !up || st.id != "gw-0" {
		t.Fatalf("ML1 controller = %v/%v", st.id, up)
	}
	sys.sim.SetDown("gw-0", true)
	if _, up := sys.controllerStack(0); up {
		t.Fatal("ML1 controller up with gateway down")
	}

	// ML3: fail over to the designated backup.
	sys3 := NewSystem(cfg, ML3)
	sys3.sim.SetDown("gw-0", true)
	st3, up3 := sys3.controllerStack(0)
	if !up3 || st3.id != sys3.backupFor(0).id {
		t.Fatalf("ML3 fallback = %v/%v", st3.id, up3)
	}

	// ML2: the cloud.
	sys2 := NewSystem(cfg, ML2)
	st2, _ := sys2.controllerStack(3)
	if st2.id != cloudID {
		t.Fatalf("ML2 controller = %v", st2.id)
	}
	sys2.sim.SetDown(cloudID, true)
	if _, up := sys2.controllerStack(3); up {
		t.Fatal("ML2 controller up with cloud down")
	}

	// ML4 before any placement: nothing controls.
	sys4 := NewSystem(cfg, ML4)
	if _, up := sys4.controllerStack(0); up {
		t.Fatal("ML4 controller up before raft placement")
	}
	sys4.sim.RunUntil(30 * time.Second)
	st4, up4 := sys4.controllerStack(0)
	if !up4 {
		t.Fatal("ML4 controller missing after placement")
	}
	if st4.id != "gw-0" {
		t.Fatalf("ML4 placed zone 0 on %v, expected the in-zone gateway", st4.id)
	}
}

func TestDeviceOfFindsEveryKind(t *testing.T) {
	sys := NewSystem(quickCfg(FaultsNone), ML1)
	for _, id := range []simnet.NodeID{"z0-s0", "z0-occ", "z0-act", "gw-0", "cl-0", "cloud"} {
		if sys.deviceOf(id) == nil {
			t.Fatalf("deviceOf(%s) = nil", id)
		}
	}
	if sys.deviceOf("ghost") != nil {
		t.Fatal("deviceOf(ghost) found something")
	}
}

func TestOnFaultModelEvents(t *testing.T) {
	sys := NewSystem(quickCfg(FaultsNone), ML1)

	// Domain transfer moves the node's placement.
	sys.onFault(fault.Event{Kind: fault.KindDomainTransfer, Node: "gw-0", Detail: "cloudprov"})
	pl, _ := sys.spaces.PlacementOf("gw-0")
	if pl.Domain != space.DomainID("cloudprov") {
		t.Fatalf("domain = %v", pl.Domain)
	}

	// Stack upgrade bumps the device's software version.
	before := sys.deviceOf("gw-0").Stack().Version
	sys.onFault(fault.Event{Kind: fault.KindStackUpgrade, Node: "gw-0"})
	if sys.deviceOf("gw-0").Stack().Version != before+1 {
		t.Fatal("stack not upgraded")
	}

	// Battery drain exhausts a battery-powered device.
	sys.onFault(fault.Event{Kind: fault.KindBatteryDrain, Node: "z0-s0"})
	if !sys.deviceOf("z0-s0").Drained() {
		t.Fatal("sensor not drained")
	}
	// Mains devices are immune.
	sys.onFault(fault.Event{Kind: fault.KindBatteryDrain, Node: "gw-0"})
	if sys.deviceOf("gw-0").Drained() {
		t.Fatal("mains device drained")
	}

	// Unknown node: no panic.
	sys.onFault(fault.Event{Kind: fault.KindStackUpgrade, Node: "ghost"})
}

func TestAttributeOutages(t *testing.T) {
	// One outage ending right after an external recovery → manual;
	// one ending with no recovery nearby → auto.
	tr := newTraceWithOutages(t)
	recoveries := []time.Duration{95 * time.Second} // outage1 ends at 100s
	manual, auto := attributeOutages(tr, recoveries)
	if manual != 1 || auto != 1 {
		t.Fatalf("manual=%d auto=%d, want 1/1", manual, auto)
	}
	// No recoveries at all → everything auto.
	m2, a2 := attributeOutages(tr, nil)
	if m2 != 0 || a2 != 2 {
		t.Fatalf("manual=%d auto=%d, want 0/2", m2, a2)
	}
}

func newTraceWithOutages(t *testing.T) *metrics.SatisfactionTrace {
	t.Helper()
	tr := &metrics.SatisfactionTrace{}
	points := []struct {
		sec int
		ok  bool
	}{
		{0, true}, {50, false}, {100, true}, // outage 1: 50→100
		{200, false}, {300, true}, // outage 2: 200→300 (no repair nearby)
	}
	for _, p := range points {
		tr.Record(time.Duration(p.sec)*time.Second, p.ok)
	}
	return tr
}
