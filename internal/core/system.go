package core

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/dataflow"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/fault"
	"repro/internal/gossip"
	"repro/internal/mape"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/orchestrate"
	"repro/internal/pubsub"
	"repro/internal/simnet"
	"repro/internal/space"
	"repro/internal/verify"
)

// dataView reads a node's current belief about a data key.
type dataView func(key string) (dataflow.Item, bool)

// sensorRig is one sensor device with its delivery path. ep is the
// node's network surface: a simulator endpoint in sim runs, a live UDP
// realnet node in live runs — all wiring is written against the Port
// seam so the same protocol code drives both.
type sensorRig struct {
	id       simnet.NodeID
	zone     int
	ep       simnet.Port
	mux      *simnet.Mux
	dev      *device.Device
	sensor   *device.Sensor
	reporter *reporter      // ML1/3/4
	client   *pubsub.Client // ML2
	label    dataflow.Label
	key      string
}

// actRig is one actuator device.
type actRig struct {
	id       simnet.NodeID
	zone     int
	ep       simnet.Port
	mux      *simnet.Mux
	dev      *device.Device
	actuator *device.Actuator
	// lastCmd drives the device-local watchdog: an actuator that
	// stops hearing from its controller disengages rather than run
	// away (a standard hardware failsafe, present at every maturity
	// level).
	lastCmd time.Duration
	// gossip joins actuator rigs to the ML4 membership group when
	// BackupActuators is on, so controllers detect actuator death and
	// fail actuation over (DESIGN.md §9).
	gossip *gossip.Protocol
}

// edgeStack is one edge or cloud node with whatever subsystems its
// archetype installed.
type edgeStack struct {
	id   simnet.NodeID
	ep   simnet.Port
	mux  *simnet.Mux
	dev  *device.Device
	zone int // home zone; -1 for cloudlets and cloud

	table *itemTable      // ML1–ML3 latest-value store
	store *dataflow.Store // ML4 replicated store
	view  dataView

	desired map[int]bool              // controller hysteresis memory per zone
	applied map[int]simnet.NodeID     // ML4: raft-applied controller placements
	raft    *consensus.Node           // ML4
	gossip  *gossip.Protocol          // ML4
	orch    *orchestrate.Orchestrator // ML4: leader-side placement brain
	loop    *mape.Loop                // ML2+: analysis at this node
	syncer  *mape.Syncer              // ML4 knowledge sharing

	// appliedBackups mirrors applied for the raft-replicated backup
	// controller replicas (PlacementSpread > 1); guard is the
	// island-mode state machine (IslandMode). Both stay nil with the
	// hardening knobs off.
	appliedBackups map[int][]simnet.NodeID
	guard          *mape.IslandGuard

	// ml4Replan's models@runtime verdict depends only on the alive
	// membership set; the leader re-checks every tick, so the verdict
	// for the last-seen set is cached under its signature.
	ctlCheckKey string
	ctlCheckOK  bool
}

// System is one archetype instance of the scenario, ready to Run.
type System struct {
	cfg  ScenarioConfig
	arch Archetype

	// sim backs simulated runs; live backs wall-clock runs over real
	// UDP sockets (exactly one is non-nil). All run-time queries go
	// through the now/nodeUp/reachable seam so the measurement and
	// control code is backend-agnostic.
	sim      *simnet.Sim
	live     *liveBackend
	envm     *env.Environment
	spaces   *space.Map
	injector *fault.Injector

	sensors   []*sensorRig
	actuators []*actRig
	// actCandidates lists each zone's actuation targets in failover
	// priority order: the primary first, then the backup rigs.
	actCandidates [][]simnet.NodeID
	gateways      []*edgeStack
	cloudlets     []*edgeStack
	// Caches over the fixed post-buildWorld topology.
	edgeStackCache []*edgeStack
	edgeIDCache    []simnet.NodeID
	cloud          *edgeStack
	broker         *pubsub.Broker // ML2

	goal     *model.GoalModel
	reqTemp  []model.RequirementID
	reqFresh []model.RequirementID
	auditor  *dataflow.Engine
	// auditors replaces the single engine in sharded mode: one engine
	// per lane, so concurrent shard windows never share auditor state.
	// The per-item verdict is stateless, so the summed violation count
	// is shard-count-invariant.
	auditors []*dataflow.Engine
	freshWin time.Duration
	warmup   time.Duration
	endOfRun time.Duration

	// Measurement state.
	tempTrace   []*metrics.SatisfactionTrace
	freshTrace  []*metrics.SatisfactionTrace
	goalTrace   *metrics.SatisfactionTrace
	servable    metrics.Ratio
	invocations metrics.Ratio
	dataAvail   metrics.Ratio
	staleness   *metrics.LatencyRecorder
	// lastControlOK[z] is the lane-shared "when did zone z last see a
	// successful control tick" watermark, advanced monotonically via
	// CAS-max: writes are time-ordered within a zone, so the maximum
	// equals the last write and legacy behavior is preserved exactly.
	lastControlOK []atomic.Int64

	runtimeMonitored int
	designChecked    int
	designPassed     bool
	// models@runtime: the ML4 leader re-verifies the control
	// availability model against the live membership view on every
	// replanning pass. Atomic because replanning runs on leader nodes'
	// events, which execute on shard lanes in sharded mode.
	runtimeChecks atomic.Int64
	runtimeAlerts atomic.Int64

	journal []RunEvent
	// laneJournals buffers journal records per lane in sharded mode,
	// keyed by logical event sequence; mergeJournal flattens them into
	// journal after the run. Nil in legacy mode.
	laneJournals [][]laneEvent
	prevTempOK   []bool
	prevFresh    []bool

	// Observability: every subsystem publishes onto one bus reading
	// virtual time. Causal chaining state links each violation and
	// recovery back to the most recent injected fault.
	bus           *obs.Bus
	lastFaultSpan uint64
	tempViolSpan  []uint64
	freshViolSpan []uint64
}

// NewSystem builds the scenario at the given maturity level.
func NewSystem(cfg ScenarioConfig, arch Archetype) *System {
	return newSystem(cfg, arch, nil)
}

// newSystem is the shared constructor: with live == nil the system runs
// on the simulator exactly as before; with a live backend the same
// topology boots on real UDP nodes and the simulator is never created.
func newSystem(cfg ScenarioConfig, arch Archetype, live *liveBackend) *System {
	cfg = cfg.withDefaults()
	sys := &System{
		cfg:          cfg,
		arch:         arch,
		live:         live,
		envm:         env.New(cfg.Seed + 1),
		spaces:       space.NewMap(),
		auditor:      dataflow.ObservedEngine(),
		freshWin:     time.Duration(cfg.FreshnessFactor) * cfg.SampleInterval,
		warmup:       cfg.Duration / 20,
		endOfRun:     cfg.Duration,
		staleness:    &metrics.LatencyRecorder{},
		designPassed: true,
		// Presize the run journal: growth reallocations on the hot
		// record path would otherwise dominate short runs.
		journal: make([]RunEvent, 0, 256),
	}
	if live == nil {
		simOpts := []simnet.Option{simnet.WithSeed(cfg.Seed), simnet.WithDefaultLatency(2 * time.Millisecond)}
		if cfg.UseHeapScheduler {
			simOpts = append(simOpts, simnet.WithHeapScheduler())
		}
		if cfg.Shards > 0 {
			// Sharded deterministic mode supersedes the scheduler choice:
			// every lane runs its own timing wheel.
			simOpts = append(simOpts, simnet.WithShards(cfg.Shards))
		}
		sys.sim = simnet.New(simOpts...)
		sys.injector = fault.NewInjector(sys.sim)
	}
	sys.bus = obs.NewBus(sys.now)
	if sys.sim != nil {
		if n := sys.sim.ShardCount(); n > 0 {
			sys.laneJournals = make([][]laneEvent, n+1)
			sys.auditors = make([]*dataflow.Engine, n+1)
			for i := range sys.auditors {
				sys.auditors[i] = dataflow.ObservedEngine()
			}
		}
	}
	sys.buildWorld()
	sys.buildRequirements()
	switch arch {
	case ML1:
		sys.wireML1()
	case ML2:
		sys.wireML2()
	case ML3:
		sys.wireML3()
	case ML4:
		sys.wireML4()
	default:
		panic(fmt.Sprintf("core: unknown archetype %v", arch))
	}
	if sys.injector != nil {
		sys.injector.Arm(buildFaults(cfg))
		sys.attachFaultSubscribers(sys.injector)
	}
	return sys
}

// attachFaultSubscribers wires the system's fault handling onto an
// injector — the simulator's or a live realnet one, both of which
// expose the same Subscribe surface.
func (sys *System) attachFaultSubscribers(src interface{ Subscribe(fault.Subscriber) }) {
	src.Subscribe(sys.onFault)
	src.Subscribe(func(ev fault.Event) {
		// Each fault roots a causal chain: the violations it provokes
		// and the recoveries that resolve them are parented on its span.
		span := sys.bus.NewSpanID()
		sys.lastFaultSpan = span
		sys.recordSpan(EventFault, span, 0, "%s%s", ev.Kind, faultDetail(ev))
	})
}

// Bus returns the system's observability bus. Attach subscribers (a
// trace collector, a metrics registry) before Run; with none attached
// the instrumentation is near-free.
func (sys *System) Bus() *obs.Bus { return sys.bus }

// faultDetail renders the target of a fault event for the journal.
func faultDetail(ev fault.Event) string {
	switch {
	case ev.From != "" || ev.To != "":
		return fmt.Sprintf(" %s↔%s", ev.From, ev.To)
	case ev.Node != "" && ev.Detail != "":
		return fmt.Sprintf(" %s %s", ev.Node, ev.Detail)
	case ev.Node != "":
		return " " + string(ev.Node)
	case ev.Detail != "":
		return " " + ev.Detail
	default:
		return ""
	}
}

// zoneID names zone z in the spatial model.
func zoneID(z int) space.ZoneID {
	if z >= 0 && z < keyTableSize {
		return zoneIDTable[z]
	}
	return space.ZoneID(fmt.Sprintf("zone-%d", z))
}

// buildWorld creates domains, zones, environment processes, devices
// and their simulator nodes — everything archetype-independent.
func (sys *System) buildWorld() {
	cfg := sys.cfg
	sys.spaces.AddDomain(space.Domain{ID: "campus", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	sys.spaces.AddDomain(space.Domain{ID: "cloudprov", Jurisdiction: space.JurisdictionCCPA, Trusted: true})

	for z := 0; z < cfg.Zones; z++ {
		x0 := float64(z) * 100
		if err := sys.spaces.AddZone(space.Zone{
			ID:  zoneID(z),
			Min: space.Point{X: x0, Y: 0}, Max: space.Point{X: x0 + 90, Y: 90},
			DomainID: "campus",
		}); err != nil {
			panic(err)
		}
		sys.envm.Define(zoneID(z), env.Temperature, env.Process{
			Initial: cfg.TempInit, Drift: cfg.Drift, Noise: cfg.Noise,
			ShockProb: cfg.ShockProb, ShockMag: cfg.ShockMag,
			Min: -20, Max: 60,
		})
		sys.envm.Define(zoneID(z), env.Occupancy, env.Process{
			Initial: 5, Noise: 0.5, Min: 0, Max: 50,
		})
	}

	place := func(id simnet.NodeID, z int, dx, dy float64, dom space.DomainID) {
		x0 := 0.0
		if z >= 0 {
			x0 = float64(z) * 100
		}
		sys.spaces.Place(string(id), space.Point{X: x0 + dx, Y: dy}, dom)
	}

	// Zone→shard partitioning: contiguous zone blocks, so intra-zone
	// traffic (sensors↔gateway↔actuators — the overwhelming bulk) stays
	// shard-local and only gateway↔gateway, gateway↔cloudlet and WAN
	// traffic crosses lanes. SetShard is a no-op in legacy mode.
	shards := sys.shardCount()
	shardFor := func(z int) int {
		if shards > 1 && z >= 0 {
			return z * shards / cfg.Zones
		}
		return 0
	}

	// Devices and nodes.
	for z := 0; z < cfg.Zones; z++ {
		for i := 0; i < cfg.TempSensorsPerZone; i++ {
			id := tempSensorID(z, i)
			dev := device.New(device.ID(id), device.Config{
				Class:        device.ClassSensorNode,
				Capabilities: []device.Capability{device.SenseCap(env.Temperature)},
			})
			rig := &sensorRig{
				id: id, zone: z, dev: dev,
				sensor: &device.Sensor{Device: dev, Zone: zoneID(z), Variable: env.Temperature, NoiseStd: 0.05},
				label: dataflow.Label{
					Topic: "temperature", Sensitivity: dataflow.Public,
					Origin: "campus", Jurisdiction: space.JurisdictionGDPR,
				},
				key: zoneTempKey(z),
			}
			rig.ep = sys.addNode(id)
			rig.mux = simnet.NewPortMux(rig.ep)
			sys.setShard(id, shardFor(z))
			sys.sensors = append(sys.sensors, rig)
			place(id, z, 10+float64(i)*5, 10, "campus")
		}
		occ := occSensorID(z)
		occDev := device.New(device.ID(occ), device.Config{
			Class:        device.ClassSensorNode,
			Capabilities: []device.Capability{device.SenseCap(env.Occupancy)},
		})
		occRig := &sensorRig{
			id: occ, zone: z, dev: occDev,
			sensor: &device.Sensor{Device: occDev, Zone: zoneID(z), Variable: env.Occupancy, NoiseStd: 0.2},
			label: dataflow.Label{
				Topic: "occupancy", Sensitivity: dataflow.Sensitive,
				Origin: "campus", Jurisdiction: space.JurisdictionGDPR,
			},
			key: zoneOccKey(z),
		}
		occRig.ep = sys.addNode(occ)
		occRig.mux = simnet.NewPortMux(occRig.ep)
		sys.setShard(occ, shardFor(z))
		sys.sensors = append(sys.sensors, occRig)
		place(occ, z, 20, 20, "campus")

		act := actuatorID(z)
		actDev := device.New(device.ID(act), device.Config{
			Class:        device.ClassActuatorNode,
			Resources:    &device.Resources{Mains: true},
			Capabilities: []device.Capability{device.ActuateCap("hvac")},
		})
		actR := &actRig{
			id: act, zone: z, dev: actDev,
			actuator: &device.Actuator{Device: actDev, Zone: zoneID(z), Variable: env.Temperature, Effect: cfg.CoolRate},
		}
		actR.ep = sys.addNode(act)
		actR.mux = simnet.NewPortMux(actR.ep)
		sys.setShard(act, shardFor(z))
		sys.actuators = append(sys.actuators, actR)
		place(act, z, 40, 40, "campus")

		cands := []simnet.NodeID{act}
		for b := 0; b < cfg.BackupActuators; b++ {
			bid := backupActuatorID(z, b)
			bDev := device.New(device.ID(bid), device.Config{
				Class:        device.ClassActuatorNode,
				Resources:    &device.Resources{Mains: true},
				Capabilities: []device.Capability{device.ActuateCap("hvac")},
			})
			bR := &actRig{
				id: bid, zone: z, dev: bDev,
				actuator: &device.Actuator{Device: bDev, Zone: zoneID(z), Variable: env.Temperature, Effect: cfg.CoolRate},
			}
			bR.ep = sys.addNode(bid)
			bR.mux = simnet.NewPortMux(bR.ep)
			sys.setShard(bid, shardFor(z))
			sys.actuators = append(sys.actuators, bR)
			place(bid, z, 35+float64(b)*3, 42, "campus")
			cands = append(cands, bid)
		}
		sys.actCandidates = append(sys.actCandidates, cands)

		gw := gatewayID(z)
		sys.gateways = append(sys.gateways, sys.newEdgeStack(gw, z, device.ClassGateway))
		sys.setShard(gw, shardFor(z))
		place(gw, z, 45, 45, "campus")
	}
	for i := 0; i < cfg.Cloudlets; i++ {
		cl := cloudletID(i)
		sys.cloudlets = append(sys.cloudlets, sys.newEdgeStack(cl, -1, device.ClassCloudlet))
		if shards > 1 {
			// Cloudlets have no home zone; spread them across lanes.
			sys.setShard(cl, i*shards/cfg.Cloudlets)
		}
		place(cl, -1, 50+float64(i)*10, 120, "campus")
	}
	sys.cloud = sys.newEdgeStack(cloudID, -1, device.ClassCloudVM)
	sys.setShard(cloudID, 0)
	place(cloudID, -1, 500, 500, "cloudprov")

	// WAN links to the cloud: 40ms each way.
	for _, id := range sys.allNodeIDs() {
		if id != cloudID {
			sys.setWANLink(id, cloudID, 40*time.Millisecond)
		}
	}
}

// newEdgeStack registers the node and device for an edge/cloud host.
func (sys *System) newEdgeStack(id simnet.NodeID, zone int, class device.Class) *edgeStack {
	ep := sys.addNode(id)
	st := &edgeStack{
		id:      id,
		ep:      ep,
		mux:     simnet.NewPortMux(ep),
		dev:     device.New(device.ID(id), device.Config{Class: class}),
		zone:    zone,
		desired: make(map[int]bool),
	}
	return st
}

// allNodeIDs returns every registered node ID, sorted.
func (sys *System) allNodeIDs() []simnet.NodeID {
	var out []simnet.NodeID
	for _, s := range sys.sensors {
		out = append(out, s.id)
	}
	for _, a := range sys.actuators {
		out = append(out, a.id)
	}
	for _, g := range sys.gateways {
		out = append(out, g.id)
	}
	for _, c := range sys.cloudlets {
		out = append(out, c.id)
	}
	out = append(out, cloudID)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// edgeStacks returns gateways then cloudlets. The topology is fixed
// after buildWorld, so the slice is computed once and cached; callers
// must not mutate it.
func (sys *System) edgeStacks() []*edgeStack {
	if sys.edgeStackCache == nil {
		out := append([]*edgeStack(nil), sys.gateways...)
		sys.edgeStackCache = append(out, sys.cloudlets...)
	}
	return sys.edgeStackCache
}

// edgeIDs returns the IDs of all edge nodes, sorted. Cached for the
// same reason as edgeStacks; callers must not mutate the result.
func (sys *System) edgeIDs() []simnet.NodeID {
	if sys.edgeIDCache == nil {
		out := make([]simnet.NodeID, 0, len(sys.gateways)+len(sys.cloudlets))
		for _, st := range sys.edgeStacks() {
			out = append(out, st.id)
		}
		slices.Sort(out)
		sys.edgeIDCache = out
	}
	return sys.edgeIDCache
}

// buildRequirements creates the goal model: per zone, a temperature
// band requirement and a data freshness requirement, all AND-refined
// under the root goal.
func (sys *System) buildRequirements() {
	cfg := sys.cfg
	var reqs []*model.Requirement
	var leaves []*model.Goal
	sys.tempTrace = make([]*metrics.SatisfactionTrace, cfg.Zones)
	sys.freshTrace = make([]*metrics.SatisfactionTrace, cfg.Zones)
	sys.goalTrace = &metrics.SatisfactionTrace{}
	sys.lastControlOK = make([]atomic.Int64, cfg.Zones)
	for z := 0; z < cfg.Zones; z++ {
		sys.tempTrace[z] = &metrics.SatisfactionTrace{}
		sys.freshTrace[z] = &metrics.SatisfactionTrace{}
		sys.lastControlOK[z].Store(int64(-time.Hour))
		tempID := model.RequirementID(fmt.Sprintf("R-temp-%d", z))
		freshID := model.RequirementID(fmt.Sprintf("R-fresh-%d", z))
		sys.reqTemp = append(sys.reqTemp, tempID)
		sys.reqFresh = append(sys.reqFresh, freshID)
		reqs = append(reqs,
			&model.Requirement{
				ID: tempID, Prop: tempProp(z),
				Description: fmt.Sprintf("zone %d temperature within [%.0f,%.0f]", z, cfg.TempLow, cfg.TempHigh),
			},
			&model.Requirement{
				ID: freshID, Prop: freshProp(z),
				Description: fmt.Sprintf("zone %d readings fresh at controller", z),
			},
		)
		leaves = append(leaves, &model.Goal{
			ID:           model.GoalID(fmt.Sprintf("G-zone-%d", z)),
			Refinement:   model.RefinementAND,
			Requirements: []model.RequirementID{tempID, freshID},
		})
	}
	root := &model.Goal{ID: "G-root", Refinement: model.RefinementAND, Subgoals: leaves}
	sys.goal = model.NewGoalModel(root, reqs)
	if err := sys.goal.Validate(); err != nil {
		panic(err)
	}
}

func tempProp(z int) verify.Prop  { return verify.Prop(fmt.Sprintf("z%d:temp_ok", z)) }
func freshProp(z int) verify.Prop { return verify.Prop(fmt.Sprintf("z%d:fresh", z)) }

// onFault handles model-level fault events (domain transfer, stack
// upgrade, battery drain) that the network injector delegates.
func (sys *System) onFault(ev fault.Event) {
	switch ev.Kind {
	case fault.KindDomainTransfer:
		_ = sys.spaces.Transfer(string(ev.Node), space.DomainID(ev.Detail))
	case fault.KindStackUpgrade:
		if d := sys.deviceOf(ev.Node); d != nil {
			d.UpgradeStack()
		}
	case fault.KindBatteryDrain:
		if d := sys.deviceOf(ev.Node); d != nil {
			for !d.Drained() && !d.Resources().Mains {
				if d.Idle(time.Hour) {
					break
				}
			}
		}
	}
}

// deviceOf finds the device model behind a node ID.
func (sys *System) deviceOf(id simnet.NodeID) *device.Device {
	for _, s := range sys.sensors {
		if s.id == id {
			return s.dev
		}
	}
	for _, a := range sys.actuators {
		if a.id == id {
			return a.dev
		}
	}
	for _, st := range sys.edgeStacks() {
		if st.id == id {
			return st.dev
		}
	}
	if sys.cloud != nil && sys.cloud.id == id {
		return sys.cloud.dev
	}
	return nil
}

// auditArrival counts privacy violations: the uniform observe-only
// auditor checks every item that actually landed on a node, whatever
// mechanism carried it there. ep is the landing node's endpoint — the
// event runs on its lane in sharded mode, so the check uses that
// lane's engine and clock. The per-item verdict is stateless, so the
// summed count is shard-count-invariant.
func (sys *System) auditArrival(item dataflow.Item, at simnet.NodeID, ep simnet.Port) {
	fromDom, _ := sys.spaces.Domain(item.Label.Origin)
	pl, ok := sys.spaces.PlacementOf(string(at))
	if !ok {
		return
	}
	toDom, _ := sys.spaces.Domain(pl.Domain)
	if fromDom.ID == toDom.ID {
		return // intra-domain placement is never a flow violation
	}
	eng := sys.auditor
	if sys.auditors != nil {
		// auditors is only non-nil in sharded simulation, where every
		// ep is a simulator endpoint.
		sep, _ := ep.(*simnet.Endpoint)
		laneIdx, _, _ := sys.sim.ExecContext(sep)
		eng = sys.auditors[laneIdx]
	}
	before := eng.ViolationCount()
	eng.Admit(dataflow.FlowContext{Item: item, From: fromDom, To: toDom}, ep.Now())
	if eng.ViolationCount() > before {
		sys.recordOn(ep, EventPrivacy, "item %s observed at %s (origin %s)", item.Key, at, item.Label.Origin)
	}
}

// noteControlOK advances zone z's control watermark to t. CAS-max:
// writes within a zone are time-ordered, so the maximum is the latest
// write, and concurrent writers from different lanes cannot lose an
// update.
func (sys *System) noteControlOK(z int, t time.Duration) {
	a := &sys.lastControlOK[z]
	for {
		old := a.Load()
		if int64(t) <= old {
			return
		}
		if a.CompareAndSwap(old, int64(t)) {
			return
		}
	}
}

// SyncTraffic totals the replication link counters across every
// replicated store in the system (edge stores in deterministic order,
// then the cloud hub). Zero-valued for architectures without stores.
func (sys *System) SyncTraffic() dataflow.LinkStats {
	var total dataflow.LinkStats
	for _, st := range sys.edgeStacks() {
		if st.store != nil {
			total.Add(st.store.SyncStats())
		}
	}
	if sys.cloud != nil && sys.cloud.store != nil {
		total.Add(sys.cloud.store.SyncStats())
	}
	return total
}

// violationCount sums privacy violations across whichever auditor
// layout is active.
func (sys *System) violationCount() int {
	if sys.auditors == nil {
		return sys.auditor.ViolationCount()
	}
	n := 0
	for _, e := range sys.auditors {
		n += e.ViolationCount()
	}
	return n
}
