package core

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/crdt"
	"repro/internal/dataflow"
	"repro/internal/device"
	"repro/internal/gossip"
	"repro/internal/mape"
	"repro/internal/model"
	"repro/internal/orchestrate"
	"repro/internal/pubsub"
	"repro/internal/simnet"
	"repro/internal/verify"
)

// actTopic is the ML2 actuation topic of a zone.
func actTopic(z int) string {
	if z >= 0 && z < keyTableSize {
		return actTopicTable[z]
	}
	return fmt.Sprintf("act/%d", z)
}

// readingsTopic is the ML2 sensor publication topic.
const readingsTopic = "readings"

// controlFnName is the ML4 deviceless controller function of a zone.
func controlFnName(z int) string {
	if z >= 0 && z < keyTableSize {
		return controlFnTable[z]
	}
	return fmt.Sprintf("zone-controller-%d", z)
}

// --- shared wiring helpers ---

// startSensorsWithReporter arms every sensor's sampling ticker
// delivering through an ack-failover reporter with the given candidate
// lists.
func (sys *System) startSensorsWithReporter(candidates func(*sensorRig) []simnet.NodeID) {
	for _, rig := range sys.sensors {
		rig := rig
		rig.reporter = newReporter(rig.mux.Port("data"), candidates(rig))
		rig.reporter.bus = sys.bus
		rig.reporter.sticky = sys.cfg.StickyFailover
		rig.ep.Every(sys.cfg.SampleInterval, func() {
			val, ok := rig.sensor.Sample(sys.envm, rig.ep.Rand().NormFloat64())
			if !ok {
				return
			}
			rig.reporter.send(dataflow.Item{
				Key: rig.key, Value: val, Label: rig.label, ProducedAt: rig.ep.Now(),
			})
		})
	}
}

// wireActuatorsDirect installs the direct actuation handler used by
// ML1, ML3 and ML4: actuateMsg on the "act" port. A crashed actuator
// loses its engagement; the idempotent periodic commands restore it.
func (sys *System) wireActuatorsDirect() {
	for _, rig := range sys.actuators {
		rig := rig
		actPort := rig.mux.Port("act")
		actPort.OnMessage(func(_ simnet.NodeID, msg simnet.Message) {
			if m, ok := msg.(actuateMsg); ok && m.Zone == rig.zone {
				rig.lastCmd = rig.ep.Now()
				rig.actuator.SetEngaged(m.Engage)
			}
		})
		if ec, ok := actPort.(simnet.EnvelopeCarrier); ok {
			ec.OnEnvelope(func(_ simnet.NodeID, e *simnet.Envelope) {
				if e.Kind == envActuate && int(e.A) == rig.zone {
					rig.lastCmd = rig.ep.Now()
					rig.actuator.SetEngaged(e.Flag)
				}
			})
		}
		sys.armActuatorWatchdog(rig)
	}
}

// armActuatorWatchdog installs the device-local failsafe: disengage on
// crash or when no controller command has arrived within the freshness
// window.
func (sys *System) armActuatorWatchdog(rig *actRig) {
	rig.ep.OnDown(func() { rig.actuator.SetEngaged(false) })
	rig.ep.Every(sys.freshWin, func() {
		if rig.actuator.Engaged() && rig.ep.Now()-rig.lastCmd > sys.freshWin {
			rig.actuator.SetEngaged(false)
		}
	})
}

// controlTick builds a controller pass for the zones the stack
// currently controls: hysteresis band control on fresh data, with
// idempotent actuation commands.
func (sys *System) controlTick(st *edgeStack, controls func(z int) bool, sendAct func(z int, engage bool)) func() {
	cfg := sys.cfg
	mid := (cfg.TempLow + cfg.TempHigh) / 2
	return func() {
		for z := 0; z < cfg.Zones; z++ {
			if !controls(z) {
				continue
			}
			item, ok := st.view(zoneTempKey(z))
			if !ok {
				continue
			}
			if st.ep.Now()-item.ProducedAt > sys.freshWin {
				continue
			}
			temp, ok := item.Value.(float64)
			if !ok {
				continue
			}
			engage := st.desired[z]
			switch {
			case temp > mid+0.5:
				engage = true
			case temp < mid-0.5:
				engage = false
			}
			st.desired[z] = engage
			sendAct(z, engage)
			if sys.bus.Active() {
				sys.bus.Emit("control.actuate", string(st.id), 0, 0, "zone %d engage=%v", z, engage)
			}
			sys.noteControlOK(z, st.ep.Now())
		}
	}
}

// installLoop attaches a MAPE loop analyzing the given zones' two
// requirements against the stack's data view, counting them toward the
// validation coverage metric. The loop is driven by the stack's own
// ticker, so it pauses while the node is down (an edge loop cannot run
// on a dead edge node — the point of the F5 experiment).
func (sys *System) installLoop(st *edgeStack, zones []int) {
	cfg := sys.cfg
	k := mape.NewKnowledge(knowledgeReplica(st.id), st.ep.Now)
	loop := mape.NewLoop(k, st.ep.Now)
	for _, z := range zones {
		z := z
		loop.AddMonitor(func(k *mape.Knowledge) {
			if item, ok := st.view(zoneTempKey(z)); ok {
				if v, isF := item.Value.(float64); isF {
					k.Put(zoneTempKey(z), v)
					k.Put(zoneTempAgeKey(z), float64(st.ep.Now()-item.ProducedAt))
				}
			}
		})
		loop.AddRule(mape.PropRule{Prop: tempProp(z), Eval: func(k *mape.Knowledge) bool {
			v, ok := k.GetFloat(zoneTempKey(z))
			return ok && v >= cfg.TempLow && v <= cfg.TempHigh
		}})
		loop.AddRule(mape.PropRule{Prop: freshProp(z), Eval: func(k *mape.Knowledge) bool {
			age, ok := k.GetFloat(zoneTempAgeKey(z))
			return ok && time.Duration(age) <= sys.freshWin
		}})
		tempReq, _ := sys.goal.Requirement(sys.reqTemp[z])
		freshReq, _ := sys.goal.Requirement(sys.reqFresh[z])
		loop.AddRequirement(tempReq)
		loop.AddRequirement(freshReq)
		sys.runtimeMonitored += 2
	}
	st.loop = loop
	loop.SetBus(sys.bus, string(st.id))
	st.ep.Every(cfg.ControlInterval, loop.Cycle)
}

// knowledgeReplica derives the CRDT replica ID for a node.
func knowledgeReplica(id simnet.NodeID) crdt.ReplicaID { return crdt.ReplicaID(id) }

// backupFor returns the statically designated ML3 backup cloudlet of a
// zone.
func (sys *System) backupFor(z int) *edgeStack {
	return sys.cloudlets[z%len(sys.cloudlets)]
}

// --- ML1: vertical silo ---

func (sys *System) wireML1() {
	for _, st := range sys.gateways {
		st := st
		st.table = newItemTable()
		st.view = st.table.get
		newCollector(st.mux.Port("data"), func(item dataflow.Item, _ simnet.NodeID) {
			st.table.put(item)
			sys.auditArrival(item, st.id, st.ep)
		})
		actPort := st.mux.Port("act")
		home := st.zone
		st.ep.Every(sys.cfg.ControlInterval, sys.controlTick(st,
			func(z int) bool { return z == home },
			directActuate(actPort),
		))
	}
	sys.startSensorsWithReporter(func(rig *sensorRig) []simnet.NodeID {
		return []simnet.NodeID{gatewayID(rig.zone)}
	})
	sys.wireActuatorsDirect()
	// ML1 has no validation machinery: runtimeMonitored and
	// designChecked stay 0.
}

// --- ML2: IoT-Cloud ---

func (sys *System) wireML2() {
	cloud := sys.cloud
	cloud.table = newItemTable()
	cloud.view = cloud.table.get
	sys.broker = pubsub.NewBroker(cloud.mux.Port("pubsub"))
	sys.broker.SetBus(sys.bus)
	sys.broker.SubscribeLocal(readingsTopic, func(_ string, payload any) {
		if item, ok := payload.(dataflow.Item); ok {
			cloud.table.put(item)
			sys.auditArrival(item, cloud.id, cloud.ep)
		}
	})

	// Sensors publish through pubsub clients. The bolt-on variant
	// (ablation A1) upgrades to QoS-1 retried publishes — the classic
	// add-on reliability mechanism.
	qos := pubsub.AtMostOnce
	if sys.cfg.BoltOnResilience {
		qos = pubsub.AtLeastOnce
	}
	for _, rig := range sys.sensors {
		rig := rig
		rig.client = pubsub.NewClient(rig.mux.Port("pubsub"), cloudID, pubsub.ClientConfig{
			RetryInterval: sys.cfg.SampleInterval / 4,
			MaxRetries:    3,
		})
		rig.client.SetBus(sys.bus)
		rig.ep.Every(sys.cfg.SampleInterval, func() {
			val, ok := rig.sensor.Sample(sys.envm, rig.ep.Rand().NormFloat64())
			if !ok {
				return
			}
			rig.client.Publish(readingsTopic, dataflow.Item{
				Key: rig.key, Value: val, Label: rig.label, ProducedAt: rig.ep.Now(),
			}, qos)
		})
	}

	// Actuators subscribe to their zone's actuation topic and
	// re-subscribe periodically (the broker forgets subscriptions when
	// the cloud node restarts — ML2's partial automation).
	for _, rig := range sys.actuators {
		rig := rig
		client := pubsub.NewClient(rig.mux.Port("pubsub"), cloudID, pubsub.ClientConfig{})
		client.SetBus(sys.bus)
		handler := func(_ string, payload any) {
			if m, ok := payload.(actuateMsg); ok && m.Zone == rig.zone {
				rig.lastCmd = rig.ep.Now()
				rig.actuator.SetEngaged(m.Engage)
			}
		}
		client.Subscribe(actTopic(rig.zone), handler)
		keepalive := 30 * time.Second
		if sys.cfg.BoltOnResilience {
			keepalive = 5 * time.Second
		}
		rig.ep.Every(keepalive, func() { client.Subscribe(actTopic(rig.zone), handler) })
		sys.armActuatorWatchdog(rig)
	}

	// Cloud-side controller for every zone. Actuation is published
	// retained, so an actuator re-subscribing after a broker restart
	// immediately learns the current command.
	cloud.ep.Every(sys.cfg.ControlInterval, sys.controlTick(cloud,
		func(int) bool { return true },
		func(z int, engage bool) { sys.broker.InjectRetained(actTopic(z), actuateMsg{Zone: z, Engage: engage}) },
	))

	// Validation: runtime monitoring only, centralized in the cloud.
	zones := make([]int, sys.cfg.Zones)
	for z := range zones {
		zones[z] = z
	}
	sys.installLoop(cloud, zones)
}

// --- ML3: edge-centric with static backup ---

func (sys *System) wireML3() {
	wireEdgeCollector := func(st *edgeStack) {
		st.table = newItemTable()
		st.view = st.table.get
		dataPort := st.mux.Port("data")
		newCollector(dataPort, func(item dataflow.Item, _ simnet.NodeID) {
			st.table.put(item)
			sys.auditArrival(item, st.id, st.ep)
			// Bidirectional edge↔cloud flows: forward upstream,
			// fire-and-forget.
			dataPort.Send(cloudID, readingMsg{Seq: 0, Item: item})
		})
		actPort := st.mux.Port("act")
		st.ep.Every(sys.cfg.ControlInterval, sys.controlTick(st,
			func(int) bool { return true }, // data-driven: only zones with fresh local data act
			directActuate(actPort),
		))
	}
	for _, st := range sys.gateways {
		wireEdgeCollector(st)
	}
	for _, st := range sys.cloudlets {
		wireEdgeCollector(st)
	}
	// Cloud ingests forwarded data (analytics consumer, no control).
	sys.cloud.table = newItemTable()
	sys.cloud.view = sys.cloud.table.get
	newCollector(sys.cloud.mux.Port("data"), func(item dataflow.Item, _ simnet.NodeID) {
		sys.cloud.table.put(item)
		sys.auditArrival(item, sys.cloud.id, sys.cloud.ep)
	})

	sys.startSensorsWithReporter(func(rig *sensorRig) []simnet.NodeID {
		return []simnet.NodeID{gatewayID(rig.zone), sys.backupFor(rig.zone).id}
	})
	sys.wireActuatorsDirect()

	// Validation: runtime monitors at each gateway for its own zone,
	// plus a task-specific design-time check of the control path's
	// redundancy (gateway + designated backup).
	for z, st := range sys.gateways {
		sys.installLoop(st, []int{z})
		cfg := model.NewConfiguration()
		for i := 0; i < min(sys.cfg.TempSensorsPerZone, maxModeledHosts); i++ {
			cfg.Add(model.Component{
				ID:   model.ComponentID(fmt.Sprintf("sense-%d-%d", z, i)),
				Host: string(tempSensorID(z, i)), Provides: []model.Service{"sensing"},
			})
		}
		cfg.Add(model.Component{ID: model.ComponentID(fmt.Sprintf("ctrl-gw-%d", z)),
			Host: string(st.id), Provides: []model.Service{"control"}, Requires: []model.Service{"sensing"}})
		cfg.Add(model.Component{ID: model.ComponentID(fmt.Sprintf("ctrl-bak-%d", z)),
			Host: string(sys.backupFor(z).id), Provides: []model.Service{"control"}})
		k, err := model.FailureKripke(cfg, model.FailureModelOptions{MaxConcurrentFailures: 1})
		if err != nil {
			panic(err)
		}
		if verify.Check(k, verify.AG(verify.AP(model.ServiceProp("control")))) {
			sys.designChecked++ // temperature requirement has a design verdict
		} else {
			sys.designPassed = false
		}
	}
}

// --- ML4: resilient IoT ---

// edgePeersOf returns the ML4 sync peers of id among ids: everyone
// else at the paper-scale default, or the EdgePeerFanout ring
// successors at the city tier (bounded degree; deltas still reach
// every replica transitively around the ring and via the cloud hub).
func (sys *System) edgePeersOf(id simnet.NodeID, ids []simnet.NodeID) []simnet.NodeID {
	f := sys.cfg.EdgePeerFanout
	if f <= 0 || f >= len(ids)-1 {
		out := make([]simnet.NodeID, 0, len(ids)-1)
		for _, other := range ids {
			if other != id {
				out = append(out, other)
			}
		}
		return out
	}
	self := 0
	for i, other := range ids {
		if other == id {
			self = i
			break
		}
	}
	out := make([]simnet.NodeID, 0, f)
	for k := 1; k <= f; k++ {
		out = append(out, ids[(self+k)%len(ids)])
	}
	return out
}

// maxModeledHosts caps the host count of the service-availability
// Kripke models (control and sensing redundancy). The checked
// verdicts depend only on whether the provider count exceeds
// MaxConcurrentFailures (and repairs are always enabled), so modeling
// 8 of 200 redundant hosts returns the same answer as modeling all of
// them — without the C(200,2) state space. Paper-scale runs (6 edge
// nodes, 2 sensors per zone) stay under the cap and are modeled
// exactly.
const maxModeledHosts = 8

func (sys *System) wireML4() {
	edge := sys.edgeStacks()
	edgeIDs := sys.edgeIDs()
	syncEvery := sys.cfg.ML4SyncInterval
	if syncEvery <= 0 {
		syncEvery = sys.cfg.SampleInterval
	}

	// Replicated governed stores on every edge node and the cloud.
	// When the cloud acts as a redistribution hub (bounded fanout),
	// every edge scopes the hub's relay stream to the zones it actually
	// consumes — home zone, the dashboard it renders, and its
	// raft-assigned controller zones (declared below and re-declared on
	// every placement apply). Without the scoping the hub re-broadcasts
	// every write to every edge, which is almost all of the deployment's
	// sync bytes.
	cloudRelays := sys.cfg.EdgePeerFanout > 0 && sys.cfg.ML4Ablation != "no-sync"
	for _, st := range edge {
		st := st
		var peers []simnet.NodeID
		if sys.cfg.ML4Ablation != "no-sync" {
			peers = append(peers, sys.edgePeersOf(st.id, edgeIDs)...)
			peers = append(peers, cloudID)
		}
		st.store = dataflow.NewStore(st.mux.Port("store"), sys.spaces, dataflow.StoreConfig{
			Peers:        peers,
			SyncInterval: syncEvery,
			Engine:       dataflow.DefaultPrivacyEngine(),
		})
		st.store.OnApply(func(item dataflow.Item, _ simnet.NodeID) { sys.auditArrival(item, st.id, st.ep) })
		st.store.Start()
		st.view = st.store.Get
		if cloudRelays {
			st.store.DeclareInterest(cloudID, sys.ml4InterestKeys(st))
		}
	}
	// With the full all-to-all edge mesh the cloud can stay a passive
	// sink. Under a bounded fanout the edge graph is a directed ring
	// with O(n) diameter, so the cloud — which every edge already
	// pushes to — redistributes: any delta reaches any replica in two
	// sync rounds instead of a trip around the ring.
	var cloudPeers []simnet.NodeID
	if sys.cfg.EdgePeerFanout > 0 && sys.cfg.ML4Ablation != "no-sync" {
		cloudPeers = append(cloudPeers, edgeIDs...)
	}
	sys.cloud.store = dataflow.NewStore(sys.cloud.mux.Port("store"), sys.spaces, dataflow.StoreConfig{
		Peers:        cloudPeers,
		SyncInterval: syncEvery,
		Engine:       dataflow.DefaultPrivacyEngine(),
		Relay:        len(cloudPeers) > 0,
	})
	sys.cloud.store.OnApply(func(item dataflow.Item, _ simnet.NodeID) { sys.auditArrival(item, sys.cloud.id, sys.cloud.ep) })
	sys.cloud.store.Start()
	sys.cloud.view = sys.cloud.store.Get

	// Collectors put into the local store; CRDT sync distributes.
	for _, st := range edge {
		st := st
		newCollector(st.mux.Port("data"), func(item dataflow.Item, _ simnet.NodeID) {
			st.store.Put(item)
			sys.auditArrival(item, st.id, st.ep)
		})
	}

	// Gossip membership across the edge group.
	gossipCfg := gossip.Config{
		ProbeInterval:      time.Second,
		ProbeTimeout:       200 * time.Millisecond,
		SuspicionTimeout:   3 * time.Second,
		StrictResurrection: sys.cfg.StrictMembership,
	}
	seeds := []simnet.NodeID{sys.gateways[0].id, sys.cloudlets[0].id}
	for _, st := range edge {
		st.gossip = gossip.New(st.mux.Port("gossip"), gossipCfg)
		st.gossip.SetBus(sys.bus)
		st.gossip.Start(seeds...)
	}
	// With backup actuators the rigs join the membership group too, so
	// controllers learn of actuator death and fail actuation over.
	if sys.cfg.BackupActuators > 0 {
		for _, rig := range sys.actuators {
			rig.gossip = gossip.New(rig.mux.Port("gossip"), gossipCfg)
			rig.gossip.SetBus(sys.bus)
			rig.gossip.Start(seeds...)
		}
	}

	// Raft-replicated controller placements computed by a
	// capability-aware orchestrator on the leader.
	for _, st := range edge {
		st := st
		st.applied = make(map[int]simnet.NodeID)
		st.orch = orchestrate.New(sys.spaces, func(id device.ID) bool {
			return st.gossip.IsAlive(simnet.NodeID(id))
		})
		for _, other := range edge {
			st.orch.RegisterHost(other.dev)
		}
		var raftCfg consensus.Config
		if hb := sys.cfg.RaftHeartbeat; hb > 0 {
			raftCfg.HeartbeatInterval = hb
			// Wide randomization window: with hundreds of members the
			// spread, not the floor, is what avoids split votes.
			raftCfg.ElectionTimeoutMin = 3 * hb
			raftCfg.ElectionTimeoutMax = 10 * hb
		}
		// Island mode needs lease surrender: a leader stranded on the
		// minority side must stop believing its stale placements.
		raftCfg.CheckQuorum = sys.cfg.IslandMode
		st.raft = consensus.New(st.mux.Port("raft"), edgeIDs, raftCfg, func(_ uint64, cmd consensus.Command) {
			pc, ok := cmd.(placementCmd)
			if !ok {
				return
			}
			st.applied = make(map[int]simnet.NodeID, len(pc.Assignments))
			for z, host := range pc.Assignments {
				st.applied[z] = host
			}
			if len(pc.Backups) > 0 || st.appliedBackups != nil {
				st.appliedBackups = make(map[int][]simnet.NodeID, len(pc.Backups))
				for z, hosts := range pc.Backups {
					st.appliedBackups[z] = hosts
				}
			}
			// Placements moved: refresh this node's relay-interest scope
			// so the hub starts forwarding its newly assigned zones (and
			// stops forwarding ones it lost).
			if cloudRelays && st.store != nil {
				st.store.DeclareInterest(cloudID, sys.ml4InterestKeys(st))
			}
		})
		st.raft.SetBus(sys.bus)
		st.raft.Start()
		if sys.cfg.IslandMode {
			sys.armIslandGuard(st)
		}
		if sys.cfg.ML4Ablation == "no-replan" {
			// Ablation A2: one initial placement, never revisited.
			st.ep.After(2*sys.cfg.ControlInterval, func() { sys.ml4Replan(st) })
		} else {
			st.ep.Every(2*sys.cfg.ControlInterval, func() { sys.ml4Replan(st) })
		}

		// Controller: runs the zones this node is assigned. The
		// hardened profile widens both halves: claim resolution gains
		// island-mode takeover and backup-replica failover, and the
		// actuation sender targets the first gossip-alive rig instead
		// of only the primary.
		actPort := st.mux.Port("act")
		controls := func(z int) bool { return st.applied[z] == st.id }
		if sys.ml4Hardened() {
			controls = func(z int) bool { return sys.ml4Controls(st, z) }
		}
		sendAct := directActuate(actPort)
		if sys.cfg.BackupActuators > 0 {
			ec, _ := actPort.(simnet.EnvelopeCarrier)
			sendAct = func(z int, engage bool) {
				target, ok := mape.Failover(sys.actCandidates[z], st.gossip.IsAlive)
				if !ok {
					target = actuatorID(z)
				}
				sendActTo(actPort, ec, target, z, engage)
			}
		}
		st.ep.Every(sys.cfg.ControlInterval, sys.controlTick(st, controls, sendAct))
	}

	// Sensors fail over across the whole edge, nearest first (the
	// "no-failover" ablation pins them to the home gateway instead).
	sys.startSensorsWithReporter(func(rig *sensorRig) []simnet.NodeID {
		if sys.cfg.ML4Ablation == "no-failover" {
			return []simnet.NodeID{gatewayID(rig.zone)}
		}
		cands := make([]string, 0, len(edgeIDs))
		for _, id := range edgeIDs {
			cands = append(cands, string(id))
		}
		ordered := sys.spaces.NearestOrder(string(rig.id), cands)
		out := make([]simnet.NodeID, 0, len(ordered))
		for _, c := range ordered {
			out = append(out, simnet.NodeID(c))
		}
		return out
	})
	sys.wireActuatorsDirect()

	// MAPE at the edge: per-gateway loops with knowledge sharing; the
	// planner reacts to stale data by forcing an immediate store sync.
	var gwIDs []simnet.NodeID
	for _, g := range sys.gateways {
		gwIDs = append(gwIDs, g.id)
	}
	for z, st := range sys.gateways {
		st := st
		sys.installLoop(st, []int{z})
		st.loop.SetPlanner(func(_ *mape.Knowledge, issues []mape.Issue) []mape.Action {
			var out []mape.Action
			for _, is := range issues {
				if is.Prop == freshProp(z) {
					out = append(out, mape.Action{Name: "sync-now"})
				}
			}
			return out
		})
		st.loop.SetExecutor(func(_ *mape.Knowledge, a mape.Action) bool {
			if a.Name != "sync-now" {
				return false
			}
			st.store.SyncNow()
			return true
		})
		peers := sys.edgePeersOf(st.id, gwIDs)
		st.syncer = mape.NewSyncer(st.mux.Port("mape"), st.loop, peers, 2*sys.cfg.SampleInterval)
		st.syncer.Start()
	}

	// Design-time validation of the full edge configuration: control
	// survives any two concurrent edge failures; sensing survives one.
	// The per-zone models are structurally identical — same component
	// count, services and failure bound, only the names differ — so
	// each verdict is computed once and credited to every zone; the
	// check and coverage counters are exactly what the per-zone loop
	// would produce.
	senseCfg := model.NewConfiguration()
	for i := 0; i < min(sys.cfg.TempSensorsPerZone, maxModeledHosts); i++ {
		senseCfg.Add(model.Component{
			ID:   model.ComponentID(fmt.Sprintf("sense-0-%d", i)),
			Host: string(tempSensorID(0, i)), Provides: []model.Service{"sensing"},
		})
	}
	k, err := model.FailureKripke(senseCfg, model.FailureModelOptions{MaxConcurrentFailures: 1})
	if err != nil {
		panic(err)
	}
	senseOK := verify.Check(k, verify.AG(verify.AP(model.ServiceProp("sensing"))))

	ctrlCfg := model.NewConfiguration()
	ctrlHosts := edge
	if len(ctrlHosts) > maxModeledHosts {
		ctrlHosts = ctrlHosts[:maxModeledHosts]
	}
	for _, st := range ctrlHosts {
		ctrlCfg.Add(model.Component{
			ID:   model.ComponentID("ctrl-" + string(st.id)),
			Host: string(st.id), Provides: []model.Service{"control"},
		})
	}
	k2, err := model.FailureKripke(ctrlCfg, model.FailureModelOptions{MaxConcurrentFailures: 2})
	if err != nil {
		panic(err)
	}
	ctrlOK := verify.Check(k2, verify.AG(verify.AP(model.ServiceProp("control")))) &&
		verify.Check(k2, verify.AG(verify.EF(verify.AP("all-up"))))

	for z := 0; z < sys.cfg.Zones; z++ {
		if senseOK {
			sys.designChecked++ // freshness requirement
		} else {
			sys.designPassed = false
		}
		if ctrlOK {
			sys.designChecked++ // temperature requirement
		} else {
			sys.designPassed = false
		}
	}
}

// ml4InterestKeys computes which keys stack st consumes from the cloud
// hub's relay stream — the paper's "what data should enter a component"
// scoping (§VI) applied to redistribution. A gateway consumes its home
// zone (occupancy dashboard) and the zone whose temperature dashboard
// it renders (measure reads zone z's dashboard at gateways[(z+1)%Z], so
// gateway g renders zone (g−1) mod Z); every edge node additionally
// consumes the zones whose controller — primary or backup replica — the
// raft-applied placements currently assign to it. Everything else still
// reaches the node's own ring successors and the hub directly; only the
// hub's re-broadcast is scoped.
func (sys *System) ml4InterestKeys(st *edgeStack) []string {
	zones := make(map[int]bool)
	if st.zone >= 0 {
		zones[st.zone] = true
		zones[(st.zone-1+sys.cfg.Zones)%sys.cfg.Zones] = true
	}
	for z, host := range st.applied {
		if host == st.id {
			zones[z] = true
		}
	}
	for z, hosts := range st.appliedBackups {
		for _, h := range hosts {
			if h == st.id {
				zones[z] = true
				break
			}
		}
	}
	keys := make([]string, 0, 2*len(zones))
	for z := range zones {
		keys = append(keys, zoneTempKey(z), zoneOccKey(z))
	}
	return keys
}

// ml4Hardened reports whether any hardened-profile claim rule is on;
// with every knob off the legacy applied-only resolution is kept
// byte-for-byte (pinned journals).
func (sys *System) ml4Hardened() bool {
	return sys.cfg.IslandMode || sys.cfg.PlacementSpread > 1 || sys.cfg.BackupActuators > 0
}

// islandGrace resolves the island-mode grace window.
func (sys *System) islandGrace() time.Duration {
	if g := sys.cfg.IslandGrace; g > 0 {
		return g
	}
	return 3 * sys.cfg.ControlInterval
}

// armIslandGuard ticks the stack's island-mode state machine: enter
// degraded local operation after a full grace window without Raft
// quorum contact, reconcile and hand control back on rejoin. The
// rejoin order matters: pull peer deltas first (SyncNow), then push
// the island's accumulated knowledge (ShareNow), so both sides hold
// the merged CRDT state before the next placement pass reads it.
func (sys *System) armIslandGuard(st *edgeStack) {
	grace := sys.islandGrace()
	st.guard = mape.NewIslandGuard(grace)
	st.ep.Every(sys.cfg.ControlInterval, func() {
		if !st.guard.Observe(st.ep.Now(), st.raft.QuorumContact()) {
			return
		}
		if st.guard.Island() {
			sys.recordAt(st.ep, EventIsland, 0, sys.lastFaultSpan,
				"%s enters island mode: no quorum contact for %s", st.id, grace)
		} else {
			sys.recordAt(st.ep, EventIsland, 0, sys.lastFaultSpan,
				"%s rejoins the quorum: merging island state", st.id)
			st.store.SyncNow()
			if st.syncer != nil {
				st.syncer.ShareNow()
			}
		}
	})
}

// ml4Controls is the hardened claim rule: does stack st currently
// control zone z?
//
// In island mode the Raft-applied placements are untrustworthy — the
// quorum may have moved them, or frozen — so the island elects locally
// (islandController). Otherwise the applied primary controls, unless
// the stack's membership view says it is dead, in which case the first
// alive applied backup replica takes over until the next replan lands.
func (sys *System) ml4Controls(st *edgeStack, z int) bool {
	if st.guard != nil && st.guard.Island() {
		return sys.islandController(st, z) == st.id
	}
	primary := st.applied[z]
	if primary == st.id {
		return true
	}
	if primary == "" || st.gossip.IsAlive(primary) {
		return false
	}
	if id, ok := mape.Failover(st.appliedBackups[z], st.gossip.IsAlive); ok {
		return id == st.id
	}
	return false
}

// islandController elects zone z's controller inside st's island: the
// zone's home gateway while the island still sees it alive, else the
// first alive applied backup replica, else the lowest-ID alive edge
// node. Every island member computes the same answer from the same
// local membership view, so the election needs no coordination — and a
// data-less claimant is harmless, since both the control tick and the
// measurement path require fresh local data to act.
func (sys *System) islandController(st *edgeStack, z int) simnet.NodeID {
	if home := gatewayID(z); st.gossip.IsAlive(home) {
		return home
	}
	if id, ok := mape.Failover(st.appliedBackups[z], st.gossip.IsAlive); ok {
		return id
	}
	for _, id := range sys.edgeIDs() {
		if st.gossip.IsAlive(id) {
			return id
		}
	}
	return st.id
}

// ml4Replan runs on every edge node's ticker; only the current Raft
// leader computes and proposes placements.
func (sys *System) ml4Replan(st *edgeStack) {
	if st.raft.Role() != consensus.Leader {
		return
	}
	spread := sys.cfg.PlacementSpread
	desired := make(map[int]simnet.NodeID, sys.cfg.Zones)
	var backups map[int][]simnet.NodeID
	if spread > 1 {
		backups = make(map[int][]simnet.NodeID, sys.cfg.Zones)
	}
	for z := 0; z < sys.cfg.Zones; z++ {
		fn := orchestrate.Function{
			Name:       controlFnName(z),
			Requires:   []device.Capability{device.CapControl},
			CPUMIPS:    50,
			MemMB:      32,
			PreferEdge: true,
		}
		zoned := fn
		zoned.Zone = zoneID(z)
		host, err := st.orch.Deploy(zoned)
		if err != nil {
			host, err = st.orch.Deploy(fn)
		}
		if err != nil {
			continue
		}
		desired[z] = simnet.NodeID(host)
		if spread > 1 {
			// Partition-aware spreading: replicas avoid the primary's
			// host AND the zone's own gateway, so severing the zone
			// never isolates every replica.
			avoid := map[device.ID]bool{host: true, device.ID(gatewayID(z)): true}
			for k := 1; k < spread; k++ {
				rep := fn
				rep.Name = fmt.Sprintf("%s#b%d", controlFnName(z), k)
				bHost, bErr := st.orch.DeployAvoiding(rep, avoid)
				if bErr != nil {
					break
				}
				backups[z] = append(backups[z], simnet.NodeID(bHost))
				avoid[bHost] = true
			}
		}
	}
	if !placementsEqual(desired, st.applied) || !backupsEqual(backups, st.appliedBackups) {
		st.raft.Propose(placementCmd{Assignments: desired, Backups: backups})
		sys.recordAt(st.ep, EventPlacement, 0, sys.lastFaultSpan,
			"leader %s proposes %s%s", st.id, formatPlacements(desired), formatBackups(backups))
	}

	// models@runtime (roadmap, validation vector): re-verify the
	// design-time control-availability property against the *current*
	// membership view. A false verdict is an early warning that the
	// failure assumption (any 2 concurrent edge failures survivable)
	// no longer holds — before it actually bites.
	sys.runtimeChecks.Add(1)
	alive := st.gossip.Alive()
	if sys.cfg.BackupActuators > 0 {
		// Actuator rigs share the membership group then; the control-
		// availability model is over edge hosts only.
		alive = sys.edgeSubset(alive)
	}
	key := nodeSetKey(alive)
	if key != st.ctlCheckKey {
		hosts := alive
		if len(hosts) > maxModeledHosts {
			hosts = hosts[:maxModeledHosts] // see maxModeledHosts: verdict-preserving
		}
		cfg := model.NewConfiguration()
		for _, id := range hosts {
			cfg.Add(model.Component{
				ID:   model.ComponentID("ctrl-" + string(id)),
				Host: string(id), Provides: []model.Service{"control"},
			})
		}
		k, err := model.FailureKripke(cfg, model.FailureModelOptions{MaxConcurrentFailures: 2})
		st.ctlCheckKey = key
		st.ctlCheckOK = err == nil && verify.Check(k, verify.AG(verify.AP(model.ServiceProp("control"))))
	}
	if !st.ctlCheckOK {
		sys.runtimeAlerts.Add(1)
		sys.recordOn(st.ep, EventAlert, "failure assumption unsatisfiable with %d alive edge nodes", len(alive))
	}
}

// nodeSetKey renders a sorted node list as a compact signature for
// verdict caching.
func nodeSetKey(ids []simnet.NodeID) string {
	n := 0
	for _, id := range ids {
		n += len(id) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for _, id := range ids {
		b.WriteString(string(id))
		b.WriteByte(',')
	}
	return b.String()
}

// formatPlacements renders a placement map compactly and stably.
func formatPlacements(m map[int]simnet.NodeID) string {
	parts := make([]string, 0, len(m))
	for z := 0; z < len(m)+16; z++ { // zones are small dense ints
		if host, ok := m[z]; ok {
			parts = append(parts, fmt.Sprintf("z%d→%s", z, host))
			if len(parts) == len(m) {
				break
			}
		}
	}
	return strings.Join(parts, " ")
}

func placementsEqual(a, b map[int]simnet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for z, h := range a {
		if b[z] != h {
			return false
		}
	}
	return true
}

func backupsEqual(a, b map[int][]simnet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for z, hosts := range a {
		other, ok := b[z]
		if !ok || len(other) != len(hosts) {
			return false
		}
		for i, h := range hosts {
			if other[i] != h {
				return false
			}
		}
	}
	return true
}

// formatBackups renders the backup replica map (empty string when
// spreading is off, keeping default-knob journals unchanged).
func formatBackups(m map[int][]simnet.NodeID) string {
	if len(m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(m))
	seen := 0
	for z := 0; z < len(m)+16 && seen < len(m); z++ { // zones are small dense ints
		if hosts, ok := m[z]; ok {
			seen++
			for _, h := range hosts {
				parts = append(parts, fmt.Sprintf("z%d⇢%s", z, h))
			}
		}
	}
	return " backups " + strings.Join(parts, " ")
}

// edgeSubset filters a sorted membership list down to edge hosts.
func (sys *System) edgeSubset(ids []simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(ids))
	for _, id := range ids {
		if _, found := slices.BinarySearch(sys.edgeIDs(), id); found {
			out = append(out, id)
		}
	}
	return out
}

// placementCmd is the Raft command replicating controller placements:
// the per-zone primary plus, under PlacementSpread, the ordered backup
// replicas.
type placementCmd struct {
	Assignments map[int]simnet.NodeID
	Backups     map[int][]simnet.NodeID
}
