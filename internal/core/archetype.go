// Package core is the primary contribution of this repository: a
// runnable operationalization of the paper's resilient-IoT roadmap. It
// assembles the substrate packages (simulation, devices, membership,
// consensus, CRDT data plane, MAPE loops, formal verification,
// orchestration) into four architecture archetypes matching the
// paper's maturity levels ML1–ML4 (Tables 1 and 2), runs them against
// identical workloads and disruption schedules, and measures each
// along the paper's five disruption vectors. The resulting Report is
// the measured counterpart of the paper's qualitative tables; the
// benchmarks in the repository root regenerate every table and figure
// from it.
package core

import (
	"fmt"
	"strings"
)

// Archetype selects the architecture maturity level a System is built
// at (the rows of Tables 1 and 2).
type Archetype int

// The paper's maturity levels.
const (
	// ML1 is the vertically coupled IoT silo: task-specific gateway
	// per zone, business logic bundled with devices, point-to-point
	// flows, manual recovery, no validation.
	ML1 Archetype = iota + 1
	// ML2 is the hybrid IoT-Cloud system: all data and control flow
	// through a cloud broker over WAN; partial cloud-side automation;
	// unidirectional device→cloud flows without governance.
	ML2
	// ML3 is the edge-centric system: control runs on the zone
	// gateway with a statically designated cloudlet backup;
	// bidirectional edge↔cloud flows; task-specific validation;
	// governance limited to trust (not jurisdiction).
	ML3
	// ML4 is the paper's resilient IoT: deviceless control placed and
	// healed by an orchestrator replicated over Raft among all edge
	// nodes, gossip membership, CRDT data plane with enforced privacy
	// scopes, edge MAPE analysis/planning, full validation (design
	// time and runtime).
	ML4
)

var archetypeNames = map[Archetype]string{
	ML1: "ML1-silo",
	ML2: "ML2-cloud",
	ML3: "ML3-edge",
	ML4: "ML4-resilient",
}

func (a Archetype) String() string {
	if s, ok := archetypeNames[a]; ok {
		return s
	}
	return fmt.Sprintf("archetype(%d)", int(a))
}

// AllArchetypes lists the maturity levels in ascending order.
func AllArchetypes() []Archetype {
	return []Archetype{ML1, ML2, ML3, ML4}
}

// ShortName returns the bare maturity-level tag ("ML1".."ML4") without
// the descriptive suffix of String().
func (a Archetype) ShortName() string {
	name := a.String()
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

// ParseArchetype resolves an archetype from its short ("ML1") or full
// ("ML1-silo") name, case-insensitively.
func ParseArchetype(name string) (Archetype, error) {
	want := strings.ToUpper(name)
	if i := strings.IndexByte(want, '-'); i > 0 {
		want = want[:i]
	}
	for _, a := range AllArchetypes() {
		if a.ShortName() == want {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown archetype %q (want ML1..ML4)", name)
}
