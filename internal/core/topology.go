package core

import "repro/internal/simnet"

// Topology lists the node IDs a scenario config instantiates, grouped
// by role. It lets tooling outside the package — the chaos-search
// generator above all — aim disruptions at infrastructure or device
// nodes without reaching into archetype wiring, and stays in lockstep
// with buildWorld by construction (both derive from the same naming
// helpers and counts).
type Topology struct {
	Gateways  []simnet.NodeID
	Cloudlets []simnet.NodeID
	// Sensors holds the temperature sensors then the occupancy sensor
	// of each zone; Actuators the primary HVAC rig of each zone
	// followed by its backups when ScenarioConfig.BackupActuators > 0.
	Sensors   []simnet.NodeID
	Actuators []simnet.NodeID
	Cloud     simnet.NodeID
}

// TopologyOf derives the topology the config will build (after
// defaulting, so a zero config matches DefaultScenario).
func TopologyOf(cfg ScenarioConfig) Topology {
	cfg = cfg.withDefaults()
	var t Topology
	for z := 0; z < cfg.Zones; z++ {
		t.Gateways = append(t.Gateways, gatewayID(z))
		for i := 0; i < cfg.TempSensorsPerZone; i++ {
			t.Sensors = append(t.Sensors, tempSensorID(z, i))
		}
		t.Sensors = append(t.Sensors, occSensorID(z))
		t.Actuators = append(t.Actuators, actuatorID(z))
		for b := 0; b < cfg.BackupActuators; b++ {
			t.Actuators = append(t.Actuators, backupActuatorID(z, b))
		}
	}
	for i := 0; i < cfg.Cloudlets; i++ {
		t.Cloudlets = append(t.Cloudlets, cloudletID(i))
	}
	t.Cloud = cloudID
	return t
}

// Infrastructure returns gateways, cloudlets and the cloud — the nodes
// whose loss the archetypes are supposed to survive.
func (t Topology) Infrastructure() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(t.Gateways)+len(t.Cloudlets)+1)
	out = append(out, t.Gateways...)
	out = append(out, t.Cloudlets...)
	return append(out, t.Cloud)
}

// All returns every node of the topology.
func (t Topology) All() []simnet.NodeID {
	out := make([]simnet.NodeID, 0,
		len(t.Gateways)+len(t.Cloudlets)+len(t.Sensors)+len(t.Actuators)+1)
	out = append(out, t.Gateways...)
	out = append(out, t.Cloudlets...)
	out = append(out, t.Sensors...)
	out = append(out, t.Actuators...)
	return append(out, t.Cloud)
}
