package core

import (
	"strings"
	"testing"
	"time"
)

// TestFormatJournalEmpty pins the empty-journal rendering: no rows, no
// header, no trailing newline — and a hash that still digests cleanly
// (the hash of zero formatted bytes, not an error).
func TestFormatJournalEmpty(t *testing.T) {
	if got := FormatJournal(nil); got != "" {
		t.Fatalf("FormatJournal(nil) = %q, want empty", got)
	}
	if got := FormatJournal([]RunEvent{}); got != "" {
		t.Fatalf("FormatJournal([]) = %q, want empty", got)
	}
	// SHA-256 of the empty string — a frozen constant; if this changes,
	// every pinned corpus hash is invalidated.
	const emptyHash = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := JournalHash(nil); got != emptyHash {
		t.Fatalf("JournalHash(nil) = %s, want %s", got, emptyHash)
	}
}

// TestFormatJournalIslandEvents pins the rendering of island-mode
// entries, which only hardened-profile journals contain: the kind
// column must hold the full "island" kind, aligned like every other.
func TestFormatJournalIslandEvents(t *testing.T) {
	events := []RunEvent{
		{At: 90 * time.Second, Kind: EventIsland, Detail: "gw-2 enters island mode: no quorum contact for 6s"},
		{At: 150*time.Second + 500*time.Millisecond, Kind: EventIsland, Detail: "gw-2 rejoins: quorum contact restored"},
	}
	got := FormatJournal(events)
	want := "   1m30s  island         gw-2 enters island mode: no quorum contact for 6s\n" +
		" 2m30.5s  island         gw-2 rejoins: quorum contact restored\n"
	if got != want {
		t.Fatalf("FormatJournal island rendering drifted:\ngot:\n%swant:\n%s", got, want)
	}
	// The hash must digest exactly the formatted bytes.
	if JournalHash(events) != JournalHash(events) {
		t.Fatal("JournalHash not deterministic")
	}
}

// TestReportRowColumnStability pins the report table geometry: the
// header and every row must agree on column count and order — the
// contract external parsers of riotbench output rely on.
func TestReportRowColumnStability(t *testing.T) {
	head := header()
	wantCols := []string{
		"archetype", "R(goal)", "R(temp)", "pervasive", "invoke", "validate",
		"MTTR", "manual", "auto", "dataAvail", "staleP95", "privViol", "msgs",
	}
	if len(head) != len(wantCols) {
		t.Fatalf("header has %d columns, want %d", len(head), len(wantCols))
	}
	for i, w := range wantCols {
		if head[i] != w {
			t.Fatalf("header[%d] = %q, want %q", i, head[i], w)
		}
	}

	r := Report{
		Archetype:       ML4,
		GoalPersistence: 0.987, TempPersistence: 0.99,
		Pervasiveness: 1, InvocationSuccess: 0.95, ValidationCoverage: 1,
		MTTR: 42 * time.Second, ManualInterventions: 1, AutoRecoveries: 3,
		DataAvailability: 0.9, StalenessP95: 1500 * time.Millisecond,
		PrivacyViolations: 0, Messages: 1234,
	}
	row := r.row()
	if len(row) != len(head) {
		t.Fatalf("row has %d cells, header %d columns", len(row), len(head))
	}
	for i, cell := range []string{"ML4-resilient", "0.987", "0.990", "1.000", "0.950", "1.00",
		"42s", "1", "3", "0.900", "1.5s", "0", "1234"} {
		if row[i] != cell {
			t.Fatalf("row[%d] = %q, want %q", i, row[i], cell)
		}
	}
}

// TestFormatReportsGeometry checks the rendered table: every line has
// the same (header-derived) shape, with the dash separator after the
// header row.
func TestFormatReportsGeometry(t *testing.T) {
	reports := RunMatrix(quickCfg(FaultsStandard), ML1, ML4)
	out := FormatReports(reports)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2+len(reports) {
		t.Fatalf("table has %d lines, want %d:\n%s", len(lines), 2+len(reports), out)
	}
	if !strings.HasPrefix(lines[0], "archetype") {
		t.Fatalf("header line = %q", lines[0])
	}
	if strings.Trim(lines[1], "- ") != "" {
		t.Fatalf("separator line = %q", lines[1])
	}
	// Column starts align: each header field begins at the same byte
	// offset in every row (cells are left-padded to column width).
	for _, col := range header() {
		off := strings.Index(lines[0], col)
		if off < 0 {
			t.Fatalf("header missing column %q", col)
		}
		for _, line := range lines[2:] {
			if len(line) < off {
				t.Fatalf("row shorter than header offset %d: %q", off, line)
			}
			if off > 0 && line[off-1] != ' ' {
				t.Fatalf("column %q misaligned in row %q", col, line)
			}
		}
	}
}
