package core

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// liveSmokeConfig is a small scenario that finishes in a few wall
// seconds at scale 0.05: 2 zones, 40 s virtual horizon.
func liveSmokeConfig() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Zones = 2
	cfg.TempSensorsPerZone = 1
	cfg.Cloudlets = 1
	cfg.Duration = 40 * time.Second
	return cfg
}

// TestLiveSystemSmoke boots the scenario on real loopback UDP sockets,
// injects a crash and a partition on wall-clock timers, and checks the
// run produces a coherent report through the same measurement pipeline
// as simulation: every scheduled event armed, traffic flowed on real
// sockets, and the fault events landed in the journal.
func TestLiveSystemSmoke(t *testing.T) {
	cfg := liveSmokeConfig()
	// A single listed group suffices for the partition: unlisted nodes
	// land in the implicit complement group, as in simnet.
	s := (&fault.Schedule{}).
		Crash(8*time.Second, gatewayID(0), 10*time.Second).
		Partition(20*time.Second, 8*time.Second, []simnet.NodeID{gatewayID(1)})
	cfg.Faults = s

	sys, err := NewLiveSystem(cfg, ML1, LiveConfig{TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	report, info, err := sys.RunLive()
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped != 0 {
		t.Fatalf("live run skipped %d fault events (armed %d)", info.Skipped, info.Armed)
	}
	if info.Armed != s.Len() {
		t.Fatalf("armed %d events, schedule has %d", info.Armed, s.Len())
	}
	if info.Net.Sent == 0 || info.Net.Received == 0 {
		t.Fatalf("no traffic on live sockets: %+v", info.Net)
	}
	if report.GoalPersistence <= 0 || report.GoalPersistence > 1 {
		t.Fatalf("GoalPersistence = %.3f, want (0,1]", report.GoalPersistence)
	}
	if report.Messages == 0 || report.Bytes == 0 {
		t.Fatalf("report carries no traffic totals: %+v", report)
	}

	faults := 0
	for _, ev := range sys.Journal() {
		if ev.Kind == EventFault {
			faults++
		}
	}
	// Crash + recover + partition-start + partition-end.
	if faults != 4 {
		t.Fatalf("journal has %d fault events, want 4:\n%s", faults, FormatJournal(sys.Journal()))
	}
}

// TestLiveSystemRejectsShards pins the seam boundary: the sharded
// scheduler is a simulator feature and must not silently degrade live.
func TestLiveSystemRejectsShards(t *testing.T) {
	cfg := liveSmokeConfig()
	cfg.Shards = 2
	if _, err := NewLiveSystem(cfg, ML1, LiveConfig{TimeScale: 0.05}); err == nil {
		t.Fatal("NewLiveSystem accepted a sharded config")
	}
}
