// Package gossip implements SWIM-style decentralized membership: a
// randomized ping / ping-req failure detector with suspicion, refutation
// via incarnation numbers, and epidemic dissemination of membership
// updates piggybacked on probe traffic. The paper's roadmap makes
// "eliminating central points of failure by component coordination" a
// core challenge (§III) and decentralized coordination its own research
// direction (§V); membership — who is alive, learned without any
// central registry — is the base layer every decentralized facility in
// this repository builds on (edge coordination, orchestration,
// decentralized MAPE).
package gossip

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Status is a member's health as seen by the local failure detector.
type Status int

// Membership states, in escalation order.
const (
	StatusAlive Status = iota + 1
	StatusSuspect
	StatusDead
)

func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Member is a point-in-time view of one member.
type Member struct {
	ID          simnet.NodeID
	Status      Status
	Incarnation uint64
}

// Update is a disseminated membership claim.
type Update Member

// overrides implements SWIM's update precedence rules against the
// currently known (status, incarnation) of the same member. With
// strict set, an Alive claim needs a strictly newer incarnation to
// override a Dead verdict (see Config.StrictResurrection); otherwise
// an equal-incarnation Alive resurrects, which converges faster in
// small groups where update echoes die out within a round or two.
func (u Update) overrides(cur Member, strict bool) bool {
	switch u.Status {
	case StatusAlive:
		if strict {
			return u.Incarnation > cur.Incarnation
		}
		return u.Incarnation > cur.Incarnation ||
			(cur.Status == StatusDead && u.Incarnation >= cur.Incarnation)
	case StatusSuspect:
		if cur.Status == StatusAlive {
			return u.Incarnation >= cur.Incarnation
		}
		return u.Incarnation > cur.Incarnation
	case StatusDead:
		return cur.Status != StatusDead && u.Incarnation >= cur.Incarnation
	default:
		return false
	}
}

// Config tunes the failure detector. Zero fields take defaults.
type Config struct {
	// ProbeInterval is the period of the probe loop.
	ProbeInterval time.Duration
	// ProbeTimeout bounds the wait for a direct ack before indirect
	// probing starts.
	ProbeTimeout time.Duration
	// IndirectProbes is the number of helpers asked to ping an
	// unresponsive member.
	IndirectProbes int
	// SuspicionTimeout is how long a suspect has to refute before it is
	// declared dead.
	SuspicionTimeout time.Duration
	// RetransmitMult scales how many times an update is piggybacked:
	// RetransmitMult * ceil(log2(n+1)).
	RetransmitMult int
	// MaxPiggyback caps updates carried per message.
	MaxPiggyback int
	// AntiEntropyInterval is the period of full push-pull state
	// exchange with one random known member (including dead ones, so
	// a healed partition reconverges without external reseeding).
	// Zero takes the default; negative disables anti-entropy.
	AntiEntropyInterval time.Duration
	// StrictResurrection requires a strictly newer incarnation before
	// an Alive claim overrides a Dead verdict. Only the member itself
	// advances its incarnation (refutation, restart), so with this
	// set a death verdict can never be undone by a stale Alive echo
	// still circulating in piggyback queues. Large groups want it:
	// at hundreds of members those echoes outlive the dissemination
	// of the verdict and flap crashed nodes back to life. Small
	// groups keep the default lenient rule, where equal-incarnation
	// resurrection reconverges a healed minority faster.
	StrictResurrection bool
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 300 * time.Millisecond
	}
	if c.IndirectProbes == 0 {
		c.IndirectProbes = 3
	}
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = 3 * time.Second
	}
	if c.RetransmitMult == 0 {
		c.RetransmitMult = 3
	}
	if c.MaxPiggyback == 0 {
		c.MaxPiggyback = 6
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 10 * time.Second
	}
	return c
}

// Wire messages. Sizes approximate a compact binary encoding.

type pingMsg struct {
	Seq     uint64
	Updates []Update
}

type ackMsg struct {
	Seq     uint64
	Updates []Update
}

type pingReqMsg struct {
	Seq     uint64
	Origin  simnet.NodeID
	Target  simnet.NodeID
	Updates []Update
}

type joinMsg struct{}

type joinAckMsg struct {
	Members []Update
}

// syncMsg initiates push-pull anti-entropy: it carries the sender's
// full membership view; the receiver merges it and replies with its
// own full view (a joinAckMsg).
type syncMsg struct {
	Members []Update
}

// leaveMsg is a graceful departure announcement. Unlike ordinary
// traffic it must not count as evidence of life.
type leaveMsg struct {
	Update Update
}

// RegisterWire registers the protocol's message types with a wire
// codec (e.g. realnet's gob transport). Call once before starting
// nodes that communicate over a real network.
func RegisterWire(register func(any)) {
	register(pingMsg{})
	register(ackMsg{})
	register(pingReqMsg{})
	register(joinMsg{})
	register(joinAckMsg{})
	register(syncMsg{})
	register(leaveMsg{})
}

func updatesSize(us []Update) int { return 24 * len(us) }

func (m pingMsg) Size() int    { return 16 + updatesSize(m.Updates) }
func (m ackMsg) Size() int     { return 16 + updatesSize(m.Updates) }
func (m pingReqMsg) Size() int { return 48 + updatesSize(m.Updates) }
func (m joinMsg) Size() int    { return 8 }
func (m joinAckMsg) Size() int { return 8 + updatesSize(m.Members) }
func (m syncMsg) Size() int    { return 8 + updatesSize(m.Members) }
func (m leaveMsg) Size() int   { return 32 }

// Envelope kinds for updates-free pings and acks — the steady-state
// probe traffic once membership has converged and the broadcast queue
// is drained. Bytes mirrors the boxed Size with nil Updates, so the
// byte accounting is identical on either path.
const (
	envPing uint16 = 1 // A=Seq
	envAck  uint16 = 2 // A=Seq
)

// memberState is the local bookkeeping for one member.
type memberState struct {
	Member
	suspectTimer *simnet.Timer
}

// broadcast is an update queued for piggybacking.
type broadcast struct {
	update    Update
	transmits int
}

// Protocol is one node's SWIM instance. Construct with New and call
// Start (optionally with seeds to join through).
type Protocol struct {
	ep  simnet.Port
	ec  simnet.EnvelopeCarrier // non-nil when ep supports inline envelopes
	cfg Config

	incarnation uint64
	members     map[simnet.NodeID]*memberState
	queue       []*broadcast
	probeOrder  []simnet.NodeID
	probeIdx    int
	seqCounter  uint64
	// pending acks: seq → callback(acked bool) resolution state
	acked    map[uint64]*simnet.Timer
	relaySeq map[uint64]relay // indirect probe relays
	onChange []func(Member)
	ticker   *simnet.Ticker
	aeTicker *simnet.Ticker
	started  bool
	left     bool
	seeds    []simnet.NodeID

	bus *obs.Bus
	// probeSent tracks direct-probe departure times by seq, populated
	// only while the bus has subscribers so idle runs pay nothing.
	probeSent map[uint64]probeInfo
}

type probeInfo struct {
	target simnet.NodeID
	at     time.Duration
}

// relay remembers where to forward an indirect ack.
type relay struct {
	origin simnet.NodeID
	seq    uint64
}

// New constructs a protocol instance bound to ep. The instance starts
// knowing only itself.
func New(ep simnet.Port, cfg Config) *Protocol {
	p := &Protocol{
		ep:       ep,
		cfg:      cfg.withDefaults(),
		members:  make(map[simnet.NodeID]*memberState),
		acked:    make(map[uint64]*simnet.Timer),
		relaySeq: make(map[uint64]relay),
	}
	p.members[ep.ID()] = &memberState{Member: Member{ID: ep.ID(), Status: StatusAlive}}
	ep.OnMessage(p.handle)
	if ec, ok := ep.(simnet.EnvelopeCarrier); ok {
		p.ec = ec
		ec.OnEnvelope(p.handleEnv)
	}
	ep.OnUp(p.onRecover)
	return p
}

// OnChange registers a callback invoked whenever a member's status
// changes (including first discovery).
func (p *Protocol) OnChange(fn func(Member)) {
	p.onChange = append(p.onChange, fn)
}

// SetBus attaches an observability bus. Probe round-trips are published
// as "gossip.probe" spans, status transitions as "gossip.<status>"
// instants, and graceful departures as "gossip.leave". A nil bus (the
// default) keeps the protocol silent.
func (p *Protocol) SetBus(bus *obs.Bus) { p.bus = bus }

// Start begins probing. Seeds, if any, are adopted as initial members
// and contacted for a full state exchange. Adopting them up front
// matters on real networks: if the join datagram is lost, the probe
// loop and anti-entropy still reach the seed, so a cold-start race
// cannot isolate the node permanently.
func (p *Protocol) Start(seeds ...simnet.NodeID) {
	p.seeds = append([]simnet.NodeID(nil), seeds...)
	p.started = true
	for _, s := range p.seeds {
		if s != p.ep.ID() {
			p.applyUpdate(Update{ID: s, Status: StatusAlive})
			p.ep.Send(s, joinMsg{})
		}
	}
	p.ticker = p.ep.Every(p.cfg.ProbeInterval, p.probe)
	if p.cfg.AntiEntropyInterval > 0 {
		p.aeTicker = p.ep.Every(p.cfg.AntiEntropyInterval, p.antiEntropy)
	}
}

// Leave announces this node's departure before stopping: a dead claim
// about itself at the current incarnation is broadcast directly to all
// known alive members, so peers remove it immediately instead of
// paying the probe + suspicion timeout. The graceful counterpart of a
// crash.
func (p *Protocol) Leave() {
	dead := Update{ID: p.ep.ID(), Status: StatusDead, Incarnation: p.incarnation}
	msg := leaveMsg{Update: dead}
	// Broadcast to every non-dead member, in sorted order: a member the
	// leaver falsely suspects must still hear the farewell directly, and
	// iterating the map raw would make send order (and thus per-target
	// latency jitter) depend on map hashing rather than on the seed.
	ids := make([]simnet.NodeID, 0, len(p.members))
	for id, ms := range p.members {
		if id != p.ep.ID() && ms.Status != StatusDead {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		p.ep.Send(id, msg)
	}
	self := p.members[p.ep.ID()]
	self.Status = StatusDead
	p.left = true
	p.bus.Emit("gossip.leave", string(p.ep.ID()), 0, 0, "graceful leave at incarnation %d", p.incarnation)
	p.Stop()
}

// Stop halts the probe loop. The instance keeps answering pings (a
// stopped detector is still a reachable node) until its node goes down.
func (p *Protocol) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
	if p.aeTicker != nil {
		p.aeTicker.Stop()
		p.aeTicker = nil
	}
}

// antiEntropy runs one push-pull exchange with a random known member.
// Dead members are eligible targets on purpose: a member wrongly
// declared dead during a partition answers the sync after the heal,
// and the refutation machinery reconverges both sides without any
// external reseeding.
func (p *Protocol) antiEntropy() {
	var pool []simnet.NodeID
	for id := range p.members {
		if id != p.ep.ID() {
			pool = append(pool, id)
		}
	}
	if len(pool) == 0 {
		return
	}
	slices.Sort(pool)
	target := pool[p.ep.Rand().Intn(len(pool))]
	p.ep.Send(target, syncMsg{Members: p.fullState()})
}

// onRecover runs when the underlying node comes back up after a crash:
// volatile protocol state is gone, the incarnation advances so stale
// death claims can be refuted, and the node rejoins through its seeds.
func (p *Protocol) onRecover() {
	if !p.started {
		return
	}
	p.left = false // a restarted node rejoins deliberately
	p.incarnation++
	for id, ms := range p.members {
		if id != p.ep.ID() {
			stopSuspect(ms)
			delete(p.members, id)
		}
	}
	self := p.members[p.ep.ID()]
	self.Status = StatusAlive
	self.Incarnation = p.incarnation
	p.queue = nil
	p.probeOrder = nil
	p.probeIdx = 0
	p.enqueue(Update{ID: p.ep.ID(), Status: StatusAlive, Incarnation: p.incarnation})
	for _, s := range p.seeds {
		if s != p.ep.ID() {
			p.applyUpdate(Update{ID: s, Status: StatusAlive})
			p.ep.Send(s, joinMsg{})
		}
	}
}

func stopSuspect(ms *memberState) {
	if ms.suspectTimer != nil {
		ms.suspectTimer.Stop()
		ms.suspectTimer = nil
	}
}

// Members returns a snapshot of all known members (including self),
// sorted by ID.
func (p *Protocol) Members() []Member {
	out := make([]Member, 0, len(p.members))
	for _, ms := range p.members {
		out = append(out, ms.Member)
	}
	slices.SortFunc(out, func(a, b Member) int { return strings.Compare(string(a.ID), string(b.ID)) })
	return out
}

// Alive returns the IDs of members currently believed alive (including
// self), sorted.
func (p *Protocol) Alive() []simnet.NodeID {
	var out []simnet.NodeID
	for id, ms := range p.members {
		if ms.Status == StatusAlive {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// IsAlive reports whether a single member is currently believed
// alive. O(1): orchestration filters hundreds of host candidates per
// placement round, and building the sorted Members snapshot for each
// lookup dominates city-scale runs.
func (p *Protocol) IsAlive(id simnet.NodeID) bool {
	ms, ok := p.members[id]
	return ok && ms.Status == StatusAlive
}

// AliveCount returns the number of members believed alive.
func (p *Protocol) AliveCount() int {
	n := 0
	for _, ms := range p.members {
		if ms.Status == StatusAlive {
			n++
		}
	}
	return n
}

// --- probing ---

func (p *Protocol) probe() {
	target, ok := p.nextProbeTarget()
	if !ok {
		return
	}
	seq := p.nextSeq()
	p.sendPing(target, seq)
	if p.bus.Active() {
		if p.probeSent == nil {
			p.probeSent = make(map[uint64]probeInfo)
		}
		p.probeSent[seq] = probeInfo{target: target, at: p.bus.Now()}
	}
	p.acked[seq] = p.ep.After(p.cfg.ProbeTimeout, func() {
		delete(p.acked, seq)
		delete(p.probeSent, seq)
		p.indirectProbe(target)
	})
}

func (p *Protocol) indirectProbe(target simnet.NodeID) {
	helpers := p.randomAliveExcept(p.cfg.IndirectProbes, target)
	seq := p.nextSeq()
	for _, h := range helpers {
		p.ep.Send(h, pingReqMsg{Seq: seq, Origin: p.ep.ID(), Target: target, Updates: p.takePiggyback()})
	}
	remaining := p.cfg.ProbeInterval - p.cfg.ProbeTimeout
	if remaining <= 0 {
		remaining = p.cfg.ProbeTimeout
	}
	p.acked[seq] = p.ep.After(remaining, func() {
		delete(p.acked, seq)
		p.suspect(target)
	})
}

func (p *Protocol) nextProbeTarget() (simnet.NodeID, bool) {
	candidates := 0
	for id, ms := range p.members {
		if id != p.ep.ID() && ms.Status != StatusDead {
			candidates++
		}
	}
	if candidates == 0 {
		return "", false
	}
	for tries := 0; tries < len(p.members)+1; tries++ {
		if p.probeIdx >= len(p.probeOrder) {
			p.reshuffleProbeOrder()
			if len(p.probeOrder) == 0 {
				return "", false
			}
		}
		id := p.probeOrder[p.probeIdx]
		p.probeIdx++
		if ms, ok := p.members[id]; ok && ms.Status != StatusDead && id != p.ep.ID() {
			return id, true
		}
	}
	return "", false
}

func (p *Protocol) reshuffleProbeOrder() {
	p.probeOrder = p.probeOrder[:0]
	for id, ms := range p.members {
		if id != p.ep.ID() && ms.Status != StatusDead {
			p.probeOrder = append(p.probeOrder, id)
		}
	}
	slices.Sort(p.probeOrder)
	p.ep.Rand().Shuffle(len(p.probeOrder), func(i, j int) {
		p.probeOrder[i], p.probeOrder[j] = p.probeOrder[j], p.probeOrder[i]
	})
	p.probeIdx = 0
}

func (p *Protocol) randomAliveExcept(n int, except simnet.NodeID) []simnet.NodeID {
	var pool []simnet.NodeID
	for id, ms := range p.members {
		if id != p.ep.ID() && id != except && ms.Status == StatusAlive {
			pool = append(pool, id)
		}
	}
	slices.Sort(pool)
	p.ep.Rand().Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > n {
		pool = pool[:n]
	}
	return pool
}

func (p *Protocol) nextSeq() uint64 {
	p.seqCounter++
	return p.seqCounter
}

// --- state transitions ---

func (p *Protocol) suspect(id simnet.NodeID) {
	ms, ok := p.members[id]
	if !ok || ms.Status != StatusAlive {
		return
	}
	p.applyUpdate(Update{ID: id, Status: StatusSuspect, Incarnation: ms.Incarnation})
}

func (p *Protocol) notify(m Member) {
	if p.bus.Active() {
		p.bus.Emit("gossip."+m.Status.String(), string(p.ep.ID()), 0, 0,
			"member %s incarnation %d", m.ID, m.Incarnation)
	}
	for _, fn := range p.onChange {
		fn(m)
	}
}

func (p *Protocol) enqueue(u Update) {
	// Replace any queued update for the same member: the newest claim
	// supersedes older ones.
	for i, b := range p.queue {
		if b.update.ID == u.ID {
			p.queue[i] = &broadcast{update: u}
			return
		}
	}
	p.queue = append(p.queue, &broadcast{update: u})
}

func (p *Protocol) retransmitLimit() int {
	n := len(p.members)
	return p.cfg.RetransmitMult * int(math.Ceil(math.Log2(float64(n+1))))
}

// takePiggyback selects up to MaxPiggyback least-transmitted updates and
// accounts the transmission.
func (p *Protocol) takePiggyback() []Update {
	if len(p.queue) == 0 {
		return nil
	}
	sort.SliceStable(p.queue, func(i, j int) bool { return p.queue[i].transmits < p.queue[j].transmits })
	limit := p.retransmitLimit()
	var out []Update
	kept := p.queue[:0]
	for _, b := range p.queue {
		if len(out) < p.cfg.MaxPiggyback {
			out = append(out, b.update)
			b.transmits++
		}
		if b.transmits < limit {
			kept = append(kept, b)
		}
	}
	p.queue = kept
	return out
}

// applyUpdate merges a membership claim into local state, refuting
// claims about self and disseminating accepted changes.
func (p *Protocol) applyUpdate(u Update) {
	if u.ID == p.ep.ID() {
		// Self-refutation: someone thinks we are suspect/dead. A node
		// that deliberately left does not refute its own death claim.
		if p.left {
			return
		}
		if u.Status != StatusAlive && u.Incarnation >= p.incarnation {
			p.incarnation = u.Incarnation + 1
			self := p.members[p.ep.ID()]
			self.Incarnation = p.incarnation
			self.Status = StatusAlive
			p.enqueue(Update{ID: p.ep.ID(), Status: StatusAlive, Incarnation: p.incarnation})
		}
		return
	}
	ms, known := p.members[u.ID]
	if !known {
		if u.Status == StatusDead {
			return // don't learn already-dead strangers
		}
		ms = &memberState{Member: Member{ID: u.ID, Status: u.Status, Incarnation: u.Incarnation}}
		p.members[u.ID] = ms
		p.enqueue(u)
		if u.Status == StatusSuspect {
			p.armSuspicion(ms)
		}
		p.notify(ms.Member)
		return
	}
	if !u.overrides(ms.Member, p.cfg.StrictResurrection) {
		return
	}
	prev := ms.Status
	ms.Status = u.Status
	ms.Incarnation = u.Incarnation
	switch u.Status {
	case StatusAlive:
		stopSuspect(ms)
	case StatusSuspect:
		if prev != StatusSuspect {
			p.armSuspicion(ms)
		}
	case StatusDead:
		stopSuspect(ms)
	}
	p.enqueue(u)
	if prev != u.Status {
		p.notify(ms.Member)
	}
}

func (p *Protocol) armSuspicion(ms *memberState) {
	stopSuspect(ms)
	id, inc := ms.ID, ms.Incarnation
	ms.suspectTimer = p.ep.After(p.cfg.SuspicionTimeout, func() {
		cur, ok := p.members[id]
		if !ok || cur.Status != StatusSuspect || cur.Incarnation != inc {
			return
		}
		p.applyUpdate(Update{ID: id, Status: StatusDead, Incarnation: inc})
	})
}

// --- message handling ---

func (p *Protocol) handle(from simnet.NodeID, msg simnet.Message) {
	// A node that left gracefully goes silent: answering pings or syncs
	// would count as evidence of life on peers and resurrect the dead
	// claim it just broadcast. (A restart clears left via onRecover.)
	if p.left {
		return
	}
	switch m := msg.(type) {
	case pingMsg:
		p.onPing(from, m.Seq, m.Updates)
	case ackMsg:
		p.onAck(from, m.Seq, m.Updates)
	case pingReqMsg:
		p.applyAll(m.Updates)
		seq := p.nextSeq()
		p.relaySeq[seq] = relay{origin: m.Origin, seq: m.Seq}
		p.sendPing(m.Target, seq)
		// Garbage-collect the relay slot if the target never acks.
		p.ep.After(p.cfg.ProbeInterval, func() { delete(p.relaySeq, seq) })
	case joinMsg:
		p.applyUpdate(Update{ID: from, Status: StatusAlive, Incarnation: 0})
		p.ep.Send(from, joinAckMsg{Members: p.fullState()})
	case joinAckMsg:
		p.applyAll(m.Members)
	case syncMsg:
		p.applyAll(m.Members)
		p.ep.Send(from, joinAckMsg{Members: p.fullState()})
	case leaveMsg:
		p.applyUpdate(m.Update)
	}
}

// onPing processes a direct probe (boxed or envelope path).
func (p *Protocol) onPing(from simnet.NodeID, seq uint64, updates []Update) {
	p.applyAll(updates)
	// Seeing traffic from a member is evidence of life.
	p.applyUpdate(Update{ID: from, Status: StatusAlive, Incarnation: incOf(p, from)})
	p.sendAck(from, seq)
}

// onAck settles a pending probe (boxed or envelope path).
func (p *Protocol) onAck(from simnet.NodeID, seq uint64, updates []Update) {
	p.applyAll(updates)
	p.applyUpdate(Update{ID: from, Status: StatusAlive, Incarnation: incOf(p, from)})
	if t, ok := p.acked[seq]; ok {
		t.Stop()
		delete(p.acked, seq)
	}
	if info, ok := p.probeSent[seq]; ok {
		delete(p.probeSent, seq)
		p.bus.Publish(obs.Event{
			At: info.at, Dur: p.bus.Now() - info.at,
			Kind: "gossip.probe", Node: string(p.ep.ID()),
			Detail: "probe " + string(info.target),
		})
	}
	if r, ok := p.relaySeq[seq]; ok {
		delete(p.relaySeq, seq)
		p.sendAck(r.origin, r.seq)
	}
}

// handleEnv routes inline-envelope pings and acks, which by
// construction carry no piggybacked updates.
func (p *Protocol) handleEnv(from simnet.NodeID, e *simnet.Envelope) {
	if p.left {
		return
	}
	switch e.Kind {
	case envPing:
		p.onPing(from, e.A, nil)
	case envAck:
		p.onAck(from, e.A, nil)
	}
}

// sendPing transmits a probe carrying any pending piggyback updates;
// with none pending it travels as an inline envelope where supported.
func (p *Protocol) sendPing(to simnet.NodeID, seq uint64) {
	ups := p.takePiggyback()
	if ups == nil && p.ec != nil {
		p.ec.SendEnvelope(to, simnet.Envelope{Kind: envPing, A: seq, Bytes: 16})
		return
	}
	p.ep.Send(to, pingMsg{Seq: seq, Updates: ups})
}

// sendAck mirrors sendPing for acknowledgements.
func (p *Protocol) sendAck(to simnet.NodeID, seq uint64) {
	ups := p.takePiggyback()
	if ups == nil && p.ec != nil {
		p.ec.SendEnvelope(to, simnet.Envelope{Kind: envAck, A: seq, Bytes: 16})
		return
	}
	p.ep.Send(to, ackMsg{Seq: seq, Updates: ups})
}

func incOf(p *Protocol, id simnet.NodeID) uint64 {
	if ms, ok := p.members[id]; ok {
		return ms.Incarnation
	}
	return 0
}

func (p *Protocol) applyAll(us []Update) {
	for _, u := range us {
		p.applyUpdate(u)
	}
}

func (p *Protocol) fullState() []Update {
	out := make([]Update, 0, len(p.members))
	for _, ms := range p.members {
		out = append(out, Update(ms.Member))
	}
	slices.SortFunc(out, func(a, b Update) int { return strings.Compare(string(a.ID), string(b.ID)) })
	return out
}
