package gossip

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// cluster builds n nodes running the protocol, all seeded through node 0.
func cluster(t *testing.T, sim *simnet.Sim, n int, cfg Config) []*Protocol {
	t.Helper()
	ps := make([]*Protocol, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = simnet.NodeID(fmt.Sprintf("n%d", i))
		ps[i] = New(sim.AddNode(ids[i]), cfg)
	}
	for i, p := range ps {
		if i == 0 {
			p.Start()
		} else {
			p.Start(ids[0])
		}
	}
	return ps
}

func fastCfg() Config {
	return Config{
		ProbeInterval:    200 * time.Millisecond,
		ProbeTimeout:     60 * time.Millisecond,
		SuspicionTimeout: 600 * time.Millisecond,
	}
}

func TestStatusString(t *testing.T) {
	if StatusAlive.String() != "alive" || StatusSuspect.String() != "suspect" || StatusDead.String() != "dead" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() != "status(9)" {
		t.Fatal("unknown status name wrong")
	}
}

func TestOverridesRules(t *testing.T) {
	tests := []struct {
		name   string
		u      Update
		cur    Member
		strict bool
		want   bool
	}{
		{"alive needs higher inc over alive", Update{Status: StatusAlive, Incarnation: 1}, Member{Status: StatusAlive, Incarnation: 1}, false, false},
		{"alive higher inc beats alive", Update{Status: StatusAlive, Incarnation: 2}, Member{Status: StatusAlive, Incarnation: 1}, false, true},
		{"alive higher inc beats suspect", Update{Status: StatusAlive, Incarnation: 2}, Member{Status: StatusSuspect, Incarnation: 1}, false, true},
		{"alive same inc does not refute suspect", Update{Status: StatusAlive, Incarnation: 1}, Member{Status: StatusSuspect, Incarnation: 1}, false, false},
		{"alive same inc resurrects dead", Update{Status: StatusAlive, Incarnation: 1}, Member{Status: StatusDead, Incarnation: 1}, false, true},
		{"strict: alive same inc stays dead", Update{Status: StatusAlive, Incarnation: 1}, Member{Status: StatusDead, Incarnation: 1}, true, false},
		{"strict: alive higher inc rejoins", Update{Status: StatusAlive, Incarnation: 2}, Member{Status: StatusDead, Incarnation: 1}, true, true},
		{"suspect same inc beats alive", Update{Status: StatusSuspect, Incarnation: 1}, Member{Status: StatusAlive, Incarnation: 1}, false, true},
		{"suspect same inc does not re-suspect", Update{Status: StatusSuspect, Incarnation: 1}, Member{Status: StatusSuspect, Incarnation: 1}, false, false},
		{"dead same inc beats suspect", Update{Status: StatusDead, Incarnation: 1}, Member{Status: StatusSuspect, Incarnation: 1}, false, true},
		{"dead never overrides dead", Update{Status: StatusDead, Incarnation: 9}, Member{Status: StatusDead, Incarnation: 1}, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.u.overrides(tt.cur, tt.strict); got != tt.want {
				t.Fatalf("overrides = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestJoinConverges(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(2), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 8, fastCfg())
	sim.RunUntil(3 * time.Second)
	for i, p := range ps {
		if got := p.AliveCount(); got != 8 {
			t.Fatalf("node %d sees %d alive, want 8; members=%v", i, got, p.Members())
		}
	}
}

func TestCrashDetected(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(3), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 6, fastCfg())
	sim.RunUntil(3 * time.Second)

	sim.SetDown("n3", true)
	sim.RunUntil(10 * time.Second)

	for i, p := range ps {
		if i == 3 {
			continue
		}
		found := false
		for _, m := range p.Members() {
			if m.ID == "n3" {
				found = true
				if m.Status != StatusDead {
					t.Fatalf("node %d sees n3 as %v, want dead", i, m.Status)
				}
			}
		}
		if !found {
			t.Fatalf("node %d lost track of n3", i)
		}
	}
}

func TestRecoveryRejoins(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(4), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 5, fastCfg())
	sim.RunUntil(3 * time.Second)

	sim.SetDown("n2", true)
	sim.RunUntil(10 * time.Second)
	sim.SetDown("n2", false)
	sim.RunUntil(20 * time.Second)

	for i, p := range ps {
		if got := p.AliveCount(); got != 5 {
			t.Fatalf("node %d sees %d alive after rejoin, want 5; members=%v", i, got, p.Members())
		}
	}
}

func TestPartitionSuspicionAndHeal(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(5), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 6, fastCfg())
	sim.RunUntil(3 * time.Second)

	sim.Partition(
		[]simnet.NodeID{"n0", "n1", "n2"},
		[]simnet.NodeID{"n3", "n4", "n5"},
	)
	sim.RunUntil(10 * time.Second)
	// Each side should consider the other side dead.
	if got := ps[0].AliveCount(); got != 3 {
		t.Fatalf("n0 sees %d alive during partition, want 3", got)
	}
	if got := ps[4].AliveCount(); got != 3 {
		t.Fatalf("n4 sees %d alive during partition, want 3", got)
	}

	sim.HealPartition()
	// Probing alone cannot reconnect the sides (dead members are
	// never probed — a known SWIM property); the periodic push-pull
	// anti-entropy exchange targets dead members too, so both sides
	// reconverge on their own after the heal.
	sim.RunUntil(90 * time.Second)
	for i, p := range ps {
		if got := p.AliveCount(); got != 6 {
			t.Fatalf("node %d sees %d alive after heal, want 6 (anti-entropy reconvergence)", i, got)
		}
	}
}

func TestOnChangeFires(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(6), simnet.WithDefaultLatency(2*time.Millisecond))
	ids := []simnet.NodeID{"a", "b"}
	pa := New(sim.AddNode(ids[0]), fastCfg())
	pb := New(sim.AddNode(ids[1]), fastCfg())
	var events []string
	pa.OnChange(func(m Member) { events = append(events, fmt.Sprintf("%s:%s", m.ID, m.Status)) })
	pa.Start()
	pb.Start("a")
	sim.RunUntil(2 * time.Second)
	if len(events) == 0 || events[0] != "b:alive" {
		t.Fatalf("events = %v, want first b:alive", events)
	}
	sim.SetDown("b", true)
	sim.RunUntil(15 * time.Second)
	last := events[len(events)-1]
	if last != "b:dead" {
		t.Fatalf("last event = %q, want b:dead (all: %v)", last, events)
	}
}

func TestAliveSorted(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(7), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 4, fastCfg())
	sim.RunUntil(3 * time.Second)
	alive := ps[0].Alive()
	for i := 1; i < len(alive); i++ {
		if alive[i-1] >= alive[i] {
			t.Fatalf("Alive() not sorted: %v", alive)
		}
	}
}

func TestFalsePositiveRefutation(t *testing.T) {
	// Degrade (don't kill) the link to one node so probes are slow but
	// the node is alive: suspicion should be refuted, and the member
	// must not stay dead forever.
	sim := simnet.New(simnet.WithSeed(8), simnet.WithDefaultLatency(2*time.Millisecond))
	cfg := fastCfg()
	cfg.SuspicionTimeout = 2 * time.Second // generous refutation window
	ps := cluster(t, sim, 4, cfg)
	sim.RunUntil(3 * time.Second)

	// n1 becomes slow to everyone for a while: 100ms latency exceeds
	// the 60ms probe timeout, so direct probes fail, but indirect
	// probes also take >timeout... suspicion will start. n1 refutes via
	// incarnation bump carried on its own probes.
	for _, other := range []simnet.NodeID{"n0", "n2", "n3"} {
		sim.SetLinkBidirectional("n1", other, 100*time.Millisecond, 0)
	}
	sim.RunUntil(8 * time.Second)
	for _, other := range []simnet.NodeID{"n0", "n2", "n3"} {
		sim.ClearLink("n1", other)
		sim.ClearLink(other, "n1")
	}
	sim.RunUntil(20 * time.Second)

	for i, p := range ps {
		for _, m := range p.Members() {
			if m.ID == "n1" && m.Status == StatusDead {
				t.Fatalf("node %d declared slow-but-alive n1 dead permanently", i)
			}
		}
	}
}

func TestStopHaltsProbing(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(9))
	pa := New(sim.AddNode("a"), fastCfg())
	pb := New(sim.AddNode("b"), fastCfg())
	pa.Start()
	pb.Start("a")
	sim.RunUntil(2 * time.Second)
	pa.Stop()
	pb.Stop()
	sim.RunUntil(3 * time.Second) // drain in-flight probes and their acks
	before := sim.Stats().Sent
	sim.RunUntil(6 * time.Second)
	if after := sim.Stats().Sent; after != before {
		t.Fatalf("messages still flowing after Stop: %d → %d", before, after)
	}
}

func TestScalesTo50Nodes(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(10), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 50, Config{
		ProbeInterval:    500 * time.Millisecond,
		ProbeTimeout:     100 * time.Millisecond,
		SuspicionTimeout: 2 * time.Second,
	})
	sim.RunUntil(30 * time.Second)
	for i, p := range ps {
		if got := p.AliveCount(); got != 50 {
			t.Fatalf("node %d sees %d alive, want 50", i, got)
		}
	}
}

func TestGracefulLeavePropagatesImmediately(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(14), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 5, fastCfg())
	sim.RunUntil(3 * time.Second)

	leaveAt := sim.Now()
	ps[2].Leave()
	// Well under the suspicion timeout (600ms in fastCfg), everyone
	// knows: leave is one direct broadcast, not a detection.
	sim.RunUntil(leaveAt + 100*time.Millisecond)
	for i, p := range ps {
		if i == 2 {
			continue
		}
		for _, m := range p.Members() {
			if m.ID == "n2" && m.Status != StatusDead {
				t.Fatalf("node %d sees leaver as %v after 100ms", i, m.Status)
			}
		}
	}

	// The leaver must not refute its own death via anti-entropy.
	sim.RunUntil(leaveAt + 30*time.Second)
	for i, p := range ps {
		if i == 2 {
			continue
		}
		if got := p.AliveCount(); got != 4 {
			t.Fatalf("node %d sees %d alive long after leave, want 4", i, got)
		}
	}
}

func TestLeaverCanRejoinAfterRestart(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(15), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 4, fastCfg())
	sim.RunUntil(3 * time.Second)
	ps[1].Leave()
	sim.RunUntil(5 * time.Second)
	// Restart: the node crashes and recovers, which re-seeds and bumps
	// the incarnation past the death claim.
	sim.SetDown("n1", true)
	sim.RunUntil(6 * time.Second)
	sim.SetDown("n1", false)
	sim.RunUntil(30 * time.Second)
	for i, p := range ps {
		if got := p.AliveCount(); got != 4 {
			t.Fatalf("node %d sees %d alive after rejoin, want 4", i, got)
		}
	}
}

func TestAntiEntropyDisabled(t *testing.T) {
	// With anti-entropy disabled, a healed partition does NOT
	// reconverge (the classic SWIM limitation) — this pins down that
	// the reconvergence in TestPartitionSuspicionAndHeal really comes
	// from the anti-entropy exchange.
	sim := simnet.New(simnet.WithSeed(12), simnet.WithDefaultLatency(2*time.Millisecond))
	cfg := fastCfg()
	cfg.AntiEntropyInterval = -1
	ps := cluster(t, sim, 4, cfg)
	sim.RunUntil(3 * time.Second)
	sim.Partition([]simnet.NodeID{"n0", "n1"}, []simnet.NodeID{"n2", "n3"})
	sim.RunUntil(10 * time.Second)
	sim.HealPartition()
	sim.RunUntil(60 * time.Second)
	if got := ps[0].AliveCount(); got == 4 {
		t.Fatal("sides reconverged without anti-entropy; the mechanism under test is not what reconnects them")
	}
}

func TestAntiEntropyConvergesTwoIsolatedGroups(t *testing.T) {
	// Two nodes that never join each other but learn of one another
	// via a third node's sync converge through push-pull exchanges.
	sim := simnet.New(simnet.WithSeed(13), simnet.WithDefaultLatency(2*time.Millisecond))
	cfg := fastCfg()
	cfg.AntiEntropyInterval = time.Second
	a := New(sim.AddNode("a"), cfg)
	b := New(sim.AddNode("b"), cfg)
	c := New(sim.AddNode("c"), cfg)
	a.Start()
	b.Start("a")
	c.Start("a") // b and c never directly seed each other
	sim.RunUntil(10 * time.Second)
	if got := b.AliveCount(); got != 3 {
		t.Fatalf("b sees %d alive, want 3", got)
	}
	if got := c.AliveCount(); got != 3 {
		t.Fatalf("c sees %d alive, want 3", got)
	}
}

func TestMessageSizes(t *testing.T) {
	us := []Update{{ID: "x", Status: StatusAlive}}
	if (pingMsg{Updates: us}).Size() <= (pingMsg{}).Size() {
		t.Fatal("updates should add to message size")
	}
	if (joinMsg{}).Size() <= 0 || (joinAckMsg{}).Size() <= 0 {
		t.Fatal("sizes must be positive")
	}
	if (ackMsg{Updates: us}).Size() != 16+24 {
		t.Fatalf("ack size = %d", (ackMsg{Updates: us}).Size())
	}
	if (pingReqMsg{}).Size() != 48 {
		t.Fatalf("pingReq size = %d", (pingReqMsg{}).Size())
	}
}

// TestBusInstrumentation checks that an attached obs bus sees probe
// round-trip spans, suspicion transitions, and graceful leaves.
func TestBusInstrumentation(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(21), simnet.WithDefaultLatency(2*time.Millisecond))
	ps := cluster(t, sim, 3, fastCfg())
	bus := obs.NewBus(sim.Now)
	for _, p := range ps {
		p.SetBus(bus)
	}
	sub := bus.Subscribe(4096)
	defer sub.Close()

	sim.RunUntil(5 * time.Second)
	sim.SetDown("n2", true)
	sim.RunUntil(10 * time.Second)
	ps[1].Leave()
	sim.RunUntil(11 * time.Second)

	kinds := map[string]int{}
	probeRTT := time.Duration(0)
	for _, ev := range sub.Events() {
		kinds[ev.Kind]++
		if ev.Kind == "gossip.probe" {
			if ev.Dur <= 0 {
				t.Fatalf("probe span without duration: %+v", ev)
			}
			probeRTT = ev.Dur
		}
	}
	if kinds["gossip.probe"] == 0 {
		t.Fatal("no probe round-trip spans observed")
	}
	if probeRTT <= 0 || probeRTT > time.Second {
		t.Fatalf("implausible probe RTT %v", probeRTT)
	}
	if kinds["gossip.suspect"] == 0 || kinds["gossip.dead"] == 0 {
		t.Fatalf("missing suspicion transitions: %v", kinds)
	}
	if kinds["gossip.leave"] != 1 {
		t.Fatalf("leave events = %d, want 1", kinds["gossip.leave"])
	}
}
