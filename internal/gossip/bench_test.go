package gossip

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

// BenchmarkConvergence measures how much work full membership
// convergence takes at different cluster sizes.
func BenchmarkConvergence(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := simnet.New(simnet.WithSeed(int64(i+1)), simnet.WithDefaultLatency(2*time.Millisecond))
				ids := make([]simnet.NodeID, n)
				ps := make([]*Protocol, n)
				for j := 0; j < n; j++ {
					ids[j] = simnet.NodeID(fmt.Sprintf("n%d", j))
					ps[j] = New(sim.AddNode(ids[j]), Config{
						ProbeInterval:    500 * time.Millisecond,
						ProbeTimeout:     100 * time.Millisecond,
						SuspicionTimeout: 2 * time.Second,
					})
				}
				for j, p := range ps {
					if j == 0 {
						p.Start()
					} else {
						p.Start(ids[0])
					}
				}
				sim.RunUntil(30 * time.Second)
				for j, p := range ps {
					if got := p.AliveCount(); got != n {
						b.Fatalf("node %d sees %d alive, want %d", j, got, n)
					}
				}
			}
		})
	}
}
