package chaos

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// Oracle judges candidate schedules: it runs each one through a fresh,
// deterministic core simulation and flags requirement-monitor failures,
// persistence below the floor, privacy violations, non-recovery before
// run end, failed design checks, and panics. Privacy is judged against
// the fault-free baseline of the same scenario, because ML2/ML3 leak
// governed items by design (the paper's Table 2) — the chaos property
// is "disruption must not cause violations beyond the architecture's
// baseline", which an empty schedule satisfies at every maturity level.
// Runs are independent, so one Oracle may be shared by concurrent
// workers.
type Oracle struct {
	cfg Config

	baselineOnce sync.Once
	baseline     core.Report
}

// NewOracle builds an oracle from a (possibly partial) config.
func NewOracle(cfg Config) *Oracle {
	return &Oracle{cfg: cfg.withDefaults()}
}

// Baseline returns the report of a fault-free run of the scenario,
// computed once on first use (safe under concurrent callers).
func (o *Oracle) Baseline() core.Report {
	o.baselineOnce.Do(func() {
		report, _, panicMsg := o.execute(&fault.Schedule{})
		if panicMsg == "" {
			o.baseline = report
		}
	})
	return o.baseline
}

// Config returns the oracle's normalized configuration.
func (o *Oracle) Config() Config { return o.cfg }

// Run executes one candidate schedule to the scenario horizon and
// returns the verdict. A panicking run (the strongest counterexample a
// search can find) is recovered and reported as FailPanic.
func (o *Oracle) Run(s *fault.Schedule) Verdict {
	report, hash, panicMsg := o.execute(s)
	if panicMsg != "" {
		return Verdict{Failures: []Failure{{Kind: FailPanic, Detail: panicMsg}}}
	}
	v := Verdict{Report: report, JournalHash: hash}
	if o.cfg.MinPersistence > 0 && report.GoalPersistence < o.cfg.MinPersistence {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailPersistence,
			Detail: fmt.Sprintf("R(goal)=%.3f below floor %.3f", report.GoalPersistence, o.cfg.MinPersistence),
		})
	}
	if report.UnresolvedViolations > 0 {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailNonRecovery,
			Detail: fmt.Sprintf("%d requirement(s) still violated at end of run", report.UnresolvedViolations),
		})
	}
	if report.PrivacyViolations > 0 {
		if base := o.Baseline().PrivacyViolations; report.PrivacyViolations > base {
			v.Failures = append(v.Failures, Failure{
				Kind: FailPrivacy,
				Detail: fmt.Sprintf("%d governed item(s) observed at forbidden nodes (fault-free baseline: %d)",
					report.PrivacyViolations, base),
			})
		}
	}
	if !report.DesignChecksPassed {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailDesign,
			Detail: "design-time model checking failed",
		})
	}
	return v
}

// execute runs the simulation, converting a panic into a message.
func (o *Oracle) execute(s *fault.Schedule) (report core.Report, hash string, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprintf("%v", r)
		}
	}()
	cfg := o.cfg.Scenario
	cfg.Preset = core.FaultsNone
	cfg.Faults = s
	sys := core.NewSystem(cfg, o.cfg.Archetype)
	report = sys.Run()
	hash = sys.JournalHash()
	return report, hash, ""
}
