package chaos

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/observatory"
)

// Oracle judges candidate schedules: it runs each one through a fresh,
// deterministic core simulation and flags requirement-monitor failures,
// persistence below the floor, privacy violations, non-recovery before
// run end, failed design checks, and panics. Privacy is judged against
// the fault-free baseline of the same scenario, because ML2/ML3 leak
// governed items by design (the paper's Table 2) — the chaos property
// is "disruption must not cause violations beyond the architecture's
// baseline", which an empty schedule satisfies at every maturity level.
// Runs are independent, so one Oracle may be shared by concurrent
// workers.
type Oracle struct {
	cfg Config

	baselineOnce sync.Once
	baseline     core.Report
}

// NewOracle builds an oracle from a (possibly partial) config.
func NewOracle(cfg Config) *Oracle {
	return &Oracle{cfg: cfg.withDefaults()}
}

// Baseline returns the report of a fault-free run of the scenario,
// computed once on first use (safe under concurrent callers).
func (o *Oracle) Baseline() core.Report {
	o.baselineOnce.Do(func() {
		res := o.execute(&fault.Schedule{}, false)
		if res.panicMsg == "" {
			o.baseline = res.report
		}
	})
	return o.baseline
}

// Config returns the oracle's normalized configuration.
func (o *Oracle) Config() Config { return o.cfg }

// Run executes one candidate schedule to the scenario horizon and
// returns the verdict. A panicking run (the strongest counterexample a
// search can find) is recovered and reported as FailPanic. When the
// config sets FlightDir, a failing run additionally dumps the flight
// recorder's ring there as a structured artifact.
func (o *Oracle) Run(s *fault.Schedule) Verdict {
	res := o.execute(s, o.cfg.FlightDir != "")
	v := o.judge(res)
	if v.Failed() && res.recorder != nil {
		o.dumpFlight(res, v)
	}
	return v
}

// JudgeLive applies the oracle's properties to a run that happened
// outside the simulator — a realnet replay on live UDP sockets. The
// verdict carries no journal hash: live runs are wall-clock executions
// with no bit-for-bit determinism contract (DESIGN.md §14), so the
// oracle judges outcomes (persistence floor, non-recovery, privacy vs
// the simulated fault-free baseline, design checks) and nothing else.
func (o *Oracle) JudgeLive(report core.Report, journal []core.RunEvent) Verdict {
	return o.judge(runResult{report: report, journal: journal})
}

// judge applies the oracle's properties to an executed run.
func (o *Oracle) judge(res runResult) Verdict {
	if res.panicMsg != "" {
		return Verdict{Failures: []Failure{{Kind: FailPanic, Detail: res.panicMsg}}}
	}
	report, hash := res.report, res.hash
	v := Verdict{Report: report, JournalHash: hash, Journal: res.journal}
	if o.cfg.MinPersistence > 0 && report.GoalPersistence < o.cfg.MinPersistence {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailPersistence,
			Detail: fmt.Sprintf("R(goal)=%.3f below floor %.3f", report.GoalPersistence, o.cfg.MinPersistence),
		})
	}
	if report.UnresolvedViolations > 0 {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailNonRecovery,
			Detail: fmt.Sprintf("%d requirement(s) still violated at end of run", report.UnresolvedViolations),
		})
	}
	if report.PrivacyViolations > 0 {
		if base := o.Baseline().PrivacyViolations; report.PrivacyViolations > base {
			v.Failures = append(v.Failures, Failure{
				Kind: FailPrivacy,
				Detail: fmt.Sprintf("%d governed item(s) observed at forbidden nodes (fault-free baseline: %d)",
					report.PrivacyViolations, base),
			})
		}
	}
	if !report.DesignChecksPassed {
		v.Failures = append(v.Failures, Failure{
			Kind:   FailDesign,
			Detail: "design-time model checking failed",
		})
	}
	return v
}

// dumpFlight writes the failing run's flight-recorder ring to the
// configured FlightDir. Dump errors are reported as oracle progress
// events, never as verdict failures: the artifact is diagnostic.
func (o *Oracle) dumpFlight(res runResult, v Verdict) {
	reasons := make([]string, len(v.Failures))
	for i, f := range v.Failures {
		reasons[i] = f.String()
	}
	name := fmt.Sprintf("%s-panic", strings.ToLower(o.cfg.Archetype.ShortName()))
	if res.hash != "" {
		hash := res.hash
		if len(hash) > 8 {
			hash = hash[:8]
		}
		name = fmt.Sprintf("%s-%s", strings.ToLower(o.cfg.Archetype.ShortName()), hash)
	}
	dump := res.recorder.Dump(name, reasons)
	if path, err := dump.WriteFile(o.cfg.FlightDir); err != nil {
		o.cfg.Bus.Emit("chaos.flight.error", "", 0, 0, "%s: %v", name, err)
	} else {
		o.cfg.Bus.Emit("chaos.flight", "", 0, 0, "wrote %s (%d events)", path, len(dump.Events))
	}
}

// runResult is one simulated execution, pre-judgement.
type runResult struct {
	report   core.Report
	hash     string
	journal  []core.RunEvent
	recorder *observatory.FlightRecorder
	panicMsg string
}

// execute runs the simulation, converting a panic into a message. With
// record set it attaches a flight recorder to the run's bus; the caller
// owns the (already closed) recorder on return.
func (o *Oracle) execute(s *fault.Schedule, record bool) (res runResult) {
	defer func() {
		if r := recover(); r != nil {
			res.panicMsg = fmt.Sprintf("%v", r)
		}
	}()
	cfg := o.cfg.Scenario
	cfg.Preset = core.FaultsNone
	cfg.Faults = s
	sys := core.NewSystem(cfg, o.cfg.Archetype)
	if record {
		res.recorder = observatory.NewFlightRecorder(sys.Bus(), 0)
		defer res.recorder.Close()
	}
	res.report = sys.Run()
	res.hash = sys.JournalHash()
	if o.cfg.KeepJournal {
		res.journal = sys.Journal()
	}
	return res
}
