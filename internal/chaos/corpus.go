package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
)

// CorpusSchema tags counterexample files; bump on incompatible change.
const CorpusSchema = "riotchaos/counterexample/v1"

// Counterexample is one minimized failing schedule, serialized with
// everything needed to replay it bit-for-bit: the scenario pins, the
// schedule, the expected failure kinds and the journal hash the replay
// must reproduce. Files are self-contained JSON so a corpus doubles as
// human-readable documentation of every violation ever found.
type Counterexample struct {
	Schema string `json:"schema"`
	// Name identifies the counterexample; the corpus file is Name.json.
	Name string `json:"name"`
	// Found records provenance (search seed, date) for humans.
	Found string `json:"found,omitempty"`

	// Scenario pins. Fields omitted here keep DefaultScenario values;
	// a default change that affects the run will surface as a replay
	// hash mismatch, which is exactly when the corpus needs re-minimizing.
	Archetype          string  `json:"archetype"`
	Seed               int64   `json:"seed"`
	Zones              int     `json:"zones"`
	TempSensorsPerZone int     `json:"temp_sensors_per_zone"`
	Cloudlets          int     `json:"cloudlets"`
	Duration           string  `json:"duration"`
	MinPersistence     float64 `json:"min_persistence"`

	Schedule *fault.Schedule `json:"schedule"`

	// Expected outcome.
	Failures        []FailureKind `json:"failures"`
	GoalPersistence float64       `json:"goal_persistence"`
	JournalHash     string        `json:"journal_hash"`

	// Expect states what `riotchaos verify` should see when the entry
	// replays against the *hardened* scenario profile
	// (core.ScenarioConfig.Hardened): ExpectFixed for counterexamples
	// the resilience mechanisms close, ExpectStillFails for maturity
	// gaps that are supposed to stay open (ML1 has no mechanism to fix
	// them — that ordering is the paper's Table 1 vs Table 2 claim).
	// Empty means ExpectStillFails. Plain `replay` ignores this field:
	// its contract pins the default-knob run bit-for-bit.
	Expect string `json:"expect,omitempty"`
}

// Expect values.
const (
	ExpectStillFails = "still-fails"
	ExpectFixed      = "fixed"
)

// expectation normalizes the Expect field.
func (ce *Counterexample) expectation() string {
	if ce.Expect == ExpectFixed {
		return ExpectFixed
	}
	return ExpectStillFails
}

// NewCounterexample captures a minimized search find under the given
// oracle config.
func NewCounterexample(cfg Config, sr ShrinkResult) *Counterexample {
	cfg = cfg.withDefaults()
	sc := cfg.Scenario
	if sc.Duration == 0 {
		sc.Duration = core.DefaultScenario().Duration
	}
	ce := &Counterexample{
		Schema:             CorpusSchema,
		Archetype:          cfg.Archetype.ShortName(),
		Seed:               sc.Seed,
		Zones:              sc.Zones,
		TempSensorsPerZone: sc.TempSensorsPerZone,
		Cloudlets:          sc.Cloudlets,
		Duration:           sc.Duration.String(),
		MinPersistence:     cfg.MinPersistence,
		Schedule:           sr.Schedule,
		Failures:           sr.Verdict.Kinds(),
		GoalPersistence:    sr.Verdict.Report.GoalPersistence,
		JournalHash:        sr.Verdict.JournalHash,
	}
	ce.setName()
	return ce
}

// setName derives the canonical entry name from the archetype, the
// leading failure kind and the journal-hash prefix.
func (ce *Counterexample) setName() {
	kind := "failure"
	if len(ce.Failures) > 0 {
		kind = string(ce.Failures[0])
	}
	hash := ce.JournalHash
	if len(hash) > 8 {
		hash = hash[:8]
	}
	ce.Name = fmt.Sprintf("%s-%s-%s", strings.ToLower(ce.Archetype), kind, hash)
}

// Refresh re-runs the counterexample at default knobs and re-records
// its expected outcome: failure kinds, goal persistence, journal hash
// and the hash-suffixed name. It is the maintained path after an
// intentional behavioral change to the simulated stack (e.g. a wire-
// protocol rework) moves every journal hash. Every recorded failure
// kind must still recur — an entry the change actually fixes needs
// re-minimizing with `search`/`shrink`, not refreshing. Returns true
// when anything was re-recorded.
func (ce *Counterexample) Refresh() (bool, error) {
	cfg, err := ce.Config()
	if err != nil {
		return false, err
	}
	v := NewOracle(cfg).Run(ce.Schedule)
	for _, want := range ce.Failures {
		if !v.HasKind(want) {
			return false, fmt.Errorf("counterexample %s: failure %q no longer reproduces (got: %s); re-minimize instead of refreshing",
				ce.Name, want, v)
		}
	}
	changed := v.JournalHash != ce.JournalHash || v.Report.GoalPersistence != ce.GoalPersistence
	ce.Failures = v.Kinds()
	ce.GoalPersistence = v.Report.GoalPersistence
	ce.JournalHash = v.JournalHash
	ce.setName()
	return changed, nil
}

// Config rebuilds the oracle configuration the counterexample was
// found under.
func (ce *Counterexample) Config() (Config, error) {
	arch, err := core.ParseArchetype(ce.Archetype)
	if err != nil {
		return Config{}, fmt.Errorf("counterexample %s: %w", ce.Name, err)
	}
	dur, err := time.ParseDuration(ce.Duration)
	if err != nil {
		return Config{}, fmt.Errorf("counterexample %s: duration: %w", ce.Name, err)
	}
	sc := core.DefaultScenario()
	sc.Seed = ce.Seed
	sc.Zones = ce.Zones
	sc.TempSensorsPerZone = ce.TempSensorsPerZone
	sc.Cloudlets = ce.Cloudlets
	sc.Duration = dur
	return Config{Scenario: sc, Archetype: arch, MinPersistence: ce.MinPersistence}, nil
}

// HardenedConfig rebuilds the oracle configuration with every
// resilience knob on — the profile verify runs against.
func (ce *Counterexample) HardenedConfig() (Config, error) {
	cfg, err := ce.Config()
	if err != nil {
		return Config{}, err
	}
	cfg.Scenario = cfg.Scenario.Hardened()
	return cfg, nil
}

// Replay re-runs the counterexample and verifies it reproduces: every
// recorded failure kind must recur and the journal hash must match
// byte-for-byte (the regression contract — any behavioral drift in the
// simulated stack surfaces here).
func (ce *Counterexample) Replay() error {
	cfg, err := ce.Config()
	if err != nil {
		return err
	}
	v := NewOracle(cfg).Run(ce.Schedule)
	for _, want := range ce.Failures {
		if !v.HasKind(want) {
			return fmt.Errorf("counterexample %s: failure %q did not reproduce (got: %s)", ce.Name, want, v)
		}
	}
	if v.JournalHash != ce.JournalHash {
		return fmt.Errorf("counterexample %s: journal hash drifted: recorded %s, replay %s",
			ce.Name, ce.JournalHash, v.JournalHash)
	}
	return nil
}

// WriteFile writes the counterexample as <dir>/<Name>.json (creating
// dir) and returns the path.
func (ce *Counterexample) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, ce.Name+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCorpus reads every *.json counterexample in dir, sorted by file
// name for deterministic replay order.
func LoadCorpus(dir string) ([]*Counterexample, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Counterexample
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var ce Counterexample
		if err := json.Unmarshal(data, &ce); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ce.Schema != CorpusSchema {
			return nil, fmt.Errorf("%s: schema %q, want %q", path, ce.Schema, CorpusSchema)
		}
		out = append(out, &ce)
	}
	return out, nil
}

// VerifyResult is one corpus entry's outcome under the hardened
// profile.
type VerifyResult struct {
	Name   string
	Expect string // what the corpus entry declares
	Status string // what the hardened run produced
	// R is the hardened run's goal persistence; RecordedR the
	// persistence recorded when the entry was found (default knobs).
	R         float64
	RecordedR float64
	// Detail summarizes the surviving failures when Status is
	// still-fails ("" when fixed).
	Detail string
	// Journal is the hardened run's event journal, for incident
	// analysis (riotscope, verify -explain). Nil on config errors.
	Journal []core.RunEvent
	// Err is set on a config error or an expectation mismatch.
	Err error
}

// VerifyOptions tunes corpus verification beyond pass/fail.
type VerifyOptions struct {
	// FlightDir, when non-empty, dumps a flight-recorder artifact there
	// for every entry whose hardened run still fails.
	FlightDir string
}

// Verify replays the counterexample's schedule against the hardened
// scenario profile and classifies the entry: ExpectFixed when the
// oracle passes the run outright (no failure of any kind — stricter
// than "the recorded kinds no longer recur", so a fix cannot trade one
// failure class for another), ExpectStillFails otherwise. Unlike
// Replay it does not compare journal hashes: the hardened run is a
// different execution by design; the recorded hash pins only the
// default-knob replay. The hardened run's journal is always retained
// on the result — twelve short runs make journal capture free, and it
// is what verify -explain and riotscope analyze.
func (ce *Counterexample) Verify() VerifyResult {
	return ce.VerifyObserved(VerifyOptions{})
}

// VerifyObserved is Verify with observability options applied.
func (ce *Counterexample) VerifyObserved(opts VerifyOptions) VerifyResult {
	res := VerifyResult{Name: ce.Name, Expect: ce.expectation(), RecordedR: ce.GoalPersistence}
	cfg, err := ce.HardenedConfig()
	if err != nil {
		res.Err = err
		return res
	}
	cfg.KeepJournal = true
	cfg.FlightDir = opts.FlightDir
	v := NewOracle(cfg).Run(ce.Schedule)
	res.R = v.Report.GoalPersistence
	res.Journal = v.Journal
	if v.Failed() {
		res.Status = ExpectStillFails
		res.Detail = v.String()
	} else {
		res.Status = ExpectFixed
	}
	if res.Status != res.Expect {
		res.Err = fmt.Errorf("counterexample %s: hardened run is %s (R=%.3f), corpus expects %s",
			ce.Name, res.Status, res.R, res.Expect)
	}
	return res
}

// VerifyAll verifies every counterexample against the hardened profile,
// fanning over a RunPool at the given worker count. Results come back
// in corpus order whatever the parallelism; the returned error is the
// first expectation mismatch (all entries are verified regardless).
func VerifyAll(ces []*Counterexample, workers int) ([]VerifyResult, error) {
	return VerifyAllObserved(ces, workers, VerifyOptions{})
}

// VerifyAllObserved is VerifyAll with observability options applied to
// every entry.
func VerifyAllObserved(ces []*Counterexample, workers int, opts VerifyOptions) ([]VerifyResult, error) {
	results := make([]VerifyResult, len(ces))
	jobs := make([]experiments.Job, len(ces))
	for i, ce := range ces {
		i, ce := i, ce
		jobs[i] = experiments.Job{
			ID: ce.Name,
			Run: func(int) error {
				results[i] = ce.VerifyObserved(opts)
				return nil // mismatches are reported per entry, not as pool aborts
			},
		}
	}
	if err := experiments.RunPool(workers, jobs); err != nil {
		return results, err
	}
	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return results, nil
}

// ReplayResult is one corpus entry's replay outcome.
type ReplayResult struct {
	Name string
	Err  error
}

// ReplayAll replays every counterexample, fanning over a RunPool at the
// given worker count. Results come back in corpus order whatever the
// parallelism; the returned error is the first failure (all entries are
// replayed regardless, so the per-entry results are complete).
func ReplayAll(ces []*Counterexample, workers int) ([]ReplayResult, error) {
	results := make([]ReplayResult, len(ces))
	jobs := make([]experiments.Job, len(ces))
	for i, ce := range ces {
		i, ce := i, ce
		jobs[i] = experiments.Job{
			ID: ce.Name,
			Run: func(int) error {
				results[i] = ReplayResult{Name: ce.Name, Err: ce.Replay()}
				return nil // verification failures are reported per entry, not as pool aborts
			},
		}
	}
	if err := experiments.RunPool(workers, jobs); err != nil {
		return results, err
	}
	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return results, nil
}
