package chaos

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

// corpusConfig mirrors the committed corpus pins: default scenario,
// seed 1, the default persistence floor.
func corpusConfig(arch core.Archetype) Config {
	sc := core.DefaultScenario()
	sc.Duration = 6 * time.Minute
	return Config{Scenario: sc, Archetype: arch}
}

// deviceSidePartition reproduces the corpus's device-side island shape
// (ml4-low-persistence-a7d01ef6): the cloud, both cloudlets and two
// gateways split away, stranding the remaining gateways with every
// sensor and actuator — a no-quorum island that must keep controlling
// its zones.
func deviceSidePartition(sc core.ScenarioConfig) *fault.Schedule {
	topo := core.TopologyOf(sc)
	quorumSide := []simnet.NodeID{topo.Cloud, topo.Cloudlets[0], topo.Cloudlets[1],
		topo.Gateways[1], topo.Gateways[2]}
	island := remainder(topo.All(), quorumSide)
	s := &fault.Schedule{}
	s.Partition(76*time.Second, 0, quorumSide, island)
	return s
}

// TestHardenedML4FixesDeviceSidePartition is the tentpole acceptance
// pinned as a go test: the unrepaired device-side partition that drops
// default ML4 far below the floor must pass outright once the island
// mechanisms are on, with R at least 0.60 above the recorded ~0.18.
func TestHardenedML4FixesDeviceSidePartition(t *testing.T) {
	cfg := corpusConfig(core.ML4)
	s := deviceSidePartition(cfg.Scenario)

	if v := NewOracle(cfg).Run(s); !v.Failed() {
		t.Fatalf("default ML4 survives the device-side partition; the counterexample is stale: %s", v)
	}
	hard := cfg
	hard.Scenario = hard.Scenario.Hardened()
	v := NewOracle(hard).Run(s)
	if v.Failed() {
		t.Fatalf("hardened ML4 still fails the device-side partition: %s", v)
	}
	if v.Report.GoalPersistence < 0.60 {
		t.Fatalf("hardened R(goal) = %.3f, want >= 0.60", v.Report.GoalPersistence)
	}
}

// TestHardenedBackupActuatorMaturityOrdering pins the actuator-loss
// pair: an unrepaired z0-act crash is fixed by the hardened ML4 (the
// planner fails actuation over to the gossip-detected backup) but must
// keep failing on hardened ML1, whose static loop never commands a
// backup — the Table 1 vs Table 2 maturity ordering.
func TestHardenedBackupActuatorMaturityOrdering(t *testing.T) {
	s := (&fault.Schedule{}).Crash(217*time.Second, "z0-act", 0)

	hard4 := corpusConfig(core.ML4)
	hard4.Scenario = hard4.Scenario.Hardened()
	if v := NewOracle(hard4).Run(s); v.Failed() {
		t.Fatalf("hardened ML4 loses its zone to an actuator crash: %s", v)
	}
	hard1 := corpusConfig(core.ML1)
	hard1.Scenario = hard1.Scenario.Hardened()
	if v := NewOracle(hard1).Run(s); !v.Failed() {
		t.Fatal("hardened ML1 survived an unrepaired actuator crash; the maturity ordering collapsed")
	}
}

// TestHardenedRunDeterministic re-runs the hardened island scenario and
// requires bit-identical journals: the resilience path must honor the
// same determinism contract as the default one.
func TestHardenedRunDeterministic(t *testing.T) {
	cfg := corpusConfig(core.ML4)
	cfg.Scenario = cfg.Scenario.Hardened()
	s := deviceSidePartition(cfg.Scenario)
	o := NewOracle(cfg)
	v1, v2 := o.Run(s), o.Run(s)
	if v1.JournalHash != v2.JournalHash {
		t.Fatalf("hardened runs diverge: %s vs %s", v1.JournalHash, v2.JournalHash)
	}
}

// TestVerifyAllWorkerCountInvariance runs the same synthetic corpus
// serially and with 4 workers: statuses and persistence values must not
// depend on parallelism.
func TestVerifyAllWorkerCountInvariance(t *testing.T) {
	cfg := corpusConfig(core.ML4)
	o := NewOracle(cfg)
	s := deviceSidePartition(cfg.Scenario)
	v := o.Run(s)
	if !v.Failed() {
		t.Fatal("seed schedule passes")
	}
	ce := NewCounterexample(cfg, Shrink(o, s, v, 0))
	ce.Expect = ExpectFixed
	ces := []*Counterexample{ce}

	serial, err := VerifyAll(ces, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := VerifyAll(ces, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial[0].Status != wide[0].Status || serial[0].R != wide[0].R {
		t.Fatalf("verify diverges across worker counts: %+v vs %+v", serial[0], wide[0])
	}
	if serial[0].Status != ExpectFixed {
		t.Fatalf("shrunken island counterexample not fixed: %+v", serial[0])
	}
}

// TestVerifyReportsExpectationMismatch declares a still-broken entry as
// fixed and requires Verify to flag the lie.
func TestVerifyReportsExpectationMismatch(t *testing.T) {
	cfg := corpusConfig(core.ML1)
	o := NewOracle(cfg)
	topo := core.TopologyOf(cfg.Scenario)
	s := (&fault.Schedule{}).Crash(time.Minute, topo.Gateways[0], 0)
	v := o.Run(s)
	if !v.Failed() {
		t.Fatal("seed schedule passes")
	}
	ce := NewCounterexample(cfg, Shrink(o, s, v, 0))
	ce.Expect = ExpectFixed // hardened ML1 cannot fix a dead gateway
	res := ce.Verify()
	if res.Err == nil || res.Status != ExpectStillFails {
		t.Fatalf("mismatch not reported: %+v", res)
	}
	if _, err := VerifyAll([]*Counterexample{ce}, 2); err == nil {
		t.Fatal("VerifyAll swallowed the mismatch")
	}
}
