package chaos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/simnet"
)

// Found is one violating candidate, minimized.
type Found struct {
	// Index is the candidate's position in the campaign.
	Index int
	// Schedule is the candidate as generated; Minimal the shrunk
	// counterexample (Shrink result, including its verdict).
	Schedule *fault.Schedule
	Minimal  ShrinkResult
}

// SearchResult summarizes one chaos-search campaign.
type SearchResult struct {
	// Budget is the number of candidate schedules evaluated.
	Budget int
	// OracleRuns counts every simulation executed: budget candidates
	// plus all shrinking steps.
	OracleRuns int
	// Found lists violating candidates in index order, minimized.
	Found []Found
}

// Search runs a chaos campaign: budget candidate schedules derived from
// seed are judged by the oracle, and every failing candidate is
// delta-debugged to a minimal counterexample. Candidate evaluation and
// shrinking fan out over an experiments.RunPool with the given worker
// count; every result lands in a per-candidate slot, so the outcome is
// identical at any parallelism. Progress is published on cfg.Bus as
// chaos.* events.
func Search(cfg Config, seed int64, budget, workers int) (*SearchResult, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("chaos: search budget must be positive, got %d", budget)
	}
	oracle := NewOracle(cfg)
	cfg = oracle.Config()
	gen := NewGenerator(cfg)
	bus := cfg.Bus

	// Phase 1: derive all candidates up front (cheap, no simulation),
	// then judge them in parallel.
	schedules := make([]*fault.Schedule, budget)
	for i := range schedules {
		schedules[i] = gen.Candidate(seed, i)
	}
	bus.Emit("chaos.search.start", "", 0, 0,
		"arch=%s budget=%d seed=%d workers=%d", cfg.Archetype.ShortName(), budget, seed, workers)

	verdicts := make([]Verdict, budget)
	judge := make([]experiments.Job, budget)
	for i := range judge {
		i := i
		judge[i] = experiments.Job{
			ID: fmt.Sprintf("candidate-%d", i),
			Run: func(int) error {
				verdicts[i] = oracle.Run(schedules[i])
				if verdicts[i].Failed() {
					bus.Emit("chaos.violation", "", 0, 0,
						"candidate %d (%d events): %s", i, schedules[i].Len(), verdicts[i])
				} else {
					bus.Emit("chaos.candidate", "", 0, 0,
						"candidate %d passed (R=%.3f)", i, verdicts[i].Report.GoalPersistence)
				}
				return nil
			},
		}
	}
	if err := experiments.RunPool(workers, judge); err != nil {
		return nil, err
	}

	res := &SearchResult{Budget: budget, OracleRuns: budget}
	var failing []int
	for i, v := range verdicts {
		if v.Failed() {
			failing = append(failing, i)
		}
	}

	// Phase 2: shrink each violation. Shrinks are independent searches,
	// so they ride the same pool; per-slot writes keep order stable.
	found := make([]Found, len(failing))
	shrink := make([]experiments.Job, len(failing))
	for fi, ci := range failing {
		fi, ci := fi, ci
		shrink[fi] = experiments.Job{
			ID: fmt.Sprintf("shrink-%d", ci),
			Run: func(int) error {
				sr := Shrink(oracle, schedules[ci], verdicts[ci], 0)
				found[fi] = Found{Index: ci, Schedule: schedules[ci], Minimal: sr}
				bus.Emit("chaos.shrink", "", 0, 0,
					"candidate %d minimized %d→%d events in %d runs: %s",
					ci, sr.FromEvents, sr.ToEvents, sr.Runs, sr.Verdict)
				return nil
			},
		}
	}
	if err := experiments.RunPool(workers, shrink); err != nil {
		return nil, err
	}
	for _, f := range found {
		res.OracleRuns += f.Minimal.Runs
	}
	res.Found = found
	bus.Emit("chaos.search.done", "", 0, 0,
		"%d/%d candidates violated, %d oracle runs total", len(found), budget, res.OracleRuns)
	return res, nil
}

// DedupFound drops finds whose minimal schedule has the same shape —
// failure kinds plus the time-free event signature — as an earlier one
// (earlier index wins): distinct candidates routinely shrink to the
// same root cause at slightly different instants.
func DedupFound(found []Found) []Found {
	seen := make(map[string]bool, len(found))
	var out []Found
	for _, f := range found {
		key := signature(f.Minimal)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}

// signature renders a shrink result's shape: failure kinds and each
// event's kind/targets, with times elided.
func signature(sr ShrinkResult) string {
	var b strings.Builder
	for _, k := range sr.Verdict.Kinds() {
		fmt.Fprintf(&b, "%s;", k)
	}
	for _, ev := range sr.Schedule.Events() {
		fmt.Fprintf(&b, "|%s:%s:%s:%s", ev.Kind, ev.Node, ev.From, ev.To)
		for _, g := range ev.Groups {
			sorted := append([]simnet.NodeID(nil), g...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			fmt.Fprintf(&b, ":g%v", sorted)
		}
	}
	return b.String()
}
