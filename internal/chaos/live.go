package chaos

import (
	"fmt"

	"repro/internal/core"
)

// LiveOptions tunes a realnet corpus replay.
type LiveOptions struct {
	// TimeScale compresses virtual time onto the wall clock (see
	// core.LiveConfig). Zero selects 0.1: a 6-minute corpus entry
	// replays in ~36 s of wall time.
	TimeScale float64
	// Hardened replays against the hardened scenario profile instead
	// of the default knobs the entry was found under.
	Hardened bool
}

// LiveOutcome is one corpus entry's realnet replay result.
type LiveOutcome struct {
	Name string
	// Expect is the entry's declared hardened expectation
	// (still-fails/fixed); for default-knob replays a counterexample
	// is by definition expected to fail.
	Expect string
	// Status classifies the live run like Verify does: still-fails
	// when the oracle flagged it, fixed otherwise.
	Status  string
	Verdict Verdict
	Report  core.Report
	Info    core.LiveInfo
	// Err is set on boot/config errors or when any schedule event
	// failed to arm — a corpus entry must replay fully armed.
	Err error
}

// ReplayLive replays the counterexample's schedule on real UDP sockets:
// the same topology and protocols boot as loopback processes, the
// schedule arms on wall-clock timers, and the oracle judges the
// outcome. No journal hash is compared — live runs carry no bit-level
// determinism contract (DESIGN.md §14); the properties under test are
// outcome-level, exactly the ones the oracle checks in simulation.
func (ce *Counterexample) ReplayLive(opts LiveOptions) LiveOutcome {
	out := LiveOutcome{Name: ce.Name, Expect: ce.expectation()}
	cfg, err := ce.Config()
	if !opts.Hardened {
		out.Expect = ExpectStillFails
	} else if err == nil {
		cfg, err = ce.HardenedConfig()
	}
	if err != nil {
		out.Err = err
		return out
	}
	scale := opts.TimeScale
	if scale <= 0 {
		scale = 0.1
	}
	sc := cfg.Scenario
	sc.Preset = core.FaultsNone
	sc.Faults = ce.Schedule
	sys, err := core.NewLiveSystem(sc, cfg.Archetype, core.LiveConfig{TimeScale: scale})
	if err != nil {
		out.Err = err
		return out
	}
	report, info, err := sys.RunLive()
	out.Report, out.Info = report, info
	if err != nil {
		out.Err = err
		return out
	}
	if info.Skipped > 0 {
		out.Err = fmt.Errorf("counterexample %s: %d schedule event(s) failed to arm on realnet", ce.Name, info.Skipped)
		return out
	}
	out.Verdict = NewOracle(cfg).JudgeLive(report, sys.Journal())
	if out.Verdict.Failed() {
		out.Status = ExpectStillFails
	} else {
		out.Status = ExpectFixed
	}
	return out
}
