package chaos

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// testConfig is a short ML1 scenario: fast to simulate, and fragile
// enough (no failover) that injected faults reliably violate.
func testConfig(arch core.Archetype) Config {
	sc := core.DefaultScenario()
	sc.Duration = 4 * time.Minute
	return Config{Scenario: sc, Archetype: arch}
}

func TestOracleEmptySchedulePasses(t *testing.T) {
	for _, arch := range core.AllArchetypes() {
		v := NewOracle(testConfig(arch)).Run(&fault.Schedule{})
		if v.Failed() {
			t.Errorf("%s: empty schedule fails the oracle: %s", arch, v)
		}
		if v.JournalHash == "" {
			t.Errorf("%s: no journal hash", arch)
		}
	}
}

func TestOracleCrashEveryNodeReportsNonRecovery(t *testing.T) {
	// The total-loss schedule: every node in the topology goes down a
	// minute in and never comes back. The system must terminate and
	// report non-recovery — not hang, not panic.
	cfg := testConfig(core.ML4)
	s := &fault.Schedule{}
	for _, n := range core.TopologyOf(cfg.Scenario).All() {
		s.Crash(time.Minute, n, 0)
	}
	done := make(chan Verdict, 1)
	go func() { done <- NewOracle(cfg).Run(s) }()
	var v Verdict
	select {
	case v = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("oracle hung on the crash-everything schedule")
	}
	if !v.HasKind(FailNonRecovery) {
		t.Fatalf("total loss not flagged as non-recovery: %s", v)
	}
	if v.HasKind(FailPanic) {
		t.Fatalf("total loss panicked: %s", v)
	}
}

func TestOracleFlagsUnrepairedGatewayCrashOnML1(t *testing.T) {
	s := &fault.Schedule{}
	s.Crash(time.Minute, core.TopologyOf(core.DefaultScenario()).Gateways[0], 0)
	v := NewOracle(testConfig(core.ML1)).Run(s)
	if !v.Failed() {
		t.Fatal("ML1 survived an unrepaired gateway crash?")
	}
	if !v.HasKind(FailNonRecovery) {
		t.Fatalf("expected non-recovery, got: %s", v)
	}
}

func TestOracleDeterministic(t *testing.T) {
	cfg := testConfig(core.ML1)
	s := &fault.Schedule{}
	s.Crash(time.Minute, core.TopologyOf(cfg.Scenario).Gateways[1], 0)
	o := NewOracle(cfg)
	v1, v2 := o.Run(s), o.Run(s)
	if v1.JournalHash != v2.JournalHash {
		t.Fatalf("same schedule, different journals: %s vs %s", v1.JournalHash, v2.JournalHash)
	}
	if !reflect.DeepEqual(v1.Failures, v2.Failures) {
		t.Fatalf("same schedule, different failures: %v vs %v", v1.Failures, v2.Failures)
	}
}

func TestShrinkReachesSingleEvent(t *testing.T) {
	// One fatal event (unrepaired gateway crash) padded with six
	// harmless events: shrinking must strip the padding down to the
	// single event that matters.
	cfg := testConfig(core.ML1)
	topo := core.TopologyOf(cfg.Scenario)
	s := &fault.Schedule{}
	s.Crash(time.Minute, topo.Gateways[0], 0)
	s.UpgradeStack(30*time.Second, topo.Gateways[1])
	s.UpgradeStack(40*time.Second, topo.Gateways[2])
	s.TransferDomain(50*time.Second, topo.Sensors[0], "cloudprov")
	s.DegradeLink(70*time.Second, 10*time.Second, topo.Gateways[3], topo.Cloud, 100*time.Millisecond, 0.1)
	s.UpgradeStack(80*time.Second, topo.Cloudlets[0])
	s.UpgradeStack(90*time.Second, topo.Cloudlets[1])

	o := NewOracle(cfg)
	v := o.Run(s)
	if !v.Failed() {
		t.Fatal("padded schedule does not fail")
	}
	sr := Shrink(o, s, v, 0)
	if sr.ToEvents != 1 {
		t.Fatalf("shrunk to %d events, want 1:\n%s", sr.ToEvents, sr.Schedule)
	}
	ev := sr.Schedule.Events()[0]
	if ev.Kind != fault.KindCrash || ev.Node != topo.Gateways[0] {
		t.Fatalf("wrong surviving event: %+v", ev)
	}
	if !sr.Verdict.sharesKind(v.Kinds()) {
		t.Fatalf("minimal schedule lost the original failure: %s vs %s", sr.Verdict, v)
	}
	if sr.FromEvents != 8 { // crash + 6 pads + link restore
		t.Fatalf("FromEvents = %d", sr.FromEvents)
	}
}

func TestGeneratorCandidatesDeterministic(t *testing.T) {
	g1, g2 := NewGenerator(testConfig(core.ML1)), NewGenerator(testConfig(core.ML1))
	for i := 0; i < 40; i++ {
		a, b := g1.Candidate(42, i), g2.Candidate(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("candidate %d differs across generators", i)
		}
		if a.Len() == 0 {
			t.Fatalf("candidate %d is empty", i)
		}
		for _, ev := range a.Events() {
			if ev.At < 0 || ev.At >= 4*time.Minute {
				t.Fatalf("candidate %d event outside horizon: %+v", i, ev)
			}
		}
	}
	if reflect.DeepEqual(g1.Candidate(42, 0), g1.Candidate(43, 0)) {
		t.Fatal("different search seeds produced identical candidates")
	}
}

func TestSearchFindsAndShrinksOnML1(t *testing.T) {
	res, err := Search(testConfig(core.ML1), 1, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Found) == 0 {
		t.Fatal("budget-12 ML1 search found nothing")
	}
	for _, f := range res.Found {
		if !f.Minimal.Verdict.Failed() {
			t.Fatalf("candidate %d: minimal schedule passes", f.Index)
		}
		if f.Minimal.ToEvents > f.Minimal.FromEvents {
			t.Fatalf("candidate %d grew while shrinking: %d→%d", f.Index, f.Minimal.FromEvents, f.Minimal.ToEvents)
		}
	}
	if res.OracleRuns <= res.Budget {
		t.Fatalf("oracle runs %d should exceed budget %d (shrinking ran)", res.OracleRuns, res.Budget)
	}
}

func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Search(testConfig(core.ML1), 7, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Search(testConfig(core.ML1), 7, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("search results differ between 1 and 4 workers")
	}
}

func TestSearchEmitsObsEvents(t *testing.T) {
	cfg := testConfig(core.ML1)
	cfg.Bus = obs.NewBus(nil)
	sub := cfg.Bus.Subscribe(256)
	defer sub.Close()
	if _, err := Search(cfg, 1, 4, 1); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, ev := range sub.Events() {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"chaos.search.start", "chaos.violation", "chaos.search.done"} {
		if !kinds[want] {
			t.Errorf("no %s event on the bus (got %v)", want, kinds)
		}
	}
}

func TestCorpusRoundTripAndReplay(t *testing.T) {
	cfg := testConfig(core.ML1)
	o := NewOracle(cfg)
	topo := core.TopologyOf(cfg.Scenario)
	s := &fault.Schedule{}
	s.Crash(time.Minute, topo.Gateways[0], 0)
	v := o.Run(s)
	if !v.Failed() {
		t.Fatal("seed schedule passes")
	}
	sr := Shrink(o, s, v, 0)
	ce := NewCounterexample(cfg, sr)
	if ce.Name == "" || ce.JournalHash == "" || len(ce.Failures) == 0 {
		t.Fatalf("incomplete counterexample: %+v", ce)
	}

	dir := t.TempDir()
	path, err := ce.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("wrote outside dir: %s", path)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Name != ce.Name {
		t.Fatalf("loaded %+v", loaded)
	}
	if !reflect.DeepEqual(loaded[0], ce) {
		t.Fatalf("corpus round trip differs:\n%+v\nvs\n%+v", loaded[0], ce)
	}

	// Replay serially and with 4 workers: both must reproduce.
	for _, workers := range []int{1, 4} {
		results, err := ReplayAll(loaded, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 1 || results[0].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, results)
		}
	}
}

func TestReplayDetectsHashDrift(t *testing.T) {
	cfg := testConfig(core.ML1)
	o := NewOracle(cfg)
	s := &fault.Schedule{}
	s.Crash(time.Minute, core.TopologyOf(cfg.Scenario).Gateways[0], 0)
	v := o.Run(s)
	sr := Shrink(o, s, v, 0)
	ce := NewCounterexample(cfg, sr)
	ce.JournalHash = "0000deadbeef"
	err := ce.Replay()
	if err == nil || !strings.Contains(err.Error(), "journal hash drifted") {
		t.Fatalf("tampered hash not detected: %v", err)
	}
}

func TestReplayDetectsMissingFailure(t *testing.T) {
	cfg := testConfig(core.ML4) // ML4 heals a repaired crash: no failure
	ce := &Counterexample{
		Schema:             CorpusSchema,
		Name:               "bogus",
		Archetype:          "ML4",
		Seed:               cfg.Scenario.Seed,
		Zones:              cfg.Scenario.Zones,
		TempSensorsPerZone: cfg.Scenario.TempSensorsPerZone,
		Cloudlets:          cfg.Scenario.Cloudlets,
		Duration:           cfg.Scenario.Duration.String(),
		MinPersistence:     -1, // disable the floor: nothing should fail
		Schedule:           &fault.Schedule{},
		Failures:           []FailureKind{FailNonRecovery},
	}
	err := ce.Replay()
	if err == nil || !strings.Contains(err.Error(), "did not reproduce") {
		t.Fatalf("phantom failure not detected: %v", err)
	}
}

func TestDedupFound(t *testing.T) {
	cfg := testConfig(core.ML1)
	o := NewOracle(cfg)
	mk := func(at time.Duration) Found {
		s := &fault.Schedule{}
		s.Crash(at, core.TopologyOf(cfg.Scenario).Gateways[0], 0)
		v := o.Run(s)
		return Found{Schedule: s, Minimal: ShrinkResult{Schedule: s, Verdict: v, FromEvents: 1, ToEvents: 1}}
	}
	// Same shape at different times → one survivor.
	got := DedupFound([]Found{mk(time.Minute), mk(90 * time.Second)})
	if len(got) != 1 {
		t.Fatalf("dedup kept %d of 2 same-shape finds", len(got))
	}
}

func TestGeneratorMinEventsFloorsCandidates(t *testing.T) {
	base := testConfig(core.ML4)
	floored := base
	floored.MinEvents = 6
	g := NewGenerator(floored)
	for i := 0; i < 32; i++ {
		if n := g.Candidate(11, i).Len(); n < 6 {
			t.Fatalf("candidate %d has %d events, want >= 6", i, n)
		}
	}
	// Flooring must not break derivation purity: the same (seed, index)
	// yields the same schedule on every call, so campaigns stay
	// identical at any worker count.
	g2 := NewGenerator(floored)
	for i := 0; i < 32; i++ {
		if a, b := g.Candidate(11, i), g2.Candidate(11, i); a.String() != b.String() {
			t.Fatalf("candidate %d not pure under MinEvents:\n%s\nvs\n%s", i, a, b)
		}
	}
}
