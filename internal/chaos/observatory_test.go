package chaos

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/observatory"
)

// failingSchedule crashes the zone-0 gateway and never repairs it — the
// canonical non-recovery counterexample for low-maturity archetypes.
func failingSchedule() *fault.Schedule {
	return (&fault.Schedule{}).Crash(2*time.Minute, "gw-0", 0)
}

func quickConfig() Config {
	sc := core.DefaultScenario()
	sc.Duration = 8 * time.Minute
	return Config{Scenario: sc, Archetype: core.ML1}
}

func TestOracleKeepJournal(t *testing.T) {
	cfg := quickConfig()

	bare := NewOracle(cfg).Run(failingSchedule())
	if bare.Journal != nil {
		t.Fatalf("journal kept without KeepJournal: %d events", len(bare.Journal))
	}

	cfg.KeepJournal = true
	kept := NewOracle(cfg).Run(failingSchedule())
	if len(kept.Journal) == 0 {
		t.Fatal("KeepJournal produced no journal")
	}
	if kept.JournalHash != bare.JournalHash {
		t.Fatalf("keeping the journal changed the run: %s vs %s", kept.JournalHash, bare.JournalHash)
	}
	a := observatory.Analyze(kept.Journal, observatory.Options{
		Duration: cfg.Scenario.Duration, Zones: cfg.Scenario.Zones,
	})
	if len(a.Incidents) == 0 {
		t.Fatal("failing run analyzed to zero incidents")
	}
}

func TestOracleFlightDumpOnFailure(t *testing.T) {
	cfg := quickConfig()
	cfg.FlightDir = t.TempDir()

	v := NewOracle(cfg).Run(failingSchedule())
	if !v.Failed() {
		t.Fatalf("ML1 crash schedule unexpectedly passed: %s", v)
	}
	paths, err := filepath.Glob(filepath.Join(cfg.FlightDir, "*.flight.json"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("flight dumps = %v (err %v), want exactly one", paths, err)
	}
	dump, err := observatory.ReadFlightDump(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) == 0 || len(dump.Reason) == 0 {
		t.Fatalf("empty flight dump: %+v", dump)
	}

	// A passing run must not dump.
	passDir := t.TempDir()
	pass := cfg
	pass.FlightDir = passDir
	pass.Archetype = core.ML4
	pass.Scenario = pass.Scenario.Hardened()
	if v := NewOracle(pass).Run(failingSchedule()); v.Failed() {
		t.Fatalf("hardened ML4 failed the single-crash schedule: %s", v)
	}
	if entries, _ := os.ReadDir(passDir); len(entries) != 0 {
		t.Fatalf("passing run wrote flight dumps: %v", entries)
	}

	// Recording must not perturb the run: same schedule, same hash.
	bare := quickConfig()
	if b := NewOracle(bare).Run(failingSchedule()); b.JournalHash != v.JournalHash {
		t.Fatalf("flight recorder changed the journal hash: %s vs %s", b.JournalHash, v.JournalHash)
	}
}

// TestCorpusVerifyExplains is the acceptance check for the observatory:
// every corpus entry analyzes to an incident timeline whose recovery
// outcome agrees with the entry's expectation. The default-knob replay
// (where the counterexample fired) must always yield incidents; the
// hardened run must analyze clean for fixed entries (zero unresolved
// incidents — often zero incidents at all, when a mechanism prevents
// the violation outright) and degraded for still-fails entries.
func TestCorpusVerifyExplains(t *testing.T) {
	ces, err := LoadCorpus(filepath.Join("..", "..", "corpus", "chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) == 0 {
		t.Skip("no corpus checked out")
	}
	results, err := VerifyAll(ces, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Journal == nil {
			t.Errorf("%s: verify kept no journal", res.Name)
			continue
		}
		ce := findEntry(ces, res.Name)
		cfg, err := ce.HardenedConfig()
		if err != nil {
			t.Fatal(err)
		}
		opts := observatory.Options{Duration: cfg.Scenario.Duration, Zones: cfg.Scenario.Zones}
		a := observatory.Analyze(res.Journal, opts)
		switch res.Status {
		case ExpectFixed:
			if a.Unresolved != 0 {
				t.Errorf("%s: fixed entry left %d unresolved incidents", res.Name, a.Unresolved)
			}
		case ExpectStillFails:
			if a.Unresolved == 0 && a.Timeline.GoalOverall >= cfg.MinPersistence {
				t.Errorf("%s: still-fails entry analyzed clean (unresolved=0, R(t)=%.3f)",
					res.Name, a.Timeline.GoalOverall)
			}
		}

		// The default-knob replay is the run the counterexample pinned:
		// its analysis must surface incidents and degraded availability.
		dcfg, err := ce.Config()
		if err != nil {
			t.Fatal(err)
		}
		dcfg.KeepJournal = true
		dv := NewOracle(dcfg).Run(ce.Schedule)
		da := observatory.Analyze(dv.Journal, opts)
		if len(da.Incidents) == 0 {
			t.Errorf("%s: default-knob replay analyzed to zero incidents", res.Name)
		}
		if da.Unresolved != dv.Report.UnresolvedViolations {
			t.Errorf("%s: analysis unresolved=%d, report=%d",
				res.Name, da.Unresolved, dv.Report.UnresolvedViolations)
		}
	}
}

func findEntry(ces []*Counterexample, name string) *Counterexample {
	for _, ce := range ces {
		if ce.Name == name {
			return ce
		}
	}
	return nil
}
