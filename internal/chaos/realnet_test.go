package chaos

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/realnet"
	"repro/internal/simnet"
)

// TestCorpusArmsFullyOnRealnet boots every committed corpus entry's
// topology as live loopback UDP nodes and arms its schedule on the
// realnet injector: every event of every entry must arm — the injector
// no longer silently drops any fault kind, so skipped must be zero
// across the whole corpus.
func TestCorpusArmsFullyOnRealnet(t *testing.T) {
	ces, err := LoadCorpus(filepath.Join("..", "..", "corpus", "chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) == 0 {
		t.Fatal("corpus is empty")
	}
	for _, ce := range ces {
		ce := ce
		t.Run(ce.Name, func(t *testing.T) {
			cfg, err := ce.Config()
			if err != nil {
				t.Fatal(err)
			}
			nodes := make(map[simnet.NodeID]*realnet.Node)
			for _, id := range core.TopologyOf(cfg.Scenario).All() {
				n, err := realnet.NewNode(id, "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				nodes[id] = n
			}
			inj := realnet.NewInjector(nodes, 1)
			defer inj.Stop()
			armed, skipped := inj.Arm(ce.Schedule)
			if skipped != 0 {
				t.Fatalf("entry %s: %d of %d events failed to arm on realnet", ce.Name, skipped, ce.Schedule.Len())
			}
			if armed != ce.Schedule.Len() {
				t.Fatalf("entry %s: armed %d, schedule has %d", ce.Name, armed, ce.Schedule.Len())
			}
		})
	}
}
