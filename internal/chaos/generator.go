package chaos

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

// mutateFrom is the candidate index from which the generator starts
// mutating earlier candidates instead of always sampling fresh ones.
const mutateFrom = 8

// Generator samples candidate disruption schedules for one scenario
// topology. Candidate derivation is a pure function of (search seed,
// index): no state is carried between calls, so a campaign's candidate
// set is identical at any worker count and any evaluation order.
type Generator struct {
	horizon time.Duration
	infra   []simnet.NodeID
	devices []simnet.NodeID
	all     []simnet.NodeID
	domains []string
	// minEvents floors the schedule-event count of every candidate
	// (repairs count: each is an event the system must ride through).
	// Zero keeps the historical 1–4 action sampling byte-identical.
	minEvents int
}

// NewGenerator derives a generator for the config's scenario topology.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	topo := core.TopologyOf(cfg.Scenario)
	horizon := cfg.Scenario.Duration
	if horizon == 0 {
		horizon = core.DefaultScenario().Duration
	}
	devices := append(append([]simnet.NodeID(nil), topo.Sensors...), topo.Actuators...)
	minEvents := cfg.MinEvents
	if minEvents < 0 {
		minEvents = 0
	}
	return &Generator{
		minEvents: minEvents,
		horizon:   horizon,
		infra:     topo.Infrastructure(),
		devices:   devices,
		all:       topo.All(),
		// Destination domains for transfer events: one the spatial
		// model knows (cloudprov) and one it does not.
		domains: []string{"cloudprov", "foreign"},
	}
}

// Candidate derives the i-th candidate of a search. Low indexes are
// fresh random schedules; from mutateFrom on, half the candidates are
// biased mutations of an earlier candidate — re-derived on the spot,
// keeping the function pure.
func (g *Generator) Candidate(seed int64, i int) *fault.Schedule {
	rng := rand.New(rand.NewSource(mix(seed, int64(i))))
	if i >= mutateFrom && rng.Float64() < 0.5 {
		base := g.Candidate(seed, rng.Intn(i))
		return g.mutate(base, rng)
	}
	return g.fresh(rng)
}

// fresh samples a schedule of 1–4 disruption actions, topped up to the
// multi-fault floor when one is configured.
func (g *Generator) fresh(rng *rand.Rand) *fault.Schedule {
	s := &fault.Schedule{}
	for n := 1 + rng.Intn(4); n > 0; n-- {
		g.addAction(s, rng)
	}
	return g.topUp(s, rng)
}

// topUp appends fresh actions until the schedule holds at least
// minEvents events. Each action adds one or two events (fault, maybe
// repair), so the loop terminates; with minEvents zero it draws no
// randomness at all, keeping historical candidate streams untouched.
func (g *Generator) topUp(s *fault.Schedule, rng *rand.Rand) *fault.Schedule {
	for s.Len() < g.minEvents {
		g.addAction(s, rng)
	}
	return s
}

// addAction appends one randomly chosen disruption to s. The weights
// bias toward infrastructure loss and connectivity faults — the
// disruption classes the paper's archetypes differ on.
func (g *Generator) addAction(s *fault.Schedule, rng *rand.Rand) {
	t := g.at(rng)
	switch p := rng.Float64(); {
	case p < 0.35: // infrastructure crash
		s.Crash(t, pick(rng, g.infra), g.outage(rng, t))
	case p < 0.50: // device crash
		s.Crash(t, pick(rng, g.devices), g.outage(rng, t))
	case p < 0.70: // partition: sever a random proper subset of the infrastructure
		island := subset(rng, g.infra)
		s.Partition(t, g.outage(rng, t), island, remainder(g.all, island))
	case p < 0.85: // link degradation or cut
		a, b := pair(rng, g.all)
		if rng.Float64() < 0.4 {
			s.CutLink(t, g.outage(rng, t), a, b)
		} else {
			latency := 20*time.Millisecond + time.Duration(rng.Int63n(int64(480*time.Millisecond)))
			s.DegradeLink(t, g.outage(rng, t), a, b, latency, rng.Float64()*0.95)
		}
	default: // model-level disruption
		switch rng.Intn(3) {
		case 0:
			s.DrainBattery(t, pick(rng, g.devices))
		case 1:
			s.TransferDomain(t, pick(rng, g.all), g.domains[rng.Intn(len(g.domains))])
		default:
			s.UpgradeStack(t, pick(rng, g.all))
		}
	}
}

// mutate applies 1–3 biased mutations to a copy of base: jitter event
// timing, retarget, deepen outages by pushing repairs later or dropping
// them, duplicate events into new windows (nesting), drop events, or
// add a fresh action.
func (g *Generator) mutate(base *fault.Schedule, rng *rand.Rand) *fault.Schedule {
	events := base.Events()
	for n := 1 + rng.Intn(3); n > 0 && len(events) > 0; n-- {
		i := rng.Intn(len(events))
		switch op := rng.Float64(); {
		case op < 0.25: // jitter timing by up to ±10% of the horizon
			jitter := time.Duration(rng.Int63n(int64(g.horizon/5))) - g.horizon/10
			events[i].At = clampAt(events[i].At+jitter, g.horizon)
		case op < 0.45: // deepen an outage: push a repair later…
			if isRepair(events[i].Kind) {
				if rng.Float64() < 0.3 { // …or remove it outright
					events = append(events[:i], events[i+1:]...)
				} else {
					events[i].At = clampAt(events[i].At+time.Duration(rng.Int63n(int64(g.horizon/5))), g.horizon)
				}
			} else {
				events[i].At = clampAt(events[i].At-time.Duration(rng.Int63n(int64(g.horizon/10))), g.horizon)
			}
		case op < 0.60: // retarget a node-scoped event
			if events[i].Node != "" {
				events[i].Node = pick(rng, g.all)
			}
		case op < 0.75: // duplicate into a new window (nested/overlapping faults)
			dup := events[i]
			dup.At = g.at(rng)
			events = append(events, dup)
		case op < 0.90: // drop an event
			events = append(events[:i], events[i+1:]...)
		default:
			tmp := &fault.Schedule{}
			g.addAction(tmp, rng)
			events = append(events, tmp.Events()...)
		}
	}
	out := &fault.Schedule{}
	for _, ev := range events {
		out.Add(ev)
	}
	return g.topUp(out, rng)
}

// at samples an injection time in the first 85% of the run, leaving a
// tail in which recovery is possible (non-recovery should mean the
// system failed, not that the schedule ended the run mid-outage).
func (g *Generator) at(rng *rand.Rand) time.Duration {
	return time.Duration(rng.Int63n(int64(85 * g.horizon / 100)))
}

// outage samples a disruption duration for a fault injected at t:
// usually 5–30% of the run, sometimes (20%) unrepaired — zero, meaning
// no recovery event. A repair that would land past the horizon is
// equivalent to no repair, so it collapses to unrepaired too, keeping
// every scheduled event inside the run.
func (g *Generator) outage(rng *rand.Rand, t time.Duration) time.Duration {
	if rng.Float64() < 0.2 {
		return 0
	}
	d := g.horizon/20 + time.Duration(rng.Int63n(int64(g.horizon/4)))
	if t+d >= g.horizon {
		return 0
	}
	return d
}

// isRepair reports whether the kind ends a disruption window.
func isRepair(k fault.Kind) bool {
	return k == fault.KindRecover || k == fault.KindPartitionEnd || k == fault.KindLinkRestore
}

func clampAt(t, horizon time.Duration) time.Duration {
	if t < 0 {
		return 0
	}
	if t >= horizon {
		return horizon - 1
	}
	return t
}

func pick(rng *rand.Rand, from []simnet.NodeID) simnet.NodeID {
	return from[rng.Intn(len(from))]
}

// pair picks two distinct nodes.
func pair(rng *rand.Rand, from []simnet.NodeID) (simnet.NodeID, simnet.NodeID) {
	i := rng.Intn(len(from))
	j := rng.Intn(len(from) - 1)
	if j >= i {
		j++
	}
	return from[i], from[j]
}

// subset picks a random non-empty proper subset (as a new slice).
func subset(rng *rand.Rand, from []simnet.NodeID) []simnet.NodeID {
	if len(from) < 2 {
		return append([]simnet.NodeID(nil), from...)
	}
	n := 1 + rng.Intn(len(from)-1)
	idx := rng.Perm(len(from))[:n]
	out := make([]simnet.NodeID, 0, n)
	for _, i := range idx {
		out = append(out, from[i])
	}
	return out
}

// remainder returns all \ island.
func remainder(all, island []simnet.NodeID) []simnet.NodeID {
	in := make(map[simnet.NodeID]bool, len(island))
	for _, n := range island {
		in[n] = true
	}
	var out []simnet.NodeID
	for _, n := range all {
		if !in[n] {
			out = append(out, n)
		}
	}
	return out
}

// mix derives an independent RNG seed from a search seed and a stream
// index (splitmix64 finalizer).
func mix(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
