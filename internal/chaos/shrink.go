package chaos

import (
	"time"

	"repro/internal/fault"
)

// shrinkGrain is the time granularity shrinking normalizes event times
// to, so minimized counterexamples read in round seconds.
const shrinkGrain = time.Second

// DefaultShrinkBudget bounds the oracle runs one shrink may spend.
const DefaultShrinkBudget = 400

// ShrinkResult is the outcome of minimizing one failing schedule.
type ShrinkResult struct {
	// Schedule is the minimal failing schedule found.
	Schedule *fault.Schedule
	// Verdict is the oracle's judgement of Schedule; it reproduces at
	// least one failure kind of the original verdict.
	Verdict Verdict
	// Runs counts the oracle executions the shrink spent.
	Runs int
	// FromEvents/ToEvents are the event counts before and after.
	FromEvents, ToEvents int
}

// Shrink delta-debugs a failing schedule to a locally-minimal
// counterexample that still reproduces at least one of the original
// verdict's failure kinds. Three passes, re-running the deterministic
// oracle after every step: (1) ddmin-style event removal in shrinking
// chunks, (2) duration shortening — each repair event is binary-
// searched as close to its disruption as the failure allows, merging
// windows that only overlapped incidentally, and (3) time
// normalization, pulling events to the coarsest grain that still fails.
// budget caps oracle runs (<=0 selects DefaultShrinkBudget).
func Shrink(o *Oracle, s *fault.Schedule, original Verdict, budget int) ShrinkResult {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	want := original.Kinds()
	res := ShrinkResult{FromEvents: s.Len()}

	events := s.Events()
	verdict := original
	runs := 0

	// try re-runs the oracle on a candidate event list; on reproduction
	// it becomes the new current minimum.
	try := func(cand []fault.Event) bool {
		if runs >= budget {
			return false
		}
		runs++
		v := o.Run(scheduleOf(cand))
		if v.sharesKind(want) {
			events = cand
			verdict = v
			return true
		}
		return false
	}

	// Pass 1: ddmin-style removal, halving chunk sizes.
	for chunk := len(events) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(events) && runs < budget; {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			cand := append(append([]fault.Event(nil), events[:start]...), events[end:]...)
			if len(cand) > 0 && try(cand) {
				continue // retry the same window on the reduced list
			}
			start += chunk
		}
	}

	// Pass 2: shorten disruption windows. For each repair event, binary-
	// search its time down toward the latest earlier event (its
	// disruption's start, once sorted), keeping the failure alive.
	for i := 0; i < len(events) && runs < budget; i++ {
		if !isRepair(events[i].Kind) {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = events[i-1].At
		}
		hi := events[i].At
		for hi-lo > shrinkGrain && runs < budget {
			mid := lo + (hi-lo)/2
			cand := append([]fault.Event(nil), events...)
			cand[i].At = mid
			if try(cand) {
				hi = events[i].At // events was replaced; re-anchor
			} else {
				lo = mid
			}
		}
	}

	// Pass 3: normalize times to the grain (floor), one event at a time.
	for i := 0; i < len(events) && runs < budget; i++ {
		rounded := events[i].At.Truncate(shrinkGrain)
		if rounded != events[i].At {
			cand := append([]fault.Event(nil), events...)
			cand[i].At = rounded
			try(cand)
		}
	}

	res.Schedule = scheduleOf(events)
	res.Verdict = verdict
	res.Runs = runs
	res.ToEvents = len(events)
	return res
}

// scheduleOf rebuilds a Schedule from an event list (sorted order in,
// sorted order out — shrinking only ever works on sorted lists).
func scheduleOf(events []fault.Event) *fault.Schedule {
	s := &fault.Schedule{}
	for _, ev := range events {
		s.Add(ev)
	}
	return s
}
