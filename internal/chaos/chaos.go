// Package chaos searches disruption-schedule space for requirement
// violations. The paper defines resilience as persistence of reliable
// requirements satisfaction under *any* disruption — not only the
// scripted Table 1/2 schedule — so this package closes the loop between
// the repository's fault injector and its formal oracles: a generator
// samples candidate fault.Schedules (biased mutation of timing,
// targets, kinds and nesting), an oracle runs each candidate through a
// deterministic core simulation and flags failures, a shrinker
// delta-debugs failing schedules to minimal counterexamples, and a
// corpus serializes the minimized results as replayable regression
// artifacts (schedule + seed + archetype + expected verdict + journal
// hash). Campaigns fan out over experiments.RunPool and stay
// byte-reproducible at any worker count, in the tradition of
// Jepsen-style exploration and delta-debugging minimization.
package chaos

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMinPersistence is the resilience floor the oracle applies when
// the config leaves MinPersistence zero: a run whose overall goal
// persistence R falls below it fails.
const DefaultMinPersistence = 0.85

// Config parameterizes a chaos search: the base scenario every
// candidate runs (its Faults/Preset are replaced by the candidate
// schedule), the archetype under test, and the oracle's thresholds.
type Config struct {
	// Scenario is the base workload. Zero fields take DefaultScenario
	// values; Seed pins the simulation (not the candidate generator,
	// which is seeded per search).
	Scenario core.ScenarioConfig
	// Archetype under test; zero selects ML4, the architecture the
	// paper claims is resilient.
	Archetype core.Archetype
	// MinPersistence is the floor on Report.GoalPersistence. Zero
	// selects DefaultMinPersistence; negative disables the check.
	MinPersistence float64
	// MinEvents floors the number of events per generated candidate
	// schedule (counting repairs), so post-hardening campaigns explore
	// fault *combinations* instead of re-finding single events the
	// corpus already pins. Zero keeps the generator's historical 1–4
	// action sampling.
	MinEvents int
	// Bus receives chaos.* progress events (candidate verdicts,
	// violations found, shrink results). Nil disables instrumentation;
	// the obs fast path makes an idle bus near-free.
	Bus *obs.Bus
	// KeepJournal retains each run's journal on the Verdict so callers
	// (riotscope, verify -explain) can derive incident timelines without
	// re-running. Off by default: searches judge thousands of candidates
	// and only care about pass/fail.
	KeepJournal bool
	// FlightDir, when non-empty, attaches a flight recorder to every run
	// and dumps its ring there whenever the oracle flags a failure. The
	// recorder only reads the bus, so journals and hashes are unaffected.
	FlightDir string
}

// withDefaults normalizes a config.
func (c Config) withDefaults() Config {
	if c.Archetype == 0 {
		c.Archetype = core.ML4
	}
	if c.MinPersistence == 0 {
		c.MinPersistence = DefaultMinPersistence
	}
	return c
}

// FailureKind classifies why the oracle rejected a run.
type FailureKind string

// Oracle failure classes.
const (
	// FailPersistence: overall goal persistence R fell below the floor.
	FailPersistence FailureKind = "low-persistence"
	// FailNonRecovery: at least one requirement was still violated when
	// the run ended — the system never recovered it.
	FailNonRecovery FailureKind = "non-recovery"
	// FailPrivacy: the data-flow auditor observed a governed item at a
	// node policy forbids.
	FailPrivacy FailureKind = "privacy-violation"
	// FailDesign: a design-time model-checking verdict failed.
	FailDesign FailureKind = "design-check"
	// FailPanic: the run panicked.
	FailPanic FailureKind = "panic"
)

// Failure is one oracle complaint about a run.
type Failure struct {
	Kind   FailureKind `json:"kind"`
	Detail string      `json:"detail"`
}

func (f Failure) String() string { return fmt.Sprintf("%s: %s", f.Kind, f.Detail) }

// Verdict is the oracle's judgement of one candidate schedule.
type Verdict struct {
	// Failures is empty when the run satisfied every property.
	Failures []Failure
	// Report is the run's full measurement (zero after a panic).
	Report core.Report
	// JournalHash digests the run's journal; corpus replay compares it
	// byte-for-byte.
	JournalHash string
	// Journal is the run's full event journal, retained only when the
	// oracle config sets KeepJournal (nil otherwise, and always nil
	// after a panic).
	Journal []core.RunEvent
}

// Failed reports whether the oracle flagged the run.
func (v Verdict) Failed() bool { return len(v.Failures) > 0 }

// Kinds lists the verdict's failure kinds in order.
func (v Verdict) Kinds() []FailureKind {
	out := make([]FailureKind, len(v.Failures))
	for i, f := range v.Failures {
		out[i] = f.Kind
	}
	return out
}

// HasKind reports whether the verdict contains a failure of kind k.
func (v Verdict) HasKind(k FailureKind) bool {
	for _, f := range v.Failures {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// sharesKind reports whether the verdict reproduces at least one of the
// wanted failure kinds — the shrinker's "same bug" criterion.
func (v Verdict) sharesKind(want []FailureKind) bool {
	for _, k := range want {
		if v.HasKind(k) {
			return true
		}
	}
	return false
}

func (v Verdict) String() string {
	if !v.Failed() {
		return "pass"
	}
	parts := make([]string, len(v.Failures))
	for i, f := range v.Failures {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}
