package mape

import (
	"sort"

	"repro/internal/model"
	"repro/internal/verify"
)

// Region implements the paper's "regional planning" decentralization
// pattern (§V): each member runs its own local MAPE loop (monitoring
// and analyzing its scope), while planning for cross-member concerns
// is lifted to a regional planner that sees every member's issues at
// once — e.g. an edge node coordinating the zones in its vicinity, as
// in Figure 3. Execution is delegated back to per-member executors,
// keeping actuation local.
type Region struct {
	members map[string]*Loop
	order   []string
	latest  map[string][]Issue
	plan    RegionalPlanFunc
	execute RegionalExecuteFunc

	cycles   int
	executed int
	failed   int
}

// MemberIssue pairs an issue with the member that reported it.
type MemberIssue struct {
	Member string
	Issue  Issue
}

// RegionalAction is a counteraction targeted at one member.
type RegionalAction struct {
	Member string
	Action Action
}

// RegionalPlanFunc plans counteractions from the region-wide issue
// snapshot.
type RegionalPlanFunc func(issues []MemberIssue) []RegionalAction

// RegionalExecuteFunc applies one action at one member. Returning
// false marks it failed.
type RegionalExecuteFunc func(member string, a Action) bool

// NewRegion creates an empty region.
func NewRegion() *Region {
	return &Region{
		members: make(map[string]*Loop),
		latest:  make(map[string][]Issue),
	}
}

// AddMember registers a local loop under the region. The region
// observes the loop's cycles; the loop keeps running independently
// (local planning, if any, still applies — regional planning is
// additive).
func (r *Region) AddMember(name string, loop *Loop) {
	if _, dup := r.members[name]; !dup {
		r.order = append(r.order, name)
	}
	r.members[name] = loop
	loop.OnCycle(func(_ map[verify.Prop]bool, issues []Issue, _ []Action) {
		snapshot := make([]Issue, len(issues))
		copy(snapshot, issues)
		r.latest[name] = snapshot
	})
}

// SetPlanner installs the regional planner.
func (r *Region) SetPlanner(p RegionalPlanFunc) { r.plan = p }

// SetExecutor installs the regional executor.
func (r *Region) SetExecutor(e RegionalExecuteFunc) { r.execute = e }

// Members returns the member names in registration order.
func (r *Region) Members() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Issues returns the most recent issue snapshot across members,
// ordered by member name then requirement.
func (r *Region) Issues() []MemberIssue {
	var out []MemberIssue
	for _, name := range r.order {
		for _, is := range r.latest[name] {
			out = append(out, MemberIssue{Member: name, Issue: is})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Member != out[j].Member {
			return out[i].Member < out[j].Member
		}
		return out[i].Issue.Requirement < out[j].Issue.Requirement
	})
	return out
}

// Cycle runs one regional plan/execute pass over the latest member
// issues. Member loops must have cycled since the relevant change for
// their issues to be visible (drive members and the region from the
// same scheduler).
func (r *Region) Cycle() {
	r.cycles++
	if r.plan == nil {
		return
	}
	issues := r.Issues()
	if len(issues) == 0 {
		return
	}
	for _, ra := range r.plan(issues) {
		if r.execute == nil {
			continue
		}
		if r.execute(ra.Member, ra.Action) {
			r.executed++
		} else {
			r.failed++
		}
	}
}

// Executed returns how many regional actions succeeded.
func (r *Region) Executed() int { return r.executed }

// Failed returns how many regional actions failed.
func (r *Region) Failed() int { return r.failed }

// Cycles returns how many regional cycles ran.
func (r *Region) Cycles() int { return r.cycles }

// Satisfaction aggregates instantaneous requirement satisfaction
// across all members (a requirement is satisfied region-wide if every
// member tracking it reports it satisfied).
func (r *Region) Satisfaction() map[model.RequirementID]bool {
	out := make(map[model.RequirementID]bool)
	for _, name := range r.order {
		for id, ok := range r.members[name].Satisfaction() {
			if cur, seen := out[id]; seen {
				out[id] = cur && ok
			} else {
				out[id] = ok
			}
		}
	}
	return out
}
