package mape

import (
	"testing"
	"time"

	"repro/internal/crdt"
	"repro/internal/model"
	"repro/internal/verify"
)

// regionRig builds two member loops whose "load" facts drive a shared
// capacity requirement, plus a region that can shift capacity between
// them.
func regionRig(t *testing.T) (*Region, map[string]*Loop, map[string]float64, *time.Duration) {
	t.Helper()
	var now time.Duration
	clock := func() time.Duration { return now }
	capacity := map[string]float64{"z1": 10, "z2": 10}
	loops := make(map[string]*Loop)
	region := NewRegion()
	for _, name := range []string{"z1", "z2"} {
		name := name
		k := NewKnowledge(crdt.ReplicaID("k-"+name), clock)
		l := NewLoop(k, clock)
		l.AddRule(PropRule{Prop: prop(name), Eval: func(k *Knowledge) bool {
			load, ok := k.GetFloat("load")
			return ok && load <= capacity[name]
		}})
		l.AddRequirement(&model.Requirement{ID: model.RequirementID("R-" + name), Prop: prop(name)})
		loops[name] = l
		region.AddMember(name, l)
	}
	return region, loops, capacity, &now
}

func prop(name string) verify.Prop { return verify.Prop(name + ":within-capacity") }

func TestRegionAggregatesIssues(t *testing.T) {
	region, loops, _, _ := regionRig(t)
	loops["z1"].Knowledge().Put("load", 15.0) // over capacity
	loops["z2"].Knowledge().Put("load", 5.0)
	loops["z1"].Cycle()
	loops["z2"].Cycle()

	issues := region.Issues()
	if len(issues) != 1 || issues[0].Member != "z1" {
		t.Fatalf("issues = %+v", issues)
	}
	if got := region.Members(); len(got) != 2 || got[0] != "z1" {
		t.Fatalf("members = %v", got)
	}
}

func TestRegionalPlanningShiftsCapacity(t *testing.T) {
	region, loops, capacity, _ := regionRig(t)
	// Regional planner: when a member is over capacity, borrow from
	// the spare member.
	region.SetPlanner(func(issues []MemberIssue) []RegionalAction {
		var out []RegionalAction
		for _, mi := range issues {
			out = append(out, RegionalAction{
				Member: mi.Member,
				Action: Action{Name: "grant-capacity", Value: 10.0},
			})
		}
		return out
	})
	region.SetExecutor(func(member string, a Action) bool {
		if a.Name != "grant-capacity" {
			return false
		}
		capacity[member] += a.Value.(float64)
		return true
	})

	loops["z1"].Knowledge().Put("load", 15.0)
	loops["z2"].Knowledge().Put("load", 5.0)
	loops["z1"].Cycle()
	loops["z2"].Cycle()
	region.Cycle() // plans and grants capacity to z1

	loops["z1"].Cycle() // re-analyze with new capacity
	if !loops["z1"].Satisfaction()["R-z1"] {
		t.Fatal("regional action did not resolve the issue")
	}
	if region.Executed() != 1 || region.Failed() != 0 || region.Cycles() != 1 {
		t.Fatalf("stats = %d/%d/%d", region.Executed(), region.Failed(), region.Cycles())
	}
}

func TestRegionWithoutPlannerIsInert(t *testing.T) {
	region, loops, _, _ := regionRig(t)
	loops["z1"].Knowledge().Put("load", 99.0)
	loops["z1"].Cycle()
	region.Cycle()
	if region.Executed() != 0 {
		t.Fatal("executed without a planner")
	}
}

func TestRegionFailedActionsCounted(t *testing.T) {
	region, loops, _, _ := regionRig(t)
	region.SetPlanner(func(issues []MemberIssue) []RegionalAction {
		return []RegionalAction{{Member: "z1", Action: Action{Name: "nope"}}}
	})
	region.SetExecutor(func(string, Action) bool { return false })
	loops["z1"].Knowledge().Put("load", 99.0)
	loops["z1"].Cycle()
	region.Cycle()
	if region.Failed() != 1 {
		t.Fatalf("failed = %d", region.Failed())
	}
}

func TestRegionSatisfactionConjunction(t *testing.T) {
	region, loops, _, _ := regionRig(t)
	loops["z1"].Knowledge().Put("load", 5.0)
	loops["z2"].Knowledge().Put("load", 99.0)
	loops["z1"].Cycle()
	loops["z2"].Cycle()
	sat := region.Satisfaction()
	if !sat["R-z1"] || sat["R-z2"] {
		t.Fatalf("satisfaction = %v", sat)
	}
}

func TestRegionIssuesSorted(t *testing.T) {
	region, loops, _, _ := regionRig(t)
	loops["z2"].Knowledge().Put("load", 99.0)
	loops["z1"].Knowledge().Put("load", 99.0)
	loops["z2"].Cycle()
	loops["z1"].Cycle()
	issues := region.Issues()
	if len(issues) != 2 || issues[0].Member != "z1" || issues[1].Member != "z2" {
		t.Fatalf("issues = %+v", issues)
	}
}
