package mape

import (
	"testing"
	"time"

	"repro/internal/crdt"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/verify"
)

// testLoop builds a loop on a manual clock with one requirement
// temp_ok derived from fact "temp" < 25.
func testLoop(now *time.Duration) *Loop {
	clock := func() time.Duration { return *now }
	k := NewKnowledge("n1", clock)
	l := NewLoop(k, clock)
	l.AddRule(PropRule{Prop: "temp_ok", Eval: func(k *Knowledge) bool {
		v, ok := k.GetFloat("temp")
		return ok && v < 25
	}})
	l.AddRequirement(&model.Requirement{ID: "R1", Prop: "temp_ok"})
	return l
}

func TestKnowledgePutGet(t *testing.T) {
	var now time.Duration
	k := NewKnowledge("n1", func() time.Duration { return now })
	k.Put("x", 42)
	if v, ok := k.Get("x"); !ok || v != 42 {
		t.Fatalf("Get = %v/%v", v, ok)
	}
	if _, ok := k.Get("ghost"); ok {
		t.Fatal("ghost fact found")
	}
	now = 5 * time.Second
	age, ok := k.Age("x")
	if !ok || age != 5*time.Second {
		t.Fatalf("Age = %v/%v", age, ok)
	}
	if _, ok := k.Age("ghost"); ok {
		t.Fatal("ghost age found")
	}
}

func TestKnowledgeGetFloatConversions(t *testing.T) {
	var now time.Duration
	k := NewKnowledge("n1", func() time.Duration { return now })
	for key, val := range map[string]any{
		"f64": float64(1.5), "f32": float32(2), "int": 3, "i64": int64(4), "u64": uint64(5),
	} {
		k.Put(key, val)
		if _, ok := k.GetFloat(key); !ok {
			t.Fatalf("GetFloat(%s) failed", key)
		}
	}
	k.Put("str", "nope")
	if _, ok := k.GetFloat("str"); ok {
		t.Fatal("GetFloat on string succeeded")
	}
	if _, ok := k.GetFloat("ghost"); ok {
		t.Fatal("GetFloat on missing key succeeded")
	}
}

func TestCycleDetectsViolationAndRecovery(t *testing.T) {
	var now time.Duration
	l := testLoop(&now)
	var lastIssues []Issue
	l.OnCycle(func(_ map[verify.Prop]bool, issues []Issue, _ []Action) { lastIssues = issues })

	l.Knowledge().Put("temp", 22.0)
	l.Cycle()
	if len(lastIssues) != 0 {
		t.Fatalf("issues = %v, want none", lastIssues)
	}
	if !l.Satisfaction()["R1"] {
		t.Fatal("R1 should be satisfied")
	}

	now = 10 * time.Second
	l.Knowledge().Put("temp", 30.0)
	l.Cycle()
	if len(lastIssues) != 1 || lastIssues[0].Requirement != "R1" {
		t.Fatalf("issues = %v, want [R1]", lastIssues)
	}

	now = 25 * time.Second
	l.Knowledge().Put("temp", 20.0)
	l.Cycle()
	if len(lastIssues) != 0 {
		t.Fatalf("issues after recovery = %v", lastIssues)
	}
	st := l.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	if st.MTTR() != 15*time.Second {
		t.Fatalf("MTTR = %v, want 15s (violated at 10s, recovered at 25s)", st.MTTR())
	}
}

func TestPlanAndExecute(t *testing.T) {
	var now time.Duration
	l := testLoop(&now)
	var executed []Action
	l.SetPlanner(func(_ *Knowledge, issues []Issue) []Action {
		var out []Action
		for _, is := range issues {
			out = append(out, Action{Name: "cool", Target: string(is.Requirement)})
		}
		return out
	})
	l.SetExecutor(func(k *Knowledge, a Action) bool {
		executed = append(executed, a)
		k.Put("temp", 20.0) // the action fixes the environment
		return true
	})

	l.Knowledge().Put("temp", 30.0)
	l.Cycle()
	if len(executed) != 1 || executed[0].Name != "cool" {
		t.Fatalf("executed = %v", executed)
	}
	l.Cycle()
	if len(executed) != 1 {
		t.Fatal("planner ran again although requirement recovered")
	}
	st := l.Stats()
	if st.ActionsExecuted != 1 || st.ActionsFailed != 0 || st.Cycles != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailedActionsCounted(t *testing.T) {
	var now time.Duration
	l := testLoop(&now)
	l.SetPlanner(func(_ *Knowledge, _ []Issue) []Action { return []Action{{Name: "noop"}} })
	l.SetExecutor(func(*Knowledge, Action) bool { return false })
	l.Knowledge().Put("temp", 99.0)
	l.Cycle()
	if st := l.Stats(); st.ActionsFailed != 1 || st.ActionsExecuted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMonitorFeedsKnowledge(t *testing.T) {
	var now time.Duration
	l := testLoop(&now)
	sensor := 21.0
	l.AddMonitor(func(k *Knowledge) { k.Put("temp", sensor) })
	l.Cycle()
	if !l.Satisfaction()["R1"] {
		t.Fatal("monitor did not feed knowledge")
	}
	sensor = 40
	l.Cycle()
	if l.Satisfaction()["R1"] {
		t.Fatal("stale satisfaction")
	}
}

func TestRuntimeMonitorVerdicts(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return *(&now) }
	k := NewKnowledge("n1", clock)
	l := NewLoop(k, clock)
	l.AddRule(PropRule{Prop: "p", Eval: func(k *Knowledge) bool {
		v, _ := k.GetFloat("x")
		return v > 0
	}})
	// Requirement with a bounded response property: F<=1 p.
	l.AddRequirement(&model.Requirement{
		ID: "R", Prop: "p",
		Temporal: verify.LEventuallyWithin(1, verify.LAP("p")),
	})
	l.Cycle() // x unset → p false, F<=1 pending
	if v := l.Verdict("R"); v != verify.VerdictUnknown {
		t.Fatalf("verdict = %v", v)
	}
	l.Cycle() // deadline missed → false
	if v := l.Verdict("R"); v != verify.VerdictFalse {
		t.Fatalf("verdict = %v, want false", v)
	}
	if v := l.Verdict("ghost"); v != verify.VerdictUnknown {
		t.Fatalf("ghost verdict = %v", v)
	}
}

func TestMTTRZeroWithoutRecoveries(t *testing.T) {
	if (Stats{}).MTTR() != 0 {
		t.Fatal("MTTR on empty stats should be 0")
	}
}

func TestObservationsCopy(t *testing.T) {
	var now time.Duration
	l := testLoop(&now)
	l.Knowledge().Put("temp", 20.0)
	l.Cycle()
	obs := l.Observations()
	obs["temp_ok"] = false
	if !l.Observations()["temp_ok"] {
		t.Fatal("mutating returned observations changed loop state")
	}
}

// --- knowledge sharing over the network ---

func TestSyncerSharesKnowledge(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(1))
	epA := sim.AddNode("a")
	epB := sim.AddNode("b")

	la := NewLoop(NewKnowledge("a", sim.Now), sim.Now)
	lb := NewLoop(NewKnowledge("b", sim.Now), sim.Now)
	sa := NewSyncer(epA, la, []simnet.NodeID{"b"}, 100*time.Millisecond)
	sb := NewSyncer(epB, lb, []simnet.NodeID{"a"}, 100*time.Millisecond)
	sa.Start()
	sb.Start()

	la.Knowledge().Put("zone1/temp", 22.5)
	sim.RunUntil(time.Second)

	if v, ok := lb.Knowledge().GetFloat("zone1/temp"); !ok || v != 22.5 {
		t.Fatalf("peer knowledge = %v/%v", v, ok)
	}
	if sb.Absorbed() == 0 {
		t.Fatal("no entries absorbed")
	}
}

func TestSyncerSurvivesPartition(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(2))
	epA := sim.AddNode("a")
	epB := sim.AddNode("b")
	la := NewLoop(NewKnowledge("a", sim.Now), sim.Now)
	lb := NewLoop(NewKnowledge("b", sim.Now), sim.Now)
	NewSyncer(epA, la, []simnet.NodeID{"b"}, 100*time.Millisecond).Start()
	NewSyncer(epB, lb, []simnet.NodeID{"a"}, 100*time.Millisecond).Start()

	sim.Partition([]simnet.NodeID{"a"}, []simnet.NodeID{"b"})
	sim.RunUntil(500 * time.Millisecond)
	la.Knowledge().Put("k", 1.0)
	sim.RunUntil(2 * time.Second)
	if _, ok := lb.Knowledge().Get("k"); ok {
		t.Fatal("knowledge crossed a partition")
	}

	// After healing, a *new* write flows; the old one was shipped into
	// the void (deltas are fire-and-forget; newer facts supersede).
	sim.HealPartition()
	la.Knowledge().Put("k", 2.0)
	sim.RunUntil(4 * time.Second)
	if v, ok := lb.Knowledge().GetFloat("k"); !ok || v != 2.0 {
		t.Fatalf("post-heal knowledge = %v/%v", v, ok)
	}
}

func TestSyncerStop(t *testing.T) {
	sim := simnet.New()
	epA := sim.AddNode("a")
	sim.AddNode("b")
	la := NewLoop(NewKnowledge("a", sim.Now), sim.Now)
	s := NewSyncer(epA, la, []simnet.NodeID{"b"}, 100*time.Millisecond)
	s.Start()
	s.Stop()
	la.Knowledge().Put("k", 1.0)
	before := sim.Stats().Sent
	sim.RunUntil(time.Second)
	if sim.Stats().Sent != before {
		t.Fatal("stopped syncer still sending")
	}
}

func TestSyncerQuiescentAfterConvergence(t *testing.T) {
	// Regression for the lastSent watermark: once both loops converge
	// and stop writing, no further sync traffic flows. The old
	// watermark (MaxTimestamp() without the -1 guard, and no version
	// short-circuit) re-shipped the boundary entries every round
	// forever.
	sim := simnet.New(simnet.WithSeed(3))
	epA := sim.AddNode("a")
	epB := sim.AddNode("b")
	la := NewLoop(NewKnowledge("a", sim.Now), sim.Now)
	lb := NewLoop(NewKnowledge("b", sim.Now), sim.Now)
	NewSyncer(epA, la, []simnet.NodeID{"b"}, 100*time.Millisecond).Start()
	NewSyncer(epB, lb, []simnet.NodeID{"a"}, 100*time.Millisecond).Start()

	la.Knowledge().Put("zone1/temp", 22.5)
	lb.Knowledge().Put("zone2/temp", 19.0)
	sim.RunUntil(time.Second)
	if _, ok := lb.Knowledge().Get("zone1/temp"); !ok {
		t.Fatal("knowledge did not converge")
	}

	// Converged and quiescent: many more rounds, zero sends.
	before := sim.Stats().Sent
	sim.RunUntil(5 * time.Second)
	if got := sim.Stats().Sent; got != before {
		t.Fatalf("converged syncers sent %d extra messages", got-before)
	}

	// A new write resumes sharing.
	la.Knowledge().Put("zone3/temp", 30.0)
	sim.RunUntil(6 * time.Second)
	if v, ok := lb.Knowledge().GetFloat("zone3/temp"); !ok || v != 30.0 {
		t.Fatalf("post-quiescence write did not flow: %v/%v", v, ok)
	}
}

func TestSyncMsgSize(t *testing.T) {
	empty := syncMsg{}
	if empty.Size() != 8 {
		t.Fatalf("empty size = %d", empty.Size())
	}
	// Sizing is per-entry and accurate, not a flat per-entry guess: the
	// key and value payloads count.
	entries := []crdt.Entry{
		{Key: "zone0/temp", Value: 21.5, Replica: "gw-0"},
		{Key: "k", Value: "hello", Replica: "gw-11"},
	}
	msg := syncMsg{Entries: entries}
	if got, want := msg.Size(), 8+crdt.EntriesSize(entries); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	short := syncMsg{Entries: entries[:1]}
	if msg.Size()-short.Size() != crdt.EntrySize(entries[1]) {
		t.Fatalf("second entry not sized by its own payload")
	}
}
