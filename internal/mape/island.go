package mape

import (
	"time"

	"repro/internal/simnet"
)

// IslandGuard decides when a MAPE loop should fall back to island-mode
// degraded operation (DESIGN.md §9). The paper's roadmap (§V) calls
// for graceful degradation at the edge: when a node loses contact with
// the coordination quorum — a partition, not a flap — its loop must
// keep the local sensing→analysis→actuation chain alive from cached
// knowledge rather than freeze waiting for consensus.
//
// The guard is a pure grace-window state machine over externally
// observed quorum-contact times (consensus.Node.QuorumContact): it
// enters island mode only once contact has been stale for the full
// grace window, so an election flap — lose and regain quorum inside
// the window — never trips it; it leaves island mode the moment fresh
// contact is observed. Both transitions are deterministic functions of
// the observation stream, which keeps journals bit-identical across
// worker counts.
type IslandGuard struct {
	grace  time.Duration
	island bool
}

// NewIslandGuard returns a guard with the given grace window.
func NewIslandGuard(grace time.Duration) *IslandGuard {
	return &IslandGuard{grace: grace}
}

// Island reports whether the loop is currently in island mode.
func (g *IslandGuard) Island() bool { return g.island }

// Grace returns the configured grace window.
func (g *IslandGuard) Grace() time.Duration { return g.grace }

// Observe feeds one (now, lastQuorumContact) sample and reports
// whether the island state changed on this observation.
func (g *IslandGuard) Observe(now, quorumContact time.Duration) (changed bool) {
	isolated := now-quorumContact >= g.grace
	if isolated == g.island {
		return false
	}
	g.island = isolated
	return true
}

// Failover returns the first candidate the alive predicate accepts, in
// candidate-priority order. It is the shared selection rule for backup
// actuators and island controllers: deterministic, no state, so every
// node looking at the same membership view picks the same survivor.
// ok is false when no candidate is alive.
func Failover(candidates []simnet.NodeID, alive func(simnet.NodeID) bool) (id simnet.NodeID, ok bool) {
	for _, c := range candidates {
		if alive(c) {
			return c, true
		}
	}
	return "", false
}
