package mape

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestIslandGuardFlapInsideGrace drives the guard through quorum-contact
// flaps that always refresh inside the grace window: an election blip
// must never trip island mode, or every leader change would fork the
// control plane.
func TestIslandGuardFlapInsideGrace(t *testing.T) {
	g := NewIslandGuard(30 * time.Second)
	steps := []struct{ now, contact time.Duration }{
		{10 * time.Second, 0},                // 10s stale
		{29 * time.Second, 0},                // 29s stale — one tick short of grace
		{30 * time.Second, 30 * time.Second}, // contact refreshes exactly at the brink
		{59 * time.Second, 30 * time.Second}, // stale again, still inside the window
		{60 * time.Second, 59 * time.Second}, // and refreshes again
		{89 * time.Second, 60 * time.Second}, // third near-miss
		{90 * time.Second, 89 * time.Second}, // recovered
	}
	for _, s := range steps {
		if changed := g.Observe(s.now, s.contact); changed {
			t.Fatalf("Observe(%v, %v) flipped island state on a flap inside grace", s.now, s.contact)
		}
	}
	if g.Island() {
		t.Fatal("guard islanded without a full grace window of silence")
	}
}

// TestIslandGuardEntersAndRejoins checks both transitions: a full grace
// window of staleness islands the loop (inclusive boundary), and the
// first fresh contact rejoins it immediately — no symmetric exit delay.
func TestIslandGuardEntersAndRejoins(t *testing.T) {
	g := NewIslandGuard(30 * time.Second)
	if g.Observe(29*time.Second, 0) {
		t.Fatal("islanded one observation early")
	}
	if !g.Observe(30*time.Second, 0) || !g.Island() {
		t.Fatal("did not island after a full grace window of stale contact")
	}
	if g.Observe(40*time.Second, 0) {
		t.Fatal("reported a change while still islanded")
	}
	if !g.Observe(41*time.Second, 41*time.Second) || g.Island() {
		t.Fatal("did not rejoin on the first fresh quorum contact")
	}
}

// TestFailoverDoubleFailover walks an actuator candidate chain
// [primary, b0, b1] through successive deaths and a revival: selection
// must always be the first alive candidate, so a second failure fails
// over again and a revived primary wins back immediately.
func TestFailoverDoubleFailover(t *testing.T) {
	chain := []simnet.NodeID{"z0-act", "z0-act-b0", "z0-act-b1"}
	up := map[simnet.NodeID]bool{"z0-act": true, "z0-act-b0": true, "z0-act-b1": true}
	alive := func(id simnet.NodeID) bool { return up[id] }

	pickWant := func(want simnet.NodeID) {
		t.Helper()
		got, ok := Failover(chain, alive)
		if !ok || got != want {
			t.Fatalf("Failover = %q/%v, want %q", got, ok, want)
		}
	}
	pickWant("z0-act")
	up["z0-act"] = false
	pickWant("z0-act-b0")
	up["z0-act-b0"] = false // double failure: backup dies too
	pickWant("z0-act-b1")
	up["z0-act-b1"] = false
	if got, ok := Failover(chain, alive); ok {
		t.Fatalf("Failover with no survivors = %q, want none", got)
	}
	up["z0-act"] = true // primary repaired: selection snaps back
	pickWant("z0-act")
}

// TestRejoinShareNowReconciliation exercises the island-rejoin ordering:
// knowledge accumulated while partitioned must reach the healed side via
// ShareNow immediately, not an interval later. The syncer interval is
// set far beyond the test horizon so any delivery is attributable to the
// explicit rejoin share alone.
func TestRejoinShareNowReconciliation(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(3))
	epA := sim.AddNode("a")
	epB := sim.AddNode("b")
	la := NewLoop(NewKnowledge("a", sim.Now), sim.Now)
	lb := NewLoop(NewKnowledge("b", sim.Now), sim.Now)
	sa := NewSyncer(epA, la, []simnet.NodeID{"b"}, time.Hour)
	NewSyncer(epB, lb, []simnet.NodeID{"a"}, time.Hour)
	sa.Start()

	sim.Partition([]simnet.NodeID{"a"}, []simnet.NodeID{"b"})
	sim.RunUntil(100 * time.Millisecond)
	la.Knowledge().Put("island/obs", 7.0) // written while islanded

	sim.HealPartition()
	sim.RunUntil(200 * time.Millisecond)
	if _, ok := lb.Knowledge().Get("island/obs"); ok {
		t.Fatal("island knowledge crossed without a share")
	}
	sa.ShareNow()
	sim.RunUntil(300 * time.Millisecond)
	if v, ok := lb.Knowledge().GetFloat("island/obs"); !ok || v != 7.0 {
		t.Fatalf("island knowledge after ShareNow = %v/%v, want 7", v, ok)
	}
}
