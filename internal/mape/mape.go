// Package mape implements the MAPE-K autonomic loop the paper places at
// the heart of runtime self-adaptation (§VII, Fig 5): Monitor gathers
// observations into a Knowledge base, Analyze evaluates requirement
// satisfaction (instantaneous propositions plus LTL3 runtime monitors
// from the verify package), Plan derives counteractions, and Execute
// applies them. The Knowledge base is a CRDT map, so loops can share
// knowledge epidemically (the "information sharing" decentralization
// pattern) and keep planning through partitions — analysis and planning
// placed on edge components, exactly as Figure 5 prescribes.
package mape

import (
	"sort"
	"time"

	"repro/internal/crdt"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/verify"
)

// Knowledge is the K of MAPE-K: a replicated fact store plus derived
// propositions. Facts are timestamped LWW entries, so merging knowledge
// from other loops is conflict-free.
type Knowledge struct {
	data *crdt.LWWMap
	now  func() time.Duration
	// lastWrite implements a hybrid clock: writes are stamped with
	// max(now, lastWrite+1ns) so that a same-tick overwrite by the
	// local replica still wins under LWW resolution.
	lastWrite time.Duration
	// version counts applied changes (local wins and absorbed remote
	// wins), so a syncer can tell a quiescent knowledge base apart
	// from one with fresh facts without exporting anything.
	version uint64
}

// NewKnowledge creates a knowledge base owned by the given replica,
// reading time from now.
func NewKnowledge(replica crdt.ReplicaID, now func() time.Duration) *Knowledge {
	return &Knowledge{data: crdt.NewLWWMap(replica), now: now, lastWrite: -1}
}

// Put stores a fact at the current time (advanced by at least 1ns per
// write, so successive writes within one simulation instant keep their
// order).
func (k *Knowledge) Put(key string, value any) {
	ts := k.now()
	if ts <= k.lastWrite {
		ts = k.lastWrite + 1
	}
	k.lastWrite = ts
	if k.data.Set(key, value, ts) {
		k.version++
	}
}

// Get reads a fact.
func (k *Knowledge) Get(key string) (any, bool) {
	return k.data.Get(key)
}

// GetFloat reads a numeric fact, converting common numeric types.
func (k *Knowledge) GetFloat(key string) (float64, bool) {
	v, ok := k.data.Get(key)
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	default:
		return 0, false
	}
}

// Age returns how long ago the fact was last written.
func (k *Knowledge) Age(key string) (time.Duration, bool) {
	ts, ok := k.data.Timestamp(key)
	if !ok {
		return 0, false
	}
	return k.now() - ts, true
}

// Keys returns the live fact keys, sorted.
func (k *Knowledge) Keys() []string { return k.data.Keys() }

// Delta exports facts newer than ts for knowledge sharing.
func (k *Knowledge) Delta(ts time.Duration) []crdt.Entry { return k.data.Since(ts) }

// MaxTimestamp returns the newest fact's write time.
func (k *Knowledge) MaxTimestamp() time.Duration { return k.data.MaxTimestamp() }

// Absorb merges exported entries from another loop's knowledge.
func (k *Knowledge) Absorb(entries []crdt.Entry) int {
	won := k.data.Apply(entries)
	k.version += uint64(won)
	return won
}

// Version returns the knowledge change counter; it advances on every
// applied local write and absorbed remote win.
func (k *Knowledge) Version() uint64 { return k.version }

// PropRule derives an atomic proposition from knowledge each cycle.
type PropRule struct {
	Prop verify.Prop
	Eval func(k *Knowledge) bool
}

// Issue is an analysis finding: a requirement currently violated.
type Issue struct {
	Requirement model.RequirementID
	Prop        verify.Prop
	// MonitorVerdict carries the LTL3 verdict of the requirement's
	// runtime monitor at detection time.
	MonitorVerdict verify.Verdict
}

// Action is a planned counteraction, interpreted by the executor.
type Action struct {
	Name   string
	Target string
	Value  any
}

// MonitorFunc feeds fresh observations into knowledge (the M phase).
type MonitorFunc func(k *Knowledge)

// PlanFunc maps issues to counteractions (the P phase).
type PlanFunc func(k *Knowledge, issues []Issue) []Action

// ExecuteFunc applies one action (the E phase). Returning false marks
// the action as failed in the loop's stats.
type ExecuteFunc func(k *Knowledge, a Action) bool

// Stats aggregates loop activity.
type Stats struct {
	Cycles          int
	IssuesDetected  int
	ActionsExecuted int
	ActionsFailed   int
	// Recoveries counts requirement violations that were later
	// observed satisfied again; TotalRecovery accumulates the time
	// from first violation to recovery (MTTR = TotalRecovery /
	// Recoveries).
	Recoveries    int
	TotalRecovery time.Duration
}

// MTTR returns the mean time to recovery over observed recoveries.
func (s Stats) MTTR() time.Duration {
	if s.Recoveries == 0 {
		return 0
	}
	return s.TotalRecovery / time.Duration(s.Recoveries)
}

// Loop is one MAPE-K loop instance. Construct with NewLoop, register
// monitors/rules/requirements, then drive it with Cycle (typically from
// a simnet ticker owned by the hosting node).
type Loop struct {
	knowledge *Knowledge
	now       func() time.Duration

	monitors []MonitorFunc
	rules    []PropRule
	reqs     []*model.Requirement
	runtime  map[model.RequirementID]*verify.Monitor
	plan     PlanFunc
	execute  ExecuteFunc

	violatedSince map[model.RequirementID]time.Duration
	lastObs       map[verify.Prop]bool
	stats         Stats
	onCycle       []func(obs map[verify.Prop]bool, issues []Issue, actions []Action)

	bus     *obs.Bus
	busNode string
}

// NewLoop builds a loop around an existing knowledge base.
func NewLoop(k *Knowledge, now func() time.Duration) *Loop {
	return &Loop{
		knowledge:     k,
		now:           now,
		runtime:       make(map[model.RequirementID]*verify.Monitor),
		violatedSince: make(map[model.RequirementID]time.Duration),
	}
}

// SetBus attaches an observability bus. Every Cycle is published as a
// "mape.cycle" span; detected issues ("mape.issue") and executed
// actions ("mape.execute") are parented on the cycle's span, so a
// trace shows which cycle found and fixed what. node labels the
// emitting loop (typically the hosting gateway/cloud node ID).
func (l *Loop) SetBus(bus *obs.Bus, node string) {
	l.bus = bus
	l.busNode = node
}

// Knowledge returns the loop's knowledge base.
func (l *Loop) Knowledge() *Knowledge { return l.knowledge }

// AddMonitor registers an M-phase observation source.
func (l *Loop) AddMonitor(m MonitorFunc) { l.monitors = append(l.monitors, m) }

// AddRule registers a proposition deriver.
func (l *Loop) AddRule(r PropRule) { l.rules = append(l.rules, r) }

// AddRequirement registers a requirement to analyze; its runtime LTL
// property gets a dedicated three-valued monitor.
func (l *Loop) AddRequirement(r *model.Requirement) {
	l.reqs = append(l.reqs, r)
	l.runtime[r.ID] = verify.NewMonitor(r.RuntimeProperty())
}

// SetPlanner installs the P phase.
func (l *Loop) SetPlanner(p PlanFunc) { l.plan = p }

// SetExecutor installs the E phase.
func (l *Loop) SetExecutor(e ExecuteFunc) { l.execute = e }

// OnCycle registers an observer invoked after every cycle.
func (l *Loop) OnCycle(fn func(obs map[verify.Prop]bool, issues []Issue, actions []Action)) {
	l.onCycle = append(l.onCycle, fn)
}

// Stats returns a copy of the loop's counters.
func (l *Loop) Stats() Stats { return l.stats }

// Observations returns the propositions derived in the last cycle.
func (l *Loop) Observations() map[verify.Prop]bool {
	out := make(map[verify.Prop]bool, len(l.lastObs))
	for p, v := range l.lastObs {
		out[p] = v
	}
	return out
}

// Satisfaction returns per-requirement instantaneous satisfaction from
// the last cycle, for goal-model evaluation.
func (l *Loop) Satisfaction() map[model.RequirementID]bool {
	out := make(map[model.RequirementID]bool, len(l.reqs))
	for _, r := range l.reqs {
		out[r.ID] = l.lastObs[r.Prop]
	}
	return out
}

// Verdict returns the runtime-monitor verdict for a requirement, or
// VerdictUnknown for requirements the loop does not track.
func (l *Loop) Verdict(id model.RequirementID) verify.Verdict {
	m, ok := l.runtime[id]
	if !ok {
		return verify.VerdictUnknown
	}
	return m.Verdict()
}

// Cycle runs one full Monitor→Analyze→Plan→Execute pass.
func (l *Loop) Cycle() {
	l.stats.Cycles++
	span := l.bus.StartSpan("mape.cycle", l.busNode, 0)

	// Monitor.
	for _, m := range l.monitors {
		m(l.knowledge)
	}

	// Analyze: derive propositions, step runtime monitors, find issues.
	obs := make(map[verify.Prop]bool, len(l.rules))
	for _, r := range l.rules {
		obs[r.Prop] = r.Eval(l.knowledge)
	}
	l.lastObs = obs
	var issues []Issue
	for _, r := range l.reqs {
		mon := l.runtime[r.ID]
		mon.Step(obs)
		// Issues track *instantaneous* satisfaction: resilience is the
		// persistence of satisfaction, so a violated-then-recovered
		// requirement stops being an issue even though its invariant
		// monitor verdict latched false (the verdict is carried in the
		// Issue for diagnosis while violated).
		satisfied := obs[r.Prop]
		if satisfied {
			if since, was := l.violatedSince[r.ID]; was {
				l.stats.Recoveries++
				l.stats.TotalRecovery += l.now() - since
				delete(l.violatedSince, r.ID)
			}
			continue
		}
		if _, already := l.violatedSince[r.ID]; !already {
			l.violatedSince[r.ID] = l.now()
		}
		l.stats.IssuesDetected++
		if l.bus.Active() {
			l.bus.Emit("mape.issue", l.busNode, 0, span.ID, "%s violated (monitor %s)", r.ID, mon.Verdict())
		}
		issues = append(issues, Issue{Requirement: r.ID, Prop: r.Prop, MonitorVerdict: mon.Verdict()})
	}
	sort.Slice(issues, func(i, j int) bool { return issues[i].Requirement < issues[j].Requirement })

	// Plan.
	var actions []Action
	if l.plan != nil && len(issues) > 0 {
		actions = l.plan(l.knowledge, issues)
	}

	// Execute.
	if l.execute != nil {
		for _, a := range actions {
			ok := l.execute(l.knowledge, a)
			if ok {
				l.stats.ActionsExecuted++
			} else {
				l.stats.ActionsFailed++
			}
			if l.bus.Active() {
				l.bus.Emit("mape.execute", l.busNode, 0, span.ID, "%s target=%s ok=%v", a.Name, a.Target, ok)
			}
		}
	}

	for _, fn := range l.onCycle {
		fn(obs, issues, actions)
	}
	span.End("issues=%d actions=%d", len(issues), len(actions))
}
