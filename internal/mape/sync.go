package mape

import (
	"time"

	"repro/internal/crdt"
	"repro/internal/simnet"
)

// syncMsg carries a knowledge delta between loops.
type syncMsg struct {
	Entries []crdt.Entry
}

// Size reports the message's encoded wire size from real per-entry
// sizing (key + value payload + clock), matching the store sync path's
// accounting.
func (m syncMsg) Size() int { return 8 + crdt.EntriesSize(m.Entries) }

// RegisterWire registers the knowledge-sync message with a wire codec
// (e.g. realnet's gob transport). The entry payload types ride on the
// dataflow/crdt registrations.
func RegisterWire(register func(any)) {
	register(syncMsg{})
}

// Syncer implements the paper's "information sharing" decentralization
// pattern (§V): each MAPE loop self-adapts locally but periodically
// shares its knowledge with peer loops, so that analysis and planning
// at the edge can use system-wide context without any central
// knowledge store. Deltas ride on the CRDT merge semantics of the
// knowledge base, so sharing is safe under partitions, message loss and
// re-delivery.
type Syncer struct {
	port     simnet.Port
	loop     *Loop
	peers    []simnet.NodeID
	interval time.Duration
	lastSent time.Duration
	// lastVer is the knowledge version at the previous share: a
	// quiescent loop (no new local writes or absorbed wins) skips the
	// export and the send entirely instead of re-sharing the boundary
	// entries every round.
	lastVer  uint64
	ticker   *simnet.Ticker
	absorbed int
}

// NewSyncer wires knowledge sharing for loop over port with the given
// peers.
func NewSyncer(port simnet.Port, loop *Loop, peers []simnet.NodeID, interval time.Duration) *Syncer {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Syncer{
		port:     port,
		loop:     loop,
		peers:    append([]simnet.NodeID(nil), peers...),
		interval: interval,
		lastSent: -1, // ship everything on the first round, including t=0 writes
	}
	port.OnMessage(s.handle)
	return s
}

// Start begins periodic delta exchange.
func (s *Syncer) Start() {
	s.ticker = s.port.Every(s.interval, s.share)
}

// Stop halts sharing.
func (s *Syncer) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Absorbed returns how many remote entries won locally — a measure of
// how much context arrived from peers.
func (s *Syncer) Absorbed() int { return s.absorbed }

// ShareNow ships the pending delta immediately, outside the periodic
// cadence. Island rejoin calls it so the healed side sees the island's
// locally-accumulated knowledge before the next scheduled round.
func (s *Syncer) ShareNow() { s.share() }

func (s *Syncer) share() {
	k := s.loop.Knowledge()
	if k.Version() == s.lastVer {
		return // quiescent since the last share: nothing to export
	}
	s.lastVer = k.Version()
	delta := k.Delta(s.lastSent)
	if len(delta) == 0 {
		return
	}
	// Advance the watermark to just below the newest shipped entry:
	// boundary entries are re-sent once next round, which the CRDT
	// merge absorbs idempotently, and nothing written at the same
	// instant after this share can be skipped.
	s.lastSent = s.loop.Knowledge().MaxTimestamp() - 1
	for _, p := range s.peers {
		if p != s.port.ID() {
			s.port.Send(p, syncMsg{Entries: delta})
		}
	}
}

func (s *Syncer) handle(_ simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(syncMsg)
	if !ok {
		return
	}
	s.absorbed += s.loop.Knowledge().Absorb(m.Entries)
}
