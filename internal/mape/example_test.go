package mape_test

import (
	"fmt"
	"time"

	"repro/internal/crdt"
	"repro/internal/mape"
	"repro/internal/model"
)

// A complete MAPE-K loop: Monitor feeds knowledge, Analyze evaluates a
// requirement, Plan emits a counteraction, Execute applies it — one
// Cycle call per control period.
func ExampleLoop() {
	var now time.Duration
	clock := func() time.Duration { return now }

	temperature := 30.0 // the "environment"
	cooling := false

	loop := mape.NewLoop(mape.NewKnowledge(crdt.ReplicaID("edge"), clock), clock)
	loop.AddMonitor(func(k *mape.Knowledge) { k.Put("temp", temperature) })
	loop.AddRule(mape.PropRule{Prop: "temp_ok", Eval: func(k *mape.Knowledge) bool {
		v, ok := k.GetFloat("temp")
		return ok && v <= 26
	}})
	loop.AddRequirement(&model.Requirement{ID: "R-comfort", Prop: "temp_ok"})
	loop.SetPlanner(func(_ *mape.Knowledge, issues []mape.Issue) []mape.Action {
		return []mape.Action{{Name: "engage-cooling"}}
	})
	loop.SetExecutor(func(_ *mape.Knowledge, a mape.Action) bool {
		cooling = true
		return true
	})

	loop.Cycle()
	fmt.Println("cooling engaged:", cooling)

	temperature = 24 // the action worked
	now = 10 * time.Second
	loop.Cycle()
	fmt.Println("satisfied:", loop.Satisfaction()["R-comfort"])
	fmt.Println("recoveries:", loop.Stats().Recoveries)

	// Output:
	// cooling engaged: true
	// satisfied: true
	// recoveries: 1
}
