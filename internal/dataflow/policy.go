// Package dataflow implements the paper's inter-IoT data flows (§VI,
// Fig 4): data items carry labels (topic, sensitivity, origin
// jurisdiction), every flow between components crosses a policy engine
// that enforces privacy scopes ("what data should leave or enter a
// component"), and replicated stores synchronize via CRDT deltas so
// that availability and timeliness can be maintained without central
// storage. The policy engine can also run in observe-only mode, which
// is how the experiments quantify the privacy violations of ungoverned
// (cloud-mediated) architectures.
package dataflow

import (
	"sort"
	"time"

	"repro/internal/crdt"
	"repro/internal/space"
)

// Sensitivity classifies data for privacy purposes.
type Sensitivity int

// Sensitivity levels, least to most restricted.
const (
	// Public data may flow anywhere.
	Public Sensitivity = iota + 1
	// Internal data may not enter untrusted domains.
	Internal
	// Sensitive data may not leave its origin jurisdiction and may not
	// enter untrusted domains (GDPR-style).
	Sensitive
)

func (s Sensitivity) String() string {
	switch s {
	case Public:
		return "public"
	case Internal:
		return "internal"
	case Sensitive:
		return "sensitive"
	default:
		return "sensitivity(?)"
	}
}

// Label is the governance metadata attached to every data item.
type Label struct {
	Topic        string
	Sensitivity  Sensitivity
	Origin       space.DomainID
	Jurisdiction space.Jurisdiction
	// TTL, when positive, bounds the item's useful life: stores treat
	// an item older than its TTL as absent (the timeliness data goal —
	// stale control inputs are worse than missing ones).
	TTL time.Duration
}

// Hop is one step of an item's lineage: where the item was and when
// it got there.
type Hop struct {
	Node   string
	At     time.Duration
	Action string // "produced" or "received"
}

// Item is one governed datum. Lineage records the item's provenance —
// the paper's data-lineage requirement (§VI): its origin and every
// node it moved through, appended by the stores as the item travels.
type Item struct {
	Key        string
	Value      any
	Label      Label
	ProducedAt time.Duration
	Lineage    []Hop
}

// WithHop returns a copy of the item with one more lineage step. The
// original is not modified (items in flight are shared values).
func (it Item) WithHop(h Hop) Item {
	out := it
	out.Lineage = make([]Hop, 0, len(it.Lineage)+1)
	out.Lineage = append(out.Lineage, it.Lineage...)
	out.Lineage = append(out.Lineage, h)
	return out
}

// EncodedSize reports the label's encoded wire size: topic, origin and
// jurisdiction strings, the sensitivity byte and the TTL.
func (l Label) EncodedSize() int {
	return len(l.Topic) + 1 + len(l.Origin) + len(l.Jurisdiction) + 8
}

// EncodedSize reports one lineage hop's encoded wire size.
func (h Hop) EncodedSize() int {
	return len(h.Node) + 8 + len(h.Action)
}

// EncodedSize reports the item's encoded wire size — key, value
// payload, label, produced-at stamp and the full lineage chain. It
// implements crdt.SizedValue, so entries carrying Items are sized
// accurately by the sync byte accounting instead of by a flat guess.
func (it Item) EncodedSize() int {
	n := len(it.Key) + crdt.ValueSize(it.Value) + it.Label.EncodedSize() + 8
	for _, h := range it.Lineage {
		n += h.EncodedSize()
	}
	return n
}

// FlowContext describes one prospective item transfer for policy
// evaluation.
type FlowContext struct {
	Item Item
	From space.Domain
	To   space.Domain
}

// Rule is one policy clause: if Applies, the flow is allowed or denied
// by Allow; evaluation stops at the first applicable rule.
type Rule struct {
	Name    string
	Applies func(FlowContext) bool
	Allow   bool
}

// Decision is the policy outcome for a flow.
type Decision struct {
	Allowed bool
	Rule    string // name of the deciding rule, or "default"
}

// Mode selects whether the engine blocks disallowed flows or merely
// records them.
type Mode int

// Engine modes.
const (
	// Enforce blocks disallowed flows.
	Enforce Mode = iota + 1
	// Observe lets everything through but records violations — the
	// ungoverned baseline.
	Observe
)

// Engine evaluates flow policies. Construct with NewEngine.
type Engine struct {
	rules        []Rule
	defaultAllow bool
	mode         Mode

	evaluated  int
	denied     int
	violations []Violation
}

// Violation records a flow that policy disallowed (blocked under
// Enforce, witnessed under Observe).
type Violation struct {
	At   time.Duration
	Key  string
	Rule string
	From space.DomainID
	To   space.DomainID
}

// NewEngine builds an engine with the given rules, evaluated in order.
// defaultAllow decides flows no rule covers.
func NewEngine(mode Mode, defaultAllow bool, rules ...Rule) *Engine {
	return &Engine{rules: append([]Rule(nil), rules...), defaultAllow: defaultAllow, mode: mode}
}

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.mode }

// Decide evaluates the policy for a flow.
func (e *Engine) Decide(fc FlowContext) Decision {
	e.evaluated++
	for _, r := range e.rules {
		if r.Applies(fc) {
			return Decision{Allowed: r.Allow, Rule: r.Name}
		}
	}
	return Decision{Allowed: e.defaultAllow, Rule: "default"}
}

// Admit decides a flow and applies the engine's mode: it returns
// whether the item should actually be transferred, recording a
// violation when policy said no. now is the current virtual time for
// the violation record.
func (e *Engine) Admit(fc FlowContext, now time.Duration) bool {
	d := e.Decide(fc)
	if d.Allowed {
		return true
	}
	e.denied++
	e.violations = append(e.violations, Violation{
		At: now, Key: fc.Item.Key, Rule: d.Rule, From: fc.From.ID, To: fc.To.ID,
	})
	return e.mode == Observe
}

// Violations returns a copy of all recorded violations.
func (e *Engine) Violations() []Violation {
	out := make([]Violation, len(e.violations))
	copy(out, e.violations)
	return out
}

// ViolationCount returns the number of recorded violations without
// copying them.
func (e *Engine) ViolationCount() int { return len(e.violations) }

// Stats returns (flows evaluated, flows denied by policy).
func (e *Engine) Stats() (evaluated, denied int) { return e.evaluated, e.denied }

// --- standard rules from the paper's privacy discussion ---

// RuleSensitiveStaysInJurisdiction forbids Sensitive data from leaving
// the jurisdiction it was produced in (the GDPR scope of Fig 4).
func RuleSensitiveStaysInJurisdiction() Rule {
	return Rule{
		Name: "sensitive-stays-in-jurisdiction",
		Applies: func(fc FlowContext) bool {
			return fc.Item.Label.Sensitivity == Sensitive &&
				fc.To.Jurisdiction != fc.Item.Label.Jurisdiction
		},
		Allow: false,
	}
}

// RuleNoConfidentialToUntrusted forbids Internal and Sensitive data
// from entering untrusted domains.
func RuleNoConfidentialToUntrusted() Rule {
	return Rule{
		Name: "no-confidential-to-untrusted",
		Applies: func(fc FlowContext) bool {
			return fc.Item.Label.Sensitivity >= Internal && !fc.To.Trusted
		},
		Allow: false,
	}
}

// RuleTopicAllowlist permits only the listed topics to the given
// destination domain; other topics fall through to later rules.
func RuleTopicAllowlist(to space.DomainID, topics ...string) Rule {
	allowed := make(map[string]bool, len(topics))
	for _, t := range topics {
		allowed[t] = true
	}
	return Rule{
		Name: "topic-allowlist:" + string(to),
		Applies: func(fc FlowContext) bool {
			return fc.To.ID == to && !allowed[fc.Item.Label.Topic]
		},
		Allow: false,
	}
}

// DefaultPrivacyEngine returns an enforcing engine with the paper's two
// core privacy scopes.
func DefaultPrivacyEngine() *Engine {
	return NewEngine(Enforce, true,
		RuleSensitiveStaysInJurisdiction(),
		RuleNoConfidentialToUntrusted(),
	)
}

// ObservedEngine returns an observe-only engine with the same rules,
// for measuring what an ungoverned data plane leaks.
func ObservedEngine() *Engine {
	return NewEngine(Observe, true,
		RuleSensitiveStaysInJurisdiction(),
		RuleNoConfidentialToUntrusted(),
	)
}

// SortViolationsByTime orders violations chronologically in place.
func SortViolationsByTime(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].At < vs[j].At })
}
