package dataflow

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/space"
)

// twoDomains: "eu" (GDPR, trusted) and "us" (CCPA, untrusted).
func twoDomains() *space.Map {
	m := space.NewMap()
	m.AddDomain(space.Domain{ID: "eu", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	m.AddDomain(space.Domain{ID: "us", Jurisdiction: space.JurisdictionCCPA, Trusted: false})
	m.AddDomain(space.Domain{ID: "eu2", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	return m
}

func euDomain(m *space.Map) space.Domain  { d, _ := m.Domain("eu"); return d }
func usDomain(m *space.Map) space.Domain  { d, _ := m.Domain("us"); return d }
func eu2Domain(m *space.Map) space.Domain { d, _ := m.Domain("eu2"); return d }

func sensitiveItem(key string) Item {
	return Item{
		Key:   key,
		Value: 120.5,
		Label: Label{Topic: "heart-rate", Sensitivity: Sensitive, Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
	}
}

func publicItem(key string) Item {
	return Item{
		Key:   key,
		Value: 21.0,
		Label: Label{Topic: "temperature", Sensitivity: Public, Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
	}
}

func TestSensitivityString(t *testing.T) {
	if Public.String() != "public" || Internal.String() != "internal" || Sensitive.String() != "sensitive" {
		t.Fatal("names wrong")
	}
}

func TestRuleSensitiveStaysInJurisdiction(t *testing.T) {
	m := twoDomains()
	e := DefaultPrivacyEngine()
	// Sensitive GDPR data to a CCPA domain: denied.
	d := e.Decide(FlowContext{Item: sensitiveItem("k"), From: euDomain(m), To: usDomain(m)})
	if d.Allowed {
		t.Fatal("sensitive data allowed out of jurisdiction")
	}
	if d.Rule != "sensitive-stays-in-jurisdiction" {
		t.Fatalf("rule = %q", d.Rule)
	}
	// Same jurisdiction, different domain: allowed.
	d2 := e.Decide(FlowContext{Item: sensitiveItem("k"), From: euDomain(m), To: eu2Domain(m)})
	if !d2.Allowed {
		t.Fatal("sensitive data blocked within jurisdiction")
	}
	// Public data anywhere: allowed.
	d3 := e.Decide(FlowContext{Item: publicItem("k"), From: euDomain(m), To: usDomain(m)})
	if !d3.Allowed {
		t.Fatal("public data blocked")
	}
}

func TestRuleNoConfidentialToUntrusted(t *testing.T) {
	m := twoDomains()
	e := DefaultPrivacyEngine()
	internal := Item{Key: "k", Label: Label{Topic: "ops", Sensitivity: Internal, Jurisdiction: space.JurisdictionCCPA}}
	d := e.Decide(FlowContext{Item: internal, From: usDomain(m), To: usDomain(m)})
	if d.Allowed {
		t.Fatal("internal data allowed into untrusted domain")
	}
	if d.Rule != "no-confidential-to-untrusted" {
		t.Fatalf("rule = %q", d.Rule)
	}
}

func TestRuleTopicAllowlist(t *testing.T) {
	m := twoDomains()
	e := NewEngine(Enforce, true, RuleTopicAllowlist("us", "temperature"))
	if d := e.Decide(FlowContext{Item: publicItem("k"), From: euDomain(m), To: usDomain(m)}); !d.Allowed {
		t.Fatal("allowlisted topic blocked")
	}
	other := Item{Key: "k", Label: Label{Topic: "secret-topic", Sensitivity: Public}}
	if d := e.Decide(FlowContext{Item: other, From: euDomain(m), To: usDomain(m)}); d.Allowed {
		t.Fatal("non-allowlisted topic allowed")
	}
	// Other destinations unaffected.
	if d := e.Decide(FlowContext{Item: other, From: euDomain(m), To: eu2Domain(m)}); !d.Allowed {
		t.Fatal("allowlist leaked to other destination")
	}
}

func TestAdmitEnforceVsObserve(t *testing.T) {
	m := twoDomains()
	fc := FlowContext{Item: sensitiveItem("k"), From: euDomain(m), To: usDomain(m)}

	enf := DefaultPrivacyEngine()
	if enf.Admit(fc, time.Second) {
		t.Fatal("enforcing engine admitted a violation")
	}
	obs := ObservedEngine()
	if !obs.Admit(fc, time.Second) {
		t.Fatal("observing engine blocked the flow")
	}
	// Both recorded the violation.
	for _, e := range []*Engine{enf, obs} {
		vs := e.Violations()
		if len(vs) != 1 || vs[0].Key != "k" || vs[0].At != time.Second {
			t.Fatalf("violations = %+v", vs)
		}
	}
	if ev, den := enf.Stats(); ev != 1 || den != 1 {
		t.Fatalf("stats = %d/%d", ev, den)
	}
}

func TestDefaultDecision(t *testing.T) {
	m := twoDomains()
	deny := NewEngine(Enforce, false)
	if d := deny.Decide(FlowContext{Item: publicItem("k"), From: euDomain(m), To: euDomain(m)}); d.Allowed || d.Rule != "default" {
		t.Fatalf("decision = %+v", d)
	}
}

func TestSortViolations(t *testing.T) {
	vs := []Violation{{At: 3}, {At: 1}, {At: 2}}
	SortViolationsByTime(vs)
	if vs[0].At != 1 || vs[2].At != 3 {
		t.Fatalf("sorted = %v", vs)
	}
}

// --- store integration over simnet ---

// storeRig: edge store in "eu", peer store in peerDomain.
func storeRig(t *testing.T, peerDomain space.DomainID, engine func() *Engine) (*simnet.Sim, *Store, *Store) {
	t.Helper()
	sim := simnet.New(simnet.WithSeed(1))
	m := twoDomains()
	m.Place("edge", space.Point{X: 0, Y: 0}, "eu")
	m.Place("peer", space.Point{X: 10, Y: 0}, peerDomain)

	edge := NewStore(sim.AddNode("edge"), m, StoreConfig{
		Peers: []simnet.NodeID{"peer"}, SyncInterval: 100 * time.Millisecond, Engine: engine(),
	})
	peer := NewStore(sim.AddNode("peer"), m, StoreConfig{
		Peers: []simnet.NodeID{"edge"}, SyncInterval: 100 * time.Millisecond, Engine: engine(),
	})
	edge.Start()
	peer.Start()
	return sim, edge, peer
}

func TestStoreSyncsPublicData(t *testing.T) {
	sim, edge, peer := storeRig(t, "us", DefaultPrivacyEngine)
	edge.Put(publicItem("room1/temp"))
	sim.RunUntil(time.Second)
	item, ok := peer.Get("room1/temp")
	if !ok || item.Value != 21.0 {
		t.Fatalf("peer item = %+v/%v", item, ok)
	}
	if peer.Received() == 0 {
		t.Fatal("nothing received")
	}
}

func TestStoreBlocksSensitiveCrossJurisdiction(t *testing.T) {
	sim, edge, peer := storeRig(t, "us", DefaultPrivacyEngine)
	edge.Put(sensitiveItem("patient/hr"))
	edge.Put(publicItem("room1/temp"))
	sim.RunUntil(time.Second)
	if _, ok := peer.Get("patient/hr"); ok {
		t.Fatal("sensitive item crossed jurisdiction under enforcement")
	}
	if _, ok := peer.Get("room1/temp"); !ok {
		t.Fatal("public item was blocked too")
	}
	if len(edge.Engine().Violations()) == 0 {
		t.Fatal("sender recorded no violations")
	}
}

func TestStoreAllowsSensitiveWithinJurisdiction(t *testing.T) {
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(sensitiveItem("patient/hr"))
	sim.RunUntil(time.Second)
	if _, ok := peer.Get("patient/hr"); !ok {
		t.Fatal("sensitive item blocked within jurisdiction")
	}
}

func TestObserveModeLeaksButCounts(t *testing.T) {
	sim, edge, peer := storeRig(t, "us", ObservedEngine)
	edge.Put(sensitiveItem("patient/hr"))
	sim.RunUntil(time.Second)
	if _, ok := peer.Get("patient/hr"); !ok {
		t.Fatal("observe mode should let the item through")
	}
	// Violation recorded at sender out-flow and receiver in-flow.
	if len(edge.Engine().Violations()) == 0 {
		t.Fatal("sender saw no violation")
	}
	if len(peer.Engine().Violations()) == 0 {
		t.Fatal("receiver saw no violation")
	}
}

func TestReceiverInFlowPolicyRejects(t *testing.T) {
	// Sender observes (leaks), receiver enforces: the item must be
	// rejected at the receiver and counted.
	sim := simnet.New(simnet.WithSeed(2))
	m := twoDomains()
	m.Place("edge", space.Point{}, "eu")
	m.Place("peer", space.Point{X: 5}, "us")
	edge := NewStore(sim.AddNode("edge"), m, StoreConfig{
		Peers: []simnet.NodeID{"peer"}, SyncInterval: 100 * time.Millisecond, Engine: ObservedEngine(),
	})
	peer := NewStore(sim.AddNode("peer"), m, StoreConfig{
		SyncInterval: 100 * time.Millisecond, Engine: DefaultPrivacyEngine(),
	})
	edge.Start()
	peer.Start()
	edge.Put(sensitiveItem("patient/hr"))
	sim.RunUntil(time.Second)
	if _, ok := peer.Get("patient/hr"); ok {
		t.Fatal("receiver enforcement failed")
	}
	if peer.Rejected() == 0 {
		t.Fatal("receiver counted no rejections")
	}
}

func TestStalenessTracksProducedAt(t *testing.T) {
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	sim.RunUntil(500 * time.Millisecond)
	edge.Put(publicItem("k"))
	sim.RunUntil(3 * time.Second)
	st, ok := peer.Staleness("k")
	if !ok {
		t.Fatal("item missing at peer")
	}
	if st != 2500*time.Millisecond {
		t.Fatalf("staleness = %v, want 2.5s", st)
	}
	if _, ok := peer.Staleness("ghost"); ok {
		t.Fatal("staleness of missing key")
	}
}

func TestStoreSyncSurvivesPartitionAndCatchesUp(t *testing.T) {
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	sim.Partition([]simnet.NodeID{"edge"}, []simnet.NodeID{"peer"})
	edge.Put(publicItem("during-partition"))
	sim.RunUntil(2 * time.Second)
	if _, ok := peer.Get("during-partition"); ok {
		t.Fatal("item crossed partition")
	}
	sim.HealPartition()
	// The boundary-resend watermark keeps retrying the last batch; a
	// subsequent write guarantees the old one ships too (both are in
	// the delta window).
	edge.Put(publicItem("after-heal"))
	sim.RunUntil(4 * time.Second)
	if _, ok := peer.Get("after-heal"); !ok {
		t.Fatal("post-heal item missing")
	}
}

func TestItemTTLExpires(t *testing.T) {
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	item := publicItem("ephemeral")
	item.Label.TTL = 2 * time.Second
	edge.Put(item)
	sim.RunUntil(time.Second)
	if _, ok := edge.Get("ephemeral"); !ok {
		t.Fatal("fresh item absent locally")
	}
	if _, ok := peer.Get("ephemeral"); !ok {
		t.Fatal("fresh item absent at peer")
	}
	sim.RunUntil(4 * time.Second)
	if _, ok := edge.Get("ephemeral"); ok {
		t.Fatal("expired item still readable locally")
	}
	if _, ok := peer.Get("ephemeral"); ok {
		t.Fatal("expired item still readable at peer")
	}
	if _, ok := peer.Staleness("ephemeral"); ok {
		t.Fatal("expired item still has staleness")
	}
	// A newer write resurrects the key.
	fresh := publicItem("ephemeral")
	fresh.Label.TTL = 2 * time.Second
	edge.Put(fresh)
	if _, ok := edge.Get("ephemeral"); !ok {
		t.Fatal("rewritten item absent")
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	sim, edge, _ := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(publicItem("forever"))
	sim.RunUntil(time.Hour)
	if _, ok := edge.Get("forever"); !ok {
		t.Fatal("TTL-less item expired")
	}
}

func TestStoreConvergesUnderLossAndDuplication(t *testing.T) {
	// The CRDT data plane must tolerate datagram loss AND duplication:
	// deltas are re-shipped (boundary watermark) and merges are
	// idempotent.
	sim := simnet.New(simnet.WithSeed(9), simnet.WithDefaultLoss(0.3), simnet.WithDuplicateProb(0.3))
	m := twoDomains()
	m.Place("edge", space.Point{}, "eu")
	m.Place("peer", space.Point{X: 5}, "eu2")
	edge := NewStore(sim.AddNode("edge"), m, StoreConfig{
		Peers: []simnet.NodeID{"peer"}, SyncInterval: 200 * time.Millisecond,
	})
	peer := NewStore(sim.AddNode("peer"), m, StoreConfig{SyncInterval: 200 * time.Millisecond})
	edge.Start()
	peer.Start()

	for i := 0; i < 20; i++ {
		i := i
		sim.At(time.Duration(i)*time.Second, func() {
			item := publicItem("k")
			item.Value = float64(i)
			edge.Put(item)
		})
	}
	sim.RunUntil(40 * time.Second)
	got, ok := peer.Get("k")
	if !ok || got.Value != 19.0 {
		t.Fatalf("peer value = %+v/%v, want final write 19", got, ok)
	}
}

func TestLineageSingleHop(t *testing.T) {
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(publicItem("k"))
	sim.RunUntil(time.Second)

	local := edge.Lineage("k")
	if len(local) != 1 || local[0].Node != "edge" || local[0].Action != "produced" {
		t.Fatalf("producer lineage = %+v", local)
	}
	remote := peer.Lineage("k")
	if len(remote) != 2 {
		t.Fatalf("consumer lineage = %+v, want produced+received", remote)
	}
	if remote[0].Action != "produced" || remote[1].Action != "received" || remote[1].Node != "peer" {
		t.Fatalf("consumer lineage = %+v", remote)
	}
	if remote[1].At < remote[0].At {
		t.Fatal("lineage timestamps not ordered")
	}
}

func TestLineageMultiHopRelay(t *testing.T) {
	// producer → relay → consumer: the consumer sees three hops.
	sim := simnet.New(simnet.WithSeed(5))
	m := twoDomains()
	m.Place("producer", space.Point{}, "eu")
	m.Place("relay", space.Point{X: 5}, "eu")
	m.Place("consumer", space.Point{X: 10}, "eu2")

	producer := NewStore(sim.AddNode("producer"), m, StoreConfig{
		Peers: []simnet.NodeID{"relay"}, SyncInterval: 100 * time.Millisecond,
	})
	// Forwarding received entries onward is the relay role: a plain
	// store ships only its local writes.
	relay := NewStore(sim.AddNode("relay"), m, StoreConfig{
		Peers: []simnet.NodeID{"consumer"}, SyncInterval: 100 * time.Millisecond,
		Relay: true,
	})
	consumer := NewStore(sim.AddNode("consumer"), m, StoreConfig{
		SyncInterval: 100 * time.Millisecond,
	})
	producer.Start()
	relay.Start()
	consumer.Start()

	producer.Put(publicItem("k"))
	sim.RunUntil(2 * time.Second)

	hops := consumer.Lineage("k")
	if len(hops) != 3 {
		t.Fatalf("lineage = %+v, want 3 hops", hops)
	}
	wantNodes := []string{"producer", "relay", "consumer"}
	for i, w := range wantNodes {
		if hops[i].Node != w {
			t.Fatalf("hop %d = %+v, want node %s", i, hops[i], w)
		}
	}
}

func TestLineageMissingKey(t *testing.T) {
	_, edge, _ := storeRig(t, "eu2", DefaultPrivacyEngine)
	if got := edge.Lineage("ghost"); got != nil {
		t.Fatalf("lineage of missing key = %v", got)
	}
}

func TestWithHopDoesNotMutateOriginal(t *testing.T) {
	orig := publicItem("k")
	orig.Lineage = []Hop{{Node: "a", Action: "produced"}}
	hopped := orig.WithHop(Hop{Node: "b", Action: "received"})
	if len(orig.Lineage) != 1 {
		t.Fatal("WithHop mutated the original")
	}
	if len(hopped.Lineage) != 2 || hopped.Lineage[1].Node != "b" {
		t.Fatalf("hopped lineage = %+v", hopped.Lineage)
	}
}

func TestStoreQuiescentAfterConvergence(t *testing.T) {
	// The delta protocol's whole point: once every peer has acked, a
	// store with no new writes ships nothing — no frames, no entries.
	// (The old watermark protocol re-shipped its newest entries every
	// turn thanks to a boundary off-by-one.)
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(publicItem("k1"))
	edge.Put(publicItem("k2"))
	sim.RunUntil(2 * time.Second)
	if _, ok := peer.Get("k2"); !ok {
		t.Fatal("not converged")
	}
	mid := edge.SyncStats()
	sim.RunUntil(30 * time.Second)
	end := edge.SyncStats()
	if end.FramesSent != mid.FramesSent || end.EntriesSent != mid.EntriesSent {
		t.Fatalf("converged store kept sending: %+v -> %+v", mid, end)
	}
	if end.BytesSent != mid.BytesSent {
		t.Fatalf("converged store kept spending bytes: %d -> %d", mid.BytesSent, end.BytesSent)
	}
}

func TestHealShipsExactlyMissedKeys(t *testing.T) {
	// While the peer is partitioned away, the edge overwrites one key
	// many times and writes a second key. On heal the peer must receive
	// exactly the two coalesced keys — not one entry per overwrite, and
	// not a full reship of keys it already holds.
	sim, edge, peer := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(publicItem("settled"))
	sim.RunUntil(2 * time.Second)
	if _, ok := peer.Get("settled"); !ok {
		t.Fatal("pre-partition key missing")
	}

	sim.Partition([]simnet.NodeID{"edge"}, []simnet.NodeID{"peer"})
	for i := 0; i < 10; i++ {
		item := publicItem("hot")
		item.Value = float64(i)
		edge.Put(item)
	}
	edge.Put(publicItem("cold"))
	// Before any sync turn the backlog is the coalesced key set.
	if got := edge.PendingFor("peer"); got != 2 {
		t.Fatalf("pending for downed peer = %d, want 2 coalesced keys", got)
	}
	sim.RunUntil(4 * time.Second)

	before := peer.SyncStats()
	sim.HealPartition()
	sim.RunUntil(8 * time.Second)
	after := peer.SyncStats()
	got, ok := peer.Get("hot")
	if !ok || got.Value != 9.0 {
		t.Fatalf("hot = %+v/%v, want final overwrite", got, ok)
	}
	if _, ok := peer.Get("cold"); !ok {
		t.Fatal("cold missing after heal")
	}
	// Exactly the missed keys crossed the wire: the settled key did not
	// reship and the ten overwrites collapsed to one entry.
	if in := after.EntriesIn - before.EntriesIn; in != 2 {
		t.Fatalf("entries shipped on heal = %d, want 2", in)
	}
}

func TestPolicyRejectedKeysDoNotConsumeFrames(t *testing.T) {
	// Sensitive items bound for another jurisdiction are dropped from
	// the delta buffer at the sender — they must not occupy frames,
	// generate retransmissions, or stall acks for admissible entries.
	sim, edge, peer := storeRig(t, "us", DefaultPrivacyEngine)
	for i := 0; i < 5; i++ {
		edge.Put(sensitiveItem(fmt.Sprintf("secret/%d", i)))
	}
	edge.Put(publicItem("open"))
	sim.RunUntil(2 * time.Second)
	if _, ok := peer.Get("open"); !ok {
		t.Fatal("admissible key blocked")
	}
	st := edge.SyncStats()
	if st.EntriesSent != 1 {
		t.Fatalf("entries sent = %d, want only the admissible one", st.EntriesSent)
	}
	if edge.PendingFor("peer") != 0 {
		t.Fatal("rejected keys stuck in the delta buffer")
	}
	mid := st
	sim.RunUntil(10 * time.Second)
	end := edge.SyncStats()
	if end.FramesSent != mid.FramesSent {
		t.Fatal("rejected keys caused retransmission")
	}
}

func TestRelayedFramesStopTheChain(t *testing.T) {
	// hub → a, with a peered back to hub: a receives a relayed frame
	// and must not dirty it back toward the hub (or anyone) — a hub
	// broadcast terminates redistribution.
	sim := simnet.New(simnet.WithSeed(7))
	m := twoDomains()
	m.Place("hub", space.Point{}, "eu")
	m.Place("origin", space.Point{X: 5}, "eu")
	m.Place("a", space.Point{X: 10}, "eu")

	hub := NewStore(sim.AddNode("hub"), m, StoreConfig{
		Peers: []simnet.NodeID{"origin", "a"}, SyncInterval: 100 * time.Millisecond, Relay: true,
	})
	origin := NewStore(sim.AddNode("origin"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	a := NewStore(sim.AddNode("a"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	hub.Start()
	origin.Start()
	a.Start()

	origin.Put(publicItem("k"))
	sim.RunUntil(2 * time.Second)
	if _, ok := a.Get("k"); !ok {
		t.Fatal("hub did not relay")
	}
	// a's only traffic toward the hub is acks: no frames, no entries.
	if st := a.SyncStats(); st.EntriesSent != 0 {
		t.Fatalf("non-relay store re-forwarded %d relayed entries", st.EntriesSent)
	}
}

func TestRelayInterestScopesRedistribution(t *testing.T) {
	// Two consumers behind a hub: one declares interest in "temp/*"
	// only, the other never declares. The hub must relay everything to
	// the undeclared peer and only the declared keys to the scoped one.
	sim := simnet.New(simnet.WithSeed(8))
	m := twoDomains()
	m.Place("hub", space.Point{}, "eu")
	m.Place("origin", space.Point{X: 5}, "eu")
	m.Place("scoped", space.Point{X: 10}, "eu")
	m.Place("wide", space.Point{X: 15}, "eu")

	hub := NewStore(sim.AddNode("hub"), m, StoreConfig{
		Peers: []simnet.NodeID{"origin", "scoped", "wide"}, SyncInterval: 100 * time.Millisecond, Relay: true,
	})
	origin := NewStore(sim.AddNode("origin"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	scoped := NewStore(sim.AddNode("scoped"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	wide := NewStore(sim.AddNode("wide"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	hub.Start()
	origin.Start()
	scoped.Start()
	wide.Start()
	scoped.DeclareInterest("hub", []string{"temp/1"})

	origin.Put(publicItem("temp/1"))
	origin.Put(publicItem("occ/1"))
	sim.RunUntil(2 * time.Second)

	if _, ok := scoped.Get("temp/1"); !ok {
		t.Fatal("declared key not relayed")
	}
	if _, ok := scoped.Get("occ/1"); ok {
		t.Fatal("undeclared key relayed to scoped peer")
	}
	for _, k := range []string{"temp/1", "occ/1"} {
		if _, ok := wide.Get(k); !ok {
			t.Fatalf("undeclared peer missing %s: interest leaked", k)
		}
	}
}

func TestRelayInterestPreSeedsNewKeys(t *testing.T) {
	// A peer that declares interest in a key the hub already holds gets
	// the current state immediately — a controller that just gained a
	// zone must not wait for the next upstream write.
	sim := simnet.New(simnet.WithSeed(11))
	m := twoDomains()
	m.Place("hub", space.Point{}, "eu")
	m.Place("origin", space.Point{X: 5}, "eu")
	m.Place("late", space.Point{X: 10}, "eu")

	hub := NewStore(sim.AddNode("hub"), m, StoreConfig{
		Peers: []simnet.NodeID{"origin", "late"}, SyncInterval: 100 * time.Millisecond, Relay: true,
	})
	origin := NewStore(sim.AddNode("origin"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	late := NewStore(sim.AddNode("late"), m, StoreConfig{
		Peers: []simnet.NodeID{"hub"}, SyncInterval: 100 * time.Millisecond,
	})
	hub.Start()
	origin.Start()
	late.Start()
	// Scope "late" to nothing; the hub learns the empty set.
	late.DeclareInterest("hub", nil)

	origin.Put(publicItem("zone9"))
	sim.RunUntil(2 * time.Second)
	if _, ok := late.Get("zone9"); ok {
		t.Fatal("key outside the declared set was relayed")
	}

	// Now the peer gains the zone. No further upstream writes happen;
	// the pre-seed alone must deliver the hub's current entry.
	sim.At(2*time.Second+time.Millisecond, func() {
		late.DeclareInterest("hub", []string{"zone9"})
	})
	sim.RunUntil(4 * time.Second)
	if _, ok := late.Get("zone9"); !ok {
		t.Fatal("newly declared key not pre-seeded from hub state")
	}
}

func TestStoreStopAndKeys(t *testing.T) {
	sim, edge, _ := storeRig(t, "eu2", DefaultPrivacyEngine)
	edge.Put(publicItem("b"))
	edge.Put(publicItem("a"))
	keys := edge.Keys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("keys = %v", keys)
	}
	edge.Stop()
	before := sim.Stats().Sent
	sim.RunUntil(2 * time.Second)
	// Peer still sends (it wasn't stopped); assert edge stopped by
	// checking its deltas don't flow: peer never receives the items.
	_ = before
	if _, ok := edge.Get("a"); !ok {
		t.Fatal("local get failed")
	}
}
