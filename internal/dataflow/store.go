package dataflow

import (
	"time"

	"repro/internal/crdt"
	"repro/internal/simnet"
	"repro/internal/space"
)

// storeSyncMsg carries governed items between stores.
type storeSyncMsg struct {
	Entries []crdt.Entry
}

// RegisterWire registers the data plane's message and payload types
// with a wire codec (e.g. realnet's gob transport). Applications must
// additionally register the concrete types of their item values if
// they are not plain Go scalars.
func RegisterWire(register func(any)) {
	register(storeSyncMsg{})
	register(crdt.Entry{})
	register(Item{})
	register(Label{})
	register(Hop{})
}

// Size approximates item payloads (key + value + label).
func (m storeSyncMsg) Size() int { return 8 + 96*len(m.Entries) }

// Store is a governed, replicated data store hosted by one node: local
// writes are LWW entries whose values are Items (with labels), and
// periodic delta synchronization to peers crosses the policy engine in
// both directions — the sender filters its out-flow, the receiver
// checks its in-flow (each component controls its own data in/out
// policies, §VI).
type Store struct {
	port   simnet.Port
	spaces *space.Map
	engine *Engine
	data   *crdt.LWWMap
	peers  []simnet.NodeID

	interval  time.Duration
	lastSent  map[simnet.NodeID]time.Duration
	ticker    *simnet.Ticker
	lastWrite time.Duration

	received int
	rejected int
	onApply  []func(Item, simnet.NodeID)
}

// StoreConfig parameterizes NewStore.
type StoreConfig struct {
	// Peers are the stores this one synchronizes with.
	Peers []simnet.NodeID
	// SyncInterval is the anti-entropy period (default 1s).
	SyncInterval time.Duration
	// Engine governs flows; nil means an enforcing default privacy
	// engine.
	Engine *Engine
}

// NewStore builds a store on port, placed in spaces (the node's own
// entity ID must be placed there for domain lookups).
func NewStore(port simnet.Port, spaces *space.Map, cfg StoreConfig) *Store {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = time.Second
	}
	if cfg.Engine == nil {
		cfg.Engine = DefaultPrivacyEngine()
	}
	s := &Store{
		port:      port,
		spaces:    spaces,
		engine:    cfg.Engine,
		data:      crdt.NewLWWMap(crdt.ReplicaID(port.ID())),
		peers:     append([]simnet.NodeID(nil), cfg.Peers...),
		interval:  cfg.SyncInterval,
		lastSent:  make(map[simnet.NodeID]time.Duration),
		lastWrite: -1,
	}
	for _, p := range s.peers {
		s.lastSent[p] = -1
	}
	port.OnMessage(s.handle)
	return s
}

// Start begins periodic synchronization.
func (s *Store) Start() {
	s.ticker = s.port.Every(s.interval, s.syncAll)
}

// Stop halts synchronization.
func (s *Store) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Engine returns the store's policy engine.
func (s *Store) Engine() *Engine { return s.engine }

// Handler returns the store's network message handler. NewStore
// installs it on the port automatically; callers that need to share
// the port with other traffic can install their own dispatcher and
// delegate store-sync messages here.
func (s *Store) Handler() simnet.Handler { return s.handle }

// OnApply registers a callback invoked for every remote item admitted
// and applied locally (auditing, metrics).
func (s *Store) OnApply(fn func(Item, simnet.NodeID)) {
	s.onApply = append(s.onApply, fn)
}

// Put writes an item locally. The item's ProducedAt defaults to now;
// an item without lineage gains its "produced" hop here.
func (s *Store) Put(item Item) {
	if item.ProducedAt == 0 {
		item.ProducedAt = s.port.Now()
	}
	if len(item.Lineage) == 0 {
		item = item.WithHop(Hop{Node: string(s.port.ID()), At: s.port.Now(), Action: "produced"})
	}
	ts := s.port.Now()
	if ts <= s.lastWrite {
		ts = s.lastWrite + 1
	}
	s.lastWrite = ts
	s.data.Set(item.Key, item, ts)
}

// Lineage returns the provenance chain of the item currently stored
// under key.
func (s *Store) Lineage(key string) []Hop {
	item, ok := s.Get(key)
	if !ok {
		return nil
	}
	out := make([]Hop, len(item.Lineage))
	copy(out, item.Lineage)
	return out
}

// Get reads an item. Items past their label's TTL read as absent.
func (s *Store) Get(key string) (Item, bool) {
	v, ok := s.data.Get(key)
	if !ok {
		return Item{}, false
	}
	item, ok := v.(Item)
	if !ok {
		return Item{}, false
	}
	if ttl := item.Label.TTL; ttl > 0 && s.port.Now()-item.ProducedAt > ttl {
		return Item{}, false
	}
	return item, true
}

// Staleness returns how old the item's payload is (now − ProducedAt).
func (s *Store) Staleness(key string) (time.Duration, bool) {
	item, ok := s.Get(key)
	if !ok {
		return 0, false
	}
	return s.port.Now() - item.ProducedAt, true
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string { return s.data.Keys() }

// Received returns how many remote entries were admitted and applied.
func (s *Store) Received() int { return s.received }

// Rejected returns how many remote entries in-flow policy refused.
func (s *Store) Rejected() int { return s.rejected }

// domainOf resolves a node's administrative domain from the space map.
func (s *Store) domainOf(node simnet.NodeID) space.Domain {
	pl, ok := s.spaces.PlacementOf(string(node))
	if !ok {
		return space.Domain{}
	}
	d, _ := s.spaces.Domain(pl.Domain)
	return d
}

func (s *Store) syncAll() {
	for _, p := range s.peers {
		s.syncTo(p)
	}
}

// SyncNow pushes pending deltas to all peers immediately, outside the
// periodic schedule — a counteraction a MAPE planner can take when it
// detects stale data.
func (s *Store) SyncNow() { s.syncAll() }

func (s *Store) syncTo(peer simnet.NodeID) {
	delta := s.data.Since(s.lastSent[peer])
	if len(delta) == 0 {
		return
	}
	from := s.domainOf(s.port.ID())
	to := s.domainOf(peer)
	now := s.port.Now()
	allowed := make([]crdt.Entry, 0, len(delta))
	for _, e := range delta {
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: from, To: to}, now) {
			allowed = append(allowed, e)
		}
	}
	s.lastSent[peer] = s.data.MaxTimestamp() - 1
	if len(allowed) == 0 {
		return
	}
	s.port.Send(peer, storeSyncMsg{Entries: allowed})
}

func (s *Store) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(storeSyncMsg)
	if !ok {
		return
	}
	fromDom := s.domainOf(from)
	toDom := s.domainOf(s.port.ID())
	now := s.port.Now()
	admitted := make([]crdt.Entry, 0, len(m.Entries))
	for _, e := range m.Entries {
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: fromDom, To: toDom}, now) {
			// Extend the provenance chain: the item has arrived here.
			e.Value = item.WithHop(Hop{Node: string(s.port.ID()), At: now, Action: "received"})
			admitted = append(admitted, e)
		} else {
			s.rejected++
		}
	}
	won := s.data.Apply(admitted)
	s.received += won
	if len(s.onApply) > 0 {
		for _, e := range admitted {
			if item, ok := e.Value.(Item); ok {
				for _, fn := range s.onApply {
					fn(item, from)
				}
			}
		}
	}
}
