package dataflow

import (
	"sort"
	"time"

	"repro/internal/crdt"
	"repro/internal/simnet"
	"repro/internal/space"
)

// storeSyncMsg carries governed items between stores.
type storeSyncMsg struct {
	Entries []crdt.Entry
}

// RegisterWire registers the data plane's message and payload types
// with a wire codec (e.g. realnet's gob transport). Applications must
// additionally register the concrete types of their item values if
// they are not plain Go scalars.
func RegisterWire(register func(any)) {
	register(storeSyncMsg{})
	register(crdt.Entry{})
	register(Item{})
	register(Label{})
	register(Hop{})
}

// Size approximates item payloads (key + value + label).
func (m storeSyncMsg) Size() int { return 8 + 96*len(m.Entries) }

// Store is a governed, replicated data store hosted by one node: local
// writes are LWW entries whose values are Items (with labels), and
// periodic delta synchronization to peers crosses the policy engine in
// both directions — the sender filters its out-flow, the receiver
// checks its in-flow (each component controls its own data in/out
// policies, §VI).
type Store struct {
	port   simnet.Port
	spaces *space.Map
	engine *Engine
	data   *crdt.LWWMap
	peers  []simnet.NodeID

	interval  time.Duration
	lastSent  map[simnet.NodeID]time.Duration
	ticker    *simnet.Ticker
	lastWrite time.Duration

	// Relay state: a hub store re-forwards entries it receives, so its
	// outgoing watermark cannot be the origin-timestamp high-water mark
	// ordinary stores use (a received entry is older than the store's
	// newest and would be skipped as already-sent). Instead the hub
	// numbers every local change — own writes and winning remote
	// applies — with a monotonic sequence and tracks per-peer positions
	// in that sequence.
	relay   bool
	seq     uint64
	changed map[string]uint64 // key -> seq of its latest local change
	sentSeq map[simnet.NodeID]uint64

	received int
	rejected int
	onApply  []func(Item, simnet.NodeID)
	// admitScratch is reused by handle for the per-message admitted
	// batch; its contents never outlive the call.
	admitScratch []crdt.Entry
}

// StoreConfig parameterizes NewStore.
type StoreConfig struct {
	// Peers are the stores this one synchronizes with.
	Peers []simnet.NodeID
	// SyncInterval is the anti-entropy period (default 1s).
	SyncInterval time.Duration
	// Engine governs flows; nil means an enforcing default privacy
	// engine.
	Engine *Engine
	// Relay marks a redistribution hub: entries received from one peer
	// are re-forwarded to the others (minus the origin replica). Leave
	// false for stores that only exchange their own writes directly —
	// the default high-water-mark sync never re-forwards.
	Relay bool
}

// NewStore builds a store on port, placed in spaces (the node's own
// entity ID must be placed there for domain lookups).
func NewStore(port simnet.Port, spaces *space.Map, cfg StoreConfig) *Store {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = time.Second
	}
	if cfg.Engine == nil {
		cfg.Engine = DefaultPrivacyEngine()
	}
	s := &Store{
		port:      port,
		spaces:    spaces,
		engine:    cfg.Engine,
		data:      crdt.NewLWWMap(crdt.ReplicaID(port.ID())),
		peers:     append([]simnet.NodeID(nil), cfg.Peers...),
		interval:  cfg.SyncInterval,
		lastSent:  make(map[simnet.NodeID]time.Duration),
		lastWrite: -1,
	}
	for _, p := range s.peers {
		s.lastSent[p] = -1
	}
	if cfg.Relay {
		s.relay = true
		s.changed = make(map[string]uint64)
		s.sentSeq = make(map[simnet.NodeID]uint64)
	}
	port.OnMessage(s.handle)
	return s
}

// Start begins periodic synchronization.
func (s *Store) Start() {
	s.ticker = s.port.Every(s.interval, s.syncAll)
}

// Stop halts synchronization.
func (s *Store) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Engine returns the store's policy engine.
func (s *Store) Engine() *Engine { return s.engine }

// Handler returns the store's network message handler. NewStore
// installs it on the port automatically; callers that need to share
// the port with other traffic can install their own dispatcher and
// delegate store-sync messages here.
func (s *Store) Handler() simnet.Handler { return s.handle }

// OnApply registers a callback invoked for every remote item admitted
// and applied locally (auditing, metrics).
func (s *Store) OnApply(fn func(Item, simnet.NodeID)) {
	s.onApply = append(s.onApply, fn)
}

// Put writes an item locally. The item's ProducedAt defaults to now;
// an item without lineage gains its "produced" hop here.
func (s *Store) Put(item Item) {
	if item.ProducedAt == 0 {
		item.ProducedAt = s.port.Now()
	}
	if len(item.Lineage) == 0 {
		item = item.WithHop(Hop{Node: string(s.port.ID()), At: s.port.Now(), Action: "produced"})
	}
	ts := s.port.Now()
	if ts <= s.lastWrite {
		ts = s.lastWrite + 1
	}
	s.lastWrite = ts
	if s.data.Set(item.Key, item, ts) {
		s.markChanged(item.Key)
	}
}

// markChanged stamps a key with the next change sequence (relay mode).
func (s *Store) markChanged(key string) {
	if s.relay {
		s.seq++
		s.changed[key] = s.seq
	}
}

// Lineage returns the provenance chain of the item currently stored
// under key.
func (s *Store) Lineage(key string) []Hop {
	item, ok := s.Get(key)
	if !ok {
		return nil
	}
	out := make([]Hop, len(item.Lineage))
	copy(out, item.Lineage)
	return out
}

// Get reads an item. Items past their label's TTL read as absent.
func (s *Store) Get(key string) (Item, bool) {
	v, ok := s.data.Get(key)
	if !ok {
		return Item{}, false
	}
	item, ok := v.(Item)
	if !ok {
		return Item{}, false
	}
	if ttl := item.Label.TTL; ttl > 0 && s.port.Now()-item.ProducedAt > ttl {
		return Item{}, false
	}
	return item, true
}

// Staleness returns how old the item's payload is (now − ProducedAt).
func (s *Store) Staleness(key string) (time.Duration, bool) {
	item, ok := s.Get(key)
	if !ok {
		return 0, false
	}
	return s.port.Now() - item.ProducedAt, true
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string { return s.data.Keys() }

// Received returns how many remote entries were admitted and applied.
func (s *Store) Received() int { return s.received }

// Rejected returns how many remote entries in-flow policy refused.
func (s *Store) Rejected() int { return s.rejected }

// domainOf resolves a node's administrative domain from the space map.
func (s *Store) domainOf(node simnet.NodeID) space.Domain {
	pl, ok := s.spaces.PlacementOf(string(node))
	if !ok {
		return space.Domain{}
	}
	d, _ := s.spaces.Domain(pl.Domain)
	return d
}

func (s *Store) syncAll() {
	for _, p := range s.peers {
		s.syncTo(p)
	}
}

// SyncNow pushes pending deltas to all peers immediately, outside the
// periodic schedule — a counteraction a MAPE planner can take when it
// detects stale data.
func (s *Store) SyncNow() { s.syncAll() }

func (s *Store) syncTo(peer simnet.NodeID) {
	if s.relay {
		s.relayTo(peer)
		return
	}
	last := s.lastSent[peer]
	if s.data.MaxTimestamp() <= last {
		return // nothing newer than the peer has seen; skip the export
	}
	delta := s.data.Since(last)
	if len(delta) == 0 {
		return
	}
	from := s.domainOf(s.port.ID())
	to := s.domainOf(peer)
	now := s.port.Now()
	// Filter in place: delta is freshly exported and the admitted
	// prefix is what goes on the wire, so no second slice is needed.
	allowed := delta[:0]
	for _, e := range delta {
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: from, To: to}, now) {
			allowed = append(allowed, e)
		}
	}
	s.lastSent[peer] = s.data.MaxTimestamp() - 1
	if len(allowed) == 0 {
		return
	}
	s.port.Send(peer, storeSyncMsg{Entries: allowed})
}

// relayTo forwards every entry changed since the peer's last sync,
// regardless of origin timestamp, skipping entries the peer itself
// produced. Selected keys are ordered by change sequence so the wire
// content is deterministic.
func (s *Store) relayTo(peer simnet.NodeID) {
	last := s.sentSeq[peer]
	if s.seq <= last {
		return
	}
	type change struct {
		seq uint64
		key string
	}
	var sel []change
	for k, sq := range s.changed {
		if sq > last {
			sel = append(sel, change{sq, k})
		}
	}
	s.sentSeq[peer] = s.seq
	if len(sel) == 0 {
		return
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].seq < sel[j].seq })
	from := s.domainOf(s.port.ID())
	to := s.domainOf(peer)
	now := s.port.Now()
	entries := make([]crdt.Entry, 0, len(sel))
	for _, c := range sel {
		e, ok := s.data.Entry(c.key)
		if !ok || e.Replica == crdt.ReplicaID(peer) {
			continue
		}
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: from, To: to}, now) {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return
	}
	s.port.Send(peer, storeSyncMsg{Entries: entries})
}

func (s *Store) handle(from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(storeSyncMsg)
	if !ok {
		return
	}
	fromDom := s.domainOf(from)
	toDom := s.domainOf(s.port.ID())
	now := s.port.Now()
	if cap(s.admitScratch) < len(m.Entries) {
		s.admitScratch = make([]crdt.Entry, 0, len(m.Entries))
	}
	admitted := s.admitScratch[:0]
	for _, e := range m.Entries {
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: fromDom, To: toDom}, now) {
			// Extend the provenance chain: the item has arrived here.
			// Entries that lose the LWW race are applied (and reported
			// to OnApply) unchanged: their value is discarded by Apply,
			// so re-boxing a hop-extended copy would be pure allocator
			// traffic — with all-to-all peering, most entries lose.
			if s.data.Wins(e) {
				e.Value = item.WithHop(Hop{Node: string(s.port.ID()), At: now, Action: "received"})
				s.markChanged(e.Key)
			}
			admitted = append(admitted, e)
		} else {
			s.rejected++
		}
	}
	s.admitScratch = admitted[:0]
	won := s.data.Apply(admitted)
	s.received += won
	if len(s.onApply) > 0 {
		for _, e := range admitted {
			if item, ok := e.Value.(Item); ok {
				for _, fn := range s.onApply {
					fn(item, from)
				}
			}
		}
	}
}
