package dataflow

import (
	"sort"
	"time"

	"repro/internal/crdt"
	"repro/internal/simnet"
	"repro/internal/space"
)

// storeSyncMsg is one delta frame between stores: a batch of coalesced
// entries under a per-link sequence number. Relayed marks frames from
// a redistribution hub — receivers do not re-forward relayed entries
// (the hub already broadcasts to everyone), which keeps ring
// forwarding from duplicating the hub's work.
type storeSyncMsg struct {
	Seq     uint64
	Relayed bool
	Entries []crdt.Entry
}

// storeSyncAck acknowledges one received frame. The sender evicts the
// acked keys from the peer's delta buffer; unacked frames are
// retransmitted (coalesced) on the next sync turn.
type storeSyncAck struct {
	Seq uint64
}

// storeInterest declares which keys the sender wants a redistribution
// hub to relay to it (its own writes still reach every peer directly).
// The set replaces any earlier declaration from the same peer; peers
// that never declare one get the full relay stream. Interest is
// re-sent every sync turn, so a declaration lost on a lossy link heals
// within one period.
type storeInterest struct {
	Keys []string
}

// RegisterWire registers the data plane's message and payload types
// with a wire codec (e.g. realnet's gob transport). Applications must
// additionally register the concrete types of their item values if
// they are not plain Go scalars.
func RegisterWire(register func(any)) {
	register(storeSyncMsg{})
	register(storeSyncAck{})
	register(storeInterest{})
	register(crdt.Entry{})
	register(Item{})
	register(Label{})
	register(Hop{})
}

// frameOverhead is the fixed encoded cost of one sync frame: sequence
// number, relayed flag, entry count.
const frameOverhead = 13

// ackSize is the encoded cost of one frame acknowledgement.
const ackSize = 12

// Size reports the frame's encoded wire size from real per-entry
// sizing (key + value payload + label + lineage via crdt.EntrySize),
// so link-byte stats measure actual wire cost.
func (m storeSyncMsg) Size() int { return frameOverhead + crdt.EntriesSize(m.Entries) }

// Size reports the ack's encoded wire size.
func (m storeSyncAck) Size() int { return ackSize }

// Size reports the interest declaration's encoded wire size: count
// plus length-prefixed keys.
func (m storeInterest) Size() int {
	n := 8
	for _, k := range m.Keys {
		n += 1 + len(k)
	}
	return n
}

// LinkStats counts sync traffic over one store→peer link (or, from
// SyncStats, over all of a store's links).
type LinkStats struct {
	// Sender side: frames/entries/bytes shipped to the peer and acks
	// heard back.
	FramesSent  uint64
	EntriesSent uint64
	BytesSent   uint64
	AcksIn      uint64
	// Receiver side: frames/entries/bytes that arrived from the peer.
	FramesIn  uint64
	EntriesIn uint64
	BytesIn   uint64
}

// Add folds another counter row into ls.
func (ls *LinkStats) Add(o LinkStats) {
	ls.FramesSent += o.FramesSent
	ls.EntriesSent += o.EntriesSent
	ls.BytesSent += o.BytesSent
	ls.AcksIn += o.AcksIn
	ls.FramesIn += o.FramesIn
	ls.EntriesIn += o.EntriesIn
	ls.BytesIn += o.BytesIn
}

// Store is a governed, replicated data store hosted by one node: local
// writes are LWW entries whose values are Items (with labels), and
// periodic delta synchronization to peers crosses the policy engine in
// both directions — the sender filters its out-flow, the receiver
// checks its in-flow (each component controls its own data in/out
// policies, §VI).
//
// Replication is delta-state: a per-peer delta buffer coalesces
// repeated writes to one key, sync turns cut the pending set into
// size-capped frames, and each frame is acknowledged so a peer that
// was down receives exactly the coalesced keys it missed when it
// heals — never a full-state reship.
type Store struct {
	port   simnet.Port
	spaces *space.Map
	engine *Engine
	data   *crdt.LWWMap
	peers  []simnet.NodeID

	interval  time.Duration
	ticker    *simnet.Ticker
	lastWrite time.Duration

	// buf tracks per-peer dirty keys with seq/ack bookkeeping.
	buf *crdt.DeltaBuffer
	// relay marks a redistribution hub: its frames carry the Relayed
	// flag so receivers do not forward hub-delivered entries again.
	relay bool
	// lastFrom records which peer delivered a key's current winning
	// entry, so a sync turn never echoes an entry back to its sender.
	lastFrom map[string]simnet.NodeID
	// wants holds this store's own interest declarations, per hub peer
	// (sorted key sets, re-sent every sync turn).
	wants map[simnet.NodeID][]string
	// peerInterest holds, on a hub, each peer's declared relay interest.
	// A peer with no declaration receives the full relay stream.
	peerInterest map[string]map[string]bool

	maxFrame int
	links    map[simnet.NodeID]*LinkStats

	received int
	rejected int
	onApply  []func(Item, simnet.NodeID)
	// admitScratch is reused by handle for the per-message admitted
	// batch; its contents never outlive the call.
	admitScratch []crdt.Entry
	// sendScratch is reused by syncTo for frame assembly.
	sendScratch []crdt.Entry
	keyScratch  []string
}

// StoreConfig parameterizes NewStore.
type StoreConfig struct {
	// Peers are the stores this one synchronizes with.
	Peers []simnet.NodeID
	// SyncInterval is the anti-entropy period (default 1s).
	SyncInterval time.Duration
	// Engine governs flows; nil means an enforcing default privacy
	// engine.
	Engine *Engine
	// Relay marks a redistribution hub: entries received from one peer
	// are re-forwarded to the others (minus the origin replica), and
	// its frames carry the Relayed flag so receivers stop the chain
	// there.
	Relay bool
	// MaxFrameBytes caps one sync frame's encoded size; a turn with
	// more pending data emits several frames so a single turn never
	// floods a link (default 4096).
	MaxFrameBytes int
}

// NewStore builds a store on port, placed in spaces (the node's own
// entity ID must be placed there for domain lookups).
func NewStore(port simnet.Port, spaces *space.Map, cfg StoreConfig) *Store {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = time.Second
	}
	if cfg.Engine == nil {
		cfg.Engine = DefaultPrivacyEngine()
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 4096
	}
	s := &Store{
		port:      port,
		spaces:    spaces,
		engine:    cfg.Engine,
		data:      crdt.NewLWWMap(crdt.ReplicaID(port.ID())),
		peers:     append([]simnet.NodeID(nil), cfg.Peers...),
		interval:  cfg.SyncInterval,
		lastWrite: -1,
		buf:       crdt.NewDeltaBuffer(),
		lastFrom:  make(map[string]simnet.NodeID),
		relay:     cfg.Relay,
		maxFrame:  cfg.MaxFrameBytes,
		links:     make(map[simnet.NodeID]*LinkStats),
	}
	for _, p := range s.peers {
		s.buf.AddPeer(string(p))
	}
	port.OnMessage(s.handle)
	return s
}

// Start begins periodic synchronization.
func (s *Store) Start() {
	s.ticker = s.port.Every(s.interval, s.syncAll)
}

// Stop halts synchronization.
func (s *Store) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Engine returns the store's policy engine.
func (s *Store) Engine() *Engine { return s.engine }

// Handler returns the store's network message handler. NewStore
// installs it on the port automatically; callers that need to share
// the port with other traffic can install their own dispatcher and
// delegate store-sync messages here.
func (s *Store) Handler() simnet.Handler { return s.handle }

// OnApply registers a callback invoked for every remote item admitted
// and applied locally (auditing, metrics).
func (s *Store) OnApply(fn func(Item, simnet.NodeID)) {
	s.onApply = append(s.onApply, fn)
}

// Put writes an item locally. The item's ProducedAt defaults to now;
// an item without lineage gains its "produced" hop here.
func (s *Store) Put(item Item) {
	if item.ProducedAt == 0 {
		item.ProducedAt = s.port.Now()
	}
	if len(item.Lineage) == 0 {
		item = item.WithHop(Hop{Node: string(s.port.ID()), At: s.port.Now(), Action: "produced"})
	}
	ts := s.port.Now()
	if ts <= s.lastWrite {
		ts = s.lastWrite + 1
	}
	s.lastWrite = ts
	if s.data.Set(item.Key, item, ts) {
		delete(s.lastFrom, item.Key)
		s.buf.DirtyAll(item.Key)
	}
}

// Lineage returns the provenance chain of the item currently stored
// under key.
func (s *Store) Lineage(key string) []Hop {
	item, ok := s.Get(key)
	if !ok {
		return nil
	}
	out := make([]Hop, len(item.Lineage))
	copy(out, item.Lineage)
	return out
}

// Get reads an item. Items past their label's TTL read as absent.
func (s *Store) Get(key string) (Item, bool) {
	v, ok := s.data.Get(key)
	if !ok {
		return Item{}, false
	}
	item, ok := v.(Item)
	if !ok {
		return Item{}, false
	}
	if ttl := item.Label.TTL; ttl > 0 && s.port.Now()-item.ProducedAt > ttl {
		return Item{}, false
	}
	return item, true
}

// Staleness returns how old the item's payload is (now − ProducedAt).
func (s *Store) Staleness(key string) (time.Duration, bool) {
	item, ok := s.Get(key)
	if !ok {
		return 0, false
	}
	return s.port.Now() - item.ProducedAt, true
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string { return s.data.Keys() }

// Received returns how many remote entries were admitted and applied.
func (s *Store) Received() int { return s.received }

// Rejected returns how many remote entries in-flow policy refused.
func (s *Store) Rejected() int { return s.rejected }

// link returns (creating) the stats row for one peer.
func (s *Store) link(peer simnet.NodeID) *LinkStats {
	ls, ok := s.links[peer]
	if !ok {
		ls = &LinkStats{}
		s.links[peer] = ls
	}
	return ls
}

// LinkStats returns a copy of the per-peer sync traffic counters.
func (s *Store) LinkStats() map[simnet.NodeID]LinkStats {
	out := make(map[simnet.NodeID]LinkStats, len(s.links))
	for p, ls := range s.links {
		out[p] = *ls
	}
	return out
}

// SyncStats returns the sync traffic counters summed over all links.
func (s *Store) SyncStats() LinkStats {
	var total LinkStats
	for _, ls := range s.links {
		total.Add(*ls)
	}
	return total
}

// PendingFor reports how many keys are queued for a peer — the
// coalesced backlog a healed peer would receive.
func (s *Store) PendingFor(peer simnet.NodeID) int {
	return s.buf.PendingCount(string(peer))
}

// ResyncPeer queues the store's entire current key set for one peer —
// the digest-less recovery path for a peer that lost its state (a
// restarted real-socket node). In-simulation crashes preserve store
// memory, so the per-peer buffers alone cover heals there.
func (s *Store) ResyncPeer(peer simnet.NodeID) {
	for _, k := range s.data.Keys() {
		s.buf.Dirty(string(peer), k)
	}
}

// domainOf resolves a node's administrative domain from the space map.
func (s *Store) domainOf(node simnet.NodeID) space.Domain {
	pl, ok := s.spaces.PlacementOf(string(node))
	if !ok {
		return space.Domain{}
	}
	d, _ := s.spaces.Domain(pl.Domain)
	return d
}

func (s *Store) syncAll() {
	for _, p := range s.peers {
		s.sendInterest(p)
		s.syncTo(p)
	}
}

// DeclareInterest tells a redistribution hub which keys this store
// consumes, so the hub relays only those instead of its full stream
// (the store's own writes still reach every peer directly, and the
// hub itself still receives everything). The set replaces any earlier
// declaration and is re-sent every sync turn so a lost declaration
// heals within one period. An empty non-nil set means "relay nothing
// to me"; a store that never declares gets the full stream.
func (s *Store) DeclareInterest(peer simnet.NodeID, keys []string) {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	if s.wants == nil {
		s.wants = make(map[simnet.NodeID][]string)
	}
	s.wants[peer] = sorted
	s.sendInterest(peer)
}

// sendInterest ships the store's current interest declaration to one
// peer, if it has one.
func (s *Store) sendInterest(peer simnet.NodeID) {
	keys, ok := s.wants[peer]
	if !ok {
		return
	}
	msg := storeInterest{Keys: keys}
	s.link(peer).BytesSent += uint64(msg.Size())
	s.port.Send(peer, msg)
}

// peerWants reports whether a relay should forward key to peer: yes
// unless the peer has declared an interest set that excludes it.
func (s *Store) peerWants(peer simnet.NodeID, key string) bool {
	in, ok := s.peerInterest[string(peer)]
	if !ok {
		return true
	}
	return in[key]
}

// SyncNow pushes pending deltas to all peers immediately, outside the
// periodic schedule — a counteraction a MAPE planner can take when it
// detects stale data.
func (s *Store) SyncNow() { s.syncAll() }

// syncTo cuts the peer's pending delta into size-capped frames and
// ships them. Keys whose current winner came from the peer (echo), or
// that the peer itself produced, or that out-flow policy refuses, are
// dropped from the buffer instead of sent. Frames unacknowledged for
// longer than one retransmission timeout are requeued first, so loss
// means retransmission of the *current* coalesced entries, not a
// growing backlog — while frames whose ack is merely still in flight
// (an out-of-band SyncNow moments after the periodic turn) are not
// duplicated.
func (s *Store) syncTo(peer simnet.NodeID) {
	pk := string(peer)
	s.buf.Requeue(pk, s.port.Now()-s.interval)
	keys := s.buf.Pending(pk)
	if len(keys) == 0 {
		return
	}
	from := s.domainOf(s.port.ID())
	to := s.domainOf(peer)
	now := s.port.Now()

	entries := s.sendScratch[:0]
	batch := s.keyScratch[:0]
	bytes := frameOverhead
	flush := func() {
		if len(entries) == 0 {
			return
		}
		seq := s.buf.NextSeq(pk)
		msg := storeSyncMsg{Seq: seq, Relayed: s.relay, Entries: append([]crdt.Entry(nil), entries...)}
		s.buf.MarkSent(pk, seq, batch, now)
		ls := s.link(peer)
		ls.FramesSent++
		ls.EntriesSent += uint64(len(entries))
		ls.BytesSent += uint64(msg.Size())
		s.port.Send(peer, msg)
		entries = entries[:0]
		batch = batch[:0]
		bytes = frameOverhead
	}
	for _, k := range keys {
		e, ok := s.data.Entry(k)
		if !ok || e.Replica == crdt.ReplicaID(peer) || s.lastFrom[k] == peer {
			s.buf.Drop(pk, k)
			continue
		}
		item, ok := e.Value.(Item)
		if !ok {
			s.buf.Drop(pk, k)
			continue
		}
		if !s.engine.Admit(FlowContext{Item: item, From: from, To: to}, now) {
			// Policy refused the flow: the key leaves the buffer without
			// consuming a frame or an ack. A later write re-queues it for
			// re-evaluation.
			s.buf.Drop(pk, k)
			continue
		}
		sz := crdt.EntrySize(e)
		if len(entries) > 0 && bytes+sz > s.maxFrame {
			flush()
		}
		entries = append(entries, e)
		batch = append(batch, k)
		bytes += sz
	}
	flush()
	s.sendScratch = entries[:0]
	s.keyScratch = batch[:0]
}

func (s *Store) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case storeSyncMsg:
		s.handleFrame(from, m)
	case storeSyncAck:
		if s.buf.Ack(string(from), m.Seq) {
			s.link(from).AcksIn++
		}
	case storeInterest:
		s.link(from).BytesIn += uint64(m.Size())
		prev := s.peerInterest[string(from)]
		set := make(map[string]bool, len(m.Keys))
		for _, k := range m.Keys {
			set[k] = true
			// Pre-seed newly declared keys the hub already holds: a
			// controller that just gained a zone gets its current state
			// on the next sync turn instead of waiting for the next
			// upstream write. Re-declarations of an unchanged set add no
			// keys, so the periodic interest refresh re-ships nothing.
			if s.relay && !prev[k] {
				if _, ok := s.data.Entry(k); ok {
					s.buf.Dirty(string(from), k)
				}
			}
		}
		if s.peerInterest == nil {
			s.peerInterest = make(map[string]map[string]bool)
		}
		s.peerInterest[string(from)] = set
	}
}

// handleFrame admits one delta frame and acknowledges it. The ack
// covers frame *receipt*: entries the in-flow policy rejects are
// refused here and counted, but they do not stall the sender's buffer
// — retransmitting into a policy wall forever would turn governance
// into a bandwidth leak.
func (s *Store) handleFrame(from simnet.NodeID, m storeSyncMsg) {
	ls := s.link(from)
	ls.FramesIn++
	ls.EntriesIn += uint64(len(m.Entries))
	ls.BytesIn += uint64(m.Size())
	fromDom := s.domainOf(from)
	toDom := s.domainOf(s.port.ID())
	now := s.port.Now()
	if cap(s.admitScratch) < len(m.Entries) {
		s.admitScratch = make([]crdt.Entry, 0, len(m.Entries))
	}
	admitted := s.admitScratch[:0]
	for _, e := range m.Entries {
		item, ok := e.Value.(Item)
		if !ok {
			continue
		}
		if s.engine.Admit(FlowContext{Item: item, From: fromDom, To: toDom}, now) {
			// Extend the provenance chain: the item has arrived here.
			// Entries that lose the LWW race are applied (and reported
			// to OnApply) unchanged: their value is discarded by Apply,
			// so re-boxing a hop-extended copy would be pure allocator
			// traffic — with all-to-all peering, most entries lose.
			if s.data.Wins(e) {
				e.Value = item.WithHop(Hop{Node: string(s.port.ID()), At: now, Action: "received"})
				s.lastFrom[e.Key] = from
				// Redistribution is the hub's job: only a relay store
				// forwards received wins onward (and never a win that a
				// hub already broadcast — a relayed frame stops the
				// chain). Non-relay stores ship their *local* writes to
				// every peer directly; re-forwarding remote wins around
				// the ring as well would flood every entry fanout-fold.
				if s.relay && !m.Relayed {
					for _, p := range s.peers {
						if p != from && s.peerWants(p, e.Key) {
							s.buf.Dirty(string(p), e.Key)
						}
					}
				}
			}
			admitted = append(admitted, e)
		} else {
			s.rejected++
		}
	}
	s.admitScratch = admitted[:0]
	won := s.data.Apply(admitted)
	s.received += won
	if len(s.onApply) > 0 {
		for _, e := range admitted {
			if item, ok := e.Value.(Item); ok {
				for _, fn := range s.onApply {
					fn(item, from)
				}
			}
		}
	}
	s.port.Send(from, storeSyncAck{Seq: m.Seq})
}
