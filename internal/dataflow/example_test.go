package dataflow_test

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/space"
)

// The policy engine decides every flow from the item's label and the
// endpoints' domains: GDPR-origin sensitive data may move within the
// jurisdiction but not out of it.
func ExampleEngine() {
	eu := space.Domain{ID: "hospital", Jurisdiction: space.JurisdictionGDPR, Trusted: true}
	eu2 := space.Domain{ID: "clinic", Jurisdiction: space.JurisdictionGDPR, Trusted: true}
	us := space.Domain{ID: "research", Jurisdiction: space.JurisdictionCCPA, Trusted: true}

	vitals := dataflow.Item{
		Key: "patient/hr",
		Label: dataflow.Label{
			Topic: "vitals", Sensitivity: dataflow.Sensitive,
			Origin: eu.ID, Jurisdiction: space.JurisdictionGDPR,
		},
	}
	engine := dataflow.DefaultPrivacyEngine()

	within := engine.Decide(dataflow.FlowContext{Item: vitals, From: eu, To: eu2})
	abroad := engine.Decide(dataflow.FlowContext{Item: vitals, From: eu, To: us})
	fmt.Println("hospital → clinic:  ", within.Allowed)
	fmt.Println("hospital → research:", abroad.Allowed, "("+abroad.Rule+")")

	// Output:
	// hospital → clinic:   true
	// hospital → research: false (sensitive-stays-in-jurisdiction)
}

// Items carry their provenance: each store they traverse appends a hop.
func ExampleItem_WithHop() {
	item := dataflow.Item{Key: "temp", Value: 21.0}
	item = item.WithHop(dataflow.Hop{Node: "sensor", At: 0, Action: "produced"})
	item = item.WithHop(dataflow.Hop{Node: "gateway", At: 2 * time.Second, Action: "received"})
	for _, h := range item.Lineage {
		fmt.Printf("%s@%v: %s\n", h.Action, h.At, h.Node)
	}

	// Output:
	// produced@0s: sensor
	// received@2s: gateway
}
