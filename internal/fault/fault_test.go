package fault

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestKindString(t *testing.T) {
	if KindCrash.String() != "crash" {
		t.Fatalf("got %q", KindCrash)
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatalf("got %q", Kind(42))
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := &Schedule{}
	s.Crash(20*time.Millisecond, "b", 0)
	s.Crash(10*time.Millisecond, "a", 0)
	evs := s.Events()
	if evs[0].Node != "a" || evs[1].Node != "b" {
		t.Fatalf("events not sorted: %+v", evs)
	}
}

func TestCrashAndRecoverApplied(t *testing.T) {
	sim := simnet.New()
	sim.AddNode("n1")
	in := NewInjector(sim)
	s := &Schedule{}
	s.Crash(10*time.Millisecond, "n1", 20*time.Millisecond)
	in.Arm(s)

	sim.RunUntil(15 * time.Millisecond)
	if sim.NodeUp("n1") {
		t.Fatal("node up during scheduled downtime")
	}
	sim.RunUntil(40 * time.Millisecond)
	if !sim.NodeUp("n1") {
		t.Fatal("node not recovered")
	}
	if len(in.Log()) != 2 {
		t.Fatalf("log has %d events, want 2", len(in.Log()))
	}
}

func TestPartitionApplied(t *testing.T) {
	sim := simnet.New()
	a := sim.AddNode("a")
	b := sim.AddNode("b")
	got := 0
	b.OnMessage(func(simnet.NodeID, simnet.Message) { got++ })

	in := NewInjector(sim)
	s := &Schedule{}
	s.Partition(10*time.Millisecond, 20*time.Millisecond, []simnet.NodeID{"a"}, []simnet.NodeID{"b"})
	in.Arm(s)

	sim.At(15*time.Millisecond, func() { a.Send("b", "x") }) // during partition
	sim.At(50*time.Millisecond, func() { a.Send("b", "y") }) // after heal
	sim.RunUntil(100 * time.Millisecond)
	if got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
}

func TestLinkDegradeAndRestore(t *testing.T) {
	sim := simnet.New(WithNoLossSeed())
	a := sim.AddNode("a")
	b := sim.AddNode("b")
	var arrivals []time.Duration
	b.OnMessage(func(simnet.NodeID, simnet.Message) { arrivals = append(arrivals, sim.Now()) })

	in := NewInjector(sim)
	s := &Schedule{}
	s.DegradeLink(0, 100*time.Millisecond, "a", "b", 50*time.Millisecond, 0)
	in.Arm(s)

	sim.At(10*time.Millisecond, func() { a.Send("b", "slow") })
	sim.At(150*time.Millisecond, func() { a.Send("b", "fast") })
	sim.RunUntil(300 * time.Millisecond)

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2", arrivals)
	}
	slowLat := arrivals[0] - 10*time.Millisecond
	fastLat := arrivals[1] - 150*time.Millisecond
	if slowLat < 50*time.Millisecond {
		t.Fatalf("degraded latency = %v, want ≥50ms", slowLat)
	}
	if fastLat >= 50*time.Millisecond {
		t.Fatalf("restored latency = %v, want default (<50ms)", fastLat)
	}
}

// WithNoLossSeed is a readability helper for tests.
func WithNoLossSeed() simnet.Option { return simnet.WithSeed(1) }

func TestCutLinkBlocksEverything(t *testing.T) {
	sim := simnet.New()
	a := sim.AddNode("a")
	b := sim.AddNode("b")
	got := 0
	b.OnMessage(func(simnet.NodeID, simnet.Message) { got++ })
	in := NewInjector(sim)
	s := &Schedule{}
	s.CutLink(0, 0, "a", "b") // no auto-restore
	in.Arm(s)
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * time.Millisecond
		sim.At(d+time.Millisecond, func() { a.Send("b", "x") })
	}
	sim.RunUntil(time.Second)
	if got != 0 {
		t.Fatalf("cut link delivered %d messages", got)
	}
}

func TestModelLevelEventsReachSubscribersOnly(t *testing.T) {
	sim := simnet.New()
	sim.AddNode("dev")
	in := NewInjector(sim)
	var seen []Event
	in.Subscribe(func(ev Event) { seen = append(seen, ev) })

	s := &Schedule{}
	s.TransferDomain(time.Millisecond, "dev", "city")
	s.UpgradeStack(2*time.Millisecond, "dev")
	s.DrainBattery(3*time.Millisecond, "dev")
	in.Arm(s)
	sim.RunUntil(10 * time.Millisecond)

	if len(seen) != 3 {
		t.Fatalf("subscriber saw %d events, want 3", len(seen))
	}
	if seen[0].Kind != KindDomainTransfer || seen[0].Detail != "city" {
		t.Fatalf("seen[0] = %+v", seen[0])
	}
	if !sim.NodeUp("dev") {
		t.Fatal("model-level event took the node down")
	}
}

func TestInjectImmediate(t *testing.T) {
	sim := simnet.New()
	sim.AddNode("n")
	in := NewInjector(sim)
	in.Inject(Event{Kind: KindCrash, Node: "n"})
	if sim.NodeUp("n") {
		t.Fatal("Inject did not apply immediately")
	}
	if got := in.Log(); len(got) != 1 || got[0].At != 0 {
		t.Fatalf("log = %+v", got)
	}
}

func TestMerge(t *testing.T) {
	a := &Schedule{}
	a.Crash(time.Millisecond, "x", 0)
	b := &Schedule{}
	b.Crash(2*time.Millisecond, "y", 0)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", a.Len())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{
		Seed:       9,
		Horizon:    10 * time.Minute,
		Targets:    []simnet.NodeID{"a", "b", "c"},
		MTBF:       time.Minute,
		MeanRepair: 10 * time.Second,
	}
	s1, s2 := c.Generate(), c.Generate()
	e1, e2 := s1.Events(), s2.Events()
	if len(e1) == 0 {
		t.Fatal("campaign generated no events")
	}
	if len(e1) != len(e2) {
		t.Fatalf("lengths differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].At != e2[i].At || e1[i].Kind != e2[i].Kind || e1[i].Node != e2[i].Node {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestCampaignCrashesPairedWithRecoveries(t *testing.T) {
	c := Campaign{
		Seed:       3,
		Horizon:    30 * time.Minute,
		Targets:    []simnet.NodeID{"a", "b"},
		MTBF:       2 * time.Minute,
		MeanRepair: 20 * time.Second,
	}
	crashes, recoveries := 0, 0
	for _, ev := range c.Generate().Events() {
		switch ev.Kind {
		case KindCrash:
			crashes++
		case KindRecover:
			recoveries++
		}
	}
	if crashes == 0 || crashes != recoveries {
		t.Fatalf("crashes = %d, recoveries = %d; want equal and >0", crashes, recoveries)
	}
}

func TestCampaignPartitions(t *testing.T) {
	c := Campaign{
		Seed:           11,
		Horizon:        time.Hour,
		Targets:        []simnet.NodeID{"a", "b", "c", "d"},
		PartitionEvery: 5 * time.Minute,
		PartitionFor:   time.Minute,
	}
	starts, ends := 0, 0
	for _, ev := range c.Generate().Events() {
		switch ev.Kind {
		case KindPartitionStart:
			starts++
			if len(ev.Groups) != 2 || len(ev.Groups[0])+len(ev.Groups[1]) != 4 {
				t.Fatalf("bad partition groups: %+v", ev.Groups)
			}
		case KindPartitionEnd:
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("starts = %d, ends = %d", starts, ends)
	}
}

func TestCampaignZeroRatesProduceEmptySchedule(t *testing.T) {
	c := Campaign{Seed: 1, Horizon: time.Hour, Targets: []simnet.NodeID{"a"}}
	if got := c.Generate().Len(); got != 0 {
		t.Fatalf("events = %d, want 0", got)
	}
}
