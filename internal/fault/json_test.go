package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// fullSchedule exercises every event kind and field.
func fullSchedule() *Schedule {
	s := &Schedule{}
	s.Crash(90*time.Second, "gw-0", 2*time.Minute)
	s.Partition(3*time.Minute, time.Minute,
		[]simnet.NodeID{"gw-0", "z0-act"}, []simnet.NodeID{"gw-1", "cloud"})
	s.DegradeLink(5*time.Minute, 30*time.Second, "gw-1", "cloud", 250*time.Millisecond, 0.35)
	s.CutLink(6*time.Minute, 0, "gw-2", "cloud")
	s.TransferDomain(7*time.Minute, "z1-occ", "cityB")
	s.UpgradeStack(8*time.Minute, "gw-3")
	s.DrainBattery(9*time.Minute, "z2-s0")
	return s
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := fullSchedule()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Schedule
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s.events, got.events) {
		t.Fatalf("round trip differs:\n in: %+v\nout: %+v", s.events, got.events)
	}
}

func TestScheduleJSONUsesKindNames(t *testing.T) {
	s := &Schedule{}
	s.Crash(time.Minute, "n", 30*time.Second)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	text := string(data)
	for _, want := range []string{`"crash"`, `"recover"`, `"1m0s"`, `"1m30s"`} {
		if !strings.Contains(text, want) {
			t.Errorf("encoding %s lacks %s", text, want)
		}
	}
	if strings.Contains(text, `"kind":1`) {
		t.Errorf("encoding leaked enum integer: %s", text)
	}
}

func TestEmptyScheduleJSON(t *testing.T) {
	var s Schedule
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty schedule encodes as %s, want []", data)
	}
	var got Schedule
	if err := json.Unmarshal([]byte("[]"), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d events from []", got.Len())
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k, name := range kindNames {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if string(text) != name {
			t.Fatalf("%v marshals to %q, want %q", k, text, name)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if back != k {
			t.Fatalf("%q decodes to %v, want %v", text, back, k)
		}
	}
	var bad Kind
	if err := bad.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if _, err := Kind(99).MarshalText(); err == nil {
		t.Fatal("unknown kind value encoded")
	}
}

func TestUnmarshalRejectsBadDurations(t *testing.T) {
	var ev Event
	if err := json.Unmarshal([]byte(`{"at":"soon","kind":"crash"}`), &ev); err == nil {
		t.Fatal("bad at accepted")
	}
	if err := json.Unmarshal([]byte(`{"at":"1s","kind":"link-degrade","latency":"fast"}`), &ev); err == nil {
		t.Fatal("bad latency accepted")
	}
}

func TestScheduleString(t *testing.T) {
	out := fullSchedule().String()
	for _, want := range []string{"crash", "gw-0", "partition-start", "latency=250ms loss=0.35", "cityB"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() lacks %q:\n%s", want, out)
		}
	}
}

func TestCampaignGenerateDeepEqual(t *testing.T) {
	c := Campaign{
		Seed:           7,
		Horizon:        20 * time.Minute,
		Targets:        []simnet.NodeID{"gw-0", "gw-1", "cl-0", "cl-1"},
		MTBF:           2 * time.Minute,
		MeanRepair:     30 * time.Second,
		PartitionEvery: 5 * time.Minute,
		PartitionFor:   time.Minute,
	}
	s1, s2 := c.Generate(), c.Generate()
	if s1.Len() == 0 {
		t.Fatal("campaign generated no events")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", s1, s2)
	}
}

func TestCampaignGenerateOrderIndependent(t *testing.T) {
	base := Campaign{
		Seed:           7,
		Horizon:        20 * time.Minute,
		Targets:        []simnet.NodeID{"gw-0", "gw-1", "cl-0", "cl-1"},
		MTBF:           2 * time.Minute,
		MeanRepair:     30 * time.Second,
		PartitionEvery: 5 * time.Minute,
		PartitionFor:   time.Minute,
	}
	shuffled := base
	shuffled.Targets = []simnet.NodeID{"cl-1", "gw-1", "cl-0", "gw-0"}
	if !reflect.DeepEqual(base.Generate(), shuffled.Generate()) {
		t.Fatal("schedule depends on Targets order (map-iteration hazard)")
	}
}

func TestCampaignPerTargetStreamsIndependent(t *testing.T) {
	// Adding a target must not perturb the existing targets' crash
	// histories: each target draws from its own stream.
	small := Campaign{
		Seed: 3, Horizon: 30 * time.Minute,
		Targets: []simnet.NodeID{"a", "b"},
		MTBF:    2 * time.Minute, MeanRepair: 20 * time.Second,
	}
	big := small
	big.Targets = []simnet.NodeID{"a", "b", "c"}
	crashesOf := func(s *Schedule, n simnet.NodeID) []Event {
		var out []Event
		for _, ev := range s.Events() {
			if ev.Node == n {
				out = append(out, ev)
			}
		}
		return out
	}
	sSmall, sBig := small.Generate(), big.Generate()
	for _, n := range small.Targets {
		if !reflect.DeepEqual(crashesOf(sSmall, n), crashesOf(sBig, n)) {
			t.Fatalf("target %s history changed when %q was added", n, "c")
		}
	}
}
