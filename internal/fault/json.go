package fault

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/simnet"
)

// JSON encoding for schedules. Durations are encoded as Go duration
// strings ("2m30s"), which time.ParseDuration round-trips exactly, and
// kinds by their String() names, so corpus files stay readable and
// stable across refactors of the Kind enum values. A Schedule encodes
// as a bare array of events in insertion order: injection order at
// equal times is observable (the injector applies equal-time events
// stably), so serialization must preserve it for byte-identical
// replays.

// kindByName is the inverse of kindNames, built once at init.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// KindFromString resolves a Kind from its String() name.
func KindFromString(name string) (Kind, error) {
	if k, ok := kindByName[name]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("fault: unknown kind %q", name)
}

// MarshalText encodes the kind as its String() name, so encoding/json
// (and any other text-based encoder) uses stable names, not enum
// integers.
func (k Kind) MarshalText() ([]byte, error) {
	if _, ok := kindNames[k]; !ok {
		return nil, fmt.Errorf("fault: cannot encode unknown kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText decodes a kind from its String() name.
func (k *Kind) UnmarshalText(text []byte) error {
	got, err := KindFromString(string(text))
	if err != nil {
		return err
	}
	*k = got
	return nil
}

// eventJSON is the wire form of Event.
type eventJSON struct {
	At      string            `json:"at"`
	Kind    Kind              `json:"kind"`
	Node    simnet.NodeID     `json:"node,omitempty"`
	Groups  [][]simnet.NodeID `json:"groups,omitempty"`
	From    simnet.NodeID     `json:"from,omitempty"`
	To      simnet.NodeID     `json:"to,omitempty"`
	Latency string            `json:"latency,omitempty"`
	Loss    float64           `json:"loss,omitempty"`
	Detail  string            `json:"detail,omitempty"`
}

// MarshalJSON encodes the event with duration strings and kind names.
func (e Event) MarshalJSON() ([]byte, error) {
	ej := eventJSON{
		At:     e.At.String(),
		Kind:   e.Kind,
		Node:   e.Node,
		Groups: e.Groups,
		From:   e.From,
		To:     e.To,
		Loss:   e.Loss,
		Detail: e.Detail,
	}
	if e.Latency != 0 {
		ej.Latency = e.Latency.String()
	}
	return json.Marshal(ej)
}

// UnmarshalJSON decodes an event produced by MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	var ej eventJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	at, err := time.ParseDuration(ej.At)
	if err != nil {
		return fmt.Errorf("fault: event at: %w", err)
	}
	var latency time.Duration
	if ej.Latency != "" {
		if latency, err = time.ParseDuration(ej.Latency); err != nil {
			return fmt.Errorf("fault: event latency: %w", err)
		}
	}
	*e = Event{
		At:      at,
		Kind:    ej.Kind,
		Node:    ej.Node,
		Groups:  ej.Groups,
		From:    ej.From,
		To:      ej.To,
		Latency: latency,
		Loss:    ej.Loss,
		Detail:  ej.Detail,
	}
	return nil
}

// MarshalJSON encodes the schedule as an array of events in insertion
// order.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	if s.events == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.events)
}

// UnmarshalJSON decodes a schedule produced by MarshalJSON, replacing
// any existing events.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		return err
	}
	s.events = events
	return nil
}

// String renders the schedule one event per line, sorted by time — the
// human-readable counterpart of the JSON encoding, used by riotchaos to
// print minimized counterexamples.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, ev := range s.Events() {
		fmt.Fprintf(&b, "%10s  %-15s", ev.At.Round(time.Millisecond), ev.Kind)
		switch {
		case ev.Kind == KindPartitionStart:
			for gi, g := range ev.Groups {
				if gi > 0 {
					b.WriteString(" |")
				}
				for _, n := range g {
					b.WriteString(" " + string(n))
				}
			}
		case ev.From != "" || ev.To != "":
			fmt.Fprintf(&b, " %s↔%s", ev.From, ev.To)
			if ev.Kind == KindLinkDegrade {
				fmt.Fprintf(&b, " latency=%s loss=%.2f", ev.Latency, ev.Loss)
			}
		case ev.Node != "":
			b.WriteString(" " + string(ev.Node))
			if ev.Detail != "" {
				b.WriteString(" " + ev.Detail)
			}
		case ev.Detail != "":
			b.WriteString(" " + ev.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
