// Package pubsub implements topic-based publish/subscribe messaging
// with a broker, at-most-once (QoS 0) and at-least-once (QoS 1)
// delivery. Brokered pub/sub is the communication archetype of the
// paper's ML1–ML3 maturity levels (§III, Table 1): a cloud- or
// gateway-hosted broker is simple and effective, but it is a central
// point of failure — precisely the dependence the Table 1/2 experiment
// quantifies against the decentralized ML4 data plane.
package pubsub

import (
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// QoS selects delivery semantics.
type QoS int

// Supported delivery semantics.
const (
	// AtMostOnce publishes fire-and-forget.
	AtMostOnce QoS = iota + 1
	// AtLeastOnce retries until the broker acknowledges.
	AtLeastOnce
)

// Wire messages.

type subscribeMsg struct {
	Topic string
}

type unsubscribeMsg struct {
	Topic string
}

type publishMsg struct {
	ID      uint64 // nonzero for QoS 1
	Topic   string
	Payload any
	// Retain asks the broker to keep this as the topic's last-known
	// value and hand it to future subscribers immediately (MQTT-style
	// retained message). Retained state is broker-volatile: a broker
	// restart loses it.
	Retain bool
}

type pubAckMsg struct {
	ID uint64
}

type deliverMsg struct {
	Topic   string
	Payload any
	// SentAt is the broker's fan-out timestamp (bus clock), carried so
	// subscribers can publish end-to-end delivery latency. Zero when
	// the broker has no active bus.
	SentAt time.Duration
}

// RegisterWire registers the broker protocol's messages with a wire
// codec (e.g. realnet's gob transport). Payload types carried inside
// publishMsg/deliverMsg must be registered by the application.
func RegisterWire(register func(any)) {
	register(subscribeMsg{})
	register(unsubscribeMsg{})
	register(publishMsg{})
	register(pubAckMsg{})
	register(deliverMsg{})
}

func (m subscribeMsg) Size() int   { return 8 + len(m.Topic) }
func (m unsubscribeMsg) Size() int { return 8 + len(m.Topic) }
func (m publishMsg) Size() int     { return 16 + len(m.Topic) + payloadSize(m.Payload) }
func (m pubAckMsg) Size() int      { return 12 }
func (m deliverMsg) Size() int     { return 8 + len(m.Topic) + payloadSize(m.Payload) }

// envPubAck is the inline-envelope form of pubAckMsg (A=ID); Bytes
// mirrors the boxed Size, so byte accounting is identical.
const envPubAck uint16 = 1

func payloadSize(p any) int {
	if s, ok := p.(simnet.Sized); ok {
		return s.Size()
	}
	return 64
}

// Broker hosts topics and fans publications out to subscribers. It is
// deliberately stateless across crashes: while the broker node is down,
// everything published is lost, and subscriptions survive only because
// they are broker-side state created before the crash is wiped — a
// faithful model of a non-replicated broker deployment.
type Broker struct {
	ep   simnet.Port
	ec   simnet.EnvelopeCarrier // non-nil when ep supports inline envelopes
	subs map[string]map[simnet.NodeID]struct{}
	// local are in-process subscribers: applications colocated with
	// the broker (e.g. a cloud-side controller next to a cloud
	// broker). They are part of the application deployment, so unlike
	// network subscriptions they survive broker restarts.
	local map[string][]MessageHandler
	// retained holds each topic's last retained publication.
	retained map[string]any
	// delivered counts fan-out deliveries sent, for experiments.
	delivered int

	bus *obs.Bus
}

// NewBroker installs a broker on ep.
func NewBroker(ep simnet.Port) *Broker {
	b := &Broker{
		ep:       ep,
		subs:     make(map[string]map[simnet.NodeID]struct{}),
		local:    make(map[string][]MessageHandler),
		retained: make(map[string]any),
	}
	b.ec, _ = ep.(simnet.EnvelopeCarrier)
	ep.OnMessage(b.handle)
	ep.OnUp(func() {
		// A restarted broker has lost its subscription table and its
		// retained messages.
		b.subs = make(map[string]map[simnet.NodeID]struct{})
		b.retained = make(map[string]any)
	})
	return b
}

// SetBus attaches an observability bus. Each fan-out is published as a
// "pubsub.publish" instant; deliveries are stamped so subscribing
// clients with a bus can report "pubsub.deliver" latency spans.
func (b *Broker) SetBus(bus *obs.Bus) { b.bus = bus }

// Subscribers returns the subscriber IDs for a topic, sorted.
func (b *Broker) Subscribers(topic string) []simnet.NodeID {
	var out []simnet.NodeID
	for id := range b.subs[topic] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delivered returns how many deliver messages the broker has sent.
func (b *Broker) Delivered() int { return b.delivered }

// SubscribeLocal registers an in-process subscriber colocated with the
// broker. Local handlers run synchronously at publish fan-out time and
// survive broker restarts (they are application wiring, not protocol
// state).
func (b *Broker) SubscribeLocal(topic string, h MessageHandler) {
	b.local[topic] = append(b.local[topic], h)
}

// Inject publishes a message on behalf of an application colocated
// with the broker (no network hop to reach the broker).
func (b *Broker) Inject(topic string, payload any) {
	b.fanOut("", topic, payload)
}

// InjectRetained is Inject with the retain flag: the payload becomes
// the topic's retained state for future subscribers.
func (b *Broker) InjectRetained(topic string, payload any) {
	b.retained[topic] = payload
	b.fanOut("", topic, payload)
}

func (b *Broker) handle(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case subscribeMsg:
		if b.subs[m.Topic] == nil {
			b.subs[m.Topic] = make(map[simnet.NodeID]struct{})
		}
		isNew := true
		if _, dup := b.subs[m.Topic][from]; dup {
			isNew = false
		}
		b.subs[m.Topic][from] = struct{}{}
		// Hand a fresh subscriber the retained state of every topic
		// the (possibly wildcard) subscription covers.
		if isNew {
			for topic, payload := range b.retained {
				if TopicMatches(m.Topic, topic) {
					b.delivered++
					b.ep.Send(from, deliverMsg{Topic: topic, Payload: payload})
				}
			}
		}
	case unsubscribeMsg:
		delete(b.subs[m.Topic], from)
	case publishMsg:
		if m.ID != 0 {
			if b.ec != nil {
				b.ec.SendEnvelope(from, simnet.Envelope{Kind: envPubAck, A: m.ID, Bytes: 12})
			} else {
				b.ep.Send(from, pubAckMsg{ID: m.ID})
			}
		}
		if m.Retain {
			b.retained[m.Topic] = m.Payload
		}
		b.fanOut(from, m.Topic, m.Payload)
	}
}

// fanOut delivers a publication to every subscriber whose pattern
// matches, except the publisher itself.
func (b *Broker) fanOut(from simnet.NodeID, topic string, payload any) {
	var sentAt time.Duration
	if b.bus.Active() {
		sentAt = b.bus.Now()
		b.bus.Emit("pubsub.publish", string(b.ep.ID()), 0, 0, "topic %s from %s", topic, from)
	}
	for pattern, subs := range b.subs {
		if !TopicMatches(pattern, topic) {
			continue
		}
		for id := range subs {
			if id == from {
				continue
			}
			b.delivered++
			b.ep.Send(id, deliverMsg{Topic: topic, Payload: payload, SentAt: sentAt})
		}
	}
	for pattern, handlers := range b.local {
		if !TopicMatches(pattern, topic) {
			continue
		}
		for _, h := range handlers {
			b.delivered++
			h(topic, payload)
		}
	}
}

// MessageHandler consumes deliveries on a subscribed topic.
type MessageHandler func(topic string, payload any)

// TopicMatches reports whether a subscription pattern covers a topic,
// with MQTT-style wildcards: "+" matches exactly one "/"-separated
// level, a trailing "#" matches any remainder (including none).
//
//	zone/+/temp  matches  zone/3/temp
//	zone/#       matches  zone/3/temp and zone
func TopicMatches(pattern, topic string) bool {
	// Walks both strings level by level in place. Brokers run this for
	// every (publish, subscription) pair, so it must not allocate —
	// which rules out strings.Split.
	topicDone := false
	for {
		p, pRest := pattern, ""
		pMore := false
		if i := strings.IndexByte(pattern, '/'); i >= 0 {
			p, pRest, pMore = pattern[:i], pattern[i+1:], true
		}
		if p == "#" {
			return true // matches the remainder, including none
		}
		if topicDone {
			return false // pattern has levels the topic lacks
		}
		t := topic
		tMore := false
		if i := strings.IndexByte(topic, '/'); i >= 0 {
			t, topic, tMore = topic[:i], topic[i+1:], true
		}
		if p != "+" && p != t {
			return false
		}
		if !pMore {
			return !tMore // both must end at the same level
		}
		pattern = pRest
		if !tMore {
			topicDone = true
		}
	}
}

// Client connects a node to a broker.
type Client struct {
	ep     simnet.Port
	broker simnet.NodeID
	// RetryInterval and MaxRetries govern QoS-1 republishing.
	retryInterval time.Duration
	maxRetries    int

	handlers map[string]MessageHandler
	nextID   uint64
	pending  map[uint64]*simnet.Timer
	// published/acked counters for experiments.
	published int
	acked     int

	bus *obs.Bus
}

// ClientConfig tunes a client. Zero fields take defaults.
type ClientConfig struct {
	RetryInterval time.Duration
	MaxRetries    int
}

// NewClient creates a client of the broker at brokerID.
func NewClient(ep simnet.Port, brokerID simnet.NodeID, cfg ClientConfig) *Client {
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	c := &Client{
		ep:            ep,
		broker:        brokerID,
		retryInterval: cfg.RetryInterval,
		maxRetries:    cfg.MaxRetries,
		handlers:      make(map[string]MessageHandler),
		pending:       make(map[uint64]*simnet.Timer),
	}
	ep.OnMessage(c.handle)
	if ec, ok := ep.(simnet.EnvelopeCarrier); ok {
		ec.OnEnvelope(func(_ simnet.NodeID, e *simnet.Envelope) {
			if e.Kind == envPubAck {
				c.onPubAck(e.A)
			}
		})
	}
	ep.OnUp(c.resubscribe)
	return c
}

// SetBus attaches an observability bus. Deliveries stamped by a
// bus-attached broker are published as "pubsub.deliver" spans covering
// broker fan-out to client dispatch.
func (c *Client) SetBus(bus *obs.Bus) { c.bus = bus }

// Subscribe registers a handler and informs the broker. Re-subscription
// after the client's own crash is automatic; after a *broker* crash the
// subscription is gone until the client subscribes again (ML2's
// weakness, surfaced in the experiments).
func (c *Client) Subscribe(topic string, h MessageHandler) {
	c.handlers[topic] = h
	c.ep.Send(c.broker, subscribeMsg{Topic: topic})
}

// Unsubscribe removes the handler and informs the broker.
func (c *Client) Unsubscribe(topic string) {
	delete(c.handlers, topic)
	c.ep.Send(c.broker, unsubscribeMsg{Topic: topic})
}

// Publish sends payload to the topic. With AtLeastOnce, the client
// retries until acknowledged or MaxRetries is exhausted.
func (c *Client) Publish(topic string, payload any, qos QoS) {
	c.publish(topic, payload, qos, false)
}

// PublishRetained is Publish with the retain flag: the broker keeps
// the payload as the topic's last-known value for future subscribers.
func (c *Client) PublishRetained(topic string, payload any, qos QoS) {
	c.publish(topic, payload, qos, true)
}

func (c *Client) publish(topic string, payload any, qos QoS, retain bool) {
	c.published++
	if qos != AtLeastOnce {
		c.ep.Send(c.broker, publishMsg{Topic: topic, Payload: payload, Retain: retain})
		return
	}
	c.nextID++
	id := c.nextID
	c.sendWithRetry(id, topic, payload, retain, 0)
}

func (c *Client) sendWithRetry(id uint64, topic string, payload any, retain bool, attempt int) {
	c.ep.Send(c.broker, publishMsg{ID: id, Topic: topic, Payload: payload, Retain: retain})
	if attempt >= c.maxRetries {
		return
	}
	c.pending[id] = c.ep.After(c.retryInterval, func() {
		if _, still := c.pending[id]; still {
			c.sendWithRetry(id, topic, payload, retain, attempt+1)
		}
	})
}

// Published returns the number of Publish calls.
func (c *Client) Published() int { return c.published }

// Acked returns the number of QoS-1 publications acknowledged.
func (c *Client) Acked() int { return c.acked }

func (c *Client) resubscribe() {
	for topic := range c.handlers {
		c.ep.Send(c.broker, subscribeMsg{Topic: topic})
	}
}

func (c *Client) handle(_ simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case deliverMsg:
		if m.SentAt > 0 && c.bus.Active() {
			c.bus.Publish(obs.Event{
				At: m.SentAt, Dur: c.bus.Now() - m.SentAt,
				Kind: "pubsub.deliver", Node: string(c.ep.ID()),
				Detail: "topic " + m.Topic,
			})
		}
		// Subscriptions may be wildcard patterns; dispatch to every
		// matching handler.
		for pattern, h := range c.handlers {
			if TopicMatches(pattern, m.Topic) {
				h(m.Topic, m.Payload)
			}
		}
	case pubAckMsg:
		c.onPubAck(m.ID)
	}
}

// onPubAck settles a pending QoS-1 publish (boxed or envelope path).
func (c *Client) onPubAck(id uint64) {
	if t, ok := c.pending[id]; ok {
		t.Stop()
		delete(c.pending, id)
		c.acked++
	}
}
