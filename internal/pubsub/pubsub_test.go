package pubsub

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// rig builds a broker on "broker" and n clients on "c0".."cN-1".
func rig(t *testing.T, sim *simnet.Sim, n int) (*Broker, []*Client) {
	t.Helper()
	b := NewBroker(sim.AddNode("broker"))
	cs := make([]*Client, n)
	for i := 0; i < n; i++ {
		id := simnet.NodeID("c" + string(rune('0'+i)))
		cs[i] = NewClient(sim.AddNode(id), "broker", ClientConfig{})
	}
	return b, cs
}

func TestPublishSubscribe(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	var got []any
	cs[1].Subscribe("temp", func(_ string, p any) { got = append(got, p) })
	sim.RunUntil(100 * time.Millisecond)

	cs[0].Publish("temp", 21.5, AtMostOnce)
	sim.RunUntil(200 * time.Millisecond)
	if len(got) != 1 || got[0] != 21.5 {
		t.Fatalf("got %v", got)
	}
}

func TestPublisherDoesNotReceiveOwnMessage(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 1)
	got := 0
	cs[0].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(100 * time.Millisecond)
	cs[0].Publish("t", "x", AtMostOnce)
	sim.RunUntil(200 * time.Millisecond)
	if got != 0 {
		t.Fatal("publisher received its own publication")
	}
}

func TestFanOut(t *testing.T) {
	sim := simnet.New()
	b, cs := rig(t, sim, 4)
	counts := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		cs[i].Subscribe("news", func(string, any) { counts[i]++ })
	}
	sim.RunUntil(100 * time.Millisecond)
	if subs := b.Subscribers("news"); len(subs) != 3 {
		t.Fatalf("subscribers = %v", subs)
	}
	cs[0].Publish("news", "hello", AtMostOnce)
	sim.RunUntil(200 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if counts[i] != 1 {
			t.Fatalf("client %d got %d, want 1", i, counts[i])
		}
	}
	if b.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", b.Delivered())
	}
}

func TestUnsubscribe(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)
	cs[1].Unsubscribe("t")
	sim.RunUntil(100 * time.Millisecond)
	cs[0].Publish("t", 1, AtMostOnce)
	sim.RunUntil(200 * time.Millisecond)
	if got != 0 {
		t.Fatal("unsubscribed client still received")
	}
}

func TestQoS1AckStopsRetries(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)
	cs[0].Publish("t", "x", AtLeastOnce)
	sim.RunUntil(5 * time.Second)
	if got != 1 {
		t.Fatalf("delivered %d, want exactly 1 (no spurious retries)", got)
	}
	if cs[0].Acked() != 1 {
		t.Fatalf("Acked = %d, want 1", cs[0].Acked())
	}
}

func TestQoS1RetriesThroughLossyLink(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(7))
	_, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)

	// 70% loss on the publisher's uplink: QoS 0 will often vanish,
	// QoS 1 retries until one gets through.
	sim.SetLink("c0", "broker", time.Millisecond, 0.7)
	cs[0].Publish("t", "will-retry", AtLeastOnce)
	sim.RunUntil(10 * time.Second)
	if got < 1 {
		t.Fatal("QoS1 publication never arrived despite retries")
	}
}

func TestQoS1GivesUpAfterMaxRetries(t *testing.T) {
	sim := simnet.New()
	b := NewBroker(sim.AddNode("broker"))
	c := NewClient(sim.AddNode("c0"), "broker", ClientConfig{RetryInterval: 100 * time.Millisecond, MaxRetries: 3})
	_ = b
	sim.CutLinkBidirectional("c0", "broker")
	c.Publish("t", "x", AtLeastOnce)
	sim.RunUntil(10 * time.Second)
	if c.Acked() != 0 {
		t.Fatal("ack through a cut link")
	}
	if sim.Pending() != 0 {
		t.Fatalf("retry timers still pending: %d", sim.Pending())
	}
}

func TestBrokerCrashLosesSubscriptions(t *testing.T) {
	sim := simnet.New()
	b, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)

	sim.SetDown("broker", true)
	sim.RunUntil(100 * time.Millisecond)
	sim.SetDown("broker", false)
	sim.RunUntil(150 * time.Millisecond)

	cs[0].Publish("t", "after-restart", AtMostOnce)
	sim.RunUntil(300 * time.Millisecond)
	if got != 0 {
		t.Fatal("subscription survived broker restart (should be lost)")
	}
	if len(b.Subscribers("t")) != 0 {
		t.Fatal("broker retained subscribers across restart")
	}
}

func TestClientCrashResubscribes(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)

	sim.SetDown("c1", true)
	sim.RunUntil(100 * time.Millisecond)
	sim.SetDown("c1", false) // OnUp → resubscribe
	sim.RunUntil(200 * time.Millisecond)

	cs[0].Publish("t", "x", AtMostOnce)
	sim.RunUntil(400 * time.Millisecond)
	if got != 1 {
		t.Fatalf("got %d after client restart, want 1", got)
	}
}

func TestPublishWhileBrokerDownIsLost(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	got := 0
	cs[1].Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)
	sim.SetDown("broker", true)
	cs[0].Publish("t", "lost", AtMostOnce)
	sim.RunUntil(100 * time.Millisecond)
	sim.SetDown("broker", false)
	sim.RunUntil(2 * time.Second)
	if got != 0 {
		t.Fatal("QoS0 message survived broker downtime")
	}
	if cs[0].Published() != 1 {
		t.Fatalf("Published = %d", cs[0].Published())
	}
}

func TestRetainedMessageDeliveredOnSubscribe(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	cs[0].PublishRetained("state", "engaged", AtMostOnce)
	sim.RunUntil(100 * time.Millisecond)

	// A subscriber arriving *after* the publication still learns the
	// retained state.
	var got []any
	cs[1].Subscribe("state", func(_ string, p any) { got = append(got, p) })
	sim.RunUntil(300 * time.Millisecond)
	if len(got) != 1 || got[0] != "engaged" {
		t.Fatalf("got %v, want retained value", got)
	}
}

func TestRetainedUpdatedByNewerPublication(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	cs[0].PublishRetained("state", "v1", AtMostOnce)
	sim.RunUntil(50 * time.Millisecond)
	cs[0].PublishRetained("state", "v2", AtMostOnce)
	sim.RunUntil(100 * time.Millisecond)
	var got []any
	cs[1].Subscribe("state", func(_ string, p any) { got = append(got, p) })
	sim.RunUntil(300 * time.Millisecond)
	if len(got) != 1 || got[0] != "v2" {
		t.Fatalf("got %v, want [v2]", got)
	}
}

func TestRetainedLostOnBrokerRestart(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	cs[0].PublishRetained("state", "x", AtMostOnce)
	sim.RunUntil(50 * time.Millisecond)
	sim.SetDown("broker", true)
	sim.RunUntil(100 * time.Millisecond)
	sim.SetDown("broker", false)

	got := 0
	cs[1].Subscribe("state", func(string, any) { got++ })
	sim.RunUntil(300 * time.Millisecond)
	if got != 0 {
		t.Fatal("retained message survived broker restart")
	}
}

func TestRetainedNotRedeliveredOnDuplicateSubscribe(t *testing.T) {
	sim := simnet.New()
	b, cs := rig(t, sim, 2)
	cs[0].PublishRetained("state", "x", AtMostOnce)
	sim.RunUntil(50 * time.Millisecond)
	got := 0
	h := func(string, any) { got++ }
	cs[1].Subscribe("state", h)
	sim.RunUntil(100 * time.Millisecond)
	cs[1].Subscribe("state", h) // keepalive re-subscribe
	sim.RunUntil(200 * time.Millisecond)
	if got != 1 {
		t.Fatalf("retained delivered %d times, want 1 (no redelivery on keepalive)", got)
	}
	_ = b
}

func TestInjectRetained(t *testing.T) {
	sim := simnet.New()
	b, cs := rig(t, sim, 2)
	b.InjectRetained("cfg", 42)
	var got []any
	cs[1].Subscribe("cfg", func(_ string, p any) { got = append(got, p) })
	sim.RunUntil(200 * time.Millisecond)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestRetainedWithQoS1(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	cs[0].PublishRetained("state", "x", AtLeastOnce)
	sim.RunUntil(2 * time.Second)
	if cs[0].Acked() != 1 {
		t.Fatalf("acked = %d", cs[0].Acked())
	}
	var got []any
	cs[1].Subscribe("state", func(_ string, p any) { got = append(got, p) })
	sim.RunUntil(3 * time.Second)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestTopicMatches(t *testing.T) {
	tests := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/+/c", "a/b/x/c", false},
		{"+/+/+", "a/b/c", true},
		{"+", "a", true},
		{"+", "a/b", false},
		{"#", "anything/at/all", true},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true},
		{"a/#", "b/c", false},
		{"a/b", "a", false},
		{"a", "a/b", false},
		{"zone/+/temp", "zone/3/temp", true},
	}
	for _, tt := range tests {
		if got := TopicMatches(tt.pattern, tt.topic); got != tt.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", tt.pattern, tt.topic, got, tt.want)
		}
	}
}

func TestWildcardSubscription(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	var got []string
	cs[1].Subscribe("zone/+/temp", func(topic string, _ any) { got = append(got, topic) })
	sim.RunUntil(50 * time.Millisecond)
	cs[0].Publish("zone/1/temp", 20.0, AtMostOnce)
	cs[0].Publish("zone/2/temp", 21.0, AtMostOnce)
	cs[0].Publish("zone/1/occupancy", 3.0, AtMostOnce) // not matched
	sim.RunUntil(200 * time.Millisecond)
	if len(got) != 2 || got[0] != "zone/1/temp" || got[1] != "zone/2/temp" {
		t.Fatalf("got %v", got)
	}
}

func TestWildcardRetainedDelivery(t *testing.T) {
	sim := simnet.New()
	_, cs := rig(t, sim, 2)
	cs[0].PublishRetained("zone/1/temp", 20.0, AtMostOnce)
	cs[0].PublishRetained("zone/2/temp", 21.0, AtMostOnce)
	sim.RunUntil(50 * time.Millisecond)
	got := map[string]any{}
	cs[1].Subscribe("zone/#", func(topic string, p any) { got[topic] = p })
	sim.RunUntil(200 * time.Millisecond)
	if len(got) != 2 || got["zone/1/temp"] != 20.0 || got["zone/2/temp"] != 21.0 {
		t.Fatalf("got %v", got)
	}
}

func TestMessageSizes(t *testing.T) {
	if (subscribeMsg{Topic: "abc"}).Size() != 11 {
		t.Fatal("subscribe size")
	}
	if (pubAckMsg{}).Size() != 12 {
		t.Fatal("ack size")
	}
	p := publishMsg{Topic: "t", Payload: "anything"}
	if p.Size() != 16+1+64 {
		t.Fatalf("publish size = %d", p.Size())
	}
}

func TestMuxedClientAndBrokerCoexistWithOtherProtocols(t *testing.T) {
	sim := simnet.New()
	mb := simnet.NewMux(sim.AddNode("broker"))
	mc := simnet.NewMux(sim.AddNode("c0"))
	NewBroker(mb.Port("pubsub"))
	c := NewClient(mc.Port("pubsub"), "broker", ClientConfig{})
	other := 0
	mc.Port("other").OnMessage(func(simnet.NodeID, simnet.Message) { other++ })

	got := 0
	c.Subscribe("t", func(string, any) { got++ })
	sim.RunUntil(50 * time.Millisecond)
	mb.Port("pubsub").Send("c0", deliverMsg{Topic: "t", Payload: 1})
	sim.RunUntil(100 * time.Millisecond)
	if got != 1 || other != 0 {
		t.Fatalf("got=%d other=%d", got, other)
	}
}
