package pubsub

import (
	"strings"
	"testing"
)

// FuzzTopicMatches checks structural invariants of the matcher: exact
// patterns match only themselves, "#" matches everything, and matching
// never panics on arbitrary inputs.
func FuzzTopicMatches(f *testing.F) {
	f.Add("zone/+/temp", "zone/3/temp")
	f.Add("a/#", "a/b/c")
	f.Add("", "")
	f.Add("+/+", "x/y")
	f.Fuzz(func(t *testing.T, pattern, topic string) {
		got := TopicMatches(pattern, topic)
		// "#" alone matches any topic.
		if pattern == "#" && !got {
			t.Fatalf("# did not match %q", topic)
		}
		// A pattern without wildcards matches exactly itself.
		if !strings.ContainsAny(pattern, "+#") {
			if want := pattern == topic; got != want {
				t.Fatalf("exact pattern %q vs %q: got %v, want %v", pattern, topic, got, want)
			}
		}
		// A topic always matches itself when it has no wildcard chars.
		if !strings.ContainsAny(topic, "+#") && !TopicMatches(topic, topic) {
			t.Fatalf("topic %q does not match itself", topic)
		}
	})
}
